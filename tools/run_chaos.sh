#!/usr/bin/env bash
# Chaos sweep driver (ISSUE 10, DESIGN.md §12): run the seeded fault-schedule
# sweep in test_chaos_serve at CI scale and preserve a replayable artifact
# when a schedule fails.
#
# Usage:
#   tools/run_chaos.sh                        # 200 schedules against ./build
#   BUILD_DIR=build-asan tools/run_chaos.sh   # the CI chaos job (ASan build)
#   HMIS_CHAOS_SCHEDULES=1000 tools/run_chaos.sh
#   ARTIFACT=chaos_failure.log tools/run_chaos.sh
#
# A failing schedule's assertion message embeds the exact HMIS_FAULT spec
# ("seed=...,rate=...,sites=...") — arming it replays the schedule
# deterministically; the full test log is copied to $ARTIFACT for upload.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
SCHEDULES=${HMIS_CHAOS_SCHEDULES:-200}
ARTIFACT=${ARTIFACT:-chaos_failure.log}

BIN="$BUILD_DIR/tests/test_chaos_serve"
if [[ ! -x "$BIN" ]]; then
  echo "run_chaos: $BIN not built — build $BUILD_DIR first" >&2
  exit 1
fi

LOG=$(mktemp)
trap 'rm -f "$LOG"' EXIT

echo "run_chaos: sweeping $SCHEDULES schedules ($BIN) ..." >&2
if HMIS_CHAOS_SCHEDULES="$SCHEDULES" \
    "$BIN" --gtest_filter='ChaosServe.*' 2>&1 | tee "$LOG"; then
  echo "run_chaos: PASS ($SCHEDULES schedules)" >&2
else
  cp "$LOG" "$ARTIFACT"
  echo "run_chaos: FAIL — replay spec preserved in $ARTIFACT" >&2
  echo "run_chaos: grep HMIS_FAULT= \"$ARTIFACT\" for the failing schedule" >&2
  exit 1
fi
