#!/usr/bin/env bash
# Verify the checked-in corpus: every instance's digest matches the
# manifest, and `hmis convert` round-trips each one clean (hgb2 → text →
# hgb2 reproduces the original file byte for byte, which exercises the
# HGB2 reader, the text writer/reader, and the HGB2 writer against each
# other).  CI runs this on every push; it also catches someone editing a
# corpus file without regenerating the manifest.
#
#   cmake -B build -S . && cmake --build build -j && tools/verify_corpus.sh
set -euo pipefail

HMIS=${HMIS:-build/tools/hmis}
CORPUS=${CORPUS:-corpus}

[ -f "$CORPUS/MANIFEST.sha256" ] || {
  echo "verify_corpus: no $CORPUS/MANIFEST.sha256" >&2
  exit 1
}

(cd "$CORPUS" && sha256sum --quiet -c MANIFEST.sha256)
echo "corpus digests match MANIFEST.sha256"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
while read -r _ name; do
  "$HMIS" convert "$CORPUS/$name" "$tmp/rt.hg" --format text >/dev/null
  "$HMIS" convert "$tmp/rt.hg" "$tmp/rt.hgb2" --format hgb2 >/dev/null
  cmp -s "$CORPUS/$name" "$tmp/rt.hgb2" || {
    echo "verify_corpus: $name does not round-trip through text" >&2
    exit 1
  }
  echo "  round-trip ok: $name"
done < "$CORPUS/MANIFEST.sha256"
echo "corpus round-trips clean"
