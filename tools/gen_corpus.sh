#!/usr/bin/env bash
# Regenerate the checked-in benchmark corpus (corpus/*.hgb2) and its
# manifest.  One instance per generator family at two sizes (_s/_l); all
# seeds fixed, so the output is bit-identical run to run — `git status`
# after a regeneration should be clean unless the HGB2 format or a
# generator deliberately changed.  Run from the repo root after building:
#
#   cmake -B build -S . && cmake --build build -j && tools/gen_corpus.sh
#
# The benches sweep these instances via bench_graph_load's load:corpus
# table (manifest order); any bench can run against a single instance with
# HMIS_BENCH_GRAPH=corpus/<name>.hgb2.
set -euo pipefail

HMIS=${HMIS:-build/tools/hmis}
OUT=${OUT:-corpus}
mkdir -p "$OUT"

g() {
  local name=$1
  shift
  "$HMIS" gen "$@" --format hgb2 >/dev/null
  echo "  $name"
}

echo "generating corpus into $OUT/"
g uniform_s   uniform   "$OUT/uniform_s.hgb2"   4000   8000 3 101
g uniform_l   uniform   "$OUT/uniform_l.hgb2"  40000  80000 3 102
g mixed_s     mixed     "$OUT/mixed_s.hgb2"     4000   7000 2 6 103
g mixed_l     mixed     "$OUT/mixed_l.hgb2"    20000  40000 2 8 104
g linear_s    linear    "$OUT/linear_s.hgb2"    5000   6000 3 105
g linear_l    linear    "$OUT/linear_l.hgb2"   40000  50000 3 106
g planted_s   planted   "$OUT/planted_s.hgb2"   4000   8000 3 0.5 107
g planted_l   planted   "$OUT/planted_l.hgb2"  30000  60000 3 0.5 108
g graph_s     graph     "$OUT/graph_s.hgb2"     5000  10000 109
g graph_l     graph     "$OUT/graph_l.hgb2"    30000  60000 110
g interval_s  interval  "$OUT/interval_s.hgb2"  5000 8 3
g interval_l  interval  "$OUT/interval_l.hgb2" 60000 16 5
g sunflower_s sunflower "$OUT/sunflower_s.hgb2" 6 3 1500
g sunflower_l sunflower "$OUT/sunflower_l.hgb2" 8 4 5000
g sbl_s       sbl       "$OUT/sbl_s.hgb2"       3000 0.6 10 111
g sbl_l       sbl       "$OUT/sbl_l.hgb2"      20000 0.6 12 112

(cd "$OUT" && sha256sum ./*.hgb2 | sed 's#\./##' > MANIFEST.sha256)
echo "wrote $OUT/MANIFEST.sha256:"
cat "$OUT/MANIFEST.sha256"
