#include "checks.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace hmis::lint {

namespace {

using Tokens = std::vector<Token>;

[[nodiscard]] bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokenKind::Identifier && t.text == text;
}

/// True when tokens[i] names a call head: identifier directly followed by
/// "(".  `allow_member` admits `x.name(...)` / `x->name(...)` heads.
[[nodiscard]] bool is_call_head(const Tokens& toks, std::size_t i,
                                bool allow_member) {
  if (toks[i].kind != TokenKind::Identifier) return false;
  if (i + 1 >= toks.size() || toks[i + 1].text != "(") return false;
  if (!allow_member && i > 0 &&
      (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
    return false;
  }
  return true;
}

/// Skip a template argument list starting at the "<" in toks[i]; returns the
/// index just past the matching ">" (treating "<<"/">>" as two brackets).
/// Returns `i` unchanged when toks[i] is not "<".
[[nodiscard]] std::size_t skip_angles(const Tokens& toks, std::size_t i) {
  if (i >= toks.size() || toks[i].text != "<") return i;
  int depth = 0;
  for (std::size_t k = i; k < toks.size(); ++k) {
    const std::string& t = toks[k].text;
    if (t == "<") depth += 1;
    if (t == "<<") depth += 2;
    if (t == ">") depth -= 1;
    if (t == ">>") depth -= 2;
    if (t == ";" || t == "{") return i;  // ran off the expression: not angles
    if (depth <= 0) return k + 1;
  }
  return i;
}

/// Nonzero *integer* literal (handles 0x/0b/octal, ' separators, suffixes).
[[nodiscard]] bool is_nonzero_int_literal(const Token& t) {
  if (t.kind != TokenKind::Number) return false;
  std::string digits;
  for (const char c : t.text) {
    if (c == '\'') continue;
    digits.push_back(c);
  }
  if (digits.find('.') != std::string::npos) return false;
  const bool hex =
      digits.size() > 1 && digits[0] == '0' && (digits[1] == 'x' || digits[1] == 'X');
  if (!hex && (digits.find('e') != std::string::npos ||
               digits.find('E') != std::string::npos)) {
    return false;  // decimal float exponent
  }
  while (!digits.empty()) {
    const char c = digits.back();
    if (c == 'u' || c == 'U' || c == 'l' || c == 'L' || c == 'z' ||
        c == 'Z') {
      digits.pop_back();
    } else {
      break;
    }
  }
  if (digits.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(digits.c_str(), &end, 0);
  return end == digits.c_str() + digits.size() && v != 0;
}

void emit(std::vector<Diagnostic>& out, const SourceFile& file,
          const Token& at, std::string_view check, std::string message) {
  out.push_back(
      {file.path(), at.line, at.col, std::string(check), std::move(message)});
}

// ---- hmis-grain-sentinel -----------------------------------------------------

/// Grain-taking primitives and the 0-based position of their grain
/// parameter.  A call that fills every slot up to and including the grain
/// position with a nonzero integer literal in that slot hardcodes the grain
/// and bypasses the HMIS_GRAIN override.
struct GrainSite {
  std::string_view callee;
  std::size_t grain_index;
};
constexpr GrainSite kGrainSites[] = {
    {"parallel_for", 5},  {"parallel_for_chunks", 5}, {"reduce", 7},
    {"reduce_sum", 5},    {"reduce_max", 6},          {"reduce_min", 6},
    {"count_if", 5},      {"exclusive_scan", 5},      {"inclusive_scan", 5},
    {"pack_indices_into", 6}, {"pack_indices", 4},    {"parallel_sort", 4},
    {"plan_chunks", 2},
};

class GrainSentinelCheck final : public Check {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "hmis-grain-sentinel";
  }

  void run(const SourceFile& file, std::vector<Diagnostic>& out) const override {
    const Tokens& toks = file.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::Identifier) continue;
      const GrainSite* site = nullptr;
      for (const GrainSite& s : kGrainSites) {
        if (toks[i].text == s.callee) {
          site = &s;
          break;
        }
      }
      if (site == nullptr) continue;
      // Possibly explicit template args: reduce_sum<std::size_t>(...).
      std::size_t open = i + 1;
      if (open < toks.size() && toks[open].text == "<") {
        open = skip_angles(toks, open);
      }
      if (open >= toks.size() || toks[open].text != "(") continue;
      if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
        continue;  // member of some other type
      }
      const std::size_t close = match_forward(toks, open);
      if (close >= toks.size()) continue;
      const auto args = split_args(toks, open, close);
      if (args.size() <= site->grain_index) continue;  // grain defaulted
      const auto [b, e] = args[site->grain_index];
      if (e != b + 1) continue;  // not a lone literal (variable, expr, 0u?)
      if (!is_nonzero_int_literal(toks[b])) continue;
      emit(out, file, toks[b], name(),
           "hardcoded grain literal '" + toks[b].text + "' passed to " +
               std::string(site->callee) +
               "; use the 0-means-default sentinel so HMIS_GRAIN tunes every "
               "primitive");
    }
  }
};

// ---- hmis-pool-plumbing ------------------------------------------------------

class PoolPlumbingCheck final : public Check {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "hmis-pool-plumbing";
  }

  void run(const SourceFile& file, std::vector<Diagnostic>& out) const override {
    // The par/ layer owns the global-pool machinery; everything else must
    // thread the caller's pool (CommonOptions::pool et al.) downward.
    if (file.path().find("/par/") != std::string::npos) return;
    const Tokens& toks = file.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!is_call_head(toks, i, /*allow_member=*/false)) continue;
      if (toks[i].text == "global_pool") {
        emit(out, file, toks[i], name(),
             "library code must not reach for global_pool(); thread the "
             "caller's pool (opt.pool) down instead — entry points resolve "
             "it once via resolve_pool(opt.pool)");
        continue;
      }
      if (toks[i].text == "resolve_pool") {
        const std::size_t close = match_forward(toks, i + 1);
        if (close >= toks.size()) continue;
        const auto args = split_args(toks, i + 1, close);
        if (args.size() == 1 && args[0].second == args[0].first + 1 &&
            is_ident(toks[args[0].first], "nullptr")) {
          emit(out, file, toks[i], name(),
               "resolve_pool(nullptr) is global_pool() in disguise; pass the "
               "caller's pool through");
        }
      }
    }
  }
};

// ---- hmis-banned-nondeterminism ----------------------------------------------

constexpr std::string_view kBannedCalls[] = {
    "rand",  "srand",        "rand_r",       "drand48",
    "time",  "gettimeofday", "timespec_get", "clock",
};

class BannedNondeterminismCheck final : public Check {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "hmis-banned-nondeterminism";
  }

  void run(const SourceFile& file, std::vector<Diagnostic>& out) const override {
    const Tokens& toks = file.tokens();

    // Pass 1: names declared with an unordered container type.
    std::unordered_set<std::string> unordered_names;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::Identifier) continue;
      const std::string& t = toks[i].text;
      if (t != "unordered_map" && t != "unordered_set" &&
          t != "unordered_multimap" && t != "unordered_multiset") {
        continue;
      }
      std::size_t j = skip_angles(toks, i + 1);
      // Reference/pointer declarators and cv-qualifiers sit between the
      // template-id and the declared name: unordered_map<K, V>& histo.
      while (j < toks.size() &&
             (toks[j].text == "&" || toks[j].text == "&&" ||
              toks[j].text == "*" || toks[j].text == "const")) {
        ++j;
      }
      if (j < toks.size() && toks[j].kind == TokenKind::Identifier) {
        unordered_names.insert(toks[j].text);
      }
    }

    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& tok = toks[i];
      if (tok.kind != TokenKind::Identifier) continue;

      // Entropy from the environment.
      if (tok.text == "random_device") {
        emit(out, file, tok, name(),
             "std::random_device draws nondeterministic entropy; derive all "
             "randomness from the request seed via util::CounterRng");
        continue;
      }
      // C RNG / wall-clock calls.
      if (is_call_head(toks, i, /*allow_member=*/false)) {
        for (const std::string_view banned : kBannedCalls) {
          if (tok.text == banned) {
            emit(out, file, tok, name(),
                 "'" + tok.text +
                     "()' is a nondeterministic source; results must be pure "
                     "functions of the seed (counter-RNG) and timing must go "
                     "through util::Timer");
            break;
          }
        }
      }
      // Any clock's ::now() — steady_clock, system_clock, etc.
      if (tok.text == "now" && i > 0 && toks[i - 1].text == "::" &&
          i + 1 < toks.size() && toks[i + 1].text == "(") {
        emit(out, file, tok, name(),
             "clock ::now() in library code; wall time must not feed result "
             "paths (wrap metering in util::Timer and justify with "
             "HMIS_LINT_ALLOW)");
        continue;
      }
      // Iteration over unordered containers: range-for and .begin().
      if (tok.text == "for" && i + 1 < toks.size() &&
          toks[i + 1].text == "(") {
        const std::size_t close = match_forward(toks, i + 1);
        if (close >= toks.size()) continue;
        // The range-for colon is a lone ":" at top level ("::" is one token).
        int depth = 0;
        for (std::size_t k = i + 2; k < close; ++k) {
          const std::string& t = toks[k].text;
          if (t == "(" || t == "[" || t == "{") ++depth;
          if (t == ")" || t == "]" || t == "}") --depth;
          if (depth == 0 && t == ":") {
            for (std::size_t r = k + 1; r < close; ++r) {
              if (toks[r].kind == TokenKind::Identifier &&
                  unordered_names.count(toks[r].text) != 0) {
                emit(out, file, toks[r], name(),
                     "iteration over unordered container '" + toks[r].text +
                         "' — hash order must not feed output order; sort "
                         "first or use a sorted container");
                break;
              }
            }
            break;
          }
        }
        continue;
      }
      if ((tok.text == "begin" || tok.text == "cbegin" ||
           tok.text == "rbegin") &&
          i >= 2 && (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
          toks[i - 2].kind == TokenKind::Identifier &&
          unordered_names.count(toks[i - 2].text) != 0 &&
          i + 1 < toks.size() && toks[i + 1].text == "(") {
        emit(out, file, toks[i - 2], name(),
             "iteration over unordered container '" + toks[i - 2].text +
                 "' — hash order must not feed output order; sort first or "
                 "use a sorted container");
        continue;
      }
      // Address-as-value ordering.
      if (tok.text == "reinterpret_cast" && i + 1 < toks.size() &&
          toks[i + 1].text == "<") {
        const std::size_t end = skip_angles(toks, i + 1);
        for (std::size_t k = i + 2; k + 1 < end; ++k) {
          if (toks[k].text == "uintptr_t" || toks[k].text == "intptr_t") {
            emit(out, file, tok, name(),
                 "reinterpret_cast to an integer address: pointer values are "
                 "allocation-order nondeterministic and must not feed "
                 "ordering or hashing");
            break;
          }
        }
        continue;
      }
      if (tok.text == "less" && i + 1 < toks.size() &&
          toks[i + 1].text == "<") {
        const std::size_t end = skip_angles(toks, i + 1);
        for (std::size_t k = i + 2; k + 1 < end; ++k) {
          if (toks[k].text == "*") {
            emit(out, file, tok, name(),
                 "std::less over pointers orders by address — "
                 "allocation-order nondeterminism; order by id or value "
                 "instead");
            break;
          }
        }
      }
    }
  }
};

// ---- hmis-nonatomic-shared-write ---------------------------------------------

/// Backward partner of match_forward: toks[close] is ] ) or }; returns the
/// index of the matching opener, or npos-equivalent (toks.size()).
[[nodiscard]] std::size_t match_backward(const Tokens& toks,
                                         std::size_t close) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (toks[i].kind != TokenKind::Punct) continue;
    const std::string& t = toks[i].text;
    if (t == ")" || t == "]" || t == "}") ++depth;
    if (t == "(" || t == "[" || t == "{") {
      --depth;
      if (depth == 0) return i;
    }
  }
  return toks.size();
}

constexpr std::string_view kAssignOps[] = {
    "=",  "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
};

/// Keywords that look like a preceding "type" in the local-declaration scan.
[[nodiscard]] bool is_decl_blocker(const std::string& t) {
  static const std::unordered_set<std::string> kBlockers = {
      "return", "else",     "case",    "goto",   "new",      "delete",
      "throw",  "sizeof",   "if",      "while",  "for",      "switch",
      "do",     "using",    "namespace", "template", "operator", "catch",
      "co_return", "co_yield", "co_await", "typedef", "break", "continue",
  };
  return kBlockers.count(t) != 0;
}

/// Calls that do not launder disjointness away in the taint analysis: pure
/// order/cast helpers through which a chunk-local index stays chunk-local.
[[nodiscard]] bool is_transparent_call(const std::string& t) {
  static const std::unordered_set<std::string> kTransparent = {
      "min", "max", "static_cast", "const_cast", "size_t", "ptrdiff_t",
  };
  return kTransparent.count(t) != 0;
}

struct LambdaInfo {
  bool by_ref_default = false;
  std::unordered_set<std::string> ref_captures;
  std::unordered_set<std::string> params;
  std::size_t body_begin = 0;  // token index just inside '{'
  std::size_t body_end = 0;    // token index of matching '}'
  bool valid = false;
};

/// Parse a lambda whose '[' is at toks[open].
[[nodiscard]] LambdaInfo parse_lambda(const Tokens& toks, std::size_t open) {
  LambdaInfo info;
  const std::size_t cap_close = match_forward(toks, open);
  if (cap_close >= toks.size()) return info;
  for (const auto& [b, e] : split_args(toks, open, cap_close)) {
    if (b >= e) continue;
    if (toks[b].text == "&") {
      if (e == b + 1) {
        info.by_ref_default = true;
      } else if (toks[b + 1].kind == TokenKind::Identifier) {
        info.ref_captures.insert(toks[b + 1].text);  // &x and &x = expr
      }
    }
  }
  std::size_t i = cap_close + 1;
  if (i < toks.size() && toks[i].text == "(") {
    const std::size_t pclose = match_forward(toks, i);
    if (pclose >= toks.size()) return info;
    for (const auto& [b, e] : split_args(toks, i, pclose)) {
      // Last identifier of the declarator is the parameter name.
      for (std::size_t k = e; k-- > b;) {
        if (toks[k].kind == TokenKind::Identifier) {
          info.params.insert(toks[k].text);
          break;
        }
      }
    }
    i = pclose + 1;
  }
  while (i < toks.size() && toks[i].text != "{") {
    if (toks[i].text == ";" || toks[i].text == ")") return info;  // not a body
    ++i;
  }
  if (i >= toks.size()) return info;
  const std::size_t body_close = match_forward(toks, i);
  if (body_close >= toks.size()) return info;
  info.body_begin = i + 1;
  info.body_end = body_close;
  info.valid = true;
  return info;
}

/// One write found in a lambda body.
struct Write {
  std::size_t base;            // token index of the base identifier
  bool has_subscript = false;  // base[...] present
  std::size_t sub_begin = 0;   // tokens inside the first subscript
  std::size_t sub_end = 0;
};

/// Extract the lvalue written by the operator at `op` (an assignment token,
/// or the target side of ++/--).  Returns false when the shape is not a
/// recognizable ident / ident[expr] / ident.member... chain.
[[nodiscard]] bool extract_lvalue(const Tokens& toks, std::size_t body_begin,
                                  std::size_t end_excl, Write& w) {
  // Walk backwards over a postfix chain: ident ([..] | .ident | ->ident)*
  std::size_t i = end_excl;
  std::size_t first_sub_open = toks.size();
  std::size_t first_sub_close = toks.size();
  std::size_t base = toks.size();
  while (i > body_begin) {
    const Token& t = toks[i - 1];
    if (t.text == "]") {
      const std::size_t open = match_backward(toks, i - 1);
      if (open >= toks.size() || open < body_begin) return false;
      first_sub_open = open;
      first_sub_close = i - 1;
      i = open;
      continue;
    }
    if (t.kind == TokenKind::Identifier) {
      base = i - 1;
      if (i - 1 > body_begin) {
        const std::string& prev = toks[i - 2].text;
        if (prev == "." || prev == "->") {
          i -= 2;  // member chain: keep walking to the true base
          continue;
        }
        if (prev == "::") return false;  // qualified name: not a capture
      }
      break;
    }
    return false;  // ')' or operator: unanalyzable lvalue (skip, stay quiet)
  }
  if (base >= toks.size()) return false;
  w.base = base;
  // Only a subscript on the *base* segment proves per-index disjointness;
  // the last-seen subscript while walking backwards is the leftmost one.
  if (first_sub_open < toks.size() && first_sub_open > base) {
    w.has_subscript = true;
    w.sub_begin = first_sub_open + 1;
    w.sub_end = first_sub_close;
  }
  return true;
}

class NonatomicSharedWriteCheck final : public Check {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "hmis-nonatomic-shared-write";
  }

  void run(const SourceFile& file, std::vector<Diagnostic>& out) const override {
    const Tokens& toks = file.tokens();

    // Names declared std::atomic / atomic_ref anywhere in the file: writes
    // through them are synchronization, not races.
    std::unordered_set<std::string> atomic_names;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const std::string& t = toks[i].text;
      if (t != "atomic" && t != "atomic_ref" && t != "atomic_flag") continue;
      std::size_t j = skip_angles(toks, i + 1);
      while (j < toks.size() &&
             (toks[j].text == "&" || toks[j].text == "&&" ||
              toks[j].text == "*" || toks[j].text == "const")) {
        ++j;
      }
      if (j < toks.size() && toks[j].kind == TokenKind::Identifier) {
        atomic_names.insert(toks[j].text);
      }
    }

    // Chunked parallel primitives: the body lambda's writes must be atomic
    // or land in per-chunk disjoint index ranges.
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::Identifier) continue;
      const std::string& callee = toks[i].text;
      if (callee != "parallel_for" && callee != "parallel_for_chunks" &&
          callee != "parallel_for_shards" && callee != "run_chunks") {
        continue;
      }
      if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
      const std::size_t close = match_forward(toks, i + 1);
      if (close >= toks.size()) continue;
      for (const auto& [b, e] : split_args(toks, i + 1, close)) {
        if (b < e && toks[b].text == "[") {
          analyze_lambda(file, toks, b, atomic_names, out);
        }
      }
    }

    // TaskGroup closures: flag an identifier written by-reference in two or
    // more closures of the same group — those closures run concurrently.
    analyze_task_groups(file, toks, atomic_names, out);
  }

 private:
  void analyze_lambda(const SourceFile& file, const Tokens& toks,
                      std::size_t open,
                      const std::unordered_set<std::string>& atomic_names,
                      std::vector<Diagnostic>& out) const {
    const LambdaInfo lam = parse_lambda(toks, open);
    if (!lam.valid) return;
    if (!lam.by_ref_default && lam.ref_captures.empty()) return;

    // Pass A: locals and chunk-index taint.  A name is *tainted* when its
    // value is derived from a lambda parameter (the chunk/shard/index
    // argument) by pure arithmetic or subscripted loads — writes subscripted
    // by a tainted expression hit per-chunk disjoint ranges.  Call results
    // (mh.edge(...), wrap(s + 1)) and range-for element bindings yield
    // *values*, which different chunks can share: a call subexpression
    // contributes no taint, but it does not poison the derivation around it
    // (pool[s].data() + off stays shard-local).
    std::unordered_set<std::string> locals;
    std::unordered_set<std::string> tainted;
    for (const std::string& p : lam.params) tainted.insert(p);

    auto expr_tainted = [&](std::size_t b, std::size_t e) {
      bool has_tainted = false;
      for (std::size_t k = b; k < e; ++k) {
        if (toks[k].kind != TokenKind::Identifier) continue;
        if (k + 1 < e && toks[k + 1].text == "(" &&
            !is_transparent_call(toks[k].text)) {
          // A call yields a VALUE distinct chunks/shards can share, so
          // neither the callee nor its arguments witness disjointness — but
          // derivations AROUND the call still do (pool.data() + offset[s]
          // stays shard-local even though data() itself proves nothing).
          // Skip just the call; keep scanning the rest of the expression.
          const std::size_t close = match_forward(toks, k + 1);
          if (close >= e) return has_tainted;
          k = close;
          continue;
        }
        if (tainted.count(toks[k].text) != 0) has_tainted = true;
      }
      return has_tainted;
    };

    // Positions that continue a multi-declarator statement, e.g. `b` in
    // `const VertexId a = verts[0], b = verts[1];`.
    std::unordered_set<std::size_t> chained_decls;
    for (std::size_t k = lam.body_begin; k < lam.body_end; ++k) {
      const Token& t = toks[k];
      if (t.kind != TokenKind::Identifier || is_decl_blocker(t.text)) continue;
      if (k == lam.body_begin) continue;
      const Token& prev = toks[k - 1];
      const bool decl_shaped =
          (prev.kind == TokenKind::Identifier && !is_decl_blocker(prev.text)) ||
          prev.text == ">" || prev.text == "*" || prev.text == "&" ||
          prev.text == "&&" || chained_decls.count(k) != 0;
      if (!decl_shaped) continue;
      if (k + 1 >= lam.body_end) continue;
      const std::string& next = toks[k + 1].text;
      if (next == "=" && k + 2 < lam.body_end) {
        // Declaration with initializer: find the init expression's end.
        std::size_t e = k + 2;
        int depth = 0;
        while (e < lam.body_end) {
          const std::string& tt = toks[e].text;
          if (tt == "(" || tt == "[" || tt == "{") ++depth;
          if (tt == ")" || tt == "]" || tt == "}") {
            if (depth == 0) break;
            --depth;
          }
          if (depth == 0 && (tt == ";" || tt == ",")) break;
          ++e;
        }
        if (e < lam.body_end && toks[e].text == ",") {
          chained_decls.insert(e + 1);  // next declarator in the statement
        }
        locals.insert(t.text);
        if (expr_tainted(k + 2, e)) {
          tainted.insert(t.text);
        } else {
          tainted.erase(t.text);
        }
      } else if (next == ";" || next == "{" || next == ":" || next == ",") {
        if (next == ",") chained_decls.insert(k + 2);  // `int a, b;`
        locals.insert(t.text);  // plain decl / range-for binding: untainted
        tainted.erase(t.text);
      }
    }

    // Pass B: writes.
    auto handle_write = [&](const Write& w) {
      const std::string& base = toks[w.base].text;
      if (locals.count(base) != 0 || lam.params.count(base) != 0) return;
      if (atomic_names.count(base) != 0) return;
      if (!lam.by_ref_default && lam.ref_captures.count(base) == 0) return;
      if (w.has_subscript && expr_tainted(w.sub_begin, w.sub_end)) return;
      const std::string where =
          w.has_subscript
              ? "subscript is not derived from the chunk/loop parameter"
              : "scalar/member store";
      emit(out, file, toks[w.base], name(),
           "plain store to by-ref captured '" + base +
               "' inside a parallel body (" + where +
               "): distinct chunks may hit the same location — use "
               "std::atomic_ref (idempotent relaxed store) or write only to "
               "per-chunk disjoint index ranges");
    };

    for (std::size_t k = lam.body_begin; k < lam.body_end; ++k) {
      const Token& t = toks[k];
      if (t.kind != TokenKind::Punct) continue;
      bool is_assign = false;
      for (const std::string_view op : kAssignOps) {
        if (t.text == op) {
          is_assign = true;
          break;
        }
      }
      Write w;
      if (is_assign) {
        if (extract_lvalue(toks, lam.body_begin, k, w)) handle_write(w);
      } else if (t.text == "++" || t.text == "--") {
        if (k + 1 < lam.body_end &&
            toks[k + 1].kind == TokenKind::Identifier) {
          // Prefix: scan forward over the postfix chain to its end.
          std::size_t e = k + 1;
          while (e < lam.body_end) {
            if (toks[e].kind == TokenKind::Identifier) {
              ++e;
            } else if (toks[e].text == "[") {
              e = match_forward(toks, e) + 1;
            } else if (toks[e].text == "." || toks[e].text == "->") {
              ++e;
            } else {
              break;
            }
          }
          if (extract_lvalue(toks, k + 1, e, w)) handle_write(w);
        } else if (extract_lvalue(toks, lam.body_begin, k, w)) {
          handle_write(w);  // postfix
        }
      }
    }
  }

  struct ClosureWrite {
    std::size_t closure = 0;  // 1-based closure ordinal within the group
    std::size_t token = 0;    // token index of the written base identifier
  };

  void analyze_task_groups(const SourceFile& file, const Tokens& toks,
                           const std::unordered_set<std::string>& atomic_names,
                           std::vector<Diagnostic>& out) const {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!is_ident(toks[i], "TaskGroup")) continue;
      if (i + 1 >= toks.size() ||
          toks[i + 1].kind != TokenKind::Identifier) {
        continue;
      }
      const std::string group = toks[i + 1].text;
      // Collect by-ref writes per closure of this group within the file.  An
      // identifier written from a single closure is that closure's private
      // output (the sbl/bl left/right pattern); written from two or more, the
      // closures race on it.
      std::unordered_map<std::string, std::vector<ClosureWrite>> writers;
      std::size_t closures = 0;
      for (std::size_t k = i + 2; k + 3 < toks.size(); ++k) {
        if (!is_ident(toks[k], group) || toks[k + 1].text != "." ||
            !is_ident(toks[k + 2], "run") || toks[k + 3].text != "(") {
          continue;
        }
        const std::size_t close = match_forward(toks, k + 3);
        if (close >= toks.size()) continue;
        const auto args = split_args(toks, k + 3, close);
        if (args.empty() || toks[args[0].first].text != "[") continue;
        const LambdaInfo lam = parse_lambda(toks, args[0].first);
        if (!lam.valid) continue;
        ++closures;
        collect_closure_writes(toks, lam, atomic_names, closures, writers);
        k = close;
      }
      for (const auto& [ident, hits] : writers) {
        const bool multi_closure =
            std::any_of(hits.begin(), hits.end(), [&](const ClosureWrite& h) {
              return h.closure != hits.front().closure;
            });
        if (!multi_closure) continue;
        for (const ClosureWrite& hit : hits) {
          emit(out, file, toks[hit.token], name(),
               "'" + ident +
                   "' is written by-reference from more than one closure of "
                   "TaskGroup '" + group +
                   "' — closures run concurrently; give each closure its own "
                   "output or use std::atomic_ref");
        }
      }
    }
  }

  void collect_closure_writes(
      const Tokens& toks, const LambdaInfo& lam,
      const std::unordered_set<std::string>& atomic_names, std::size_t closure,
      std::unordered_map<std::string, std::vector<ClosureWrite>>& writers)
      const {
    if (!lam.by_ref_default && lam.ref_captures.empty()) return;
    // Locals declared in the closure body (decl-shaped predecessor, same
    // approximation as the chunked analysis).
    std::unordered_set<std::string> locals;
    for (std::size_t k = lam.body_begin; k < lam.body_end; ++k) {
      const Token& t = toks[k];
      if (t.kind != TokenKind::Identifier || is_decl_blocker(t.text)) continue;
      if (k == lam.body_begin) continue;
      const Token& prev = toks[k - 1];
      if ((prev.kind == TokenKind::Identifier && !is_decl_blocker(prev.text)) ||
          prev.text == ">" || prev.text == "*" || prev.text == "&" ||
          prev.text == "&&") {
        locals.insert(t.text);
      }
    }
    for (std::size_t k = lam.body_begin; k < lam.body_end; ++k) {
      const Token& t = toks[k];
      if (t.kind != TokenKind::Punct) continue;
      bool is_assign = false;
      for (const std::string_view op : kAssignOps) {
        if (t.text == op) {
          is_assign = true;
          break;
        }
      }
      Write w;
      bool got = false;
      if (is_assign) {
        got = extract_lvalue(toks, lam.body_begin, k, w);
      } else if (t.text == "++" || t.text == "--") {
        if (k + 1 < lam.body_end &&
            toks[k + 1].kind == TokenKind::Identifier) {
          got = extract_lvalue(toks, k + 1, k + 2, w);  // prefix
        } else {
          got = extract_lvalue(toks, lam.body_begin, k, w);  // postfix
        }
      }
      if (!got) continue;
      const std::string& base = toks[w.base].text;
      if (locals.count(base) != 0 || lam.params.count(base) != 0) continue;
      if (atomic_names.count(base) != 0) continue;
      if (!lam.by_ref_default && lam.ref_captures.count(base) == 0) continue;
      writers[base].push_back({closure, w.base});
    }
  }
};

}  // namespace

// ---- Registry and driver -----------------------------------------------------

const std::vector<std::unique_ptr<Check>>& all_checks() {
  static const std::vector<std::unique_ptr<Check>> checks = [] {
    std::vector<std::unique_ptr<Check>> v;
    v.push_back(std::make_unique<NonatomicSharedWriteCheck>());
    v.push_back(std::make_unique<BannedNondeterminismCheck>());
    v.push_back(std::make_unique<GrainSentinelCheck>());
    v.push_back(std::make_unique<PoolPlumbingCheck>());
    return v;
  }();
  return checks;
}

void run_checks_on_file(const SourceFile& file,
                        const std::vector<std::string>& checks,
                        std::vector<Diagnostic>& out) {
  std::vector<Diagnostic> found;
  for (const auto& check : all_checks()) {
    if (!checks.empty() &&
        std::find(checks.begin(), checks.end(), check->name()) ==
            checks.end()) {
      continue;
    }
    check->run(file, found);
  }
  found.erase(std::remove_if(found.begin(), found.end(),
                             [&](const Diagnostic& d) {
                               return file.suppressed(d.line, d.check);
                             }),
              found.end());
  std::sort(found.begin(), found.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.line, a.col, a.check) <
                     std::tie(b.line, b.col, b.check);
            });
  out.insert(out.end(), std::make_move_iterator(found.begin()),
             std::make_move_iterator(found.end()));
}

std::string format_diagnostic(const Diagnostic& d) {
  std::ostringstream ss;
  ss << d.file << ":" << d.line << ":" << d.col << ": warning: " << d.message
     << " [" << d.check << "]";
  return ss.str();
}

}  // namespace hmis::lint
