// hmis_lint source layer: lexing C++ into a token stream plus the
// comment-driven suppression map (NOLINT / HMIS_LINT_ALLOW).
//
// hmis_lint is a first-party, dependency-free checker in the clang-tidy
// mold: a registry of named checks runs over the translation units listed in
// compile_commands.json and emits `file:line:col: warning: ... [check-name]`
// diagnostics.  The checks enforce *syntactic* project contracts (DESIGN.md
// §8) — which writes appear inside parallel bodies, which RNG/clock sources
// are named, which literal arguments reach the parallel primitives — so a
// deterministic lexer plus small structural parsers is the right tool; no
// clang AST is needed, and the container/CI image needs no LLVM dev
// packages.  Check logic lives in checks.{hpp,cpp}; this header owns
// tokens, balanced-delimiter navigation, and suppressions.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace hmis::lint {

enum class TokenKind {
  Identifier,  // keywords are identifiers too; checks match by spelling
  Number,      // integer / floating literal, suffixes included
  String,      // "...", R"(...)", '...'
  Punct,       // one operator/punctuator, longest-match (e.g. "<<=", "::")
};

struct Token {
  TokenKind kind = TokenKind::Punct;
  std::string text;
  std::size_t line = 0;  // 1-based
  std::size_t col = 0;   // 1-based
};

/// One lexed file: tokens (comments/whitespace stripped), plus the
/// suppression map harvested from comments.
class SourceFile {
 public:
  /// Lexes `content` as `path`.  Never fails: unrecognized bytes become
  /// single-character punctuators.
  SourceFile(std::string path, std::string_view content);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const std::vector<Token>& tokens() const { return tokens_; }

  /// True when a diagnostic of `check` on `line` is suppressed by a
  /// NOLINT / NOLINT(check) / NOLINTNEXTLINE(check) comment or an
  /// HMIS_LINT_ALLOW(check: reason) comment (the reason is mandatory —
  /// a reasonless allow does not suppress).
  [[nodiscard]] bool suppressed(std::size_t line,
                                std::string_view check) const;

 private:
  void add_suppression(std::size_t line, std::string_view comment_body);

  std::string path_;
  std::vector<Token> tokens_;
  /// line -> suppressed check names; the empty string means "all checks".
  std::unordered_map<std::size_t, std::unordered_set<std::string>>
      suppressions_;
  /// Lines that contain at least one code token (a bare suppression comment
  /// on its own line applies to the next code line).
  std::unordered_set<std::size_t> code_lines_;
};

/// Load a file from disk; returns false (and leaves `content` empty) when
/// unreadable.
[[nodiscard]] bool read_file(const std::string& path, std::string& content);

/// Index of the token matching the opener at `open` (tokens[open] must be
/// one of ( [ { <-less-than is NOT supported here).  Returns tokens.size()
/// when unbalanced.
[[nodiscard]] std::size_t match_forward(const std::vector<Token>& tokens,
                                        std::size_t open);

/// Split the top-level comma-separated argument ranges of a call whose "("
/// is at `open` and ")" at `close`: returns [begin, end) token index pairs.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> split_args(
    const std::vector<Token>& tokens, std::size_t open, std::size_t close);

/// Extract the distinct "file" entries of a compile_commands.json, sorted.
/// Tolerant of the CMake output shape only: scans for `"file"` keys.
[[nodiscard]] std::vector<std::string> compile_commands_files(
    std::string_view json);

}  // namespace hmis::lint
