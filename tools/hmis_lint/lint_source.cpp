#include "lint_source.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace hmis::lint {

namespace {

[[nodiscard]] bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '$';
}
[[nodiscard]] bool ident_cont(char c) {
  return ident_start(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
}

/// Multi-character punctuators, longest first so greedy matching works.
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>", "<=",
    ">=",  "==",  "!=",  "&&",  "||", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  ".*",
};

}  // namespace

SourceFile::SourceFile(std::string path, std::string_view src)
    : path_(std::move(path)) {
  std::size_t i = 0;
  std::size_t line = 1;
  std::size_t col = 1;
  const std::size_t n = src.size();

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };

  while (i < n) {
    const char c = src[i];
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      advance(1);
      continue;
    }
    // Line comment: harvest suppressions, skip to newline.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t comment_line = line;
      std::size_t end = src.find('\n', i);
      if (end == std::string_view::npos) end = n;
      add_suppression(comment_line, src.substr(i + 2, end - i - 2));
      advance(end - i);
      continue;
    }
    // Block comment: suppressions attach to the line the comment starts on.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t comment_line = line;
      std::size_t end = src.find("*/", i + 2);
      end = end == std::string_view::npos ? n : end + 2;
      add_suppression(comment_line, src.substr(i + 2, end - i - 2));
      advance(end - i);
      continue;
    }
    // Raw string literal.
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      const std::size_t tok_line = line;
      const std::size_t tok_col = col;
      std::size_t d = i + 2;
      while (d < n && src[d] != '(') ++d;
      const std::string delim(src.substr(i + 2, d - i - 2));
      const std::string closer = ")" + delim + "\"";
      std::size_t end = src.find(closer, d);
      end = end == std::string_view::npos ? n : end + closer.size();
      tokens_.push_back({TokenKind::String, std::string(src.substr(i, end - i)),
                         tok_line, tok_col});
      code_lines_.insert(tok_line);
      advance(end - i);
      continue;
    }
    // String / char literal (backslash escapes, no line continuation).
    if (c == '"' || c == '\'') {
      const std::size_t tok_line = line;
      const std::size_t tok_col = col;
      std::size_t j = i + 1;
      while (j < n && src[j] != c) {
        j += src[j] == '\\' ? 2 : 1;
      }
      const std::size_t end = std::min(n, j + 1);
      tokens_.push_back({TokenKind::String, std::string(src.substr(i, end - i)),
                         tok_line, tok_col});
      code_lines_.insert(tok_line);
      advance(end - i);
      continue;
    }
    // Preprocessor directive: lex the line normally except the leading '#'
    // (checks want to see e.g. `#include <chrono>` tokens — '#', 'include').
    // Number (incl. leading-dot floats and digit separators / suffixes).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])) != 0)) {
      const std::size_t tok_line = line;
      const std::size_t tok_col = col;
      std::size_t j = i;
      while (j < n && (ident_cont(src[j]) || src[j] == '\'' || src[j] == '.' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P')))) {
        ++j;
      }
      tokens_.push_back(
          {TokenKind::Number, std::string(src.substr(i, j - i)), tok_line,
           tok_col});
      code_lines_.insert(tok_line);
      advance(j - i);
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      const std::size_t tok_line = line;
      const std::size_t tok_col = col;
      std::size_t j = i;
      while (j < n && ident_cont(src[j])) ++j;
      tokens_.push_back(
          {TokenKind::Identifier, std::string(src.substr(i, j - i)), tok_line,
           tok_col});
      code_lines_.insert(tok_line);
      advance(j - i);
      continue;
    }
    // Punctuator, longest match first.
    {
      const std::size_t tok_line = line;
      const std::size_t tok_col = col;
      std::size_t len = 1;
      for (const std::string_view p : kPuncts) {
        if (src.substr(i, p.size()) == p) {
          len = p.size();
          break;
        }
      }
      tokens_.push_back(
          {TokenKind::Punct, std::string(src.substr(i, len)), tok_line,
           tok_col});
      code_lines_.insert(tok_line);
      advance(len);
    }
  }
}

void SourceFile::add_suppression(std::size_t line,
                                 std::string_view body) {
  const auto note = [&](std::size_t target, std::string check) {
    suppressions_[target].insert(std::move(check));
  };
  // NOLINTNEXTLINE / NOLINT, optionally with a (check,check) list.
  for (const bool next_line : {true, false}) {
    const std::string_view tag = next_line ? "NOLINTNEXTLINE" : "NOLINT";
    std::size_t pos = body.find(tag);
    // "NOLINT" also occurs inside "NOLINTNEXTLINE"; skip that hit.
    while (!next_line && pos != std::string_view::npos &&
           body.substr(pos).rfind("NOLINTNEXTLINE", 0) == 0) {
      pos = body.find(tag, pos + tag.size());
    }
    if (pos == std::string_view::npos) continue;
    const std::size_t target = next_line ? line + 1 : line;
    const std::size_t after = pos + tag.size();
    if (after < body.size() && body[after] == '(') {
      const std::size_t close = body.find(')', after);
      std::string list(body.substr(after + 1,
                                   close == std::string_view::npos
                                       ? std::string_view::npos
                                       : close - after - 1));
      std::stringstream ss(list);
      std::string check;
      while (std::getline(ss, check, ',')) {
        check.erase(std::remove_if(check.begin(), check.end(), ::isspace),
                    check.end());
        if (!check.empty()) note(target, check);
      }
    } else {
      note(target, "");  // blanket
    }
  }
  // HMIS_LINT_ALLOW(check-name: reason) — the project suppression, which
  // *requires* a justification after the colon.
  constexpr std::string_view kAllow = "HMIS_LINT_ALLOW(";
  const std::size_t pos = body.find(kAllow);
  if (pos == std::string_view::npos) return;
  const std::size_t open = pos + kAllow.size() - 1;
  const std::size_t close = body.find(')', open);
  if (close == std::string_view::npos) return;
  const std::string_view inner = body.substr(open + 1, close - open - 1);
  const std::size_t colon = inner.find(':');
  if (colon == std::string_view::npos) return;
  std::string check(inner.substr(0, colon));
  check.erase(std::remove_if(check.begin(), check.end(), ::isspace),
              check.end());
  std::string_view reason = inner.substr(colon + 1);
  while (!reason.empty() && std::isspace(static_cast<unsigned char>(
                                reason.front())) != 0) {
    reason.remove_prefix(1);
  }
  if (check.empty() || reason.empty()) return;  // reason is mandatory
  // A trailing allow suppresses its own line; an allow on a comment-only
  // line suppresses the next code line (resolved lazily in suppressed()).
  suppressions_[line].insert(check);
  suppressions_[line + 1].insert(check);
}

bool SourceFile::suppressed(std::size_t line, std::string_view check) const {
  const auto it = suppressions_.find(line);
  if (it == suppressions_.end()) return false;
  return it->second.count("") != 0 ||
         it->second.count(std::string(check)) != 0;
}

bool read_file(const std::string& path, std::string& content) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  content = ss.str();
  return true;
}

std::size_t match_forward(const std::vector<Token>& tokens, std::size_t open) {
  const std::string& o = tokens[open].text;
  const std::string close = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::Punct) continue;
    const std::string& t = tokens[i].text;
    if (t == "(" || t == "[" || t == "{") ++depth;
    if (t == ")" || t == "]" || t == "}") {
      --depth;
      if (depth == 0) {
        return t == close ? i : tokens.size();  // mismatched kind: bail
      }
    }
  }
  return tokens.size();
}

std::vector<std::pair<std::size_t, std::size_t>> split_args(
    const std::vector<Token>& tokens, std::size_t open, std::size_t close) {
  std::vector<std::pair<std::size_t, std::size_t>> args;
  if (close <= open + 1) return args;  // zero args
  int paren = 0;
  int angle = 0;
  std::size_t begin = open + 1;
  for (std::size_t i = open + 1; i < close; ++i) {
    const std::string& t = tokens[i].text;
    if (tokens[i].kind == TokenKind::Punct) {
      if (t == "(" || t == "[" || t == "{") ++paren;
      if (t == ")" || t == "]" || t == "}") --paren;
      // Angle tracking is heuristic (comparisons look like brackets); only
      // trust it when it stays balanced within the argument.
      if (t == "<") ++angle;
      if (t == ">") angle = std::max(0, angle - 1);
      if (t == "," && paren == 0 && angle == 0) {
        args.emplace_back(begin, i);
        begin = i + 1;
      }
    }
  }
  args.emplace_back(begin, close);
  return args;
}

std::vector<std::string> compile_commands_files(std::string_view json) {
  std::vector<std::string> files;
  constexpr std::string_view kKey = "\"file\"";
  std::size_t pos = 0;
  while ((pos = json.find(kKey, pos)) != std::string_view::npos) {
    pos += kKey.size();
    while (pos < json.size() &&
           (json[pos] == ':' ||
            std::isspace(static_cast<unsigned char>(json[pos])) != 0)) {
      ++pos;
    }
    if (pos >= json.size() || json[pos] != '"') continue;
    const std::size_t end = json.find('"', pos + 1);
    if (end == std::string_view::npos) break;
    files.emplace_back(json.substr(pos + 1, end - pos - 1));
    pos = end + 1;
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace hmis::lint
