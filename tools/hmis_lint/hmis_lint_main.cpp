// hmis_lint driver.
//
// Usage:
//   hmis_lint [--compile-commands <path>] [--check <name>]...
//             [--filter <path-prefix>] [--list-checks] [file...]
//
// Files come from explicit arguments plus (when --compile-commands is given)
// the distinct "file" entries of the database, sorted for deterministic
// output.  Exit status is 1 when any diagnostic survives suppression, 2 on
// usage/IO errors, 0 otherwise.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "checks.hpp"
#include "lint_source.hpp"

namespace {

int usage(std::ostream& os, int rc) {
  os << "usage: hmis_lint [--compile-commands <path>] [--check <name>]...\n"
        "                 [--filter <path-prefix>] [--list-checks] [file...]\n"
        "\n"
        "Runs the hmis project checks over the given sources (and every file\n"
        "listed in the compile_commands.json, when provided).  --check limits\n"
        "the run to the named checks; --filter keeps only files whose path\n"
        "starts with the prefix.  Exits 1 if any diagnostic is emitted.\n";
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::vector<std::string> checks;
  std::vector<std::string> filters;
  std::string compile_commands;
  bool list_checks = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "hmis_lint: missing value for " << arg << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (arg == "--list-checks") {
      list_checks = true;
    } else if (arg == "--compile-commands") {
      const char* v = value();
      if (v == nullptr) return 2;
      compile_commands = v;
    } else if (arg == "--check") {
      const char* v = value();
      if (v == nullptr) return 2;
      checks.emplace_back(v);
    } else if (arg == "--filter") {
      const char* v = value();
      if (v == nullptr) return 2;
      filters.emplace_back(v);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "hmis_lint: unknown option " << arg << "\n";
      return usage(std::cerr, 2);
    } else {
      files.push_back(arg);
    }
  }

  if (list_checks) {
    for (const auto& check : hmis::lint::all_checks()) {
      std::cout << check->name() << "\n";
    }
    return 0;
  }

  for (const std::string& name : checks) {
    const auto& all = hmis::lint::all_checks();
    const bool known =
        std::any_of(all.begin(), all.end(),
                     [&](const auto& c) { return c->name() == name; });
    if (!known) {
      std::cerr << "hmis_lint: unknown check '" << name
                << "' (see --list-checks)\n";
      return 2;
    }
  }

  if (!compile_commands.empty()) {
    std::string json;
    if (!hmis::lint::read_file(compile_commands, json)) {
      std::cerr << "hmis_lint: cannot read " << compile_commands << "\n";
      return 2;
    }
    for (std::string& f : hmis::lint::compile_commands_files(json)) {
      files.push_back(std::move(f));
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  if (!filters.empty()) {
    files.erase(std::remove_if(files.begin(), files.end(),
                               [&](const std::string& f) {
                                 return std::none_of(
                                     filters.begin(), filters.end(),
                                     [&](const std::string& p) {
                                       return f.rfind(p, 0) == 0;
                                     });
                               }),
                files.end());
  }
  if (files.empty()) {
    std::cerr << "hmis_lint: no input files\n";
    return usage(std::cerr, 2);
  }

  bool io_error = false;
  std::vector<hmis::lint::Diagnostic> diags;
  for (const std::string& path : files) {
    std::string content;
    if (!hmis::lint::read_file(path, content)) {
      std::cerr << "hmis_lint: cannot read " << path << "\n";
      io_error = true;
      continue;
    }
    const hmis::lint::SourceFile file(path, content);
    hmis::lint::run_checks_on_file(file, checks, diags);
  }

  for (const auto& d : diags) {
    std::cout << hmis::lint::format_diagnostic(d) << "\n";
  }
  std::cerr << "hmis_lint: " << diags.size() << " diagnostic"
            << (diags.size() == 1 ? "" : "s") << " across " << files.size()
            << " file" << (files.size() == 1 ? "" : "s") << "\n";
  if (io_error) return 2;
  return diags.empty() ? 0 : 1;
}
