// hmis_lint checks: the four project-contract rules (DESIGN.md §8).
//
//   hmis-nonatomic-shared-write   plain stores through by-ref-captured state
//                                 inside parallel_for / parallel_for_chunks /
//                                 run_chunks bodies (and racing TaskGroup
//                                 closures) unless atomic or provably into
//                                 per-chunk disjoint index ranges — the PR 3
//                                 inhibit-byte bug class.
//   hmis-banned-nondeterminism    std::random_device / rand / time / *::now()
//                                 in library code, iteration over
//                                 unordered_{map,set}, address-as-value
//                                 ordering — counter-RNG and sorted orders
//                                 only.
//   hmis-grain-sentinel           hardcoded nonzero grain literals passed to
//                                 the parallel primitives instead of the
//                                 0-means-default sentinel (which is what the
//                                 HMIS_GRAIN override hooks).
//   hmis-pool-plumbing            global_pool() (or resolve_pool(nullptr))
//                                 reached for from inside src/hmis/ library
//                                 code instead of threading opt.pool — the
//                                 permutation_mis review bug class.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lint_source.hpp"

namespace hmis::lint {

struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  std::size_t col = 0;
  std::string check;
  std::string message;
};

class Check {
 public:
  virtual ~Check() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Append diagnostics for `file`.  Suppression filtering happens in the
  /// driver, not here.
  virtual void run(const SourceFile& file,
                   std::vector<Diagnostic>& out) const = 0;
};

/// All registered checks, in stable (reporting) order.
[[nodiscard]] const std::vector<std::unique_ptr<Check>>& all_checks();

/// Run `checks` (empty = all) over one file, apply suppressions, and append
/// the surviving diagnostics sorted by (line, col, check).
void run_checks_on_file(const SourceFile& file,
                        const std::vector<std::string>& checks,
                        std::vector<Diagnostic>& out);

/// clang-tidy-style rendering: `file:line:col: warning: msg [check]`.
[[nodiscard]] std::string format_diagnostic(const Diagnostic& d);

}  // namespace hmis::lint
