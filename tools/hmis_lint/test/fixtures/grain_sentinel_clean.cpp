// hmis_lint fixture — hmis-grain-sentinel, clean cases.
#include <cstddef>
#include <cstdint>
#include <vector>

// The sentinel itself: 0 means "defer to default_grain() / HMIS_GRAIN".
void relabel(std::vector<std::uint32_t>& ids, std::size_t n, Metrics* m,
             ThreadPool* pool) {
  par::parallel_for(
      0, n, [&](std::size_t i) { ids[i] = ids[i] + 1; }, m, pool, 0);
}

// Grain defaulted entirely.
std::uint64_t total(std::span<const std::uint32_t> w, Metrics* m,
                    ThreadPool* pool) {
  return par::reduce_sum<std::uint64_t>(
      0, w.size(), [&](std::size_t i) { return w[i]; }, m, pool);
}

// Computed grain: a named value can be tuned and traced, unlike a literal.
void order(std::vector<std::uint32_t>& v, const Tuning& tuning, Metrics* m,
           ThreadPool* pool) {
  par::parallel_sort(v, std::less<std::uint32_t>{}, m, pool,
                     tuning.sort_grain);
}

// Two-argument plan_chunks defers to the default grain.
ChunkPlan plan(std::size_t n, std::size_t threads) {
  return par::plan_chunks(n, threads);
}
