// hmis_lint fixture — hmis-nonatomic-shared-write, clean cases.
// Every pattern here is a sanctioned parallel write; the harness asserts
// zero diagnostics on this file.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

// The shipped PR 3 fix: idempotent relaxed store through std::atomic_ref.
void inhibit_losers(MutableHypergraph& mh, std::span<const EdgeId> edges,
                    std::vector<std::uint8_t>& inhibited, const Round& round) {
  par::parallel_for(
      0, edges.size(),
      [&](std::size_t i) {
        for (const VertexId v : mh.edge(edges[i])) {
          if (!round.wins(v)) {
            std::atomic_ref<std::uint8_t>(inhibited[v])
                .store(1, std::memory_order_relaxed);
          }
        }
      },
      nullptr, nullptr);
}

// Disjoint writes: v is derived from the loop parameter by a pure subscript
// load, so distinct iterations hit distinct slots of marked.
void mark_live(std::span<const VertexId> live, std::vector<std::uint8_t>& marked) {
  par::parallel_for(
      0, live.size(),
      [&](std::size_t i) {
        const VertexId v = live[i];
        marked[v] = 1;
      },
      nullptr, nullptr);
}

// Scatter through a precomputed offset table: offsets[i] is injective by
// construction (exclusive scan), and the subscript is derived from i.
void scatter(std::span<const std::size_t> offsets,
             std::span<const VertexId> src, std::vector<VertexId>& out) {
  par::parallel_for(
      0, src.size(),
      [&](std::size_t i) { out[offsets[i]] = src[i]; }, nullptr, nullptr);
}

// Per-chunk partials: block_sums[c] is chunk-private by the chunk index.
std::uint64_t chunked_sum(std::span<const std::uint32_t> data, ThreadPool& tp,
                          const ChunkPlan& plan,
                          std::vector<std::uint64_t>& block_sums) {
  tp.run_chunks(plan.chunks, [&](std::size_t c) {
    std::uint64_t acc = 0;
    for (std::size_t i = plan.lo(c); i < plan.hi(c); ++i) acc += data[i];
    block_sums[c] = acc;
  });
  std::uint64_t total = 0;
  for (const std::uint64_t s : block_sums) total += s;
  return total;
}

// Atomic counter shared across chunks.
std::size_t count_marked(const std::vector<std::uint8_t>& marked,
                         ThreadPool& tp, const ChunkPlan& plan) {
  std::atomic<std::size_t> total{0};
  tp.run_chunks(plan.chunks, [&](std::size_t c) {
    std::size_t local = 0;
    for (std::size_t i = plan.lo(c); i < plan.hi(c); ++i) {
      local += marked[i] != 0 ? 1u : 0u;
    }
    total += local;
  });
  return total.load();
}

// One output identifier per TaskGroup closure (the sbl/bl split pattern).
std::size_t count_both_sides(std::span<const VertexId> verts,
                             std::size_t mid, ThreadPool* pool) {
  par::TaskGroup tg(pool);
  std::size_t left = 0;
  std::size_t right = 0;
  tg.run([&] { left = scan_range(verts, 0, mid); });
  tg.run([&] { right = scan_range(verts, mid, verts.size()); });
  tg.wait();
  return left + right;
}
