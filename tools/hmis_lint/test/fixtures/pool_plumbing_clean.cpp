// hmis_lint fixture — hmis-pool-plumbing, clean cases.
#include <cstddef>

// Entry points resolve the caller's pool exactly once and pass it down.
MisResult solve_rounds(const Hypergraph& h, const MisOptions& opt) {
  MisResult result;
  ThreadPool& tp = par::resolve_pool(opt.pool);
  for (std::size_t round = 0; round < opt.max_rounds; ++round) {
    step(h, tp, result);
  }
  return result;
}

// Inner layers take the already-resolved pool as a parameter.
void step_all(const Hypergraph& h, ThreadPool& tp, MisResult& result) {
  par::parallel_for(
      0, h.num_vertices(), [&](std::size_t i) { result.touch(i); }, nullptr,
      &tp);
}
