// hmis_lint fixture — hmis-nonatomic-shared-write, sharded data plane,
// flagged cases.
//
// Lines carrying a flag marker must produce exactly the named diagnostic;
// the harness asserts set equality.  Fixtures are lexed, never compiled.
#include <cstddef>
#include <cstdint>
#include <vector>

// A single scalar debt total bumped from every shard: lost-update race.
// Per-shard ledgers exist precisely so this shape never ships.
std::uint64_t total_stale(const std::vector<ShardState>& shard_state_,
                          std::size_t shard_count, ThreadPool* pool) {
  std::uint64_t total = 0;
  par::parallel_for_shards(
      shard_count,
      [&](std::size_t s) {
        total += shard_state_[s].stale_entries;  // HMIS-FLAG: hmis-nonatomic-shared-write
      },
      0, pool);
  return total;
}

// Subscript laundered through a call: owner_of(s) is a value, not the shard
// index itself, so two shards may compute the same slot.
void scatter_by_owner(std::vector<std::uint32_t>& counts,
                      std::size_t shard_count, ThreadPool* pool) {
  par::parallel_for_shards(
      shard_count,
      [&](std::size_t s) {
        counts[owner_of(s)] += 1;  // HMIS-FLAG: hmis-nonatomic-shared-write
      },
      0, pool);
}

// Writing a NEIGHBOUR shard's ledger: s + 1 wraps into another task's slot,
// so the subscript-by-shard-parameter exemption must not apply to offsets
// that leave the shard.  (The wrap index is a fresh local laundered through
// a call, so the derivation from s is severed.)
void steal_from_next(std::vector<ShardState>& shard_state_,
                     std::size_t shard_count, ThreadPool* pool) {
  par::parallel_for_shards(
      shard_count,
      [&](std::size_t s) {
        const std::size_t next = wrap(s + 1, shard_count);
        shard_state_[next].live_entries += 1;  // HMIS-FLAG: hmis-nonatomic-shared-write
      },
      0, pool);
}
