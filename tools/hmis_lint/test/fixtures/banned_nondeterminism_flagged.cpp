// hmis_lint fixture — hmis-banned-nondeterminism, flagged cases.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <random>
#include <unordered_map>
#include <vector>

// Environment entropy: results must be pure functions of the request seed.
std::uint64_t seed_from_entropy() {
  std::random_device rd;  // HMIS-FLAG: hmis-banned-nondeterminism
  return static_cast<std::uint64_t>(rd());
}

// C RNG.
double jitter() {
  return static_cast<double>(rand()) / RAND_MAX;  // HMIS-FLAG: hmis-banned-nondeterminism
}

// Wall clock in a result path.
std::uint64_t stage_stamp() {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());  // HMIS-FLAG: hmis-banned-nondeterminism
}

// Hash-table iteration order feeding output order.
std::vector<int> histogram_keys(const std::unordered_map<int, int>& histo) {
  std::vector<int> keys;
  for (const auto& [k, n] : histo) {  // HMIS-FLAG: hmis-banned-nondeterminism
    (void)n;
    keys.push_back(k);
  }
  return keys;
}

// Explicit iterator walk over an unordered container.
int first_bucket(const std::unordered_map<int, int>& histo) {
  std::unordered_set<int> seen;
  auto it = seen.begin();  // HMIS-FLAG: hmis-banned-nondeterminism
  (void)it;
  return histo.empty() ? 0 : 1;
}

// Pointer value as an ordering key: allocation-order nondeterminism.
std::uint64_t order_key(const Node* node) {
  return static_cast<std::uint64_t>(
      reinterpret_cast<std::uintptr_t>(node));  // HMIS-FLAG: hmis-banned-nondeterminism
}

// std::less over pointers orders by address.
void sort_nodes(std::vector<Node*>& nodes) {
  std::sort(nodes.begin(), nodes.end(), std::less<Node*>{});  // HMIS-FLAG: hmis-banned-nondeterminism
}
