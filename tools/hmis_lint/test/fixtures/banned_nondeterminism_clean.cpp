// hmis_lint fixture — hmis-banned-nondeterminism, clean cases.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

// Counter-RNG: randomness is a pure function of (seed, stream, counter).
std::uint64_t round_priority(const util::CounterRng& rng, std::uint64_t stage,
                             VertexId v) {
  return rng.priority(stage, v);
}

// Ordered map: iteration order is the key order, deterministic.
std::vector<int> histogram_keys(const std::map<int, int>& histo) {
  std::vector<int> keys;
  for (const auto& [k, n] : histo) {
    (void)n;
    keys.push_back(k);
  }
  return keys;
}

// Unordered lookup (no iteration) is fine: order never escapes.  (Named
// differently from the ordered map above: the checker's container-type
// harvest is by name, file-wide.)
int lookup(const std::unordered_map<int, int>& index, int key) {
  const auto it = index.find(key);
  return it == index.end() ? 0 : it->second;
}

// Unordered accumulation drained through an explicit sort before the order
// can escape.
std::vector<int> sorted_keys(const std::unordered_map<int, int>& counts) {
  std::vector<int> keys;
  keys.reserve(counts.size());
  for (int k = 0; k < 64; ++k) {
    if (counts.count(k) != 0) keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// Ordering by id, not by address.
void sort_nodes(std::vector<Node*>& nodes) {
  std::sort(nodes.begin(), nodes.end(),
            [](const Node* a, const Node* b) { return a->id < b->id; });
}

// Metering with a justified allow: the reading feeds metrics, not results.
std::uint64_t metered_stamp() {
  // HMIS_LINT_ALLOW(hmis-banned-nondeterminism: metrics-only reading, mirrors util::Timer)
  const auto t = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(t.time_since_epoch().count());
}
