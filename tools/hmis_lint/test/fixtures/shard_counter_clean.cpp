// hmis_lint fixture — hmis-nonatomic-shared-write, sharded data plane,
// clean cases.  Every pattern here is a sanctioned per-shard write; the
// harness asserts zero diagnostics on this file.
#include <cstddef>
#include <cstdint>
#include <vector>

// The PR 8 debt ledger, verbatim shape: parallel_for_shards hands each task
// its own shard index, so ShardState slots are task-private even though the
// vector itself is shared by reference.
void account_removals(std::vector<ShardState>& shard_state_,
                      std::span<const std::uint32_t> removed_per_shard,
                      std::size_t shard_count, ThreadPool* pool) {
  par::parallel_for_shards(
      shard_count,
      [&](std::size_t s) {
        shard_state_[s].live_entries -= removed_per_shard[s];
        shard_state_[s].stale_entries += removed_per_shard[s];
      },
      0, pool);
}

// The dense gather: the edge id is loaded out of shard s's own incidence
// segment, so the word it owns is reachable from exactly one shard.  The
// derivation passes through calls (.data(), seg(v, s)) — taint must survive
// the surrounding pointer arithmetic.
void mark_shard_edges(const std::vector<Pool>& inc_pools_,
                      std::span<const std::uint32_t> inc_seg_off_,
                      std::span<const std::uint32_t> inc_seg_len_,
                      VertexId v, std::size_t shard_count,
                      std::uint64_t* words, ThreadPool* pool) {
  par::parallel_for_shards(
      shard_count,
      [&](std::size_t s) {
        const EdgeId* p = inc_pools_[s].data() + inc_seg_off_[seg(v, s)];
        for (std::uint32_t j = 0; j < inc_seg_len_[seg(v, s)]; ++j) {
          const EdgeId e = p[j];
          words[e >> 6] |= 1ULL << (e & 63);
        }
      },
      0, pool);
}

// Per-shard output runs: shard_runs_[s] is shard-private by the shard index,
// and member calls on the shard's own run are fine.
void rebuild_runs(std::vector<ShardRun>& shard_runs_, std::size_t shard_count,
                  const ShardPlan& plan_, ThreadPool* pool) {
  par::parallel_for_shards(
      shard_count,
      [&](std::size_t s) {
        shard_runs_[s].clear();
        shard_runs_[s].reserve(plan_.stride);
      },
      0, pool);
}
