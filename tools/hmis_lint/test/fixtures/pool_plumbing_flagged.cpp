// hmis_lint fixture — hmis-pool-plumbing, flagged cases.
//
// The permutation_mis review bug class: library code grabbing the process
// pool directly instead of threading the caller's opt.pool, which breaks
// nested engines and the zero-worker injection path.
#include <cstddef>
#include <vector>

MisResult solve_rounds(const Hypergraph& h, const MisOptions& opt) {
  MisResult result;
  ThreadPool& tp = par::global_pool();  // HMIS-FLAG: hmis-pool-plumbing
  for (std::size_t round = 0; round < opt.max_rounds; ++round) {
    step(h, tp, result);
  }
  return result;
}

void warmup(const MisOptions& opt) {
  (void)opt;
  ThreadPool& tp = par::resolve_pool(nullptr);  // HMIS-FLAG: hmis-pool-plumbing
  tp.run_chunks({}, [](std::size_t) {});
}
