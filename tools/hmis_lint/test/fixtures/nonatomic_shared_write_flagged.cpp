// hmis_lint fixture — hmis-nonatomic-shared-write, flagged cases.
//
// Lines carrying a flag marker must produce exactly the named diagnostic;
// the harness asserts set equality, so any extra or missing diagnostic on
// this file is a test failure.  Fixtures are lexed, never compiled.
#include <cstddef>
#include <cstdint>
#include <vector>

// The PR 3 inhibit-byte bug, verbatim shape: the endpoint `v` comes out of
// the edge's vertex list, and distinct edges share endpoints across chunks,
// so two chunks can race on inhibited[v].  (The shipped fix stores through
// std::atomic_ref — see the clean fixture.)
void inhibit_losers(MutableHypergraph& mh, std::span<const EdgeId> edges,
                    std::vector<std::uint8_t>& inhibited, const Round& round) {
  par::parallel_for(
      0, edges.size(),
      [&](std::size_t i) {
        for (const VertexId v : mh.edge(edges[i])) {
          if (!round.wins(v)) {
            inhibited[v] = 1;  // HMIS-FLAG: hmis-nonatomic-shared-write
          }
        }
      },
      nullptr, nullptr);
}

// By-ref captured scalar bumped from every chunk: a lost-update race.
std::size_t count_marked(const std::vector<std::uint8_t>& marked,
                         ThreadPool& tp, const ChunkPlan& plan) {
  std::size_t total = 0;
  tp.run_chunks(plan.chunks, [&](std::size_t c) {
    for (std::size_t i = plan.lo(c); i < plan.hi(c); ++i) {
      if (marked[i] != 0) {
        ++total;  // HMIS-FLAG: hmis-nonatomic-shared-write
      }
    }
  });
  return total;
}

// Subscript laundered through a call: f(i) is a value, not a chunk-private
// index, so two chunks may compute the same slot.
void scatter_by_value(std::vector<std::uint32_t>& hist, std::size_t n,
                      const Mapper& f) {
  par::parallel_for(
      0, n,
      [&](std::size_t i) {
        hist[f.bucket(i)] += 1;  // HMIS-FLAG: hmis-nonatomic-shared-write
      },
      nullptr, nullptr);
}

// Two closures of one TaskGroup accumulating into the same identifier.
std::size_t count_both_sides(std::span<const VertexId> verts,
                             std::size_t mid, ThreadPool* pool) {
  par::TaskGroup tg(pool);
  std::size_t hits = 0;
  tg.run([&] { hits += scan_range(verts, 0, mid); });  // HMIS-FLAG: hmis-nonatomic-shared-write
  tg.run([&] { hits += scan_range(verts, mid, verts.size()); });  // HMIS-FLAG: hmis-nonatomic-shared-write
  tg.wait();
  return hits;
}
