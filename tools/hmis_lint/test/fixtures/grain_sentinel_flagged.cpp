// hmis_lint fixture — hmis-grain-sentinel, flagged cases.
//
// Hardcoded grain literals defeat the 0-means-default sentinel: the env
// override (HMIS_GRAIN) and per-pool tuning only see calls that pass 0 or a
// computed value.  The PR 3 third-pass parallel_sort regression was exactly
// a hardcoded literal.
#include <cstddef>
#include <cstdint>
#include <vector>

void relabel(std::vector<std::uint32_t>& ids, std::size_t n, Metrics* m,
             ThreadPool* pool) {
  par::parallel_for(
      0, n, [&](std::size_t i) { ids[i] = ids[i] + 1; }, m, pool,
      4096);  // HMIS-FLAG: hmis-grain-sentinel
}

std::uint64_t total(std::span<const std::uint32_t> w, Metrics* m,
                    ThreadPool* pool) {
  return par::reduce_sum<std::uint64_t>(
      0, w.size(), [&](std::size_t i) { return w[i]; }, m, pool,
      1024);  // HMIS-FLAG: hmis-grain-sentinel
}

void order(std::vector<std::uint32_t>& v, Metrics* m, ThreadPool* pool) {
  par::parallel_sort(v, std::less<std::uint32_t>{}, m, pool,
                     2048);  // HMIS-FLAG: hmis-grain-sentinel
}

ChunkPlan plan(std::size_t n, std::size_t threads) {
  return par::plan_chunks(n, threads, 512);  // HMIS-FLAG: hmis-grain-sentinel
}
