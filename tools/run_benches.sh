#!/usr/bin/env bash
# Perf trajectory harness: run the bench suite and emit BENCH_PR<N>.json so
# future PRs can diff solves/sec, allocs/round, and coloring-kernel timings
# against a recorded baseline.
#
# Usage:
#   tools/run_benches.sh                 # full scale, writes BENCH_PR<PR>.json
#   HMIS_BENCH_SCALE=quick tools/run_benches.sh   # smoke scale
#   PR=9 tools/run_benches.sh            # stamp + name for a different PR
#   BUILD_DIR=build-dev OUT=custom.json tools/run_benches.sh
#
# The script only parses the greppable "tag:" tables the bench binaries
# print (machine-stable by design, DESIGN.md §5); google-benchmark timing
# cases are skipped (--benchmark_filter=NONE) to keep runtime bounded.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
PR=${PR:-9}
OUT=${OUT:-BENCH_PR${PR}.json}
SCALE=${HMIS_BENCH_SCALE:-full}
LOG_DIR=$(mktemp -d)
trap 'rm -rf "$LOG_DIR"' EXIT

run_bench() {
  local name=$1
  local bin="$BUILD_DIR/bench/$name"
  if [[ ! -x "$bin" ]]; then
    echo "run_benches: $bin not built (configure with benchmark installed)" >&2
    return 1
  fi
  echo "run_benches: running $name ..." >&2
  # A bench exiting nonzero (e.g. the legacy-vs-slab divergence cross-check
  # in bench_coloring_kernels, or an HMIS_CHECK abort) must fail the whole
  # harness — a baseline built on a broken run is worse than none.
  if ! "$bin" --benchmark_filter=NONE >"$LOG_DIR/$name.log"; then
    echo "run_benches: $name FAILED — no baseline written" >&2
    exit 1
  fi
}

run_bench bench_engine_throughput
run_bench bench_coloring_kernels
run_bench bench_shard_scaling
run_bench bench_graph_load

# ---- Table extractors ------------------------------------------------------
# Emit the numeric rows between "==== <tag> ..." and "==== end <tag> ====",
# as JSON objects (one per row), comma-joined.

table_rows() {  # $1 = log file, $2 = tag
  awk -v tag="$2" '
    $0 ~ "^==== " tag " " { inside = 1; next }
    $0 ~ "^==== end " tag { inside = 0 }
    inside && $1 ~ /^[0-9]/ { print }
  ' "$1"
}

json_engine_alloc() {
  table_rows "$LOG_DIR/bench_engine_throughput.log" "eng:alloc" | awk '
    { gsub(/x$/, "", $6);
      printf "%s{\"threads\":%s,\"frame\":\"%s\",\"rounds\":%s,\"fresh_allocs_per_round\":%s,\"arena_allocs_per_round\":%s}",
             (NR>1?",":""), $1, $2, $3, $4, $5 }'
}

json_engine_throughput() {
  table_rows "$LOG_DIR/bench_engine_throughput.log" "eng:throughput" | awk '
    { printf "%s{\"threads\":%s,\"instances\":%s,\"blocking_solves_per_sec\":%s,\"engine_solves_per_sec\":%s,\"identical\":%s}",
             (NR>1?",":""), $1, $2, $3, $4, ($6=="yes"?"true":"false") }'
}

json_coloring() {  # $1 = col:blue | col:red
  table_rows "$LOG_DIR/bench_coloring_kernels.log" "$1" | awk '
    { gsub(/%$/, "", $2); gsub(/x$/, "", $7);
      printf "%s{\"threads\":%s,\"batch_pct\":%s,\"batch\":%s,\"batches\":%s,\"legacy_us_per_batch\":%s,\"slab_us_per_batch\":%s,\"speedup\":%s}",
             (NR>1?",":""), $1, $2, $3, $4, $5, $6, $7 }'
}

json_shard_debt() {
  table_rows "$LOG_DIR/bench_shard_scaling.log" "shard:debt" | awk '
    { printf "%s{\"threads\":%s,\"schedule\":\"%s\",\"batches\":%s,\"hot_shards\":%s,\"cold_sweeps\":%s,\"sweeps\":%s,\"swept_entries\":%s,\"us_per_batch\":%s}",
             (NR>1?",":""), $1, $2, $3, $4, $5, $6, $7, $8 }'
}

json_shard_scaling() {
  table_rows "$LOG_DIR/bench_shard_scaling.log" "shard:scaling" | awk '
    { printf "%s{\"threads\":%s,\"shards\":%s,\"batches\":%s,\"us_per_batch\":%s,\"live_edges\":%s}",
             (NR>1?",":""), $1, $2, $3, $4, $5 }'
}

json_shard_alloc() {
  table_rows "$LOG_DIR/bench_shard_scaling.log" "shard:alloc" | awk '
    { printf "%s{\"threads\":%s,\"shards\":%s,\"batches\":%s,\"allocs_per_batch\":%s}",
             (NR>1?",":""), $1, $2, $3, $4 }'
}

json_coloring_alloc() {
  table_rows "$LOG_DIR/bench_coloring_kernels.log" "col:alloc" | awk '
    { gsub(/%$/, "", $2);
      printf "%s{\"threads\":%s,\"batch_pct\":%s,\"batches\":%s,\"allocs_per_batch\":%s}",
             (NR>1?",":""), $1, $2, $3, $4 }'
}

json_load_format() {
  # Rows key on the format name (the table's one numeric-first line is the
  # instance-shape banner, filtered out by the name match).
  awk '
    /^==== load:format / { inside = 1; next }
    /^==== end load:format/ { inside = 0 }
    inside && $1 ~ /^(text|hgb1|hgb2_owned|hgb2_mapped)$/ { print }
  ' "$LOG_DIR/bench_graph_load.log" | awk '
    { printf "%s{\"format\":\"%s\",\"bytes\":%s,\"ms\":%s,\"mb_per_sec\":%s,\"allocs\":%s}",
             (NR>1?",":""), $1, $2, $3, $4, $5 }'
}

json_load_solve() {
  table_rows "$LOG_DIR/bench_graph_load.log" "load:solve" | awk '
    { printf "%s{\"threads\":%s,\"identical\":%s}",
             (NR>1?",":""), $1, ($2=="yes"?"true":"false") }'
}

json_load_corpus() {
  awk '
    /^==== load:corpus / { inside = 1; next }
    /^==== end load:corpus/ { inside = 0 }
    inside && NF == 7 && $2 ~ /^[0-9]/ { print }
  ' "$LOG_DIR/bench_graph_load.log" | awk '
    { printf "%s{\"instance\":\"%s\",\"n\":%s,\"m\":%s,\"dim\":%s,\"load_ms\":%s,\"colors\":%s,\"color_ms\":%s}",
             (NR>1?",":""), $1, $2, $3, $4, $5, $6, $7 }'
}

# Every section must have extracted at least one row — an empty array means
# the table format drifted and the baseline would be silently hollow.
require_rows() {
  local label=$1 rows=$2
  if [[ -z "$rows" ]]; then
    echo "run_benches: no rows extracted for $label — table format drifted?" >&2
    exit 1
  fi
}

ENGINE_ALLOC=$(json_engine_alloc)
ENGINE_THROUGHPUT=$(json_engine_throughput)
COLORING_BLUE=$(json_coloring col:blue)
COLORING_RED=$(json_coloring col:red)
COLORING_ALLOC=$(json_coloring_alloc)
SHARD_DEBT=$(json_shard_debt)
SHARD_SCALING=$(json_shard_scaling)
SHARD_ALLOC=$(json_shard_alloc)
LOAD_FORMAT=$(json_load_format)
LOAD_SOLVE=$(json_load_solve)
LOAD_CORPUS=$(json_load_corpus)
require_rows "eng:alloc" "$ENGINE_ALLOC"
require_rows "eng:throughput" "$ENGINE_THROUGHPUT"
require_rows "col:blue" "$COLORING_BLUE"
require_rows "col:red" "$COLORING_RED"
require_rows "col:alloc" "$COLORING_ALLOC"
require_rows "shard:debt" "$SHARD_DEBT"
require_rows "shard:scaling" "$SHARD_SCALING"
require_rows "shard:alloc" "$SHARD_ALLOC"
require_rows "load:format" "$LOAD_FORMAT"
require_rows "load:solve" "$LOAD_SOLVE"
require_rows "load:corpus" "$LOAD_CORPUS"

{
  printf '{\n'
  printf '  "pr": %s,\n' "$PR"
  printf '  "generated_utc": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "scale": "%s",\n' "$SCALE"
  printf '  "host_cpus": %s,\n' "$(nproc)"
  printf '  "engine_alloc": [%s],\n' "$ENGINE_ALLOC"
  printf '  "engine_throughput": [%s],\n' "$ENGINE_THROUGHPUT"
  printf '  "coloring_blue": [%s],\n' "$COLORING_BLUE"
  printf '  "coloring_red": [%s],\n' "$COLORING_RED"
  printf '  "coloring_alloc": [%s],\n' "$COLORING_ALLOC"
  printf '  "shard_debt": [%s],\n' "$SHARD_DEBT"
  printf '  "shard_scaling": [%s],\n' "$SHARD_SCALING"
  printf '  "shard_alloc": [%s],\n' "$SHARD_ALLOC"
  printf '  "load_format": [%s],\n' "$LOAD_FORMAT"
  printf '  "load_solve": [%s],\n' "$LOAD_SOLVE"
  printf '  "load_corpus": [%s]\n' "$LOAD_CORPUS"
  printf '}\n'
} >"$OUT"

echo "run_benches: wrote $OUT" >&2
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$OUT" >/dev/null && echo "run_benches: $OUT is valid JSON" >&2
fi
