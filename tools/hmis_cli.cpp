// hmis — command-line front end for the hypermis library.
//
//   hmis gen   <family> <out.hg> [options]   generate an instance
//   hmis stats <in.hg>                       analyze + recommend (planner)
//   hmis solve <in.hg> [--algo A] [--seed S] [--threads T] [--out sets.txt]
//              [--stats] [--format text|json]
//              (--stats prints EREW work/depth + scheduler spawn/steal/join
//               counters alongside the round metrics; json always carries
//               them)
//   hmis batch <manifest> [--algo A] [--seed S] [--threads T]
//              [--max-inflight N] [--format text|json]
//              solve many instances through one async engine; the manifest
//              has one instance per line:  <path> [algo=A] [seed=S] [tag=T]
//              ('#' starts a comment, blank lines ignored; algo/seed default
//               to the command-line flags, tag to the path)
//   hmis verify <in.hg> <set.txt>            check independence/maximality
//   hmis color <in.hg> [--algo A]            strong coloring via iterated MIS
//
// Families for `gen`:
//   uniform  n m arity seed        | mixed  n m min max seed
//   linear   n m arity seed        | planted n m arity fraction seed
//   graph    n m seed              | interval n window stride
//   sunflower core petal petals    | sbl     n beta max_arity seed
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "hmis/core/coloring.hpp"
#include "hmis/core/planner.hpp"
#include "hmis/hmis.hpp"

namespace {

using namespace hmis;

int usage() {
  std::fprintf(stderr,
               "usage: hmis <gen|stats|solve|batch|verify|color> ... (see "
               "header comment / README)\n");
  return 2;
}

// ---- JSON helpers (no external deps; enough for the --format json mode) ----

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One solved run as a JSON object (shared by solve and batch).
std::string run_json(const std::string& tag, const core::MisRun& run,
                     double queue_seconds) {
  const auto& m = run.result.metrics;
  std::ostringstream os;
  os << "{\"tag\":\"" << json_escape(tag) << "\",\"algorithm\":\""
     << core::algorithm_name(run.algorithm) << "\",\"success\":"
     << (run.result.success ? "true" : "false");
  if (!run.result.success) {
    os << ",\"failure\":\"" << json_escape(run.result.failure_reason) << "\"}";
    return os.str();
  }
  os << ",\"size\":" << run.result.independent_set.size()
     << ",\"rounds\":" << run.result.rounds
     << ",\"inner_stages\":" << run.result.inner_stages
     << ",\"resamples\":" << run.result.resamples << ",\"time_ms\":"
     << run.result.seconds * 1e3 << ",\"queue_ms\":" << queue_seconds * 1e3
     << ",\"verified\":" << (run.verdict.ok() ? "true" : "false")
     << ",\"metrics\":{\"work\":" << m.work << ",\"depth\":" << m.depth
     << ",\"calls\":" << m.calls << "}}";
  return os.str();
}

std::string scheduler_json(std::size_t threads,
                           const par::SchedulerStats& sched) {
  std::ostringstream os;
  os << "{\"threads\":" << threads << ",\"spawns\":" << sched.spawns
     << ",\"steals\":" << sched.steals << ",\"joins\":" << sched.joins << "}";
  return os.str();
}

enum class OutputFormat { Text, Json };

bool parse_format(const std::string& value, OutputFormat* out) {
  if (value == "text") {
    *out = OutputFormat::Text;
    return true;
  }
  if (value == "json") {
    *out = OutputFormat::Json;
    return true;
  }
  std::fprintf(stderr, "unknown format '%s' (want text|json)\n",
               value.c_str());
  return false;
}

core::Algorithm parse_algorithm(const std::string& name) {
  for (const auto a : core::all_algorithms()) {
    if (name == core::algorithm_name(a)) return a;
  }
  if (name == "auto") return core::Algorithm::Auto;
  std::fprintf(stderr, "unknown algorithm '%s'\n", name.c_str());
  std::exit(2);
}

std::uint64_t arg_u64(const std::vector<std::string>& args, std::size_t i) {
  if (i >= args.size()) std::exit(usage());
  return std::strtoull(args[i].c_str(), nullptr, 10);
}

double arg_f64(const std::vector<std::string>& args, std::size_t i) {
  if (i >= args.size()) std::exit(usage());
  return std::strtod(args[i].c_str(), nullptr);
}

int cmd_gen(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const std::string family = args[0];
  const std::string out = args[1];
  Hypergraph h;
  if (family == "uniform") {
    h = gen::uniform_random(arg_u64(args, 2), arg_u64(args, 3),
                            arg_u64(args, 4), arg_u64(args, 5));
  } else if (family == "mixed") {
    h = gen::mixed_arity(arg_u64(args, 2), arg_u64(args, 3),
                         arg_u64(args, 4), arg_u64(args, 5),
                         arg_u64(args, 6));
  } else if (family == "linear") {
    h = gen::linear_random(arg_u64(args, 2), arg_u64(args, 3),
                           arg_u64(args, 4), arg_u64(args, 5));
  } else if (family == "planted") {
    h = gen::planted_mis(arg_u64(args, 2), arg_u64(args, 3),
                         arg_u64(args, 4), arg_f64(args, 5),
                         arg_u64(args, 6));
  } else if (family == "graph") {
    h = gen::random_graph(arg_u64(args, 2), arg_u64(args, 3),
                          arg_u64(args, 4));
  } else if (family == "interval") {
    h = gen::interval(arg_u64(args, 2), arg_u64(args, 3), arg_u64(args, 4));
  } else if (family == "sunflower") {
    h = gen::sunflower(arg_u64(args, 2), arg_u64(args, 3), arg_u64(args, 4));
  } else if (family == "sbl") {
    h = gen::sbl_regime(arg_u64(args, 2), arg_f64(args, 3),
                        arg_u64(args, 4), arg_u64(args, 5));
  } else {
    std::fprintf(stderr, "unknown family '%s'\n", family.c_str());
    return 2;
  }
  save_hypergraph(out, h);
  std::printf("wrote %s: n=%zu m=%zu dim=%zu\n", out.c_str(),
              h.num_vertices(), h.num_edges(), h.dimension());
  return 0;
}

int cmd_stats(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const Hypergraph h = load_hypergraph(args[0]);
  const auto report = core::analyze_instance(h);
  std::fputs(core::format_report(report).c_str(), stdout);
  return 0;
}

int cmd_solve(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const Hypergraph h = load_hypergraph(args[0]);
  core::Algorithm algorithm = core::Algorithm::Auto;
  core::FindOptions opt;
  std::string out_path;
  bool print_stats = false;
  OutputFormat format = OutputFormat::Text;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--algo" && i + 1 < args.size()) {
      algorithm = parse_algorithm(args[++i]);
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      opt.seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--threads" && i + 1 < args.size()) {
      par::set_global_threads(std::strtoull(args[++i].c_str(), nullptr, 10));
    } else if (args[i] == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (args[i] == "--stats") {
      print_stats = true;
    } else if (args[i] == "--format" && i + 1 < args.size()) {
      if (!parse_format(args[++i], &format)) return 2;
    } else {
      return usage();
    }
  }
  if (algorithm != core::Algorithm::Auto && !core::supports(algorithm, h)) {
    // Dimension is only one of the envelope criteria (LinearBL also needs a
    // linear hypergraph), so the message points at supports(), not a cause.
    std::fprintf(stderr,
                 "warning: %s is outside its applicability envelope on this "
                 "instance (see core::supports); run may stall or fail\n",
                 std::string(core::algorithm_name(algorithm)).c_str());
  }
  // Snapshot the global pool's scheduler counters around the solve so
  // --stats reports this run's spawns/steals/joins, not process history.
  // (Algorithms resolve a null FindOptions::pool to the global pool.)
  const par::SchedulerStats sched_before = par::global_pool().stats();
  const auto run = core::find_mis(h, algorithm, opt);
  const par::SchedulerStats sched = par::global_pool().stats() - sched_before;
  if (format == OutputFormat::Json) {
    // One machine-readable object: result + EREW metrics + scheduler
    // counters (the dashboard/bench-script feed).
    std::printf("{\"mode\":\"solve\",\"instance\":\"%s\",\"n\":%zu,"
                "\"m\":%zu,\"result\":%s,\"scheduler\":%s}\n",
                json_escape(args[0]).c_str(), h.num_vertices(), h.num_edges(),
                run_json(args[0], run, 0.0).c_str(),
                scheduler_json(par::global_pool().num_threads(),
                               sched).c_str());
    if (!run.result.success) return 1;
  } else {
    if (!run.result.success) {
      std::fprintf(stderr, "FAILED: %s\n", run.result.failure_reason.c_str());
      return 1;
    }
    std::printf("algorithm=%s |I|=%zu rounds=%zu time_ms=%.2f verified=%s\n",
                std::string(core::algorithm_name(run.algorithm)).c_str(),
                run.result.independent_set.size(), run.result.rounds,
                run.result.seconds * 1e3, run.verdict.ok() ? "yes" : "NO");
    if (print_stats) {
      const auto& m = run.result.metrics;
      std::printf("stats: work=%llu depth=%llu calls=%llu inner_stages=%llu\n",
                  static_cast<unsigned long long>(m.work),
                  static_cast<unsigned long long>(m.depth),
                  static_cast<unsigned long long>(m.calls),
                  static_cast<unsigned long long>(run.result.inner_stages));
      std::printf("scheduler: threads=%zu spawns=%llu steals=%llu joins=%llu\n",
                  par::global_pool().num_threads(),
                  static_cast<unsigned long long>(sched.spawns),
                  static_cast<unsigned long long>(sched.steals),
                  static_cast<unsigned long long>(sched.joins));
    }
  }
  if (!out_path.empty()) {
    std::ofstream os(out_path);
    for (const VertexId v : run.result.independent_set) os << v << '\n';
    if (format == OutputFormat::Text) std::printf("wrote %s\n", out_path.c_str());
  }
  return run.verdict.ok() ? 0 : 1;
}

// ---- hmis batch: many instances, one async engine --------------------------

struct ManifestEntry {
  std::string path;
  std::string tag;
  core::Algorithm algorithm = core::Algorithm::Auto;
  std::uint64_t seed = 0;
  bool has_algo = false;
  bool has_seed = false;
};

bool parse_manifest(const std::string& path,
                    std::vector<ManifestEntry>* entries) {
  std::ifstream is(path);
  if (!is.good()) {
    std::fprintf(stderr, "cannot read manifest %s\n", path.c_str());
    return false;
  }
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    ManifestEntry entry;
    if (!(ls >> entry.path)) continue;  // blank / comment-only line
    entry.tag = entry.path;
    std::string token;
    while (ls >> token) {
      if (token.rfind("algo=", 0) == 0) {
        entry.algorithm = parse_algorithm(token.substr(5));
        entry.has_algo = true;
      } else if (token.rfind("seed=", 0) == 0) {
        entry.seed = std::strtoull(token.c_str() + 5, nullptr, 10);
        entry.has_seed = true;
      } else if (token.rfind("tag=", 0) == 0) {
        entry.tag = token.substr(4);
      } else {
        std::fprintf(stderr, "%s:%zu: unknown manifest token '%s'\n",
                     path.c_str(), lineno, token.c_str());
        return false;
      }
    }
    entries->push_back(std::move(entry));
  }
  return true;
}

int cmd_batch(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  core::Algorithm default_algo = core::Algorithm::Auto;
  std::uint64_t default_seed = 1;
  engine::EngineOptions eopt;
  OutputFormat format = OutputFormat::Text;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--algo" && i + 1 < args.size()) {
      default_algo = parse_algorithm(args[++i]);
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      default_seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--threads" && i + 1 < args.size()) {
      eopt.threads = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--max-inflight" && i + 1 < args.size()) {
      eopt.max_inflight = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--format" && i + 1 < args.size()) {
      if (!parse_format(args[++i], &format)) return 2;
    } else {
      return usage();
    }
  }

  std::vector<ManifestEntry> entries;
  if (!parse_manifest(args[0], &entries)) return 2;
  if (entries.empty()) {
    std::fprintf(stderr, "manifest %s lists no instances\n", args[0].c_str());
    return 2;
  }

  // Load everything up front (so I/O cost stays out of the solve clock),
  // one Hypergraph per *distinct* path — a sweep manifest rerunning one
  // instance under many seeds shares a single copy (SolveRequest::graph is
  // a shared_ptr for exactly this).  Then submit the whole batch to one
  // engine and collect in order.
  std::map<std::string, std::shared_ptr<const Hypergraph>> loaded;
  std::vector<engine::SolveRequest> requests;
  requests.reserve(entries.size());
  for (const auto& entry : entries) {
    auto& graph = loaded[entry.path];
    if (graph == nullptr) graph = engine::share(load_hypergraph(entry.path));
    engine::SolveRequest req;
    req.graph = graph;
    req.algorithm = entry.has_algo ? entry.algorithm : default_algo;
    req.seed = entry.has_seed ? entry.seed : default_seed;
    req.tag = entry.tag;
    requests.push_back(std::move(req));
  }

  util::Timer wall;
  engine::Engine eng(eopt);
  auto futures = eng.submit_all(std::move(requests));

  std::size_t ok = 0;
  std::size_t failed = 0;
  std::ostringstream results_json;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const std::string& tag = entries[i].tag;
    std::string row;
    try {
      const engine::SolveResponse resp = futures[i].get();
      const bool good = resp.run.result.success && resp.run.verdict.ok();
      good ? ++ok : ++failed;
      if (format == OutputFormat::Json) {
        row = run_json(tag, resp.run, resp.queue_seconds);
      } else if (resp.run.result.success) {
        std::printf(
            "tag=%s algorithm=%s |I|=%zu rounds=%zu queue_ms=%.2f "
            "time_ms=%.2f verified=%s\n",
            tag.c_str(),
            std::string(core::algorithm_name(resp.run.algorithm)).c_str(),
            resp.run.result.independent_set.size(), resp.run.result.rounds,
            resp.queue_seconds * 1e3, resp.run.result.seconds * 1e3,
            resp.run.verdict.ok() ? "yes" : "NO");
      } else {
        std::printf("tag=%s FAILED: %s\n", tag.c_str(),
                    resp.run.result.failure_reason.c_str());
      }
    } catch (const std::exception& e) {
      ++failed;
      if (format == OutputFormat::Json) {
        row = "{\"tag\":\"" + json_escape(tag) +
              "\",\"success\":false,\"failure\":\"" + json_escape(e.what()) +
              "\"}";
      } else {
        std::printf("tag=%s ERROR: %s\n", tag.c_str(), e.what());
      }
    }
    if (format == OutputFormat::Json) {
      if (i > 0) results_json << ',';
      results_json << row;
    }
  }
  const double wall_seconds = wall.seconds();
  const auto stats = eng.stats();

  if (format == OutputFormat::Json) {
    std::printf(
        "{\"mode\":\"batch\",\"manifest\":\"%s\",\"results\":[%s],"
        "\"summary\":{\"instances\":%zu,\"ok\":%zu,\"failed\":%zu,"
        "\"wall_ms\":%g,\"solves_per_sec\":%g},"
        "\"engine\":{\"submitted\":%llu,\"completed\":%llu,\"failed\":%llu,"
        "\"peak_inflight\":%zu,\"scheduler\":%s}}\n",
        json_escape(args[0]).c_str(), results_json.str().c_str(),
        entries.size(), ok, failed, wall_seconds * 1e3,
        wall_seconds > 0 ? static_cast<double>(entries.size()) / wall_seconds
                         : 0.0,
        static_cast<unsigned long long>(stats.submitted),
        static_cast<unsigned long long>(stats.completed),
        static_cast<unsigned long long>(stats.failed), stats.peak_inflight,
        scheduler_json(eng.pool().num_threads(), stats.scheduler).c_str());
  } else {
    std::printf(
        "batch: instances=%zu ok=%zu failed=%zu wall_ms=%.2f "
        "solves_per_sec=%.2f\n",
        entries.size(), ok, failed, wall_seconds * 1e3,
        wall_seconds > 0 ? static_cast<double>(entries.size()) / wall_seconds
                         : 0.0);
    std::printf(
        "engine: threads=%zu peak_inflight=%zu spawns=%llu steals=%llu "
        "joins=%llu\n",
        eng.pool().num_threads(), stats.peak_inflight,
        static_cast<unsigned long long>(stats.scheduler.spawns),
        static_cast<unsigned long long>(stats.scheduler.steals),
        static_cast<unsigned long long>(stats.scheduler.joins));
  }
  return failed == 0 ? 0 : 1;
}

int cmd_verify(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const Hypergraph h = load_hypergraph(args[0]);
  std::ifstream is(args[1]);
  if (!is.good()) {
    std::fprintf(stderr, "cannot read %s\n", args[1].c_str());
    return 2;
  }
  std::vector<VertexId> set;
  VertexId v;
  while (is >> v) set.push_back(v);
  const auto verdict =
      verify_mis(h, std::span<const VertexId>(set.data(), set.size()));
  std::printf("independent=%s maximal=%s\n",
              verdict.independent ? "yes" : "no",
              verdict.maximal ? "yes" : "no");
  if (verdict.violating_edge) {
    std::printf("violated edge id: %u\n", *verdict.violating_edge);
  }
  if (verdict.addable_vertex) {
    std::printf("addable vertex: %u\n", *verdict.addable_vertex);
  }
  return verdict.ok() ? 0 : 1;
}

int cmd_color(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const Hypergraph h = load_hypergraph(args[0]);
  core::ColoringOptions opt;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--algo" && i + 1 < args.size()) {
      opt.algorithm = parse_algorithm(args[++i]);
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      opt.seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else {
      return usage();
    }
  }
  const auto coloring = core::strong_coloring(h, opt);
  if (!coloring.success) {
    std::fprintf(stderr, "FAILED: %s\n", coloring.failure_reason.c_str());
    return 1;
  }
  const bool ok = core::is_strong_coloring(h, coloring.color);
  std::printf("colors=%d valid=%s mis_rounds=%zu\n", coloring.num_colors,
              ok ? "yes" : "NO", coloring.total_mis_rounds);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "solve") return cmd_solve(args);
    if (cmd == "batch") return cmd_batch(args);
    if (cmd == "verify") return cmd_verify(args);
    if (cmd == "color") return cmd_color(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
