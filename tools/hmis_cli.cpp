// hmis — command-line front end for the hypermis library.
//
//   hmis gen   <family> <out.hg> [options]   generate an instance
//   hmis stats <in.hg>                       analyze + recommend (planner)
//   hmis solve <in.hg> [--algo A] [--seed S] [--threads T] [--out sets.txt]
//              [--stats]  (print EREW work/depth + scheduler spawn/steal/join
//                          counters alongside the round metrics)
//   hmis verify <in.hg> <set.txt>            check independence/maximality
//   hmis color <in.hg> [--algo A]            strong coloring via iterated MIS
//
// Families for `gen`:
//   uniform  n m arity seed        | mixed  n m min max seed
//   linear   n m arity seed        | planted n m arity fraction seed
//   graph    n m seed              | interval n window stride
//   sunflower core petal petals    | sbl     n beta max_arity seed
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "hmis/core/coloring.hpp"
#include "hmis/core/planner.hpp"
#include "hmis/hmis.hpp"

namespace {

using namespace hmis;

int usage() {
  std::fprintf(stderr,
               "usage: hmis <gen|stats|solve|verify|color> ... (see header "
               "comment / README)\n");
  return 2;
}

core::Algorithm parse_algorithm(const std::string& name) {
  for (const auto a : core::all_algorithms()) {
    if (name == core::algorithm_name(a)) return a;
  }
  if (name == "auto") return core::Algorithm::Auto;
  std::fprintf(stderr, "unknown algorithm '%s'\n", name.c_str());
  std::exit(2);
}

std::uint64_t arg_u64(const std::vector<std::string>& args, std::size_t i) {
  if (i >= args.size()) std::exit(usage());
  return std::strtoull(args[i].c_str(), nullptr, 10);
}

double arg_f64(const std::vector<std::string>& args, std::size_t i) {
  if (i >= args.size()) std::exit(usage());
  return std::strtod(args[i].c_str(), nullptr);
}

int cmd_gen(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const std::string family = args[0];
  const std::string out = args[1];
  Hypergraph h;
  if (family == "uniform") {
    h = gen::uniform_random(arg_u64(args, 2), arg_u64(args, 3),
                            arg_u64(args, 4), arg_u64(args, 5));
  } else if (family == "mixed") {
    h = gen::mixed_arity(arg_u64(args, 2), arg_u64(args, 3),
                         arg_u64(args, 4), arg_u64(args, 5),
                         arg_u64(args, 6));
  } else if (family == "linear") {
    h = gen::linear_random(arg_u64(args, 2), arg_u64(args, 3),
                           arg_u64(args, 4), arg_u64(args, 5));
  } else if (family == "planted") {
    h = gen::planted_mis(arg_u64(args, 2), arg_u64(args, 3),
                         arg_u64(args, 4), arg_f64(args, 5),
                         arg_u64(args, 6));
  } else if (family == "graph") {
    h = gen::random_graph(arg_u64(args, 2), arg_u64(args, 3),
                          arg_u64(args, 4));
  } else if (family == "interval") {
    h = gen::interval(arg_u64(args, 2), arg_u64(args, 3), arg_u64(args, 4));
  } else if (family == "sunflower") {
    h = gen::sunflower(arg_u64(args, 2), arg_u64(args, 3), arg_u64(args, 4));
  } else if (family == "sbl") {
    h = gen::sbl_regime(arg_u64(args, 2), arg_f64(args, 3),
                        arg_u64(args, 4), arg_u64(args, 5));
  } else {
    std::fprintf(stderr, "unknown family '%s'\n", family.c_str());
    return 2;
  }
  save_hypergraph(out, h);
  std::printf("wrote %s: n=%zu m=%zu dim=%zu\n", out.c_str(),
              h.num_vertices(), h.num_edges(), h.dimension());
  return 0;
}

int cmd_stats(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const Hypergraph h = load_hypergraph(args[0]);
  const auto report = core::analyze_instance(h);
  std::fputs(core::format_report(report).c_str(), stdout);
  return 0;
}

int cmd_solve(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const Hypergraph h = load_hypergraph(args[0]);
  core::Algorithm algorithm = core::Algorithm::Auto;
  core::FindOptions opt;
  std::string out_path;
  bool print_stats = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--algo" && i + 1 < args.size()) {
      algorithm = parse_algorithm(args[++i]);
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      opt.seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--threads" && i + 1 < args.size()) {
      par::set_global_threads(std::strtoull(args[++i].c_str(), nullptr, 10));
    } else if (args[i] == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (args[i] == "--stats") {
      print_stats = true;
    } else {
      return usage();
    }
  }
  if (algorithm != core::Algorithm::Auto && !core::supports(algorithm, h)) {
    // Dimension is only one of the envelope criteria (LinearBL also needs a
    // linear hypergraph), so the message points at supports(), not a cause.
    std::fprintf(stderr,
                 "warning: %s is outside its applicability envelope on this "
                 "instance (see core::supports); run may stall or fail\n",
                 std::string(core::algorithm_name(algorithm)).c_str());
  }
  // Snapshot the global pool's scheduler counters around the solve so
  // --stats reports this run's spawns/steals/joins, not process history.
  // (Algorithms resolve a null FindOptions::pool to the global pool.)
  const par::SchedulerStats sched_before = par::global_pool().stats();
  const auto run = core::find_mis(h, algorithm, opt);
  const par::SchedulerStats sched = par::global_pool().stats() - sched_before;
  if (!run.result.success) {
    std::fprintf(stderr, "FAILED: %s\n", run.result.failure_reason.c_str());
    return 1;
  }
  std::printf("algorithm=%s |I|=%zu rounds=%zu time_ms=%.2f verified=%s\n",
              std::string(core::algorithm_name(run.algorithm)).c_str(),
              run.result.independent_set.size(), run.result.rounds,
              run.result.seconds * 1e3, run.verdict.ok() ? "yes" : "NO");
  if (print_stats) {
    const auto& m = run.result.metrics;
    std::printf("stats: work=%llu depth=%llu calls=%llu inner_stages=%llu\n",
                static_cast<unsigned long long>(m.work),
                static_cast<unsigned long long>(m.depth),
                static_cast<unsigned long long>(m.calls),
                static_cast<unsigned long long>(run.result.inner_stages));
    std::printf("scheduler: threads=%zu spawns=%llu steals=%llu joins=%llu\n",
                par::global_pool().num_threads(),
                static_cast<unsigned long long>(sched.spawns),
                static_cast<unsigned long long>(sched.steals),
                static_cast<unsigned long long>(sched.joins));
  }
  if (!out_path.empty()) {
    std::ofstream os(out_path);
    for (const VertexId v : run.result.independent_set) os << v << '\n';
    std::printf("wrote %s\n", out_path.c_str());
  }
  return run.verdict.ok() ? 0 : 1;
}

int cmd_verify(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const Hypergraph h = load_hypergraph(args[0]);
  std::ifstream is(args[1]);
  if (!is.good()) {
    std::fprintf(stderr, "cannot read %s\n", args[1].c_str());
    return 2;
  }
  std::vector<VertexId> set;
  VertexId v;
  while (is >> v) set.push_back(v);
  const auto verdict =
      verify_mis(h, std::span<const VertexId>(set.data(), set.size()));
  std::printf("independent=%s maximal=%s\n",
              verdict.independent ? "yes" : "no",
              verdict.maximal ? "yes" : "no");
  if (verdict.violating_edge) {
    std::printf("violated edge id: %u\n", *verdict.violating_edge);
  }
  if (verdict.addable_vertex) {
    std::printf("addable vertex: %u\n", *verdict.addable_vertex);
  }
  return verdict.ok() ? 0 : 1;
}

int cmd_color(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const Hypergraph h = load_hypergraph(args[0]);
  core::ColoringOptions opt;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--algo" && i + 1 < args.size()) {
      opt.algorithm = parse_algorithm(args[++i]);
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      opt.seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else {
      return usage();
    }
  }
  const auto coloring = core::strong_coloring(h, opt);
  if (!coloring.success) {
    std::fprintf(stderr, "FAILED: %s\n", coloring.failure_reason.c_str());
    return 1;
  }
  const bool ok = core::is_strong_coloring(h, coloring.color);
  std::printf("colors=%d valid=%s mis_rounds=%zu\n", coloring.num_colors,
              ok ? "yes" : "NO", coloring.total_mis_rounds);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "solve") return cmd_solve(args);
    if (cmd == "verify") return cmd_verify(args);
    if (cmd == "color") return cmd_color(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
