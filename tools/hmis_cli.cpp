// hmis — command-line front end for the hypermis library.
//
//   hmis gen   <family> <out.hg> [family args]
//              [--format text|hgb1|hgb2] [--threads T]
//              generate an instance (sampling families run on the
//              scheduler; output identical for every thread count)
//   hmis convert <in> <out> [--format text|hgb1|hgb2]
//              re-encode a graph (input format sniffed; default out hgb2)
//   hmis stats <in.hg>                       analyze + recommend (planner)
//   hmis solve <in.hg> [--algo A] [--seed S] [--threads T] [--shards K]
//              [--out sets.txt] [--stats] [--format text|json]
//              (--stats prints EREW work/depth + scheduler spawn/steal/join
//               counters + residual data-plane sweep/debt counters alongside
//               the round metrics; json always carries them.  --shards
//               overrides the residual shard count — results are identical
//               for every value, see HMIS_SHARDS in the README)
//   hmis batch <manifest> [--algo A] [--seed S] [--threads T]
//              [--max-inflight N] [--format text|json]
//              solve many instances through one async engine; the manifest
//              has one instance per line:  <path> [algo=A] [seed=S] [tag=T]
//              ('#' starts a comment, blank lines ignored; algo/seed default
//               to the command-line flags, tag to the path)
//   hmis serve [--host H] [--port P] [--threads T] [--max-inflight N]
//              [--max-connections N] [--cache N] [--deadline-ms D]
//              [--load name=path]... [--port-file F]
//              long-lived solve server on the engine (DESIGN.md §9); --port 0
//              picks an ephemeral port (written to --port-file for scripts);
//              SIGTERM/SIGINT or a `shutdown` request drain gracefully
//   hmis request [--host H] --port P <json>  send one request, print the
//              response (progress frames go to stderr); or
//   hmis request --port P --load name=path   upload a graph file
//   hmis verify <in.hg> <set.txt>            check independence/maximality
//   hmis color <in.hg> [--algo A]            strong coloring via iterated MIS
//
// Families for `gen`:
//   uniform  n m arity seed        | mixed  n m min max seed
//   linear   n m arity seed        | planted n m arity fraction seed
//   graph    n m seed              | interval n window stride
//   sunflower core petal petals    | sbl     n beta max_arity seed
//
// Argument parsing is strict (util/parse.hpp): every numeric flag and
// manifest field must be a clean decimal — `--threads foo` is a hard error,
// not a silent 0 that serializes the run.
#include <fcntl.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "hmis/core/coloring.hpp"
#include "hmis/core/planner.hpp"
#include "hmis/hmis.hpp"
#include "hmis/net/client.hpp"
#include "hmis/net/registry.hpp"
#include "hmis/net/server.hpp"
#include "hmis/util/fault.hpp"
#include "hmis/util/json.hpp"
#include "hmis/util/parse.hpp"

namespace {

using namespace hmis;
using util::json_escape;

int usage() {
  std::fprintf(stderr,
               "usage: hmis "
               "<gen|convert|stats|solve|batch|serve|request|verify|color>"
               " ... (see header comment / README)\n");
  return 2;
}

/// A rejected command line / manifest / flag value.  Thrown from the arg
/// helpers, caught in main: prints the message and exits 2 — no library
/// code ever exits the process on untrusted input.
struct CliError {
  std::string message;
};

[[noreturn]] void fail(std::string message) {
  throw CliError{std::move(message)};
}

std::uint64_t parse_u64_or_fail(const std::string& value, const char* what) {
  const auto v = util::parse_u64(value);
  if (!v) {
    fail("invalid " + std::string(what) + " '" + value +
         "' (want an unsigned decimal integer)");
  }
  return *v;
}

double parse_f64_or_fail(const std::string& value, const char* what) {
  const auto v = util::parse_f64(value);
  if (!v) fail("invalid " + std::string(what) + " '" + value + "'");
  return *v;
}

std::uint64_t arg_u64(const std::vector<std::string>& args, std::size_t i,
                      const char* what) {
  if (i >= args.size()) fail("missing argument: " + std::string(what));
  return parse_u64_or_fail(args[i], what);
}

double arg_f64(const std::vector<std::string>& args, std::size_t i,
               const char* what) {
  if (i >= args.size()) fail("missing argument: " + std::string(what));
  return parse_f64_or_fail(args[i], what);
}

/// Value of a `--flag value` pair; advances *i past the value.
const std::string& flag_value(const std::vector<std::string>& args,
                              std::size_t* i, const char* flag) {
  if (*i + 1 >= args.size()) fail(std::string(flag) + " requires a value");
  return args[++*i];
}

std::uint64_t flag_u64(const std::vector<std::string>& args, std::size_t* i,
                       const char* flag) {
  return parse_u64_or_fail(flag_value(args, i, flag), flag);
}

core::Algorithm parse_algorithm(const std::string& name) {
  const auto a = core::algorithm_from_name(name);
  if (!a) fail("unknown algorithm '" + name + "'");
  return *a;
}

// ---- JSON emission ---------------------------------------------------------
// The canonical per-run object comes from net::result_json so `hmis solve
// --format json` and a served solve response carry the byte-identical
// "result" member (the CI smoke asserts exactly that); wall-clock and
// submission context live in sibling objects.

std::string timing_json(double solve_seconds, double queue_seconds) {
  std::ostringstream os;
  os << "{\"solve_ms\":" << solve_seconds * 1e3
     << ",\"queue_ms\":" << queue_seconds * 1e3 << "}";
  return os.str();
}

std::string scheduler_json(std::size_t threads,
                           const par::SchedulerStats& sched) {
  std::ostringstream os;
  os << "{\"threads\":" << threads << ",\"spawns\":" << sched.spawns
     << ",\"steals\":" << sched.steals
     << ",\"steals_local\":" << sched.steals_local
     << ",\"steals_remote\":" << sched.steals_remote
     << ",\"joins\":" << sched.joins << "}";
  return os.str();
}

// Residual data-plane counters (per-shard sweeps, stale debt, gather
// flavours) — metered the same way as the scheduler: subtract a snapshot
// taken around the solve.
std::string data_plane_json(const DataPlaneStats& dp) {
  std::ostringstream os;
  os << "{\"sweeps\":" << dp.sweeps << ",\"swept_entries\":" << dp.swept_entries
     << ",\"stale_deposited\":" << dp.stale_deposited
     << ",\"sparse_gathers\":" << dp.sparse_gathers
     << ",\"dense_gathers\":" << dp.dense_gathers << "}";
  return os.str();
}

enum class OutputFormat { Text, Json };

OutputFormat parse_format(const std::string& value) {
  if (value == "text") return OutputFormat::Text;
  if (value == "json") return OutputFormat::Json;
  fail("unknown format '" + value + "' (want text|json)");
}

void save_hypergraph_as(const std::string& path, const Hypergraph& h,
                        const std::string& format) {
  if (format == "text") {
    save_hypergraph(path, h);
  } else if (format == "hgb1") {
    save_hypergraph_binary(path, h);
  } else if (format == "hgb2") {
    save_hypergraph_hgb2(path, h);
  } else {
    fail("unknown format '" + format + "' (want text|hgb1|hgb2)");
  }
}

int cmd_gen(const std::vector<std::string>& raw) {
  // Flags may follow the family positionals: --format text|hgb1|hgb2
  // (default text) picks the output encoding, --threads T sizes the pool
  // the sampling generators run on (output is identical for every T).
  std::string format = "text";
  std::vector<std::string> args;
  args.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] == "--format") {
      format = flag_value(raw, &i, "--format");
    } else if (raw[i] == "--threads") {
      par::set_global_threads(flag_u64(raw, &i, "--threads"));
    } else {
      args.push_back(raw[i]);
    }
  }
  if (args.size() < 2) return usage();
  const std::string family = args[0];
  const std::string out = args[1];
  Hypergraph h;
  if (family == "uniform") {
    h = gen::uniform_random(arg_u64(args, 2, "n"), arg_u64(args, 3, "m"),
                            arg_u64(args, 4, "arity"),
                            arg_u64(args, 5, "seed"));
  } else if (family == "mixed") {
    h = gen::mixed_arity(arg_u64(args, 2, "n"), arg_u64(args, 3, "m"),
                         arg_u64(args, 4, "min"), arg_u64(args, 5, "max"),
                         arg_u64(args, 6, "seed"));
  } else if (family == "linear") {
    h = gen::linear_random(arg_u64(args, 2, "n"), arg_u64(args, 3, "m"),
                           arg_u64(args, 4, "arity"),
                           arg_u64(args, 5, "seed"));
  } else if (family == "planted") {
    h = gen::planted_mis(arg_u64(args, 2, "n"), arg_u64(args, 3, "m"),
                         arg_u64(args, 4, "arity"),
                         arg_f64(args, 5, "fraction"),
                         arg_u64(args, 6, "seed"));
  } else if (family == "graph") {
    h = gen::random_graph(arg_u64(args, 2, "n"), arg_u64(args, 3, "m"),
                          arg_u64(args, 4, "seed"));
  } else if (family == "interval") {
    h = gen::interval(arg_u64(args, 2, "n"), arg_u64(args, 3, "window"),
                      arg_u64(args, 4, "stride"));
  } else if (family == "sunflower") {
    h = gen::sunflower(arg_u64(args, 2, "core"), arg_u64(args, 3, "petal"),
                       arg_u64(args, 4, "petals"));
  } else if (family == "sbl") {
    h = gen::sbl_regime(arg_u64(args, 2, "n"), arg_f64(args, 3, "beta"),
                        arg_u64(args, 4, "max_arity"),
                        arg_u64(args, 5, "seed"));
  } else {
    fail("unknown family '" + family + "'");
  }
  save_hypergraph_as(out, h, format);
  std::printf("wrote %s: n=%zu m=%zu dim=%zu\n", out.c_str(),
              h.num_vertices(), h.num_edges(), h.dimension());
  return 0;
}

int cmd_convert(const std::vector<std::string>& raw) {
  // hmis convert <in> <out> [--format text|hgb1|hgb2]
  // Input format is sniffed (HGB2 inputs are mapped zero-copy); the output
  // defaults to HGB2, the reason this verb exists.
  std::string format = "hgb2";
  std::vector<std::string> args;
  args.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] == "--format") {
      format = flag_value(raw, &i, "--format");
    } else {
      args.push_back(raw[i]);
    }
  }
  if (args.size() != 2) return usage();
  const Hypergraph h = load_hypergraph(args[0]);
  save_hypergraph_as(args[1], h, format);
  std::printf("wrote %s (%s): n=%zu m=%zu dim=%zu\n", args[1].c_str(),
              format.c_str(), h.num_vertices(), h.num_edges(), h.dimension());
  return 0;
}

int cmd_stats(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const Hypergraph h = load_hypergraph(args[0]);
  const auto report = core::analyze_instance(h);
  std::fputs(core::format_report(report).c_str(), stdout);
  return 0;
}

int cmd_solve(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const Hypergraph h = load_hypergraph(args[0]);
  core::Algorithm algorithm = core::Algorithm::Auto;
  core::FindOptions opt;
  std::string out_path;
  bool print_stats = false;
  OutputFormat format = OutputFormat::Text;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--algo") {
      algorithm = parse_algorithm(flag_value(args, &i, "--algo"));
    } else if (args[i] == "--seed") {
      opt.seed = flag_u64(args, &i, "--seed");
    } else if (args[i] == "--threads") {
      par::set_global_threads(flag_u64(args, &i, "--threads"));
    } else if (args[i] == "--shards") {
      opt.shards.shards = flag_u64(args, &i, "--shards");
    } else if (args[i] == "--out") {
      out_path = flag_value(args, &i, "--out");
    } else if (args[i] == "--stats") {
      print_stats = true;
    } else if (args[i] == "--format") {
      format = parse_format(flag_value(args, &i, "--format"));
    } else {
      return usage();
    }
  }
  if (algorithm != core::Algorithm::Auto && !core::supports(algorithm, h)) {
    // Dimension is only one of the envelope criteria (LinearBL also needs a
    // linear hypergraph), so the message points at supports(), not a cause.
    std::fprintf(stderr,
                 "warning: %s is outside its applicability envelope on this "
                 "instance (see core::supports); run may stall or fail\n",
                 std::string(core::algorithm_name(algorithm)).c_str());
  }
  // Snapshot the global pool's scheduler counters around the solve so
  // --stats reports this run's spawns/steals/joins, not process history.
  // (Algorithms resolve a null FindOptions::pool to the global pool.)
  const par::SchedulerStats sched_before = par::global_pool().stats();
  const DataPlaneStats dp_before = data_plane_stats();
  const auto run = core::find_mis(h, algorithm, opt);
  const par::SchedulerStats sched = par::global_pool().stats() - sched_before;
  const DataPlaneStats dp = data_plane_stats() - dp_before;
  if (format == OutputFormat::Json) {
    // One machine-readable object: the canonical result (byte-identical to
    // a served response's "result") + wall-clock + scheduler + data-plane
    // counters.
    std::printf("{\"mode\":\"solve\",\"instance\":\"%s\",\"n\":%zu,"
                "\"m\":%zu,\"result\":%s,\"timing\":%s,\"scheduler\":%s,"
                "\"data_plane\":%s}\n",
                json_escape(args[0]).c_str(), h.num_vertices(), h.num_edges(),
                net::result_json(run).c_str(),
                timing_json(run.result.seconds, 0.0).c_str(),
                scheduler_json(par::global_pool().num_threads(),
                               sched).c_str(),
                data_plane_json(dp).c_str());
    if (!run.result.success) return 1;
  } else {
    if (!run.result.success) {
      std::fprintf(stderr, "FAILED: %s\n", run.result.failure_reason.c_str());
      return 1;
    }
    std::printf("algorithm=%s |I|=%zu rounds=%zu time_ms=%.2f verified=%s\n",
                std::string(core::algorithm_name(run.algorithm)).c_str(),
                run.result.independent_set.size(), run.result.rounds,
                run.result.seconds * 1e3, run.verdict.ok() ? "yes" : "NO");
    if (print_stats) {
      const auto& m = run.result.metrics;
      std::printf("stats: work=%llu depth=%llu calls=%llu inner_stages=%llu\n",
                  static_cast<unsigned long long>(m.work),
                  static_cast<unsigned long long>(m.depth),
                  static_cast<unsigned long long>(m.calls),
                  static_cast<unsigned long long>(run.result.inner_stages));
      std::printf("scheduler: threads=%zu spawns=%llu steals=%llu "
                  "(local=%llu remote=%llu) joins=%llu\n",
                  par::global_pool().num_threads(),
                  static_cast<unsigned long long>(sched.spawns),
                  static_cast<unsigned long long>(sched.steals),
                  static_cast<unsigned long long>(sched.steals_local),
                  static_cast<unsigned long long>(sched.steals_remote),
                  static_cast<unsigned long long>(sched.joins));
      std::printf("data_plane: sweeps=%llu swept=%llu stale=%llu "
                  "gathers_sparse=%llu gathers_dense=%llu\n",
                  static_cast<unsigned long long>(dp.sweeps),
                  static_cast<unsigned long long>(dp.swept_entries),
                  static_cast<unsigned long long>(dp.stale_deposited),
                  static_cast<unsigned long long>(dp.sparse_gathers),
                  static_cast<unsigned long long>(dp.dense_gathers));
    }
  }
  if (!out_path.empty()) {
    std::ofstream os(out_path);
    for (const VertexId v : run.result.independent_set) os << v << '\n';
    if (format == OutputFormat::Text) std::printf("wrote %s\n", out_path.c_str());
  }
  return run.verdict.ok() ? 0 : 1;
}

// ---- hmis batch: many instances, one async engine --------------------------

struct ManifestEntry {
  std::string path;
  std::string tag;
  core::Algorithm algorithm = core::Algorithm::Auto;
  std::uint64_t seed = 0;
  bool has_algo = false;
  bool has_seed = false;
};

std::vector<ManifestEntry> parse_manifest(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) fail("cannot read manifest " + path);
  std::vector<ManifestEntry> entries;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    ManifestEntry entry;
    if (!(ls >> entry.path)) continue;  // blank / comment-only line
    entry.tag = entry.path;
    std::string token;
    const std::string at = path + ":" + std::to_string(lineno);
    while (ls >> token) {
      if (token.rfind("algo=", 0) == 0) {
        const auto a = core::algorithm_from_name(token.substr(5));
        if (!a) fail(at + ": unknown algorithm '" + token.substr(5) + "'");
        entry.algorithm = *a;
        entry.has_algo = true;
      } else if (token.rfind("seed=", 0) == 0) {
        const auto s = util::parse_u64(token.substr(5));
        if (!s) {
          fail(at + ": invalid seed '" + token.substr(5) +
               "' (want an unsigned decimal integer)");
        }
        entry.seed = *s;
        entry.has_seed = true;
      } else if (token.rfind("tag=", 0) == 0) {
        entry.tag = token.substr(4);
      } else {
        fail(at + ": unknown manifest token '" + token + "'");
      }
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

int cmd_batch(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  core::Algorithm default_algo = core::Algorithm::Auto;
  std::uint64_t default_seed = 1;
  engine::EngineOptions eopt;
  OutputFormat format = OutputFormat::Text;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--algo") {
      default_algo = parse_algorithm(flag_value(args, &i, "--algo"));
    } else if (args[i] == "--seed") {
      default_seed = flag_u64(args, &i, "--seed");
    } else if (args[i] == "--threads") {
      eopt.threads = flag_u64(args, &i, "--threads");
    } else if (args[i] == "--max-inflight") {
      eopt.max_inflight = flag_u64(args, &i, "--max-inflight");
    } else if (args[i] == "--format") {
      format = parse_format(flag_value(args, &i, "--format"));
    } else {
      return usage();
    }
  }

  const std::vector<ManifestEntry> entries = parse_manifest(args[0]);
  if (entries.empty()) fail("manifest " + args[0] + " lists no instances");

  // Load everything up front (so I/O cost stays out of the solve clock)
  // through a GraphRegistry keyed by path — the same store `hmis serve`
  // uses.  A sweep manifest rerunning one instance under many seeds shares
  // a single Hypergraph (SolveRequest::graph is a shared_ptr for exactly
  // this).  Then submit the whole batch to one engine and collect in order.
  net::GraphRegistry registry;
  std::vector<engine::SolveRequest> requests;
  requests.reserve(entries.size());
  for (const auto& entry : entries) {
    auto found = registry.find(entry.path);
    const net::GraphRegistry::Entry reg =
        found ? *found : registry.load_file(entry.path, entry.path);
    engine::SolveRequest req;
    req.graph = reg.graph;
    req.algorithm = entry.has_algo ? entry.algorithm : default_algo;
    req.seed = entry.has_seed ? entry.seed : default_seed;
    req.tag = entry.tag;
    requests.push_back(std::move(req));
  }

  util::Timer wall;
  engine::Engine eng(eopt);
  auto futures = eng.submit_all(std::move(requests));

  std::size_t ok = 0;
  std::size_t failed = 0;
  std::ostringstream results_json;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const std::string& tag = entries[i].tag;
    std::string row;
    try {
      const engine::SolveResponse resp = futures[i].get();
      const bool good = resp.run.result.success && resp.run.verdict.ok();
      good ? ++ok : ++failed;
      if (format == OutputFormat::Json) {
        row = "{\"tag\":\"" + json_escape(tag) +
              "\",\"result\":" + net::result_json(resp.run) +
              ",\"timing\":" +
              timing_json(resp.solve_seconds, resp.queue_seconds) + "}";
      } else if (resp.run.result.success) {
        std::printf(
            "tag=%s algorithm=%s |I|=%zu rounds=%zu queue_ms=%.2f "
            "time_ms=%.2f verified=%s\n",
            tag.c_str(),
            std::string(core::algorithm_name(resp.run.algorithm)).c_str(),
            resp.run.result.independent_set.size(), resp.run.result.rounds,
            resp.queue_seconds * 1e3, resp.run.result.seconds * 1e3,
            resp.run.verdict.ok() ? "yes" : "NO");
      } else {
        std::printf("tag=%s FAILED: %s\n", tag.c_str(),
                    resp.run.result.failure_reason.c_str());
      }
    } catch (const std::exception& e) {
      ++failed;
      if (format == OutputFormat::Json) {
        row = "{\"tag\":\"" + json_escape(tag) + "\",\"error\":\"" +
              json_escape(e.what()) + "\"}";
      } else {
        std::printf("tag=%s ERROR: %s\n", tag.c_str(), e.what());
      }
    }
    if (format == OutputFormat::Json) {
      if (i > 0) results_json << ',';
      results_json << row;
    }
  }
  const double wall_seconds = wall.seconds();
  const auto stats = eng.stats();

  if (format == OutputFormat::Json) {
    std::printf(
        "{\"mode\":\"batch\",\"manifest\":\"%s\",\"results\":[%s],"
        "\"summary\":{\"instances\":%zu,\"ok\":%zu,\"failed\":%zu,"
        "\"wall_ms\":%g,\"solves_per_sec\":%g},"
        "\"engine\":{\"submitted\":%llu,\"completed\":%llu,\"failed\":%llu,"
        "\"peak_inflight\":%zu,\"scheduler\":%s}}\n",
        json_escape(args[0]).c_str(), results_json.str().c_str(),
        entries.size(), ok, failed, wall_seconds * 1e3,
        wall_seconds > 0 ? static_cast<double>(entries.size()) / wall_seconds
                         : 0.0,
        static_cast<unsigned long long>(stats.submitted),
        static_cast<unsigned long long>(stats.completed),
        static_cast<unsigned long long>(stats.failed), stats.peak_inflight,
        scheduler_json(eng.pool().num_threads(), stats.scheduler).c_str());
  } else {
    std::printf(
        "batch: instances=%zu ok=%zu failed=%zu wall_ms=%.2f "
        "solves_per_sec=%.2f\n",
        entries.size(), ok, failed, wall_seconds * 1e3,
        wall_seconds > 0 ? static_cast<double>(entries.size()) / wall_seconds
                         : 0.0);
    std::printf(
        "engine: threads=%zu peak_inflight=%zu spawns=%llu steals=%llu "
        "joins=%llu\n",
        eng.pool().num_threads(), stats.peak_inflight,
        static_cast<unsigned long long>(stats.scheduler.spawns),
        static_cast<unsigned long long>(stats.scheduler.steals),
        static_cast<unsigned long long>(stats.scheduler.joins));
  }
  return failed == 0 ? 0 : 1;
}

// ---- hmis serve: the long-lived solve server --------------------------------

// SIGTERM/SIGINT funnel through a self-pipe (the only async-signal-safe
// option); a watcher thread turns the byte into a graceful request_stop().
int g_signal_pipe[2] = {-1, -1};

extern "C" void cli_stop_signal_handler(int) {
  const char byte = 1;
  [[maybe_unused]] const auto n = ::write(g_signal_pipe[1], &byte, 1);
}

int cmd_serve(const std::vector<std::string>& args) {
  net::ServeOptions sopt;
  std::vector<std::pair<std::string, std::string>> preloads;  // name, path
  std::string port_file;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--host") {
      sopt.host = flag_value(args, &i, "--host");
    } else if (args[i] == "--port") {
      const std::uint64_t p = flag_u64(args, &i, "--port");
      if (p > 65535) fail("--port must be <= 65535");
      sopt.port = static_cast<std::uint16_t>(p);
    } else if (args[i] == "--threads") {
      sopt.threads = flag_u64(args, &i, "--threads");
    } else if (args[i] == "--max-inflight") {
      sopt.max_inflight = flag_u64(args, &i, "--max-inflight");
    } else if (args[i] == "--max-connections") {
      sopt.max_connections = flag_u64(args, &i, "--max-connections");
    } else if (args[i] == "--cache") {
      sopt.cache_entries = flag_u64(args, &i, "--cache");
    } else if (args[i] == "--deadline-ms") {
      const double d = parse_f64_or_fail(flag_value(args, &i, "--deadline-ms"),
                                         "--deadline-ms");
      if (d < 0) fail("--deadline-ms must be non-negative");
      sopt.default_deadline_ms = d;
    } else if (args[i] == "--load") {
      const std::string& spec = flag_value(args, &i, "--load");
      const auto eq = spec.find('=');
      if (eq == std::string::npos) {
        preloads.emplace_back(spec, spec);  // name = path
      } else {
        preloads.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
      }
    } else if (args[i] == "--port-file") {
      port_file = flag_value(args, &i, "--port-file");
    } else {
      return usage();
    }
  }

  // Belt and braces with socket.cpp's MSG_NOSIGNAL: a peer that closes
  // right after sending a request must surface as a failed write on that
  // one connection, never as process death.
  ::signal(SIGPIPE, SIG_IGN);
  // Chaos harness hook: HMIS_FAULT="seed=N,rate=R,sites=GLOB" arms the
  // deterministic fault plan before the server touches any socket.
  if (util::fault_arm_from_env()) {
    std::fprintf(stderr, "hmis serve: fault injection armed from HMIS_FAULT\n");
  }

  net::Server server(sopt);
  for (const auto& [name, path] : preloads) {
    const auto entry = server.core().registry().load_file(name, path);
    std::fprintf(stderr, "hmis serve: loaded %s from %s (n=%zu m=%zu)\n",
                 name.c_str(), path.c_str(), entry.graph->num_vertices(),
                 entry.graph->num_edges());
  }
  server.start();
  if (!port_file.empty()) {
    // Atomic publish: scripts poll for this file and must never read a
    // half-written port.  Write a sibling temp file, then rename() — the
    // reader either sees nothing or the complete line.
    const std::string tmp = port_file + ".tmp." + std::to_string(::getpid());
    {
      std::ofstream pf(tmp);
      if (!pf.good()) fail("cannot write port file " + tmp);
      pf << server.port() << '\n';
      pf.flush();
      if (!pf.good()) fail("cannot write port file " + tmp);
    }
    if (::rename(tmp.c_str(), port_file.c_str()) != 0) {
      fail("cannot rename port file into place: " + port_file);
    }
  }
  std::printf("hmis serve: listening on %s:%u (threads=%zu max_inflight=%zu "
              "max_connections=%zu cache=%zu)\n",
              sopt.host.c_str(), server.port(), sopt.threads,
              sopt.max_inflight, sopt.max_connections, sopt.cache_entries);
  std::fflush(stdout);

  if (::pipe2(g_signal_pipe, O_CLOEXEC) != 0) fail("pipe2() failed");
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = cli_stop_signal_handler;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  std::thread watcher([&server] {
    char byte = 0;
    if (::read(g_signal_pipe[0], &byte, 1) == 1 && byte == 1) {
      server.request_stop();
    }
  });

  server.wait_until_stopped();
  // A wire-initiated shutdown leaves the watcher blocked on the pipe; a
  // distinct byte unblocks it without a second request_stop().
  const char done = 2;
  [[maybe_unused]] const auto n = ::write(g_signal_pipe[1], &done, 1);
  watcher.join();
  server.stop();
  const net::ServeStats stats = server.core().stats();
  std::printf("hmis serve: drained (requests=%llu solves=%llu cache_hits=%llu"
              " rejected=%llu)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.solves),
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.rejected));
  return 0;
}

int cmd_request(const std::vector<std::string>& args) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string payload;
  std::string load_spec;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--host") {
      host = flag_value(args, &i, "--host");
    } else if (args[i] == "--port") {
      const std::uint64_t p = flag_u64(args, &i, "--port");
      if (p == 0 || p > 65535) fail("--port must be in 1..65535");
      port = static_cast<std::uint16_t>(p);
    } else if (args[i] == "--load") {
      load_spec = flag_value(args, &i, "--load");
    } else if (payload.empty() && !args[i].empty() && args[i][0] == '{') {
      payload = args[i];
    } else {
      return usage();
    }
  }
  if (port == 0) fail("--port is required");
  if (payload.empty() == load_spec.empty()) {
    fail("pass exactly one of a JSON request or --load name=path");
  }

  net::Client client;
  if (!client.connect(host, port)) {
    fail("cannot connect to " + host + ":" + std::to_string(port));
  }
  net::Client::Reply reply;
  if (!load_spec.empty()) {
    const auto eq = load_spec.find('=');
    const std::string name =
        eq == std::string::npos ? load_spec : load_spec.substr(0, eq);
    const std::string path =
        eq == std::string::npos ? load_spec : load_spec.substr(eq + 1);
    std::ifstream is(path, std::ios::binary);
    if (!is.good()) fail("cannot read " + path);
    std::ostringstream bytes;
    bytes << is.rdbuf();
    reply = client.load(name, bytes.str());
  } else {
    reply = client.request(payload);
  }
  for (const std::string& p : reply.progress) {
    std::fprintf(stderr, "%s\n", p.c_str());
  }
  if (!reply.transport_ok) fail("connection closed before a response");
  std::printf("%s\n", reply.payload.c_str());
  // Exit status mirrors the response's "ok" flag so shell scripts can gate.
  const auto ok = util::json_find(reply.payload, "ok");
  return (ok && ok->raw == "true") ? 0 : 1;
}

int cmd_verify(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const Hypergraph h = load_hypergraph(args[0]);
  std::ifstream is(args[1]);
  if (!is.good()) {
    std::fprintf(stderr, "cannot read %s\n", args[1].c_str());
    return 2;
  }
  std::vector<VertexId> set;
  VertexId v;
  while (is >> v) set.push_back(v);
  const auto verdict =
      verify_mis(h, std::span<const VertexId>(set.data(), set.size()));
  std::printf("independent=%s maximal=%s\n",
              verdict.independent ? "yes" : "no",
              verdict.maximal ? "yes" : "no");
  if (verdict.violating_edge) {
    std::printf("violated edge id: %u\n", *verdict.violating_edge);
  }
  if (verdict.addable_vertex) {
    std::printf("addable vertex: %u\n", *verdict.addable_vertex);
  }
  return verdict.ok() ? 0 : 1;
}

int cmd_color(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const Hypergraph h = load_hypergraph(args[0]);
  core::ColoringOptions opt;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--algo") {
      opt.algorithm = parse_algorithm(flag_value(args, &i, "--algo"));
    } else if (args[i] == "--seed") {
      opt.seed = flag_u64(args, &i, "--seed");
    } else {
      return usage();
    }
  }
  const auto coloring = core::strong_coloring(h, opt);
  if (!coloring.success) {
    std::fprintf(stderr, "FAILED: %s\n", coloring.failure_reason.c_str());
    return 1;
  }
  const bool ok = core::is_strong_coloring(h, coloring.color);
  std::printf("colors=%d valid=%s mis_rounds=%zu\n", coloring.num_colors,
              ok ? "yes" : "NO", coloring.total_mis_rounds);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "convert") return cmd_convert(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "solve") return cmd_solve(args);
    if (cmd == "batch") return cmd_batch(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "request") return cmd_request(args);
    if (cmd == "verify") return cmd_verify(args);
    if (cmd == "color") return cmd_color(args);
  } catch (const CliError& e) {
    std::fprintf(stderr, "error: %s\n", e.message.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
