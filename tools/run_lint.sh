#!/usr/bin/env bash
# Run the project lint stack (DESIGN.md §8) — the same sequence the lint CI
# job runs, so a clean local pass means a green lint job:
#
#   1. clang-tidy with the curated .clang-tidy baseline, over every library
#      translation unit in compile_commands.json (skipped with a notice when
#      clang-tidy is not installed — the CI job always has it);
#   2. hmis_lint, the first-party checker (tools/hmis_lint/), over the
#      library sources and headers.
#
# Usage: tools/run_lint.sh [build-dir]       (default: ./build)
# Exits nonzero when either stage emits any diagnostic.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${1:-$ROOT/build}"

if [[ ! -f "$BUILD/compile_commands.json" ]]; then
  echo "run_lint: configuring $BUILD (compile_commands.json missing)" >&2
  cmake -S "$ROOT" -B "$BUILD" >/dev/null
fi

fail=0

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy ($(clang-tidy --version | sed -n 's/.*version /version /p' | head -1)) =="
  # Deterministic, sorted file list: the library translation units only;
  # headers are covered through HeaderFilterRegex.
  mapfile -t TIDY_SOURCES < <(find "$ROOT/src" -name '*.cpp' | sort)
  clang-tidy -p "$BUILD" --quiet "${TIDY_SOURCES[@]}" || fail=1
else
  echo "== clang-tidy not installed; skipping the baseline (the lint CI job runs it) =="
fi

echo "== hmis_lint =="
cmake --build "$BUILD" --target hmis_lint -j "$(nproc)" >/dev/null
mapfile -t HEADERS < <(find "$ROOT/src" -name '*.hpp' | sort)
"$BUILD/tools/hmis_lint/hmis_lint" \
  --compile-commands "$BUILD/compile_commands.json" \
  --filter "$ROOT/src/" \
  "${HEADERS[@]}" || fail=1

if [[ "$fail" -ne 0 ]]; then
  echo "run_lint: FAILED (diagnostics above)" >&2
else
  echo "run_lint: clean"
fi
exit "$fail"
