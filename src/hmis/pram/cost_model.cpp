#include "hmis/pram/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace hmis::pram {

double brent_time(const par::Metrics& m, std::uint64_t processors) noexcept {
  if (processors == 0) processors = 1;
  return static_cast<double>(m.work) / static_cast<double>(processors) +
         static_cast<double>(m.depth);
}

std::uint64_t processors_for_depth_limited(const par::Metrics& m,
                                           double c) noexcept {
  if (m.depth == 0) return 1;
  c = std::max(c, 1.0 + 1e-9);
  // work/P + depth <= c*depth  =>  P >= work / ((c-1)*depth)
  const double p = static_cast<double>(m.work) /
                   ((c - 1.0) * static_cast<double>(m.depth));
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(p)));
}

double parallelism(const par::Metrics& m) noexcept {
  if (m.depth == 0) return 0.0;
  return static_cast<double>(m.work) / static_cast<double>(m.depth);
}

}  // namespace hmis::pram
