// A synchronous PRAM simulator with access-mode checking.
//
// The paper's model is the EREW PRAM: in each synchronous step every
// processor may read some cells, compute, and write some cells; *no memory
// cell may be touched by two processors in the same step*.  This simulator
// executes PRAM programs step by step, records every access, applies writes
// synchronously at the end of the step, and flags violations of the selected
// mode:
//   EREW — any cell accessed (read or write) by >1 processor is a violation;
//   CREW — concurrent reads allowed, any concurrent write (or read+write by
//          different processors) is a violation;
//   CRCW — only multi-writer conflicts with *different values* are flagged
//          (common/arbitrary CRCW would resolve them; we flag to be strict).
//
// The kernels in kernels.hpp are the standard EREW realizations of
// broadcast / reduce / scan / compact; the tests run them under the checker
// to certify the access patterns the `hmis::par` runtime models are indeed
// EREW-legal (DESIGN.md §4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace hmis::pram {

enum class Mode { EREW, CREW, CRCW };

struct Violation {
  std::uint64_t step = 0;
  std::size_t cell = 0;
  std::string kind;  // "concurrent-read", "concurrent-write", "read-write"
};

class Machine {
 public:
  /// A machine with `cells` shared-memory cells, all initialized to 0.
  explicit Machine(std::size_t cells, Mode mode = Mode::EREW,
                   bool strict = false);

  [[nodiscard]] std::size_t num_cells() const noexcept { return mem_.size(); }
  [[nodiscard]] Mode mode() const noexcept { return mode_; }

  /// Direct (non-step) access for program setup / result extraction.
  [[nodiscard]] std::int64_t peek(std::size_t addr) const;
  void poke(std::size_t addr, std::int64_t value);

  /// Run one synchronous step: `body(proc)` is invoked for every
  /// proc in [0, procs); inside it, use read()/write().  All writes are
  /// applied after every processor has run (synchronous semantics).
  void step(std::size_t procs,
            const std::function<void(std::size_t proc)>& body);

  /// Processor-side memory operations; only valid inside step().
  [[nodiscard]] std::int64_t read(std::size_t proc, std::size_t addr);
  void write(std::size_t proc, std::size_t addr, std::int64_t value);

  [[nodiscard]] std::uint64_t steps_executed() const noexcept { return steps_; }
  [[nodiscard]] std::uint64_t total_reads() const noexcept { return reads_; }
  [[nodiscard]] std::uint64_t total_writes() const noexcept { return writes_; }
  [[nodiscard]] std::uint64_t max_procs_used() const noexcept {
    return max_procs_;
  }
  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] bool clean() const noexcept { return violations_.empty(); }

 private:
  struct CellUse {
    std::uint32_t readers = 0;
    std::uint32_t writers = 0;
    std::size_t last_reader = SIZE_MAX;
    std::size_t last_writer = SIZE_MAX;
    std::int64_t pending_value = 0;
    bool value_conflict = false;
  };

  void record_violation(std::size_t cell, const char* kind);

  std::vector<std::int64_t> mem_;
  Mode mode_;
  bool strict_;
  bool in_step_ = false;
  std::uint64_t steps_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t max_procs_ = 0;
  std::unordered_map<std::size_t, CellUse> step_uses_;
  std::vector<Violation> violations_;
};

}  // namespace hmis::pram
