#include "hmis/pram/kernels.hpp"

#include <algorithm>

#include "hmis/util/check.hpp"

namespace hmis::pram {

std::size_t pow2_at_least(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::size_t scan_scratch_size(std::size_t n) noexcept {
  return pow2_at_least(std::max<std::size_t>(n, 1));
}

void broadcast(Machine& m, std::size_t src, std::size_t dst, std::size_t n) {
  if (n == 0) return;
  // Step 0: one processor copies src into dst[0].
  m.step(1, [&](std::size_t p) { m.write(p, dst, m.read(p, src)); });
  // Doubling: after k rounds, dst[0..2^k) hold the value.
  for (std::size_t have = 1; have < n; have *= 2) {
    const std::size_t copy = std::min(have, n - have);
    m.step(copy, [&](std::size_t p) {
      // proc p copies dst[p] -> dst[have + p]; cells are disjoint (EREW).
      m.write(p, dst + have + p, m.read(p, dst + p));
    });
  }
}

namespace {

template <typename Combine>
void reduce_impl(Machine& m, std::size_t src, std::size_t n, std::size_t out,
                 std::size_t scratch, Combine&& combine) {
  HMIS_CHECK(n > 0, "reduce on empty range");
  // Copy input into scratch so the reduction can work in place.
  m.step(n, [&](std::size_t p) {
    m.write(p, scratch + p, m.read(p, src + p));
  });
  // Tree reduction: stride doubling over the scratch region.
  for (std::size_t stride = 1; stride < n; stride *= 2) {
    const std::size_t pairs = (n + 2 * stride - 1) / (2 * stride);
    m.step(pairs, [&](std::size_t p) {
      const std::size_t a = scratch + 2 * stride * p;
      const std::size_t b = a + stride;
      if (b < scratch + n) {
        const std::int64_t va = m.read(p, a);
        const std::int64_t vb = m.read(p, b);
        m.write(p, a, combine(va, vb));
      }
    });
  }
  m.step(1, [&](std::size_t p) { m.write(p, out, m.read(p, scratch)); });
}

}  // namespace

void reduce_sum(Machine& m, std::size_t src, std::size_t n, std::size_t out,
                std::size_t scratch) {
  reduce_impl(m, src, n, out, scratch,
              [](std::int64_t a, std::int64_t b) { return a + b; });
}

void reduce_max(Machine& m, std::size_t src, std::size_t n, std::size_t out,
                std::size_t scratch) {
  reduce_impl(m, src, n, out, scratch,
              [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
}

void exclusive_scan(Machine& m, std::size_t src, std::size_t dst,
                    std::size_t n, std::size_t scratch) {
  if (n == 0) return;
  const std::size_t size = pow2_at_least(n);
  // Load input (zero-padded) into scratch.
  m.step(size, [&](std::size_t p) {
    const std::int64_t v = (p < n) ? m.read(p, src + p) : 0;
    m.write(p, scratch + p, v);
  });
  // Up-sweep.
  for (std::size_t stride = 1; stride < size; stride *= 2) {
    const std::size_t procs = size / (2 * stride);
    m.step(procs, [&](std::size_t p) {
      const std::size_t right = scratch + (2 * p + 2) * stride - 1;
      const std::size_t left = scratch + (2 * p + 1) * stride - 1;
      m.write(p, right, m.read(p, left) + m.read(p, right));
    });
  }
  // Clear the root.
  m.step(1, [&](std::size_t p) { m.write(p, scratch + size - 1, 0); });
  // Down-sweep.
  for (std::size_t stride = size / 2; stride >= 1; stride /= 2) {
    const std::size_t procs = size / (2 * stride);
    m.step(procs, [&](std::size_t p) {
      const std::size_t right = scratch + (2 * p + 2) * stride - 1;
      const std::size_t left = scratch + (2 * p + 1) * stride - 1;
      const std::int64_t t = m.read(p, left);
      const std::int64_t r = m.read(p, right);
      m.write(p, left, r);
      m.write(p, right, t + r);
    });
    if (stride == 1) break;
  }
  // Copy result out.
  m.step(n, [&](std::size_t p) {
    m.write(p, dst + p, m.read(p, scratch + p));
  });
}

void compact(Machine& m, std::size_t src, std::size_t flags, std::size_t n,
             std::size_t dst, std::size_t count_out, std::size_t scratch) {
  if (n == 0) {
    m.step(1, [&](std::size_t p) { m.write(p, count_out, 0); });
    return;
  }
  // offsets region lives at scratch; Blelloch workspace after it.
  const std::size_t offsets = scratch;
  const std::size_t ws = scratch + n;
  exclusive_scan(m, flags, offsets, n, ws);
  // count = offsets[n-1] + flags[n-1].
  m.step(1, [&](std::size_t p) {
    const std::int64_t c =
        m.read(p, offsets + n - 1) + m.read(p, flags + n - 1);
    m.write(p, count_out, c);
  });
  // Scatter: flagged items write src[i] to dst[offsets[i]].  Offsets of
  // flagged items are distinct, so writes are exclusive.
  m.step(n, [&](std::size_t p) {
    if (m.read(p, flags + p) != 0) {
      const auto off = static_cast<std::size_t>(m.read(p, offsets + p));
      m.write(p, dst + off, m.read(p, src + p));
    }
  });
}

}  // namespace hmis::pram
