// PRAM cost accounting: converts the (work, depth) totals metered by the
// `hmis::par` primitives into PRAM-style statements — "time on P processors"
// via Brent's theorem, and "processors needed to reach depth-limited time".
// Used by Table 2 (work/depth accounting per algorithm).
#pragma once

#include <cstdint>

#include "hmis/par/metrics.hpp"

namespace hmis::pram {

/// Brent's theorem: T_P <= work/P + depth.
[[nodiscard]] double brent_time(const par::Metrics& m,
                                std::uint64_t processors) noexcept;

/// Smallest processor count for which Brent time <= c * depth
/// (c >= 1; c = 2 is the usual "within 2x of critical path").
[[nodiscard]] std::uint64_t processors_for_depth_limited(
    const par::Metrics& m, double c = 2.0) noexcept;

/// Parallelism = work / depth (average width of the computation DAG).
[[nodiscard]] double parallelism(const par::Metrics& m) noexcept;

}  // namespace hmis::pram
