#include "hmis/pram/bl_round.hpp"

#include <algorithm>

#include "hmis/util/check.hpp"

namespace hmis::pram {

namespace {

/// A batch of disjoint copy operations executed as one synchronous step:
/// proc i does mem[dst[i]] = mem[src[i]].  Addresses must be pairwise
/// disjoint across processors — the checker verifies it.
void copy_step(Machine& m, const std::vector<std::size_t>& src,
               const std::vector<std::size_t>& dst) {
  if (src.empty()) return;
  m.step(src.size(), [&](std::size_t p) {
    m.write(p, dst[p], m.read(p, src[p]));
  });
}

/// Doubling fill: after ceil(log2(len)) steps every cell of each strip
/// [begin, begin+len) equals its first cell.  Strips are disjoint.
void doubling_fill(Machine& m, const std::vector<std::size_t>& strip_begin,
                   const std::vector<std::size_t>& strip_len) {
  std::size_t max_len = 0;
  for (const auto len : strip_len) max_len = std::max(max_len, len);
  std::vector<std::size_t> src, dst;
  for (std::size_t have = 1; have < max_len; have *= 2) {
    src.clear();
    dst.clear();
    for (std::size_t s = 0; s < strip_begin.size(); ++s) {
      const std::size_t len = strip_len[s];
      if (len <= have) continue;
      const std::size_t copy = std::min(have, len - have);
      for (std::size_t j = 0; j < copy; ++j) {
        src.push_back(strip_begin[s] + j);
        dst.push_back(strip_begin[s] + have + j);
      }
    }
    copy_step(m, src, dst);
  }
}

/// In-place tree reduction of each strip with a binary combiner; the result
/// lands in the strip's first cell.  Combine is MIN (logical AND on 0/1)
/// or MAX (logical OR on 0/1).
void tree_reduce(Machine& m, const std::vector<std::size_t>& strip_begin,
                 const std::vector<std::size_t>& strip_len, bool use_min) {
  std::size_t max_len = 0;
  for (const auto len : strip_len) max_len = std::max(max_len, len);
  struct Pair {
    std::size_t a, b;
  };
  std::vector<Pair> pairs;
  for (std::size_t stride = 1; stride < max_len; stride *= 2) {
    pairs.clear();
    for (std::size_t s = 0; s < strip_begin.size(); ++s) {
      const std::size_t len = strip_len[s];
      for (std::size_t j = 0; j + stride < len; j += 2 * stride) {
        pairs.push_back({strip_begin[s] + j, strip_begin[s] + j + stride});
      }
    }
    if (pairs.empty()) continue;
    m.step(pairs.size(), [&](std::size_t p) {
      const std::int64_t a = m.read(p, pairs[p].a);
      const std::int64_t b = m.read(p, pairs[p].b);
      m.write(p, pairs[p].a, use_min ? std::min(a, b) : std::max(a, b));
    });
  }
}

}  // namespace

BlRoundResult bl_round_erew(const Hypergraph& h,
                            const std::vector<std::uint8_t>& marks) {
  const std::size_t n = h.num_vertices();
  const std::size_t m_edges = h.num_edges();
  const std::size_t inc = h.total_edge_size();
  HMIS_CHECK(marks.size() == n, "marks size mismatch");

  // ---- Memory map ---------------------------------------------------------
  const std::size_t a_marks = 0;              // n: input marks
  const std::size_t a_inc = a_marks + n;      // inc: per-vertex mark strips
  const std::size_t a_estrip = a_inc + inc;   // inc: per-edge member strips
  const std::size_t a_edge_ok = a_estrip + inc;  // m: fully-marked flag
  const std::size_t a_uslot = a_edge_ok + m_edges;  // inc: unmark scatter
  const std::size_t a_unmark = a_uslot + inc;       // n
  const std::size_t a_surv = a_unmark + n;           // n
  Machine machine(a_surv + n, Mode::EREW);

  for (VertexId v = 0; v < n; ++v) {
    machine.poke(a_marks + v, marks[v]);
  }
  // uslot strips default to 0 = "no edge unmarks this slot".

  // ---- Host-side program layout (compilation, not execution) --------------
  // Vertex incidence strips: inc_begin[v] .. +degree(v).
  std::vector<std::size_t> vstrip_begin(n), vstrip_len(n);
  {
    std::size_t cursor = 0;
    for (VertexId v = 0; v < n; ++v) {
      vstrip_begin[v] = a_inc + cursor;
      vstrip_len[v] = h.degree(v);
      cursor += h.degree(v);
    }
  }
  // Edge member strips and the (edge, member) -> vertex-incidence-slot map.
  std::vector<std::size_t> estrip_begin(m_edges), estrip_len(m_edges);
  std::vector<std::size_t> slot_of;  // per (e, i) in edge order
  slot_of.reserve(inc);
  {
    std::vector<std::size_t> vcursor(n, 0);
    // vcursor must follow the vertex_edges order; edges_of(v) lists edges
    // ascending, and we iterate edges ascending, so the k-th time we see v
    // equals v's k-th incidence slot.
    std::size_t cursor = 0;
    for (EdgeId e = 0; e < m_edges; ++e) {
      const auto verts = h.edge(e);
      estrip_begin[e] = a_estrip + cursor;
      estrip_len[e] = verts.size();
      cursor += verts.size();
      for (const VertexId v : verts) {
        slot_of.push_back(vstrip_begin[v] - a_inc + vcursor[v]++);
      }
    }
  }

  // ---- Step A: marks[v] -> inc_strip[v][0] (vertices with degree > 0). ----
  {
    std::vector<std::size_t> src, dst;
    for (VertexId v = 0; v < n; ++v) {
      if (vstrip_len[v] > 0) {
        src.push_back(a_marks + v);
        dst.push_back(vstrip_begin[v]);
      }
    }
    copy_step(machine, src, dst);
  }
  // ---- Step B: doubling fill of each vertex strip. ------------------------
  doubling_fill(machine, vstrip_begin, vstrip_len);

  // ---- Step C: (e, i) reads its vertex slot, writes estrip[e][i]. ---------
  {
    std::vector<std::size_t> src(inc), dst(inc);
    std::size_t k = 0;
    for (EdgeId e = 0; e < m_edges; ++e) {
      for (std::size_t i = 0; i < estrip_len[e]; ++i, ++k) {
        src[k] = a_inc + slot_of[k];
        dst[k] = estrip_begin[e] + i;
      }
    }
    copy_step(machine, src, dst);
  }

  // ---- Step D: AND-reduce each edge strip -> estrip[e][0]; copy out. ------
  tree_reduce(machine, estrip_begin, estrip_len, /*use_min=*/true);
  {
    std::vector<std::size_t> src, dst;
    for (EdgeId e = 0; e < m_edges; ++e) {
      src.push_back(estrip_begin[e]);
      dst.push_back(a_edge_ok + e);
    }
    copy_step(machine, src, dst);
  }

  // ---- Step E: broadcast edge_ok back across each edge strip. -------------
  // estrip[e][0] already holds the flag; doubling fills the rest.
  doubling_fill(machine, estrip_begin, estrip_len);

  // ---- Step F: scatter into the per-vertex unmark slots. ------------------
  {
    std::vector<std::size_t> src(inc), dst(inc);
    std::size_t k = 0;
    for (EdgeId e = 0; e < m_edges; ++e) {
      for (std::size_t i = 0; i < estrip_len[e]; ++i, ++k) {
        src[k] = estrip_begin[e] + i;
        dst[k] = a_uslot + slot_of[k];
      }
    }
    copy_step(machine, src, dst);
  }

  // ---- Step G: OR-reduce each vertex's unmark strip -> unmark[v]. ---------
  {
    std::vector<std::size_t> ustrip_begin(n);
    for (VertexId v = 0; v < n; ++v) {
      ustrip_begin[v] = a_uslot + (vstrip_begin[v] - a_inc);
    }
    tree_reduce(machine, ustrip_begin, vstrip_len, /*use_min=*/false);
    std::vector<std::size_t> src, dst;
    for (VertexId v = 0; v < n; ++v) {
      if (vstrip_len[v] > 0) {
        src.push_back(ustrip_begin[v]);
        dst.push_back(a_unmark + v);
      }
    }
    copy_step(machine, src, dst);
  }

  // ---- Step H: survivor[v] = marks[v] & !unmark[v]. ------------------------
  machine.step(n, [&](std::size_t v) {
    const std::int64_t mk = machine.read(v, a_marks + v);
    const std::int64_t um = machine.read(v, a_unmark + v);
    machine.write(v, a_surv + v, mk != 0 && um == 0 ? 1 : 0);
  });

  BlRoundResult result;
  result.survivor.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    result.survivor[v] =
        static_cast<std::uint8_t>(machine.peek(a_surv + v));
  }
  result.steps = machine.steps_executed();
  result.violations = machine.violations().size();
  result.max_processors = machine.max_procs_used();
  return result;
}

std::vector<std::uint8_t> bl_round_reference(
    const Hypergraph& h, const std::vector<std::uint8_t>& marks) {
  HMIS_CHECK(marks.size() == h.num_vertices(), "marks size mismatch");
  std::vector<std::uint8_t> unmark(h.num_vertices(), 0);
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const auto verts = h.edge(e);
    bool all = !verts.empty();
    for (const VertexId v : verts) {
      if (!marks[v]) {
        all = false;
        break;
      }
    }
    if (all) {
      for (const VertexId v : verts) unmark[v] = 1;
    }
  }
  std::vector<std::uint8_t> survivor(h.num_vertices());
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    survivor[v] = marks[v] && !unmark[v];
  }
  return survivor;
}

}  // namespace hmis::pram
