// Canonical EREW PRAM kernels, written as explicit step-by-step programs for
// the Machine simulator.  These are the building blocks whose cost the
// `hmis::par` runtime models; the tests execute them under the EREW checker
// to certify the access patterns are legal (zero violations).
//
// Layout convention: every kernel takes explicit memory regions (base
// addresses into the machine's shared memory).  Regions must not overlap
// unless stated.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hmis/pram/machine.hpp"

namespace hmis::pram {

/// Broadcast mem[src] to mem[dst .. dst+n) in ceil(log2 n)+1 steps
/// (recursive doubling).
void broadcast(Machine& m, std::size_t src, std::size_t dst, std::size_t n);

/// Sum-reduce mem[src .. src+n) into mem[out] using mem[scratch .. scratch+n)
/// as workspace.  ceil(log2 n)+2 steps.
void reduce_sum(Machine& m, std::size_t src, std::size_t n, std::size_t out,
                std::size_t scratch);

/// Max-reduce, same contract as reduce_sum.
void reduce_max(Machine& m, std::size_t src, std::size_t n, std::size_t out,
                std::size_t scratch);

/// Exclusive prefix sum of mem[src .. src+n) into mem[dst .. dst+n) using
/// mem[scratch .. scratch + 2*pow2(n)) workspace (Blelloch up/down sweep).
/// O(log n) steps, O(n) work.
void exclusive_scan(Machine& m, std::size_t src, std::size_t dst,
                    std::size_t n, std::size_t scratch);

/// Stream compaction: writes the values mem[src+i] whose flag
/// mem[flags+i] != 0 to mem[dst..], densely, preserving order.  Stores the
/// output count into mem[count_out].  Uses scan workspace as above.
void compact(Machine& m, std::size_t src, std::size_t flags, std::size_t n,
             std::size_t dst, std::size_t count_out, std::size_t scratch);

/// Smallest power of two >= n (>= 1).
[[nodiscard]] std::size_t pow2_at_least(std::size_t n) noexcept;

/// Total scratch cells exclusive_scan/compact need for input size n.
[[nodiscard]] std::size_t scan_scratch_size(std::size_t n) noexcept;

}  // namespace hmis::pram
