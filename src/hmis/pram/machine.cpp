#include "hmis/pram/machine.hpp"

#include <algorithm>

#include "hmis/util/check.hpp"

namespace hmis::pram {

Machine::Machine(std::size_t cells, Mode mode, bool strict)
    : mem_(cells, 0), mode_(mode), strict_(strict) {}

std::int64_t Machine::peek(std::size_t addr) const {
  HMIS_CHECK(addr < mem_.size(), "peek out of range");
  return mem_[addr];
}

void Machine::poke(std::size_t addr, std::int64_t value) {
  HMIS_CHECK(addr < mem_.size(), "poke out of range");
  HMIS_CHECK(!in_step_, "poke inside a step");
  mem_[addr] = value;
}

void Machine::record_violation(std::size_t cell, const char* kind) {
  violations_.push_back(Violation{steps_, cell, kind});
  if (strict_) {
    HMIS_CHECK(false, std::string("PRAM access violation: ") + kind +
                          " on cell " + std::to_string(cell) + " at step " +
                          std::to_string(steps_));
  }
}

std::int64_t Machine::read(std::size_t proc, std::size_t addr) {
  HMIS_CHECK(in_step_, "read outside a step");
  HMIS_CHECK(addr < mem_.size(), "read out of range");
  ++reads_;
  auto& use = step_uses_[addr];
  if (use.readers > 0 && use.last_reader != proc && mode_ == Mode::EREW) {
    record_violation(addr, "concurrent-read");
  }
  if (use.writers > 0 && use.last_writer != proc && mode_ != Mode::CRCW) {
    record_violation(addr, "read-write");
  }
  ++use.readers;
  use.last_reader = proc;
  // Synchronous semantics: reads see the value from before the step,
  // regardless of pending writes.
  return mem_[addr];
}

void Machine::write(std::size_t proc, std::size_t addr, std::int64_t value) {
  HMIS_CHECK(in_step_, "write outside a step");
  HMIS_CHECK(addr < mem_.size(), "write out of range");
  ++writes_;
  auto& use = step_uses_[addr];
  if (use.writers > 0 && use.last_writer != proc) {
    if (mode_ != Mode::CRCW) {
      record_violation(addr, "concurrent-write");
    } else if (use.pending_value != value) {
      use.value_conflict = true;
      record_violation(addr, "crcw-value-conflict");
    }
  }
  if (use.readers > 0 && use.last_reader != proc && mode_ != Mode::CRCW) {
    record_violation(addr, "read-write");
  }
  ++use.writers;
  use.last_writer = proc;
  use.pending_value = value;
}

void Machine::step(std::size_t procs,
                   const std::function<void(std::size_t proc)>& body) {
  HMIS_CHECK(!in_step_, "nested step");
  in_step_ = true;
  step_uses_.clear();
  ++steps_;
  max_procs_ = std::max<std::uint64_t>(max_procs_, procs);
  for (std::size_t p = 0; p < procs; ++p) body(p);
  // Apply pending writes synchronously.
  for (const auto& [addr, use] : step_uses_) {
    if (use.writers > 0) mem_[addr] = use.pending_value;
  }
  in_step_ = false;
}

}  // namespace hmis::pram
