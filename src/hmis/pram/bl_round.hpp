// One Beame–Luby marking round as an explicit EREW PRAM program.
//
// Theorem 2 asserts BL "can be implemented on EREW PRAM".  This module
// substantiates that end-to-end: the mark / unmark / survivor pipeline of a
// BL stage (Algorithm 2 lines 6–11) runs as synchronous PRAM steps on the
// Machine simulator, under the exclusivity checker.
//
// Program layout (CSR hypergraph preloaded into shared memory):
//   marks[v]     — step 1: each vertex processor writes its own mark cell
//                  (marks are an input — randomness is drawn host-side from
//                  the same CounterRng the shared-memory BL uses, so the two
//                  implementations are comparable bit-for-bit);
//   edge_ok[e]   — per-edge AND of member marks, computed by an EREW
//                  tree reduction over each edge's private scratch strip
//                  (one processor per (edge, member) pair; no cell is
//                  shared across edges);
//   unmark[v]    — an edge that is fully marked must unmark every member.
//                  Multiple edges may target the same vertex, so the naive
//                  scatter would be CRCW.  The EREW realization assigns the
//                  write to the (edge, member) incidence slot and reduces
//                  per-vertex over the vertex's incidence strip — again a
//                  disjoint tree reduction;
//   survivor[v]  — marks[v] AND NOT unmark[v].
//
// Total depth: O(log(max edge size) + log(max degree)); work O(Σ|e| + n).
#pragma once

#include <cstdint>
#include <vector>

#include "hmis/hypergraph/hypergraph.hpp"
#include "hmis/pram/machine.hpp"

namespace hmis::pram {

struct BlRoundResult {
  std::vector<std::uint8_t> survivor;  ///< per-vertex: joins the IS
  std::uint64_t steps = 0;             ///< PRAM steps executed
  std::uint64_t violations = 0;        ///< EREW violations (must be 0)
  std::uint64_t max_processors = 0;    ///< widest step
};

/// Execute one BL marking round on an EREW PRAM for the given marks.
/// `marks[v]` in {0,1}; returns the survivor set (marked, not unmarked).
[[nodiscard]] BlRoundResult bl_round_erew(
    const Hypergraph& h, const std::vector<std::uint8_t>& marks);

/// Reference shared-memory semantics (identical contract) for testing.
[[nodiscard]] std::vector<std::uint8_t> bl_round_reference(
    const Hypergraph& h, const std::vector<std::uint8_t>& marks);

}  // namespace hmis::pram
