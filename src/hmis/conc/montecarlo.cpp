#include "hmis/conc/montecarlo.hpp"

#include <algorithm>

#include "hmis/par/parallel_for.hpp"
#include "hmis/util/check.hpp"
#include "hmis/util/rng.hpp"

namespace hmis::conc {

std::vector<TailEstimate> estimate_tail(const WeightedHypergraph& wh, double p,
                                        const std::vector<double>& thresholds,
                                        std::uint64_t trials,
                                        std::uint64_t seed) {
  std::vector<std::uint64_t> exceed(thresholds.size(), 0);
  std::vector<double> samples(trials);
  par::parallel_for(0, trials, [&](std::size_t t) {
    samples[t] = sample_S(wh, p, seed, t);
  });
  for (std::uint64_t t = 0; t < trials; ++t) {
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
      if (samples[t] > thresholds[i]) ++exceed[i];
    }
  }
  std::vector<TailEstimate> out(thresholds.size());
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    out[i].threshold = thresholds[i];
    out[i].exceed = exceed[i];
    out[i].trials = trials;
    out[i].probability =
        trials == 0 ? 0.0
                    : static_cast<double>(exceed[i]) / static_cast<double>(trials);
  }
  return out;
}

std::vector<double> sample_S_distribution(const WeightedHypergraph& wh,
                                          double p, std::uint64_t trials,
                                          std::uint64_t seed) {
  std::vector<double> samples(trials);
  par::parallel_for(0, trials, [&](std::size_t t) {
    samples[t] = sample_S(wh, p, seed, t);
  });
  std::sort(samples.begin(), samples.end());
  return samples;
}

SurvivalEstimate estimate_unmark_probability(const Hypergraph& h,
                                             const VertexList& x, double p,
                                             std::uint64_t trials,
                                             std::uint64_t seed) {
  HMIS_CHECK(!x.empty(), "survival estimate needs non-empty X");
  const util::CounterRng rng(seed);
  std::vector<std::uint8_t> in_x(h.num_vertices(), 0);
  for (const VertexId v : x) in_x[v] = 1;

  // Edges that could unmark a member of X: those intersecting X.
  std::vector<EdgeId> relevant;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const auto verts = h.edge(e);
    if (std::any_of(verts.begin(), verts.end(),
                    [&](VertexId v) { return in_x[v] != 0; })) {
      relevant.push_back(e);
    }
  }

  std::vector<std::uint64_t> hits(trials, 0);
  par::parallel_for(0, trials, [&](std::size_t t) {
    // Condition on C_X: members of X are marked; others Bernoulli(p).
    const auto is_marked = [&](VertexId v) {
      return in_x[v] != 0 || rng.bernoulli(p, t, v);
    };
    for (const EdgeId e : relevant) {
      const auto verts = h.edge(e);
      bool all = true;
      for (const VertexId v : verts) {
        if (!is_marked(v)) {
          all = false;
          break;
        }
      }
      if (all) {
        hits[t] = 1;  // some edge through X fully marked => E_X occurs
        break;
      }
    }
  });
  SurvivalEstimate out;
  out.trials = trials;
  std::uint64_t total = 0;
  for (const auto hit : hits) total += hit;
  out.p_unmark =
      trials == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(trials);
  return out;
}

}  // namespace hmis::conc
