#include "hmis/conc/kelsen_bound.hpp"

#include <cmath>

#include "hmis/util/math.hpp"

namespace hmis::conc {

double kelsen_multiplier(const KelsenBoundParams& params) {
  const double logn = util::clog2(params.n);
  const double exponent = std::exp2(params.d) - 1.0;
  return std::pow(logn + 2.0, exponent) * std::pow(params.delta, exponent);
}

double kelsen_failure_probability(const KelsenBoundParams& params) {
  const double logn = util::clog2(params.n);
  const double base = std::exp2(params.d) * std::ceil(logn) * params.m;
  const double lead = std::pow(base, params.d - 1.0) * logn;
  const double e = std::exp(1.0);
  const double tail =
      std::pow(4.0 * e / params.delta, (params.delta - 1.0) / 4.0);
  return lead * tail;
}

double kelsen_corollary1_multiplier(double n, double d) {
  const double logn = util::clog2(n);
  return std::pow(logn, std::exp2(d + 1.0));
}

}  // namespace hmis::conc
