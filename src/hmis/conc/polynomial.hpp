// The polynomial S(H,w,p) of paper §3 and its derivative expectations.
//
// Given a weighted hypergraph (H, w) and marking probability p:
//   S(H,w,p)      = Σ_e w(e) · C_e,  C_e = Π_{v∈e} C_v,  C_v ~ Bernoulli(p)
//   P(H,w,p,x)    = Σ_{e ⊇ x} w(e) · p^{|e|-|x|}  (expected weighted count of
//                   fully-blue edges around x, given x blue)
//   D(H,w,p)      = max_x P(H,w,p,x)  over all x ⊆ V including x = ∅
//                   (x = ∅ gives E[S]).
//
// These drive Kelsen's Theorem 3 and the Kim–Vu bound of §4, and the
// migration polynomial of Lemma 4: H' has as edges all (k-j)-subsets Y of
// the Nk(X)-neighbourhoods with weights w'(Y) = |N_j(X ∪ Y)|.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hmis/hypergraph/hypergraph.hpp"

namespace hmis::conc {

/// A weighted edge system over vertices 0..n-1.
struct WeightedHypergraph {
  std::size_t num_vertices = 0;
  std::vector<VertexList> edges;   // sorted vertex lists
  std::vector<double> weights;     // parallel to edges

  [[nodiscard]] std::size_t dimension() const noexcept;
};

/// Uniformly weighted system from a Hypergraph (w ≡ 1).
[[nodiscard]] WeightedHypergraph unit_weights(const Hypergraph& h);

/// One Monte-Carlo sample of S(H,w,p): mark vertices via (seed, trial) and
/// sum weights of fully marked edges.
[[nodiscard]] double sample_S(const WeightedHypergraph& wh, double p,
                              std::uint64_t seed, std::uint64_t trial);

/// E[S] = P(H,w,p,∅).
[[nodiscard]] double expectation_S(const WeightedHypergraph& wh, double p);

/// Var[S] exactly:  Σ_{e,f} w_e w_f (p^{|e ∪ f|} − p^{|e|+|f|}).
/// O(m²·d) pairwise — fine for the bound-comparison experiments; supplies
/// the classical Chebyshev baseline the polynomial bounds are compared to.
[[nodiscard]] double variance_S(const WeightedHypergraph& wh, double p);

/// Chebyshev threshold: the smallest t with Pr[S > t] <= fail_prob by
/// Chebyshev's inequality, i.e. E[S] + sqrt(Var[S]/fail_prob).
[[nodiscard]] double chebyshev_threshold(const WeightedHypergraph& wh,
                                         double p, double fail_prob);

/// P(H,w,p,x) for a specific sorted x.
[[nodiscard]] double partial_expectation(const WeightedHypergraph& wh,
                                         double p, const VertexList& x);

/// D(H,w,p) = max over all x ⊆ some edge (plus ∅).  Exact via subset
/// enumeration of each edge (edges capped at max_enum_edge_size; larger
/// edges contribute singleton and full subsets only — a lower bound).
struct DResult {
  double value = 0.0;
  bool exact = true;
};
[[nodiscard]] DResult max_partial_expectation(
    const WeightedHypergraph& wh, double p,
    std::size_t max_enum_edge_size = 16);

/// Lemma-4 migration system: for a tracked set X and target sizes j < k,
/// edges are the (k-j)-subsets Y of each Z ∈ N_k(X,H) and
/// w'(Y) = |N_j(X ∪ Y, H)|.  S(H',w',p) upper-bounds the one-stage increase
/// of |N_j(X,H)| due to size-(|X|+k) edges losing k-j vertices.
[[nodiscard]] WeightedHypergraph migration_system(
    std::span<const VertexList> edges, std::size_t num_vertices,
    const VertexList& x, std::size_t j, std::size_t k);

}  // namespace hmis::conc
