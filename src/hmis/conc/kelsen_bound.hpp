// Kelsen's concentration bound (paper Theorem 3 = Theorem 1 in Kelsen'92)
// and its Corollary 1 specialization.
//
//   Pr[S(H,w,p) > k(H) · D(H,w,p)] < p(H), where
//     k(H) = (log n + 2)^{2^d - 1} · δ^{2^d - 1}
//     p(H) = (2^d · ⌈log n⌉ · m)^{d-1} · log n · (4e/δ)^{(δ-1)/4}
//
// Corollary 1 fixes δ = log² n:
//   Pr[S > (log n)^{2^{d+1}} · D] < 1 / n^{Θ(log n · log log n)}.
//
// Logs are base-2 (DESIGN.md fidelity note 6).  These evaluators power the
// tail-bound comparison experiment (F7): the thresholds k(H)·D are compared
// with the Kim–Vu thresholds and with the empirical tail.
#pragma once

#include <cstdint>

namespace hmis::conc {

struct KelsenBoundParams {
  double n = 0;      ///< vertices of the weighted system
  double m = 0;      ///< edges of the weighted system
  double d = 0;      ///< dimension of the weighted system
  double delta = 0;  ///< the free parameter δ > 1
};

/// Multiplier k(H): the bound asserts S <= k(H)·D with failure prob p(H).
[[nodiscard]] double kelsen_multiplier(const KelsenBoundParams& params);

/// Failure probability p(H) (can be astronomically small or > 1 — the bound
/// is vacuous when it exceeds 1, which the experiment reports).
[[nodiscard]] double kelsen_failure_probability(const KelsenBoundParams& params);

/// Corollary 1 multiplier with δ = log² n: (log n)^{2^{d+1}}.
[[nodiscard]] double kelsen_corollary1_multiplier(double n, double d);

}  // namespace hmis::conc
