// Monte-Carlo estimators for the probabilistic quantities the paper's
// analysis bounds — empirical tails of S(H,w,p), the Lemma-2 survival
// probability Pr[E_X | C_X], and the SBL sampled-dimension violation rate.
#pragma once

#include <cstdint>
#include <vector>

#include "hmis/conc/polynomial.hpp"
#include "hmis/hypergraph/hypergraph.hpp"

namespace hmis::conc {

struct TailEstimate {
  double threshold = 0.0;     ///< t in Pr[S > t]
  double probability = 0.0;   ///< fraction of trials exceeding t
  std::uint64_t exceed = 0;   ///< raw exceedance count
  std::uint64_t trials = 0;
};

/// Empirical Pr[S(H,w,p) > t] for each threshold, from `trials` independent
/// markings.  One pass over all trials; thresholds evaluated jointly.
[[nodiscard]] std::vector<TailEstimate> estimate_tail(
    const WeightedHypergraph& wh, double p,
    const std::vector<double>& thresholds, std::uint64_t trials,
    std::uint64_t seed);

/// Empirical quantiles of S(H,w,p): returns the sampled values sorted
/// ascending (caller picks quantiles).
[[nodiscard]] std::vector<double> sample_S_distribution(
    const WeightedHypergraph& wh, double p, std::uint64_t trials,
    std::uint64_t seed);

/// Lemma 2 (paper): for a set X (no edge inside X) marked entirely, estimate
/// Pr[E_X | C_X] — the probability that some fully-marked edge intersecting X
/// forces part of X to be unmarked.  The paper proves < 1/2 for
/// p = 1/(2^{d+1} Δ).
struct SurvivalEstimate {
  double p_unmark = 0.0;  ///< empirical Pr[E_X | C_X]
  std::uint64_t trials = 0;
};
[[nodiscard]] SurvivalEstimate estimate_unmark_probability(
    const Hypergraph& h, const VertexList& x, double p, std::uint64_t trials,
    std::uint64_t seed);

}  // namespace hmis::conc
