#include "hmis/conc/kimvu_bound.hpp"

#include <cmath>

#include "hmis/util/math.hpp"

namespace hmis::conc {

double kimvu_a(unsigned r) {
  return std::pow(8.0, static_cast<double>(r)) *
         std::sqrt(util::factorial(r));
}

double kimvu_multiplier(unsigned j, unsigned k, double lambda) {
  const unsigned r = k - j;
  return 1.0 + kimvu_a(r) * std::pow(lambda, static_cast<double>(r));
}

double kimvu_failure_probability(double n, unsigned j, unsigned k,
                                 double lambda) {
  const double e2 = std::exp(2.0);
  return 2.0 * e2 * std::exp(-lambda) *
         std::pow(n, static_cast<double>(k - j) - 1.0);
}

double kimvu_corollary4_multiplier(double n, unsigned j, unsigned k) {
  const double logn = util::clog2(n);
  return std::pow(logn, 2.0 * static_cast<double>(k - j));
}

double kelsen_corollary2_multiplier(double n, unsigned j, unsigned k) {
  const double logn = util::clog2(n);
  return std::pow(logn, std::exp2(static_cast<double>(k - j) + 1.0));
}

}  // namespace hmis::conc
