#include "hmis/conc/polynomial.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "hmis/util/check.hpp"
#include "hmis/util/rng.hpp"

namespace hmis::conc {

std::size_t WeightedHypergraph::dimension() const noexcept {
  std::size_t d = 0;
  for (const auto& e : edges) d = std::max(d, e.size());
  return d;
}

WeightedHypergraph unit_weights(const Hypergraph& h) {
  WeightedHypergraph wh;
  wh.num_vertices = h.num_vertices();
  wh.edges = h.edges_as_lists();
  wh.weights.assign(wh.edges.size(), 1.0);
  return wh;
}

double sample_S(const WeightedHypergraph& wh, double p, std::uint64_t seed,
                std::uint64_t trial) {
  const util::CounterRng rng(seed);
  double s = 0.0;
  for (std::size_t i = 0; i < wh.edges.size(); ++i) {
    bool all = true;
    for (const VertexId v : wh.edges[i]) {
      if (!rng.bernoulli(p, trial, v)) {
        all = false;
        break;
      }
    }
    if (all) s += wh.weights[i];
  }
  return s;
}

double expectation_S(const WeightedHypergraph& wh, double p) {
  double s = 0.0;
  for (std::size_t i = 0; i < wh.edges.size(); ++i) {
    s += wh.weights[i] * std::pow(p, static_cast<double>(wh.edges[i].size()));
  }
  return s;
}

double variance_S(const WeightedHypergraph& wh, double p) {
  double var = 0.0;
  const std::size_t m = wh.edges.size();
  for (std::size_t i = 0; i < m; ++i) {
    const auto& e = wh.edges[i];
    // Diagonal: Var of one Bernoulli(p^{|e|}) term scaled by w².
    const double pe = std::pow(p, static_cast<double>(e.size()));
    var += wh.weights[i] * wh.weights[i] * pe * (1.0 - pe);
    for (std::size_t j = i + 1; j < m; ++j) {
      const auto& f = wh.edges[j];
      // |e ∪ f| via sorted-merge intersection count.
      std::size_t inter = 0;
      std::size_t a = 0, b = 0;
      while (a < e.size() && b < f.size()) {
        if (e[a] < f[b]) {
          ++a;
        } else if (f[b] < e[a]) {
          ++b;
        } else {
          ++inter;
          ++a;
          ++b;
        }
      }
      if (inter == 0) continue;  // independent terms: zero covariance
      const double pu =
          std::pow(p, static_cast<double>(e.size() + f.size() - inter));
      const double pp =
          std::pow(p, static_cast<double>(e.size() + f.size()));
      var += 2.0 * wh.weights[i] * wh.weights[j] * (pu - pp);
    }
  }
  return var;
}

double chebyshev_threshold(const WeightedHypergraph& wh, double p,
                           double fail_prob) {
  const double mean = expectation_S(wh, p);
  const double var = variance_S(wh, p);
  return mean + std::sqrt(std::max(var, 0.0) / std::max(fail_prob, 1e-300));
}

double partial_expectation(const WeightedHypergraph& wh, double p,
                           const VertexList& x) {
  HMIS_CHECK(std::is_sorted(x.begin(), x.end()), "x must be sorted");
  double s = 0.0;
  for (std::size_t i = 0; i < wh.edges.size(); ++i) {
    const auto& e = wh.edges[i];
    if (e.size() < x.size()) continue;
    if (std::includes(e.begin(), e.end(), x.begin(), x.end())) {
      s += wh.weights[i] *
           std::pow(p, static_cast<double>(e.size() - x.size()));
    }
  }
  return s;
}

namespace {

std::uint64_t hash_sorted(const VertexId* verts, const std::uint32_t* idx,
                          std::size_t k) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ k;
  for (std::size_t i = 0; i < k; ++i) {
    h = util::mix64(h ^ util::splitmix64(verts[idx[i]] + 0x9e3779b9ULL));
  }
  return h;
}

}  // namespace

DResult max_partial_expectation(const WeightedHypergraph& wh, double p,
                                std::size_t max_enum_edge_size) {
  DResult out;
  out.value = expectation_S(wh, p);  // x = ∅
  // Accumulate P(x) = Σ_{e ⊇ x} w(e) p^{|e|-|x|} for every subset x of every
  // edge.  Only subsets of edges can have P(x) > 0.
  std::unordered_map<std::uint64_t, double> acc;
  std::uint32_t idx[32];
  for (std::size_t i = 0; i < wh.edges.size(); ++i) {
    const auto& e = wh.edges[i];
    const std::size_t s = e.size();
    const double w = wh.weights[i];
    if (s <= max_enum_edge_size) {
      const std::uint32_t full = (1u << s) - 1;
      for (std::uint32_t mask = 1; mask <= full; ++mask) {
        std::size_t k = 0;
        std::uint32_t mm = mask;
        while (mm != 0) {
          const int b = __builtin_ctz(mm);
          idx[k++] = static_cast<std::uint32_t>(b);
          mm &= mm - 1;
        }
        const double contrib = w * std::pow(p, static_cast<double>(s - k));
        acc[hash_sorted(e.data(), idx, k)] += contrib;
      }
    } else {
      out.exact = false;
      // Singletons and the full edge only.
      for (std::size_t q = 0; q < s; ++q) {
        const std::uint32_t one = static_cast<std::uint32_t>(q);
        acc[hash_sorted(e.data(), &one, 1)] +=
            w * std::pow(p, static_cast<double>(s - 1));
      }
      std::vector<std::uint32_t> all(s);
      for (std::size_t q = 0; q < s; ++q) all[q] = static_cast<std::uint32_t>(q);
      acc[hash_sorted(e.data(), all.data(), s)] += w;
    }
  }
  // Iteration order cannot change the result here:
  // HMIS_LINT_ALLOW(hmis-banned-nondeterminism: max over doubles is a commutative fold)
  for (const auto& [key, value] : acc) {
    (void)key;
    out.value = std::max(out.value, value);
  }
  return out;
}

WeightedHypergraph migration_system(std::span<const VertexList> edges,
                                    std::size_t num_vertices,
                                    const VertexList& x, std::size_t j,
                                    std::size_t k) {
  HMIS_CHECK(j >= 1 && j < k, "migration_system needs 1 <= j < k");
  HMIS_CHECK(std::is_sorted(x.begin(), x.end()), "x must be sorted");
  WeightedHypergraph wh;
  wh.num_vertices = num_vertices;

  // N_k(X): the y-parts (e \ x) of edges e ⊇ x with |e| = |x| + k.
  std::vector<VertexList> nk;
  for (const auto& e : edges) {
    if (e.size() != x.size() + k) continue;
    if (!std::includes(e.begin(), e.end(), x.begin(), x.end())) continue;
    VertexList y;
    std::set_difference(e.begin(), e.end(), x.begin(), x.end(),
                        std::back_inserter(y));
    nk.push_back(std::move(y));
  }

  // All (k-j)-subsets Y of each Z ∈ N_k(X), deduplicated by value and kept
  // in sorted order — the system's edge order is part of the deterministic
  // output, so it must not depend on hash-table internals, and two distinct
  // subsets must never collapse onto one hash.  Weight w'(Y) = |N_j(X ∪ Y)|
  // is computed afterwards against the full edge list.
  std::vector<VertexList> subsets;
  const std::size_t take = k - j;
  std::vector<std::uint32_t> comb(take);
  for (const auto& z : nk) {
    HMIS_CHECK(z.size() == k, "N_k y-part has wrong size");
    // Enumerate all `take`-subsets of z's k indices (standard revolving-door
    // successor: comb[i] ranges over [i, k - take + i]).
    for (std::size_t q = 0; q < take; ++q) {
      comb[q] = static_cast<std::uint32_t>(q);
    }
    for (;;) {
      VertexList y(take);
      for (std::size_t q = 0; q < take; ++q) y[q] = z[comb[q]];
      subsets.push_back(std::move(y));
      // Successor: bump the rightmost index that has room.
      std::size_t q = take;
      while (q > 0 &&
             comb[q - 1] == static_cast<std::uint32_t>(k - take + (q - 1))) {
        --q;
      }
      if (q == 0) break;
      ++comb[q - 1];
      for (std::size_t r = q; r < take; ++r) comb[r] = comb[r - 1] + 1;
    }
  }
  std::sort(subsets.begin(), subsets.end());
  subsets.erase(std::unique(subsets.begin(), subsets.end()), subsets.end());

  for (const auto& y : subsets) {
    VertexList xy;
    std::merge(x.begin(), x.end(), y.begin(), y.end(), std::back_inserter(xy));
    // w'(Y) = |N_j(X ∪ Y)|: edges of size |xy| + j containing xy.
    std::uint64_t count = 0;
    for (const auto& e : edges) {
      if (e.size() != xy.size() + j) continue;
      if (std::includes(e.begin(), e.end(), xy.begin(), xy.end())) ++count;
    }
    if (count > 0) {
      wh.edges.push_back(y);
      wh.weights.push_back(static_cast<double>(count));
    }
  }
  return wh;
}

}  // namespace hmis::conc
