// The Kim–Vu polynomial concentration bound in the specialization the paper
// derives in §4 (Corollaries 3 and 4):
//
//   Pr[S(X,j,k) > (1 + a_{k-j} λ^{k-j}) · (Δ_{|X|+k}(H))^j] <= 2e² e^{-λ} n^{k-j-1}
//     with a_{k-j} = 8^{k-j} · ((k-j)!)^{1/2};
//
//   choosing λ = Θ(log² n) gives the per-stage migration bound
//     increase in d_{j-|X|}(X,H)  <  Σ_{k>j} (log n)^{2(k-j)} · Δ_k(H)
//   (Corollary 4) — much smaller than Kelsen's (log n)^{2^{k-j+1}} (Cor. 2).
#pragma once

namespace hmis::conc {

/// a_r = 8^r · sqrt(r!).
[[nodiscard]] double kimvu_a(unsigned r);

/// Multiplier (1 + a_{k-j} λ^{k-j}) for the S(X,j,k) threshold.
[[nodiscard]] double kimvu_multiplier(unsigned j, unsigned k, double lambda);

/// Failure probability 2e² · e^{-λ} · n^{k-j-1}.
[[nodiscard]] double kimvu_failure_probability(double n, unsigned j,
                                               unsigned k, double lambda);

/// Corollary 4 per-(k,j) migration multiplier: (log2 n)^{2(k-j)}.
[[nodiscard]] double kimvu_corollary4_multiplier(double n, unsigned j,
                                                 unsigned k);

/// Corollary 2 (Kelsen) per-(k,j) migration multiplier: (log2 n)^{2^{k-j+1}}.
[[nodiscard]] double kelsen_corollary2_multiplier(double n, unsigned j,
                                                  unsigned k);

}  // namespace hmis::conc
