#include "hmis/net/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <chrono>
#include <exception>
#include <sstream>
#include <thread>
#include <utility>

#include "hmis/hypergraph/io.hpp"
#include "hmis/util/check.hpp"
#include "hmis/util/json.hpp"
#include "hmis/util/timer.hpp"

namespace hmis::net {

// ---- AdmissionGate ---------------------------------------------------------

bool ServeCore::AdmissionGate::acquire(double remaining_ms) {
  if (capacity_ == 0) return true;
  util::UniqueLock lock(mutex_);
  const auto admitted = [this]() HMIS_REQUIRES(mutex_) {
    return inflight_ < capacity_;
  };
  if (remaining_ms < 0) {
    freed_.wait(lock, admitted);
  } else if (!freed_.wait_for(
                 lock, std::chrono::duration<double, std::milli>(remaining_ms),
                 admitted)) {
    return false;
  }
  ++inflight_;
  return true;
}

void ServeCore::AdmissionGate::release() {
  {
    util::MutexLock lock(mutex_);
    --inflight_;
  }
  freed_.notify_one();
}

std::size_t ServeCore::AdmissionGate::inflight() const {
  util::MutexLock lock(mutex_);
  return inflight_;
}

// ---- ServeCore -------------------------------------------------------------

ServeCore::ServeCore(const ServeOptions& opt)
    : opt_(opt),
      engine_(engine::EngineOptions{.threads = opt.threads,
                                    .pool = nullptr,
                                    .max_inflight = opt.max_inflight}),
      cache_(opt.cache_entries),
      gate_(opt.max_inflight) {}

ServeCore::Outcome ServeCore::respond_error(FrameSink* sink, ErrorCode code,
                                            std::string_view message) {
  rejected_.fetch_add(1, std::memory_order_relaxed);
  return sink->frame(error_payload(code, message)) ? Outcome::Continue
                                                   : Outcome::Close;
}

ServeCore::Outcome ServeCore::handle(std::string_view payload,
                                     FrameSource* source, FrameSink* sink,
                                     const util::CancelToken* disconnect) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  Request req;
  std::string parse_err;
  if (!parse_request(payload, &req, &parse_err)) {
    return respond_error(sink, ErrorCode::BadRequest, parse_err);
  }
  switch (req.op) {
    case Request::Op::Ping:
      return sink->frame("{\"ok\":true}") ? Outcome::Continue : Outcome::Close;
    case Request::Op::Load:
      return handle_load(req, source, sink);
    case Request::Op::Unload: {
      if (req.graph.empty()) {
        return respond_error(sink, ErrorCode::BadRequest,
                             "unload requires a graph name");
      }
      if (!registry_.unload(req.graph)) {
        return respond_error(sink, ErrorCode::NotFound, "graph not loaded");
      }
      return sink->frame("{\"ok\":true}") ? Outcome::Continue : Outcome::Close;
    }
    case Request::Op::List: {
      std::ostringstream os;
      os << "{\"ok\":true,\"graphs\":[";
      bool first = true;
      for (const GraphInfo& g : registry_.list()) {
        if (!first) os << ',';
        first = false;
        os << "{\"name\":\"" << util::json_escape(g.name) << "\",\"digest\":\""
           << digest_hex(g.digest) << "\",\"vertices\":" << g.num_vertices
           << ",\"edges\":" << g.num_edges << "}";
      }
      os << "]}";
      return sink->frame(os.str()) ? Outcome::Continue : Outcome::Close;
    }
    case Request::Op::Solve:
      return handle_solve(req, sink, disconnect);
    case Request::Op::Cancel:
      return handle_cancel(req, sink);
    case Request::Op::Stats: {
      const ServeStats s = stats();
      std::ostringstream os;
      os << "{\"ok\":true,\"stats\":{\"requests\":" << s.requests
         << ",\"solves\":" << s.solves << ",\"rejected\":" << s.rejected
         << ",\"cache\":{\"hits\":" << s.cache.hits
         << ",\"misses\":" << s.cache.misses
         << ",\"insertions\":" << s.cache.insertions
         << ",\"evictions\":" << s.cache.evictions
         << ",\"entries\":" << s.cache.entries
         << "},\"cancelled\":" << s.cancelled
         << ",\"admission_inflight\":" << s.admission_inflight
         << ",\"engine\":{\"submitted\":" << s.engine.submitted
         << ",\"completed\":" << s.engine.completed
         << ",\"failed\":" << s.engine.failed
         << ",\"cancelled\":" << s.engine.cancelled
         << ",\"inflight\":" << s.engine.inflight
         << "},\"data_plane\":{\"sweeps\":" << s.data_plane.sweeps
         << ",\"swept_entries\":" << s.data_plane.swept_entries
         << ",\"stale_deposited\":" << s.data_plane.stale_deposited
         << ",\"sparse_gathers\":" << s.data_plane.sparse_gathers
         << ",\"dense_gathers\":" << s.data_plane.dense_gathers
         << "},\"graphs\":" << s.graphs << ",\"shutting_down\":"
         << (shutting_down() ? "true" : "false") << "}}";
      return sink->frame(os.str()) ? Outcome::Continue : Outcome::Close;
    }
    case Request::Op::Shutdown: {
      begin_shutdown();
      (void)sink->frame("{\"ok\":true,\"event\":\"shutting_down\"}");
      return Outcome::Shutdown;
    }
  }
  return respond_error(sink, ErrorCode::Internal, "unhandled op");
}

ServeCore::Outcome ServeCore::handle_load(const Request& req,
                                          FrameSource* source,
                                          FrameSink* sink) {
  // The graph frame ALWAYS follows a load request; pull it before any
  // validation so an error response never leaves the stream desynced.
  std::string bytes;
  if (source == nullptr || !source->next_frame(&bytes)) {
    (void)respond_error(sink, ErrorCode::BadRequest,
                        "missing or unreadable graph frame after load");
    return Outcome::Close;  // nothing sane can follow
  }
  if (shutting_down()) {
    return respond_error(sink, ErrorCode::ShuttingDown, "server is draining");
  }
  if (req.graph.empty()) {
    return respond_error(sink, ErrorCode::BadRequest, "load requires a name");
  }
  enum class Wire { Text, Hgb1, Hgb2 };
  Wire wire;
  if (req.format.empty()) {
    if (bytes.size() >= 4 && bytes.compare(0, 4, "HGB2") == 0) {
      wire = Wire::Hgb2;
    } else if (bytes.size() >= 4 && bytes.compare(0, 4, "HGB1") == 0) {
      wire = Wire::Hgb1;
    } else {
      wire = Wire::Text;
    }
  } else if (req.format == "hg1") {
    wire = Wire::Text;
  } else if (req.format == "hgb1") {
    wire = Wire::Hgb1;
  } else if (req.format == "hgb2") {
    wire = Wire::Hgb2;
  } else {
    return respond_error(sink, ErrorCode::BadRequest,
                         "format must be \"hg1\", \"hgb1\" or \"hgb2\"");
  }
  try {
    GraphRegistry::Entry entry;
    if (wire == Wire::Hgb2) {
      // Adopt the frame in place: the graph's CSR spans point into the
      // frame bytes (kept alive by the shared buffer), so a large upload
      // pays validation but no per-edge parse and no copy.
      auto frame = std::make_shared<const std::string>(std::move(bytes));
      Hypergraph g = hypergraph_from_hgb2_buffer(std::move(frame));
      entry = registry_.put(std::string(req.graph), std::move(g));
    } else {
      std::istringstream is(bytes);
      Hypergraph g = wire == Wire::Hgb1 ? read_hypergraph_binary(is)
                                        : read_hypergraph(is);
      entry = registry_.put(std::string(req.graph), std::move(g));
    }
    std::ostringstream os;
    os << "{\"ok\":true,\"graph\":\"" << util::json_escape(req.graph)
       << "\",\"digest\":\"" << digest_hex(entry.digest)
       << "\",\"vertices\":" << entry.graph->num_vertices()
       << ",\"edges\":" << entry.graph->num_edges() << "}";
    return sink->frame(os.str()) ? Outcome::Continue : Outcome::Close;
  } catch (const util::CheckError& e) {
    // Hostile/corrupt graph bytes are a CLIENT error — the validated
    // readers (io.cpp) turned them into a CheckError instead of a crash.
    return respond_error(sink, ErrorCode::BadRequest, e.what());
  } catch (const std::exception& e) {
    return respond_error(sink, ErrorCode::Internal, e.what());
  }
}

ServeCore::Outcome ServeCore::handle_cancel(const Request& req,
                                            FrameSink* sink) {
  if (req.id.empty()) {
    return respond_error(sink, ErrorCode::BadRequest, "cancel requires an id");
  }
  bool found = false;
  {
    // cancel() under the registry mutex: handle_solve erases its entry
    // under the same mutex before its token leaves scope, so the pointer
    // is live for exactly as long as it is findable.
    util::MutexLock lock(ids_mutex_);
    const auto it = inflight_ids_.find(req.id);
    if (it != inflight_ids_.end()) {
      it->second->cancel();
      found = true;
    }
  }
  if (!found) {
    return respond_error(sink, ErrorCode::NotFound,
                         "no in-flight solve with that id");
  }
  std::string out = "{\"ok\":true,\"cancelled\":\"";
  out += util::json_escape(req.id);
  out += "\"}";
  return sink->frame(out) ? Outcome::Continue : Outcome::Close;
}

ServeCore::Outcome ServeCore::handle_solve(const Request& req, FrameSink* sink,
                                           const util::CancelToken* disconnect) {
  util::Timer elapsed;  // deadline anchor: request receipt
  if (shutting_down()) {
    return respond_error(sink, ErrorCode::ShuttingDown, "server is draining");
  }
  if (req.graph.empty()) {
    return respond_error(sink, ErrorCode::BadRequest,
                         "solve requires a graph name");
  }
  const auto algo =
      core::algorithm_from_name(req.algo.empty() ? "auto" : req.algo);
  if (!algo) {
    return respond_error(sink, ErrorCode::BadRequest, "unknown algorithm");
  }
  const auto entry = registry_.find(req.graph);
  if (!entry) {
    return respond_error(sink, ErrorCode::NotFound, "graph not loaded");
  }
  if (!core::supports(*algo, *entry->graph)) {
    return respond_error(sink, ErrorCode::BadRequest,
                         "algorithm does not support this instance");
  }

  const ResultCache::Key key{entry->digest, static_cast<std::uint8_t>(*algo),
                             req.seed};
  if (const auto hit = cache_.find(key)) {
    // The zero-allocation hot path: parse, registry find, cache find, and
    // this write all reuse or share existing storage
    // (bench_serve_cache_hit asserts allocations() == 0 across it).
    return sink->frame(*hit) ? Outcome::Continue : Outcome::Close;
  }

  // The request's cancellation latch: tripped by the `cancel` op (via the
  // id registry below) or by the connection's peer-disconnect token.  Lives
  // past this point only — the cache-hit return above never touches it, so
  // the zero-alloc hit path stays untouched by cancellation machinery.
  util::CancelToken request_cancel(disconnect);

  // Register the optional id BEFORE admission: a solve stuck waiting for a
  // ticket is exactly the kind another connection wants to cancel.
  struct IdRegistration {
    ServeCore* core = nullptr;
    std::string id;
    ~IdRegistration() {
      if (core != nullptr) {
        util::MutexLock lock(core->ids_mutex_);
        core->inflight_ids_.erase(id);
      }
    }
  } registration;
  if (!req.id.empty()) {
    util::MutexLock lock(ids_mutex_);
    const auto [it, inserted] =
        inflight_ids_.emplace(std::string(req.id), &request_cancel);
    if (!inserted) {
      return respond_error(sink, ErrorCode::BadRequest,
                           "id already names an in-flight solve");
    }
    registration.core = this;
    registration.id = it->first;
  }
  const auto respond_cancelled = [&]() -> Outcome {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    return respond_error(sink, ErrorCode::Cancelled, "solve cancelled");
  };
  if (request_cancel.cancelled()) return respond_cancelled();

  const double deadline_ms =
      req.deadline_ms >= 0 ? req.deadline_ms : opt_.default_deadline_ms;
  const auto remaining_ms = [&elapsed, deadline_ms]() -> double {
    return deadline_ms <= 0 ? -1.0 : deadline_ms - elapsed.millis();
  };
  if (deadline_ms > 0 && remaining_ms() <= 0) {
    return respond_error(sink, ErrorCode::DeadlineExceeded,
                         "deadline expired before admission");
  }
  if (!gate_.acquire(remaining_ms())) {
    return respond_error(sink, ErrorCode::DeadlineExceeded,
                         "deadline expired waiting for an admission slot");
  }
  struct TicketGuard {
    AdmissionGate& gate;
    ~TicketGuard() { gate.release(); }
  } ticket{gate_};

  if (opt_.enable_test_ops && req.delay_ms > 0) {
    // Test-only congestion: occupy the admission slot without solving.
    // Sliced so a cancel (or peer disconnect) frees the slot promptly
    // instead of after the full delay.
    util::Timer slept;
    while (slept.millis() < req.delay_ms) {
      if (request_cancel.cancelled()) return respond_cancelled();
      const double left = req.delay_ms - slept.millis();
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          left < 2.0 ? left : 2.0));
    }
  }
  if (request_cancel.cancelled()) return respond_cancelled();
  if (deadline_ms > 0 && remaining_ms() <= 0) {
    return respond_error(sink, ErrorCode::DeadlineExceeded,
                         "deadline expired before the solve started");
  }

  engine::SolveRequest sr;
  sr.graph = entry->graph;
  sr.algorithm = *algo;
  sr.seed = req.seed;
  sr.cancel = &request_cancel;
  if (req.progress_every > 0) {
    const std::uint64_t every = req.progress_every;
    sr.on_progress = [sink, every](std::size_t rounds) {
      if (rounds % every == 0) (void)sink->frame(progress_payload(rounds));
    };
  }
  solves_.fetch_add(1, std::memory_order_relaxed);
  core::MisRun run;
  try {
    run = engine_.submit(std::move(sr)).get().run;
  } catch (const util::CancelledError&) {
    return respond_cancelled();
  } catch (const std::exception& e) {
    return respond_error(sink, ErrorCode::Internal, e.what());
  }
  auto response = std::make_shared<const std::string>(solve_payload(run));
  // Cache even when the deadline lapsed mid-solve: the work is done and the
  // bytes are pure, so the retry is a free hit.
  cache_.insert(key, response);
  if (deadline_ms > 0 && remaining_ms() <= 0) {
    return respond_error(sink, ErrorCode::DeadlineExceeded,
                         "solve completed after the deadline");
  }
  return sink->frame(*response) ? Outcome::Continue : Outcome::Close;
}

ServeStats ServeCore::stats() const {
  ServeStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.solves = solves_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.admission_inflight = gate_.inflight();
  s.cache = cache_.stats();
  s.engine = engine_.stats();
  s.data_plane = data_plane_stats();
  s.graphs = registry_.size();
  return s;
}

// ---- Server ----------------------------------------------------------------

namespace {

/// Frame writer over one connection's socket.  The mutex serializes final
/// responses against progress frames fired from engine worker threads; once
/// a write fails the sink goes dead (no point torturing a broken pipe).
class SocketSink final : public FrameSink {
 public:
  explicit SocketSink(Socket& sock) : sock_(sock) {}
  bool frame(std::string_view payload) override {
    util::MutexLock lock(mutex_);
    if (!alive_) return false;
    alive_ = write_frame(sock_, payload);
    return alive_;
  }

 private:
  Socket& sock_;
  util::Mutex mutex_;
  bool alive_ HMIS_GUARDED_BY(mutex_) = true;
};

class SocketSource final : public FrameSource {
 public:
  SocketSource(Socket& sock, std::size_t max_bytes)
      : sock_(sock), max_bytes_(max_bytes) {}
  bool next_frame(std::string* out) override {
    return read_frame(sock_, out, max_bytes_) == FrameStatus::Ok;
  }

 private:
  Socket& sock_;
  std::size_t max_bytes_;
};

}  // namespace

// ---- DisconnectWatcher -----------------------------------------------------

#ifdef POLLRDHUP
constexpr short kHangupEvents = POLLRDHUP | POLLHUP | POLLERR | POLLNVAL;
constexpr short kHangupPollFor = POLLRDHUP;
#else
constexpr short kHangupEvents = POLLHUP | POLLERR | POLLNVAL;
constexpr short kHangupPollFor = 0;
#endif

Server::DisconnectWatcher::DisconnectWatcher() {
  int pipe_fds[2];
  HMIS_CHECK(::pipe2(pipe_fds, O_CLOEXEC) == 0, "pipe2() failed");
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  thread_ = std::thread([this] { run(); });
}

Server::DisconnectWatcher::~DisconnectWatcher() {
  disable();
  ::close(wake_read_);
  ::close(wake_write_);
}

void Server::DisconnectWatcher::watch(int fd, util::CancelToken* token) {
  {
    util::MutexLock lock(mutex_);
    watched_.emplace_back(fd, token);
  }
  const char byte = 1;
  (void)!::write(wake_write_, &byte, 1);
}

void Server::DisconnectWatcher::unwatch(int fd) {
  {
    // Same mutex as the cancel sweep in run(): after this returns, the
    // token registered for fd can never be dereferenced again, so the
    // caller may let it go out of scope.
    util::MutexLock lock(mutex_);
    for (auto it = watched_.begin(); it != watched_.end(); ++it) {
      if (it->first == fd) {
        watched_.erase(it);
        break;
      }
    }
  }
  const char byte = 1;
  (void)!::write(wake_write_, &byte, 1);
}

void Server::DisconnectWatcher::disable() {
  stop_.store(true);
  const char byte = 1;
  (void)!::write(wake_write_, &byte, 1);
  if (thread_.joinable()) thread_.join();
}

void Server::DisconnectWatcher::run() {
  std::vector<pollfd> fds;
  std::vector<int> fd_order;
  while (!stop_.load()) {
    fds.clear();
    fd_order.clear();
    fds.push_back({wake_read_, POLLIN, 0});
    {
      util::MutexLock lock(mutex_);
      for (const auto& [fd, token] : watched_) {
        fds.push_back({fd, kHangupPollFor, 0});
        fd_order.push_back(fd);
      }
    }
    const int r = ::poll(fds.data(), fds.size(), -1);
    if (r < 0) {
      if (errno == EINTR) continue;
      return;  // should not happen; fail closed (no more cancellations)
    }
    if ((fds[0].revents & POLLIN) != 0) {
      char drained[16];
      (void)!::read(wake_read_, drained, sizeof(drained));
    }
    if (stop_.load()) return;
    util::MutexLock lock(mutex_);
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if ((fds[i].revents & kHangupEvents) == 0) continue;
      // Re-find under the mutex: the snapshot above raced with
      // watch/unwatch, so fd_order[i-1] may already be gone (in which case
      // the hangup belongs to a connection that finished on its own).
      for (auto it = watched_.begin(); it != watched_.end(); ++it) {
        if (it->first == fd_order[i - 1]) {
          it->second->cancel();
          watched_.erase(it);  // one-shot: the token latches forever
          break;
        }
      }
    }
  }
}

// ---- Server ----------------------------------------------------------------

Server::Server(const ServeOptions& opt)
    : core_(opt), listener_(opt.host, opt.port, /*backlog=*/128) {}

Server::~Server() { stop(); }

void Server::start() {
  HMIS_CHECK(!acceptor_.joinable(), "Server::start() called twice");
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Server::request_stop() noexcept {
  stop_.store(true);
  core_.begin_shutdown();
  listener_.wake();
  {
    util::MutexLock lock(state_mutex_);
    stop_requested_ = true;
  }
  stopped_cv_.notify_all();
}

void Server::stop() {
  request_stop();
  {
    util::MutexLock lock(join_mutex_);
    if (acceptor_.joinable()) acceptor_.join();
  }
  core_.engine().drain();
}

void Server::wait_until_stopped() {
  util::UniqueLock lock(state_mutex_);
  stopped_cv_.wait(lock, [this]() HMIS_REQUIRES(state_mutex_) {
    return stop_requested_;
  });
}

void Server::accept_loop() {
  while (!stop_.load()) {
    Socket sock = listener_.accept();
    if (stop_.load()) break;
    if (!sock.valid()) continue;  // woken or transient accept failure
    util::MutexLock lock(conns_mutex_);
    sweep_finished_locked();
    if (active_connections_.load() >= core_.options().max_connections) {
      (void)write_frame(sock, error_payload(ErrorCode::ResourceExhausted,
                                            "connection limit reached"));
      continue;  // socket closes on scope exit
    }
    auto conn = std::make_unique<Conn>();
    conn->sock = std::move(sock);
    Conn* raw = conn.get();
    active_connections_.fetch_add(1);
    conn->worker = std::thread([this, raw] { serve_connection(raw); });
    conns_.push_back(std::move(conn));
  }
  // Graceful drain: half-close every read side so idle connections see EOF
  // while in-flight requests run to completion and deliver their responses,
  // then join.  Connection threads never touch conns_, so once the accept
  // loop stops adding, the snapshot below is the complete set.
  std::vector<std::unique_ptr<Conn>> remaining;
  {
    util::MutexLock lock(conns_mutex_);
    remaining.swap(conns_);
  }
  // MUST precede the half-close loop: shutdown_read() makes poll report
  // RDHUP on our own fds, and the drain contract is that in-flight requests
  // finish — they must not be cancelled as false peer-disconnects.
  watcher_.disable();
  for (const auto& c : remaining) c->sock.shutdown_read();
  for (const auto& c : remaining) {
    if (c->worker.joinable()) c->worker.join();
  }
}

void Server::sweep_finished_locked() {
  auto it = conns_.begin();
  while (it != conns_.end()) {
    if ((*it)->done.load()) {
      if ((*it)->worker.joinable()) (*it)->worker.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::serve_connection(Conn* conn) {
  SocketSink sink(conn->sock);
  SocketSource source(conn->sock, core_.options().max_frame_bytes);
  // One latch for the connection's whole life: once the peer hangs up, every
  // subsequent request on this connection is moot, not just the one in
  // flight when the hangup landed.
  util::CancelToken peer_gone(nullptr);
  watcher_.watch(conn->sock.fd(), &peer_gone);
  std::string buf;
  for (;;) {
    const FrameStatus st =
        read_frame(conn->sock, &buf, core_.options().max_frame_bytes);
    if (st == FrameStatus::TooLarge) {
      // The length header was consumed but the payload was not read — the
      // stream is desynced, so the error frame is this connection's last.
      (void)sink.frame(error_payload(ErrorCode::FrameTooLarge,
                                     "request frame exceeds the size cap"));
      break;
    }
    if (st != FrameStatus::Ok) break;  // clean EOF or socket error
    const ServeCore::Outcome outcome =
        core_.handle(buf, &source, &sink, &peer_gone);
    if (outcome == ServeCore::Outcome::Continue) continue;
    if (outcome == ServeCore::Outcome::Shutdown) request_stop();
    break;
  }
  // Unwatch BEFORE peer_gone dies (and before the half-close below, which
  // would read as a hangup on our own fd).
  watcher_.unwatch(conn->sock.fd());
  // Tell the peer we are done NOW: the fd itself is closed later, on the
  // acceptor thread, when this Conn is swept or drained — but that sweep
  // only runs on accept activity, and a client waiting for EOF after an
  // error frame must not depend on another connection arriving first.
  conn->sock.shutdown_both();
  conn->done.store(true);
  active_connections_.fetch_sub(1);
}

}  // namespace hmis::net
