#include "hmis/net/protocol.hpp"

#include <new>
#include <sstream>

#include "hmis/util/fault.hpp"
#include "hmis/util/json.hpp"

namespace hmis::net {

FrameStatus read_frame(Socket& s, std::string* out, std::size_t max_bytes) {
  unsigned char header[4];
  switch (s.recv_exact(header, 4)) {
    case Socket::RecvStatus::Eof:
      return FrameStatus::Eof;
    case Socket::RecvStatus::Error:
      return FrameStatus::Error;
    case Socket::RecvStatus::Ok:
      break;
  }
  const std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                            (static_cast<std::uint32_t>(header[1]) << 8) |
                            (static_cast<std::uint32_t>(header[2]) << 16) |
                            (static_cast<std::uint32_t>(header[3]) << 24);
  if (len > max_bytes) return FrameStatus::TooLarge;
  // The one allocation a hostile-but-in-cap frame can force.  Exhaustion
  // here is contained as Error rather than thrown: the length header is
  // already consumed, so the stream is unusable — exactly the Error
  // contract — and this function's callers include connection threads
  // with no exception backstop.
  try {
    if (HMIS_FAULT_POINT("alloc.protocol")) throw std::bad_alloc();
    out->resize(len);
  } catch (const std::bad_alloc&) {
    return FrameStatus::Error;
  }
  if (len == 0) return FrameStatus::Ok;
  return s.recv_exact(out->data(), len) == Socket::RecvStatus::Ok
             ? FrameStatus::Ok
             : FrameStatus::Error;
}

bool write_frame(Socket& s, std::string_view payload) {
  if (payload.size() > 0xFFFFFFFFull) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const unsigned char header[4] = {
      static_cast<unsigned char>(len & 0xFF),
      static_cast<unsigned char>((len >> 8) & 0xFF),
      static_cast<unsigned char>((len >> 16) & 0xFF),
      static_cast<unsigned char>((len >> 24) & 0xFF),
  };
  return s.send_all(header, 4) && s.send_all(payload.data(), payload.size());
}

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::BadRequest:
      return "BAD_REQUEST";
    case ErrorCode::NotFound:
      return "NOT_FOUND";
    case ErrorCode::DeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case ErrorCode::ResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case ErrorCode::FrameTooLarge:
      return "FRAME_TOO_LARGE";
    case ErrorCode::ShuttingDown:
      return "SHUTTING_DOWN";
    case ErrorCode::Cancelled:
      return "CANCELLED";
    case ErrorCode::Internal:
      return "INTERNAL";
  }
  return "INTERNAL";
}

std::string error_payload(ErrorCode code, std::string_view message) {
  std::string out = "{\"ok\":false,\"code\":\"";
  out += error_code_name(code);
  out += "\",\"error\":\"";
  out += util::json_escape(message);
  out += "\"}";
  return out;
}

std::string result_json(const core::MisRun& run) {
  std::ostringstream os;
  os << "{\"algorithm\":\"" << core::algorithm_name(run.algorithm)
     << "\",\"success\":" << (run.result.success ? "true" : "false");
  if (!run.result.success) {
    os << ",\"failure\":\"" << util::json_escape(run.result.failure_reason)
       << "\"}";
    return os.str();
  }
  const auto& m = run.result.metrics;
  os << ",\"size\":" << run.result.independent_set.size()
     << ",\"rounds\":" << run.result.rounds
     << ",\"inner_stages\":" << run.result.inner_stages
     << ",\"resamples\":" << run.result.resamples
     << ",\"verified\":" << (run.verdict.ok() ? "true" : "false")
     << ",\"metrics\":{\"work\":" << m.work << ",\"depth\":" << m.depth
     << ",\"calls\":" << m.calls << "},\"set\":[";
  for (std::size_t i = 0; i < run.result.independent_set.size(); ++i) {
    if (i > 0) os << ',';
    os << run.result.independent_set[i];
  }
  os << "]}";
  return os.str();
}

std::string solve_payload(const core::MisRun& run) {
  return "{\"ok\":true,\"result\":" + result_json(run) + "}";
}

std::string progress_payload(std::size_t rounds) {
  return "{\"ok\":true,\"event\":\"progress\",\"rounds\":" +
         std::to_string(rounds) + "}";
}

namespace {

bool parse_op(std::string_view name, Request::Op* out) {
  if (name == "ping") *out = Request::Op::Ping;
  else if (name == "load") *out = Request::Op::Load;
  else if (name == "unload") *out = Request::Op::Unload;
  else if (name == "list") *out = Request::Op::List;
  else if (name == "solve") *out = Request::Op::Solve;
  else if (name == "stats") *out = Request::Op::Stats;
  else if (name == "cancel") *out = Request::Op::Cancel;
  else if (name == "shutdown") *out = Request::Op::Shutdown;
  else return false;
  return true;
}

bool fail(std::string* error, std::string_view message) {
  error->assign(message);
  return false;
}

}  // namespace

bool parse_request(std::string_view payload, Request* out, std::string* error) {
  util::JsonObjectScanner sc(payload);
  std::string_view key;
  util::JsonValue val;
  bool have_op = false;
  while (sc.next(&key, &val)) {
    if (key == "op") {
      if (val.kind != util::JsonValue::Kind::String ||
          !parse_op(val.raw, &out->op)) {
        return fail(error, "unknown op");
      }
      have_op = true;
    } else if (key == "graph" || key == "name") {
      if (val.kind != util::JsonValue::Kind::String) {
        return fail(error, "graph/name must be a string");
      }
      out->graph = val.raw;
    } else if (key == "algo") {
      if (val.kind != util::JsonValue::Kind::String) {
        return fail(error, "algo must be a string");
      }
      out->algo = val.raw;
    } else if (key == "format") {
      if (val.kind != util::JsonValue::Kind::String) {
        return fail(error, "format must be a string");
      }
      out->format = val.raw;
    } else if (key == "id") {
      if (val.kind != util::JsonValue::Kind::String) {
        return fail(error, "id must be a string");
      }
      out->id = val.raw;
    } else if (key == "seed") {
      const auto seed = util::json_u64(val);
      if (!seed) return fail(error, "seed must be an unsigned integer");
      out->seed = *seed;
    } else if (key == "deadline_ms") {
      const auto d = util::json_f64(val);
      if (!d || *d < 0) {
        return fail(error, "deadline_ms must be a non-negative number");
      }
      out->deadline_ms = *d;
    } else if (key == "progress") {
      const auto p = util::json_u64(val);
      if (!p) return fail(error, "progress must be an unsigned integer");
      out->progress_every = *p;
    } else if (key == "delay_ms") {
      const auto d = util::json_f64(val);
      if (!d || *d < 0) {
        return fail(error, "delay_ms must be a non-negative number");
      }
      out->delay_ms = *d;
    } else {
      // Unknown keys are rejected, not ignored: a typoed "sedd" silently
      // solving with the default seed is exactly the garbage-in/garbage-out
      // class this surface exists to kill.
      return fail(error, "unknown request key");
    }
  }
  if (!sc.ok()) return fail(error, "malformed JSON request");
  if (!have_op) return fail(error, "request missing op");
  // String fields may contain escapes; registry names are matched byte-wise
  // against the raw span, so reject escapes outright (names are plain).
  if (out->graph.find('\\') != std::string_view::npos) {
    return fail(error, "graph names must not contain escapes");
  }
  if (out->id.find('\\') != std::string_view::npos) {
    return fail(error, "ids must not contain escapes");
  }
  return true;
}

}  // namespace hmis::net
