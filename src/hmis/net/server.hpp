// `hmis serve` (DESIGN.md §9): a long-lived solve server on the Engine.
//
// Split in two so the request plane is testable without sockets:
//
//   ServeCore  — the full request handler: graph registry, result cache,
//                admission control, engine submission, response building.
//                Speaks frames-in/frames-out through tiny interfaces; a
//                test or bench drives it directly and can assert the
//                cache-hit path allocates nothing.
//   Server     — the TCP shell: accept loop (self-pipe wakeable), one
//                thread per connection, connection cap, graceful drain.
//
// Admission control is layered: a server-side ticket gate (bounded by
// max_inflight, waited on with the request's deadline) sits in FRONT of the
// engine's own max_inflight backpressure, so a request that cannot start in
// time gets a clean DEADLINE_EXCEEDED instead of blocking a connection
// thread indefinitely; the engine's gate remains as backstop.
//
// Determinism across the wire: a solve response payload is a pure function
// of (graph digest, algorithm, seed) — see protocol.hpp — which is what
// makes the result cache sound and lets tests require byte-identical
// responses vs a blocking core::find_mis at any thread count.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "hmis/engine/engine.hpp"
#include "hmis/hypergraph/data_plane_stats.hpp"
#include "hmis/net/protocol.hpp"
#include "hmis/net/registry.hpp"
#include <map>

#include "hmis/net/result_cache.hpp"
#include "hmis/net/socket.hpp"
#include "hmis/util/cancel.hpp"
#include "hmis/util/sync.hpp"
#include "hmis/util/thread_annotations.hpp"

namespace hmis::net {

struct ServeOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back with Server::port()
  /// Engine pool lanes (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Solve admission tickets AND the engine's backstop gate.  0 = unbounded.
  std::size_t max_inflight = 16;
  /// Concurrent connections; excess accepts get RESOURCE_EXHAUSTED + close.
  std::size_t max_connections = 64;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Applied to solves that do not carry their own deadline.  0 = none.
  double default_deadline_ms = 0.0;
  /// Result-cache capacity in entries (0 disables caching).
  std::size_t cache_entries = 1024;
  /// Honor the test-only "delay_ms" request field (sleeps while HOLDING the
  /// admission ticket — how tests congest the gate deterministically).
  /// Never enabled by the CLI.
  bool enable_test_ops = false;
};

/// Downstream half of a connection: where response/progress frames go.
/// frame() returns false once the peer is unreachable; implementations must
/// tolerate calls from engine worker threads (progress streaming).
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual bool frame(std::string_view payload) = 0;
};

/// Upstream half: pulls the raw graph-bytes frame that follows a `load`
/// request.  False on EOF/error/oversize.
class FrameSource {
 public:
  virtual ~FrameSource() = default;
  virtual bool next_frame(std::string* out) = 0;
};

struct ServeStats {
  std::uint64_t requests = 0;
  std::uint64_t solves = 0;       ///< engine submissions (cache misses)
  std::uint64_t rejected = 0;     ///< error responses of any kind
  std::uint64_t cancelled = 0;    ///< solves ended by cancel/disconnect
  std::size_t admission_inflight = 0;  ///< tickets currently held
  ResultCache::Stats cache;
  engine::EngineStats engine;
  DataPlaneStats data_plane;      ///< residual data-plane maintenance
  std::size_t graphs = 0;
};

class ServeCore {
 public:
  explicit ServeCore(const ServeOptions& opt);

  enum class Outcome {
    Continue,  ///< response sent, keep the connection
    Close,     ///< peer unreachable / frame write failed
    Shutdown   ///< shutdown op accepted — stop the whole server
  };

  /// Handle one request payload end to end (including the trailing graph
  /// frame of a `load`, pulled from `source`).  Never throws: every failure
  /// becomes an {"ok":false,...} frame.  `source` may be null when the
  /// caller cannot supply follow-up frames (load then fails cleanly).
  /// `disconnect` (optional) is the connection's peer-gone token: a solve
  /// in flight when it trips unwinds with a CANCELLED response and releases
  /// its admission + engine slots.
  Outcome handle(std::string_view payload, FrameSource* source,
                 FrameSink* sink,
                 const util::CancelToken* disconnect = nullptr);

  /// After this, solve/load requests get SHUTTING_DOWN; ping/stats/list
  /// still answer (drain visibility).
  void begin_shutdown() noexcept { shutting_down_.store(true); }
  [[nodiscard]] bool shutting_down() const noexcept {
    return shutting_down_.load();
  }

  [[nodiscard]] GraphRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] engine::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] ServeStats stats() const;
  [[nodiscard]] const ServeOptions& options() const noexcept { return opt_; }

 private:
  /// Counted tickets in front of the engine; acquire() gives up at the
  /// caller's deadline.
  class AdmissionGate {
   public:
    explicit AdmissionGate(std::size_t capacity) : capacity_(capacity) {}
    /// remaining_ms < 0 waits forever.  False = deadline expired un-admitted.
    [[nodiscard]] bool acquire(double remaining_ms);
    void release();
    /// Tickets currently held (chaos-harness reconciliation: must read 0
    /// once every connection drained).
    [[nodiscard]] std::size_t inflight() const;

   private:
    const std::size_t capacity_;
    mutable util::Mutex mutex_;
    util::CondVar freed_;
    std::size_t inflight_ HMIS_GUARDED_BY(mutex_) = 0;
  };

  Outcome respond_error(FrameSink* sink, ErrorCode code,
                        std::string_view message);
  Outcome handle_solve(const Request& req, FrameSink* sink,
                       const util::CancelToken* disconnect);
  Outcome handle_load(const Request& req, FrameSource* source,
                      FrameSink* sink);
  Outcome handle_cancel(const Request& req, FrameSink* sink);

  const ServeOptions opt_;
  engine::Engine engine_;
  GraphRegistry registry_;
  ResultCache cache_;
  AdmissionGate gate_;
  std::atomic<bool> shutting_down_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> solves_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> cancelled_{0};

  /// In-flight solves that carried an "id", addressable by the `cancel`
  /// op.  Values point at tokens on handle_solve stacks; entries are
  /// erased (under this mutex) before those frames unwind, and
  /// handle_cancel only dereferences while holding it — so no dangling.
  /// std::map with transparent compare: the registration lookup takes the
  /// request's string_view without materializing a key (cache-hit solves
  /// never reach this map at all, preserving the zero-alloc hit path).
  util::Mutex ids_mutex_;
  std::map<std::string, util::CancelToken*, std::less<>> inflight_ids_
      HMIS_GUARDED_BY(ids_mutex_);
};

/// The TCP shell.  Lifecycle: construct (binds), start() (spawns the accept
/// thread), then stop() — or let a connection's `shutdown` op trigger
/// request_stop() and call stop() to join.  stop() is a graceful drain:
/// half-closes every connection's read side (in-flight requests finish and
/// their responses are delivered), joins all threads, drains the engine.
class Server {
 public:
  explicit Server(const ServeOptions& opt);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void start();
  [[nodiscard]] std::uint16_t port() const noexcept { return listener_.port(); }
  [[nodiscard]] ServeCore& core() noexcept { return core_; }

  /// Begin shutdown without blocking: flips the stop flag, marks the core
  /// shutting-down, wakes the acceptor.  Safe from connection threads and
  /// the CLI's signal watcher.
  void request_stop() noexcept;
  /// request_stop() + join everything.  Idempotent; safe after a
  /// connection-initiated stop.
  void stop();
  /// Block until a request_stop() from elsewhere (signal, shutdown op).
  void wait_until_stopped();

 private:
  struct Conn {
    Socket sock;
    std::thread worker;
    std::atomic<bool> done{false};
  };

  /// Peer-disconnect detection: one poll thread watching every
  /// connection's fd for POLLRDHUP while its worker is busy inside a solve
  /// (a worker blocked in the engine is not reading the socket, so a
  /// vanished client would otherwise hold its admission slot until the
  /// solve finished).  On hangup the connection's token is cancelled; the
  /// in-flight session unwinds and frees its slots.  disable() stops
  /// cancellation permanently — the graceful drain half-closes read sides
  /// locally, which poll also reports as RDHUP, and drain must let
  /// in-flight requests finish.
  class DisconnectWatcher {
   public:
    DisconnectWatcher();
    ~DisconnectWatcher();

    void watch(int fd, util::CancelToken* token);
    void unwatch(int fd);
    /// Idempotent: stop cancelling and join the poll thread.
    void disable();

   private:
    void run();

    util::Mutex mutex_;
    std::vector<std::pair<int, util::CancelToken*>> watched_
        HMIS_GUARDED_BY(mutex_);
    std::atomic<bool> stop_{false};
    int wake_read_ = -1;
    int wake_write_ = -1;
    std::thread thread_;
  };

  void accept_loop();
  void serve_connection(Conn* conn);
  void sweep_finished_locked() HMIS_REQUIRES(conns_mutex_);

  DisconnectWatcher watcher_;
  ServeCore core_;
  Listener listener_;
  std::thread acceptor_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> active_connections_{0};

  util::Mutex conns_mutex_;
  std::vector<std::unique_ptr<Conn>> conns_ HMIS_GUARDED_BY(conns_mutex_);

  util::Mutex state_mutex_;
  util::CondVar stopped_cv_;
  bool stop_requested_ HMIS_GUARDED_BY(state_mutex_) = false;

  /// Serializes joiners; distinct from state_mutex_ so a connection thread
  /// calling request_stop() never blocks behind a stop() that is joining.
  util::Mutex join_mutex_;
};

}  // namespace hmis::net
