// The hmis wire protocol (DESIGN.md §9): length-framed JSON over TCP.
//
//   frame    := u32 little-endian payload length, then payload bytes
//   request  := one flat JSON object, e.g. {"op":"solve","graph":"g",
//               "algo":"sbl","seed":7}
//   response := {"ok":true,...} | {"ok":false,"code":"...","error":"..."}
//
// A `load` request is immediately followed by ONE raw (non-JSON) frame
// carrying the graph bytes (text "hg1" or binary "HGB1" format — sniffed
// unless the request pins "format").  A `solve` with "progress":N streams
// {"ok":true,"event":"progress","rounds":R} frames before the final
// response.
//
// Determinism across the wire: the solve response payload is built by
// solve_payload() from the MisRun alone — no timestamps, tags, session
// ids, or thread counts — so the same (graph digest, algorithm, seed) is
// byte-identical whether solved blocking, through the engine, or served
// over TCP, and the response itself is the unit the result cache stores.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "hmis/core/mis.hpp"
#include "hmis/net/socket.hpp"

namespace hmis::net {

/// Hard ceiling a reader enforces BEFORE trusting a frame header: a
/// crafted u32 length must bound allocation, not drive it.
inline constexpr std::size_t kDefaultMaxFrameBytes = 64u << 20;

enum class FrameStatus {
  Ok,
  Eof,       ///< clean close at a frame boundary
  TooLarge,  ///< declared length exceeds the cap (header consumed, payload
             ///< not — the connection is unusable afterwards)
  Error      ///< truncated frame or socket error
};

/// Read one frame into *out (capacity is reused across calls — the hot
/// request path does not allocate once the buffer has grown).
[[nodiscard]] FrameStatus read_frame(Socket& s, std::string* out,
                                     std::size_t max_bytes);
/// Write one frame.  False on socket error.
[[nodiscard]] bool write_frame(Socket& s, std::string_view payload);

// ---- Response payload builders ---------------------------------------------

enum class ErrorCode {
  BadRequest,
  NotFound,
  DeadlineExceeded,
  ResourceExhausted,
  FrameTooLarge,
  ShuttingDown,
  Cancelled,
  Internal,
};
[[nodiscard]] std::string_view error_code_name(ErrorCode code) noexcept;
[[nodiscard]] std::string error_payload(ErrorCode code,
                                        std::string_view message);

/// Canonical deterministic JSON for one solved run: a pure function of the
/// MisRun (includes the full independent set; excludes wall-clock and any
/// submission context).
[[nodiscard]] std::string result_json(const core::MisRun& run);

/// The full solve response payload: {"ok":true,"result":<result_json>}.
[[nodiscard]] std::string solve_payload(const core::MisRun& run);

/// One streaming progress frame: {"ok":true,"event":"progress","rounds":R}.
[[nodiscard]] std::string progress_payload(std::size_t rounds);

// ---- Request parsing -------------------------------------------------------

/// A parsed request.  String fields are views into the request buffer,
/// which must stay alive while the request is handled (the parse itself
/// allocates nothing — part of the zero-alloc cache-hit contract).
struct Request {
  enum class Op { Ping, Load, Unload, List, Solve, Stats, Cancel, Shutdown };
  Op op = Op::Ping;
  std::string_view graph;       ///< solve/unload: registry name; load: name
  std::string_view algo;        ///< solve; empty = "auto"
  std::string_view format;      ///< load: "hg1" | "hgb1"; empty = sniff
  std::string_view id;          ///< solve: optional handle; cancel: target
  std::uint64_t seed = 1;       ///< solve
  double deadline_ms = -1.0;    ///< solve; < 0 = server default
  std::uint64_t progress_every = 0;  ///< solve; 0 = no progress frames
  double delay_ms = 0.0;        ///< solve; test-only (enable_test_ops)
};

/// Strict parse: unknown keys, wrong value types, and malformed JSON all
/// fail (hostile input is rejected, not coerced).  On failure fills
/// *error with a one-line message and returns false.
[[nodiscard]] bool parse_request(std::string_view payload, Request* out,
                                 std::string* error);

}  // namespace hmis::net
