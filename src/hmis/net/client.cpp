#include "hmis/net/client.hpp"

#include "hmis/util/json.hpp"

namespace hmis::net {

bool Client::connect(const std::string& host, std::uint16_t port) {
  sock_ = connect_to(host, port);
  return sock_.valid();
}

Client::Reply Client::collect() {
  Reply reply;
  std::string frame;
  for (;;) {
    if (read_frame(sock_, &frame, max_frame_bytes_) != FrameStatus::Ok) {
      return reply;  // transport_ok stays false
    }
    const auto event = util::json_find(frame, "event");
    if (event && event->kind == util::JsonValue::Kind::String &&
        event->raw == "progress") {
      reply.progress.push_back(frame);
      continue;
    }
    reply.payload = std::move(frame);
    reply.transport_ok = true;
    return reply;
  }
}

Client::Reply Client::request(std::string_view json) {
  if (!write_frame(sock_, json)) return Reply{};
  return collect();
}

Client::Reply Client::load(std::string_view name, std::string_view graph_bytes,
                           std::string_view format) {
  std::string req = "{\"op\":\"load\",\"name\":\"";
  req += util::json_escape(name);
  req += '"';
  if (!format.empty()) {
    req += ",\"format\":\"";
    req += util::json_escape(format);
    req += '"';
  }
  req += '}';
  if (!write_frame(sock_, req)) return Reply{};
  if (!write_frame(sock_, graph_bytes)) return Reply{};
  return collect();
}

bool Client::send_frame(std::string_view payload) {
  return write_frame(sock_, payload);
}

FrameStatus Client::read_one(std::string* out) {
  return read_frame(sock_, out, max_frame_bytes_);
}

}  // namespace hmis::net
