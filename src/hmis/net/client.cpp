#include "hmis/net/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "hmis/util/json.hpp"

namespace hmis::net {

bool Client::connect(const std::string& host, std::uint16_t port) {
  host_ = host;
  port_ = port;
  sock_ = connect_to(host, port);
  return sock_.valid();
}

Client::Reply Client::collect() {
  Reply reply;
  std::string frame;
  for (;;) {
    if (read_frame(sock_, &frame, max_frame_bytes_) != FrameStatus::Ok) {
      return reply;  // transport_ok stays false
    }
    const auto event = util::json_find(frame, "event");
    if (event && event->kind == util::JsonValue::Kind::String &&
        event->raw == "progress") {
      reply.progress.push_back(frame);
      continue;
    }
    reply.payload = std::move(frame);
    reply.transport_ok = true;
    return reply;
  }
}

template <typename SendFn>
Client::Reply Client::with_retry(const SendFn& send) {
  const int attempts = std::max(1, retry_.max_attempts);
  double backoff_ms = retry_.initial_backoff_ms;
  Reply reply;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      if (backoff_ms > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            std::min(backoff_ms, retry_.max_backoff_ms)));
      }
      backoff_ms =
          std::min(backoff_ms * retry_.multiplier, retry_.max_backoff_ms);
      if (!host_.empty()) sock_ = connect_to(host_, port_);
    }
    reply = Reply{};  // drop any partial progress from a dead attempt
    if (sock_.valid() && send()) {
      reply = collect();
      reply.attempts = attempt;
      if (reply.transport_ok) return reply;
    }
    // The attempt failed mid-stream, so the connection's framing state is
    // unknown — a stale response (or half a response) may still be queued.
    // Reusing it would hand the NEXT request the wrong reply, or block it
    // forever on a garbage length header.  Always close; the next attempt
    // (or the caller) starts from a fresh dial.
    sock_.close();
  }
  reply.attempts = attempts;
  return reply;
}

Client::Reply Client::request(std::string_view json) {
  return with_retry([&] { return write_frame(sock_, json); });
}

Client::Reply Client::load(std::string_view name, std::string_view graph_bytes,
                           std::string_view format) {
  std::string req = "{\"op\":\"load\",\"name\":\"";
  req += util::json_escape(name);
  req += '"';
  if (!format.empty()) {
    req += ",\"format\":\"";
    req += util::json_escape(format);
    req += '"';
  }
  req += '}';
  return with_retry([&] {
    return write_frame(sock_, req) && write_frame(sock_, graph_bytes);
  });
}

bool Client::send_frame(std::string_view payload) {
  return write_frame(sock_, payload);
}

FrameStatus Client::read_one(std::string* out) {
  return read_frame(sock_, out, max_frame_bytes_);
}

}  // namespace hmis::net
