// Result cache (DESIGN.md §9): serialized solve responses keyed by the
// full determinism domain of a solve — (graph content digest, requested
// algorithm, seed).  Because a solve response is a pure function of that
// key (the library-wide determinism contract), the cached value never goes
// stale: repeated hot-corpus queries are an O(1) lookup plus a write of
// the shared bytes.
//
// The hit path allocates nothing: POD key, unordered_map::find, an LRU
// splice (pointer surgery), and a shared_ptr copy.  Bounded by max_entries
// with least-recently-used eviction.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "hmis/util/rng.hpp"
#include "hmis/util/sync.hpp"
#include "hmis/util/thread_annotations.hpp"

namespace hmis::net {

class ResultCache {
 public:
  struct Key {
    std::uint64_t digest = 0;
    std::uint8_t algorithm = 0;  ///< the REQUESTED algo (Auto caches as Auto
                                 ///< — its resolution is deterministic per
                                 ///< graph, so the entry is still pure)
    std::uint64_t seed = 0;
    bool operator==(const Key&) const = default;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
  };

  /// max_entries 0 disables the cache (find always misses, insert drops).
  explicit ResultCache(std::size_t max_entries) : max_entries_(max_entries) {}

  /// nullptr on miss; a hit refreshes the entry's LRU position.
  [[nodiscard]] std::shared_ptr<const std::string> find(const Key& key);

  void insert(const Key& key, std::shared_ptr<const std::string> payload);

  [[nodiscard]] Stats stats() const;

 private:
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return static_cast<std::size_t>(util::mix64(
          k.digest ^ util::mix64(k.seed ^ (std::uint64_t{k.algorithm} << 56))));
    }
  };
  struct Node {
    Key key;
    std::shared_ptr<const std::string> payload;
  };

  const std::size_t max_entries_;
  mutable util::Mutex mutex_;
  /// Front = most recently used.
  std::list<Node> lru_ HMIS_GUARDED_BY(mutex_);
  std::unordered_map<Key, std::list<Node>::iterator, KeyHash> index_
      HMIS_GUARDED_BY(mutex_);
  std::uint64_t hits_ HMIS_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ HMIS_GUARDED_BY(mutex_) = 0;
  std::uint64_t insertions_ HMIS_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ HMIS_GUARDED_BY(mutex_) = 0;
};

}  // namespace hmis::net
