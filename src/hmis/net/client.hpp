// Minimal hmis wire-protocol client (DESIGN.md §9): enough for the test
// suite, the CI smoke, and the `hmis request` verb — connect, send one
// JSON request, collect streamed progress frames, return the final
// response.  Not a public SDK; the protocol doc is the contract.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hmis/net/protocol.hpp"
#include "hmis/net/socket.hpp"

namespace hmis::net {

/// Transport-failure retry (ISSUE 10).  Retries fire ONLY when no final
/// response arrived (connect refused, send failed, connection died
/// mid-reply) — an {"ok":false} response is an answer, not a transport
/// failure, and is never retried.  This is sound because the wire ops are
/// idempotent: solve responses are pure functions of (digest, algo, seed)
/// and registry loads are content-addressed puts.  Backoff is capped
/// exponential and fully deterministic (no jitter) so chaos schedules
/// replay byte-for-byte.
struct RetryPolicy {
  int max_attempts = 1;  ///< total tries; 1 = no retry (the default)
  double initial_backoff_ms = 10.0;
  double max_backoff_ms = 250.0;
  double multiplier = 2.0;
};

class Client {
 public:
  Client() = default;

  [[nodiscard]] bool connect(const std::string& host, std::uint16_t port);
  [[nodiscard]] bool connected() const noexcept { return sock_.valid(); }
  void close() noexcept { sock_.close(); }

  /// Applies to subsequent request()/load() calls; connect() remembers
  /// host/port so a retry can re-dial a dead connection.
  void set_retry(const RetryPolicy& policy) noexcept { retry_ = policy; }
  [[nodiscard]] const RetryPolicy& retry() const noexcept { return retry_; }

  struct Reply {
    bool transport_ok = false;  ///< final frame arrived (payload is valid)
    std::string payload;        ///< the final (non-progress) response
    std::vector<std::string> progress;  ///< progress frames, arrival order
    int attempts = 1;           ///< tries consumed (retry observability)
  };

  /// Send one JSON request payload and read frames until the final
  /// response.  Progress frames ({"event":"progress",...}) are collected,
  /// never returned as the payload.  Retries per set_retry().
  [[nodiscard]] Reply request(std::string_view json);

  /// The two-frame load sequence: the request, then the raw graph bytes.
  /// `format` is "hg1", "hgb1", or empty (server sniffs).  A retry resends
  /// BOTH frames (the registry put is idempotent, so replays converge).
  [[nodiscard]] Reply load(std::string_view name, std::string_view graph_bytes,
                           std::string_view format = {});

  /// Escape hatch for protocol tests: one raw frame, no response handling.
  [[nodiscard]] bool send_frame(std::string_view payload);
  /// Read a single frame without classification.
  [[nodiscard]] FrameStatus read_one(std::string* out);

 private:
  Reply collect();
  /// One attempt loop around `send` (which writes the request frames).
  /// Reconnects between attempts; sleeps the deterministic backoff.
  template <typename SendFn>
  Reply with_retry(const SendFn& send);

  Socket sock_;
  std::size_t max_frame_bytes_ = kDefaultMaxFrameBytes;
  RetryPolicy retry_;
  std::string host_;       ///< remembered for reconnect-on-retry
  std::uint16_t port_ = 0;
};

}  // namespace hmis::net
