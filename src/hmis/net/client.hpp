// Minimal hmis wire-protocol client (DESIGN.md §9): enough for the test
// suite, the CI smoke, and the `hmis request` verb — connect, send one
// JSON request, collect streamed progress frames, return the final
// response.  Not a public SDK; the protocol doc is the contract.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hmis/net/protocol.hpp"
#include "hmis/net/socket.hpp"

namespace hmis::net {

class Client {
 public:
  Client() = default;

  [[nodiscard]] bool connect(const std::string& host, std::uint16_t port);
  [[nodiscard]] bool connected() const noexcept { return sock_.valid(); }
  void close() noexcept { sock_.close(); }

  struct Reply {
    bool transport_ok = false;  ///< final frame arrived (payload is valid)
    std::string payload;        ///< the final (non-progress) response
    std::vector<std::string> progress;  ///< progress frames, arrival order
  };

  /// Send one JSON request payload and read frames until the final
  /// response.  Progress frames ({"event":"progress",...}) are collected,
  /// never returned as the payload.
  [[nodiscard]] Reply request(std::string_view json);

  /// The two-frame load sequence: the request, then the raw graph bytes.
  /// `format` is "hg1", "hgb1", or empty (server sniffs).
  [[nodiscard]] Reply load(std::string_view name, std::string_view graph_bytes,
                           std::string_view format = {});

  /// Escape hatch for protocol tests: one raw frame, no response handling.
  [[nodiscard]] bool send_frame(std::string_view payload);
  /// Read a single frame without classification.
  [[nodiscard]] FrameStatus read_one(std::string* out);

 private:
  Reply collect();

  Socket sock_;
  std::size_t max_frame_bytes_ = kDefaultMaxFrameBytes;
};

}  // namespace hmis::net
