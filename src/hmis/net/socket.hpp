// Minimal RAII POSIX TCP sockets for the hmis wire layer (DESIGN.md §9).
//
// Deliberately tiny and dependency-free: blocking stream sockets, an
// acceptor with a self-pipe wakeup (so shutdown never races a blocking
// accept), and exact-read/write-all helpers.  IPv4 only — the server binds
// loopback by default; fronting real traffic across machines is a
// reverse-proxy's job, not this file's.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace hmis::net {

/// One connected stream socket.  Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Write all `len` bytes; false on any error or peer reset.
  bool send_all(const void* data, std::size_t len) noexcept;

  enum class RecvStatus {
    Ok,    ///< exactly `len` bytes read
    Eof,   ///< clean close before the FIRST byte (frame boundary)
    Error  ///< error, or close mid-read (truncated frame)
  };
  /// Read exactly `len` bytes.
  RecvStatus recv_exact(void* data, std::size_t len) noexcept;

  /// Half-close the read side: a peer blocked sending sees nothing, but our
  /// next read returns EOF — how the server tells idle connections to wind
  /// down during a drain.
  void shutdown_read() noexcept;

  /// Full shutdown: the peer sees EOF immediately.  Unlike close(), the fd
  /// stays valid, so this is safe from a thread that does not own the
  /// socket's lifetime (a racing close() would free the fd number for
  /// reuse; shutdown() cannot).
  void shutdown_both() noexcept;

  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Listening socket plus a self-pipe: accept() blocks in poll() on both, so
/// wake() (any thread, async-signal-safe) interrupts it without closing the
/// listener under a racing accept.
class Listener {
 public:
  /// Binds and listens.  `port` 0 picks an ephemeral port (read it back
  /// with port()).  Throws util::CheckError on failure (address in use,
  /// bad host, ...).
  Listener(const std::string& host, std::uint16_t port, int backlog);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Block until a connection arrives or wake() is called; an invalid
  /// Socket means "woken or transient failure" — the caller re-checks its
  /// stop flag and loops.
  [[nodiscard]] Socket accept();

  /// Interrupt a blocking accept().  Async-signal-safe (one write()).
  void wake() noexcept;

 private:
  int fd_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::uint16_t port_ = 0;
};

/// Client-side connect.  Returns an invalid Socket on failure.
[[nodiscard]] Socket connect_to(const std::string& host, std::uint16_t port);

}  // namespace hmis::net
