#include "hmis/net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "hmis/util/check.hpp"
#include "hmis/util/fault.hpp"

namespace hmis::net {

namespace {

// A peer that resets mid-write raises SIGPIPE by default, which would kill
// the whole server over one broken connection; per-send suppression keeps
// the failure local (send_all just returns false).
constexpr int kSendFlags = MSG_NOSIGNAL;

bool fill_addr(const std::string& host, std::uint16_t port,
               sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  return ::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool Socket::send_all(const void* data, std::size_t len) noexcept {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    // Injection mirrors the three real failure shapes of send(): a peer
    // reset (hard error), a signal interruption (retry), and a partial
    // transfer (the kernel accepted fewer bytes than offered — emulated by
    // offering a single byte, the worst legal case for the loop).
    if (HMIS_FAULT_POINT("net.write.reset")) {
      errno = ECONNRESET;
      return false;
    }
    if (HMIS_FAULT_POINT("net.write.eintr")) continue;
    const std::size_t chunk =
        len > 1 && HMIS_FAULT_POINT("net.write.short") ? 1 : len;
    const ssize_t sent = ::send(fd_, p, chunk, kSendFlags);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += sent;
    len -= static_cast<std::size_t>(sent);
  }
  return true;
}

Socket::RecvStatus Socket::recv_exact(void* data, std::size_t len) noexcept {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < len) {
    if (HMIS_FAULT_POINT("net.read.reset")) {
      errno = ECONNRESET;
      return RecvStatus::Error;
    }
    if (HMIS_FAULT_POINT("net.read.eintr")) continue;
    const std::size_t want =
        len - got > 1 && HMIS_FAULT_POINT("net.read.short") ? 1 : len - got;
    const ssize_t r = ::recv(fd_, p + got, want, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return RecvStatus::Error;
    }
    if (r == 0) {
      return got == 0 ? RecvStatus::Eof : RecvStatus::Error;
    }
    got += static_cast<std::size_t>(r);
  }
  return RecvStatus::Ok;
}

void Socket::shutdown_read() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(const std::string& host, std::uint16_t port, int backlog) {
  sockaddr_in addr;
  HMIS_CHECK(fill_addr(host, port, &addr), "bad listen address: " + host);

  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  HMIS_CHECK(fd_ >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd_, backlog) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    HMIS_CHECK(false, std::string("cannot listen on ") + host + ": " +
                          std::strerror(err));
  }
  // Resolve the actual port (meaningful when asked for 0 = ephemeral).
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  HMIS_CHECK(::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
                 0,
             "getsockname() failed");
  port_ = ntohs(bound.sin_port);

  int pipe_fds[2];
  HMIS_CHECK(::pipe2(pipe_fds, O_CLOEXEC) == 0, "pipe2() failed");
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
}

Socket Listener::accept() {
  pollfd fds[2];
  fds[0] = {fd_, POLLIN, 0};
  fds[1] = {wake_read_, POLLIN, 0};
  for (;;) {
    const int r = ::poll(fds, 2, -1);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Socket();
    }
    if ((fds[1].revents & POLLIN) != 0) {
      char drained[16];
      (void)!::read(wake_read_, drained, sizeof(drained));
      return Socket();  // woken — caller re-checks its stop flag
    }
    if ((fds[0].revents & POLLIN) != 0) {
      // Injected transient accept failure (the ECONNABORTED shape): the
      // pending connection stays queued and the next poll round takes it.
      if (HMIS_FAULT_POINT("net.accept")) continue;
      const int conn = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
      if (conn < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        return Socket();
      }
      return Socket(conn);
    }
  }
}

void Listener::wake() noexcept {
  const char byte = 1;
  (void)!::write(wake_write_, &byte, 1);
}

Socket connect_to(const std::string& host, std::uint16_t port) {
  sockaddr_in addr;
  if (!fill_addr(host, port, &addr)) return Socket();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Socket();
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    // EINTR does not abort a connect: the three-way handshake proceeds in
    // the background and restarting connect() would return EALREADY.  The
    // POSIX-blessed recovery is to wait for writability and read the final
    // status out of SO_ERROR.
    if (errno != EINTR) {
      ::close(fd);
      return Socket();
    }
    pollfd pfd{fd, POLLOUT, 0};
    for (;;) {
      const int r = ::poll(&pfd, 1, -1);
      if (r > 0) break;
      if (r < 0 && errno == EINTR) continue;
      ::close(fd);
      return Socket();
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 ||
        err != 0) {
      ::close(fd);
      return Socket();
    }
  }
  return Socket(fd);
}

}  // namespace hmis::net
