// Named, refcounted graph registry (DESIGN.md §9).
//
// The shared store behind `hmis serve` (preloads + `load` requests) and
// `hmis batch` (one instance per distinct manifest path).  Entries hold
// shared_ptrs: `unload` unbinds the name immediately while every in-flight
// solve keeps its own reference alive — the shared_ptr IS the refcount.
// Each entry carries the graph's content digest, the cache-key half that
// makes result caching safe across load/unload/reload cycles: the digest
// follows the bytes, not the name.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hmis/hypergraph/hypergraph.hpp"
#include "hmis/util/sync.hpp"
#include "hmis/util/thread_annotations.hpp"

namespace hmis::net {

/// Platform-stable 64-bit content digest of (n, m, every edge's vertex
/// list, in edge order).  Two hypergraphs with equal CSR content collide
/// only as a generic 64-bit hash would.
[[nodiscard]] std::uint64_t hypergraph_digest(const Hypergraph& h);

/// Digest rendered as fixed-width lowercase hex (wire representation —
/// u64 does not survive JSON number parsers).
[[nodiscard]] std::string digest_hex(std::uint64_t digest);

struct GraphInfo {
  std::string name;
  std::uint64_t digest = 0;
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;
};

class GraphRegistry {
 public:
  struct Entry {
    std::shared_ptr<const Hypergraph> graph;
    std::uint64_t digest = 0;
  };

  /// Register (or replace) `name`.  Replacing never invalidates running
  /// solves — they hold their own references.
  Entry put(std::string name, Hypergraph graph);
  Entry put_shared(std::string name, std::shared_ptr<const Hypergraph> graph);

  /// Load from disk and register.  Sniffs the binary magic ("HGB1") vs the
  /// text format.  Throws util::CheckError on unreadable/corrupt files.
  Entry load_file(const std::string& name, const std::string& path);

  /// Lookup by name; allocation-free on the hit path (heterogeneous find).
  [[nodiscard]] std::optional<Entry> find(std::string_view name) const;

  /// Unbind the name.  False if it was not registered.
  bool unload(std::string_view name);

  /// Snapshot, name-ascending (deterministic listing).
  [[nodiscard]] std::vector<GraphInfo> list() const;

  [[nodiscard]] std::size_t size() const;

 private:
  mutable util::Mutex mutex_;
  std::map<std::string, Entry, std::less<>> graphs_ HMIS_GUARDED_BY(mutex_);
};

}  // namespace hmis::net
