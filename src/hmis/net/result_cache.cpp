#include "hmis/net/result_cache.hpp"

#include <utility>

namespace hmis::net {

std::shared_ptr<const std::string> ResultCache::find(const Key& key) {
  if (max_entries_ == 0) return nullptr;
  util::MutexLock lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh, no allocation
  return it->second->payload;
}

void ResultCache::insert(const Key& key,
                         std::shared_ptr<const std::string> payload) {
  if (max_entries_ == 0 || payload == nullptr) return;
  util::MutexLock lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Determinism makes a second value for the same key byte-identical by
    // contract; keep the existing bytes, refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Node{key, std::move(payload)});
  index_.emplace(key, lru_.begin());
  ++insertions_;
  while (index_.size() > max_entries_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

ResultCache::Stats ResultCache::stats() const {
  util::MutexLock lock(mutex_);
  return Stats{hits_, misses_, insertions_, evictions_, index_.size()};
}

}  // namespace hmis::net
