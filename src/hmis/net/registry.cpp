#include "hmis/net/registry.hpp"

#include <cstdio>
#include <fstream>
#include <utility>

#include <new>

#include "hmis/hypergraph/io.hpp"
#include "hmis/util/check.hpp"
#include "hmis/util/fault.hpp"
#include "hmis/util/rng.hpp"

namespace hmis::net {

std::uint64_t hypergraph_digest(const Hypergraph& h) {
  // Chained avalanche over the logical content.  Edge sizes are folded in
  // alongside the vertices so (…,{a,b},{c},…) and (…,{a},{b,c},…) differ.
  std::uint64_t d = util::mix64(0x48474431ull ^ h.num_vertices());  // "HGD1"
  d = util::mix64(d ^ h.num_edges());
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const auto verts = h.edge(e);
    d = util::mix64(d ^ verts.size());
    for (const VertexId v : verts) d = util::mix64(d ^ v);
  }
  return d;
}

std::string digest_hex(std::uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return std::string(buf, 16);
}

GraphRegistry::Entry GraphRegistry::put(std::string name, Hypergraph graph) {
  return put_shared(std::move(name),
                    std::make_shared<const Hypergraph>(std::move(graph)));
}

GraphRegistry::Entry GraphRegistry::put_shared(
    std::string name, std::shared_ptr<const Hypergraph> graph) {
  HMIS_CHECK(graph != nullptr, "registering a null hypergraph");
  // Injected exhaustion before the map insert: the registry must stay
  // consistent (no partial entry) and the server must answer the load with
  // a clean error, not die.  put() is idempotent, so a client retry after
  // this failure converges to the same entry.
  if (HMIS_FAULT_POINT("alloc.registry")) throw std::bad_alloc();
  const std::uint64_t digest = hypergraph_digest(*graph);
  Entry entry{std::move(graph), digest};
  util::MutexLock lock(mutex_);
  graphs_[std::move(name)] = entry;
  return entry;
}

GraphRegistry::Entry GraphRegistry::load_file(const std::string& name,
                                              const std::string& path) {
  // load_hypergraph sniffs the magic: text hg1 and HGB1 stream through the
  // builder, HGB2 is mapped zero-copy — the registry entry's shared graph
  // keeps the mapping alive, and the digest below walks the mapped spans
  // without materializing anything.
  return put(name, load_hypergraph(path));
}

std::optional<GraphRegistry::Entry> GraphRegistry::find(
    std::string_view name) const {
  util::MutexLock lock(mutex_);
  const auto it = graphs_.find(name);
  if (it == graphs_.end()) return std::nullopt;
  return it->second;
}

bool GraphRegistry::unload(std::string_view name) {
  util::MutexLock lock(mutex_);
  const auto it = graphs_.find(name);
  if (it == graphs_.end()) return false;
  graphs_.erase(it);
  return true;
}

std::vector<GraphInfo> GraphRegistry::list() const {
  util::MutexLock lock(mutex_);
  std::vector<GraphInfo> out;
  out.reserve(graphs_.size());
  for (const auto& [name, entry] : graphs_) {
    out.push_back(GraphInfo{name, entry.digest, entry.graph->num_vertices(),
                            entry.graph->num_edges()});
  }
  return out;
}

std::size_t GraphRegistry::size() const {
  util::MutexLock lock(mutex_);
  return graphs_.size();
}

}  // namespace hmis::net
