// Linear-hypergraph-aware BL variant.
//
// Łuczak & Szymańska (J. Algorithms 1997) showed MIS on *linear*
// hypergraphs (|e ∩ e'| <= 1) is in RNC.  Their algorithm differs from BL,
// but the property it exploits is that fully-marked edges around a marked
// vertex collide far less often, so a much more aggressive marking
// probability keeps the Lemma-2 survival guarantee.  We realize that as BL
// with a = 4 (p = 1/(4Δ)) instead of a = 2^{d+1} — an adaptation, not a
// verbatim reimplementation (DESIGN.md substitution table).  The linearity
// of the input is validated up front.
#pragma once

#include "hmis/algo/bl.hpp"

namespace hmis::algo {

struct LinearBlOptions : BlOptions {
  LinearBlOptions() { a_factor = 4.0; }
  /// Reject non-linear inputs (pairwise edge intersections > 1).
  bool validate_linearity = true;
};

/// True iff every pair of distinct edges shares at most one vertex.
[[nodiscard]] bool is_linear(const Hypergraph& h);

[[nodiscard]] Result linear_bl(const Hypergraph& h,
                               const LinearBlOptions& opt = LinearBlOptions{});

}  // namespace hmis::algo
