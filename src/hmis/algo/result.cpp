#include "hmis/algo/result.hpp"

// result.hpp is header-only today; this TU anchors the library target and is
// the natural home for future out-of-line helpers on Result.
