// Priority-based parallel MIS for general hypergraphs — the
// random-permutation flavour of Beame & Luby's second algorithm (which they
// conjectured to be RNC; partial analysis by Shachnai & Srinivasan).
//
// Round: every live vertex draws a random priority.  A vertex joins the MIS
// iff it is the strict minimum among the live members of EVERY live edge it
// belongs to.  Safety: a live edge has >= 2 live members (singletons are
// cascaded away first), and at most one of them — its minimum — can join per
// round, so no edge ever becomes fully blue.  Progress: the globally
// minimum live vertex always joins, and in expectation a large fraction of
// "locally minimal" vertices do.
//
// This is a safe-by-construction adaptation, not a verbatim transcription
// (the original processes a single global permutation over many rounds);
// see DESIGN.md substitution table.
#pragma once

#include "hmis/algo/result.hpp"
#include "hmis/hypergraph/hypergraph.hpp"

namespace hmis::algo {

struct PermutationOptions : CommonOptions {};

[[nodiscard]] Result permutation_mis(
    const Hypergraph& h, const PermutationOptions& opt = PermutationOptions{});

}  // namespace hmis::algo
