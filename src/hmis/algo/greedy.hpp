// Sequential greedy MIS baselines.
//
// `greedy_mis` processes vertices in id order (the lexicographically-first
// MIS); `permutation_greedy_mis` processes them in a seeded random order —
// the sequential form of the Beame–Luby random-permutation algorithm.  Both
// run in O(sum of edge sizes) time and serve as correctness oracles and as
// the "time linear in the number of vertices" base-case solver mentioned in
// the paper (Algorithm 1's alternative to KUW).
#pragma once

#include "hmis/algo/result.hpp"
#include "hmis/hypergraph/hypergraph.hpp"

namespace hmis::algo {

struct GreedyOptions : CommonOptions {};

[[nodiscard]] Result greedy_mis(const Hypergraph& h,
                                const GreedyOptions& opt = GreedyOptions{});

[[nodiscard]] Result permutation_greedy_mis(
    const Hypergraph& h, const GreedyOptions& opt = GreedyOptions{});

/// Greedy over an explicit vertex order (must be a permutation of 0..n-1 or
/// a subset of vertices to consider, in order).
[[nodiscard]] Result greedy_mis_ordered(const Hypergraph& h,
                                        std::span<const VertexId> order,
                                        const GreedyOptions& opt);

}  // namespace hmis::algo
