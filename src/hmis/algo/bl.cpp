#include "hmis/algo/bl.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "hmis/engine/round_context.hpp"
#include "hmis/hypergraph/validate.hpp"
#include "hmis/par/parallel_for.hpp"
#include "hmis/par/reduce.hpp"
#include "hmis/par/task_group.hpp"
#include "hmis/util/check.hpp"
#include "hmis/util/rng.hpp"
#include "hmis/util/timer.hpp"

namespace hmis::algo {

double bl_probability(const DegreeStats& stats, double a_factor) {
  const double d = static_cast<double>(std::max<std::size_t>(stats.dimension, 1));
  const double a = (a_factor > 0.0) ? a_factor : std::exp2(d + 1.0);
  const double delta = std::max(stats.delta, 1.0);
  return std::clamp(1.0 / (a * delta), 1e-9, 0.5);
}

namespace {

/// Materialize live edges into `lists`, reusing the outer vector AND each
/// inner vector's capacity (the vector only grows; callers use the returned
/// count, not lists.size()).  This is the degree-stats input.
std::size_t live_edge_lists(const MutableHypergraph& mh,
                            std::vector<VertexList>& lists) {
  std::size_t count = 0;
  for (const EdgeId e : mh.live_edges()) {
    if (count == lists.size()) lists.emplace_back();
    const auto verts = mh.edge(e);
    lists[count].assign(verts.begin(), verts.end());
    ++count;
  }
  return count;
}

DegreeStats live_degree_stats(const MutableHypergraph& mh,
                              const DegreeStatsOptions& opt,
                              engine::RoundContext& ctx) {
  auto& lists = ctx.edge_lists();
  const std::size_t count = live_edge_lists(mh, lists);
  return compute_degree_stats(
      std::span<const VertexList>(lists.data(), count), opt);
}

}  // namespace

BlOutcome bl_run(MutableHypergraph& mh, const BlOptions& opt,
                 par::Metrics* metrics, engine::RoundContext* ctx) {
  BlOutcome out;
  const util::CounterRng rng(opt.seed);
  engine::RoundContext local_ctx;
  engine::RoundContext& rc = ctx != nullptr ? *ctx : local_ctx;
  // A caller-provided context may already carry the session token (SBL's
  // outer loop installs it); only adopt ours into a fresh context.
  if (rc.cancel == nullptr) rc.cancel = opt.cancel;

  // The residual structure runs its maintenance (shrink, delete, dedupe,
  // scans) on the same pool as the algorithm's own primitives.
  mh.set_pool(par::resolve_pool(opt.pool));

  // Initial cleanup mirrors what the main loop maintains.
  if (opt.minimalize) mh.dedupe_and_minimalize();
  mh.singleton_cascade();
  if (opt.isolated_shortcut) {
    const auto isolated = mh.isolated_live_vertices();
    if (!isolated.empty()) mh.color_blue(isolated);
  }

  // Stage-invariant quantities when recompute_probability is off.
  double static_p = opt.probability_override;
  if (static_p <= 0.0 && !opt.recompute_probability) {
    const auto stats = live_degree_stats(mh, opt.stats, rc);
    static_p = bl_probability(stats, opt.a_factor);
  }

  auto& marked = rc.marked(mh.num_original_vertices());
  auto& unmarked = rc.unmarked(mh.num_original_vertices());

  while (mh.num_live_vertices() > 0) {
    rc.poll_cancel();
    if (out.stages >= opt.max_rounds) {
      out.success = false;
      out.failure_reason = "BL exceeded max_rounds";
      return out;
    }
    StageStats stats;
    stats.stage = out.stages;
    stats.live_vertices = mh.num_live_vertices();
    stats.live_edges = mh.num_live_edges();
    stats.dimension = mh.max_live_edge_size();

    // A residual hypergraph with no live edges is unconstrained.
    if (mh.num_live_edges() == 0) {
      const auto rest = mh.live_vertices();
      mh.color_blue(rest);
      stats.added_blue = rest.size();
      stats.p = 1.0;
      if (metrics) metrics->add(rest.size(), par::map_depth(rest.size()));
      ++out.stages;
      if (opt.record_trace) out.trace.push_back(stats);
      if (opt.on_stage) opt.on_stage(mh, stats);
      break;
    }

    // Marking probability.
    double p = opt.probability_override;
    if (p <= 0.0) {
      if (opt.recompute_probability) {
        const auto dstats = live_degree_stats(mh, opt.stats, rc);
        stats.delta = dstats.delta;
        p = bl_probability(dstats, opt.a_factor);
        if (metrics) {
          // Degree statistics: one emission per (edge, subset); modeled as a
          // sort over the emission list.
          const std::uint64_t emissions =
              std::min<std::uint64_t>(opt.stats.enum_budget,
                                      mh.total_live_edge_size() << 4);
          metrics->add(par::sort_work(emissions), par::sort_depth(emissions));
        }
      } else {
        p = static_p;
      }
    }
    stats.p = p;

    const std::size_t n = mh.num_original_vertices();
    // The live-edge compaction is independent of the live-vertex compaction
    // and of the marking pass (all read-only on mh, or writing disjoint
    // scratch), so it runs as a nested task overlapping both — each side
    // still runs its own deterministic parallel kernels on the same pool.
    std::vector<EdgeId> edges;
    par::TaskGroup edge_scan(*par::resolve_pool(opt.pool));
    edge_scan.run([&] { edges = mh.live_edges(); });
    const auto live = mh.live_vertices();

    // (2) Mark independently with probability p — counter RNG keyed by
    // (stage, vertex) makes this order- and thread-independent.
    par::parallel_for(
        0, live.size(),
        [&](std::size_t i) {
          const VertexId v = live[i];
          marked[v] = rng.bernoulli(p, stats.stage, v) ? 1 : 0;
        },
        metrics, opt.pool);
    edge_scan.wait();

    // (3) Unmark members of fully marked edges.  A vertex can sit in edges
    // of several chunks, so the idempotent set must be an *atomic* store
    // (relaxed: the join publishes, and every writer writes the same value).
    par::parallel_for(
        0, edges.size(),
        [&](std::size_t i) {
          const auto verts = mh.edge(edges[i]);
          bool all = true;
          for (const VertexId v : verts) {
            if (!marked[v]) {
              all = false;
              break;
            }
          }
          if (all) {
            for (const VertexId v : verts) {
              std::atomic_ref<std::uint8_t>(unmarked[v])
                  .store(1, std::memory_order_relaxed);
            }
          }
        },
        metrics, opt.pool);

    // (4) Survivors join the independent set.
    std::vector<VertexId> survivors;
    std::size_t n_marked = 0;
    for (const VertexId v : live) {
      if (marked[v]) {
        ++n_marked;
        if (!unmarked[v]) survivors.push_back(v);
      }
    }
    stats.marked = n_marked;
    stats.unmarked = n_marked - survivors.size();
    stats.added_blue = survivors.size();
    if (metrics) metrics->add(live.size(), par::log_depth(live.size()));

    mh.color_blue(survivors);

    // Reset mark scratch for the vertices we touched.
    for (const VertexId v : live) {
      marked[v] = 0;
      unmarked[v] = 0;
    }

    // (5) Cleanup: singleton rule, minimalization, isolated shortcut.
    const std::size_t edges_before = mh.num_live_edges();
    const auto reds = mh.singleton_cascade();
    stats.forced_red = reds.size();
    if (opt.minimalize) mh.dedupe_and_minimalize();
    if (opt.isolated_shortcut) {
      const auto isolated = mh.isolated_live_vertices();
      if (!isolated.empty()) {
        mh.color_blue(isolated);
        stats.added_blue += isolated.size();
      }
    }
    stats.edges_deleted = edges_before - mh.num_live_edges();
    if (metrics) {
      metrics->add(mh.total_live_edge_size() + n / 64 + 1,
                   par::log_depth(std::max<std::size_t>(edges_before, 1)));
    }

    if (opt.check_invariants) {
      // No live edge may be empty or contain a colored vertex.
      for (const EdgeId e : mh.live_edges()) {
        const auto verts = mh.edge(e);
        HMIS_CHECK(!verts.empty(), "live edge is empty");
        for (const VertexId v : verts) {
          HMIS_CHECK(mh.vertex_live(v), "live edge contains colored vertex");
        }
      }
    }

    ++out.stages;
    if (opt.record_trace) out.trace.push_back(stats);
    if (opt.on_stage) opt.on_stage(mh, stats);
  }
  return out;
}

Result bl(const Hypergraph& h, const BlOptions& opt) {
  util::Timer timer;
  Result result;
  MutableHypergraph mh(h, nullptr, opt.shards);
  BlOutcome outcome = bl_run(mh, opt, &result.metrics);
  result.success = outcome.success;
  result.failure_reason = std::move(outcome.failure_reason);
  result.rounds = outcome.stages;
  result.trace = std::move(outcome.trace);
  result.independent_set = mh.blue_vertices();
  result.seconds = timer.seconds();
  return result;
}

}  // namespace hmis::algo
