#include "hmis/algo/luby.hpp"

#include <atomic>

#include "hmis/hypergraph/mutable_hypergraph.hpp"
#include "hmis/par/parallel_for.hpp"
#include "hmis/util/check.hpp"
#include "hmis/util/rng.hpp"
#include "hmis/util/timer.hpp"

namespace hmis::algo {

Result luby_mis(const Hypergraph& h, const LubyOptions& opt) {
  HMIS_CHECK(h.dimension() <= 2, "luby_mis requires a graph (dimension <= 2)");
  util::Timer timer;
  Result result;
  const util::CounterRng rng(opt.seed);
  MutableHypergraph mh(h, par::resolve_pool(opt.pool), opt.shards);

  mh.singleton_cascade();  // size-1 edges exclude their vertex outright

  while (mh.num_live_vertices() > 0) {
    if (opt.cancel != nullptr) opt.cancel->throw_if_cancelled();
    if (result.rounds >= opt.max_rounds) {
      result.success = false;
      result.failure_reason = "Luby exceeded max_rounds";
      return result;
    }
    StageStats stats;
    stats.stage = result.rounds;
    stats.live_vertices = mh.num_live_vertices();
    stats.live_edges = mh.num_live_edges();

    const auto live = mh.live_vertices();
    const auto edges = mh.live_edges();

    // Priority comparison: (hash, id) is a strict total order per round.
    const auto before = [&](VertexId a, VertexId b) {
      const std::uint64_t pa = rng.priority(stats.stage, a);
      const std::uint64_t pb = rng.priority(stats.stage, b);
      return pa != pb ? pa < pb : a < b;
    };

    // A vertex is inhibited if some live neighbour precedes it.  Distinct
    // edges share endpoints across chunks, so the idempotent set is an
    // atomic store (relaxed: the join publishes, all writers agree on 1).
    std::vector<std::uint8_t> inhibited(mh.num_original_vertices(), 0);
    par::parallel_for(
        0, edges.size(),
        [&](std::size_t i) {
          const auto verts = mh.edge(edges[i]);
          HMIS_CHECK(verts.size() == 2, "luby round saw a non-binary edge");
          const VertexId a = verts[0], b = verts[1];
          const VertexId loser = before(a, b) ? b : a;
          std::atomic_ref<std::uint8_t>(inhibited[loser])
              .store(1, std::memory_order_relaxed);
        },
        &result.metrics, opt.pool);

    std::vector<VertexId> selected;
    for (const VertexId v : live) {
      if (!inhibited[v]) selected.push_back(v);
    }
    stats.marked = selected.size();
    stats.added_blue = selected.size();
    if (!selected.empty()) mh.color_blue(selected);
    // Edges incident to selected vertices shrank to singletons; the cascade
    // excludes those neighbours and deletes their edges.
    const auto reds = mh.singleton_cascade();
    stats.forced_red = reds.size();

    ++result.rounds;
    if (opt.record_trace) result.trace.push_back(stats);
  }
  result.independent_set = mh.blue_vertices();
  result.seconds = timer.seconds();
  return result;
}

}  // namespace hmis::algo
