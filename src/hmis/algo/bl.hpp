// The Beame–Luby algorithm (paper Algorithm 2; Beame & Luby SODA'90,
// analysis by Kelsen STOC'92 and §3 of Bercea et al.).
//
// Each stage:
//   1. compute the maximum normalized degree Δ(H) and dimension d of the
//      residual hypergraph and set the marking probability
//      p = 1 / (2^{d+1} · Δ)  (Algorithm 2 line 2);
//   2. mark every live vertex independently with probability p;
//   3. for every live edge whose vertices are ALL marked, unmark all of its
//      vertices (simultaneous semantics, evaluated against the initial
//      marks — lines 8–10);
//   4. surviving marked vertices join the independent set (color blue);
//      incident edges shrink (lines 11–15);
//   5. cleanup: dedupe + strict-superset removal (line 16–20, with the
//      subset/superset direction corrected, see DESIGN.md fidelity note 1)
//      and the singleton rule (lines 21–24), which colors vertices red and
//      deletes their edges.
//
// Deviations controlled by options (all defaults match DESIGN.md):
//   * recompute_probability: recompute Δ, d, p each stage (fidelity note 2);
//   * isolated_shortcut: immediately add vertices with no live edges
//     (fidelity note 3);
//   * a_factor / probability_override: override p = 1/(a·Δ) or p directly —
//     used by linear_bl and the ablation benches.
#pragma once

#include "hmis/algo/result.hpp"
#include "hmis/hypergraph/degree_stats.hpp"
#include "hmis/hypergraph/mutable_hypergraph.hpp"

namespace hmis::engine {
class RoundContext;
}

namespace hmis::algo {

struct BlOptions : CommonOptions {
  bool recompute_probability = true;
  bool isolated_shortcut = true;
  bool minimalize = true;
  /// p = 1/(a_factor * Δ); 0 means the paper's a = 2^{d+1}.
  double a_factor = 0.0;
  /// Fixed marking probability; 0 means derive from Δ.
  double probability_override = 0.0;
  /// Degree-statistics costs (exact vs singleton approximation).
  DegreeStatsOptions stats;
  /// Invoked after every stage with the residual hypergraph and the stats of
  /// the stage just executed (for analysis instrumentation).
  std::function<void(const MutableHypergraph&, const StageStats&)> on_stage;
};

/// Run BL on a residual hypergraph in place (colors vertices blue/red until
/// none are live).  Returns stages executed and per-stage trace; the
/// independent set is mh.blue_vertices().
struct BlOutcome {
  bool success = true;
  std::string failure_reason;
  std::size_t stages = 0;
  std::vector<StageStats> trace;
};
/// `ctx` supplies the reusable per-round scratch (mark bytes, degree-stats
/// edge lists) — see engine/round_context.hpp.  Callers running BL many
/// times (SBL's inner rounds, the engine's sessions) pass one context so
/// the steady-state stage loop allocates nothing; nullptr uses a run-local
/// context.  Results are bit-identical either way.
[[nodiscard]] BlOutcome bl_run(MutableHypergraph& mh, const BlOptions& opt,
                               par::Metrics* metrics = nullptr,
                               engine::RoundContext* ctx = nullptr);

/// Convenience wrapper: run BL on a hypergraph and return a full Result.
[[nodiscard]] Result bl(const Hypergraph& h, const BlOptions& opt = BlOptions{});

/// Compute the BL marking probability for a residual hypergraph:
/// p = 1/(a·Δ) clamped to (0, 1/2]; a = 2^{d+1} unless overridden.
[[nodiscard]] double bl_probability(const DegreeStats& stats, double a_factor);

}  // namespace hmis::algo
