#include "hmis/algo/kuw.hpp"

#include <algorithm>

#include "hmis/engine/round_context.hpp"
#include "hmis/par/parallel_for.hpp"
#include "hmis/par/reduce.hpp"
#include "hmis/par/sort.hpp"
#include "hmis/util/check.hpp"
#include "hmis/util/rng.hpp"
#include "hmis/util/timer.hpp"

namespace hmis::algo {

KuwOutcome kuw_run(MutableHypergraph& mh, const KuwOptions& opt,
                   par::Metrics* metrics, engine::RoundContext* ctx) {
  KuwOutcome out;
  const util::CounterRng rng(opt.seed);

  mh.set_pool(par::resolve_pool(opt.pool));
  mh.singleton_cascade();

  engine::RoundContext local_ctx;
  engine::RoundContext& rc = ctx != nullptr ? *ctx : local_ctx;
  if (rc.cancel == nullptr) rc.cancel = opt.cancel;
  auto& position = rc.positions(mh.num_original_vertices());

  while (mh.num_live_vertices() > 0) {
    rc.poll_cancel();
    if (out.rounds >= opt.max_rounds) {
      out.success = false;
      out.failure_reason = "KUW exceeded max_rounds";
      return out;
    }
    StageStats stats;
    stats.stage = out.rounds;
    stats.live_vertices = mh.num_live_vertices();
    stats.live_edges = mh.num_live_edges();

    auto order = mh.live_vertices();
    if (mh.num_live_edges() == 0) {
      stats.added_blue = order.size();
      mh.color_blue(order);
      ++out.rounds;
      if (opt.record_trace) out.trace.push_back(stats);
      break;
    }

    // Random order via counter-RNG keys (deterministic per (seed, round)).
    par::parallel_sort(
        order,
        [&](VertexId a, VertexId b) {
          const std::uint64_t pa = rng.priority(stats.stage, a);
          const std::uint64_t pb = rng.priority(stats.stage, b);
          return pa != pb ? pa < pb : a < b;
        },
        metrics, opt.pool);
    par::parallel_for(
        0, order.size(),
        [&](std::size_t i) {
          position[order[i]] = static_cast<std::uint32_t>(i + 1);  // 1-based
        },
        metrics, opt.pool);

    // i* = min over live edges of (max member position).
    const auto edges = mh.live_edges();
    const std::uint32_t i_star = par::reduce_min<std::uint32_t>(
        0, edges.size(), static_cast<std::uint32_t>(order.size() + 1),
        [&](std::size_t i) {
          std::uint32_t mx = 0;
          for (const VertexId v : mh.edge(edges[i])) {
            mx = std::max(mx, position[v]);
          }
          return mx;
        },
        metrics, opt.pool);
    HMIS_CHECK(i_star >= 1 && i_star <= order.size(),
               "KUW: blocking position out of range");

    // Add the largest independent prefix, exclude its blocker.
    const std::span<const VertexId> prefix(order.data(), i_star - 1);
    const VertexId blocker = order[i_star - 1];
    stats.added_blue = prefix.size();
    stats.forced_red = 1;
    if (!prefix.empty()) {
      mh.color_blue(prefix);
    }
    mh.color_red(std::span<const VertexId>(&blocker, 1));
    // Newly dominated vertices (edges shrunk to singletons) are excluded now;
    // KUW's oracle would simply never accept them.
    const auto reds = mh.singleton_cascade();
    stats.forced_red += reds.size();

    ++out.rounds;
    if (opt.record_trace) out.trace.push_back(stats);
  }
  return out;
}

Result kuw_mis(const Hypergraph& h, const KuwOptions& opt) {
  util::Timer timer;
  Result result;
  MutableHypergraph mh(h, nullptr, opt.shards);
  KuwOutcome outcome = kuw_run(mh, opt, &result.metrics);
  result.success = outcome.success;
  result.failure_reason = std::move(outcome.failure_reason);
  result.rounds = outcome.rounds;
  result.trace = std::move(outcome.trace);
  result.independent_set = mh.blue_vertices();
  result.seconds = timer.seconds();
  return result;
}

}  // namespace hmis::algo
