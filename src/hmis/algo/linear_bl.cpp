#include "hmis/algo/linear_bl.hpp"

#include <unordered_set>

#include "hmis/util/check.hpp"

namespace hmis::algo {

bool is_linear(const Hypergraph& h) {
  // Linear iff no vertex pair occurs in two distinct edges.
  std::unordered_set<std::uint64_t> pairs;
  pairs.reserve(h.total_edge_size() * 2);
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const auto verts = h.edge(e);
    for (std::size_t i = 0; i < verts.size(); ++i) {
      for (std::size_t j = i + 1; j < verts.size(); ++j) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(verts[i]) << 32) | verts[j];
        if (!pairs.insert(key).second) return false;
      }
    }
  }
  return true;
}

Result linear_bl(const Hypergraph& h, const LinearBlOptions& opt) {
  if (opt.validate_linearity) {
    HMIS_CHECK(is_linear(h), "linear_bl requires a linear hypergraph");
  }
  return bl(h, opt);
}

}  // namespace hmis::algo
