#include "hmis/algo/greedy.hpp"

#include <algorithm>
#include <numeric>

#include "hmis/util/check.hpp"
#include "hmis/util/rng.hpp"
#include "hmis/util/timer.hpp"

namespace hmis::algo {

Result greedy_mis_ordered(const Hypergraph& h, std::span<const VertexId> order,
                          const GreedyOptions& opt) {
  util::Timer timer;
  Result result;
  const std::size_t m = h.num_edges();
  // miss[e] = number of edge members not (yet) in the independent set.
  std::vector<std::uint32_t> miss(m);
  for (EdgeId e = 0; e < m; ++e) {
    miss[e] = static_cast<std::uint32_t>(h.edge_size(e));
  }
  std::vector<std::uint8_t> in_set(h.num_vertices(), 0);
  std::size_t since_poll = 0;
  for (const VertexId v : order) {
    // Greedy has no rounds; poll the token on a fixed vertex stride so a
    // cancelled sequential solve still unwinds promptly.
    if (opt.cancel != nullptr && ++since_poll == 4096) {
      since_poll = 0;
      opt.cancel->throw_if_cancelled();
    }
    bool blocked = false;
    for (const EdgeId e : h.edges_of(v)) {
      // If only v is missing from e, adding v would complete the edge.
      if (miss[e] == 1) {
        blocked = true;
        break;
      }
    }
    if (blocked) continue;
    in_set[v] = 1;
    for (const EdgeId e : h.edges_of(v)) {
      HMIS_CHECK(miss[e] > 1, "greedy would complete an edge");
      --miss[e];
    }
  }
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    if (in_set[v]) result.independent_set.push_back(v);
  }
  result.rounds = 1;
  result.metrics.add(h.total_edge_size() + h.num_vertices(),
                     h.num_vertices());  // inherently sequential: depth = n
  result.seconds = timer.seconds();
  return result;
}

Result greedy_mis(const Hypergraph& h, const GreedyOptions& opt) {
  std::vector<VertexId> order(h.num_vertices());
  std::iota(order.begin(), order.end(), 0u);
  return greedy_mis_ordered(h, order, opt);
}

Result permutation_greedy_mis(const Hypergraph& h, const GreedyOptions& opt) {
  std::vector<VertexId> order(h.num_vertices());
  std::iota(order.begin(), order.end(), 0u);
  util::Xoshiro256ss rng(opt.seed);
  // Fisher–Yates.
  for (std::size_t i = order.size(); i > 1; --i) {
    const std::size_t j = rng.below(i);
    std::swap(order[i - 1], order[j]);
  }
  return greedy_mis_ordered(h, order, opt);
}

}  // namespace hmis::algo
