// Karp–Upfal–Wigderson-style parallel MIS via random-order prefix search
// (Karp, Upfal & Wigderson, "The complexity of parallel search", JCSS 1988).
//
// KUW work in the independence-system oracle model and show Θ(√n) rounds
// with n processors.  The upper-bound algorithm adapted here:
//
//   round:  draw a random order c_1..c_k of the live vertices.  In parallel
//           test every prefix P_i = {c_1..c_i}: I ∪ P_i is independent iff no
//           residual edge lies entirely inside P_i.  Let i* be minimal with
//           I ∪ P_{i*} dependent (if none, add everything and stop).  Add
//           P_{i*-1} to I; c_{i*} completes an edge against the new I, so it
//           can never be added — exclude it (red).  Cleanup excludes newly
//           dominated vertices (singleton rule) and repeats.
//
// All prefix tests of one round are evaluated with one parallel reduction:
// an edge e (residual, all members live) blocks exactly the prefixes
// i >= max position of its members, so i* - 1 = min over live edges of
// (max member position) - 1.  One round is O(sort + edge scan) work,
// O(polylog) depth; the measured quantity is the number of rounds, which is
// the O(√n) the paper quotes for the baseline.
#pragma once

#include "hmis/algo/result.hpp"
#include "hmis/hypergraph/hypergraph.hpp"
#include "hmis/hypergraph/mutable_hypergraph.hpp"

namespace hmis::engine {
class RoundContext;
}

namespace hmis::algo {

struct KuwOptions : CommonOptions {};

/// In-place variant for use as SBL's base-case solver.
struct KuwOutcome {
  bool success = true;
  std::string failure_reason;
  std::size_t rounds = 0;
  std::vector<StageStats> trace;
};
/// `ctx` supplies reusable per-round scratch (the permutation-rank array);
/// nullptr uses a run-local context.  Bit-identical either way.
[[nodiscard]] KuwOutcome kuw_run(MutableHypergraph& mh, const KuwOptions& opt,
                                 par::Metrics* metrics = nullptr,
                                 engine::RoundContext* ctx = nullptr);

[[nodiscard]] Result kuw_mis(const Hypergraph& h,
                             const KuwOptions& opt = KuwOptions{});

}  // namespace hmis::algo
