#include "hmis/algo/permutation_mis.hpp"

#include <atomic>

#include "hmis/hypergraph/mutable_hypergraph.hpp"
#include "hmis/par/parallel_for.hpp"
#include "hmis/util/check.hpp"
#include "hmis/util/rng.hpp"
#include "hmis/util/timer.hpp"

namespace hmis::algo {

Result permutation_mis(const Hypergraph& h, const PermutationOptions& opt) {
  util::Timer timer;
  Result result;
  const util::CounterRng rng(opt.seed);
  MutableHypergraph mh(h, par::resolve_pool(opt.pool), opt.shards);

  mh.dedupe_and_minimalize();
  mh.singleton_cascade();

  while (mh.num_live_vertices() > 0) {
    if (opt.cancel != nullptr) opt.cancel->throw_if_cancelled();
    if (result.rounds >= opt.max_rounds) {
      result.success = false;
      result.failure_reason = "permutation_mis exceeded max_rounds";
      return result;
    }
    StageStats stats;
    stats.stage = result.rounds;
    stats.live_vertices = mh.num_live_vertices();
    stats.live_edges = mh.num_live_edges();
    stats.dimension = mh.max_live_edge_size();

    const auto live = mh.live_vertices();
    const auto edges = mh.live_edges();

    const auto before = [&](VertexId a, VertexId b) {
      const std::uint64_t pa = rng.priority(stats.stage, a);
      const std::uint64_t pb = rng.priority(stats.stage, b);
      return pa != pb ? pa < pb : a < b;
    };

    // Inhibit every member of a live edge except its minimum-priority one.
    // Edges in different chunks share vertices, so the idempotent set is an
    // atomic store (relaxed: the join publishes, all writers agree on 1).
    std::vector<std::uint8_t> inhibited(mh.num_original_vertices(), 0);
    par::parallel_for(
        0, edges.size(),
        [&](std::size_t i) {
          const auto verts = mh.edge(edges[i]);
          HMIS_CHECK(verts.size() >= 2, "singleton escaped the cascade");
          VertexId min_v = verts[0];
          for (const VertexId v : verts.subspan(1)) {
            if (before(v, min_v)) min_v = v;
          }
          for (const VertexId v : verts) {
            if (v != min_v) {
              std::atomic_ref<std::uint8_t>(inhibited[v])
                  .store(1, std::memory_order_relaxed);
            }
          }
        },
        &result.metrics, opt.pool);

    std::vector<VertexId> selected;
    for (const VertexId v : live) {
      if (!inhibited[v]) selected.push_back(v);
    }
    stats.marked = selected.size();
    stats.added_blue = selected.size();
    HMIS_CHECK(!selected.empty(),
               "permutation round selected nothing (impossible: the global "
               "minimum is always selectable)");
    mh.color_blue(selected);
    const auto reds = mh.singleton_cascade();
    stats.forced_red = reds.size();
    const std::size_t before_edges = mh.num_live_edges();
    mh.dedupe_and_minimalize();
    stats.edges_deleted = before_edges - mh.num_live_edges();

    ++result.rounds;
    if (opt.record_trace) result.trace.push_back(stats);
  }
  result.independent_set = mh.blue_vertices();
  result.seconds = timer.seconds();
  return result;
}

}  // namespace hmis::algo
