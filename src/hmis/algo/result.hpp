// Shared result and option types for all MIS algorithms.
//
// Every algorithm in this library returns the same `Result`, so the
// comparison experiments can treat them uniformly.  Per-stage traces are
// optional (they cost memory) and power the analysis-validation figures.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hmis/hypergraph/shard_plan.hpp"
#include "hmis/hypergraph/types.hpp"
#include "hmis/par/metrics.hpp"
#include "hmis/util/cancel.hpp"

namespace hmis::par {
class ThreadPool;
}

namespace hmis::algo {

/// One stage (round) of an iterative algorithm, as instrumented.
struct StageStats {
  std::size_t stage = 0;           ///< 0-based stage index
  std::size_t live_vertices = 0;   ///< before the stage
  std::size_t live_edges = 0;      ///< before the stage
  std::size_t dimension = 0;       ///< max live edge size before the stage
  double delta = 0.0;              ///< Δ(H) used for p (BL family)
  double p = 0.0;                  ///< marking probability used
  std::size_t marked = 0;          ///< vertices marked / candidates selected
  std::size_t unmarked = 0;        ///< marks retracted by fully-marked edges
  std::size_t added_blue = 0;      ///< vertices added to the IS this stage
  std::size_t forced_red = 0;      ///< vertices excluded this stage
  std::size_t edges_deleted = 0;   ///< edges removed (satisfied/minimalized)
  // SBL-specific:
  std::size_t sampled = 0;         ///< |V'| drawn this round
  std::size_t sample_dimension = 0;///< max edge size inside the sample
  std::size_t resamples = 0;       ///< dimension-violation redraws
  std::size_t inner_stages = 0;    ///< BL stages consumed by this round
};

/// Uniform outcome of any MIS algorithm run.
struct Result {
  std::vector<VertexId> independent_set;  ///< ascending vertex ids
  bool success = true;                    ///< false => see failure_reason
  std::string failure_reason;
  std::size_t rounds = 0;                 ///< outer rounds/stages executed
  std::uint64_t inner_stages = 0;         ///< total subroutine stages (SBL)
  std::size_t resamples = 0;              ///< SBL dimension redraws
  par::Metrics metrics;                   ///< modeled EREW work/depth
  double seconds = 0.0;                   ///< wall-clock of the run
  std::vector<StageStats> trace;          ///< filled iff record_trace
};

/// Options shared by the iterative algorithms.
struct CommonOptions {
  std::uint64_t seed = 1;
  bool record_trace = false;
  /// Extra invariant checking per stage (slow; for tests).
  bool check_invariants = false;
  /// Hard cap on stages; exceeding it fails the run.
  std::size_t max_rounds = 1'000'000;
  /// Thread pool for the `hmis::par` primitives (nullptr = process-global
  /// pool).  All randomness is counter-based, so results are bit-identical
  /// for any pool size.
  par::ThreadPool* pool = nullptr;
  /// Shard plan for every MutableHypergraph the run builds (shard count +
  /// worker-affinity rotation).  Results are byte-identical for any value
  /// by the determinism contract; the engine rotates affinity_offset per
  /// session so concurrent sessions spread their hot shards.
  ShardConfig shards;
  /// Cooperative cancellation source (nullptr = never cancelled; must
  /// outlive the run otherwise).  The round loops poll it at every outer
  /// round boundary and unwind with util::CancelledError.
  const util::CancelToken* cancel = nullptr;
};

}  // namespace hmis::algo
