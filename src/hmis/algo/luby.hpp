// Luby's algorithm for ordinary graphs (dimension-2 hypergraphs) — the
// classical, well-understood special case the paper's introduction contrasts
// the hypergraph problem with.  O(log n) rounds w.h.p.
//
// Round: every live vertex draws a random priority; a vertex joins the MIS
// iff its priority is a strict local minimum among the live endpoints of its
// live edges.  Neighbours of joined vertices are excluded (via the singleton
// rule of the residual hypergraph).
#pragma once

#include "hmis/algo/result.hpp"
#include "hmis/hypergraph/hypergraph.hpp"

namespace hmis::algo {

struct LubyOptions : CommonOptions {};

/// Requires dimension(h) <= 2 (size-1 edges are allowed and handled).
[[nodiscard]] Result luby_mis(const Hypergraph& h,
                              const LubyOptions& opt = LubyOptions{});

}  // namespace hmis::algo
