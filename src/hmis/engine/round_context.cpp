#include "hmis/engine/round_context.hpp"

namespace hmis::engine {

const MutableHypergraph::Induced& RoundContext::induced_frame(
    const MutableHypergraph& mh, const util::DynamicBitset& keep) {
  ResidualFrame& frame = arena_.acquire();
  mh.induced_subgraph_into(keep, frame.induced, frame.scratch);
  return frame.induced;
}

const MutableHypergraph::Induced& RoundContext::snapshot_frame(
    const MutableHypergraph& mh) {
  ResidualFrame& frame = arena_.acquire();
  mh.live_snapshot_into(frame.induced, frame.scratch);
  return frame.induced;
}

util::DynamicBitset& RoundContext::keep_mask(std::size_t n) {
  if (keep_.size() != n) keep_.resize(n);
  keep_.clear_all();
  return keep_;
}

std::vector<std::uint8_t>& RoundContext::marked(std::size_t n) {
  marked_.assign(n, 0);
  return marked_;
}

std::vector<std::uint8_t>& RoundContext::unmarked(std::size_t n) {
  unmarked_.assign(n, 0);
  return unmarked_;
}

std::vector<std::uint8_t>& RoundContext::blue_mask(std::size_t n) {
  blue_mask_.assign(n, 0);
  return blue_mask_;
}

std::vector<std::uint32_t>& RoundContext::positions(std::size_t n) {
  positions_.assign(n, 0);
  return positions_;
}

}  // namespace hmis::engine
