// Engine: the async batched solve front end (the library's server shape).
//
//   hmis::engine::Engine eng({.threads = 8});
//   auto f1 = eng.submit({.graph = g1, .algorithm = core::Algorithm::SBL});
//   auto f2 = eng.submit({.graph = g2});        // any thread may submit
//   auto r1 = f1.get();                         // helps run work while waiting
//
// One Engine owns (or adopts) one work-stealing ThreadPool and multiplexes
// every submitted solve session onto it: each session is a scheduler task
// that runs `core::find_mis`, whose internal parallel kernels then fork
// nested sub-tasks on the same workers.  Sessions therefore interleave at
// kernel granularity — a long SBL solve does not block a short BL solve —
// and any number of threads can submit concurrently (the scheduler's
// injection queue takes care of foreign submitters).
//
// Determinism: a session's result is a pure function of its SolveRequest.
// Each session draws from its own counter-RNG stream (seeded by the
// request's seed — the engine never mixes in submission order, session ids,
// or timing), and the round kernels are bit-identical for any thread count
// by the library-wide contract (DESIGN.md §3–4).  Hence the same request
// returns byte-identical Results whether solved alone, inside any batch
// composition, or on an engine with 1, 2, or 8 threads —
// tests/test_engine.cpp enforces exactly that.
//
// Waiting helps: SolveFuture::get()/wait() and Engine::drain() execute
// queued sessions while blocked, so an engine whose pool has zero workers
// (threads = 1) still completes everything — on the caller's thread.
//
// Lifetime: the Engine must outlive its SolveFutures.  Destroying the
// engine drains in-flight sessions first; dropping a SolveFuture without
// get() abandons the result but never the session (the engine keeps the
// session state alive until it completes).
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "hmis/core/mis.hpp"
#include "hmis/par/thread_pool.hpp"
#include "hmis/util/cancel.hpp"
#include "hmis/util/sync.hpp"

namespace hmis::engine {

/// One solve session's input.  The hypergraph is shared (sessions outlive
/// the submitting scope); `share()` below wraps a value.
struct SolveRequest {
  std::shared_ptr<const Hypergraph> graph;
  core::Algorithm algorithm = core::Algorithm::Auto;
  std::uint64_t seed = 1;
  bool record_trace = false;
  bool verify = true;
  /// SBL-specific knobs pass through (its pool field is ignored — sessions
  /// always run on the engine's pool).
  core::SblOptions sbl{};
  /// Residual data-plane shard plan for this session.  When
  /// affinity_offset is left 0, the engine substitutes the session id so
  /// concurrent sessions rotate their shard→worker placement hints across
  /// different workers (scheduling only — results never depend on it).
  ShardConfig shards{};
  /// Caller label echoed in the response (batch reporting).
  std::string tag;
  /// Forwarded to FindOptions::on_progress: fires on an engine worker
  /// thread after every completed outer round (1-based count).  Must be
  /// thread-safe and must not block for long — it runs inside the session.
  std::function<void(std::size_t)> on_progress;
  /// Optional external cancellation source.  The session's own token (the
  /// one SolveFuture::cancel() trips) chains to this, so cancelling either
  /// unwinds the solve at its next round boundary with CancelledError.
  /// Must outlive the session when non-null.
  const util::CancelToken* cancel = nullptr;
};

/// Move a hypergraph into shared ownership for SolveRequest::graph.
[[nodiscard]] inline std::shared_ptr<const Hypergraph> share(Hypergraph g) {
  return std::make_shared<const Hypergraph>(std::move(g));
}

struct SolveResponse {
  std::string tag;
  std::uint64_t session_id = 0;  ///< submission counter (reporting only)
  core::MisRun run;
  double queue_seconds = 0.0;  ///< submit -> session start
  double solve_seconds = 0.0;  ///< session start -> completion
};

namespace detail {
struct SessionState;
}

/// Handle on one in-flight session.  Move-only.  get() blocks (helping run
/// queued work) and rethrows any exception the session raised
/// (e.g. util::CheckError from an algorithm contract violation).
class SolveFuture {
 public:
  SolveFuture() = default;
  SolveFuture(SolveFuture&&) noexcept = default;
  SolveFuture& operator=(SolveFuture&&) noexcept = default;
  SolveFuture(const SolveFuture&) = delete;
  SolveFuture& operator=(const SolveFuture&) = delete;
  ~SolveFuture() = default;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  /// True once the session completed (never blocks).
  [[nodiscard]] bool ready() const noexcept;
  /// Block until completion, executing queued engine work while waiting.
  void wait();
  /// wait(), then consume the response (valid() becomes false).
  [[nodiscard]] SolveResponse get();
  /// Request cooperative cancellation.  The session observes it at its
  /// next round boundary and completes exceptionally with CancelledError
  /// (get() rethrows it); a session that already finished is unaffected.
  /// Safe from any thread, idempotent, never blocks.
  void cancel() noexcept;

 private:
  friend class Engine;
  SolveFuture(std::shared_ptr<detail::SessionState> state,
              par::ThreadPool* pool)
      : state_(std::move(state)), pool_(pool) {}

  std::shared_ptr<detail::SessionState> state_;
  par::ThreadPool* pool_ = nullptr;
};

struct EngineOptions {
  /// Lanes of the engine-owned pool (0 = hardware concurrency).  Ignored
  /// when `pool` is set.
  std::size_t threads = 0;
  /// Adopt an external pool instead of owning one (it must outlive the
  /// engine).
  par::ThreadPool* pool = nullptr;
  /// Backpressure: submit() blocks — helping run sessions — while this many
  /// sessions are in flight.  0 = unbounded.
  std::size_t max_inflight = 0;
};

struct EngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;     ///< sessions that threw (future rethrows)
  std::uint64_t cancelled = 0;  ///< sessions unwound by CancelledError
  std::size_t inflight = 0;
  std::size_t peak_inflight = 0;
  par::SchedulerStats scheduler;  ///< pool counters since engine creation
};

class Engine {
 public:
  explicit Engine(const EngineOptions& opt = {});
  /// Drains in-flight sessions, then releases the pool if owned.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Enqueue a solve session; callable from any thread.  Throws
  /// util::CheckError if the request has no graph.
  [[nodiscard]] SolveFuture submit(SolveRequest req) HMIS_EXCLUDES(mutex_);

  /// Submit a whole batch, futures in request order.
  [[nodiscard]] std::vector<SolveFuture> submit_all(
      std::vector<SolveRequest> reqs);

  /// Block until every session submitted so far completed (helps run them).
  /// Sessions submitted concurrently with drain() are not covered.
  void drain() HMIS_EXCLUDES(mutex_);

  [[nodiscard]] EngineStats stats() const;

  [[nodiscard]] par::ThreadPool& pool() const noexcept { return *pool_; }

 private:
  struct SessionTask;
  static void run_session(par::Task* task);
  void sweep_completed_locked() HMIS_REQUIRES(mutex_);

  std::unique_ptr<par::ThreadPool> owned_pool_;
  par::ThreadPool* pool_ = nullptr;
  par::SchedulerStats sched_baseline_;
  std::size_t max_inflight_ = 0;

  mutable util::Mutex mutex_;
  /// Signaled by every session completion; backpressured submitters on a
  /// pool with workers sleep here until an in-flight slot frees.
  util::CondVar slot_freed_;
  /// Owns every not-yet-reaped session (keeps the session's GroupState
  /// alive through the scheduler's final decrement; swept lazily once
  /// done()).
  std::vector<std::shared_ptr<detail::SessionState>> sessions_
      HMIS_GUARDED_BY(mutex_);

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::size_t> peak_inflight_{0};
};

}  // namespace hmis::engine
