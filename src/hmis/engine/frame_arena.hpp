// FrameArena: double-buffered, capacity-reusing storage for the residual
// frames (induced subgraphs / live snapshots) the round-structured
// algorithms rebuild every round.
//
// A ResidualFrame bundles an `Induced` (the CSR output) with the
// `InducedScratch` needed to build it.  The arena owns two frames and hands
// them out round-robin via acquire(): the frame returned by the PREVIOUS
// acquire() is never touched by the next one, so a caller can still be
// consuming round r's frame (an inner BL solving it, a trace callback
// reading it) while round r+1 builds into the other buffer.  A frame
// reference stays valid until the second acquire() after it.
//
// Reuse is capacity-only: every build fully re-initializes the frame's
// contents (MutableHypergraph's `_into` kernels resize/assign each buffer),
// so a dirty recycled frame yields bit-identical results to a fresh one —
// the equivalence suites run both ways to enforce it.  After a warm-up
// build at peak residual size, subsequent rounds perform no heap
// allocation; `capacity_bytes()` exposes the high-water footprint and
// `acquires()` the rebuild count for the engine stats and benches.
//
// The builds themselves read the slab data plane (DESIGN.md §7): the
// relabel pass scans the live mask word-level, and the vertex→edge fill
// walks the live-incidence index instead of the original CSR — the
// mutation-side scratch for that index (batch gathers, compaction sweeps)
// is owned by the MutableHypergraph itself and reused across rounds the
// same capacity-only way.
//
// Layering: this header (and round_context.hpp) is the *low* half of the
// engine subsystem — it depends only on the hypergraph layer and is used by
// algo/core round loops.  engine/engine.hpp is the high half, sitting above
// core (DESIGN.md §2).
#pragma once

#include <cstddef>
#include <cstdint>

#include "hmis/hypergraph/mutable_hypergraph.hpp"

namespace hmis::engine {

/// One arena-backed residual frame: an induced CSR plus its build scratch.
struct ResidualFrame {
  MutableHypergraph::Induced induced;
  MutableHypergraph::InducedScratch scratch;
};

class FrameArena {
 public:
  /// Rotate to the other buffer and return it for (re)building.  The frame
  /// returned by the previous acquire() is left untouched.
  [[nodiscard]] ResidualFrame& acquire() {
    current_ ^= 1;
    ++acquires_;
    return frames_[current_];
  }

  /// The most recently acquired frame (undefined before the first acquire).
  [[nodiscard]] ResidualFrame& current() noexcept {
    return frames_[current_];
  }

  /// Number of acquire() calls — one per frame rebuild.
  [[nodiscard]] std::uint64_t acquires() const noexcept { return acquires_; }

  /// Total heap capacity currently pinned by both frames (high-water mark
  /// of the residual sizes seen so far).
  [[nodiscard]] std::size_t capacity_bytes() const noexcept;

 private:
  ResidualFrame frames_[2];
  std::size_t current_ = 1;  // first acquire() returns frames_[0]
  std::uint64_t acquires_ = 0;
};

}  // namespace hmis::engine
