#include "hmis/engine/frame_arena.hpp"

namespace hmis::engine {

namespace {

template <typename T>
std::size_t vec_bytes(const std::vector<T>& v) noexcept {
  return v.capacity() * sizeof(T);
}

std::size_t frame_bytes(const ResidualFrame& f) noexcept {
  const auto& s = f.scratch;
  // The Induced graph's CSR arrays are private to Hypergraph; their *live*
  // sizes are visible through the public accessors and bound the pinned
  // capacity from below — good enough for a footprint gauge (the scratch,
  // which dominates at peak, is counted by true capacity).
  const Hypergraph& g = f.induced.graph;
  const std::size_t graph_bytes =
      g.total_edge_size() * sizeof(VertexId) +
      (g.num_edges() + 1) * sizeof(std::size_t) +
      (g.num_vertices() + 1) * sizeof(std::size_t) +
      g.total_edge_size() * sizeof(EdgeId);
  return graph_bytes + vec_bytes(f.induced.to_original) +
         vec_bytes(s.to_local) + vec_bytes(s.voffset) + vec_bytes(s.inside) +
         vec_bytes(s.emit) + vec_bytes(s.cand) + vec_bytes(s.local_edge) +
         vec_bytes(s.estart) + vec_bytes(s.deg);
}

}  // namespace

std::size_t FrameArena::capacity_bytes() const noexcept {
  return frame_bytes(frames_[0]) + frame_bytes(frames_[1]);
}

}  // namespace hmis::engine
