#include "hmis/engine/engine.hpp"

#include <algorithm>
#include <chrono>
#include <new>
#include <thread>
#include <utility>

#include "hmis/util/check.hpp"
#include "hmis/util/fault.hpp"
#include "hmis/util/timer.hpp"

namespace hmis::engine {

namespace detail {

/// Shared per-session state.  Owned jointly by the engine's session list
/// and the SolveFuture; the GroupState inside must stay alive until the
/// scheduler's final pending-decrement, which the engine guarantees by
/// sweeping sessions only after group.done() (done() becomes true *at* that
/// decrement, and the scheduler never touches the group afterwards).
struct SessionState {
  explicit SessionState(const util::CancelToken* parent) : cancel(parent) {}

  par::GroupState group;
  /// The session's cancellation latch: SolveFuture::cancel() trips it
  /// directly; a request-supplied token (serve's per-connection sources)
  /// participates as its parent.  run_session hands a pointer into the
  /// solve, and the round loops poll it at round boundaries.
  util::CancelToken cancel;
  std::promise<SolveResponse> promise;
  std::future<SolveResponse> future;
};

}  // namespace detail

/// The scheduler task node of one session: owns the request and a reference
/// on the shared state; frees itself at the end of invoke.
struct Engine::SessionTask : par::Task {
  SolveRequest req;
  std::shared_ptr<detail::SessionState> state;
  Engine* engine = nullptr;
  std::uint64_t session_id = 0;
  util::Timer queued;  ///< started at submit
};

Engine::Engine(const EngineOptions& opt) : max_inflight_(opt.max_inflight) {
  if (opt.pool != nullptr) {
    pool_ = opt.pool;
  } else {
    owned_pool_ = std::make_unique<par::ThreadPool>(opt.threads);
    pool_ = owned_pool_.get();
  }
  sched_baseline_ = pool_->stats();
}

Engine::~Engine() { drain(); }

void Engine::run_session(par::Task* task) {
  auto* node = static_cast<SessionTask*>(task);
  Engine* engine = node->engine;
  SolveResponse resp;
  resp.tag = node->req.tag;
  resp.session_id = node->session_id;
  resp.queue_seconds = node->queued.seconds();
  util::Timer solve_timer;
  try {
    core::FindOptions fopt;
    fopt.seed = node->req.seed;
    fopt.record_trace = node->req.record_trace;
    fopt.verify = node->req.verify;
    fopt.sbl = node->req.sbl;
    fopt.sbl.pool = nullptr;  // sessions run on the engine pool, always
    fopt.pool = &engine->pool();
    fopt.shards = node->req.shards;
    if (fopt.shards.affinity_offset == 0) {
      // Per-session shard plan: rotate the shard→worker placement hints by
      // the session id so concurrent sessions' hot shards land on
      // different workers (pure scheduling; results are unaffected).
      fopt.shards.affinity_offset = static_cast<std::size_t>(node->session_id);
    }
    fopt.on_progress = node->req.on_progress;
    fopt.cancel = &node->state->cancel;
    resp.run = core::find_mis(*node->req.graph, node->req.algorithm, fopt);
    resp.solve_seconds = solve_timer.seconds();
    node->state->promise.set_value(std::move(resp));
  } catch (const util::CancelledError&) {
    // An expected outcome, not a failure: counted separately so operators
    // can tell "clients hung up / cancelled" from "algorithm blew up".
    engine->cancelled_.fetch_add(1, std::memory_order_relaxed);
    node->state->promise.set_exception(std::current_exception());
  } catch (...) {
    engine->failed_.fetch_add(1, std::memory_order_relaxed);
    node->state->promise.set_exception(std::current_exception());
  }
  engine->completed_.fetch_add(1, std::memory_order_relaxed);
  engine->inflight_.fetch_sub(1, std::memory_order_relaxed);
  {
    // Pairing the notify with the (empty) critical section guarantees a
    // backpressured submitter is either before its predicate check (and
    // will read the decremented counter) or already parked (and gets the
    // wakeup) — no lost slot-freed signals.
    util::MutexLock lock(engine->mutex_);
  }
  engine->slot_freed_.notify_all();
  delete node;
  // The scheduler still decrements state->group after this returns; the
  // engine's session list keeps the state alive past that point.
}

SolveFuture Engine::submit(SolveRequest req) {
  HMIS_CHECK(req.graph != nullptr, "SolveRequest without a hypergraph");

  // Backpressure: reserve the in-flight slot atomically (check-then-act
  // would let concurrent submitters overshoot the cap).  While capped, a
  // zero-worker engine help-runs a session (the submitting thread is the
  // only lane there is); with workers the submitter sleeps on the
  // completion condvar instead — it wakes the moment ANY slot frees rather
  // than after one whole victim session.  The short timeout keeps even
  // pathological shapes (sessions submitting into their own capped engine)
  // making polled progress.
  for (;;) {
    std::size_t cur = inflight_.load(std::memory_order_relaxed);
    if (max_inflight_ == 0 || cur < max_inflight_) {
      if (inflight_.compare_exchange_weak(cur, cur + 1,
                                          std::memory_order_relaxed)) {
        break;  // slot reserved
      }
      continue;  // lost the race, re-read
    }
    if (pool_->scheduler().num_workers() == 0) {
      std::shared_ptr<detail::SessionState> victim;
      {
        util::MutexLock lock(mutex_);
        sweep_completed_locked();
        for (const auto& s : sessions_) {
          if (!s->group.done()) {
            victim = s;
            break;
          }
        }
      }
      if (victim != nullptr) {
        pool_->scheduler().wait(victim->group);
      } else {
        // The counter is about to drop (a racing submitter holds a
        // reservation it has not spawned yet) — yield and re-read.
        std::this_thread::yield();
      }
    } else {
      util::UniqueLock lock(mutex_);
      slot_freed_.wait_for(lock, std::chrono::milliseconds(1), [&] {
        return inflight_.load(std::memory_order_relaxed) < max_inflight_;
      });
    }
  }
  // From here the reservation must reach the spawn or be returned — an
  // allocation throw below would otherwise shrink the cap forever.
  struct SlotGuard {
    Engine* engine;
    bool armed = true;
    ~SlotGuard() {
      if (armed) {
        engine->inflight_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
  } slot{this};

  // Injected allocation exhaustion for everything submit allocates below
  // (session state, task node, request move).  Placed after the SlotGuard
  // arms so the throw demonstrably returns the reserved slot.
  if (HMIS_FAULT_POINT("alloc.engine.submit")) throw std::bad_alloc();

  auto state = std::make_shared<detail::SessionState>(req.cancel);
  state->future = state->promise.get_future();
  auto node = std::make_unique<SessionTask>();
  node->req = std::move(req);
  node->state = state;
  node->engine = this;
  node->session_id = submitted_.fetch_add(1, std::memory_order_relaxed);
  node->group = &state->group;
  node->invoke = &Engine::run_session;

  {
    util::MutexLock lock(mutex_);
    sweep_completed_locked();
    sessions_.push_back(state);
  }
  // The slot was already reserved above; only the high-water mark is left.
  const std::size_t now = inflight_.load(std::memory_order_relaxed);
  std::size_t peak = peak_inflight_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_inflight_.compare_exchange_weak(peak, now,
                                               std::memory_order_relaxed)) {
  }

  state->group.add(1);
  try {
    pool_->scheduler().spawn(node.get());
  } catch (...) {
    state->group.cancel(1);
    // Un-count the submission: the session never existed as far as the
    // stats are concerned, so submitted == completed still reconciles
    // after a drain.  (A racing submitter may reuse the id — session_id
    // is reporting-only, so a duplicate is harmless.)
    submitted_.fetch_sub(1, std::memory_order_relaxed);
    util::MutexLock lock(mutex_);
    sessions_.erase(std::remove(sessions_.begin(), sessions_.end(), state),
                    sessions_.end());
    throw;  // SlotGuard returns the reservation
  }
  slot.armed = false;  // run_session owns the slot now
  node.release();      // owned by the scheduler until run_session frees it
  return SolveFuture(std::move(state), pool_);
}

std::vector<SolveFuture> Engine::submit_all(std::vector<SolveRequest> reqs) {
  std::vector<SolveFuture> futures;
  futures.reserve(reqs.size());
  for (auto& r : reqs) futures.push_back(submit(std::move(r)));
  return futures;
}

void Engine::drain() {
  for (;;) {
    std::shared_ptr<detail::SessionState> next;
    {
      util::MutexLock lock(mutex_);
      for (const auto& s : sessions_) {
        if (!s->group.done()) {
          next = s;
          break;
        }
      }
      if (next == nullptr) {
        sweep_completed_locked();
        return;
      }
    }
    pool_->scheduler().wait(next->group);
  }
}

void Engine::sweep_completed_locked() {
  // done() flips at the scheduler's final group decrement, after which the
  // scheduler never touches the group again — so releasing the engine's
  // reference here is safe even if the future was dropped long ago.
  sessions_.erase(
      std::remove_if(sessions_.begin(), sessions_.end(),
                     [](const auto& s) { return s->group.done(); }),
      sessions_.end());
}

EngineStats Engine::stats() const {
  EngineStats out;
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.completed = completed_.load(std::memory_order_relaxed);
  out.failed = failed_.load(std::memory_order_relaxed);
  out.cancelled = cancelled_.load(std::memory_order_relaxed);
  out.inflight = inflight_.load(std::memory_order_relaxed);
  out.peak_inflight = peak_inflight_.load(std::memory_order_relaxed);
  out.scheduler = pool_->stats() - sched_baseline_;
  return out;
}

bool SolveFuture::ready() const noexcept {
  return state_ != nullptr && state_->group.done();
}

void SolveFuture::cancel() noexcept {
  if (state_ != nullptr) state_->cancel.cancel();
}

void SolveFuture::wait() {
  HMIS_CHECK(state_ != nullptr, "wait() on an empty SolveFuture");
  pool_->scheduler().wait(state_->group);
}

SolveResponse SolveFuture::get() {
  wait();
  auto state = std::move(state_);
  return state->future.get();
}

}  // namespace hmis::engine
