// RoundContext: the reusable per-round residual lifecycle shared by the
// round-structured solvers (core/sbl, algo/bl, algo/kuw).
//
// Each round of those algorithms used to allocate fresh storage for the
// same transient structures: the sample keep-mask, the induced residual
// frame (a full CSR build), per-vertex mark bytes, the fold-back coloring
// split.  A RoundContext owns all of that scratch once per solve session
// and re-initializes it per round, so the steady-state round loop performs
// no heap allocation (bench_engine_throughput measures the difference).
// Frames come from a double-buffered FrameArena: the frame built for round
// r stays valid while round r+1 builds into the other buffer.
//
// Reuse never changes results: every accessor returns storage re-
// initialized to exactly the state a fresh allocation would have (cleared
// bitset, zeroed bytes, rebuilt frame), so algorithms using a shared
// context remain bit-identical to their historical per-round-allocation
// selves — the determinism suites cover both entry paths.
//
// The other half of the round's transient state — the batch-incidence
// gathers and compaction sweeps of the slab data plane (DESIGN.md §7) —
// is scratch owned by the MutableHypergraph those rounds mutate, reused
// across batches under the same capacity-only rule, so a steady-state
// round allocates nothing on either side.
//
// A RoundContext is single-session state: not thread-safe, one solver at a
// time.  The engine gives every concurrent session its own context.
#pragma once

#include <cstdint>
#include <vector>

#include "hmis/engine/frame_arena.hpp"
#include "hmis/hypergraph/mutable_hypergraph.hpp"
#include "hmis/util/bitset.hpp"
#include "hmis/util/cancel.hpp"

namespace hmis::engine {

class RoundContext {
 public:
  /// The session's residual shard plan: every MutableHypergraph rebuilt
  /// from this context's frames (SBL's per-round inner residual) uses this
  /// config, so one session keeps one geometry — and the engine's
  /// per-session affinity rotation reaches the round loop.  Results never
  /// depend on it (determinism contract).
  ShardConfig shards{};

  /// The session's cancellation source (null = never cancelled).  The
  /// round-structured solvers call poll_cancel() at the top of every outer
  /// round — the library-wide cancellation points (DESIGN.md §12).
  const util::CancelToken* cancel = nullptr;

  /// Throws CancelledError when the session has been cancelled.  One or
  /// two relaxed atomic loads when armed; a null token is a single branch,
  /// preserving the zero-alloc steady-state round contract.
  void poll_cancel() const {
    if (cancel != nullptr) cancel->throw_if_cancelled();
  }

  // ---- Residual frames (arena-backed, double-buffered) --------------------

  /// Build the subgraph of `mh` induced by `keep` into the next arena frame
  /// and return it.  Valid until the second frame build after this one.
  const MutableHypergraph::Induced& induced_frame(
      const MutableHypergraph& mh, const util::DynamicBitset& keep);

  /// Build a live snapshot of `mh` into the next arena frame.
  const MutableHypergraph::Induced& snapshot_frame(
      const MutableHypergraph& mh);

  // ---- Per-round scratch --------------------------------------------------

  /// Sample keep-mask: resized to n, all bits cleared.
  util::DynamicBitset& keep_mask(std::size_t n);

  /// Zeroed byte masks (BL's marked/unmarked, SBL's fold-back blue mask).
  std::vector<std::uint8_t>& marked(std::size_t n);
  std::vector<std::uint8_t>& unmarked(std::size_t n);
  std::vector<std::uint8_t>& blue_mask(std::size_t n);

  /// Zeroed per-vertex positions (KUW's permutation ranks).
  std::vector<std::uint32_t>& positions(std::size_t n);

  /// Outer vector for materialized live-edge lists (BL's degree-stats
  /// input).  Grown but never shrunk, so the inner vectors keep their
  /// capacity across rounds; callers track the live count themselves.
  std::vector<VertexList>& edge_lists() noexcept { return edge_lists_; }

  /// Fold-back split outputs (SBL's blue/red partition of a sample).
  std::vector<VertexId>& blue_out() noexcept { return blue_out_; }
  std::vector<VertexId>& red_out() noexcept { return red_out_; }

  /// Scan-offset scratch for the fold-back split (fully overwritten).
  std::vector<std::uint32_t>& split_offsets(std::size_t n) {
    split_offsets_.resize(n);
    return split_offsets_;
  }

  // ---- Instrumentation ----------------------------------------------------

  [[nodiscard]] FrameArena& arena() noexcept { return arena_; }
  [[nodiscard]] std::uint64_t frames_built() const noexcept {
    return arena_.acquires();
  }

 private:
  FrameArena arena_;
  util::DynamicBitset keep_;
  std::vector<std::uint8_t> marked_;
  std::vector<std::uint8_t> unmarked_;
  std::vector<std::uint8_t> blue_mask_;
  std::vector<std::uint32_t> positions_;
  std::vector<VertexList> edge_lists_;
  std::vector<VertexId> blue_out_;
  std::vector<VertexId> red_out_;
  std::vector<std::uint32_t> split_offsets_;
};

}  // namespace hmis::engine
