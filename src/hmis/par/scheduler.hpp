// Work-stealing task scheduler with nested fork-join (DESIGN.md §4).
//
// Replaces the single-job mutex/condvar pool dispatch: every worker owns a
// Chase–Lev deque (`work_steal_deque.hpp`), spawned tasks go to the spawning
// worker's deque (LIFO for the owner, FIFO for thieves), and threads that
// are not workers of this scheduler submit through a small injection queue.
// Waiting threads *help*: they execute queued tasks until their sync target
// is reached, so a `run_chunks`/`parallel_for` issued from inside a worker
// task completes instead of deadlocking — nested parallelism composes, and
// independent jobs from different threads interleave on the same workers.
//
// Determinism contract: the scheduler never decides *what* work exists, only
// *where* it runs.  Ranged loops split into a chunk set that is a pure
// function of (range, P) — lazy binary splitting subdivides the fixed chunk
// index range, never the decomposition itself — and chunk bodies receive the
// same chunk ids regardless of stealing.  Callers combine per-chunk partials
// in index order, so results are bit-identical for any schedule.
//
// Exception contract: the first exception raised inside a sync scope (a
// `GroupState`) is captured and rethrown at the join; for chunked loops
// every chunk still runs exactly once even when some of them throw, and the
// scheduler stays fully usable afterwards.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "hmis/par/metrics.hpp"
#include "hmis/par/work_steal_deque.hpp"
#include "hmis/util/sync.hpp"

namespace hmis::par {

class Scheduler;
class GroupState;

/// A unit of schedulable work.  Tasks are intrusive: the scheduler never
/// allocates — callers embed Task (in a stack frame that outlives the join,
/// or in a heap node that `invoke` frees) and hand out pointers.
struct Task {
  /// Runs the work.  May delete the task; the scheduler reads `group`
  /// before invoking and never touches the task afterwards.
  void (*invoke)(Task*) = nullptr;
  GroupState* group = nullptr;
};

/// Join-counter state for one fork-join scope.  Embedded by TaskGroup and by
/// the scheduler's internal chunked-loop jobs; lives on the forking frame.
class GroupState {
 public:
  /// Register n tasks about to be spawned into this scope.  Must happen
  /// before the corresponding spawn()s.
  void add(std::size_t n) noexcept {
    pending_.fetch_add(n, std::memory_order_seq_cst);
  }

  [[nodiscard]] bool done() const noexcept {
    return pending_.load(std::memory_order_seq_cst) == 0;
  }

  /// Unregister tasks whose enqueue failed (spawn threw before the task
  /// reached a queue).  Only the thread that called add() may cancel, and
  /// only for tasks never handed to the scheduler.
  void cancel(std::size_t n) noexcept {
    pending_.fetch_sub(n, std::memory_order_seq_cst);
  }

  /// Record an exception; the first one wins, later ones are dropped.
  void record_error(std::exception_ptr err) HMIS_EXCLUDES(error_mutex_);

  /// Rethrow the recorded exception, if any, clearing it first so the
  /// group is reusable after an exceptional join.  Call only after done().
  void rethrow_if_error() HMIS_EXCLUDES(error_mutex_);

 private:
  friend class Scheduler;
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> failed_{false};
  util::Mutex error_mutex_;
  std::exception_ptr error_ HMIS_GUARDED_BY(error_mutex_);
};

class Scheduler {
 public:
  /// Spawns `workers` worker threads (0 is valid: every task then runs on
  /// the thread that joins it, preserving serial semantics).
  explicit Scheduler(std::size_t workers);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] std::size_t num_workers() const noexcept {
    return workers_.size();
  }

  /// Enqueue a task whose group has already been add()-registered.  From a
  /// worker of this scheduler the task goes to that worker's own deque;
  /// from any other thread it goes to the injection queue.
  void spawn(Task* task) HMIS_EXCLUDES(inject_mutex_, sleep_mutex_);

  /// Enqueue with a placement hint: the task lands in worker
  /// (hint mod num_workers)'s mailbox (or straight on its deque when the
  /// caller IS that worker).  Hints steer locality only — every worker's
  /// steal loop also drains other mailboxes, so a hinted task can never be
  /// stranded and results never depend on placement.  With zero workers
  /// this degrades to spawn().
  void spawn_hinted(Task* task, std::size_t hint)
      HMIS_EXCLUDES(inject_mutex_, sleep_mutex_);

  /// Help-first join: execute queued tasks (own deque, injection queue,
  /// steals) until `group.done()`, sleeping only when no task is runnable
  /// anywhere.  Reentrant — tasks executed while helping may themselves
  /// spawn and wait.  Does not rethrow; callers follow with
  /// `group.rethrow_if_error()`.
  void wait(GroupState& group) HMIS_EXCLUDES(inject_mutex_, sleep_mutex_);

  /// Fork-join chunked loop: body(c) for every c in [0, chunks), exactly
  /// once each, chunk identity independent of scheduling.  The calling
  /// thread participates.  Safe to call from inside a worker task (nested)
  /// and from many threads concurrently.  Rethrows the first exception
  /// after all chunks ran.
  void run_chunks(std::size_t chunks,
                  const std::function<void(std::size_t)>& body);

  /// True when the calling thread is one of this scheduler's workers.
  [[nodiscard]] bool on_worker() const noexcept;

  [[nodiscard]] SchedulerStats stats() const noexcept {
    return {spawns_.load(std::memory_order_relaxed),
            steals_.load(std::memory_order_relaxed),
            steals_local_.load(std::memory_order_relaxed),
            steals_remote_.load(std::memory_order_relaxed),
            joins_.load(std::memory_order_relaxed)};
  }

 private:
  struct alignas(64) Worker {
    WorkStealDeque<Task> deque;
    Scheduler* sched = nullptr;
    std::size_t id = 0;
    // ---- Topology placement (constant after construction) -----------------
    int cpu = -1;   ///< planned CPU (pinned only under HMIS_PIN=1)
    int node = 0;   ///< NUMA node of the planned CPU
    std::vector<std::size_t> victims;  ///< steal order, nearest-first
    // ---- Affinity mailbox --------------------------------------------------
    // Hinted spawns for this worker.  A mutex-guarded deque, not a
    // Chase–Lev deque: only hinted spawns pass through it (a few per
    // fork-join), so contention is negligible and FIFO order is fine.
    util::Mutex mailbox_mutex;
    std::deque<Task*> mailbox HMIS_GUARDED_BY(mailbox_mutex);
    /// Lock-free emptiness hint (same protocol as inject_size_).
    std::atomic<std::size_t> mailbox_size{0};
  };

  void worker_main(Worker& self) HMIS_EXCLUDES(inject_mutex_, sleep_mutex_);
  /// Pop/steal one runnable task: own deque and mailbox first (nullptr self
  /// skips both), then the injection queue, then other workers' deques and
  /// mailboxes — workers in their nearest-first victim order, external
  /// threads by rotating cursor.
  Task* find_task(Worker* self) HMIS_EXCLUDES(inject_mutex_);
  /// Drain one task from w's mailbox (nullptr when empty).
  Task* take_mailbox(Worker& w);
  /// Run one task and resolve its group (records error, final decrement,
  /// completion wakeup).  Never throws.
  void execute(Task* task);
  /// Bump the activity epoch and wake sleepers.  Called after every spawn
  /// and every group completion; the seq_cst epoch/sleeper handshake in
  /// wait()/worker_main() makes lost wakeups impossible.
  void bump_activity() HMIS_EXCLUDES(sleep_mutex_);
  [[nodiscard]] Worker* current_worker() const noexcept;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  util::Mutex inject_mutex_;
  std::deque<Task*> injected_ HMIS_GUARDED_BY(inject_mutex_);
  /// Lock-free emptiness hint for the injection queue: find_task() skips
  /// the mutex when this reads 0, keeping the per-worker steal path free of
  /// the global lock (the activity epoch covers the race with a concurrent
  /// inject — a worker that misses the push sees the epoch bump and
  /// rescans).  Updated under inject_mutex_.
  std::atomic<std::size_t> inject_size_{0};

  util::Mutex sleep_mutex_;
  util::CondVar sleep_cv_;
  std::atomic<std::uint64_t> activity_{0};
  std::atomic<std::size_t> sleepers_{0};
  std::atomic<std::size_t> external_cursor_{0};
  std::atomic<bool> stop_{false};

  std::atomic<std::uint64_t> spawns_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> steals_local_{0};
  std::atomic<std::uint64_t> steals_remote_{0};
  std::atomic<std::uint64_t> joins_{0};
};

}  // namespace hmis::par
