// A small fixed-size thread pool with fork-join semantics.
//
// Design constraints (see DESIGN.md §4):
//  * Determinism: `run_chunks(k, f)` always invokes f(0..k-1) exactly once
//    each; callers decompose work into a *fixed* number of chunks (usually
//    `num_threads()`), so the decomposition — and therefore any per-chunk
//    partial results combined in index order — is independent of scheduling.
//  * Exception safety: the first exception thrown by any chunk is captured
//    and rethrown on the calling thread after the join.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hmis::par {

class ThreadPool {
 public:
  /// Creates `threads` workers (>=1).  0 means hardware_concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_threads() const noexcept {
    return workers_.size() + 1;  // workers plus the calling thread
  }

  /// Run f(chunk) for chunk in [0, chunks); blocks until all complete.
  /// The calling thread participates (chunk ids are handed out atomically,
  /// but every chunk runs exactly once, so deterministic decompositions
  /// remain deterministic).
  void run_chunks(std::size_t chunks, const std::function<void(std::size_t)>& f);

 private:
  struct Job {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t chunks = 0;
    std::size_t next = 0;      // next chunk to hand out
    std::size_t done = 0;      // chunks completed
    std::size_t refs = 0;      // threads currently inside drain()
    std::exception_ptr error;  // first captured exception
    std::uint64_t id = 0;      // job sequence number
  };

  void worker_loop();
  /// Pull and run chunks of the current job until exhausted.  The caller
  /// must have incremented job.refs under the mutex; drain() releases that
  /// reference on exit.  The submitter only destroys the job once
  /// done == chunks && refs == 0, so workers never touch a dead job.
  void drain(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_work_;   // signals workers: job available / stop
  std::condition_variable cv_done_;   // signals submitter: job finished
  Job* current_ = nullptr;
  std::uint64_t job_counter_ = 0;
  bool stop_ = false;
};

/// Process-wide pool used by the `hmis::par` algorithms.  Intentionally lazy:
/// first use creates it with hardware_concurrency threads.
[[nodiscard]] ThreadPool& global_pool();

/// Replace the global pool with one of `threads` threads.  Not thread-safe
/// w.r.t. concurrent global_pool() users; call at startup / between phases.
void set_global_threads(std::size_t threads);

/// The pool an algorithm should actually use for a CommonOptions-style
/// `pool` field: the caller's pool if one was supplied, else the process
/// global (never nullptr — so it can also be attached to structures like
/// MutableHypergraph whose own nullptr means "stay serial").
[[nodiscard]] inline ThreadPool* resolve_pool(ThreadPool* pool) {
  return pool != nullptr ? pool : &global_pool();
}

}  // namespace hmis::par
