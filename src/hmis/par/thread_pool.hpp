// ThreadPool: the library-facing handle on the work-stealing scheduler.
//
// Historically this was a single-job mutex/condvar pool; it is now a thin
// compatibility shim over `par::Scheduler` (DESIGN.md §4) so the primitives
// (`parallel_for`, `reduce`, `scan`, `sort`), the algorithms, and
// `MutableHypergraph` migrate without source changes.  What the shim
// guarantees:
//
//  * Determinism: `run_chunks(k, f)` invokes f(0..k-1) exactly once each;
//    callers decompose work into a *fixed* chunk set (a pure function of
//    (range, P) via `plan_chunks`), and stealing reorders execution only —
//    never the chunk set — so per-chunk partials combined in index order are
//    independent of scheduling.
//  * Nesting: run_chunks is reentrant.  Called from inside a worker task it
//    spawns onto that worker's own deque and helps while joining; called
//    concurrently from several threads the jobs interleave on the shared
//    workers.  (The old pool deadlocked on both.)
//  * Exception safety: the first exception thrown by any chunk is rethrown
//    on the calling thread after the join; every chunk still runs.
#pragma once

#include <cstddef>
#include <functional>

#include "hmis/par/scheduler.hpp"

namespace hmis::par {

class ThreadPool {
 public:
  /// Creates a pool of `threads` execution lanes (>=1): threads - 1 worker
  /// threads plus the calling thread, which always participates in joins.
  /// 0 means hardware_concurrency.
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_threads() const noexcept {
    return sched_.num_workers() + 1;  // workers plus the calling thread
  }

  /// Run f(chunk) for chunk in [0, chunks); blocks until all complete.
  /// The calling thread participates.  See the header comment for the
  /// determinism / nesting / exception guarantees.
  void run_chunks(std::size_t chunks,
                  const std::function<void(std::size_t)>& f) {
    // All fast paths (0/1 chunks, zero workers) live in the scheduler so
    // the serial-fallback policy has exactly one implementation.
    sched_.run_chunks(chunks, f);
  }

  /// The underlying scheduler, for TaskGroup and direct task spawning.
  [[nodiscard]] Scheduler& scheduler() noexcept { return sched_; }

  /// Lifetime spawn/steal/join counters (monotonic; subtract snapshots to
  /// meter a phase — `hmis solve --stats` does exactly that).
  [[nodiscard]] SchedulerStats stats() const noexcept {
    return sched_.stats();
  }

 private:
  Scheduler sched_;
};

/// Process-wide pool used by the `hmis::par` algorithms.  Lazy: first use
/// creates it with hardware_concurrency threads.  Thread-safe, including
/// concurrent first use (double-checked atomic publication under a mutex).
[[nodiscard]] ThreadPool& global_pool();

/// Replace the global pool with one of `threads` threads.  Thread-safe
/// w.r.t. concurrent global_pool() users: the swap is an atomic pointer
/// publication, and superseded pools are retired (kept alive until process
/// exit) rather than destroyed, so references obtained earlier stay valid.
/// A retired pool with the requested size is republished instead of
/// building a new one, so alternating thread counts between phases does
/// not grow the retired set.
void set_global_threads(std::size_t threads);

/// The pool an algorithm should actually use for a CommonOptions-style
/// `pool` field: the caller's pool if one was supplied, else the process
/// global (never nullptr — so it can also be attached to structures like
/// MutableHypergraph whose own nullptr means "stay serial").
[[nodiscard]] inline ThreadPool* resolve_pool(ThreadPool* pool) {
  return pool != nullptr ? pool : &global_pool();
}

}  // namespace hmis::par
