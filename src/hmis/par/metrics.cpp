#include "hmis/par/metrics.hpp"

#include "hmis/util/math.hpp"

namespace hmis::par {

std::uint64_t map_depth(std::uint64_t n) noexcept { return n == 0 ? 0 : 1; }

std::uint64_t log_depth(std::uint64_t n) noexcept {
  return n <= 1 ? 1 : hmis::util::ceil_log2(n);
}

std::uint64_t sort_depth(std::uint64_t n) noexcept {
  const std::uint64_t l = log_depth(n);
  return l * l;
}

std::uint64_t sort_work(std::uint64_t n) noexcept {
  return n * (log_depth(n) + 1);
}

}  // namespace hmis::par
