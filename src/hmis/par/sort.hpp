// Deterministic parallel merge sort: P sorted runs (fixed decomposition)
// merged pairwise in a fixed tree order.  std::sort for small inputs.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "hmis/par/parallel_for.hpp"

namespace hmis::par {

/// Built-in minimum items per sorted run: coarser than kMinGrain because a
/// run costs O(k log k), not O(k).  The HMIS_GRAIN override still wins, so
/// the one knob tunes every primitive (grain = 0 means that default).
inline constexpr std::size_t kSortGrain = 4096;

template <typename T, typename Compare = std::less<T>>
void parallel_sort(std::vector<T>& data, Compare cmp = Compare{},
                   Metrics* metrics = nullptr, ThreadPool* pool = nullptr,
                   std::size_t grain = 0) {
  const std::size_t n = data.size();
  ThreadPool& tp = pool ? *pool : global_pool();
  if (grain == 0) {
    const std::size_t env = env_grain();
    grain = env != 0 ? env : kSortGrain;
  }
  const ChunkPlan plan = plan_chunks(n, tp.num_threads(), grain);
  if (metrics) metrics->add(sort_work(n), sort_depth(n));
  if (plan.chunks <= 1) {
    std::sort(data.begin(), data.end(), cmp);
    return;
  }
  struct Run {
    std::size_t lo, hi;
  };
  std::vector<Run> runs;
  runs.reserve(plan.chunks);
  for (std::size_t c = 0; c < plan.chunks; ++c) {
    const std::size_t lo = c * plan.chunk_size;
    const std::size_t hi = std::min(n, lo + plan.chunk_size);
    if (lo < hi) runs.push_back({lo, hi});
  }
  tp.run_chunks(runs.size(), [&](std::size_t c) {
    std::sort(data.begin() + static_cast<std::ptrdiff_t>(runs[c].lo),
              data.begin() + static_cast<std::ptrdiff_t>(runs[c].hi), cmp);
  });
  // Pairwise merge tree; each level merges adjacent runs in parallel.
  std::vector<T> buffer(n);
  bool data_is_source = true;
  while (runs.size() > 1) {
    std::vector<Run> next;
    next.reserve((runs.size() + 1) / 2);
    const std::size_t pairs = runs.size() / 2;
    auto* src = data_is_source ? &data : &buffer;
    auto* dst = data_is_source ? &buffer : &data;
    tp.run_chunks(pairs, [&](std::size_t p) {
      const Run a = runs[2 * p];
      const Run b = runs[2 * p + 1];
      std::merge(src->begin() + static_cast<std::ptrdiff_t>(a.lo),
                 src->begin() + static_cast<std::ptrdiff_t>(a.hi),
                 src->begin() + static_cast<std::ptrdiff_t>(b.lo),
                 src->begin() + static_cast<std::ptrdiff_t>(b.hi),
                 dst->begin() + static_cast<std::ptrdiff_t>(a.lo), cmp);
    });
    for (std::size_t p = 0; p < pairs; ++p) {
      next.push_back({runs[2 * p].lo, runs[2 * p + 1].hi});
    }
    if (runs.size() % 2 == 1) {
      // Odd run out: copy through so every element lives in dst.
      const Run tail = runs.back();
      std::copy(src->begin() + static_cast<std::ptrdiff_t>(tail.lo),
                src->begin() + static_cast<std::ptrdiff_t>(tail.hi),
                dst->begin() + static_cast<std::ptrdiff_t>(tail.lo));
      next.push_back(tail);
    }
    runs = std::move(next);
    data_is_source = !data_is_source;
  }
  if (!data_is_source) data.swap(buffer);
}

}  // namespace hmis::par
