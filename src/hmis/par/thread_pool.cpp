#include "hmis/par/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "hmis/par/parallel_for.hpp"
#include "hmis/util/sync.hpp"

namespace hmis::par {

namespace {

std::size_t resolve_thread_count(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return threads;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads)
    : sched_(resolve_thread_count(threads) - 1) {}

namespace {

// Global-pool slot.  Readers take the lock-free acquire path once the pool
// exists; creation and swaps serialize on the mutex.  Swapped-out pools are
// *retired*, not destroyed: a thread that resolved the previous pool may
// still be running chunks on it, and joining its workers under a concurrent
// user would be a use-after-free — the retired list keeps every pool alive
// (its workers idle on a condvar) until process exit.
struct GlobalPoolSlot {
  util::Mutex mutex;
  std::atomic<ThreadPool*> current{nullptr};
  std::vector<std::unique_ptr<ThreadPool>> owned HMIS_GUARDED_BY(mutex);
};

GlobalPoolSlot& pool_slot() {
  static GlobalPoolSlot slot;
  return slot;
}

}  // namespace

ThreadPool& global_pool() {
  GlobalPoolSlot& slot = pool_slot();
  if (ThreadPool* pool = slot.current.load(std::memory_order_acquire)) {
    return *pool;
  }
  const util::MutexLock lock(slot.mutex);
  if (ThreadPool* pool = slot.current.load(std::memory_order_relaxed)) {
    return *pool;  // another thread won the race to create it
  }
  slot.owned.push_back(std::make_unique<ThreadPool>());
  ThreadPool* pool = slot.owned.back().get();
  slot.current.store(pool, std::memory_order_release);
  return *pool;
}

void set_global_threads(std::size_t threads) {
  const std::size_t want = threads == 0 ? 1 : threads;
  // The default grain tracks the global pool's width (HMIS_GRAIN, read
  // once, still overrides inside default_grain()).  Re-derived here — the
  // explicit reconfiguration point — not per call, so within one
  // configuration the grain stays a constant of the run.
  detail::rederive_grain_for_width(want);
  GlobalPoolSlot& slot = pool_slot();
  {
    // Republish an existing pool of the right size when one is available —
    // the current pool or a retired one — so processes that toggle the
    // thread count per phase reuse workers instead of accumulating a new
    // pool (and its parked threads) on every call.
    const util::MutexLock lock(slot.mutex);
    for (const auto& pool : slot.owned) {
      if (pool->num_threads() == want) {
        slot.current.store(pool.get(), std::memory_order_release);
        return;
      }
    }
  }
  // No match: build the pool outside the lock (thread spawning is slow),
  // then publish.  A concurrent same-size call may race us here and retire
  // one redundant pool — growth stays bounded by the set of sizes used.
  auto replacement = std::make_unique<ThreadPool>(want);
  const util::MutexLock lock(slot.mutex);
  slot.owned.push_back(std::move(replacement));
  slot.current.store(slot.owned.back().get(), std::memory_order_release);
}

}  // namespace hmis::par
