#include "hmis/par/thread_pool.hpp"

#include <memory>

namespace hmis::par {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t last_seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock, [&] {
        return stop_ || (current_ != nullptr && current_->id != last_seen &&
                         current_->next < current_->chunks);
      });
      if (stop_) return;
      job = current_;
      last_seen = job->id;
      ++job->refs;  // keeps *job alive until drain() releases it
    }
    drain(*job);
  }
}

void ThreadPool::drain(Job& job) {
  for (;;) {
    std::size_t chunk;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (job.next >= job.chunks) break;
      chunk = job.next++;
    }
    std::exception_ptr err;
    try {
      (*job.body)(chunk);
    } catch (...) {
      err = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (err && !job.error) job.error = err;
      ++job.done;
    }
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    --job.refs;
    if (job.done == job.chunks && job.refs == 0) {
      cv_done_.notify_all();
    }
  }
}

void ThreadPool::run_chunks(std::size_t chunks,
                            const std::function<void(std::size_t)>& f) {
  if (chunks == 0) return;
  if (chunks == 1 || workers_.empty()) {
    for (std::size_t c = 0; c < chunks; ++c) f(c);
    return;
  }
  Job job;
  job.body = &f;
  job.chunks = chunks;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job.id = ++job_counter_;
    job.refs = 1;  // the submitting thread's reference
    current_ = &job;
  }
  cv_work_.notify_all();
  drain(job);  // calling thread participates and releases its reference
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] { return job.done == job.chunks && job.refs == 0; });
    current_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

namespace {
std::unique_ptr<ThreadPool>& pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}
}  // namespace

ThreadPool& global_pool() {
  auto& slot = pool_slot();
  if (!slot) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void set_global_threads(std::size_t threads) {
  pool_slot() = std::make_unique<ThreadPool>(threads == 0 ? 1 : threads);
}

}  // namespace hmis::par
