#include "hmis/par/topology.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace hmis::par {

namespace {

/// Read a small sysfs file; empty string on failure.
[[nodiscard]] std::string read_sysfs(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Parse one decimal integer out of [first, last); -1 on failure.
[[nodiscard]] int parse_int(const char* first, const char* last) noexcept {
  int value = -1;
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || value < 0) return -1;
  return value;
}

/// Parse a whole sysfs integer file (e.g. topology/core_id); -1 on failure.
[[nodiscard]] int read_sysfs_int(const std::string& path) {
  const std::string text = read_sysfs(path);
  return parse_int(text.data(), text.data() + text.size());
}

[[nodiscard]] Topology probe_topology() {
#if defined(__linux__)
  Topology topo;
  topo.num_nodes = 0;
  // Node enumeration: node ids are dense in practice but the probe tolerates
  // gaps by scanning a bounded id range past the first miss.
  int misses = 0;
  for (int node = 0; misses < 8 && node < 1024; ++node) {
    const std::string list = read_sysfs("/sys/devices/system/node/node" +
                                        std::to_string(node) + "/cpulist");
    if (list.empty()) {
      ++misses;
      continue;
    }
    misses = 0;
    const std::vector<int> cpus = parse_cpu_list(list);
    for (const int cpu : cpus) {
      CpuInfo info;
      info.cpu = cpu;
      info.node = node;
      const std::string base =
          "/sys/devices/system/cpu/cpu" + std::to_string(cpu) + "/topology/";
      const int core = read_sysfs_int(base + "core_id");
      const int package = read_sysfs_int(base + "physical_package_id");
      // Partial sysfs (no per-cpu topology): treat each CPU as its own
      // core on package 0 — placement still avoids double-booking.
      info.core = core >= 0 ? core : cpu;
      info.package = package >= 0 ? package : 0;
      topo.cpus.push_back(info);
    }
    ++topo.num_nodes;
  }
  if (!topo.cpus.empty()) {
    std::sort(topo.cpus.begin(), topo.cpus.end(),
              [](const CpuInfo& a, const CpuInfo& b) { return a.cpu < b.cpu; });
    topo.num_nodes = std::max(topo.num_nodes, 1);
    return topo;
  }
#endif
  return fallback_topology(
      std::max<std::size_t>(1, std::thread::hardware_concurrency()));
}

}  // namespace

std::vector<int> parse_cpu_list(std::string_view text) {
  std::vector<int> out;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() &&
           (text[i] == ' ' || text[i] == '\n' || text[i] == '\t')) {
      ++i;
    }
  };
  skip_ws();
  while (i < text.size()) {
    const char* first = text.data() + i;
    int lo = -1;
    const auto [p1, e1] = std::from_chars(first, text.data() + text.size(), lo);
    if (e1 != std::errc{} || lo < 0) return {};
    i = static_cast<std::size_t>(p1 - text.data());
    int hi = lo;
    if (i < text.size() && text[i] == '-') {
      ++i;
      const auto [p2, e2] =
          std::from_chars(text.data() + i, text.data() + text.size(), hi);
      if (e2 != std::errc{} || hi < lo) return {};
      i = static_cast<std::size_t>(p2 - text.data());
    }
    for (int c = lo; c <= hi; ++c) out.push_back(c);
    skip_ws();
    if (i == text.size()) break;
    if (text[i] != ',') return {};
    ++i;
    skip_ws();
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Topology fallback_topology(std::size_t cpus) {
  Topology topo;
  topo.num_nodes = 1;
  topo.cpus.reserve(cpus);
  for (std::size_t c = 0; c < cpus; ++c) {
    CpuInfo info;
    info.cpu = static_cast<int>(c);
    info.node = 0;
    info.package = 0;
    info.core = static_cast<int>(c);
    topo.cpus.push_back(info);
  }
  return topo;
}

const Topology& Topology::system() {
  static const Topology cached = probe_topology();
  return cached;
}

std::vector<CpuInfo> plan_worker_cpus(const Topology& topo,
                                      std::size_t workers) {
  std::vector<CpuInfo> order = topo.cpus;
  if (order.empty()) order = fallback_topology(1).cpus;
  // smt_rank: a CPU's index among the threads of its own core.  Rank-0
  // threads (one per physical core) come first in the placement order.
  std::sort(order.begin(), order.end(),
            [](const CpuInfo& a, const CpuInfo& b) {
              if (a.node != b.node) return a.node < b.node;
              if (a.package != b.package) return a.package < b.package;
              if (a.core != b.core) return a.core < b.core;
              return a.cpu < b.cpu;
            });
  std::vector<int> smt_rank(order.size(), 0);
  for (std::size_t i = 1; i < order.size(); ++i) {
    const bool same_core = order[i].node == order[i - 1].node &&
                           order[i].package == order[i - 1].package &&
                           order[i].core == order[i - 1].core;
    smt_rank[i] = same_core ? smt_rank[i - 1] + 1 : 0;
  }
  std::vector<std::size_t> idx(order.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return smt_rank[a] < smt_rank[b];
  });
  std::vector<CpuInfo> placement;
  placement.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    placement.push_back(order[idx[w % idx.size()]]);
  }
  return placement;
}

std::vector<std::vector<std::size_t>> plan_victim_orders(
    const std::vector<CpuInfo>& workers) {
  const std::size_t n = workers.size();
  std::vector<std::vector<std::size_t>> orders(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto& order = orders[i];
    order.reserve(n == 0 ? 0 : n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) order.push_back(j);
    }
    const auto distance = [&](std::size_t j) {
      if (workers[j].node != workers[i].node) return 2;
      if (workers[j].package == workers[i].package &&
          workers[j].core == workers[i].core) {
        return 0;
      }
      return 1;
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       const int da = distance(a);
                       const int db = distance(b);
                       if (da != db) return da < db;
                       // Rotate ties by (victim - self) so worker i starts
                       // its scan at its right-hand neighbour, i+1 at its
                       // own — thieves fan out instead of convoying.
                       return (a + n - i) % n < (b + n - i) % n;
                     });
  }
  return orders;
}

bool pin_workers_enabled() {
  static const bool cached = [] {
    const char* v = std::getenv("HMIS_PIN");
    return v != nullptr && v[0] == '1' && v[1] == '\0';
  }();
  return cached;
}

void pin_current_thread(int cpu) {
#if defined(__linux__)
  if (cpu < 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  // Best effort: failure (cgroup restrictions, offline CPU) leaves the
  // thread floating, which is always correct.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpu;
#endif
}

}  // namespace hmis::par
