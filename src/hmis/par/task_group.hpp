// TaskGroup: nested fork-join over arbitrary closures (DESIGN.md §4).
//
//   par::TaskGroup g(pool);
//   g.run([&] { left = solve(a); });    // spawned, may be stolen
//   right = solve(b);                   // calling thread works too
//   g.wait();                           // helps until done; rethrows first error
//
// run() is legal from any thread, including from inside tasks running on the
// same pool — spawns go to the current worker's deque (or the injection
// queue from foreign threads) and wait() *helps* instead of blocking, so
// nesting composes without deadlock.  Closures that the group schedules may
// themselves call parallel_for / run_chunks / TaskGroup on the same pool.
// Structural caveat: a run() issued from another thread must happen-before
// the owner's wait() (or come from inside a still-pending closure of this
// group, which holds the join open) — wait() returns the moment the pending
// count reaches zero, so a racing external run() can land after the join
// observed an empty group (and after the owner destroyed it).
//
// Determinism: the scheduler only decides where a closure runs, never
// whether — keep closures free of cross-closure data dependencies (or
// independently deterministic, like two read-only scans) and results stay
// bit-identical for any thread count, including the 0-worker pool where
// run() defers and wait() executes everything inline.
//
// Exceptions: the first exception thrown by any closure is rethrown by
// wait(); the others are dropped.  The destructor joins (without throwing)
// if wait() was not reached, so unwinding past a live group is safe.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

#include "hmis/par/scheduler.hpp"
#include "hmis/par/thread_pool.hpp"

namespace hmis::par {

class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : sched_(pool.scheduler()) {}
  explicit TaskGroup(Scheduler& sched) : sched_(sched) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  ~TaskGroup() {
    // A group abandoned mid-flight (early return, exception unwind) must
    // still join — spawned closures reference the caller's frame.  Errors
    // are intentionally swallowed here; call wait() to observe them.
    if (!state_.done()) sched_.wait(state_);
  }

  /// Spawn f() as a task of this group.  The closure is copied/moved into a
  /// heap node freed after execution.
  template <typename F>
  void run(F&& f) {
    using Fn = std::decay_t<F>;
    struct Node : Task {
      explicit Node(Fn&& fn) : fn(std::move(fn)) {}
      Fn fn;
    };
    auto node = std::make_unique<Node>(Fn(std::forward<F>(f)));
    node->group = &state_;
    node->invoke = [](Task* t) {
      const std::unique_ptr<Node> self(static_cast<Node*>(t));
      self->fn();
    };
    state_.add(1);
    try {
      sched_.spawn(node.get());
    } catch (...) {
      // Enqueue failed (allocation): the task never reached a queue, so the
      // registration must be undone or wait() would block forever.  The
      // node is still owned here and freed on unwind.
      state_.cancel(1);
      throw;
    }
    node.release();  // now owned by the scheduler / its own invoke
  }

  /// Join: help-run queued tasks until every closure of this group
  /// finished, then rethrow the first captured exception (if any).  The
  /// group is reusable after wait() returns — normally or by throw (the
  /// rethrow clears the recorded error).
  void wait() {
    sched_.wait(state_);
    state_.rethrow_if_error();
  }

 private:
  Scheduler& sched_;
  GroupState state_;
};

}  // namespace hmis::par
