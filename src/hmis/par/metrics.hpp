// Work/depth metering for the parallel primitives.
//
// Every `hmis::par` algorithm reports the cost of its *idealized EREW PRAM
// realization* (DESIGN.md §4): map contributes depth O(1), reduce and scan
// depth ceil(log2 n), sort depth O(log^2 n).  Attaching a Metrics object to
// calls lets the benches report machine-independent totals (Table 2).
#pragma once

#include <cstdint>

namespace hmis::par {

struct Metrics {
  std::uint64_t work = 0;   // total operations across processors
  std::uint64_t depth = 0;  // parallel time (EREW model)
  std::uint64_t calls = 0;  // number of primitive invocations

  void add(std::uint64_t w, std::uint64_t d) noexcept {
    work += w;
    depth += d;
    ++calls;
  }
  void merge(const Metrics& other) noexcept {
    work += other.work;
    depth += other.depth;
    calls += other.calls;
  }
  void reset() noexcept { *this = Metrics{}; }
};

/// Runtime counters from the work-stealing scheduler (DESIGN.md §4): tasks
/// spawned onto a deque or the injection queue, successful steals, and
/// completed fork-join syncs (group waits / chunked-loop joins).  Counters
/// are monotonic over a pool's lifetime; subtract two snapshots
/// (`ThreadPool::stats()`) to meter one phase.  They describe *scheduling*,
/// not algorithmic cost — by the determinism contract they may vary run to
/// run while `Metrics` (and every algorithm result) stays bit-identical.
struct SchedulerStats {
  std::uint64_t spawns = 0;
  std::uint64_t steals = 0;        // total = steals_local + steals_remote
  std::uint64_t steals_local = 0;  // victim on the thief's NUMA node
  std::uint64_t steals_remote = 0; // cross-node victim, or external thief
  std::uint64_t joins = 0;
};

[[nodiscard]] constexpr SchedulerStats operator-(
    SchedulerStats a, const SchedulerStats& b) noexcept {
  return {a.spawns - b.spawns, a.steals - b.steals,
          a.steals_local - b.steals_local, a.steals_remote - b.steals_remote,
          a.joins - b.joins};
}

/// EREW depth charged for a data-parallel map over n items.
[[nodiscard]] std::uint64_t map_depth(std::uint64_t n) noexcept;
/// EREW depth charged for a tree reduction / Blelloch scan over n items.
[[nodiscard]] std::uint64_t log_depth(std::uint64_t n) noexcept;
/// EREW depth charged for a parallel merge sort over n items.
[[nodiscard]] std::uint64_t sort_depth(std::uint64_t n) noexcept;
/// Work charged for a parallel merge sort over n items (n log n).
[[nodiscard]] std::uint64_t sort_work(std::uint64_t n) noexcept;

}  // namespace hmis::par
