// Work/depth metering for the parallel primitives.
//
// Every `hmis::par` algorithm reports the cost of its *idealized EREW PRAM
// realization* (DESIGN.md §4): map contributes depth O(1), reduce and scan
// depth ceil(log2 n), sort depth O(log^2 n).  Attaching a Metrics object to
// calls lets the benches report machine-independent totals (Table 2).
#pragma once

#include <cstdint>

namespace hmis::par {

struct Metrics {
  std::uint64_t work = 0;   // total operations across processors
  std::uint64_t depth = 0;  // parallel time (EREW model)
  std::uint64_t calls = 0;  // number of primitive invocations

  void add(std::uint64_t w, std::uint64_t d) noexcept {
    work += w;
    depth += d;
    ++calls;
  }
  void merge(const Metrics& other) noexcept {
    work += other.work;
    depth += other.depth;
    calls += other.calls;
  }
  void reset() noexcept { *this = Metrics{}; }
};

/// EREW depth charged for a data-parallel map over n items.
[[nodiscard]] std::uint64_t map_depth(std::uint64_t n) noexcept;
/// EREW depth charged for a tree reduction / Blelloch scan over n items.
[[nodiscard]] std::uint64_t log_depth(std::uint64_t n) noexcept;
/// EREW depth charged for a parallel merge sort over n items.
[[nodiscard]] std::uint64_t sort_depth(std::uint64_t n) noexcept;
/// Work charged for a parallel merge sort over n items (n log n).
[[nodiscard]] std::uint64_t sort_work(std::uint64_t n) noexcept;

}  // namespace hmis::par
