#include "hmis/par/scheduler.hpp"

#include <algorithm>
#include <new>

#include "hmis/par/topology.hpp"
#include "hmis/util/fault.hpp"

namespace hmis::par {

namespace {

/// Identifies the scheduler (if any) whose worker is running on this thread.
/// A worker of pool A that calls into pool B takes B's external-submitter
/// path — the pair pins task spawns to the correct deque.
struct ThreadBinding {
  const Scheduler* sched = nullptr;
  void* worker = nullptr;
};
thread_local ThreadBinding tls_binding;

}  // namespace

// ---- GroupState ------------------------------------------------------------

void GroupState::record_error(std::exception_ptr err) {
  const util::MutexLock lock(error_mutex_);
  if (!error_) {
    error_ = std::move(err);
    failed_.store(true, std::memory_order_release);
  }
}

void GroupState::rethrow_if_error() {
  if (!failed_.load(std::memory_order_acquire)) return;
  // done() was reached, so every writer finished; the lock only orders this
  // reset against a hypothetical late record_error.  Clearing before the
  // rethrow makes the group reusable after an exceptional wait — without it
  // the stale error would poison every later join.
  std::exception_ptr err;
  {
    const util::MutexLock lock(error_mutex_);
    err = std::move(error_);
    error_ = nullptr;
    failed_.store(false, std::memory_order_release);
  }
  std::rethrow_exception(err);
}

// ---- Scheduler lifecycle ---------------------------------------------------

Scheduler::Scheduler(std::size_t workers) {
  // Topology-aware placement: one planned CPU per worker (cores before SMT
  // siblings, node-packed) and a nearest-first victim order derived from
  // it.  On single-node machines (or without sysfs) every victim is
  // "local" and the order degenerates to the classic rotation.
  const std::vector<CpuInfo> placement =
      plan_worker_cpus(Topology::system(), workers);
  std::vector<std::vector<std::size_t>> victim_orders =
      plan_victim_orders(placement);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->sched = this;
    w->id = i;
    w->cpu = placement[i].cpu;
    w->node = placement[i].node;
    w->victims = std::move(victim_orders[i]);
    workers_.push_back(std::move(w));
  }
  // Launch only after workers_ is fully built: worker threads scan the
  // vector (victim selection) from their first instant.
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_main(*workers_[i]); });
  }
}

Scheduler::~Scheduler() {
  stop_.store(true, std::memory_order_seq_cst);
  bump_activity();
  for (auto& t : threads_) t.join();
}

Scheduler::Worker* Scheduler::current_worker() const noexcept {
  return tls_binding.sched == this ? static_cast<Worker*>(tls_binding.worker)
                                   : nullptr;
}

bool Scheduler::on_worker() const noexcept {
  return current_worker() != nullptr;
}

// ---- Dispatch --------------------------------------------------------------

void Scheduler::spawn(Task* task) {
  // Injected spawn failure = deque/mailbox growth hitting allocation
  // exhaustion.  Every caller already has a recovery contract: run_chunks
  // falls back to inline execution, TaskGroup callers cancel() the
  // registration, and Engine::submit unwinds the session (see the catch
  // blocks at each call site) — so a throw here must never lose a task.
  if (HMIS_FAULT_POINT("sched.spawn")) throw std::bad_alloc();
  spawns_.fetch_add(1, std::memory_order_relaxed);
  if (Worker* self = current_worker()) {
    self->deque.push(task);
  } else {
    const util::MutexLock lock(inject_mutex_);
    injected_.push_back(task);
    inject_size_.store(injected_.size(), std::memory_order_relaxed);
  }
  bump_activity();
}

void Scheduler::spawn_hinted(Task* task, std::size_t hint) {
  if (workers_.empty()) {
    spawn(task);
    return;
  }
  spawns_.fetch_add(1, std::memory_order_relaxed);
  Worker& target = *workers_[hint % workers_.size()];
  if (current_worker() == &target) {
    target.deque.push(task);
  } else {
    const util::MutexLock lock(target.mailbox_mutex);
    target.mailbox.push_back(task);
    target.mailbox_size.store(target.mailbox.size(),
                              std::memory_order_relaxed);
  }
  bump_activity();
}

Task* Scheduler::take_mailbox(Worker& w) {
  if (w.mailbox_size.load(std::memory_order_relaxed) == 0) return nullptr;
  const util::MutexLock lock(w.mailbox_mutex);
  if (w.mailbox.empty()) return nullptr;
  Task* t = w.mailbox.front();
  w.mailbox.pop_front();
  w.mailbox_size.store(w.mailbox.size(), std::memory_order_relaxed);
  return t;
}

void Scheduler::bump_activity() {
  activity_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    // Empty critical section: serializes with a sleeper between its
    // predicate check and its actual sleep, closing the notify window.
    const util::MutexLock lock(sleep_mutex_);
    sleep_cv_.notify_all();
  }
}

Task* Scheduler::find_task(Worker* self) {
  if (self != nullptr) {
    if (Task* t = self->deque.pop()) return t;
    if (Task* t = take_mailbox(*self)) return t;
  }
  if (inject_size_.load(std::memory_order_relaxed) != 0) {
    const util::MutexLock lock(inject_mutex_);
    if (!injected_.empty()) {
      Task* t = injected_.front();
      injected_.pop_front();
      inject_size_.store(injected_.size(), std::memory_order_relaxed);
      return t;
    }
  }
  const std::size_t n = workers_.size();
  if (n == 0) return nullptr;
  const auto rob = [&](Worker& victim, bool local) -> Task* {
    Task* t = victim.deque.steal();
    // A victim's mailbox is fair game too: hints steer locality, they never
    // gate progress — an idle thief beats a busy "preferred" worker.
    if (t == nullptr) t = take_mailbox(victim);
    if (t == nullptr) return nullptr;
    steals_.fetch_add(1, std::memory_order_relaxed);
    (local ? steals_local_ : steals_remote_)
        .fetch_add(1, std::memory_order_relaxed);
    return t;
  };
  if (self != nullptr) {
    // Nearest-first: same-core victims, then same-node, then remote — the
    // order was planned from the machine topology at construction.
    for (const std::size_t j : self->victims) {
      Worker& victim = *workers_[j];
      if (Task* t = rob(victim, victim.node == self->node)) return t;
    }
    return nullptr;
  }
  // External thief (a non-worker thread helping in wait()): no topology
  // position, so rotate round-robin and count the steal as remote.
  const std::size_t start =
      external_cursor_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t k = 0; k < n; ++k) {
    Worker& victim = *workers_[(start + k) % n];
    if (Task* t = rob(victim, /*local=*/false)) return t;
  }
  return nullptr;
}

void Scheduler::execute(Task* task) {
  // invoke may delete the task (heap-allocated closures), so the group
  // pointer is read first and the task is never touched afterwards.
  GroupState* group = task->group;
  std::exception_ptr err;
  try {
    task->invoke(task);
  } catch (...) {
    err = std::current_exception();
  }
  if (err) group->record_error(std::move(err));
  // After this decrement the group may be destroyed by a waiter at any
  // moment — only scheduler-owned state may be touched from here on.
  if (group->pending_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    bump_activity();
  }
}

void Scheduler::worker_main(Worker& self) {
  tls_binding = {this, &self};
  // Placement is advisory by default; HMIS_PIN=1 turns it into an actual
  // affinity mask (best effort — see topology.hpp for why this is opt-in).
  if (pin_workers_enabled()) pin_current_thread(self.cpu);
  for (;;) {
    // Epoch before the scan: any spawn that the scan misses bumps the epoch
    // afterwards, so the sleep predicate below sees it (seq_cst handshake
    // with bump_activity's sleeper check).
    const std::uint64_t activity = activity_.load(std::memory_order_seq_cst);
    if (Task* t = find_task(&self)) {
      execute(t);
      continue;
    }
    if (stop_.load(std::memory_order_seq_cst)) return;
    util::UniqueLock lock(sleep_mutex_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    sleep_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_seq_cst) ||
             activity_.load(std::memory_order_seq_cst) != activity;
    });
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Scheduler::wait(GroupState& group) {
  Worker* self = current_worker();
  while (!group.done()) {
    const std::uint64_t activity = activity_.load(std::memory_order_seq_cst);
    if (Task* t = find_task(self)) {
      // Helping may run tasks from unrelated jobs — that is what lets
      // independent submissions and nested loops share one set of workers.
      execute(t);
      continue;
    }
    if (group.done()) break;
    util::UniqueLock lock(sleep_mutex_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    sleep_cv_.wait(lock, [&] {
      return group.done() ||
             activity_.load(std::memory_order_seq_cst) != activity;
    });
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }
  joins_.fetch_add(1, std::memory_order_relaxed);
}

// ---- Chunked fork-join loops -----------------------------------------------

namespace {

struct RangeJob;

/// One contiguous slice [lo, hi) of the chunk index range.  Slices larger
/// than one chunk split on execution (lazy binary splitting): the upper half
/// is exposed for stealing, the executing thread recurses into the lower
/// half, so decomposition cost is paid only when parallelism is realized.
struct alignas(64) RangeTask : Task {
  std::size_t lo = 0;
  std::size_t hi = 0;
  RangeJob* job = nullptr;
};

struct RangeJob {
  const std::function<void(std::size_t)>* body = nullptr;
  Scheduler* sched = nullptr;
  GroupState group;
  /// Split-off tasks live here, not on any stack: a child may outlive the
  /// frame of the task that split it.  Binary splitting of `chunks` unit
  /// chunks creates at most chunks - 1 children, so slots never run out
  /// (the fetch_add guard is belt and braces — splitting just stops).
  std::vector<RangeTask> slots;
  std::atomic<std::size_t> next_slot{0};
};

void range_invoke(Task* task) {
  auto* rt = static_cast<RangeTask*>(task);
  RangeJob& job = *rt->job;
  std::size_t lo = rt->lo;
  std::size_t hi = rt->hi;
  while (hi - lo > 1) {
    const std::size_t slot =
        job.next_slot.fetch_add(1, std::memory_order_relaxed);
    if (slot >= job.slots.size()) break;
    const std::size_t mid = lo + (hi - lo) / 2;
    RangeTask& child = job.slots[slot];
    child.invoke = &range_invoke;
    child.group = &job.group;
    child.lo = mid;
    child.hi = hi;
    child.job = &job;
    job.group.add(1);
    try {
      job.sched->spawn(&child);
    } catch (...) {
      // Deque growth failed: undo the registration and stop splitting —
      // the loop below runs the whole remaining slice [lo, hi) inline, so
      // every chunk still executes exactly once.  (Undoing is safe against
      // sleeping waiters because this task's own pending count is not yet
      // decremented, so the group cannot complete here.)
      job.group.cancel(1);
      break;
    }
    hi = mid;
  }
  for (std::size_t c = lo; c < hi; ++c) {
    // Per-chunk catch preserves the pool contract: every chunk runs exactly
    // once even when earlier chunks throw; the first exception wins.
    try {
      (*job.body)(c);
    } catch (...) {
      job.group.record_error(std::current_exception());
    }
  }
}

}  // namespace

void Scheduler::run_chunks(std::size_t chunks,
                           const std::function<void(std::size_t)>& body) {
  if (chunks == 0) return;
  if (chunks == 1) {
    body(0);  // single chunk: both contract clauses hold trivially
    return;
  }
  if (workers_.empty()) {
    // Serial fallback keeps the exact parallel exception contract — every
    // chunk runs, the first exception is rethrown after — so exception-path
    // side effects do not diverge across thread counts.
    std::exception_ptr first;
    for (std::size_t c = 0; c < chunks; ++c) {
      try {
        body(c);
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }
  RangeJob job;
  job.body = &body;
  job.sched = this;
  job.slots.resize(chunks - 1);
  RangeTask root;
  root.invoke = &range_invoke;
  root.group = &job.group;
  root.lo = 0;
  root.hi = chunks;
  root.job = &job;
  job.group.add(1);
  spawns_.fetch_add(1, std::memory_order_relaxed);
  // The submitting thread executes the root directly: it splits the upper
  // halves off for the workers and keeps the first chunk for itself — same
  // participation guarantee as the old pool, without a handoff latency.
  execute(&root);
  wait(job.group);
  job.group.rethrow_if_error();
}

}  // namespace hmis::par
