// Deterministic cross-shard merge layer (DESIGN.md §10).
//
// The sharded data plane fans gathers out per shard; each shard produces a
// sorted duplicate-free run of edge ids.  These helpers combine the runs
// into one ascending list whose content depends only on the runs' union —
// never on shard count, chunking, or execution order — which is the step
// that keeps results byte-identical across shard counts.
//
// Two sparse flavours:
//  * concat_sorted_runs_into — the data-plane fast path.  Shards cover
//    DISJOINT ascending edge ranges, so the k-way merge degenerates to an
//    exclusive scan of run sizes plus disjoint copies (checked here).
//  * kway_merge_unique_into — the general ascending k-way merge with
//    adjacent-unique, for runs that may interleave or overlap.  The concat
//    path is observationally equal to it whenever the runs are disjoint.
//
// The dense flavour is a per-shard bitset-OR: each shard owns whole 64-bit
// words of the touch mask (the shard stride is a multiple of 64), so the OR
// is realized as non-atomic writes into the owner's word range; or_words is
// the explicit combine for mask regions that are NOT word-owned.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hmis/par/parallel_for.hpp"
#include "hmis/util/check.hpp"

namespace hmis::par::shard {

/// Concatenate sorted, pairwise-disjoint ascending runs (runs[s] entirely
/// below runs[s+1]) into `out`, ascending; returns the total count.
/// `offsets` is reusable scratch (one slot per run).  HMIS_CHECK-fails if
/// the runs are not actually disjoint-ascending — the data plane guarantees
/// it by construction (shard s gathers only edges in shard s's range).
template <typename T>
std::size_t concat_sorted_runs_into(const std::vector<std::vector<T>>& runs,
                                    std::vector<std::size_t>& offsets,
                                    std::vector<T>& out,
                                    ThreadPool* pool = nullptr) {
  const std::size_t k = runs.size();
  offsets.resize(k);
  std::size_t total = 0;
  bool seen = false;
  T prev_back{};
  for (std::size_t s = 0; s < k; ++s) {
    offsets[s] = total;
    total += runs[s].size();
    if (runs[s].empty()) continue;
    HMIS_CHECK(!seen || prev_back < runs[s].front(),
               "shard runs overlap: per-shard gather produced an edge "
               "outside its shard's range");
    prev_back = runs[s].back();
    seen = true;
  }
  out.resize(total);
  const auto copy_run = [&](std::size_t s) {
    std::copy(runs[s].begin(), runs[s].end(), out.begin() + offsets[s]);
  };
  if (pool != nullptr && pool->num_threads() > 1 && total >= default_grain()) {
    parallel_for_shards(k, copy_run, /*affinity_offset=*/0, pool);
  } else {
    for (std::size_t s = 0; s < k; ++s) copy_run(s);
  }
  return total;
}

/// General ascending k-way merge with adjacent-unique: `out` receives the
/// sorted union of the (individually sorted) runs, duplicates collapsed.
/// Serial — the run count is the shard count, which is pool-width sized;
/// used where disjointness is not guaranteed, and as the reference the
/// concat fast path is tested against.
template <typename T>
std::size_t kway_merge_unique_into(const std::vector<std::vector<T>>& runs,
                                   std::vector<T>& out) {
  const std::size_t k = runs.size();
  std::size_t total = 0;
  for (const auto& run : runs) total += run.size();
  out.clear();
  out.reserve(total);
  std::vector<std::size_t> cursor(k, 0);
  for (;;) {
    bool any = false;
    T best{};
    for (std::size_t s = 0; s < k; ++s) {
      if (cursor[s] == runs[s].size()) continue;
      const T v = runs[s][cursor[s]];
      if (!any || v < best) {
        best = v;
        any = true;
      }
    }
    if (!any) break;
    for (std::size_t s = 0; s < k; ++s) {
      if (cursor[s] != runs[s].size() && runs[s][cursor[s]] == best) {
        ++cursor[s];
      }
    }
    out.push_back(best);
  }
  return out.size();
}

/// Dense combine for mask regions without word ownership: dst |= src over
/// n words.  Order-independent (OR is commutative and idempotent), so any
/// shard-combination schedule yields the same mask.
inline void or_words(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

}  // namespace hmis::par::shard
