// Chase–Lev work-stealing deque (dynamic circular array).
//
// One owner thread pushes and pops at the bottom (LIFO); any number of thief
// threads steal from the top (FIFO).  This is the per-worker run queue of
// `par::Scheduler` (DESIGN.md §4): LIFO pop keeps a worker on the cache-hot
// half of a freshly split range, FIFO steal hands thieves the largest
// remaining piece.
//
// The implementation follows Chase & Lev (SPAA 2005) with the memory
// orderings of Lê, Pop, Cohen & Zappa Nardelli (PPoPP 2013), except that the
// two standalone fences of the weak-memory version are replaced by seq_cst
// operations on `top_`/`bottom_`: ThreadSanitizer does not model standalone
// fences, and the pennies saved on x86 are not worth a runtime the sanitizer
// cannot verify.
//
// Growth never frees the old array while thieves may still be reading it —
// retired arrays are chained and released only in the destructor, so a thief
// holding a stale array pointer always reads valid (if possibly outdated)
// slots and the subsequent CAS on `top_` rejects lost races.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace hmis::par {

template <typename T>
class WorkStealDeque {
 public:
  explicit WorkStealDeque(std::size_t capacity = 64)
      : buffer_(new Buffer(round_up_pow2(capacity), nullptr)) {}

  ~WorkStealDeque() {
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    while (buf != nullptr) {
      Buffer* prev = buf->prev;
      delete buf;
      buf = prev;
    }
  }

  WorkStealDeque(const WorkStealDeque&) = delete;
  WorkStealDeque& operator=(const WorkStealDeque&) = delete;

  /// Owner only: push `item` at the bottom.
  void push(T* item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(buf->capacity)) {
      buf = grow(buf, t, b);
    }
    buf->slot(b).store(item, std::memory_order_relaxed);
    // Publish the slot before the new bottom so a thief that observes
    // bottom > t also observes the item.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only: pop the most recently pushed item, or nullptr when empty.
  T* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    // seq_cst store/load pair: the reservation of slot b must be globally
    // ordered against concurrent thieves' reads of bottom (StoreLoad).
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // deque was empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T* item = buf->slot(b).load(std::memory_order_relaxed);
    if (t == b) {
      // Last element: race the thieves for it via top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        item = nullptr;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread: steal the oldest item, or nullptr when empty / race lost.
  T* steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    // Read the buffer only after bottom: the acquire on bottom synchronizes
    // with the owner's release in push(), which itself is ordered after any
    // grow(), so this pointer is recent enough to hold index t.
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    T* item = buf->slot(t).load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race; the value read is discarded
    }
    return item;
  }

  /// Approximate (racy) emptiness check, for idle heuristics only.
  [[nodiscard]] bool empty() const {
    return top_.load(std::memory_order_relaxed) >=
           bottom_.load(std::memory_order_relaxed);
  }

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap, Buffer* previous)
        : capacity(cap),
          mask(cap - 1),
          prev(previous),
          slots(new std::atomic<T*>[cap]) {}

    [[nodiscard]] std::atomic<T*>& slot(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i) & mask];
    }

    std::size_t capacity;
    std::size_t mask;
    Buffer* prev;  // retired predecessor, freed with the deque
    std::unique_ptr<std::atomic<T*>[]> slots;
  };

  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 2;
    while (p < v) p <<= 1;
    return p;
  }

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Buffer(old->capacity * 2, old);
    for (std::int64_t i = t; i < b; ++i) {
      bigger->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    buffer_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
};

}  // namespace hmis::par
