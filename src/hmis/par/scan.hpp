// Parallel prefix sums (two-pass blocked algorithm, the shared-memory
// realization of the EREW Blelchoch scan) and stream compaction built on it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hmis/par/parallel_for.hpp"

namespace hmis::par {

/// Exclusive prefix sum of values(i) into out[0..n); returns the total.
/// out may alias nothing; out.size() must be >= n.
template <typename T, typename Values>
T exclusive_scan(std::size_t n, Values&& values, T* out,
                 Metrics* metrics = nullptr, ThreadPool* pool = nullptr,
                 std::size_t grain = 0) {
  if (n == 0) return T{};
  ThreadPool& tp = pool ? *pool : global_pool();
  const ChunkPlan plan = plan_chunks(n, tp.num_threads(), grain);
  if (metrics) metrics->add(2 * n, 2 * log_depth(n));
  if (plan.chunks <= 1) {
    T acc{};
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = acc;
      acc += values(i);
    }
    return acc;
  }
  std::vector<T> block_sums(plan.chunks, T{});
  // Pass 1: per-block sums.
  tp.run_chunks(plan.chunks, [&](std::size_t c) {
    const std::size_t lo = c * plan.chunk_size;
    const std::size_t hi = std::min(n, lo + plan.chunk_size);
    T acc{};
    for (std::size_t i = lo; i < hi; ++i) acc += values(i);
    block_sums[c] = acc;
  });
  // Serial exclusive scan of block sums (chunk count is tiny).
  T total{};
  for (std::size_t c = 0; c < plan.chunks; ++c) {
    const T s = block_sums[c];
    block_sums[c] = total;
    total += s;
  }
  // Pass 2: local scans with block offset.
  tp.run_chunks(plan.chunks, [&](std::size_t c) {
    const std::size_t lo = c * plan.chunk_size;
    const std::size_t hi = std::min(n, lo + plan.chunk_size);
    T acc = block_sums[c];
    for (std::size_t i = lo; i < hi; ++i) {
      out[i] = acc;
      acc += values(i);
    }
  });
  return total;
}

/// Inclusive prefix sum; returns the total.
template <typename T, typename Values>
T inclusive_scan(std::size_t n, Values&& values, T* out,
                 Metrics* metrics = nullptr, ThreadPool* pool = nullptr,
                 std::size_t grain = 0) {
  const T total = exclusive_scan<T>(n, values, out, metrics, pool, grain);
  parallel_for(
      0, n, [&](std::size_t i) { out[i] += values(i); }, metrics, pool,
      grain);
  return total;
}

/// Stream compaction into caller-owned storage: `out` receives the indices
/// i in [0, n) with pred(i), ascending; `offsets` is scratch.  Both vectors
/// are resized (reusing capacity — the allocation-free path for per-round
/// callers like the residual-frame builds); returns the match count.
template <typename Pred>
std::size_t pack_indices_into(std::size_t n, Pred&& pred,
                              std::vector<std::uint32_t>& offsets,
                              std::vector<std::uint32_t>& out,
                              Metrics* metrics = nullptr,
                              ThreadPool* pool = nullptr,
                              std::size_t grain = 0) {
  offsets.resize(n);
  const std::uint32_t total = exclusive_scan<std::uint32_t>(
      n, [&](std::size_t i) { return pred(i) ? 1u : 0u; }, offsets.data(),
      metrics, pool, grain);
  out.resize(total);
  parallel_for(
      0, n,
      [&](std::size_t i) {
        if (pred(i)) out[offsets[i]] = static_cast<std::uint32_t>(i);
      },
      metrics, pool, grain);
  return total;
}

/// Stream compaction: indices i in [0, n) with pred(i), in ascending order.
template <typename Pred>
[[nodiscard]] std::vector<std::uint32_t> pack_indices(
    std::size_t n, Pred&& pred, Metrics* metrics = nullptr,
    ThreadPool* pool = nullptr, std::size_t grain = 0) {
  std::vector<std::uint32_t> offsets;
  std::vector<std::uint32_t> out;
  pack_indices_into(n, pred, offsets, out, metrics, pool, grain);
  return out;
}

/// Gather: out[j] = values(packed[j]) for a packed index list.
template <typename T, typename Values>
[[nodiscard]] std::vector<T> gather(const std::vector<std::uint32_t>& packed,
                                    Values&& values,
                                    Metrics* metrics = nullptr,
                                    ThreadPool* pool = nullptr) {
  std::vector<T> out(packed.size());
  parallel_for(
      0, packed.size(), [&](std::size_t j) { out[j] = values(packed[j]); },
      metrics, pool);
  return out;
}

}  // namespace hmis::par
