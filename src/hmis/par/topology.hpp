// CPU/NUMA topology probe and topology-aware worker placement (DESIGN.md §10).
//
// The scheduler consumes three things:
//  * a Topology — one CpuInfo per online CPU, read from
//    /sys/devices/system/node/node*/cpulist and
//    /sys/devices/system/cpu/cpu*/topology/{core_id,physical_package_id};
//    when sysfs is absent or partial (containers, non-Linux), the probe
//    degrades to a single-node flat topology over hardware_concurrency —
//    every policy below still works, it just has nothing to discriminate;
//  * a worker→CPU placement (plan_worker_cpus): distinct physical cores
//    first, packed node by node, SMT siblings only after every core is
//    taken — so small pools stay on one node's cores and large pools spill
//    to the next node before hyperthreads;
//  * a per-worker victim order (plan_victim_orders): nearest-first — same
//    core, then same node, then remote — with a per-worker rotation inside
//    each distance class so thieves do not all hammer the same victim.
//
// Everything except Topology::system() is a pure function of its inputs
// (unit-testable without sysfs); placement affects only WHERE work runs,
// never results — the determinism contract does not depend on it.
//
// Actual thread pinning (sched_setaffinity) is opt-in via HMIS_PIN=1:
// processes routinely hold several pools (the global pool plus
// test/bench-local ones), and pinning them all to the same CPU list would
// oversubscribe cores that the OS scheduler otherwise balances.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace hmis::par {

/// One online CPU's position in the machine hierarchy.
struct CpuInfo {
  int cpu = -1;      ///< CPU id (as in /sys/devices/system/cpu/cpuN)
  int node = 0;      ///< NUMA node id
  int package = 0;   ///< physical package (socket) id
  int core = 0;      ///< core id within the package
};

struct Topology {
  std::vector<CpuInfo> cpus;  ///< online CPUs, ascending by cpu id
  int num_nodes = 1;

  /// The machine's topology, probed once per process (sysfs on Linux,
  /// single-node fallback otherwise).
  [[nodiscard]] static const Topology& system();
};

/// Parse a sysfs cpulist ("0-3,8,10-11") into ascending CPU ids.  Returns
/// an empty vector on malformed input (the probe then falls back).
[[nodiscard]] std::vector<int> parse_cpu_list(std::string_view text);

/// Single-node flat topology over `cpus` CPUs (the graceful fallback).
[[nodiscard]] Topology fallback_topology(std::size_t cpus);

/// Deterministic worker→CPU placement: one CpuInfo per worker, cores
/// before SMT siblings, node-packed, wrapping when workers exceed CPUs.
/// Never empty output for workers > 0 (falls back to CPU 0 on an empty
/// topology).
[[nodiscard]] std::vector<CpuInfo> plan_worker_cpus(const Topology& topo,
                                                    std::size_t workers);

/// Nearest-first victim order for each worker: orders[i] lists every other
/// worker index, same-core victims first, then same-node, then remote;
/// ties rotate by (victim - i) so contention spreads.
[[nodiscard]] std::vector<std::vector<std::size_t>> plan_victim_orders(
    const std::vector<CpuInfo>& workers);

/// True when HMIS_PIN=1 requests actual thread affinity (read once).
[[nodiscard]] bool pin_workers_enabled();

/// Pin the calling thread to `cpu` (best effort; no-op off-Linux or on
/// failure).  Only called when pin_workers_enabled().
void pin_current_thread(int cpu);

}  // namespace hmis::par
