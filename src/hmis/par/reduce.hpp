// Deterministic parallel reductions.
//
// Per-chunk partials are combined *in chunk index order* on the calling
// thread, so results (including floating point) are identical for any
// thread count.
#pragma once

#include <cstddef>
#include <vector>

#include "hmis/par/parallel_for.hpp"

namespace hmis::par {

/// reduce(begin, end, init, map, combine):
///   result = fold(combine, init, [map(i) for i in range]) in index order.
template <typename T, typename Map, typename Combine>
[[nodiscard]] T reduce(std::size_t begin, std::size_t end, T init, Map&& map,
                       Combine&& combine, Metrics* metrics = nullptr,
                       ThreadPool* pool = nullptr, std::size_t grain = 0) {
  if (end <= begin) return init;
  const std::size_t n = end - begin;
  ThreadPool& tp = pool ? *pool : global_pool();
  const ChunkPlan plan = plan_chunks(n, tp.num_threads(), grain);
  if (metrics) metrics->add(n, log_depth(n));
  if (plan.chunks <= 1) {
    T acc = init;
    for (std::size_t i = begin; i < end; ++i) acc = combine(acc, map(i));
    return acc;
  }
  std::vector<T> partials(plan.chunks, init);
  std::vector<char> used(plan.chunks, 0);
  tp.run_chunks(plan.chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * plan.chunk_size;
    const std::size_t hi = std::min(end, lo + plan.chunk_size);
    if (lo >= hi) return;
    T acc = map(lo);
    for (std::size_t i = lo + 1; i < hi; ++i) acc = combine(acc, map(i));
    partials[c] = acc;
    used[c] = 1;
  });
  T acc = init;
  for (std::size_t c = 0; c < plan.chunks; ++c) {
    if (used[c]) acc = combine(acc, partials[c]);
  }
  return acc;
}

/// Sum of map(i) over the range.
template <typename T, typename Map>
[[nodiscard]] T reduce_sum(std::size_t begin, std::size_t end, Map&& map,
                           Metrics* metrics = nullptr,
                           ThreadPool* pool = nullptr, std::size_t grain = 0) {
  return reduce<T>(
      begin, end, T{}, std::forward<Map>(map),
      [](T a, T b) { return a + b; }, metrics, pool, grain);
}

/// Max of map(i) over the range (returns `lowest` on empty range).
template <typename T, typename Map>
[[nodiscard]] T reduce_max(std::size_t begin, std::size_t end, T lowest,
                           Map&& map, Metrics* metrics = nullptr,
                           ThreadPool* pool = nullptr, std::size_t grain = 0) {
  return reduce<T>(
      begin, end, lowest, std::forward<Map>(map),
      [](T a, T b) { return a < b ? b : a; }, metrics, pool, grain);
}

/// Min of map(i) over the range (returns `highest` on empty range).
template <typename T, typename Map>
[[nodiscard]] T reduce_min(std::size_t begin, std::size_t end, T highest,
                           Map&& map, Metrics* metrics = nullptr,
                           ThreadPool* pool = nullptr, std::size_t grain = 0) {
  return reduce<T>(
      begin, end, highest, std::forward<Map>(map),
      [](T a, T b) { return b < a ? b : a; }, metrics, pool, grain);
}

/// Count of indices where pred(i) holds.
template <typename Pred>
[[nodiscard]] std::size_t count_if(std::size_t begin, std::size_t end,
                                   Pred&& pred, Metrics* metrics = nullptr,
                                   ThreadPool* pool = nullptr,
                                   std::size_t grain = 0) {
  return reduce_sum<std::size_t>(
      begin, end, [&](std::size_t i) { return pred(i) ? std::size_t{1} : 0; },
      metrics, pool, grain);
}

}  // namespace hmis::par
