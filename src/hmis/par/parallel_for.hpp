// Data-parallel loop over an index range.
//
// The range [begin, end) is split into at most P = pool.num_threads()
// contiguous chunks (fewer if the range is small relative to the grain), so
// the decomposition is a pure function of (range, P, grain) — never of
// timing.  The work-stealing scheduler may execute the chunks in any order
// on any worker (including nested: a parallel_for issued from inside a
// worker task spawns onto that worker's deque and helps while joining), but
// the chunk *set* is fixed.  Bodies must write disjoint locations or use
// idempotent atomic sets.
//
// Grain: `grain` is the minimum number of items per chunk (0 = the default:
// the HMIS_GRAIN environment override if set, else kMinGrain).  Raise it for
// very cheap bodies, lower it for expensive ones; the determinism contract
// only requires that a given run's grain is fixed, not any particular value.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <type_traits>
#include <vector>

#include "hmis/par/metrics.hpp"
#include "hmis/par/thread_pool.hpp"

namespace hmis::par {

/// Built-in minimum items per chunk before a loop bothers going parallel,
/// calibrated for a 1-wide pool.  Wider pools re-derive a finer grain (see
/// width_derived_grain) so the split count tracks the parallelism on offer.
inline constexpr std::size_t kMinGrain = 1024;

/// Floor for the width-derived grain: chunks never get cheaper than this,
/// no matter how wide the pool — below it the spawn/steal overhead of a
/// chunk exceeds its body.
inline constexpr std::size_t kGrainFloor = 128;

namespace detail {

/// Parse an HMIS_GRAIN-style override; 0 means invalid/unset (use default).
[[nodiscard]] inline std::size_t parse_grain(const char* text) noexcept {
  if (text == nullptr || *text == '\0') return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return 0;  // trailing junk / not a number
  if (v == 0 || v > (1ull << 40)) return 0;   // zero or absurd: ignore
  return static_cast<std::size_t>(v);
}

/// Slot holding the pool-width-derived grain component.  Rewritten only by
/// set_global_threads (an explicit reconfiguration point), so within one
/// configuration the grain is a constant — the determinism contract's
/// "one run, one grain" becomes "one configuration, one grain", and results
/// stay bit-identical across configurations by the flavour contract anyway.
[[nodiscard]] inline std::atomic<std::size_t>& width_grain_slot() noexcept {
  static std::atomic<std::size_t> slot{kMinGrain};
  return slot;
}

}  // namespace detail

/// The HMIS_GRAIN environment override, or 0 when unset/invalid.  Read once
/// and cached — changing the variable mid-process has no effect
/// (determinism: one run, one grain).
[[nodiscard]] inline std::size_t env_grain() {
  static const std::size_t cached =
      detail::parse_grain(std::getenv("HMIS_GRAIN"));
  return cached;
}

/// The grain a pool of `width` lanes derives when HMIS_GRAIN is unset:
/// kMinGrain scaled down by the width (an n-item loop splits into enough
/// chunks to feed every lane once n >= kMinGrain), floored at kGrainFloor.
[[nodiscard]] constexpr std::size_t derive_grain_for_width(
    std::size_t width) noexcept {
  if (width <= 1) return kMinGrain;
  return std::max(kGrainFloor, kMinGrain / width);
}

/// The current width-derived grain component (updated by
/// set_global_threads; kMinGrain until the first call).
[[nodiscard]] inline std::size_t width_derived_grain() noexcept {
  return detail::width_grain_slot().load(std::memory_order_relaxed);
}

namespace detail {

/// set_global_threads' hook: re-derive the default grain for the new pool
/// width.  HMIS_GRAIN stays the override — env_grain() wins in
/// default_grain() regardless of what this stores.
inline void rederive_grain_for_width(std::size_t width) noexcept {
  width_grain_slot().store(derive_grain_for_width(width),
                           std::memory_order_relaxed);
}

}  // namespace detail

/// The grain used when callers pass 0: the HMIS_GRAIN override if set, else
/// the width-derived value.  Primitives with a coarser built-in default
/// (parallel_sort) consult env_grain() directly so the one knob tunes them
/// all.
[[nodiscard]] inline std::size_t default_grain() {
  const std::size_t env = env_grain();
  return env != 0 ? env : width_derived_grain();
}

struct ChunkPlan {
  std::size_t chunks = 1;
  std::size_t chunk_size = 0;
};

[[nodiscard]] inline ChunkPlan plan_chunks(std::size_t n, std::size_t threads,
                                           std::size_t grain = 0) {
  ChunkPlan plan;
  if (n == 0) {
    plan.chunks = 0;
    return plan;
  }
  if (grain == 0) grain = default_grain();
  const std::size_t by_grain = (n + grain - 1) / grain;
  plan.chunks = std::max<std::size_t>(1, std::min(threads, by_grain));
  plan.chunk_size = (n + plan.chunks - 1) / plan.chunks;
  return plan;
}

/// parallel_for(begin, end, f): calls f(i) for every i in [begin, end).
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& f,
                  Metrics* metrics = nullptr, ThreadPool* pool = nullptr,
                  std::size_t grain = 0) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  ThreadPool& tp = pool ? *pool : global_pool();
  const ChunkPlan plan = plan_chunks(n, tp.num_threads(), grain);
  if (metrics) metrics->add(n, map_depth(n));
  if (plan.chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) f(i);
    return;
  }
  tp.run_chunks(plan.chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * plan.chunk_size;
    const std::size_t hi = std::min(end, lo + plan.chunk_size);
    for (std::size_t i = lo; i < hi; ++i) f(i);
  });
}

namespace detail {

/// One shard body invocation; intrusive task for parallel_for_shards.
template <typename Body>
struct ShardTask : Task {
  Body* body = nullptr;
  std::size_t shard = 0;
};

}  // namespace detail

/// Fork-join over shard indices [0, count): f(s) exactly once per shard,
/// each spawned with the placement hint (affinity_offset + s) — shard s
/// lands on worker (affinity_offset + s) mod workers when that worker gets
/// to it first (hints steer scheduling only; stealing keeps every shard
/// runnable everywhere, so results never depend on placement).  The engine
/// rotates affinity_offset per session to spread concurrent sessions' hot
/// shards across the pool.  The calling thread participates via the
/// help-first join; the first exception is rethrown after every shard ran.
template <typename Body>
void parallel_for_shards(std::size_t count, Body&& f,
                         std::size_t affinity_offset = 0,
                         ThreadPool* pool = nullptr) {
  if (count == 0) return;
  ThreadPool& tp = pool ? *pool : global_pool();
  if (count == 1 || tp.num_threads() <= 1) {
    for (std::size_t s = 0; s < count; ++s) f(s);
    return;
  }
  using TaskT = detail::ShardTask<std::remove_reference_t<Body>>;
  Scheduler& sched = tp.scheduler();
  GroupState group;
  std::vector<TaskT> tasks(count);
  for (std::size_t s = 0; s < count; ++s) {
    TaskT& t = tasks[s];
    t.invoke = [](Task* task) {
      auto* st = static_cast<TaskT*>(task);
      (*st->body)(st->shard);
    };
    t.group = &group;
    t.body = &f;
    t.shard = s;
    group.add(1);
    try {
      sched.spawn_hinted(&t, affinity_offset + s);
    } catch (...) {
      // Enqueue failed: run the shard inline so it still executes exactly
      // once; its exception (if any) joins the group's first-wins slot.
      group.cancel(1);
      try {
        f(s);
      } catch (...) {
        group.record_error(std::current_exception());
      }
    }
  }
  sched.wait(group);
  group.rethrow_if_error();
}

/// parallel_for_chunks: calls f(chunk_index, lo, hi) per contiguous chunk.
/// Use when per-chunk state (buffers, partial sums) is needed.
template <typename Body>
void parallel_for_chunks(std::size_t begin, std::size_t end, Body&& f,
                         Metrics* metrics = nullptr,
                         ThreadPool* pool = nullptr, std::size_t grain = 0) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  ThreadPool& tp = pool ? *pool : global_pool();
  const ChunkPlan plan = plan_chunks(n, tp.num_threads(), grain);
  if (metrics) metrics->add(n, map_depth(n));
  if (plan.chunks <= 1) {
    f(std::size_t{0}, begin, end);
    return;
  }
  tp.run_chunks(plan.chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * plan.chunk_size;
    const std::size_t hi = std::min(end, lo + plan.chunk_size);
    if (lo < hi) f(c, lo, hi);
  });
}

}  // namespace hmis::par
