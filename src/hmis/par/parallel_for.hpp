// Data-parallel loop over an index range.
//
// The range [begin, end) is split into exactly P = pool.num_threads()
// contiguous chunks (fewer if the range is small), so the decomposition is a
// pure function of (range, P) — never of timing.  Bodies must write disjoint
// locations or use idempotent atomic sets.
#pragma once

#include <algorithm>
#include <cstddef>

#include "hmis/par/metrics.hpp"
#include "hmis/par/thread_pool.hpp"

namespace hmis::par {

/// Minimum items per chunk before the loop bothers going parallel.
inline constexpr std::size_t kMinGrain = 1024;

struct ChunkPlan {
  std::size_t chunks = 1;
  std::size_t chunk_size = 0;
};

[[nodiscard]] inline ChunkPlan plan_chunks(std::size_t n, std::size_t threads,
                                           std::size_t grain = kMinGrain) {
  ChunkPlan plan;
  if (n == 0) {
    plan.chunks = 0;
    return plan;
  }
  const std::size_t by_grain = (n + grain - 1) / grain;
  plan.chunks = std::max<std::size_t>(1, std::min(threads, by_grain));
  plan.chunk_size = (n + plan.chunks - 1) / plan.chunks;
  return plan;
}

/// parallel_for(begin, end, f): calls f(i) for every i in [begin, end).
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& f,
                  Metrics* metrics = nullptr, ThreadPool* pool = nullptr) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  ThreadPool& tp = pool ? *pool : global_pool();
  const ChunkPlan plan = plan_chunks(n, tp.num_threads());
  if (metrics) metrics->add(n, map_depth(n));
  if (plan.chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) f(i);
    return;
  }
  tp.run_chunks(plan.chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * plan.chunk_size;
    const std::size_t hi = std::min(end, lo + plan.chunk_size);
    for (std::size_t i = lo; i < hi; ++i) f(i);
  });
}

/// parallel_for_chunks: calls f(chunk_index, lo, hi) per contiguous chunk.
/// Use when per-chunk state (buffers, partial sums) is needed.
template <typename Body>
void parallel_for_chunks(std::size_t begin, std::size_t end, Body&& f,
                         Metrics* metrics = nullptr,
                         ThreadPool* pool = nullptr) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  ThreadPool& tp = pool ? *pool : global_pool();
  const ChunkPlan plan = plan_chunks(n, tp.num_threads());
  if (metrics) metrics->add(n, map_depth(n));
  if (plan.chunks <= 1) {
    f(std::size_t{0}, begin, end);
    return;
  }
  tp.run_chunks(plan.chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * plan.chunk_size;
    const std::size_t hi = std::min(end, lo + plan.chunk_size);
    if (lo < hi) f(c, lo, hi);
  });
}

}  // namespace hmis::par
