// Data-parallel loop over an index range.
//
// The range [begin, end) is split into at most P = pool.num_threads()
// contiguous chunks (fewer if the range is small relative to the grain), so
// the decomposition is a pure function of (range, P, grain) — never of
// timing.  The work-stealing scheduler may execute the chunks in any order
// on any worker (including nested: a parallel_for issued from inside a
// worker task spawns onto that worker's deque and helps while joining), but
// the chunk *set* is fixed.  Bodies must write disjoint locations or use
// idempotent atomic sets.
//
// Grain: `grain` is the minimum number of items per chunk (0 = the default:
// the HMIS_GRAIN environment override if set, else kMinGrain).  Raise it for
// very cheap bodies, lower it for expensive ones; the determinism contract
// only requires that a given run's grain is fixed, not any particular value.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdlib>

#include "hmis/par/metrics.hpp"
#include "hmis/par/thread_pool.hpp"

namespace hmis::par {

/// Built-in minimum items per chunk before a loop bothers going parallel.
inline constexpr std::size_t kMinGrain = 1024;

namespace detail {

/// Parse an HMIS_GRAIN-style override; 0 means invalid/unset (use default).
[[nodiscard]] inline std::size_t parse_grain(const char* text) noexcept {
  if (text == nullptr || *text == '\0') return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return 0;  // trailing junk / not a number
  if (v == 0 || v > (1ull << 40)) return 0;   // zero or absurd: ignore
  return static_cast<std::size_t>(v);
}

}  // namespace detail

/// The HMIS_GRAIN environment override, or 0 when unset/invalid.  Read once
/// and cached — changing the variable mid-process has no effect
/// (determinism: one run, one grain).
[[nodiscard]] inline std::size_t env_grain() {
  static const std::size_t cached =
      detail::parse_grain(std::getenv("HMIS_GRAIN"));
  return cached;
}

/// The grain used when callers pass 0: the HMIS_GRAIN override if set, else
/// kMinGrain.  Primitives with a coarser built-in default (parallel_sort)
/// consult env_grain() directly so the one knob tunes them all.
[[nodiscard]] inline std::size_t default_grain() {
  const std::size_t env = env_grain();
  return env != 0 ? env : kMinGrain;
}

struct ChunkPlan {
  std::size_t chunks = 1;
  std::size_t chunk_size = 0;
};

[[nodiscard]] inline ChunkPlan plan_chunks(std::size_t n, std::size_t threads,
                                           std::size_t grain = 0) {
  ChunkPlan plan;
  if (n == 0) {
    plan.chunks = 0;
    return plan;
  }
  if (grain == 0) grain = default_grain();
  const std::size_t by_grain = (n + grain - 1) / grain;
  plan.chunks = std::max<std::size_t>(1, std::min(threads, by_grain));
  plan.chunk_size = (n + plan.chunks - 1) / plan.chunks;
  return plan;
}

/// parallel_for(begin, end, f): calls f(i) for every i in [begin, end).
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& f,
                  Metrics* metrics = nullptr, ThreadPool* pool = nullptr,
                  std::size_t grain = 0) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  ThreadPool& tp = pool ? *pool : global_pool();
  const ChunkPlan plan = plan_chunks(n, tp.num_threads(), grain);
  if (metrics) metrics->add(n, map_depth(n));
  if (plan.chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) f(i);
    return;
  }
  tp.run_chunks(plan.chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * plan.chunk_size;
    const std::size_t hi = std::min(end, lo + plan.chunk_size);
    for (std::size_t i = lo; i < hi; ++i) f(i);
  });
}

/// parallel_for_chunks: calls f(chunk_index, lo, hi) per contiguous chunk.
/// Use when per-chunk state (buffers, partial sums) is needed.
template <typename Body>
void parallel_for_chunks(std::size_t begin, std::size_t end, Body&& f,
                         Metrics* metrics = nullptr,
                         ThreadPool* pool = nullptr, std::size_t grain = 0) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  ThreadPool& tp = pool ? *pool : global_pool();
  const ChunkPlan plan = plan_chunks(n, tp.num_threads(), grain);
  if (metrics) metrics->add(n, map_depth(n));
  if (plan.chunks <= 1) {
    f(std::size_t{0}, begin, end);
    return;
  }
  tp.run_chunks(plan.chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * plan.chunk_size;
    const std::size_t hi = std::min(end, lo + plan.chunk_size);
    if (lo < hi) f(c, lo, hi);
  });
}

}  // namespace hmis::par
