#include "hmis/core/mis.hpp"

#include <array>

#include "hmis/algo/greedy.hpp"
#include "hmis/algo/kuw.hpp"
#include "hmis/algo/linear_bl.hpp"
#include "hmis/algo/luby.hpp"
#include "hmis/algo/permutation_mis.hpp"
#include "hmis/core/theory.hpp"
#include "hmis/util/check.hpp"

namespace hmis::core {

std::string_view algorithm_name(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::Greedy:
      return "greedy";
    case Algorithm::PermutationGreedy:
      return "perm-greedy";
    case Algorithm::Luby:
      return "luby";
    case Algorithm::BL:
      return "bl";
    case Algorithm::LinearBL:
      return "linear-bl";
    case Algorithm::PermutationMIS:
      return "perm-mis";
    case Algorithm::KUW:
      return "kuw";
    case Algorithm::SBL:
      return "sbl";
    case Algorithm::Auto:
      return "auto";
  }
  return "?";
}

std::optional<Algorithm> algorithm_from_name(std::string_view name) noexcept {
  for (const Algorithm a : all_algorithms()) {
    if (name == algorithm_name(a)) return a;
  }
  if (name == "auto") return Algorithm::Auto;
  return std::nullopt;
}

std::span<const Algorithm> all_algorithms() noexcept {
  static constexpr std::array<Algorithm, 8> kAll = {
      Algorithm::Greedy,   Algorithm::PermutationGreedy,
      Algorithm::Luby,     Algorithm::BL,
      Algorithm::LinearBL, Algorithm::PermutationMIS,
      Algorithm::KUW,      Algorithm::SBL,
  };
  return kAll;
}

bool supports(Algorithm a, const Hypergraph& h) {
  switch (a) {
    case Algorithm::Luby:
      return h.dimension() <= kLubyMaxDimension;
    case Algorithm::BL:
      return h.dimension() <= kBlMaxDimension;
    case Algorithm::LinearBL:
      return h.dimension() <= kBlMaxDimension && algo::is_linear(h);
    case Algorithm::Greedy:
    case Algorithm::PermutationGreedy:
    case Algorithm::PermutationMIS:
    case Algorithm::KUW:
    case Algorithm::SBL:
    case Algorithm::Auto:
      return true;
  }
  return true;
}

Algorithm choose_algorithm(const Hypergraph& h) {
  if (supports(Algorithm::Luby, h)) return Algorithm::Luby;
  // SBL pays off when the dimension is large; BL handles small dimensions
  // directly (this mirrors Algorithm 1's own line-3 dispatch).  The derived
  // d can exceed BL's practical envelope, so both bounds apply — otherwise
  // Auto could hand BL an instance supports() rejects (SBL's own line-3
  // dispatch runs the same inner BL in that case anyway, under restarts).
  const SblOptions defaults;
  const SblParams params =
      resolve_sbl_params(h.num_vertices(), h.num_edges(), defaults);
  return h.dimension() <= params.d && supports(Algorithm::BL, h)
             ? Algorithm::BL
             : Algorithm::SBL;
}

MisRun find_mis(const Hypergraph& h, Algorithm algorithm,
                const FindOptions& opt) {
  MisRun run;
  run.algorithm =
      algorithm == Algorithm::Auto ? choose_algorithm(h) : algorithm;

  // Entry checkpoint: a request cancelled while queued never starts.
  if (opt.cancel != nullptr) opt.cancel->throw_if_cancelled();

  const auto common = [&](auto& o) {
    o.seed = opt.seed;
    o.record_trace = opt.record_trace;
    o.check_invariants = opt.check_invariants;
    // A facade-level pool overrides any per-algorithm default (keeps
    // opt.sbl.pool usable as the fallback for the SBL pass-through).
    if (opt.pool != nullptr) o.pool = opt.pool;
    o.shards = opt.shards;
    o.cancel = opt.cancel;
  };
  // on_progress rides the per-stage hooks of the algorithms that have them
  // (BL-family on_stage, SBL on_round); stats.stage is 0-based, the hook
  // reports rounds *completed*.
  const auto wire_bl_progress = [&](auto& o) {
    if (!opt.on_progress) return;
    auto prev = std::move(o.on_stage);
    o.on_stage = [&opt, prev = std::move(prev)](
                     const MutableHypergraph& mh, const algo::StageStats& s) {
      if (prev) prev(mh, s);
      opt.on_progress(s.stage + 1);
    };
  };

  switch (run.algorithm) {
    case Algorithm::Greedy: {
      algo::GreedyOptions o;
      common(o);
      run.result = algo::greedy_mis(h, o);
      break;
    }
    case Algorithm::PermutationGreedy: {
      algo::GreedyOptions o;
      common(o);
      run.result = algo::permutation_greedy_mis(h, o);
      break;
    }
    case Algorithm::Luby: {
      algo::LubyOptions o;
      common(o);
      run.result = algo::luby_mis(h, o);
      break;
    }
    case Algorithm::BL: {
      algo::BlOptions o;
      common(o);
      wire_bl_progress(o);
      run.result = algo::bl(h, o);
      break;
    }
    case Algorithm::LinearBL: {
      algo::LinearBlOptions o;
      common(o);
      wire_bl_progress(o);
      run.result = algo::linear_bl(h, o);
      break;
    }
    case Algorithm::PermutationMIS: {
      algo::PermutationOptions o;
      common(o);
      run.result = algo::permutation_mis(h, o);
      break;
    }
    case Algorithm::KUW: {
      algo::KuwOptions o;
      common(o);
      run.result = algo::kuw_mis(h, o);
      break;
    }
    case Algorithm::SBL: {
      SblOptions o = opt.sbl;
      common(o);
      if (opt.on_progress) {
        auto prev = std::move(o.on_round);
        o.on_round = [&opt, prev = std::move(prev)](
                         const algo::StageStats& s) {
          if (prev) prev(s);
          opt.on_progress(s.stage + 1);
        };
      }
      run.result = sbl(h, o);
      break;
    }
    case Algorithm::Auto:
      HMIS_CHECK(false, "Auto must be resolved before dispatch");
  }

  if (opt.verify && run.result.success) {
    run.verdict = verify_mis(
        h, std::span<const VertexId>(run.result.independent_set.data(),
                                     run.result.independent_set.size()));
  }
  return run;
}

}  // namespace hmis::core
