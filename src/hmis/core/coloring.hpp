// Strong hypergraph coloring by iterated MIS extraction — the classic
// application pattern the paper's introduction cites for parallel MIS
// primitives.
//
// Repeat: find an MIS of the residual hypergraph of uncolored vertices
// (edges restricted to those fully uncolored; constraints of size < 2 are
// vacuous for coloring and dropped), assign it the next color, remove it.
// The result satisfies: no edge of size >= 2 is monochromatic (each color
// class is independent in its round's residual, which contains every edge
// that could become monochromatic in that class).
#pragma once

#include <vector>

#include "hmis/algo/result.hpp"
#include "hmis/core/mis.hpp"
#include "hmis/hypergraph/hypergraph.hpp"

namespace hmis::core {

struct ColoringOptions {
  std::uint64_t seed = 1;
  Algorithm algorithm = Algorithm::PermutationMIS;
  /// Safety cap on color count (a correct run never needs more than n).
  std::size_t max_colors = 1u << 20;
  /// Thread pool handed to every per-round MIS extraction (nullptr =
  /// process-global pool); results are thread-count independent.
  par::ThreadPool* pool = nullptr;
};

struct Coloring {
  /// color[v] in [0, num_colors); every vertex is colored.
  std::vector<int> color;
  int num_colors = 0;
  bool success = true;
  std::string failure_reason;
  /// Total MIS rounds consumed across all extractions.
  std::size_t total_mis_rounds = 0;
};

/// Color h so that no edge with |e| >= 2 is monochromatic.
[[nodiscard]] Coloring strong_coloring(
    const Hypergraph& h, const ColoringOptions& opt = ColoringOptions{});

/// Validate the strong-coloring property (independent of the algorithm).
[[nodiscard]] bool is_strong_coloring(const Hypergraph& h,
                                      const std::vector<int>& color);

}  // namespace hmis::core
