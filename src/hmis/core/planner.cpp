#include "hmis/core/planner.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "hmis/algo/bl.hpp"
#include "hmis/algo/linear_bl.hpp"
#include "hmis/core/theory.hpp"
#include "hmis/util/math.hpp"

namespace hmis::core {

InstanceReport analyze_instance(const Hypergraph& h,
                                const PlannerOptions& opt) {
  InstanceReport r;
  r.n = h.num_vertices();
  r.m = h.num_edges();
  r.dimension = h.dimension();
  r.min_edge_size = h.min_edge_size();
  r.avg_edge_size =
      r.m == 0 ? 0.0
               : static_cast<double>(h.total_edge_size()) /
                     static_cast<double>(r.m);
  r.edge_size_histogram.assign(r.dimension + 1, 0);
  for (EdgeId e = 0; e < r.m; ++e) ++r.edge_size_histogram[h.edge_size(e)];
  for (VertexId v = 0; v < r.n; ++v) {
    r.max_degree = std::max(r.max_degree, h.degree(v));
  }
  r.avg_degree = r.n == 0 ? 0.0
                          : static_cast<double>(h.total_edge_size()) /
                                static_cast<double>(r.n);

  // Linearity: O(sum of C(|e|,2)) pair insertions; skip if over budget.
  std::size_t pairs = 0;
  for (EdgeId e = 0; e < r.m; ++e) {
    const std::size_t s = h.edge_size(e);
    pairs += s * (s - 1) / 2;
  }
  r.linear = pairs <= opt.linearity_pair_budget && algo::is_linear(h);

  r.degree_stats = compute_degree_stats(h, opt.stats);
  r.bl_marking_probability = algo::bl_probability(r.degree_stats, 0.0);

  const double dn = static_cast<double>(std::max<std::size_t>(r.n, 2));
  r.theorem1_edge_budget = paper_edge_bound(dn);
  r.within_theorem1_budget =
      static_cast<double>(r.m) <= r.theorem1_edge_budget;

  const SblOptions sbl_defaults;
  r.sbl_params = resolve_sbl_params(r.n, r.m, sbl_defaults);

  // ---- Recommendation ------------------------------------------------------
  const double logn = util::clog2(dn);
  if (r.m == 0) {
    r.recommended = Algorithm::Greedy;
    r.rationale = "no constraints: any algorithm returns all vertices; "
                  "sequential greedy has no parallel overhead";
    r.predicted_round_bound = 1.0;
  } else if (supports(Algorithm::Luby, h)) {
    r.recommended = Algorithm::Luby;
    r.rationale = "dimension <= 2 (ordinary graph): Luby gives O(log n) "
                  "rounds w.h.p.";
    r.predicted_round_bound = 6.0 * logn;
  } else if (r.linear && r.dimension <= kBlMaxDimension) {
    // Same envelope as core::supports(LinearBL, h); r.linear reuses the
    // budgeted linearity check already done above instead of rescanning.
    r.recommended = Algorithm::LinearBL;
    r.rationale = "linear hypergraph (|e∩e'| <= 1): the Luczak–Szymanska "
                  "regime; BL with aggressive p = 1/(4Δ)";
    r.predicted_round_bound =
        4.0 * r.degree_stats.delta * logn;  // ~log n / p stages
  } else if (r.dimension <= r.sbl_params.d && supports(Algorithm::BL, h)) {
    // Both bounds matter: the derived d can exceed kBlMaxDimension, and a
    // recommendation must never fall outside core::supports' envelope.
    r.recommended = Algorithm::BL;
    r.rationale = "dimension within the BL envelope (Algorithm 1 line 3 "
                  "dispatches here too): Kelsen-analyzed BL directly";
    r.predicted_round_bound =
        std::exp2(static_cast<double>(r.dimension) + 1.0) *
        r.degree_stats.delta * logn;
  } else {
    r.recommended = Algorithm::SBL;
    r.rationale = r.within_theorem1_budget
                      ? "large dimension, m within the Theorem 1 budget: "
                        "the paper's SBL regime"
                      : "large dimension; m EXCEEDS the Theorem 1 budget "
                        "n^beta — SBL still correct, the n^{o(1)} bound "
                        "formally does not apply";
    r.predicted_round_bound = r.sbl_params.predicted_round_bound;
  }
  return r;
}

std::string format_report(const InstanceReport& r) {
  std::ostringstream os;
  os << "instance: n=" << r.n << " m=" << r.m << " dim=" << r.dimension
     << " (min " << r.min_edge_size << ", avg " << r.avg_edge_size << ")\n";
  os << "degrees: max=" << r.max_degree << " avg=" << r.avg_degree
     << "  linear=" << (r.linear ? "yes" : "no") << '\n';
  os << "edge sizes:";
  for (std::size_t s = 0; s < r.edge_size_histogram.size(); ++s) {
    if (r.edge_size_histogram[s] > 0) {
      os << ' ' << s << ':' << r.edge_size_histogram[s];
    }
  }
  os << '\n';
  os << "Δ(H)=" << r.degree_stats.delta
     << (r.degree_stats.exact ? " (exact)" : " (singleton approx)")
     << "  p_BL=" << r.bl_marking_probability << '\n';
  os << "Theorem 1 budget n^beta=" << r.theorem1_edge_budget << " -> m "
     << (r.within_theorem1_budget ? "within" : "EXCEEDS") << " budget\n";
  os << "SBL params: p=" << r.sbl_params.p << " d=" << r.sbl_params.d
     << " threshold=" << r.sbl_params.loop_threshold
     << " round-bound=" << r.sbl_params.predicted_round_bound << '\n';
  os << "recommended: " << algorithm_name(r.recommended) << " — "
     << r.rationale << '\n';
  os << "predicted round bound: " << r.predicted_round_bound << '\n';
  return os.str();
}

}  // namespace hmis::core
