#include "hmis/core/theory.hpp"

#include <algorithm>
#include <cmath>

#include "hmis/util/math.hpp"

namespace hmis::core {

double paper_alpha(double n) { return 1.0 / util::logloglog2(n); }

double paper_beta(double n) {
  const double l3 = util::logloglog2(n);
  return util::loglog2(n) / (8.0 * l3 * l3);
}

double paper_edge_bound(double n) {
  return std::pow(n, paper_beta(n));
}

double bl_dimension_limit(double n) {
  return util::loglog2(n) / (4.0 * util::logloglog2(n));
}

double paper_runtime_bound(double n) {
  return std::pow(n, 2.0 / util::logloglog2(n));
}

double sampling_probability(double n, double alpha) {
  return std::clamp(std::pow(n, -alpha), 1e-9, 1.0);
}

double round_bound(double n, double p) {
  return 2.0 * util::clog2(n) / p;
}

std::size_t derived_dimension(double n, double m, double p) {
  const double r = round_bound(n, p);
  const double num = util::clog2(r * m * n);
  const double den = util::clog2(1.0 / p);
  const double d = num / den - 1.0;
  return static_cast<std::size_t>(std::max(2.0, std::ceil(d)));
}

double dimension_violation_bound(double n, double m, double p, double d) {
  return round_bound(n, p) * m * std::pow(p, d + 1.0);
}

std::size_t sbl_loop_threshold(double p) {
  if (p <= 0.0) return 1;
  const double t = 1.0 / (p * p);
  if (t >= 1e18) return static_cast<std::size_t>(1e18);
  return static_cast<std::size_t>(std::max(1.0, std::ceil(t)));
}

double round_progress_failure_bound(double p, double n_i) {
  return std::exp(-p * n_i / 8.0);
}

}  // namespace hmis::core
