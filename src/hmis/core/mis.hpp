// Unified facade: one entry point over every MIS algorithm in the library,
// with independent verification of the returned set.
//
//   hmis::Hypergraph h = hmis::gen::uniform_random(100000, 100000, 3, 42);
//   hmis::core::MisRun run = hmis::core::find_mis(h, hmis::core::Algorithm::SBL);
//   // run.result.independent_set, run.verdict.ok(), run.result.rounds, ...
#pragma once

#include <functional>
#include <optional>
#include <string_view>

#include "hmis/algo/result.hpp"
#include "hmis/core/sbl.hpp"
#include "hmis/hypergraph/hypergraph.hpp"
#include "hmis/hypergraph/validate.hpp"

namespace hmis::core {

enum class Algorithm {
  Greedy,            ///< sequential lexicographic greedy (baseline/oracle)
  PermutationGreedy, ///< sequential greedy over a random order
  Luby,              ///< graphs only (dimension <= 2)
  BL,                ///< Beame–Luby (Algorithm 2)
  LinearBL,          ///< BL tuned for linear hypergraphs
  PermutationMIS,    ///< parallel priority rule for general hypergraphs
  KUW,               ///< Karp–Upfal–Wigderson prefix search
  SBL,               ///< the paper's contribution (Algorithm 1)
  Auto,              ///< pick by instance shape
};

[[nodiscard]] std::string_view algorithm_name(Algorithm a) noexcept;

/// Inverse of algorithm_name (plus "auto" → Auto).  nullopt on unknown
/// names — callers decide how to fail; nothing in the library exits the
/// process over a bad algorithm string (it used to: untrusted input must
/// never be fatal inside a server or mid-manifest).
[[nodiscard]] std::optional<Algorithm> algorithm_from_name(
    std::string_view name) noexcept;

/// All Algorithm values (for sweeps), excluding Auto.
[[nodiscard]] std::span<const Algorithm> all_algorithms() noexcept;

struct FindOptions {
  std::uint64_t seed = 1;
  bool record_trace = false;
  bool check_invariants = false;
  /// Run verify_mis on the output (cost: one pass over the hypergraph).
  bool verify = true;
  /// Thread pool handed to the chosen algorithm's parallel primitives
  /// (nullptr = process-global pool).  Counter-based randomness keeps the
  /// returned set bit-identical for any pool size.
  par::ThreadPool* pool = nullptr;
  /// Shard plan for the residual data plane (forwarded into
  /// CommonOptions::shards).  Never affects the returned set.
  ShardConfig shards;
  /// SBL-specific knobs pass through; other algorithms use their defaults.
  SblOptions sbl;
  /// Observation hook: called after every completed outer round with the
  /// 1-based count of rounds finished so far.  Wired for the algorithms
  /// that expose stage callbacks (SBL, BL, LinearBL); the others complete
  /// silently.  Purely observational — the callback sequence is itself a
  /// deterministic function of (graph, algorithm, seed), and the solve's
  /// Result is unaffected.  Powers `hmis serve`'s streaming progress
  /// frames (DESIGN.md §9).
  std::function<void(std::size_t)> on_progress;
  /// Cooperative cancellation (forwarded into CommonOptions::cancel; also
  /// checked once on entry so an already-cancelled request never starts).
  /// The round-structured solvers poll it every outer round and unwind
  /// with util::CancelledError; nullptr = never cancelled.
  const util::CancelToken* cancel = nullptr;
};

struct MisRun {
  Algorithm algorithm = Algorithm::Auto;
  algo::Result result;
  MisVerdict verdict;  ///< meaningful iff options.verify
};

[[nodiscard]] MisRun find_mis(const Hypergraph& h, Algorithm algorithm,
                              const FindOptions& opt = FindOptions{});

/// The Auto heuristic, exposed for tests: Luby for graphs, BL for small
/// dimension, SBL otherwise.
[[nodiscard]] Algorithm choose_algorithm(const Hypergraph& h);

// ---- Applicability envelopes ----------------------------------------------
// One source of truth for which instances each algorithm handles, shared by
// the planner, the CLI, and the test suite (previously each hard-coded its
// own copy).

/// Luby's algorithm is defined on ordinary graphs only (HMIS_CHECK-enforced
/// in luby_mis).
inline constexpr std::size_t kLubyMaxDimension = 2;
/// Plain BL's marking probability 1/(2^{d+1}Δ) vanishes for large dimension
/// — exactly the weakness SBL exists to fix (paper §1).  Beyond this the
/// expected progress per stage is negligible, so BL (and the LinearBL
/// variant built on it) is treated as out of envelope.
inline constexpr std::size_t kBlMaxDimension = 8;

/// True iff `a` is applicable to `h`: Luby needs dimension <= 2, BL and
/// LinearBL need dimension <= kBlMaxDimension (LinearBL additionally a
/// linear hypergraph); the remaining algorithms handle every instance.
/// `Auto` is always supported (choose_algorithm only picks supported ones).
[[nodiscard]] bool supports(Algorithm a, const Hypergraph& h);

}  // namespace hmis::core
