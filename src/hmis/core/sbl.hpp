// SBL — the Sampling Beame–Luby algorithm (paper Algorithm 1), the primary
// contribution of Bercea, Goyal, Harris & Srinivasan (SPAA 2014).
//
// Repeat while |V| >= 1/p²:
//   * sample V' by keeping each live vertex independently with prob. p;
//   * H' = (V', E'), E' = live edges entirely inside V';
//   * if H' has an edge larger than d: FAIL (paper) — we either resample the
//     round or restart the whole run, per options (DESIGN.md note 4);
//   * run BL on H'; its blue set joins the global IS *permanently*, all
//     other sampled vertices turn red;
//   * edges touching a red sampled vertex are deleted (they can never be
//     fully blue); remaining edges drop their blue members.
// Finally run the base-case solver (KUW or sequential greedy) on the
// remaining < 1/p² vertices.
//
// Parameters: p = n^{-α} and the dimension bound d.  The paper's asymptotic
// α = 1/log^(3) n and d = log^(2) n / (4 log^(3) n) are only meaningful for
// enormous n, so the default policy uses a practical α (1/3) and the
// derived d of claim (2), which preserves the analysis' actual guarantee —
// dimension violations occur with probability <= 1/n (measured in F5).
//
// Execution is parallel: the per-vertex marking loop, the dimension scans,
// and the coloring fold-back all run on the `hmis::par` runtime (the pool in
// `SblOptions::pool`, or the process-global pool).  Marks come from the
// counter RNG keyed by (stream, vertex) and partial results combine in chunk
// index order, so the returned independent set is bit-identical for any
// thread count.
#pragma once

#include "hmis/algo/bl.hpp"
#include "hmis/algo/kuw.hpp"
#include "hmis/algo/result.hpp"
#include "hmis/hypergraph/hypergraph.hpp"

namespace hmis::core {

enum class SblFailPolicy {
  RestartAll,     ///< paper-faithful: redo the whole algorithm
  ResampleRound,  ///< redraw this round's sample (same correctness, less work)
};

enum class SblParamPolicy {
  PaperAsymptotic,  ///< α = 1/log^(3) n, d = log^(2) n / (4 log^(3) n)
  Practical,        ///< α = 1/3, d = derived_dimension (claim (2))
};

enum class SblBaseCase {
  Kuw,     ///< Karp–Upfal–Wigderson prefix search (paper line 23)
  Greedy,  ///< sequential greedy ("time linear in vertices", §2)
};

struct SblOptions : algo::CommonOptions {
  SblParamPolicy param_policy = SblParamPolicy::Practical;
  SblFailPolicy fail_policy = SblFailPolicy::ResampleRound;
  SblBaseCase base_case = SblBaseCase::Kuw;
  /// Overrides (0 = use policy): sampling exponent, probability, dimension.
  double alpha_override = 0.0;
  double p_override = 0.0;
  std::size_t d_override = 0;
  std::size_t max_resamples_per_round = 200;
  std::size_t max_restarts = 10;
  /// Inner BL configuration (seed is derived per round).
  algo::BlOptions bl;
  /// Called after every SBL round with that round's stats.
  std::function<void(const algo::StageStats&)> on_round;
};

/// Resolved parameters for an instance (for reporting and the benches).
struct SblParams {
  double alpha = 0.0;
  double p = 0.0;
  std::size_t d = 0;
  std::size_t loop_threshold = 0;  ///< run while |V| >= this
  double predicted_round_bound = 0.0;
  double predicted_violation_bound = 0.0;
};
[[nodiscard]] SblParams resolve_sbl_params(std::size_t n, std::size_t m,
                                           const SblOptions& opt);

[[nodiscard]] algo::Result sbl(const Hypergraph& h,
                               const SblOptions& opt = SblOptions{});

}  // namespace hmis::core
