// The paper's parameter formulas (Bercea et al. §2.2), exposed as plain
// functions so the experiments can compare measured behaviour against the
// exact expressions used in the analysis.
//
// All logs base 2, clamped (DESIGN.md fidelity note 6).  The *asymptotic*
// settings (alpha, beta, the Theorem-2 dimension limit) are meaningful only
// for astronomically large n — e.g. bl_dimension_limit(1e6) ≈ 0.5 — so SBL
// defaults to the *derived* dimension of claim (2), which realizes the same
// guarantee ("dimension violations are < 1/n likely") at practical scales.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hmis::core {

/// α(n) = 1 / log^(3) n  — the paper's sampling exponent (p = n^{-α}).
[[nodiscard]] double paper_alpha(double n);

/// β(n) = log^(2) n / (8 (log^(3) n)^2) — the edge-count exponent of
/// Theorem 1 (SBL requires m <= n^β).
[[nodiscard]] double paper_beta(double n);

/// The edge-count bound n^{β(n)} itself.
[[nodiscard]] double paper_edge_bound(double n);

/// Theorem 2's dimension limit  d <= log^(2) n / (4 log^(3) n).
[[nodiscard]] double bl_dimension_limit(double n);

/// The paper's headline runtime bound  n^{2 / log^(3) n}.
[[nodiscard]] double paper_runtime_bound(double n);

/// Sampling probability p = n^{-α}.
[[nodiscard]] double sampling_probability(double n, double alpha);

/// The round bound r = 2 log n / p used in claims (1)–(3).
[[nodiscard]] double round_bound(double n, double p);

/// Claim (2)'s derived dimension:  d = log(r·m·n) / log(1/p) − 1, with
/// r = round_bound(n, p).  Guarantees Pr[some sampled edge exceeds d in some
/// round] <= r·m·p^{d+1} <= 1/n.  Clamped to >= 2.
[[nodiscard]] std::size_t derived_dimension(double n, double m, double p);

/// Claim (2)'s probability bound r·m·p^{d+1} for a given d.
[[nodiscard]] double dimension_violation_bound(double n, double m, double p,
                                               double d);

/// The SBL while-loop threshold: continue while |V| >= 1/p².
[[nodiscard]] std::size_t sbl_loop_threshold(double p);

/// Claim (1): per-round Chernoff failure bound
/// Pr[(n_i − n_{i+1}) <= p·n_i/2] <= exp(−p·n_i/8).
[[nodiscard]] double round_progress_failure_bound(double p, double n_i);

}  // namespace hmis::core
