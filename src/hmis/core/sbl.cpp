#include "hmis/core/sbl.hpp"

#include <algorithm>
#include <cmath>

#include "hmis/algo/greedy.hpp"
#include "hmis/core/theory.hpp"
#include "hmis/engine/round_context.hpp"
#include "hmis/hypergraph/mutable_hypergraph.hpp"
#include "hmis/hypergraph/validate.hpp"
#include "hmis/par/parallel_for.hpp"
#include "hmis/par/reduce.hpp"
#include "hmis/par/scan.hpp"
#include "hmis/par/task_group.hpp"
#include "hmis/util/check.hpp"
#include "hmis/util/rng.hpp"
#include "hmis/util/timer.hpp"

namespace hmis::core {

namespace {

/// Streams for the counter RNG: rounds and resamples must draw independent
/// marks, so the stream id encodes both.
constexpr std::uint64_t kResampleStride = 1'000'003;

/// Parallel dimension scan of the residual hypergraph: max size over live
/// edges.  Dead edges contribute 0, so the reduction runs over the original
/// edge ids without materializing a live-edge list first; the slab's size
/// array makes each probe one load instead of a span construction.
std::size_t live_dimension(const MutableHypergraph& mh, par::Metrics* metrics,
                           par::ThreadPool* pool) {
  return par::reduce_max<std::size_t>(
      0, mh.original().num_edges(), 0,
      [&](std::size_t e) {
        const EdgeId id = static_cast<EdgeId>(e);
        return mh.edge_live(id) ? mh.edge_size(id) : std::size_t{0};
      },
      metrics, pool);
}

/// Split a local-id mask into (blue, red) original-id lists via one stream
/// compaction: the blue offsets come from an exclusive scan, and the red
/// position of a non-blue id i is i minus the blues before it.  Both lists
/// come out ascending, so the result is independent of the chunk
/// decomposition (and therefore of the thread count).  Outputs and scan
/// scratch live in the round context, so the per-round fold-back reuses
/// capacity instead of allocating.
void split_by_mask(const std::vector<std::uint8_t>& blue_mask,
                   const std::vector<VertexId>& to_original,
                   engine::RoundContext& ctx, par::Metrics* metrics,
                   par::ThreadPool* pool) {
  const std::size_t k = to_original.size();
  auto& blue_offset = ctx.split_offsets(k);
  const std::uint32_t total_blue = par::exclusive_scan<std::uint32_t>(
      k, [&](std::size_t i) { return blue_mask[i] != 0 ? 1u : 0u; },
      blue_offset.data(), metrics, pool);
  auto& blue = ctx.blue_out();
  auto& red = ctx.red_out();
  blue.resize(total_blue);
  red.resize(k - total_blue);
  par::parallel_for(
      0, k,
      [&](std::size_t i) {
        if (blue_mask[i] != 0) {
          blue[blue_offset[i]] = to_original[i];
        } else {
          red[i - blue_offset[i]] = to_original[i];
        }
      },
      metrics, pool);
}

struct AttemptOutcome {
  bool success = true;
  bool dimension_failed = false;  // RestartAll trigger
  std::string failure_reason;
  std::size_t rounds = 0;
  std::uint64_t inner_stages = 0;
  std::size_t resamples = 0;
  std::vector<algo::StageStats> trace;
  std::vector<VertexId> independent_set;
};

AttemptOutcome run_attempt(const Hypergraph& h, const SblOptions& opt,
                           const SblParams& params, std::uint64_t attempt_seed,
                           par::Metrics* metrics, engine::RoundContext& ctx) {
  AttemptOutcome out;
  const util::CounterRng rng(attempt_seed);
  // The residual graph's own maintenance (sampling snapshots, fold-back
  // coloring, cascades) runs on the attempt's pool — this is where the
  // round cost O(n + Σ|e|) lives.
  MutableHypergraph mh(h, par::resolve_pool(opt.pool), opt.shards);

  // Algorithm 1 line 3: if the whole hypergraph already has dimension <= d,
  // run BL on it directly (line 26).  mh is fresh here, so its dimension is
  // exactly the input's cached one — no scan needed.
  if (h.dimension() <= params.d) {
    algo::StageStats stats;
    stats.stage = 0;
    stats.live_vertices = mh.num_live_vertices();
    stats.live_edges = mh.num_live_edges();
    stats.dimension = h.dimension();
    algo::BlOptions blopt = opt.bl;
    blopt.seed = rng.child(0xB1).seed();
    blopt.record_trace = false;
    blopt.pool = opt.pool;
    const auto outcome = algo::bl_run(mh, blopt, metrics, &ctx);
    out.success = outcome.success;
    out.failure_reason = outcome.failure_reason;
    out.inner_stages = outcome.stages;
    out.rounds = 1;
    out.independent_set = mh.blue_vertices();
    stats.inner_stages = outcome.stages;
    if (opt.record_trace) out.trace.push_back(stats);
    if (opt.on_round) opt.on_round(stats);
    return out;
  }

  util::DynamicBitset& keep = ctx.keep_mask(h.num_vertices());
  while (mh.num_live_vertices() >= params.loop_threshold) {
    ctx.poll_cancel();
    if (out.rounds >= opt.max_rounds) {
      out.success = false;
      out.failure_reason = "SBL exceeded max_rounds";
      return out;
    }
    algo::StageStats stats;
    stats.stage = out.rounds;
    stats.live_vertices = mh.num_live_vertices();
    stats.live_edges = mh.num_live_edges();
    stats.p = params.p;

    // The dimension scan is instrumentation only — no metrics charge,
    // matching the serial scan it replaces (the algorithm's own work is
    // metered at the call sites) — so it need not serialize the round:
    // it runs as a spawned task overlapping the live-vertex compaction and
    // sampling below.  Two read-only kernels of the same MutableHypergraph
    // nested on one pool is exactly the shape the work-stealing scheduler's
    // nested fork-join exists for; the group is joined before
    // induced_subgraph so every later use of stats.dimension sees the
    // finished value.  Both computations are independent pure functions of
    // the residual state, so overlapping them cannot perturb determinism.
    par::TaskGroup dimension_scan(*par::resolve_pool(opt.pool));
    dimension_scan.run(
        [&] { stats.dimension = live_dimension(mh, nullptr, opt.pool); });

    // ---- Sample V' (lines 6-7), redrawing on dimension violations. -------
    // The mark for vertex v depends only on (seed, stream, v), never on
    // evaluation order, so the marking loop parallelizes with idempotent
    // atomic bit sets and stays bit-identical across thread counts.
    const auto live = mh.live_vertices();
    // The round's residual frame comes out of the context's double-buffered
    // arena: the build reuses the previous rounds' CSR capacity, and the
    // returned frame stays valid through the inner BL and the fold-back
    // below (the next build lands in the other buffer).
    const MutableHypergraph::Induced* induced = nullptr;
    std::size_t resample = 0;
    for (;;) {
      const std::uint64_t stream =
          out.rounds * kResampleStride + resample + 1;
      keep.clear_all();
      par::parallel_for(
          0, live.size(),
          [&](std::size_t i) {
            const VertexId v = live[i];
            if (rng.bernoulli(params.p, stream, v)) keep.set_atomic(v);
          },
          metrics, opt.pool);
      stats.sampled = keep.count();
      dimension_scan.wait();  // no-op after the first resample iteration
      induced = &ctx.induced_frame(mh, keep);
      stats.sample_dimension = induced->graph.dimension();
      if (metrics) {
        metrics->add(mh.num_live_vertices() + mh.total_live_edge_size(),
                     par::log_depth(mh.num_live_vertices() + 1));
      }
      if (stats.sample_dimension <= params.d) break;  // line 8 check passed

      // Line 9: FAIL.
      ++resample;
      ++out.resamples;
      if (opt.fail_policy == SblFailPolicy::RestartAll) {
        out.dimension_failed = true;
        out.success = false;
        out.failure_reason = "sampled dimension exceeded d (restarting)";
        return out;
      }
      if (resample > opt.max_resamples_per_round) {
        out.success = false;
        out.failure_reason = "SBL exceeded max_resamples_per_round";
        return out;
      }
    }
    stats.resamples = resample;

    // ---- Run BL on H' (line 11). -----------------------------------------
    if (!induced->to_original.empty()) {
      algo::BlOptions blopt = opt.bl;
      blopt.seed = rng.child(0x1000 + out.rounds).seed();
      blopt.record_trace = false;
      blopt.pool = opt.pool;
      blopt.shards = ctx.shards;
      MutableHypergraph inner(induced->graph, par::resolve_pool(opt.pool),
                              ctx.shards);
      const auto outcome = algo::bl_run(inner, blopt, metrics, &ctx);
      if (!outcome.success) {
        out.success = false;
        out.failure_reason = "inner BL failed: " + outcome.failure_reason;
        return out;
      }
      out.inner_stages += outcome.stages;
      stats.inner_stages = outcome.stages;

      // ---- Fold the coloring back (lines 12-20). -------------------------
      const std::size_t k = induced->to_original.size();
      auto& blue_mask = ctx.blue_mask(k);
      par::parallel_for(
          0, k,
          [&](std::size_t local) {
            blue_mask[local] =
                inner.color(static_cast<VertexId>(local)) == Color::Blue;
          },
          metrics, opt.pool);
      split_by_mask(blue_mask, induced->to_original, ctx, metrics, opt.pool);
      const auto& blue = ctx.blue_out();
      const auto& red = ctx.red_out();
      stats.added_blue = blue.size();
      stats.forced_red = red.size();
      const std::size_t edges_before = mh.num_live_edges();
      // Blue first: shrinks edges (line 18-20); edges fully sampled cannot
      // become empty because BL returned an IS of H'.  Then red: deletes
      // every edge touching an excluded sampled vertex (line 13-17).
      mh.color_blue(blue);
      mh.color_red(red);
      stats.edges_deleted = edges_before - mh.num_live_edges();
      if (metrics) {
        metrics->add(mh.total_live_edge_size() + blue.size() + red.size(),
                     par::log_depth(edges_before + 1));
      }
    }

    if (opt.check_invariants) {
      const auto verdict_edge =
          find_violated_edge(h, to_membership(h, mh.blue_vertices()));
      HMIS_CHECK(!verdict_edge.has_value(),
                 "SBL invariant broken: blue set not independent");
    }

    ++out.rounds;
    if (opt.record_trace) out.trace.push_back(stats);
    if (opt.on_round) opt.on_round(stats);
  }

  // ---- Base case (line 23): KUW or sequential greedy. ---------------------
  if (mh.num_live_vertices() > 0) {
    algo::StageStats stats;
    stats.stage = out.rounds;
    stats.live_vertices = mh.num_live_vertices();
    stats.live_edges = mh.num_live_edges();
    if (opt.base_case == SblBaseCase::Kuw) {
      algo::KuwOptions kopt;
      kopt.seed = rng.child(0xC0DE).seed();
      kopt.max_rounds = opt.max_rounds;
      kopt.pool = opt.pool;
      const auto outcome = algo::kuw_run(mh, kopt, metrics, &ctx);
      if (!outcome.success) {
        out.success = false;
        out.failure_reason = "base-case KUW failed: " + outcome.failure_reason;
        return out;
      }
      stats.inner_stages = outcome.rounds;
      out.inner_stages += outcome.rounds;
    } else {
      // Sequential greedy on the residual structure.
      const auto& snapshot = ctx.snapshot_frame(mh);
      algo::GreedyOptions gopt;
      gopt.seed = rng.child(0x93ED).seed();
      const auto res = algo::greedy_mis(snapshot.graph, gopt);
      auto& is_blue = ctx.blue_mask(snapshot.to_original.size());
      par::parallel_for(
          0, res.independent_set.size(),
          [&](std::size_t i) { is_blue[res.independent_set[i]] = 1; },
          metrics, opt.pool);
      split_by_mask(is_blue, snapshot.to_original, ctx, metrics, opt.pool);
      const auto& blue = ctx.blue_out();
      const auto& red = ctx.red_out();
      mh.color_blue(blue);
      mh.color_red(red);
      if (metrics) {
        metrics->add(snapshot.graph.total_edge_size() + blue.size() +
                         red.size(),
                     snapshot.to_original.size());
      }
    }
    ++out.rounds;
    if (opt.record_trace) out.trace.push_back(stats);
    if (opt.on_round) opt.on_round(stats);
  }

  HMIS_CHECK(mh.num_live_vertices() == 0, "SBL left vertices uncolored");
  out.independent_set = mh.blue_vertices();
  return out;
}

}  // namespace

SblParams resolve_sbl_params(std::size_t n, std::size_t m,
                             const SblOptions& opt) {
  SblParams params;
  const double dn = static_cast<double>(std::max<std::size_t>(n, 2));
  const double dm = static_cast<double>(std::max<std::size_t>(m, 1));

  if (opt.alpha_override > 0.0) {
    params.alpha = opt.alpha_override;
  } else if (opt.param_policy == SblParamPolicy::PaperAsymptotic) {
    params.alpha = paper_alpha(dn);
  } else {
    params.alpha = 1.0 / 3.0;
  }
  params.p = opt.p_override > 0.0
                 ? std::clamp(opt.p_override, 1e-9, 1.0)
                 : sampling_probability(dn, params.alpha);

  if (opt.d_override > 0) {
    params.d = opt.d_override;
  } else if (opt.param_policy == SblParamPolicy::PaperAsymptotic) {
    params.d = static_cast<std::size_t>(
        std::max(2.0, std::floor(bl_dimension_limit(dn))));
  } else {
    params.d = derived_dimension(dn, dm, params.p);
  }
  params.loop_threshold = sbl_loop_threshold(params.p);
  params.predicted_round_bound = round_bound(dn, params.p);
  params.predicted_violation_bound = dimension_violation_bound(
      dn, dm, params.p, static_cast<double>(params.d));
  return params;
}

algo::Result sbl(const Hypergraph& h, const SblOptions& opt) {
  util::Timer timer;
  algo::Result result;
  const SblParams params =
      resolve_sbl_params(h.num_vertices(), h.num_edges(), opt);
  const util::CounterRng master(opt.seed);

  // One round context for the whole run: every attempt (and every round and
  // inner BL within it) reuses the same arena frames and scratch — and one
  // shard plan, so per-round residual rebuilds keep the session geometry.
  engine::RoundContext ctx;
  ctx.shards = opt.shards;
  ctx.cancel = opt.cancel;
  for (std::size_t attempt = 0; attempt <= opt.max_restarts; ++attempt) {
    AttemptOutcome outcome =
        run_attempt(h, opt, params, master.child(attempt).seed(),
                    &result.metrics, ctx);
    result.rounds += outcome.rounds;
    result.inner_stages += outcome.inner_stages;
    result.resamples += outcome.resamples;
    if (outcome.success) {
      result.independent_set = std::move(outcome.independent_set);
      result.trace = std::move(outcome.trace);
      result.success = true;
      result.seconds = timer.seconds();
      return result;
    }
    if (!outcome.dimension_failed) {
      // Hard failure (not the paper's FAIL): report it.
      result.success = false;
      result.failure_reason = std::move(outcome.failure_reason);
      result.seconds = timer.seconds();
      return result;
    }
    // dimension_failed && RestartAll: loop and retry with fresh randomness.
  }
  result.success = false;
  result.failure_reason = "SBL exhausted max_restarts (dimension violations)";
  result.seconds = timer.seconds();
  return result;
}

}  // namespace hmis::core
