// Instance analysis and algorithm planning.
//
// Inspects a hypergraph and reports the quantities the paper's results are
// conditioned on — dimension, linearity, Δ(H), whether m fits Theorem 1's
// n^β budget, the SBL parameters that would be used — and recommends an
// algorithm with the predicted round bound.  This is `choose_algorithm`
// grown into an explainable report (used by the CLI and examples).
#pragma once

#include <string>
#include <vector>

#include "hmis/core/mis.hpp"
#include "hmis/core/sbl.hpp"
#include "hmis/hypergraph/degree_stats.hpp"
#include "hmis/hypergraph/hypergraph.hpp"

namespace hmis::core {

struct InstanceReport {
  // Shape.
  std::size_t n = 0;
  std::size_t m = 0;
  std::size_t dimension = 0;
  std::size_t min_edge_size = 0;
  double avg_edge_size = 0.0;
  std::size_t max_degree = 0;
  double avg_degree = 0.0;
  /// Histogram of edge sizes: edge_size_histogram[s] = #edges of size s.
  std::vector<std::size_t> edge_size_histogram;
  bool linear = false;

  // Analysis quantities.
  DegreeStats degree_stats;
  double bl_marking_probability = 0.0;   ///< 1/(2^{d+1} Δ)
  double theorem1_edge_budget = 0.0;     ///< n^{β(n)}
  bool within_theorem1_budget = false;   ///< m <= n^{β(n)}
  SblParams sbl_params;                  ///< practical-policy parameters

  // Recommendation.
  Algorithm recommended = Algorithm::Auto;
  std::string rationale;
  /// Predicted rounds for the recommended algorithm (bound, not estimate).
  double predicted_round_bound = 0.0;
};

struct PlannerOptions {
  /// Degree statistics cost controls.
  DegreeStatsOptions stats;
  /// Linearity detection is O(Σ C(|e|,2)); skipped above this budget.
  std::size_t linearity_pair_budget = 20'000'000;
};

[[nodiscard]] InstanceReport analyze_instance(
    const Hypergraph& h, const PlannerOptions& opt = PlannerOptions{});

/// Render the report as human-readable lines (used by the CLI).
[[nodiscard]] std::string format_report(const InstanceReport& report);

}  // namespace hmis::core
