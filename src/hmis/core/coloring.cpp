#include "hmis/core/coloring.hpp"

#include "hmis/hypergraph/builder.hpp"
#include "hmis/util/check.hpp"

namespace hmis::core {

Coloring strong_coloring(const Hypergraph& h, const ColoringOptions& opt) {
  Coloring out;
  out.color.assign(h.num_vertices(), -1);
  std::size_t uncolored = h.num_vertices();

  while (uncolored > 0) {
    if (static_cast<std::size_t>(out.num_colors) >= opt.max_colors) {
      out.success = false;
      out.failure_reason = "strong_coloring exceeded max_colors";
      return out;
    }
    // Residual hypergraph: uncolored vertices; edges whose members are all
    // uncolored and that still have >= 2 members (size-1 constraints are
    // vacuous for coloring).
    std::vector<VertexId> to_original;
    std::vector<VertexId> to_local(h.num_vertices(), kInvalidVertex);
    to_original.reserve(uncolored);
    for (VertexId v = 0; v < h.num_vertices(); ++v) {
      if (out.color[v] < 0) {
        to_local[v] = static_cast<VertexId>(to_original.size());
        to_original.push_back(v);
      }
    }
    HypergraphBuilder builder(to_original.size());
    VertexList local;
    for (EdgeId e = 0; e < h.num_edges(); ++e) {
      const auto verts = h.edge(e);
      if (verts.size() < 2) continue;
      local.clear();
      bool inside = true;
      for (const VertexId v : verts) {
        if (to_local[v] == kInvalidVertex) {
          inside = false;
          break;
        }
        local.push_back(to_local[v]);
      }
      if (inside) {
        builder.add_edge(
            std::span<const VertexId>(local.data(), local.size()));
      }
    }
    const Hypergraph residual = builder.build();

    FindOptions fopt;
    fopt.seed = opt.seed +
                static_cast<std::uint64_t>(out.num_colors) * 0x9e3779b9ULL;
    fopt.pool = opt.pool;
    const auto run = find_mis(residual, opt.algorithm, fopt);
    if (!run.result.success) {
      out.success = false;
      out.failure_reason =
          "MIS extraction failed: " + run.result.failure_reason;
      return out;
    }
    HMIS_CHECK(run.verdict.ok(), "iterated MIS returned an invalid set");
    HMIS_CHECK(!run.result.independent_set.empty() || uncolored == 0,
               "empty MIS on a non-empty residual hypergraph");
    out.total_mis_rounds += run.result.rounds;

    for (const VertexId local_v : run.result.independent_set) {
      out.color[to_original[local_v]] = out.num_colors;
      --uncolored;
    }
    ++out.num_colors;
  }
  return out;
}

bool is_strong_coloring(const Hypergraph& h, const std::vector<int>& color) {
  if (color.size() != h.num_vertices()) return false;
  for (const int c : color) {
    if (c < 0) return false;
  }
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const auto verts = h.edge(e);
    if (verts.size() < 2) continue;
    bool monochrome = true;
    for (std::size_t i = 1; i < verts.size(); ++i) {
      if (color[verts[i]] != color[verts[0]]) {
        monochrome = false;
        break;
      }
    }
    if (monochrome) return false;
  }
  return true;
}

}  // namespace hmis::core
