#include "hmis/hypergraph/builder.hpp"

#include <algorithm>

#include "hmis/util/check.hpp"

namespace hmis {

HypergraphBuilder& HypergraphBuilder::add_edge(
    std::span<const VertexId> vertices) {
  VertexList e(vertices.begin(), vertices.end());
  std::sort(e.begin(), e.end());
  e.erase(std::unique(e.begin(), e.end()), e.end());
  HMIS_CHECK(!e.empty(), "empty edge: no independent set can exist");
  HMIS_CHECK(e.back() < n_, "edge references vertex out of range");
  edges_.push_back(std::move(e));
  return *this;
}

HypergraphBuilder& HypergraphBuilder::add_edge(
    std::initializer_list<VertexId> vertices) {
  return add_edge(std::span<const VertexId>(vertices.begin(), vertices.size()));
}

Hypergraph HypergraphBuilder::build() {
  std::vector<VertexList> edges = std::move(edges_);
  edges_.clear();

  // Dedupe and minimalization operate on a (size, lex, insertion) sorted
  // index so duplicates are adjacent and subsets precede supersets, but the
  // surviving edges are emitted in INSERTION order — edge ids are stable
  // and predictable for callers.
  std::vector<char> drop(edges.size(), 0);
  if ((dedupe_ || minimalize_) && !edges.empty()) {
    std::vector<std::uint32_t> order(edges.size());
    for (std::uint32_t i = 0; i < edges.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (edges[a].size() != edges[b].size()) {
                  return edges[a].size() < edges[b].size();
                }
                if (edges[a] != edges[b]) return edges[a] < edges[b];
                return a < b;  // first insertion wins among duplicates
              });
    if (dedupe_) {
      for (std::size_t i = 1; i < order.size(); ++i) {
        if (edges[order[i]] == edges[order[i - 1]]) drop[order[i]] = 1;
      }
    }
    if (minimalize_) {
      // An edge is dominated iff some strictly smaller kept edge is a
      // subset of it.  Candidates: kept edges incident to ANY of its
      // vertices (a subset shares every one of its own vertices with the
      // superset, so it appears in at least one of those incidence lists).
      std::vector<std::vector<std::uint32_t>> kept_incident(n_);
      for (const std::uint32_t ei : order) {
        if (drop[ei]) continue;
        const VertexList& e = edges[ei];
        bool dominated = false;
        for (const VertexId v : e) {
          for (const std::uint32_t ki : kept_incident[v]) {
            const VertexList& f = edges[ki];
            if (f.size() < e.size() &&
                std::includes(e.begin(), e.end(), f.begin(), f.end())) {
              dominated = true;
              break;
            }
          }
          if (dominated) break;
        }
        if (dominated) {
          drop[ei] = 1;
          continue;
        }
        for (const VertexId v : e) kept_incident[v].push_back(ei);
      }
    }
    std::size_t out = 0;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (!drop[i]) {
        if (out != i) edges[out] = std::move(edges[i]);
        ++out;
      }
    }
    edges.resize(out);
  }

  Hypergraph h;
  h.n_ = n_;
  h.own_edge_offsets_.assign(1, 0);
  h.own_edge_offsets_.reserve(edges.size() + 1);
  std::size_t total = 0;
  for (const auto& e : edges) total += e.size();
  h.own_edge_vertices_.reserve(total);
  h.dimension_ = 0;
  h.min_edge_size_ = edges.empty() ? 0 : SIZE_MAX;
  for (const auto& e : edges) {
    h.own_edge_vertices_.insert(h.own_edge_vertices_.end(), e.begin(), e.end());
    h.own_edge_offsets_.push_back(h.own_edge_vertices_.size());
    h.dimension_ = std::max(h.dimension_, e.size());
    h.min_edge_size_ = std::min(h.min_edge_size_, e.size());
  }
  if (edges.empty()) h.min_edge_size_ = 0;

  // Vertex -> incident edge CSR (counting sort over edge memberships).
  h.own_vertex_offsets_.assign(n_ + 1, 0);
  for (const VertexId v : h.own_edge_vertices_) ++h.own_vertex_offsets_[v + 1];
  for (std::size_t v = 0; v < n_; ++v) {
    h.own_vertex_offsets_[v + 1] += h.own_vertex_offsets_[v];
  }
  h.own_vertex_edges_.resize(h.own_edge_vertices_.size());
  std::vector<std::size_t> cursor(h.own_vertex_offsets_.begin(),
                                  h.own_vertex_offsets_.end() - 1);
  for (EdgeId e = 0; e < edges.size(); ++e) {
    for (const VertexId v : edges[e]) {
      h.own_vertex_edges_[cursor[v]++] = e;
    }
  }
  h.rebind_owned_();
  return h;
}

Hypergraph make_hypergraph(std::size_t num_vertices,
                           std::span<const VertexList> edges) {
  HypergraphBuilder b(num_vertices);
  for (const auto& e : edges) {
    b.add_edge(std::span<const VertexId>(e.data(), e.size()));
  }
  return b.build();
}

Hypergraph make_hypergraph(std::size_t num_vertices,
                           std::initializer_list<VertexList> edges) {
  HypergraphBuilder b(num_vertices);
  for (const auto& e : edges) {
    b.add_edge(std::span<const VertexId>(e.data(), e.size()));
  }
  return b.build();
}

}  // namespace hmis
