// Minimal transversals (hitting sets) via MIS complementation.
//
// For a hypergraph H with all edges non-empty, the complement of a maximal
// independent set I is a minimal transversal:
//  * transversal: no edge fits inside I, so every edge meets V \ I;
//  * minimal: maximality of I gives every v ∈ V \ I an edge e with
//    e \ {v} ⊆ I — remove v and that edge is missed.
// This duality makes every MIS algorithm in the library a minimal
// hitting-set engine (monitoring placement, test-suite reduction, ...).
#pragma once

#include <vector>

#include "hmis/hypergraph/hypergraph.hpp"
#include "hmis/util/bitset.hpp"

namespace hmis {

/// Complement of a vertex set, as a sorted id list.
[[nodiscard]] std::vector<VertexId> complement_of(
    const Hypergraph& h, std::span<const VertexId> set);

/// Does `cover` intersect every edge?
[[nodiscard]] bool is_transversal(const Hypergraph& h,
                                  const util::DynamicBitset& cover);

/// Is `cover` a transversal no proper subset of which is one?
/// O(Σ|e|): v is redundant iff no edge has v as its only covered vertex.
[[nodiscard]] bool is_minimal_transversal(const Hypergraph& h,
                                          const util::DynamicBitset& cover);

/// Minimal transversal from a maximal independent set (asserts nothing —
/// pair with verify_mis on the input set; the output then satisfies
/// is_minimal_transversal by the duality above).
[[nodiscard]] std::vector<VertexId> transversal_from_mis(
    const Hypergraph& h, std::span<const VertexId> mis);

}  // namespace hmis
