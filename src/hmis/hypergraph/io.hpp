// Plain-text hypergraph serialization.
//
// Format ("hg1"):
//   hg1 <num_vertices> <num_edges>
//   <k> <v1> <v2> ... <vk>      (one line per edge)
// Lines starting with '#' are comments.  Vertices are 0-based.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "hmis/hypergraph/hypergraph.hpp"

namespace hmis {

void write_hypergraph(std::ostream& os, const Hypergraph& h);
[[nodiscard]] Hypergraph read_hypergraph(std::istream& is);

void save_hypergraph(const std::string& path, const Hypergraph& h);

/// Load a graph from `path`, auto-detecting the format from the leading
/// magic bytes: "HGB2" maps the file zero-copy, "HGB1" streams the binary
/// format, anything else is parsed as text hg1.
[[nodiscard]] Hypergraph load_hypergraph(const std::string& path);

/// Explicit-format loader for text hg1 (no sniffing).
[[nodiscard]] Hypergraph load_hypergraph_text(const std::string& path);

// Binary format ("HGB1"): magic, n, m as u64 little-endian, then per edge a
// u32 size followed by u32 vertex ids.  Fixed-width: smaller and much
// faster than text once vertex ids exceed ~4 digits.
void write_hypergraph_binary(std::ostream& os, const Hypergraph& h);
[[nodiscard]] Hypergraph read_hypergraph_binary(std::istream& is);
void save_hypergraph_binary(const std::string& path, const Hypergraph& h);
[[nodiscard]] Hypergraph load_hypergraph_binary(const std::string& path);

// Mmap-able CSR snapshot ("HGB2", DESIGN.md §11).  Layout, all values
// little-endian:
//
//   [  0]  magic "HGB2"                          (4 bytes)
//   [  4]  u32  version (currently 1)
//   [  8]  u64  n, m, dimension, min_edge_size, total_edge_size
//   [ 48]  section table: 4 x { u64 offset, u64 bytes, u64 checksum }
//   [192]  sections, in table order, each at a 64-byte-aligned offset
//          (zero-padded gaps): edge_offsets (u64 x m+1),
//          edge_vertices (u32 x total), vertex_offsets (u64 x n+1),
//          vertex_edges (u32 x total) — the four CSR arrays exactly as
//          Hypergraph holds them.
//
// Loading is header validation plus pointer fixup: on a 64-bit
// little-endian build the section bytes ARE the in-memory arrays, so
// load_hypergraph_mapped returns a borrowed-storage Hypergraph whose spans
// point into the mapping — no per-edge parsing, no copies.
void write_hypergraph_hgb2(std::ostream& os, const Hypergraph& h);
void save_hypergraph_hgb2(const std::string& path, const Hypergraph& h);

/// Owned-storage HGB2 load (copies the arrays out of the file; works on
/// any platform).
[[nodiscard]] Hypergraph load_hypergraph_hgb2(const std::string& path);

/// Zero-copy HGB2 load: mmap + validate + pointer fixup.  The returned
/// graph's is_mapped() is true and the mapping lives as long as any copy
/// of the graph.  Falls back to the owned load on platforms where the
/// in-memory and on-disk layouts differ.
[[nodiscard]] Hypergraph load_hypergraph_mapped(const std::string& path);

/// Adopt an in-memory HGB2 image (a serve graph frame) without copying
/// when alignment permits; the buffer is kept alive by the graph.
[[nodiscard]] Hypergraph hypergraph_from_hgb2_buffer(
    std::shared_ptr<const std::string> bytes);

namespace detail {
/// The HGB2 section checksum, exposed so tests and external tooling can
/// craft or re-sign section images without reimplementing the algorithm.
[[nodiscard]] std::uint64_t hgb2_section_checksum(const unsigned char* data,
                                                  std::uint64_t len);
}  // namespace detail

}  // namespace hmis
