// Plain-text hypergraph serialization.
//
// Format ("hg1"):
//   hg1 <num_vertices> <num_edges>
//   <k> <v1> <v2> ... <vk>      (one line per edge)
// Lines starting with '#' are comments.  Vertices are 0-based.
#pragma once

#include <iosfwd>
#include <string>

#include "hmis/hypergraph/hypergraph.hpp"

namespace hmis {

void write_hypergraph(std::ostream& os, const Hypergraph& h);
[[nodiscard]] Hypergraph read_hypergraph(std::istream& is);

void save_hypergraph(const std::string& path, const Hypergraph& h);
[[nodiscard]] Hypergraph load_hypergraph(const std::string& path);

// Binary format ("HGB1"): magic, n, m as u64 little-endian, then per edge a
// u32 size followed by u32 vertex ids.  Fixed-width: smaller and much
// faster than text once vertex ids exceed ~4 digits.
void write_hypergraph_binary(std::ostream& os, const Hypergraph& h);
[[nodiscard]] Hypergraph read_hypergraph_binary(std::istream& is);
void save_hypergraph_binary(const std::string& path, const Hypergraph& h);
[[nodiscard]] Hypergraph load_hypergraph_binary(const std::string& path);

}  // namespace hmis
