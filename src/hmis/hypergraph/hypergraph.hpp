// Immutable hypergraph in compressed sparse row (CSR) form.
//
// H = (V, E): V = {0..n-1}, every edge is a sorted, duplicate-free list of
// vertices.  Both directions are stored: edge -> vertices and
// vertex -> incident edges, so algorithms can iterate either way without
// rebuilding.  Construction goes through HypergraphBuilder, which sorts,
// dedupes and validates.
//
// Storage comes in two flavours behind one type (DESIGN.md §11):
//
//  * owned    — the four CSR arrays live in member vectors (builder output,
//               streamed loads, induced subgraphs).
//  * borrowed — the arrays are read-only views into an externally owned
//               buffer (an mmap'ed HGB2 file or an adopted wire frame),
//               kept alive by `keepalive_`.  Nothing is copied: a mapped
//               load is header validation plus pointer fixup.
//
// All accessors read through spans, so algorithms never see the
// difference; copying a borrowed graph shares the backing buffer.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "hmis/hypergraph/types.hpp"

namespace hmis {

class HypergraphBuilder;
class MutableHypergraph;

namespace detail {
struct CsrAccess;
}

class Hypergraph {
 public:
  Hypergraph() { rebind_owned_(); }
  Hypergraph(const Hypergraph& other);
  Hypergraph& operator=(const Hypergraph& other);
  Hypergraph(Hypergraph&& other) noexcept;
  Hypergraph& operator=(Hypergraph&& other) noexcept;
  ~Hypergraph() = default;

  [[nodiscard]] std::size_t num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edge_offsets_.empty() ? 0 : edge_offsets_.size() - 1;
  }

  /// Sorted vertex list of edge e.
  [[nodiscard]] std::span<const VertexId> edge(EdgeId e) const noexcept {
    return {edge_vertices_.data() + edge_offsets_[e],
            edge_vertices_.data() + edge_offsets_[e + 1]};
  }

  /// Ids of edges incident to vertex v (ascending).
  [[nodiscard]] std::span<const EdgeId> edges_of(VertexId v) const noexcept {
    return {vertex_edges_.data() + vertex_offsets_[v],
            vertex_edges_.data() + vertex_offsets_[v + 1]};
  }

  [[nodiscard]] std::size_t edge_size(EdgeId e) const noexcept {
    return edge_offsets_[e + 1] - edge_offsets_[e];
  }
  [[nodiscard]] std::size_t degree(VertexId v) const noexcept {
    return vertex_offsets_[v + 1] - vertex_offsets_[v];
  }

  /// Maximum edge size (the paper's "dimension"); 0 if there are no edges.
  [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }
  /// Minimum edge size; 0 if there are no edges.
  [[nodiscard]] std::size_t min_edge_size() const noexcept {
    return min_edge_size_;
  }
  /// Sum of |e| over all edges.
  [[nodiscard]] std::size_t total_edge_size() const noexcept {
    return edge_vertices_.size();
  }

  /// True when the CSR arrays are views into an externally owned buffer
  /// (mmap'ed file / adopted frame) instead of member vectors.
  [[nodiscard]] bool is_mapped() const noexcept { return keepalive_ != nullptr; }

  // Raw CSR views (serializers, digests).  edge_offsets has num_edges()+1
  // entries, vertex_offsets num_vertices()+1; the two id arrays both have
  // total_edge_size() entries.
  [[nodiscard]] std::span<const std::size_t> edge_offsets() const noexcept {
    return edge_offsets_;
  }
  [[nodiscard]] std::span<const VertexId> edge_vertices() const noexcept {
    return edge_vertices_;
  }
  [[nodiscard]] std::span<const std::size_t> vertex_offsets() const noexcept {
    return vertex_offsets_;
  }
  [[nodiscard]] std::span<const EdgeId> vertex_edges() const noexcept {
    return vertex_edges_;
  }

  /// True if v appears in edge e (binary search).
  [[nodiscard]] bool edge_contains(EdgeId e, VertexId v) const noexcept;

  /// All edges as materialized vectors (convenience for tests/generators).
  [[nodiscard]] std::vector<VertexList> edges_as_lists() const;

 private:
  friend class HypergraphBuilder;
  // MutableHypergraph::induced_subgraph assembles induced CSR storage with
  // parallel kernels, bypassing the (serial) builder; it honors the same
  // invariants (sorted duplicate-free edges, deduped edge set, ascending
  // incidence lists).
  friend class MutableHypergraph;
  // io.cpp's adoption hook: the HGB2 loaders construct graphs directly from
  // validated CSR arrays (owned or borrowed) without the builder.
  friend struct detail::CsrAccess;

  /// Point the view spans at the member vectors (owned storage).  Called
  /// after every owned-storage (re)assembly; borrowed graphs never do —
  /// their spans were fixed at adoption and the vectors stay empty.
  void rebind_owned_() noexcept {
    edge_offsets_ = {own_edge_offsets_.data(), own_edge_offsets_.size()};
    edge_vertices_ = {own_edge_vertices_.data(), own_edge_vertices_.size()};
    vertex_offsets_ = {own_vertex_offsets_.data(), own_vertex_offsets_.size()};
    vertex_edges_ = {own_vertex_edges_.data(), own_vertex_edges_.size()};
  }

  std::size_t n_ = 0;
  // Owned storage (empty in borrowed mode).
  std::vector<std::size_t> own_edge_offsets_{0};
  std::vector<VertexId> own_edge_vertices_;
  std::vector<std::size_t> own_vertex_offsets_;
  std::vector<EdgeId> own_vertex_edges_;
  // Borrowed-mode backing buffer (null in owned mode).  Shared so copies of
  // a mapped graph share one mapping.
  std::shared_ptr<const void> keepalive_;
  // The views every accessor reads through.
  std::span<const std::size_t> edge_offsets_;
  std::span<const VertexId> edge_vertices_;
  std::span<const std::size_t> vertex_offsets_;
  std::span<const EdgeId> vertex_edges_;
  std::size_t dimension_ = 0;
  std::size_t min_edge_size_ = 0;
};

}  // namespace hmis
