// Immutable hypergraph in compressed sparse row (CSR) form.
//
// H = (V, E): V = {0..n-1}, every edge is a sorted, duplicate-free list of
// vertices.  Both directions are stored: edge -> vertices and
// vertex -> incident edges, so algorithms can iterate either way without
// rebuilding.  Construction goes through HypergraphBuilder, which sorts,
// dedupes and validates.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "hmis/hypergraph/types.hpp"

namespace hmis {

class HypergraphBuilder;
class MutableHypergraph;

class Hypergraph {
 public:
  Hypergraph() = default;

  [[nodiscard]] std::size_t num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edge_offsets_.empty() ? 0 : edge_offsets_.size() - 1;
  }

  /// Sorted vertex list of edge e.
  [[nodiscard]] std::span<const VertexId> edge(EdgeId e) const noexcept {
    return {edge_vertices_.data() + edge_offsets_[e],
            edge_vertices_.data() + edge_offsets_[e + 1]};
  }

  /// Ids of edges incident to vertex v (ascending).
  [[nodiscard]] std::span<const EdgeId> edges_of(VertexId v) const noexcept {
    return {vertex_edges_.data() + vertex_offsets_[v],
            vertex_edges_.data() + vertex_offsets_[v + 1]};
  }

  [[nodiscard]] std::size_t edge_size(EdgeId e) const noexcept {
    return edge_offsets_[e + 1] - edge_offsets_[e];
  }
  [[nodiscard]] std::size_t degree(VertexId v) const noexcept {
    return vertex_offsets_[v + 1] - vertex_offsets_[v];
  }

  /// Maximum edge size (the paper's "dimension"); 0 if there are no edges.
  [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }
  /// Minimum edge size; 0 if there are no edges.
  [[nodiscard]] std::size_t min_edge_size() const noexcept {
    return min_edge_size_;
  }
  /// Sum of |e| over all edges.
  [[nodiscard]] std::size_t total_edge_size() const noexcept {
    return edge_vertices_.size();
  }

  /// True if v appears in edge e (binary search).
  [[nodiscard]] bool edge_contains(EdgeId e, VertexId v) const noexcept;

  /// All edges as materialized vectors (convenience for tests/generators).
  [[nodiscard]] std::vector<VertexList> edges_as_lists() const;

 private:
  friend class HypergraphBuilder;
  // MutableHypergraph::induced_subgraph assembles induced CSR storage with
  // parallel kernels, bypassing the (serial) builder; it honors the same
  // invariants (sorted duplicate-free edges, deduped edge set, ascending
  // incidence lists).
  friend class MutableHypergraph;

  std::size_t n_ = 0;
  std::vector<std::size_t> edge_offsets_{0};
  std::vector<VertexId> edge_vertices_;
  std::vector<std::size_t> vertex_offsets_;
  std::vector<EdgeId> vertex_edges_;
  std::size_t dimension_ = 0;
  std::size_t min_edge_size_ = 0;
};

}  // namespace hmis
