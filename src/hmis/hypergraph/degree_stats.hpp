// Kelsen's normalized-degree machinery (paper §3).
//
// For a hypergraph H of dimension d, a non-empty vertex set x and
// 1 <= j <= d - |x|:
//   N_j(x,H)  = { y : x ∪ y ∈ E, x ∩ y = ∅, |y| = j }   (edges of size |x|+j
//               around x)
//   d_j(x,H)  = |N_j(x,H)|^{1/j}                        (normalized degree)
//   Δ_i(H)    = max{ d_{i-|x|}(x,H) : 0 < |x| < i }     (per edge size i)
//   Δ(H)      = max{ Δ_i(H) : 2 <= i <= d }
//
// BL uses Δ(H) to set its marking probability p = 1/(2^{d+1} Δ); the
// potential analysis (Lemma 5) tracks the v_i(H) / T_j thresholds built from
// the Δ_i.
//
// Exact computation enumerates, for every edge e, all non-empty proper
// subsets x ⊂ e and counts (x, |e|) pairs: O(m · 2^d) subset emissions.
// Edges larger than `max_enum_edge_size` — or instances whose total emission
// count exceeds `enum_budget` — fall back to singleton subsets only
// (|x| = 1), which lower-bounds Δ; `exact` reports which mode ran.
// Subsets are identified by a 64-bit hash (collisions only *merge* counts;
// at the default budget the collision probability is < 1e-6).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hmis/hypergraph/hypergraph.hpp"

namespace hmis {

struct DegreeStatsOptions {
  /// Edges longer than this use singleton subsets only.
  std::size_t max_enum_edge_size = 16;
  /// Cap on total subset emissions before falling back to singletons.
  std::uint64_t enum_budget = 8'000'000;
};

struct DegreeStats {
  std::size_t dimension = 0;   ///< max live edge size d
  double delta = 0.0;          ///< Δ(H)
  bool exact = true;           ///< full subset enumeration completed
  /// Δ_i(H) for i = 0..dimension (entries < 2 unused, kept for indexing).
  std::vector<double> delta_i;
  /// Largest |N_j(x)| seen for any (x, j) — raw, un-normalized.
  std::uint64_t max_count = 0;
};

/// Compute stats over an explicit edge list (each edge sorted).
[[nodiscard]] DegreeStats compute_degree_stats(
    std::span<const VertexList> edges,
    const DegreeStatsOptions& opt = DegreeStatsOptions{});

/// Compute stats for an immutable hypergraph.
[[nodiscard]] DegreeStats compute_degree_stats(
    const Hypergraph& h, const DegreeStatsOptions& opt = DegreeStatsOptions{});

/// |N_j(x,H)| for one specific x over an edge list: result[j] = count of
/// edges e ⊇ x with |e| = |x| + j.  result.size() == max_j + 1; entry 0
/// counts edges equal to x itself.
[[nodiscard]] std::vector<std::uint64_t> neighborhood_counts(
    std::span<const VertexList> edges, const VertexList& x);

/// d_j(x,H) = count^{1/j} helper.
[[nodiscard]] double normalized_degree(std::uint64_t count, std::size_t j);

/// Kelsen potentials v_i(H) (paper §3, with the corrected recurrence
/// F(i) = i·F(i-1) + d², DESIGN.md fidelity note 5):
///   v_d = Δ_d,   v_i = max(Δ_i, (log2 n)^{f(i)} · v_{i+1})  for 2 <= i < d.
///
/// The scale factors (log n)^{f(i)} overflow doubles already at f(4) for
/// moderate d, so this returns the potentials in LOG2 SPACE:
/// result[i] = log2(v_i(H)).  Entries for i < 2 are 0; an all-zero Δ level
/// propagates -inf, which max() handles naturally.  When `log2_thresholds`
/// is non-null it receives log2(T_j) = log2(v_2) − F(j−1)·log2(log2 n).
[[nodiscard]] std::vector<double> kelsen_potentials_log2(
    const DegreeStats& stats, double n, std::vector<double>* log2_thresholds);

}  // namespace hmis
