// Residual hypergraph maintenance, in two interchangeable flavours per
// operation: a plain serial loop (pool == nullptr, or sub-grain input) and a
// deterministic parallel kernel on the attached ThreadPool.  The flavours
// must agree bit-for-bit — the kernels therefore use only order-independent
// ingredients:
//   * exclusive-scan compaction for every packed output (ascending ids),
//   * index-order reduction for max/total sizes,
//   * idempotent atomic bit sets/resets for edge liveness marking,
//   * commutative atomic counters for degree bookkeeping (each (edge,
//     vertex) pair contributes exactly once, so the final sums are exact),
//   * a total (size, lex, id) sort order wherever duplicates must pick a
//     canonical survivor.
#include "hmis/hypergraph/mutable_hypergraph.hpp"

#include <algorithm>
#include <atomic>

#include "hmis/par/parallel_for.hpp"
#include "hmis/par/reduce.hpp"
#include "hmis/par/scan.hpp"
#include "hmis/par/sort.hpp"
#include "hmis/util/check.hpp"

namespace hmis {

namespace {

inline void atomic_decrement(std::uint32_t& counter) noexcept {
  std::atomic_ref<std::uint32_t> ref(counter);
  ref.fetch_sub(1, std::memory_order_relaxed);
}

inline void atomic_increment(std::uint32_t& counter) noexcept {
  std::atomic_ref<std::uint32_t> ref(counter);
  ref.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

MutableHypergraph::MutableHypergraph(const Hypergraph& h, par::ThreadPool* pool)
    : original_(&h), n_(h.num_vertices()), pool_(pool) {
  color_.assign(n_, Color::None);
  live_vertex_count_ = n_;
  const std::size_t m = h.num_edges();
  edges_.resize(m);
  if (pool_ == nullptr) {
    for (EdgeId e = 0; e < m; ++e) {
      const auto verts = h.edge(e);
      edges_[e].assign(verts.begin(), verts.end());
    }
  } else {
    par::parallel_for(
        0, m,
        [&](std::size_t e) {
          const auto verts = h.edge(static_cast<EdgeId>(e));
          edges_[e].assign(verts.begin(), verts.end());
        },
        nullptr, pool_);
  }
  edge_live_.resize(m, true);
  live_edge_count_ = m;
  live_degree_.assign(n_, 0);
  if (pool_ == nullptr) {
    for (VertexId v = 0; v < n_; ++v) {
      live_degree_[v] = static_cast<std::uint32_t>(h.degree(v));
    }
  } else {
    par::parallel_for(
        0, n_,
        [&](std::size_t v) {
          live_degree_[v] =
              static_cast<std::uint32_t>(h.degree(static_cast<VertexId>(v)));
        },
        nullptr, pool_);
  }
}

std::vector<VertexId> MutableHypergraph::live_vertices() const {
  if (!use_parallel(n_)) {
    std::vector<VertexId> out;
    out.reserve(live_vertex_count_);
    for (VertexId v = 0; v < n_; ++v) {
      if (color_[v] == Color::None) out.push_back(v);
    }
    return out;
  }
  return par::pack_indices(
      n_, [&](std::size_t v) { return color_[v] == Color::None; }, nullptr,
      pool_);
}

std::vector<EdgeId> MutableHypergraph::live_edges() const {
  if (!use_parallel(edges_.size())) {
    std::vector<EdgeId> out;
    out.reserve(live_edge_count_);
    for (EdgeId e = 0; e < edges_.size(); ++e) {
      if (edge_live_[e]) out.push_back(e);
    }
    return out;
  }
  return par::pack_indices(
      edges_.size(), [&](std::size_t e) { return bool{edge_live_[e]}; },
      nullptr, pool_);
}

std::size_t MutableHypergraph::max_live_edge_size() const {
  if (!use_parallel(edges_.size())) {
    std::size_t d = 0;
    for (EdgeId e = 0; e < edges_.size(); ++e) {
      if (edge_live_[e]) d = std::max(d, edges_[e].size());
    }
    return d;
  }
  return par::reduce_max<std::size_t>(
      0, edges_.size(), 0,
      [&](std::size_t e) { return edge_live_[e] ? edges_[e].size() : 0; },
      nullptr, pool_);
}

std::size_t MutableHypergraph::total_live_edge_size() const {
  if (!use_parallel(edges_.size())) {
    std::size_t total = 0;
    for (EdgeId e = 0; e < edges_.size(); ++e) {
      if (edge_live_[e]) total += edges_[e].size();
    }
    return total;
  }
  return par::reduce_sum<std::size_t>(
      0, edges_.size(),
      [&](std::size_t e) { return edge_live_[e] ? edges_[e].size() : 0; },
      nullptr, pool_);
}

std::vector<VertexId> MutableHypergraph::blue_vertices() const {
  if (!use_parallel(n_)) {
    std::vector<VertexId> out;
    for (VertexId v = 0; v < n_; ++v) {
      if (color_[v] == Color::Blue) out.push_back(v);
    }
    return out;
  }
  return par::pack_indices(
      n_, [&](std::size_t v) { return color_[v] == Color::Blue; }, nullptr,
      pool_);
}

void MutableHypergraph::delete_edge(EdgeId e) {
  if (!edge_live_[e]) return;
  edge_live_.reset(e);
  --live_edge_count_;
  for (const VertexId v : edges_[e]) {
    // Members of a live edge are always live vertices (invariant), so the
    // degree bookkeeping only ever touches live vertices.
    --live_degree_[v];
  }
}

std::size_t MutableHypergraph::incident_work(
    std::span<const VertexId> vs) const {
  std::size_t work = vs.size();
  for (const VertexId v : vs) work += original_->edges_of(v).size();
  return work;
}

bool MutableHypergraph::use_parallel(std::size_t work) const {
  // default_grain() honours the HMIS_GRAIN override, so the same knob tunes
  // both the loop primitives and this serial/parallel gate.
  return pool_ != nullptr && pool_->num_threads() > 1 &&
         work >= par::default_grain();
}

void MutableHypergraph::color_blue(std::span<const VertexId> vs) {
  // Coloring itself stays serial: it is O(|vs|) and keeps the duplicate /
  // non-live checks exact (a racing parallel version could let a duplicate
  // slip between check and write).
  for (const VertexId v : vs) {
    HMIS_CHECK(color_[v] == Color::None, "coloring a non-live vertex blue");
    color_[v] = Color::Blue;
    --live_vertex_count_;
  }
  if (use_parallel(incident_work(vs))) {
    parallel_shrink_blue(vs);
    return;
  }
  // Shrink live incident edges.  A vertex leaves an edge only here, when it
  // turns blue.
  for (const VertexId v : vs) {
    for (const EdgeId e : original_->edges_of(v)) {
      if (!edge_live_[e]) continue;
      auto& verts = edges_[e];
      const auto it = std::lower_bound(verts.begin(), verts.end(), v);
      if (it != verts.end() && *it == v) {
        verts.erase(it);
        --live_degree_[v];  // v no longer counted in this edge
        HMIS_CHECK(!verts.empty(),
                   "edge became fully blue: independence violated");
      }
    }
  }
}

void MutableHypergraph::parallel_shrink_blue(std::span<const VertexId> vs) {
  const std::size_t m = edges_.size();
  // Pass 1: mark candidate edges (original incidence of vs; idempotent bit
  // sets, edge_live_ is read-only here).
  util::DynamicBitset touched(m);
  par::parallel_for(
      0, vs.size(),
      [&](std::size_t i) {
        for (const EdgeId e : original_->edges_of(vs[i])) {
          if (edge_live_[e]) touched.set_atomic(e);
        }
      },
      nullptr, pool_);
  const auto hit = par::pack_indices(
      m, [&](std::size_t e) { return touched.test(e); }, nullptr, pool_);
  // Pass 2: each touched edge drops its just-blued members in one sweep.
  // Edges are disjoint work items; only the degree counters are shared, and
  // each removed (edge, vertex) pair decrements exactly once.
  par::parallel_for(
      0, hit.size(),
      [&](std::size_t i) {
        auto& verts = edges_[hit[i]];
        const auto keep_end =
            std::remove_if(verts.begin(), verts.end(), [&](VertexId u) {
              if (color_[u] != Color::Blue) return false;
              atomic_decrement(live_degree_[u]);
              return true;
            });
        HMIS_CHECK(keep_end != verts.begin(),
                   "edge became fully blue: independence violated");
        verts.erase(keep_end, verts.end());
      },
      nullptr, pool_);
}

void MutableHypergraph::color_red(std::span<const VertexId> vs) {
  for (const VertexId v : vs) {
    HMIS_CHECK(color_[v] == Color::None, "coloring a non-live vertex red");
    color_[v] = Color::Red;
    --live_vertex_count_;
  }
  if (use_parallel(incident_work(vs))) {
    parallel_delete_red(vs);
    return;
  }
  for (const VertexId v : vs) {
    for (const EdgeId e : original_->edges_of(v)) {
      if (!edge_live_[e]) continue;
      // The live edge may have shrunk; it contains v iff v is still listed.
      const auto& verts = edges_[e];
      if (std::binary_search(verts.begin(), verts.end(), v)) {
        delete_edge(e);
      }
    }
  }
}

void MutableHypergraph::parallel_delete_red(std::span<const VertexId> vs) {
  const std::size_t m = edges_.size();
  // Pass 1: mark doomed edges — live edges still CONTAINING a red vertex.
  // Nothing is mutated except the scratch bitset, so the membership tests
  // race with nothing.
  util::DynamicBitset doomed(m);
  par::parallel_for(
      0, vs.size(),
      [&](std::size_t i) {
        const VertexId v = vs[i];
        for (const EdgeId e : original_->edges_of(v)) {
          if (!edge_live_[e]) continue;
          const auto& verts = edges_[e];
          if (std::binary_search(verts.begin(), verts.end(), v)) {
            doomed.set_atomic(e);
          }
        }
      },
      nullptr, pool_);
  const auto dead = par::pack_indices(
      m, [&](std::size_t e) { return doomed.test(e); }, nullptr, pool_);
  // Pass 2: delete each doomed edge exactly once.
  par::parallel_for(
      0, dead.size(),
      [&](std::size_t i) {
        const EdgeId e = dead[i];
        edge_live_.reset_atomic(e);
        for (const VertexId u : edges_[e]) atomic_decrement(live_degree_[u]);
      },
      nullptr, pool_);
  live_edge_count_ -= dead.size();
}

std::vector<VertexId> MutableHypergraph::singleton_cascade() {
  // Collect current singletons; deleting edges never shrinks others, so one
  // sweep plus one batched exclusion suffices.  Distinct vertices only —
  // duplicate singleton edges {v},{v} force v red once.
  const std::size_t m = edges_.size();
  std::vector<VertexId> reds;
  if (use_parallel(m)) {
    const auto singles = par::pack_indices(
        m,
        [&](std::size_t e) { return edge_live_[e] && edges_[e].size() == 1; },
        nullptr, pool_);
    reds = par::gather<VertexId>(
        singles, [&](std::size_t e) { return edges_[e][0]; }, nullptr, pool_);
    par::parallel_sort(reds, std::less<VertexId>{}, nullptr, pool_);
  } else {
    for (EdgeId e = 0; e < m; ++e) {
      if (edge_live_[e] && edges_[e].size() == 1) reds.push_back(edges_[e][0]);
    }
    std::sort(reds.begin(), reds.end());
  }
  reds.erase(std::unique(reds.begin(), reds.end()), reds.end());
  if (!reds.empty()) {
    // Red exclusions commute (they only delete edges), so the whole batch is
    // equivalent to excluding the queue one vertex at a time.
    color_red(reds);
  }
  return reds;
}

std::vector<VertexId> MutableHypergraph::isolated_live_vertices() const {
  if (!use_parallel(n_)) {
    std::vector<VertexId> out;
    for (VertexId v = 0; v < n_; ++v) {
      if (color_[v] == Color::None && live_degree_[v] == 0) out.push_back(v);
    }
    return out;
  }
  return par::pack_indices(
      n_,
      [&](std::size_t v) {
        return color_[v] == Color::None && live_degree_[v] == 0;
      },
      nullptr, pool_);
}

std::size_t MutableHypergraph::dedupe_and_minimalize() {
  // Both flavours order live edges by the total (size, lex, id) key so the
  // canonical survivor of a duplicate group — the smallest id — does not
  // depend on sort implementation or thread count.
  const auto by_size_lex_id = [this](EdgeId a, EdgeId b) {
    if (edges_[a].size() != edges_[b].size()) {
      return edges_[a].size() < edges_[b].size();
    }
    if (edges_[a] != edges_[b]) return edges_[a] < edges_[b];
    return a < b;
  };

  if (!use_parallel(live_edge_count_)) {
    std::vector<EdgeId> order = live_edges();
    std::sort(order.begin(), order.end(), by_size_lex_id);
    std::size_t removed = 0;
    // Kept-edge index per vertex for subset candidate pruning.
    std::vector<std::vector<EdgeId>> kept_incident(n_);
    EdgeId prev = kInvalidEdge;
    for (const EdgeId e : order) {
      const auto& verts = edges_[e];
      if (prev != kInvalidEdge && edges_[prev] == verts) {
        delete_edge(e);
        ++removed;
        continue;
      }
      // Dominating subsets share every one of their own vertices with this
      // edge, so scanning the kept-incidence lists of ALL members finds them.
      bool dominated = false;
      for (const VertexId v : verts) {
        for (const EdgeId k : kept_incident[v]) {
          const auto& f = edges_[k];
          if (f.size() < verts.size() &&
              std::includes(verts.begin(), verts.end(), f.begin(), f.end())) {
            dominated = true;
            break;
          }
        }
        if (dominated) break;
      }
      if (dominated) {
        delete_edge(e);
        ++removed;
        continue;
      }
      for (const VertexId v : verts) kept_incident[v].push_back(e);
      prev = e;
    }
    return removed;
  }

  // ---- Parallel flavour ----------------------------------------------------
  // Equivalent removal set, derived without the sequential kept-set: an edge
  // is removed iff it is a non-canonical duplicate, or some live
  // non-duplicate edge is a strict subset of it.  (If the witness subset is
  // itself dominated, a minimal subset below it also witnesses, so checking
  // against ALL non-duplicate live edges matches the incremental serial
  // answer exactly.)
  const std::size_t m = edges_.size();
  std::vector<EdgeId> order = live_edges();
  par::parallel_sort(order, by_size_lex_id, nullptr, pool_);
  // state: 0 = dead, 1 = live canonical, 2 = live duplicate.
  std::vector<std::uint8_t> state(m, 0);
  par::parallel_for(
      0, order.size(),
      [&](std::size_t i) {
        const EdgeId e = order[i];
        const bool dup = i > 0 && edges_[order[i - 1]] == edges_[e];
        state[e] = dup ? 2 : 1;
      },
      nullptr, pool_);
  std::vector<std::uint8_t> gone(m, 0);
  par::parallel_for(
      0, order.size(),
      [&](std::size_t i) {
        const EdgeId e = order[i];
        if (state[e] == 2) {
          gone[e] = 1;
          return;
        }
        const auto& verts = edges_[e];
        // A strict subset shares each of its current members with e, and its
        // current members are a subset of its ORIGINAL members — so it shows
        // up in the original incidence list of at least one member of e.
        for (const VertexId v : verts) {
          for (const EdgeId f : original_->edges_of(v)) {
            if (state[f] != 1 || f == e) continue;
            const auto& fv = edges_[f];
            if (fv.size() < verts.size() &&
                std::includes(verts.begin(), verts.end(), fv.begin(),
                              fv.end())) {
              gone[e] = 1;
              return;
            }
          }
        }
      },
      nullptr, pool_);
  const auto del = par::pack_indices(
      m, [&](std::size_t e) { return gone[e] != 0; }, nullptr, pool_);
  par::parallel_for(
      0, del.size(),
      [&](std::size_t i) {
        const EdgeId e = del[i];
        edge_live_.reset_atomic(e);
        for (const VertexId u : edges_[e]) atomic_decrement(live_degree_[u]);
      },
      nullptr, pool_);
  live_edge_count_ -= del.size();
  return del.size();
}

MutableHypergraph::Induced MutableHypergraph::induced_subgraph(
    const util::DynamicBitset& keep) const {
  Induced out;
  InducedScratch scratch;
  build_induced(&keep, out, scratch);
  return out;
}

MutableHypergraph::Induced MutableHypergraph::live_snapshot() const {
  Induced out;
  InducedScratch scratch;
  build_induced(nullptr, out, scratch);
  return out;
}

void MutableHypergraph::induced_subgraph_into(const util::DynamicBitset& keep,
                                              Induced& out,
                                              InducedScratch& scratch) const {
  build_induced(&keep, out, scratch);
}

void MutableHypergraph::live_snapshot_into(Induced& out,
                                           InducedScratch& scratch) const {
  build_induced(nullptr, out, scratch);
}

void MutableHypergraph::build_induced(const util::DynamicBitset* keep,
                                      Induced& out,
                                      InducedScratch& scratch) const {
  if (!use_parallel(n_ + edges_.size())) {
    build_induced_serial(keep, out, scratch);
  } else {
    build_induced_parallel(keep, out, scratch);
  }
}

// Serial flavour: direct CSR assembly with the same passes as the parallel
// kernel (relabel, classify, canonical-survivor dedupe, emit in original
// edge order).  This replaced an HypergraphBuilder round-trip — the builder
// allocates fresh storage per call, which is exactly what the arena-backed
// frames exist to avoid — and produces the identical graph: the builder's
// first-insertion-wins dedupe keeps the smallest original edge id at its
// position in edge order, which is what the (size, lex, id) canonical
// survivor emits here.
void MutableHypergraph::build_induced_serial(const util::DynamicBitset* keep,
                                             Induced& out,
                                             InducedScratch& scratch) const {
  const std::size_t m = edges_.size();
  const auto kept = [&](std::size_t v) {
    return color_[v] == Color::None && (keep == nullptr || keep->test(v));
  };

  // Relabel kept live vertices.
  scratch.to_local.assign(n_, kInvalidVertex);
  out.to_original.clear();
  for (VertexId v = 0; v < n_; ++v) {
    if (kept(v)) {
      scratch.to_local[v] = static_cast<VertexId>(out.to_original.size());
      out.to_original.push_back(v);
    }
  }
  const std::size_t k = out.to_original.size();

  // Candidate edges: live and entirely inside the kept set.
  scratch.cand.clear();
  for (EdgeId e = 0; e < m; ++e) {
    if (!edge_live_[e]) continue;
    bool inside = true;
    for (const VertexId v : edges_[e]) {
      if (scratch.to_local[v] == kInvalidVertex) {
        inside = false;
        break;
      }
    }
    if (inside) scratch.cand.push_back(e);
  }

  // Canonical-survivor dedupe: order by (size, lex, id), emit group heads.
  std::sort(scratch.cand.begin(), scratch.cand.end(),
            [this](EdgeId a, EdgeId b) {
              if (edges_[a].size() != edges_[b].size()) {
                return edges_[a].size() < edges_[b].size();
              }
              if (edges_[a] != edges_[b]) return edges_[a] < edges_[b];
              return a < b;
            });
  scratch.emit.assign(m, 0);
  for (std::size_t i = 0; i < scratch.cand.size(); ++i) {
    if (i > 0 && edges_[scratch.cand[i - 1]] == edges_[scratch.cand[i]]) {
      continue;
    }
    scratch.emit[scratch.cand[i]] = 1;
  }

  // Edge CSR in original edge-id order; local_edge doubles as the
  // original->local edge id map for the incidence fill below.
  Hypergraph& g = out.graph;
  g.n_ = k;
  g.edge_offsets_.clear();
  g.edge_offsets_.push_back(0);
  g.edge_vertices_.clear();
  scratch.local_edge.resize(m);
  scratch.deg.assign(k, 0);
  std::size_t dim = 0;
  std::size_t min_size = SIZE_MAX;
  for (EdgeId e = 0; e < m; ++e) {
    if (!scratch.emit[e]) continue;
    scratch.local_edge[e] =
        static_cast<std::uint32_t>(g.edge_offsets_.size() - 1);
    for (const VertexId v : edges_[e]) {
      g.edge_vertices_.push_back(scratch.to_local[v]);
      ++scratch.deg[scratch.to_local[v]];
    }
    g.edge_offsets_.push_back(g.edge_vertices_.size());
    dim = std::max(dim, edges_[e].size());
    min_size = std::min(min_size, edges_[e].size());
  }
  const std::size_t num_out_edges = g.edge_offsets_.size() - 1;
  g.dimension_ = dim;
  g.min_edge_size_ = num_out_edges == 0 ? 0 : min_size;

  // Vertex -> incident edge CSR (voffset doubles as the fill cursor).
  g.vertex_offsets_.resize(k + 1);
  scratch.voffset.resize(k);
  std::size_t total_incidence = 0;
  for (std::size_t lv = 0; lv < k; ++lv) {
    g.vertex_offsets_[lv] = total_incidence;
    scratch.voffset[lv] = static_cast<std::uint32_t>(total_incidence);
    total_incidence += scratch.deg[lv];
  }
  g.vertex_offsets_[k] = total_incidence;
  g.vertex_edges_.resize(total_incidence);
  for (EdgeId e = 0; e < m; ++e) {
    if (!scratch.emit[e]) continue;
    for (const VertexId v : edges_[e]) {
      g.vertex_edges_[scratch.voffset[scratch.to_local[v]]++] =
          scratch.local_edge[e];
    }
  }
}

void MutableHypergraph::build_induced_parallel(const util::DynamicBitset* keep,
                                               Induced& out,
                                               InducedScratch& scratch) const {
  const std::size_t m = edges_.size();
  const auto kept = [&](std::size_t v) {
    return color_[v] == Color::None && (keep == nullptr || keep->test(v));
  };

  // ---- Pass 1: relabel kept live vertices (scan compaction). --------------
  scratch.voffset.resize(n_);
  const std::uint32_t k = par::exclusive_scan<std::uint32_t>(
      n_, [&](std::size_t v) { return kept(v) ? 1u : 0u; },
      scratch.voffset.data(), nullptr, pool_);
  scratch.to_local.resize(n_);
  out.to_original.resize(k);
  par::parallel_for(
      0, n_,
      [&](std::size_t v) {
        if (kept(v)) {
          scratch.to_local[v] = scratch.voffset[v];
          out.to_original[scratch.voffset[v]] = static_cast<VertexId>(v);
        } else {
          scratch.to_local[v] = kInvalidVertex;
        }
      },
      nullptr, pool_);

  // ---- Pass 2: classify edges — live and entirely inside the sample. ------
  scratch.inside.resize(m);
  par::parallel_for(
      0, m,
      [&](std::size_t e) {
        std::uint8_t in = edge_live_[e] ? 1 : 0;
        if (in) {
          for (const VertexId v : edges_[e]) {
            if (scratch.to_local[v] == kInvalidVertex) {
              in = 0;
              break;
            }
          }
        }
        scratch.inside[e] = in;
      },
      nullptr, pool_);

  // ---- Dedupe: collapse equal-content inside edges, smallest id wins ------
  // (matches the serial first-insertion-wins rule).  Relabeling is
  // monotonic, so comparing ORIGINAL vertex lists orders local content too.
  par::pack_indices_into(
      m, [&](std::size_t e) { return scratch.inside[e] != 0; },
      scratch.local_edge, scratch.cand, nullptr, pool_);
  par::parallel_sort(
      scratch.cand,
      [this](EdgeId a, EdgeId b) {
        if (edges_[a].size() != edges_[b].size()) {
          return edges_[a].size() < edges_[b].size();
        }
        if (edges_[a] != edges_[b]) return edges_[a] < edges_[b];
        return a < b;
      },
      nullptr, pool_);
  scratch.emit.resize(m);
  par::parallel_for(
      0, m, [&](std::size_t e) { scratch.emit[e] = scratch.inside[e]; },
      nullptr, pool_);
  par::parallel_for(
      0, scratch.cand.size(),
      [&](std::size_t i) {
        if (i > 0 && edges_[scratch.cand[i - 1]] == edges_[scratch.cand[i]]) {
          scratch.emit[scratch.cand[i]] = 0;
        }
      },
      nullptr, pool_);

  // ---- Edge CSR, emitted in original edge-id order. -----------------------
  scratch.local_edge.resize(m);
  const std::uint32_t num_out_edges = par::exclusive_scan<std::uint32_t>(
      m, [&](std::size_t e) { return scratch.emit[e] ? 1u : 0u; },
      scratch.local_edge.data(), nullptr, pool_);
  scratch.estart.resize(m);
  const std::size_t total_size = par::exclusive_scan<std::size_t>(
      m, [&](std::size_t e) { return scratch.emit[e] ? edges_[e].size() : 0; },
      scratch.estart.data(), nullptr, pool_);

  Hypergraph& g = out.graph;
  g.n_ = k;
  g.edge_offsets_.resize(num_out_edges + 1);
  g.edge_offsets_[0] = 0;
  g.edge_vertices_.resize(total_size);
  par::parallel_for(
      0, m,
      [&](std::size_t e) {
        if (!scratch.emit[e]) return;
        std::size_t pos = scratch.estart[e];
        for (const VertexId v : edges_[e]) {
          g.edge_vertices_[pos++] = scratch.to_local[v];
        }
        g.edge_offsets_[scratch.local_edge[e] + 1] = pos;
      },
      nullptr, pool_);
  g.dimension_ = par::reduce_max<std::size_t>(
      0, m, 0,
      [&](std::size_t e) { return scratch.emit[e] ? edges_[e].size() : 0; },
      nullptr, pool_);
  g.min_edge_size_ =
      num_out_edges == 0
          ? 0
          : par::reduce_min<std::size_t>(
                0, m, SIZE_MAX,
                [&](std::size_t e) {
                  return scratch.emit[e] ? edges_[e].size() : SIZE_MAX;
                },
                nullptr, pool_);

  // ---- Vertex -> incident edge CSR. ---------------------------------------
  // Degree histogram first (commutative atomic counts), then every local
  // vertex fills its own slice by walking its ORIGINAL incidence list in
  // ascending edge order — emitted local ids ascend with original ids, so
  // the incidence lists come out sorted with no cross-thread writes.
  scratch.deg.resize(k);
  par::parallel_for(
      0, k, [&](std::size_t lv) { scratch.deg[lv] = 0; }, nullptr, pool_);
  par::parallel_for(
      0, m,
      [&](std::size_t e) {
        if (!scratch.emit[e]) return;
        for (const VertexId v : edges_[e]) {
          atomic_increment(scratch.deg[scratch.to_local[v]]);
        }
      },
      nullptr, pool_);
  g.vertex_offsets_.resize(k + 1);
  const std::size_t total_incidence = par::exclusive_scan<std::size_t>(
      k, [&](std::size_t lv) { return scratch.deg[lv]; },
      g.vertex_offsets_.data(), nullptr, pool_);
  g.vertex_offsets_[k] = total_incidence;
  g.vertex_edges_.resize(total_incidence);
  par::parallel_for(
      0, k,
      [&](std::size_t lv) {
        const VertexId ov = out.to_original[lv];
        std::size_t pos = g.vertex_offsets_[lv];
        for (const EdgeId e : original_->edges_of(ov)) {
          if (scratch.emit[e] &&
              std::binary_search(edges_[e].begin(), edges_[e].end(), ov)) {
            g.vertex_edges_[pos++] = scratch.local_edge[e];
          }
        }
      },
      nullptr, pool_);
}

}  // namespace hmis
