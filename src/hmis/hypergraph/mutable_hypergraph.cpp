// Residual hypergraph maintenance on the sharded slab data plane
// (DESIGN.md §7, §10), in two interchangeable flavours per operation: a
// plain serial loop (pool == nullptr, or sub-grain input) and a
// deterministic parallel kernel on the attached ThreadPool.  The flavours
// must agree bit-for-bit — the kernels therefore use only order-independent
// ingredients:
//   * exclusive-scan compaction for every packed output (ascending ids),
//   * per-shard sort + unique runs combined by the deterministic merge
//     layer (par/shard_merge.hpp) for batch-incidence gathers — disjoint
//     ascending runs, so the concat equals the unsharded sort + unique,
//   * index-order reduction for max/total sizes,
//   * idempotent atomic bit sets/resets for edge liveness and dirty marking,
//   * commutative atomic counters for degree bookkeeping (each (edge,
//     vertex) pair contributes exactly once, so the final sums are exact),
//   * a total (size, lex, id) sort order wherever duplicates must pick a
//     canonical survivor.
//
// Output sensitivity: the batch mutations never scan all m edges.  They
// walk the live-incidence segments of the batch vertices (cost: the touched
// incidence), and the singleton cascade consumes a pending queue fed by the
// only operation that shrinks edges (color_blue).  Stale incidence entries
// (edges that died) are compacted out PER SHARD under a per-shard
// half-occupancy rule: a deletion banks its debt in its own shard and marks
// its members dirty there, so a hot shard sweeps its dirty segments while
// cold shards pay one counter compare.  The triggers and results depend
// only on per-shard counters every flavour maintains identically, keeping
// the index evolution bit-identical across thread counts for a fixed plan;
// across plans sweep timing differs but is unobservable (walks filter on
// edge liveness).
#include "hmis/hypergraph/mutable_hypergraph.hpp"

#include <algorithm>
#include <atomic>
#include <bit>

#include "hmis/hypergraph/data_plane_stats.hpp"
#include "hmis/par/parallel_for.hpp"
#include "hmis/par/reduce.hpp"
#include "hmis/par/scan.hpp"
#include "hmis/par/shard_merge.hpp"
#include "hmis/par/sort.hpp"
#include "hmis/util/check.hpp"

namespace hmis {

namespace {

inline void atomic_decrement(std::uint32_t& counter) noexcept {
  std::atomic_ref<std::uint32_t> ref(counter);
  ref.fetch_sub(1, std::memory_order_relaxed);
}

inline void atomic_increment(std::uint32_t& counter) noexcept {
  std::atomic_ref<std::uint32_t> ref(counter);
  ref.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

MutableHypergraph::MutableHypergraph(const Hypergraph& h, par::ThreadPool* pool,
                                     const ShardConfig& config)
    : original_(&h),
      n_(h.num_vertices()),
      pool_(pool),
      plan_(plan_shards(h.num_edges(), config,
                        pool != nullptr ? pool->num_threads() : 1)) {
  color_.assign(n_, Color::None);
  live_vertex_count_ = n_;
  live_mask_.resize(n_, true);
  const std::size_t m = h.num_edges();
  const std::size_t S = plan_.count;
  edge_size_.resize(m);
  live_degree_.resize(n_);
  edge_live_.resize(m, true);
  live_edge_count_ = m;
  // Per-shard slab: each shard copies its contiguous slice of the original
  // CSR payload.  Spans never move (edges shrink in place, incidence
  // segments only lose entries), so these are the last content allocations
  // for the object's lifetime.
  edge_pools_.resize(S);
  shard_payload_base_.resize(S);
  shard_state_.resize(S);
  dirty_.resize(S);
  for (std::size_t s = 0; s < S; ++s) {
    const std::size_t elo = plan_.shard_begin(s);
    const std::size_t ehi = std::min(m, elo + plan_.stride);
    const std::size_t plo = h.edge_offsets_[elo];
    const std::size_t phi = h.edge_offsets_[ehi];
    shard_payload_base_[s] = plo;
    edge_pools_[s].assign(h.edge_vertices_.begin() + plo,
                          h.edge_vertices_.begin() + phi);
    dirty_[s].resize(n_);
  }
  const auto fill_edge = [&](std::size_t e) {
    edge_size_[e] =
        static_cast<std::uint32_t>(h.edge_size(static_cast<EdgeId>(e)));
  };
  const auto fill_vertex = [&](std::size_t v) {
    live_degree_[v] =
        static_cast<std::uint32_t>(h.degree(static_cast<VertexId>(v)));
  };
  // Per-shard incidence index: count each vertex's entries per shard (its
  // CSR row is ascending, so the shard cursor only moves forward), lay the
  // segments out vertex-ascending within each shard pool, then fill.
  inc_pools_.resize(S);
  inc_seg_len_.assign(n_ * S, 0);
  inc_seg_off_.resize(n_ * S);
  const auto count_row = [&](std::size_t v) {
    std::size_t s = 0;
    std::size_t end = plan_.stride;
    const std::size_t row = v * S;
    for (const EdgeId e : h.edges_of(static_cast<VertexId>(v))) {
      while (e >= end) {
        ++s;
        end += plan_.stride;
      }
      ++inc_seg_len_[row + s];
    }
  };
  const auto fill_row = [&](std::size_t v) {
    std::size_t s = 0;
    std::size_t end = plan_.stride;
    std::size_t prev = SIZE_MAX;
    std::size_t w = 0;
    const std::size_t row = v * S;
    for (const EdgeId e : h.edges_of(static_cast<VertexId>(v))) {
      while (e >= end) {
        ++s;
        end += plan_.stride;
      }
      if (s != prev) {
        w = inc_seg_off_[row + s];
        prev = s;
      }
      inc_pools_[s][w++] = e;
    }
  };
  if (pool_ == nullptr) {
    for (std::size_t e = 0; e < m; ++e) fill_edge(e);
    for (std::size_t v = 0; v < n_; ++v) fill_vertex(v);
    for (std::size_t v = 0; v < n_; ++v) count_row(v);
  } else {
    par::parallel_for(0, m, fill_edge, nullptr, pool_);
    par::parallel_for(0, n_, fill_vertex, nullptr, pool_);
    par::parallel_for(0, n_, count_row, nullptr, pool_);
  }
  {
    // Serial pass: per-shard running totals become the segment offsets
    // (one cache-friendly sweep over the (v, s) grid).
    std::vector<std::size_t> totals(S, 0);
    for (std::size_t v = 0; v < n_; ++v) {
      const std::size_t row = v * S;
      for (std::size_t s = 0; s < S; ++s) {
        inc_seg_off_[row + s] = totals[s];
        totals[s] += inc_seg_len_[row + s];
      }
    }
    for (std::size_t s = 0; s < S; ++s) {
      inc_pools_[s].resize(totals[s]);
      shard_state_[s].live_entries = totals[s];
    }
  }
  if (pool_ == nullptr) {
    for (std::size_t v = 0; v < n_; ++v) fill_row(v);
  } else {
    par::parallel_for(0, n_, fill_row, nullptr, pool_);
  }
  // Seed the singleton queue: edges born at size 1 are pending from the
  // start; afterwards only color_blue can create new singletons.  Both
  // flavours emit the same ascending list.
  if (use_parallel(m)) {
    singleton_pending_ = par::pack_indices(
        m, [&](std::size_t e) { return edge_size_[e] == 1; }, nullptr, pool_);
  } else {
    for (EdgeId e = 0; e < m; ++e) {
      if (edge_size_[e] == 1) singleton_pending_.push_back(e);
    }
  }
}

MutableHypergraph::ShardDebt MutableHypergraph::shard_debt(
    std::size_t s) const noexcept {
  const ShardState& st = shard_state_[s];
  return {st.live_entries, st.stale_entries, st.sweeps, st.swept_entries};
}

bool MutableHypergraph::edge_equal(EdgeId a, EdgeId b) const noexcept {
  if (edge_size_[a] != edge_size_[b]) return false;
  const auto sa = edge(a);
  const auto sb = edge(b);
  return std::equal(sa.begin(), sa.end(), sb.begin());
}

bool MutableHypergraph::edge_size_lex_id_less(EdgeId a,
                                              EdgeId b) const noexcept {
  if (edge_size_[a] != edge_size_[b]) return edge_size_[a] < edge_size_[b];
  // Equal sizes: one three-way pass decides lex order and equality at once
  // (this comparator runs O(E log E) times per dedupe/build sort).
  const auto sa = edge(a);
  const auto sb = edge(b);
  const auto cmp = std::lexicographical_compare_three_way(
      sa.begin(), sa.end(), sb.begin(), sb.end());
  if (cmp != 0) return cmp < 0;
  return a < b;
}

std::vector<VertexId> MutableHypergraph::live_vertices() const {
  if (!use_parallel(n_)) {
    std::vector<VertexId> out;
    out.reserve(live_vertex_count_);
    live_mask_.for_each_set_bit(
        [&](std::size_t v) { out.push_back(static_cast<VertexId>(v)); });
    return out;
  }
  return par::pack_indices(
      n_, [&](std::size_t v) { return live_mask_.test(v); }, nullptr, pool_);
}

std::vector<EdgeId> MutableHypergraph::live_edges() const {
  if (!use_parallel(edge_size_.size())) {
    std::vector<EdgeId> out;
    out.reserve(live_edge_count_);
    edge_live_.for_each_set_bit(
        [&](std::size_t e) { out.push_back(static_cast<EdgeId>(e)); });
    return out;
  }
  return par::pack_indices(
      edge_size_.size(), [&](std::size_t e) { return bool{edge_live_[e]}; },
      nullptr, pool_);
}

std::size_t MutableHypergraph::max_live_edge_size() const {
  if (!use_parallel(edge_size_.size())) {
    std::size_t d = 0;
    edge_live_.for_each_set_bit(
        [&](std::size_t e) { d = std::max<std::size_t>(d, edge_size_[e]); });
    return d;
  }
  return par::reduce_max<std::size_t>(
      0, edge_size_.size(), 0,
      [&](std::size_t e) {
        return edge_live_[e] ? std::size_t{edge_size_[e]} : std::size_t{0};
      },
      nullptr, pool_);
}

std::size_t MutableHypergraph::total_live_edge_size() const {
  if (!use_parallel(edge_size_.size())) {
    std::size_t total = 0;
    edge_live_.for_each_set_bit([&](std::size_t e) { total += edge_size_[e]; });
    return total;
  }
  return par::reduce_sum<std::size_t>(
      0, edge_size_.size(),
      [&](std::size_t e) {
        return edge_live_[e] ? std::size_t{edge_size_[e]} : std::size_t{0};
      },
      nullptr, pool_);
}

std::vector<VertexId> MutableHypergraph::blue_vertices() const {
  if (!use_parallel(n_)) {
    std::vector<VertexId> out;
    for (VertexId v = 0; v < n_; ++v) {
      if (color_[v] == Color::Blue) out.push_back(v);
    }
    return out;
  }
  return par::pack_indices(
      n_, [&](std::size_t v) { return color_[v] == Color::Blue; }, nullptr,
      pool_);
}

void MutableHypergraph::delete_edge(EdgeId e) {
  if (!edge_live_[e]) return;
  edge_live_.reset(e);
  --live_edge_count_;
  const std::size_t s = plan_.shard_of(e);
  const VertexId* verts =
      edge_pools_[s].data() + (edge_offset(e) - shard_payload_base_[s]);
  const std::uint32_t sz = edge_size_[e];
  util::DynamicBitset& dirty = dirty_[s];
  for (std::uint32_t r = 0; r < sz; ++r) {
    // Members of a live edge are always live vertices (invariant), so the
    // degree bookkeeping only ever touches live vertices.  Each member's
    // (vertex, shard) segment just gained a stale entry.
    --live_degree_[verts[r]];
    dirty.set(verts[r]);
  }
  shard_state_[s].live_entries -= sz;
  shard_state_[s].stale_entries += sz;
  detail::note_stale(sz);
}

void MutableHypergraph::account_deleted_sorted(
    std::span<const EdgeId> deleted) {
  // edge_size_ is untouched by deletion, so the doomed sizes are still
  // readable.  `deleted` ascends, so each shard's edges form one contiguous
  // run and the shard cursor only moves forward.
  std::size_t orphaned_total = 0;
  std::size_t s = 0;
  std::size_t end = plan_.stride;
  std::size_t orphaned = 0;
  for (const EdgeId e : deleted) {
    while (e >= end) {
      if (orphaned != 0) {
        shard_state_[s].live_entries -= orphaned;
        shard_state_[s].stale_entries += orphaned;
        orphaned_total += orphaned;
        orphaned = 0;
      }
      ++s;
      end += plan_.stride;
    }
    orphaned += edge_size_[e];
  }
  if (orphaned != 0) {
    shard_state_[s].live_entries -= orphaned;
    shard_state_[s].stale_entries += orphaned;
    orphaned_total += orphaned;
  }
  detail::note_stale(orphaned_total);
}

std::size_t MutableHypergraph::incident_work(
    std::span<const VertexId> vs) const {
  std::size_t work = vs.size();
  for (const VertexId v : vs) work += live_degree_[v];
  return work;
}

bool MutableHypergraph::use_parallel(std::size_t work) const {
  // default_grain() honours the HMIS_GRAIN override, so the same knob tunes
  // both the loop primitives and this serial/parallel gate.
  return pool_ != nullptr && pool_->num_threads() > 1 &&
         work >= par::default_grain();
}

void MutableHypergraph::compact_segment(VertexId v, std::size_t s) {
  EdgeId* p = inc_pools_[s].data() + inc_seg_off_[seg(v, s)];
  const std::uint32_t len = inc_seg_len_[seg(v, s)];
  std::uint32_t w = 0;
  for (std::uint32_t j = 0; j < len; ++j) {
    const EdgeId e = p[j];
    if (edge_live_[e]) p[w++] = e;
  }
  inc_seg_len_[seg(v, s)] = w;
}

void MutableHypergraph::sweep_shard(std::size_t s) {
  // Compact every dirty LIVE vertex's segment (dead vertices' segments are
  // never walked again, so their debt is forgiven unswept — exactly like
  // the old global sweep skipped non-live mask bits).  Dirty bits are only
  // ever set by deletions and only cleared here, so dirty ∧ live is exactly
  // the set of segments with stale entries.
  ShardState& st = shard_state_[s];
  util::DynamicBitset& dirty = dirty_[s];
  const auto sweep_word = [&](std::size_t base, std::uint64_t w) {
    while (w != 0) {
      const auto v = static_cast<VertexId>(
          base + static_cast<std::size_t>(std::countr_zero(w)));
      w &= w - 1;
      compact_segment(v, s);
    }
  };
  if (use_parallel(st.live_entries + st.stale_entries)) {
    par::parallel_for(
        0, dirty.num_words(),
        [&](std::size_t wi) {
          const std::uint64_t w = dirty.word(wi) & live_mask_.word(wi);
          if (w != 0) sweep_word(wi * 64, w);
        },
        nullptr, pool_);
  } else {
    dirty.for_each_set_word([&](std::size_t base, std::uint64_t w) {
      w &= live_mask_.word(base / 64);
      if (w != 0) sweep_word(base, w);
    });
  }
  dirty.clear_all();
  st.swept_entries += st.stale_entries;
  st.stale_entries = 0;
  ++st.sweeps;
}

void MutableHypergraph::maybe_compact_shards() {
  // Per-shard debt-triggered sweep: deletions bank their orphaned entries
  // in their OWN shard's stale counter; once a shard's debt reaches both
  // half of ITS live entries and the dirty mask's word count, that shard
  // alone compacts its dirty segments and forgives its debt.  The word
  // floor keeps the endgame honest (without it, tiny late batches would
  // pay the O(n/64) mask scan for a handful of deletions), and the 64
  // floor keeps micro-instances from sweeping per deletion.  The trigger
  // is a pure function of per-shard counters every flavour maintains
  // identically, so for a fixed plan the sweeps fire at the same
  // operations on every thread count; cold shards cost one compare.
  // Cost per sweep: O(n/64 + shard live entries + shard debt), and both
  // non-debt terms are bounded by the debt at the trigger — O(1) amortized
  // per deleted entry.
  std::uint64_t sweeps = 0;
  std::uint64_t swept = 0;
  for (std::size_t s = 0; s < plan_.count; ++s) {
    ShardState& st = shard_state_[s];
    if (st.stale_entries < 64 || st.stale_entries * 2 < st.live_entries ||
        st.stale_entries < live_mask_.num_words()) {
      continue;
    }
    const std::size_t debt = st.stale_entries;
    sweep_shard(s);
    ++sweeps;
    swept += debt;
  }
  if (sweeps != 0) detail::note_sweeps(sweeps, swept);
}

std::size_t MutableHypergraph::gather_batch_incidence(
    std::span<const VertexId> vs, std::size_t work) {
  const std::size_t m = edge_size_.size();
  const std::size_t S = plan_.count;
  // Dense regime: a batch touching a constant fraction of the edge set is
  // gathered faster by marking a full-width bitset and packing it (the
  // marking still walks only the batch incidence; only the pack is O(m),
  // which the touch size already is, up to the constant below).  Each shard
  // zero-fills and marks its OWN word range (the stride is a multiple of
  // 64), so the per-shard bitset-OR needs no atomics and no global clear.
  if (work >= m / 8) {
    detail::note_gather(/*dense=*/true);
    if (touched_mask_.size() != m) touched_mask_.resize(m);
    std::uint64_t* words = touched_mask_.word_data();
    par::parallel_for_shards(
        S,
        [&](std::size_t s) {
          const std::size_t wlo = plan_.shard_begin(s) / 64;
          const std::size_t whi = std::min(
              touched_mask_.num_words(),
              (plan_.shard_begin(s) + plan_.stride) / 64);
          std::fill(words + wlo, words + whi, 0);
          for (const VertexId v : vs) {
            const EdgeId* p = inc_pools_[s].data() + inc_seg_off_[seg(v, s)];
            const std::uint32_t len = inc_seg_len_[seg(v, s)];
            for (std::uint32_t j = 0; j < len; ++j) {
              const EdgeId e = p[j];
              if (edge_live_[e]) words[e >> 6] |= 1ULL << (e & 63);
            }
          }
        },
        plan_.affinity_offset, pool_);
    return par::pack_indices_into(
        m, [&](std::size_t e) { return touched_mask_.test(e); },
        pack_offsets_, touched_edges_, nullptr, pool_);
  }
  // Sparse regime: fan out per shard — each shard collects the batch's live
  // entries from its own segments, sorts, and uniques, producing one
  // duplicate-free ascending run per shard.  The runs cover disjoint
  // ascending edge ranges by construction, so the deterministic merge is a
  // concat (par/shard_merge.hpp) and the result equals the unsharded
  // sort + adjacent-unique for every shard count.  Cost: O(touch log touch)
  // total, never O(m).
  detail::note_gather(/*dense=*/false);
  shard_runs_.resize(S);
  par::parallel_for_shards(
      S,
      [&](std::size_t s) {
        std::vector<EdgeId>& run = shard_runs_[s];
        run.clear();
        for (const VertexId v : vs) {
          const EdgeId* p = inc_pools_[s].data() + inc_seg_off_[seg(v, s)];
          const std::uint32_t len = inc_seg_len_[seg(v, s)];
          for (std::uint32_t j = 0; j < len; ++j) {
            const EdgeId e = p[j];
            if (edge_live_[e]) run.push_back(e);
          }
        }
        std::sort(run.begin(), run.end());
        run.erase(std::unique(run.begin(), run.end()), run.end());
      },
      plan_.affinity_offset, pool_);
  return par::shard::concat_sorted_runs_into(shard_runs_, run_offsets_,
                                             touched_edges_, pool_);
}

void MutableHypergraph::color_blue(std::span<const VertexId> vs) {
  // Coloring itself stays serial: it is O(|vs|) and keeps the duplicate /
  // non-live checks exact (a racing parallel version could let a duplicate
  // slip between check and write).
  for (const VertexId v : vs) {
    HMIS_CHECK(color_[v] == Color::None, "coloring a non-live vertex blue");
    color_[v] = Color::Blue;
    live_mask_.reset(v);
    --live_vertex_count_;
  }
  const std::size_t work = incident_work(vs);
  if (use_parallel(work)) {
    parallel_shrink_blue(vs, work);
    return;
  }
  // Shrink live incident edges, walking the live-incidence segments: only
  // the edges touching the batch are visited, never all m.  A vertex leaves
  // an edge only here, when it turns blue.  Each batch vertex leaves each
  // of its live edges exactly once, so every shard's live entry count drops
  // by the live entries walked in its segments.  (The orphaned index
  // entries sit in the now-dead batch vertices' own segments, which are
  // never walked again — blue creates no debt in live segments.)
  const std::size_t S = plan_.count;
  for (const VertexId v : vs) {
    for (std::size_t s = 0; s < S; ++s) {
      const EdgeId* p = inc_pools_[s].data() + inc_seg_off_[seg(v, s)];
      const std::uint32_t len = inc_seg_len_[seg(v, s)];
      std::size_t removed = 0;
      for (std::uint32_t j = 0; j < len; ++j) {
        const EdgeId e = p[j];
        if (!edge_live_[e]) continue;
        ++removed;
        // A live entry's edge still contains v: the only removal site is
        // this loop, and v was live until this batch.
        VertexId* verts = edge_begin(e);
        std::uint32_t sz = edge_size_[e];
        VertexId* it = std::lower_bound(verts, verts + sz, v);
        std::move(it + 1, verts + sz, it);  // order-preserving in-place erase
        edge_size_[e] = --sz;
        --live_degree_[v];  // v no longer counted in this edge
        HMIS_CHECK(sz != 0, "edge became fully blue: independence violated");
        if (sz == 1) singleton_pending_.push_back(e);
      }
      shard_state_[s].live_entries -= removed;
    }
  }
}

void MutableHypergraph::parallel_shrink_blue(std::span<const VertexId> vs,
                                             std::size_t work) {
  // Pass 1: gather the distinct live edges incident to the batch (the only
  // edges whose contents can change).
  const std::size_t touched = gather_batch_incidence(vs, work);
  // Pass 2: each touched edge drops its just-blued members in one sweep.
  // Edges are disjoint work items; only the degree counters are shared, and
  // each removed (edge, vertex) pair decrements exactly once.  Each edge
  // records how many members it lost so the serial accounting pass below
  // can charge the right shard.
  shrink_removed_.resize(touched);
  par::parallel_for(
      0, touched,
      [&](std::size_t j) {
        const EdgeId e = touched_edges_[j];
        VertexId* verts = edge_begin(e);
        const std::uint32_t sz = edge_size_[e];
        std::uint32_t w = 0;
        for (std::uint32_t r = 0; r < sz; ++r) {
          const VertexId u = verts[r];
          if (color_[u] == Color::Blue) {
            atomic_decrement(live_degree_[u]);
          } else {
            verts[w++] = u;
          }
        }
        HMIS_CHECK(w != 0, "edge became fully blue: independence violated");
        edge_size_[e] = w;
        shrink_removed_[j] = sz - w;
      },
      nullptr, pool_);
  // Serial epilogue: per-shard live-entry accounting (every removed
  // (edge, vertex) pair was one live entry in the edge's shard — the same
  // count the serial flavour accumulates segment by segment) and the
  // singleton feed, ascending (touched is sorted, so shard runs are
  // contiguous and the cursor only moves forward).
  std::size_t s = 0;
  std::size_t end = plan_.stride;
  std::size_t removed = 0;
  for (std::size_t j = 0; j < touched; ++j) {
    const EdgeId e = touched_edges_[j];
    while (e >= end) {
      shard_state_[s].live_entries -= removed;
      removed = 0;
      ++s;
      end += plan_.stride;
    }
    removed += shrink_removed_[j];
    if (edge_size_[e] == 1) singleton_pending_.push_back(e);
  }
  shard_state_[s].live_entries -= removed;
}

void MutableHypergraph::color_red(std::span<const VertexId> vs) {
  for (const VertexId v : vs) {
    HMIS_CHECK(color_[v] == Color::None, "coloring a non-live vertex red");
    color_[v] = Color::Red;
    live_mask_.reset(v);
    --live_vertex_count_;
  }
  const std::size_t work = incident_work(vs);
  if (use_parallel(work)) {
    parallel_delete_red(vs, work);
    return;
  }
  // Delete every live edge incident to the batch.  A live incidence entry's
  // edge still contains its vertex, so no membership test is needed.
  for (const VertexId v : vs) {
    for_each_live_incident(v, [&](EdgeId e) { delete_edge(e); });
  }
  maybe_compact_shards();
}

void MutableHypergraph::parallel_delete_red(std::span<const VertexId> vs,
                                            std::size_t work) {
  // Pass 1: gather the distinct doomed edges — live edges containing a
  // batch vertex.  Nothing is mutated, so the walks race with nothing.
  const std::size_t doomed = gather_batch_incidence(vs, work);
  // Pass 2: delete each doomed edge exactly once.  Dirty marking is an
  // idempotent atomic bit set — racing markers of the same vertex agree.
  par::parallel_for(
      0, doomed,
      [&](std::size_t j) {
        const EdgeId e = touched_edges_[j];
        edge_live_.reset_atomic(e);
        const std::size_t s = plan_.shard_of(e);
        const VertexId* verts =
            edge_pools_[s].data() + (edge_offset(e) - shard_payload_base_[s]);
        const std::uint32_t sz = edge_size_[e];
        for (std::uint32_t r = 0; r < sz; ++r) {
          atomic_decrement(live_degree_[verts[r]]);
          dirty_[s].set_atomic(verts[r]);
        }
      },
      nullptr, pool_);
  live_edge_count_ -= doomed;
  account_deleted_sorted({touched_edges_.data(), doomed});
  maybe_compact_shards();
}

std::vector<VertexId> MutableHypergraph::singleton_cascade() {
  // Consume the pending queue instead of rescanning all m edges: the only
  // operation that shrinks edges (color_blue) appends every edge that hits
  // size 1, and the constructor seeds the edges born at size 1 — so live
  // singletons are always a subset of the queue.  Deleting edges never
  // shrinks others, so one sweep plus one batched exclusion suffices.
  // Distinct vertices only — duplicate singleton edges {v},{v} force v red
  // once.  The queue's order may differ between flavours (serial discovery
  // vs ascending batch order), but the sort below makes the output — and
  // everything observable — identical.
  std::vector<VertexId> reds;
  const std::size_t pending = singleton_pending_.size();
  if (use_parallel(pending)) {
    // Pack the live singletons' queue slots, gather their vertices, sort —
    // the same collection the serial walk does, scaled to the pool.
    std::vector<std::uint32_t> offsets;
    std::vector<std::uint32_t> slots;
    const std::size_t cnt = par::pack_indices_into(
        pending,
        [&](std::size_t j) {
          const EdgeId e = singleton_pending_[j];
          return edge_live_[e] && edge_size_[e] == 1;
        },
        offsets, slots, nullptr, pool_);
    reds.resize(cnt);
    par::parallel_for(
        0, cnt,
        [&](std::size_t j) {
          reds[j] = edge(singleton_pending_[slots[j]]).front();
        },
        nullptr, pool_);
    par::parallel_sort(reds, std::less<VertexId>{}, nullptr, pool_);
  } else {
    for (const EdgeId e : singleton_pending_) {
      if (edge_live_[e] && edge_size_[e] == 1) {
        reds.push_back(edge(e).front());
      }
    }
    std::sort(reds.begin(), reds.end());
  }
  singleton_pending_.clear();
  reds.erase(std::unique(reds.begin(), reds.end()), reds.end());
  if (!reds.empty()) {
    // Red exclusions commute (they only delete edges), so the whole batch is
    // equivalent to excluding the queue one vertex at a time.
    color_red(reds);
  }
  return reds;
}

std::vector<VertexId> MutableHypergraph::isolated_live_vertices() const {
  if (!use_parallel(n_)) {
    std::vector<VertexId> out;
    live_mask_.for_each_set_bit([&](std::size_t v) {
      if (live_degree_[v] == 0) out.push_back(static_cast<VertexId>(v));
    });
    return out;
  }
  return par::pack_indices(
      n_,
      [&](std::size_t v) { return live_mask_.test(v) && live_degree_[v] == 0; },
      nullptr, pool_);
}

std::size_t MutableHypergraph::dedupe_and_minimalize() {
  // Both flavours order live edges by the total (size, lex, id) key so the
  // canonical survivor of a duplicate group — the smallest id — does not
  // depend on sort implementation or thread count.
  const auto by_size_lex_id = [this](EdgeId a, EdgeId b) {
    return edge_size_lex_id_less(a, b);
  };

  if (!use_parallel(live_edge_count_)) {
    std::vector<EdgeId> order = live_edges();
    std::sort(order.begin(), order.end(), by_size_lex_id);
    std::size_t removed = 0;
    // Kept-edge index per vertex for subset candidate pruning.
    std::vector<std::vector<EdgeId>> kept_incident(n_);
    EdgeId prev = kInvalidEdge;
    for (const EdgeId e : order) {
      const auto verts = edge(e);
      if (prev != kInvalidEdge && edge_equal(prev, e)) {
        delete_edge(e);
        ++removed;
        continue;
      }
      // Dominating subsets share every one of their own vertices with this
      // edge, so scanning the kept-incidence lists of ALL members finds them.
      bool dominated = false;
      for (const VertexId v : verts) {
        for (const EdgeId k : kept_incident[v]) {
          const auto f = edge(k);
          if (f.size() < verts.size() &&
              std::includes(verts.begin(), verts.end(), f.begin(), f.end())) {
            dominated = true;
            break;
          }
        }
        if (dominated) break;
      }
      if (dominated) {
        delete_edge(e);
        ++removed;
        continue;
      }
      for (const VertexId v : verts) kept_incident[v].push_back(e);
      prev = e;
    }
    maybe_compact_shards();
    return removed;
  }

  // ---- Parallel flavour ----------------------------------------------------
  // Equivalent removal set, derived without the sequential kept-set: an edge
  // is removed iff it is a non-canonical duplicate, or some live
  // non-duplicate edge is a strict subset of it.  (If the witness subset is
  // itself dominated, a minimal subset below it also witnesses, so checking
  // against ALL non-duplicate live edges matches the incremental serial
  // answer exactly.)
  const std::size_t m = edge_size_.size();
  const std::size_t S = plan_.count;
  std::vector<EdgeId> order = live_edges();
  par::parallel_sort(order, by_size_lex_id, nullptr, pool_);
  // state: 0 = dead, 1 = live canonical, 2 = live duplicate.
  std::vector<std::uint8_t> state(m, 0);
  par::parallel_for(
      0, order.size(),
      [&](std::size_t i) {
        const EdgeId e = order[i];
        const bool dup = i > 0 && edge_equal(order[i - 1], e);
        state[e] = dup ? 2 : 1;
      },
      nullptr, pool_);
  std::vector<std::uint8_t> gone(m, 0);
  par::parallel_for(
      0, order.size(),
      [&](std::size_t i) {
        const EdgeId e = order[i];
        if (state[e] == 2) {
          gone[e] = 1;
          return;
        }
        const auto verts = edge(e);
        // A strict subset shares each of its current members with e, and
        // every live edge of a live vertex sits in that vertex's incidence
        // segments — so walking the segments of e's members finds every
        // witness (stale entries are filtered by the state check).
        for (const VertexId v : verts) {
          for (std::size_t s = 0; s < S; ++s) {
            const EdgeId* p = inc_pools_[s].data() + inc_seg_off_[seg(v, s)];
            const std::uint32_t len = inc_seg_len_[seg(v, s)];
            for (std::uint32_t j = 0; j < len; ++j) {
              const EdgeId f = p[j];
              if (state[f] != 1 || f == e) continue;
              const auto fv = edge(f);
              if (fv.size() < verts.size() &&
                  std::includes(verts.begin(), verts.end(), fv.begin(),
                                fv.end())) {
                gone[e] = 1;
                return;
              }
            }
          }
        }
      },
      nullptr, pool_);
  const auto del = par::pack_indices(
      m, [&](std::size_t e) { return gone[e] != 0; }, nullptr, pool_);
  par::parallel_for(
      0, del.size(),
      [&](std::size_t i) {
        const EdgeId e = del[i];
        edge_live_.reset_atomic(e);
        const std::size_t s = plan_.shard_of(e);
        const VertexId* verts =
            edge_pools_[s].data() + (edge_offset(e) - shard_payload_base_[s]);
        const std::uint32_t sz = edge_size_[e];
        for (std::uint32_t r = 0; r < sz; ++r) {
          atomic_decrement(live_degree_[verts[r]]);
          dirty_[s].set_atomic(verts[r]);
        }
      },
      nullptr, pool_);
  live_edge_count_ -= del.size();
  account_deleted_sorted(del);
  maybe_compact_shards();
  return del.size();
}

MutableHypergraph::Induced MutableHypergraph::induced_subgraph(
    const util::DynamicBitset& keep) const {
  Induced out;
  InducedScratch scratch;
  build_induced(&keep, out, scratch);
  return out;
}

MutableHypergraph::Induced MutableHypergraph::live_snapshot() const {
  Induced out;
  InducedScratch scratch;
  build_induced(nullptr, out, scratch);
  return out;
}

void MutableHypergraph::induced_subgraph_into(const util::DynamicBitset& keep,
                                              Induced& out,
                                              InducedScratch& scratch) const {
  build_induced(&keep, out, scratch);
}

void MutableHypergraph::live_snapshot_into(Induced& out,
                                           InducedScratch& scratch) const {
  build_induced(nullptr, out, scratch);
}

void MutableHypergraph::build_induced(const util::DynamicBitset* keep,
                                      Induced& out,
                                      InducedScratch& scratch) const {
  if (!use_parallel(n_ + edge_size_.size())) {
    build_induced_serial(keep, out, scratch);
  } else {
    build_induced_parallel(keep, out, scratch);
  }
}

// Serial flavour: direct CSR assembly with the same passes as the parallel
// kernel (relabel, classify, canonical-survivor dedupe, emit in original
// edge order), word-level over the liveness bitsets so the kept set is
// found at memory speed.  Produces the graph the HypergraphBuilder would:
// first-insertion-wins dedupe keeps the smallest original edge id at its
// position in edge order, which is what the (size, lex, id) canonical
// survivor emits here.
void MutableHypergraph::build_induced_serial(const util::DynamicBitset* keep,
                                             Induced& out,
                                             InducedScratch& scratch) const {
  const std::size_t m = edge_size_.size();

  // Relabel kept live vertices: walk live & keep one word at a time.
  scratch.to_local.assign(n_, kInvalidVertex);
  out.to_original.clear();
  const std::uint64_t* kw = keep != nullptr ? keep->words().data() : nullptr;
  const std::size_t W = live_mask_.num_words();
  for (std::size_t wi = 0; wi < W; ++wi) {
    std::uint64_t w = live_mask_.word(wi);
    if (kw != nullptr) w &= kw[wi];
    const std::size_t base = wi * 64;
    while (w != 0) {
      const std::size_t v =
          base + static_cast<std::size_t>(std::countr_zero(w));
      w &= w - 1;
      scratch.to_local[v] = static_cast<VertexId>(out.to_original.size());
      out.to_original.push_back(static_cast<VertexId>(v));
    }
  }
  const std::size_t k = out.to_original.size();

  // Candidate edges: live and entirely inside the kept set.
  scratch.cand.clear();
  edge_live_.for_each_set_bit([&](std::size_t e) {
    for (const VertexId v : edge(static_cast<EdgeId>(e))) {
      if (scratch.to_local[v] == kInvalidVertex) return;
    }
    scratch.cand.push_back(static_cast<std::uint32_t>(e));
  });

  // Canonical-survivor dedupe: order by (size, lex, id), emit group heads.
  std::sort(scratch.cand.begin(), scratch.cand.end(),
            [this](EdgeId a, EdgeId b) { return edge_size_lex_id_less(a, b); });
  scratch.emit.assign(m, 0);
  for (std::size_t i = 0; i < scratch.cand.size(); ++i) {
    if (i > 0 && edge_equal(scratch.cand[i - 1], scratch.cand[i])) {
      continue;
    }
    scratch.emit[scratch.cand[i]] = 1;
  }

  // Edge CSR in original edge-id order; local_edge doubles as the
  // original->local edge id map for the incidence fill below.
  Hypergraph& g = out.graph;
  g.n_ = k;
  g.own_edge_offsets_.clear();
  g.own_edge_offsets_.push_back(0);
  g.own_edge_vertices_.clear();
  scratch.local_edge.resize(m);
  scratch.deg.assign(k, 0);
  std::size_t dim = 0;
  std::size_t min_size = SIZE_MAX;
  for (EdgeId e = 0; e < m; ++e) {
    if (!scratch.emit[e]) continue;
    scratch.local_edge[e] =
        static_cast<std::uint32_t>(g.own_edge_offsets_.size() - 1);
    for (const VertexId v : edge(e)) {
      g.own_edge_vertices_.push_back(scratch.to_local[v]);
      ++scratch.deg[scratch.to_local[v]];
    }
    g.own_edge_offsets_.push_back(g.own_edge_vertices_.size());
    dim = std::max<std::size_t>(dim, edge_size_[e]);
    min_size = std::min<std::size_t>(min_size, edge_size_[e]);
  }
  const std::size_t num_out_edges = g.own_edge_offsets_.size() - 1;
  g.dimension_ = dim;
  g.min_edge_size_ = num_out_edges == 0 ? 0 : min_size;

  // Vertex -> incident edge CSR (voffset doubles as the fill cursor).
  g.own_vertex_offsets_.resize(k + 1);
  scratch.voffset.resize(k);
  std::size_t total_incidence = 0;
  for (std::size_t lv = 0; lv < k; ++lv) {
    g.own_vertex_offsets_[lv] = total_incidence;
    scratch.voffset[lv] = static_cast<std::uint32_t>(total_incidence);
    total_incidence += scratch.deg[lv];
  }
  g.own_vertex_offsets_[k] = total_incidence;
  g.own_vertex_edges_.resize(total_incidence);
  for (EdgeId e = 0; e < m; ++e) {
    if (!scratch.emit[e]) continue;
    for (const VertexId v : edge(e)) {
      g.own_vertex_edges_[scratch.voffset[scratch.to_local[v]]++] =
          scratch.local_edge[e];
    }
  }
  g.rebind_owned_();
}

void MutableHypergraph::build_induced_parallel(const util::DynamicBitset* keep,
                                               Induced& out,
                                               InducedScratch& scratch) const {
  const std::size_t m = edge_size_.size();

  // ---- Pass 1: relabel kept live vertices (word-level scan compaction). ---
  // The scan runs over 64-vertex words (popcount of live & keep), then each
  // word expands its own slice — O(n/64 + kept) work instead of n
  // per-vertex predicate evaluations.
  const std::uint64_t* kw = keep != nullptr ? keep->words().data() : nullptr;
  const std::size_t W = live_mask_.num_words();
  scratch.voffset.resize(W);
  const std::uint32_t k = par::exclusive_scan<std::uint32_t>(
      W,
      [&](std::size_t wi) {
        std::uint64_t w = live_mask_.word(wi);
        if (kw != nullptr) w &= kw[wi];
        return static_cast<std::uint32_t>(std::popcount(w));
      },
      scratch.voffset.data(), nullptr, pool_);
  scratch.to_local.resize(n_);
  out.to_original.resize(k);
  par::parallel_for(
      0, W,
      [&](std::size_t wi) {
        std::uint64_t w = live_mask_.word(wi);
        if (kw != nullptr) w &= kw[wi];
        const std::size_t base = wi * 64;
        const std::size_t hi = std::min<std::size_t>(64, n_ - base);
        std::uint32_t next = scratch.voffset[wi];
        for (std::size_t b = 0; b < hi; ++b) {
          const std::size_t v = base + b;
          if ((w >> b) & 1u) {
            scratch.to_local[v] = next;
            out.to_original[next] = static_cast<VertexId>(v);
            ++next;
          } else {
            scratch.to_local[v] = kInvalidVertex;
          }
        }
      },
      nullptr, pool_);

  // ---- Pass 2: classify edges — live and entirely inside the sample. ------
  scratch.inside.resize(m);
  par::parallel_for(
      0, m,
      [&](std::size_t e) {
        std::uint8_t in = edge_live_[e] ? 1 : 0;
        if (in) {
          for (const VertexId v : edge(static_cast<EdgeId>(e))) {
            if (scratch.to_local[v] == kInvalidVertex) {
              in = 0;
              break;
            }
          }
        }
        scratch.inside[e] = in;
      },
      nullptr, pool_);

  // ---- Dedupe: collapse equal-content inside edges, smallest id wins ------
  // (matches the serial first-insertion-wins rule).  Relabeling is
  // monotonic, so comparing ORIGINAL vertex lists orders local content too.
  par::pack_indices_into(
      m, [&](std::size_t e) { return scratch.inside[e] != 0; },
      scratch.local_edge, scratch.cand, nullptr, pool_);
  par::parallel_sort(
      scratch.cand,
      [this](EdgeId a, EdgeId b) { return edge_size_lex_id_less(a, b); },
      nullptr, pool_);
  scratch.emit.resize(m);
  par::parallel_for(
      0, m, [&](std::size_t e) { scratch.emit[e] = scratch.inside[e]; },
      nullptr, pool_);
  par::parallel_for(
      0, scratch.cand.size(),
      [&](std::size_t i) {
        if (i > 0 && edge_equal(scratch.cand[i - 1], scratch.cand[i])) {
          scratch.emit[scratch.cand[i]] = 0;
        }
      },
      nullptr, pool_);

  // ---- Edge CSR, emitted in original edge-id order. -----------------------
  scratch.local_edge.resize(m);
  const std::uint32_t num_out_edges = par::exclusive_scan<std::uint32_t>(
      m, [&](std::size_t e) { return scratch.emit[e] ? 1u : 0u; },
      scratch.local_edge.data(), nullptr, pool_);
  scratch.estart.resize(m);
  const std::size_t total_size = par::exclusive_scan<std::size_t>(
      m,
      [&](std::size_t e) {
        return scratch.emit[e] ? std::size_t{edge_size_[e]} : std::size_t{0};
      },
      scratch.estart.data(), nullptr, pool_);

  Hypergraph& g = out.graph;
  g.n_ = k;
  g.own_edge_offsets_.resize(num_out_edges + 1);
  g.own_edge_offsets_[0] = 0;
  g.own_edge_vertices_.resize(total_size);
  par::parallel_for(
      0, m,
      [&](std::size_t e) {
        if (!scratch.emit[e]) return;
        std::size_t pos = scratch.estart[e];
        for (const VertexId v : edge(static_cast<EdgeId>(e))) {
          g.own_edge_vertices_[pos++] = scratch.to_local[v];
        }
        g.own_edge_offsets_[scratch.local_edge[e] + 1] = pos;
      },
      nullptr, pool_);
  g.dimension_ = par::reduce_max<std::size_t>(
      0, m, 0,
      [&](std::size_t e) {
        return scratch.emit[e] ? std::size_t{edge_size_[e]} : std::size_t{0};
      },
      nullptr, pool_);
  g.min_edge_size_ =
      num_out_edges == 0
          ? 0
          : par::reduce_min<std::size_t>(
                0, m, SIZE_MAX,
                [&](std::size_t e) {
                  return scratch.emit[e] ? std::size_t{edge_size_[e]}
                                         : std::size_t{SIZE_MAX};
                },
                nullptr, pool_);

  // ---- Vertex -> incident edge CSR. ---------------------------------------
  // Degree histogram first (commutative atomic counts), then every local
  // vertex fills its own slice by walking its LIVE incidence segments in
  // shard order — ascending edge ids overall, and every emitted edge of a
  // live vertex sits in those segments (it never left: only blue coloring
  // removes a vertex from an edge).  Emitted local ids ascend with original
  // ids, so the incidence lists come out sorted with no cross-thread writes
  // and no membership tests.
  scratch.deg.resize(k);
  par::parallel_for(
      0, k, [&](std::size_t lv) { scratch.deg[lv] = 0; }, nullptr, pool_);
  par::parallel_for(
      0, m,
      [&](std::size_t e) {
        if (!scratch.emit[e]) return;
        for (const VertexId v : edge(static_cast<EdgeId>(e))) {
          atomic_increment(scratch.deg[scratch.to_local[v]]);
        }
      },
      nullptr, pool_);
  g.own_vertex_offsets_.resize(k + 1);
  const std::size_t total_incidence = par::exclusive_scan<std::size_t>(
      k, [&](std::size_t lv) { return std::size_t{scratch.deg[lv]}; },
      g.own_vertex_offsets_.data(), nullptr, pool_);
  g.own_vertex_offsets_[k] = total_incidence;
  g.own_vertex_edges_.resize(total_incidence);
  const std::size_t S = plan_.count;
  par::parallel_for(
      0, k,
      [&](std::size_t lv) {
        const VertexId ov = out.to_original[lv];
        std::size_t pos = g.own_vertex_offsets_[lv];
        for (std::size_t s = 0; s < S; ++s) {
          const EdgeId* p = inc_pools_[s].data() + inc_seg_off_[seg(ov, s)];
          const std::uint32_t len = inc_seg_len_[seg(ov, s)];
          for (std::uint32_t j = 0; j < len; ++j) {
            const EdgeId e = p[j];
            if (scratch.emit[e]) {
              g.own_vertex_edges_[pos++] = scratch.local_edge[e];
            }
          }
        }
      },
      nullptr, pool_);
  g.rebind_owned_();
}

}  // namespace hmis
