#include "hmis/hypergraph/mutable_hypergraph.hpp"

#include <algorithm>

#include "hmis/hypergraph/builder.hpp"
#include "hmis/util/check.hpp"

namespace hmis {

MutableHypergraph::MutableHypergraph(const Hypergraph& h)
    : original_(&h), n_(h.num_vertices()) {
  color_.assign(n_, Color::None);
  live_vertex_count_ = n_;
  const std::size_t m = h.num_edges();
  edges_.reserve(m);
  for (EdgeId e = 0; e < m; ++e) {
    const auto verts = h.edge(e);
    edges_.emplace_back(verts.begin(), verts.end());
  }
  edge_live_.resize(m, true);
  live_edge_count_ = m;
  live_degree_.assign(n_, 0);
  for (EdgeId e = 0; e < m; ++e) {
    for (const VertexId v : edges_[e]) ++live_degree_[v];
  }
}

std::vector<VertexId> MutableHypergraph::live_vertices() const {
  std::vector<VertexId> out;
  out.reserve(live_vertex_count_);
  for (VertexId v = 0; v < n_; ++v) {
    if (color_[v] == Color::None) out.push_back(v);
  }
  return out;
}

std::vector<EdgeId> MutableHypergraph::live_edges() const {
  std::vector<EdgeId> out;
  out.reserve(live_edge_count_);
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (edge_live_[e]) out.push_back(e);
  }
  return out;
}

std::size_t MutableHypergraph::max_live_edge_size() const noexcept {
  std::size_t d = 0;
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (edge_live_[e]) d = std::max(d, edges_[e].size());
  }
  return d;
}

std::size_t MutableHypergraph::total_live_edge_size() const noexcept {
  std::size_t total = 0;
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (edge_live_[e]) total += edges_[e].size();
  }
  return total;
}

std::vector<VertexId> MutableHypergraph::blue_vertices() const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < n_; ++v) {
    if (color_[v] == Color::Blue) out.push_back(v);
  }
  return out;
}

void MutableHypergraph::delete_edge(EdgeId e) {
  if (!edge_live_[e]) return;
  edge_live_.reset(e);
  --live_edge_count_;
  for (const VertexId v : edges_[e]) {
    // Members of a live edge are always live vertices (invariant), so the
    // degree bookkeeping only ever touches live vertices.
    --live_degree_[v];
  }
}

void MutableHypergraph::color_blue(std::span<const VertexId> vs) {
  for (const VertexId v : vs) {
    HMIS_CHECK(color_[v] == Color::None, "coloring a non-live vertex blue");
    color_[v] = Color::Blue;
    --live_vertex_count_;
  }
  // Shrink live incident edges.  A vertex leaves an edge only here, when it
  // turns blue.
  for (const VertexId v : vs) {
    for (const EdgeId e : original_->edges_of(v)) {
      if (!edge_live_[e]) continue;
      auto& verts = edges_[e];
      const auto it = std::lower_bound(verts.begin(), verts.end(), v);
      if (it != verts.end() && *it == v) {
        verts.erase(it);
        --live_degree_[v];  // v no longer counted in this edge
        HMIS_CHECK(!verts.empty(),
                   "edge became fully blue: independence violated");
      }
    }
  }
}

void MutableHypergraph::color_red(std::span<const VertexId> vs) {
  for (const VertexId v : vs) {
    HMIS_CHECK(color_[v] == Color::None, "coloring a non-live vertex red");
    color_[v] = Color::Red;
    --live_vertex_count_;
  }
  for (const VertexId v : vs) {
    for (const EdgeId e : original_->edges_of(v)) {
      if (!edge_live_[e]) continue;
      // The live edge may have shrunk; it contains v iff v is still listed.
      const auto& verts = edges_[e];
      if (std::binary_search(verts.begin(), verts.end(), v)) {
        delete_edge(e);
      }
    }
  }
}

std::vector<VertexId> MutableHypergraph::singleton_cascade() {
  std::vector<VertexId> reds;
  // Collect current singletons; deleting edges never shrinks others, so one
  // sweep plus processing the collected queue suffices.
  std::vector<VertexId> queue;
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (edge_live_[e] && edges_[e].size() == 1) {
      queue.push_back(edges_[e][0]);
    }
  }
  for (const VertexId v : queue) {
    if (color_[v] != Color::None) continue;  // already handled via duplicate
    color_red(std::span<const VertexId>(&v, 1));
    reds.push_back(v);
  }
  return reds;
}

std::vector<VertexId> MutableHypergraph::isolated_live_vertices() const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < n_; ++v) {
    if (color_[v] == Color::None && live_degree_[v] == 0) out.push_back(v);
  }
  return out;
}

std::size_t MutableHypergraph::dedupe_and_minimalize() {
  // Order live edges by (size, lex) so duplicates are adjacent and potential
  // subsets precede supersets.
  std::vector<EdgeId> order = live_edges();
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    if (edges_[a].size() != edges_[b].size()) {
      return edges_[a].size() < edges_[b].size();
    }
    return edges_[a] < edges_[b];
  });
  std::size_t removed = 0;
  // Kept-edge index per vertex for subset candidate pruning.
  std::vector<std::vector<EdgeId>> kept_incident(n_);
  EdgeId prev = kInvalidEdge;
  for (const EdgeId e : order) {
    const auto& verts = edges_[e];
    if (prev != kInvalidEdge && edges_[prev] == verts) {
      delete_edge(e);
      ++removed;
      continue;
    }
    // Dominating subsets share every one of their own vertices with this
    // edge, so scanning the kept-incidence lists of ALL members finds them.
    bool dominated = false;
    for (const VertexId v : verts) {
      for (const EdgeId k : kept_incident[v]) {
        const auto& f = edges_[k];
        if (f.size() < verts.size() &&
            std::includes(verts.begin(), verts.end(), f.begin(), f.end())) {
          dominated = true;
          break;
        }
      }
      if (dominated) break;
    }
    if (dominated) {
      delete_edge(e);
      ++removed;
      continue;
    }
    for (const VertexId v : verts) kept_incident[v].push_back(e);
    prev = e;
  }
  return removed;
}

MutableHypergraph::Induced MutableHypergraph::induced_subgraph(
    const util::DynamicBitset& keep) const {
  Induced out;
  std::vector<VertexId> to_local(n_, kInvalidVertex);
  for (VertexId v = 0; v < n_; ++v) {
    if (color_[v] == Color::None && keep.test(v)) {
      to_local[v] = static_cast<VertexId>(out.to_original.size());
      out.to_original.push_back(v);
    }
  }
  HypergraphBuilder b(out.to_original.size());
  VertexList local;
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (!edge_live_[e]) continue;
    const auto& verts = edges_[e];
    bool inside = true;
    local.clear();
    for (const VertexId v : verts) {
      if (to_local[v] == kInvalidVertex) {
        inside = false;
        break;
      }
      local.push_back(to_local[v]);
    }
    if (inside) {
      b.add_edge(std::span<const VertexId>(local.data(), local.size()));
    }
  }
  out.graph = b.build();
  return out;
}

MutableHypergraph::Induced MutableHypergraph::live_snapshot() const {
  util::DynamicBitset all(n_);
  for (VertexId v = 0; v < n_; ++v) {
    if (color_[v] == Color::None) all.set(v);
  }
  return induced_subgraph(all);
}

}  // namespace hmis
