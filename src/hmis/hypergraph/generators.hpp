// Synthetic hypergraph families used by the tests and the experiment suite.
//
// The paper evaluates nothing empirically, so these generators realize the
// hypergraph classes its *narrative* ranges over: constant-dimension
// hypergraphs (Beame–Luby / Kelsen regime), linear hypergraphs
// (Łuczak–Szymańska regime), bounded-edge-count general hypergraphs
// (m <= n^β, the SBL regime), plus adversarial shapes for the baselines.
//
// All generators are deterministic in (parameters, seed).  The sampling
// families (uniform_random, mixed_arity, planted_mis and their wrappers)
// run on the work-stealing scheduler: candidate edges are drawn from
// per-slot counter-RNG streams and deduped with a deterministic
// lowest-slot-wins rule, so the generated graph is bit-identical for any
// thread count (the same determinism contract as every parallel kernel).
// The greedy families (linear_random, bounded_degree) are inherently
// sequential acceptance processes and stay serial.
#pragma once

#include <cstdint>

#include "hmis/hypergraph/hypergraph.hpp"

namespace hmis::par {
class ThreadPool;
}

namespace hmis::gen {

/// m distinct edges, each a uniform random arity-subset of [0, n).
/// Requires arity >= 1 and feasibility (enough distinct subsets).
[[nodiscard]] Hypergraph uniform_random(std::size_t n, std::size_t m,
                                        std::size_t arity, std::uint64_t seed,
                                        par::ThreadPool* pool = nullptr);

/// m distinct edges with sizes uniform in [min_arity, max_arity].
[[nodiscard]] Hypergraph mixed_arity(std::size_t n, std::size_t m,
                                     std::size_t min_arity,
                                     std::size_t max_arity, std::uint64_t seed,
                                     par::ThreadPool* pool = nullptr);

/// Linear hypergraph (|e ∩ e'| <= 1): random arity-subsets accepted greedily
/// while they share at most one vertex with every accepted edge (partial
/// Steiner system).  May return fewer than m edges if the space saturates;
/// `m` is a target.
[[nodiscard]] Hypergraph linear_random(std::size_t n, std::size_t m,
                                       std::size_t arity, std::uint64_t seed);

/// Planted independent set: a planted subset S of size floor(fraction*n) is
/// kept independent — every generated edge has at least one vertex outside
/// S.  Useful for MIS-quality experiments with a known large IS.
[[nodiscard]] Hypergraph planted_mis(std::size_t n, std::size_t m,
                                     std::size_t arity, double fraction,
                                     std::uint64_t seed,
                                     par::ThreadPool* pool = nullptr);

/// Ordinary random graph (arity 2) — the classic Luby setting.
[[nodiscard]] Hypergraph random_graph(std::size_t n, std::size_t m,
                                      std::uint64_t seed,
                                      par::ThreadPool* pool = nullptr);

/// Sliding-window interval hypergraph: edges {i, i+1, ..., i+window-1} for
/// i = 0, stride, 2*stride, ...  Highly structured / overlapping.
[[nodiscard]] Hypergraph interval(std::size_t n, std::size_t window,
                                  std::size_t stride);

/// Sunflower: all edges share a common `core` of size core_size; each edge
/// adds petal_size private vertices.  n = core_size + petals * petal_size.
/// Stress case for trimming and for edge-migration instrumentation.
[[nodiscard]] Hypergraph sunflower(std::size_t core_size,
                                   std::size_t petal_size,
                                   std::size_t petals);

/// Blocked chain: vertices in consecutive blocks of size `block`; every pair
/// of adjacent blocks contributes all (u, v, w) with u in block i and
/// v, w in block i+1?  No — simpler adversarial shape for sequential-ish
/// progress: edges {i, i+1} for all i (a path graph), which forces long
/// dependency chains in prefix-style algorithms.
[[nodiscard]] Hypergraph path_graph(std::size_t n);

/// The SBL regime: mixed-arity edges with m ≈ n^beta, arities spread from 2
/// up to max_arity (defaults to a slowly growing function of n).  This is
/// the instance family Theorem 1 addresses: unbounded dimension, bounded
/// edge count.
[[nodiscard]] Hypergraph sbl_regime(std::size_t n, double beta,
                                    std::size_t max_arity, std::uint64_t seed,
                                    par::ThreadPool* pool = nullptr);

/// d-uniform random hypergraph with every vertex degree <= max_degree.
/// Since BL's probability is p = 1/(2^{d+1}Δ(H)) and the dominant term of
/// Δ on sparse random instances is the singleton degree deg^{1/(d-1)},
/// capping the degree gives direct experimental control over Δ (used by the
/// Δ-sweep bench).  Best effort: returns fewer than m edges if the degree
/// budget saturates.
[[nodiscard]] Hypergraph bounded_degree(std::size_t n, std::size_t m,
                                        std::size_t arity,
                                        std::size_t max_degree,
                                        std::uint64_t seed);

}  // namespace hmis::gen
