#include "hmis/hypergraph/validate.hpp"

#include "hmis/util/check.hpp"

namespace hmis {

util::DynamicBitset to_membership(const Hypergraph& h,
                                  std::span<const VertexId> set) {
  util::DynamicBitset b(h.num_vertices());
  for (const VertexId v : set) {
    HMIS_CHECK(v < h.num_vertices(), "vertex id out of range");
    b.set(v);
  }
  return b;
}

std::optional<EdgeId> find_violated_edge(const Hypergraph& h,
                                         const util::DynamicBitset& in_set) {
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    bool inside = true;
    for (const VertexId v : h.edge(e)) {
      if (!in_set.test(v)) {
        inside = false;
        break;
      }
    }
    if (inside) return e;
  }
  return std::nullopt;
}

std::optional<VertexId> find_addable_vertex(const Hypergraph& h,
                                            const util::DynamicBitset& in_set) {
  // v (outside the set) is blocked iff some edge e ∋ v has e \ {v} ⊆ set.
  // Count, per edge, the members inside the set; e blocks its unique outside
  // member when exactly one member is outside.
  std::vector<std::uint8_t> blocked(h.num_vertices(), 0);
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const auto verts = h.edge(e);
    std::size_t outside = 0;
    VertexId outside_v = kInvalidVertex;
    for (const VertexId v : verts) {
      if (!in_set.test(v)) {
        ++outside;
        outside_v = v;
        if (outside > 1) break;
      }
    }
    if (outside == 1) blocked[outside_v] = 1;
    // outside == 0 means the edge is violated; independence check reports it.
    if (outside == 0 && !verts.empty()) {
      // Every member is inside; the "set" is not independent.  Blocking is
      // moot but mark members' neighbours conservatively unnecessary.
    }
  }
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    if (!in_set.test(v) && !blocked[v]) return v;
  }
  return std::nullopt;
}

MisVerdict verify_mis(const Hypergraph& h, const util::DynamicBitset& in_set) {
  MisVerdict verdict;
  verdict.violating_edge = find_violated_edge(h, in_set);
  verdict.independent = !verdict.violating_edge.has_value();
  verdict.addable_vertex = find_addable_vertex(h, in_set);
  verdict.maximal = !verdict.addable_vertex.has_value();
  return verdict;
}

MisVerdict verify_mis(const Hypergraph& h, std::span<const VertexId> set) {
  return verify_mis(h, to_membership(h, set));
}

}  // namespace hmis
