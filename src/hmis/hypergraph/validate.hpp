// Independent verification of MIS results, used by every test and bench.
// These functions look only at the original hypergraph and the candidate
// set — never at algorithm internals — so they catch algorithm bugs rather
// than reproduce them.
#pragma once

#include <optional>
#include <span>

#include "hmis/hypergraph/hypergraph.hpp"
#include "hmis/util/bitset.hpp"

namespace hmis {

struct MisVerdict {
  bool independent = false;
  bool maximal = false;
  /// First edge fully inside the set, if not independent.
  std::optional<EdgeId> violating_edge;
  /// First vertex that could still be added, if not maximal.
  std::optional<VertexId> addable_vertex;

  [[nodiscard]] bool ok() const noexcept { return independent && maximal; }
};

/// Membership bitset from a vertex list (validates range, ignores dupes).
[[nodiscard]] util::DynamicBitset to_membership(const Hypergraph& h,
                                                std::span<const VertexId> set);

/// Is `set` independent: no edge of h entirely contained in it?
[[nodiscard]] std::optional<EdgeId> find_violated_edge(
    const Hypergraph& h, const util::DynamicBitset& in_set);

/// Is `set` maximal: every vertex outside has an edge e with
/// e \ {v} ⊆ set (adding v would complete e)?  Returns a counterexample.
[[nodiscard]] std::optional<VertexId> find_addable_vertex(
    const Hypergraph& h, const util::DynamicBitset& in_set);

/// Full verdict for a candidate MIS.
[[nodiscard]] MisVerdict verify_mis(const Hypergraph& h,
                                    std::span<const VertexId> set);
[[nodiscard]] MisVerdict verify_mis(const Hypergraph& h,
                                    const util::DynamicBitset& in_set);

}  // namespace hmis
