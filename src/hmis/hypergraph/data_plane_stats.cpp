#include "hmis/hypergraph/data_plane_stats.hpp"

#include <atomic>

namespace hmis {

namespace {

struct Counters {
  std::atomic<std::uint64_t> sweeps{0};
  std::atomic<std::uint64_t> swept_entries{0};
  std::atomic<std::uint64_t> stale_deposited{0};
  std::atomic<std::uint64_t> sparse_gathers{0};
  std::atomic<std::uint64_t> dense_gathers{0};
};

Counters& counters() noexcept {
  static Counters c;
  return c;
}

}  // namespace

DataPlaneStats data_plane_stats() noexcept {
  Counters& c = counters();
  return {c.sweeps.load(std::memory_order_relaxed),
          c.swept_entries.load(std::memory_order_relaxed),
          c.stale_deposited.load(std::memory_order_relaxed),
          c.sparse_gathers.load(std::memory_order_relaxed),
          c.dense_gathers.load(std::memory_order_relaxed)};
}

namespace detail {

void note_sweeps(std::uint64_t sweeps, std::uint64_t swept_entries) noexcept {
  counters().sweeps.fetch_add(sweeps, std::memory_order_relaxed);
  counters().swept_entries.fetch_add(swept_entries,
                                     std::memory_order_relaxed);
}

void note_stale(std::uint64_t entries) noexcept {
  counters().stale_deposited.fetch_add(entries, std::memory_order_relaxed);
}

void note_gather(bool dense) noexcept {
  (dense ? counters().dense_gathers : counters().sparse_gathers)
      .fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace hmis
