// Builder for immutable Hypergraphs: collects edges, sorts and dedupes
// vertices within edges, optionally dedupes identical edges and removes
// strict supersets (minimalization), then emits CSR storage.
#pragma once

#include <initializer_list>
#include <span>

#include "hmis/hypergraph/hypergraph.hpp"

namespace hmis {

class HypergraphBuilder {
 public:
  explicit HypergraphBuilder(std::size_t num_vertices)
      : n_(num_vertices) {}

  /// Add one edge.  Vertices are sorted and deduped; an empty edge (or one
  /// that is empty after dedupe) is rejected with CheckError — an empty edge
  /// makes every set dependent and no MIS exists.
  HypergraphBuilder& add_edge(std::span<const VertexId> vertices);
  HypergraphBuilder& add_edge(std::initializer_list<VertexId> vertices);

  /// Drop edges with identical vertex sets (default on).
  HypergraphBuilder& dedupe_edges(bool enable) {
    dedupe_ = enable;
    return *this;
  }

  /// Drop edges that strictly contain another edge (the superset constraint
  /// is implied by the subset; see DESIGN.md fidelity note 1).  Default off —
  /// generators produce what they produce; algorithms minimalize themselves.
  HypergraphBuilder& remove_supersets(bool enable) {
    minimalize_ = enable;
    return *this;
  }

  [[nodiscard]] std::size_t pending_edges() const noexcept {
    return edges_.size();
  }

  /// Emit the hypergraph.  The builder is left valid but empty.
  [[nodiscard]] Hypergraph build();

 private:
  std::size_t n_;
  std::vector<VertexList> edges_;
  bool dedupe_ = true;
  bool minimalize_ = false;
};

/// Convenience: build directly from edge lists.
[[nodiscard]] Hypergraph make_hypergraph(std::size_t num_vertices,
                                         std::span<const VertexList> edges);
[[nodiscard]] Hypergraph make_hypergraph(
    std::size_t num_vertices, std::initializer_list<VertexList> edges);

}  // namespace hmis
