#include "hmis/hypergraph/shard_plan.hpp"

#include <algorithm>
#include <cstdlib>

namespace hmis {

namespace {

/// HMIS_SHARDS parser: positive integer, bounded to keep the per-shard
/// metadata (S * n segment table) sane; anything else means "unset".
[[nodiscard]] std::size_t parse_shards(const char* text) noexcept {
  if (text == nullptr || *text == '\0') return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return 0;  // trailing junk / not a number
  if (v == 0 || v > 4096) return 0;           // zero or absurd: ignore
  return static_cast<std::size_t>(v);
}

}  // namespace

std::size_t env_shards() {
  static const std::size_t cached = parse_shards(std::getenv("HMIS_SHARDS"));
  return cached;
}

ShardPlan plan_shards(std::size_t m, const ShardConfig& config,
                      std::size_t pool_width) {
  std::size_t want = config.shards;
  if (want == 0) want = env_shards();
  if (want == 0) want = std::max<std::size_t>(1, pool_width);
  ShardPlan plan;
  plan.affinity_offset = config.affinity_offset;
  if (m == 0) return plan;  // one empty 64-edge shard
  // Stride: ceil(m / want) rounded UP to a multiple of 64 (word ownership),
  // then the effective count re-derived — never more shards than needed.
  const std::size_t raw = (m + want - 1) / want;
  plan.stride = std::max<std::size_t>(64, (raw + 63) / 64 * 64);
  plan.count = (m + plan.stride - 1) / plan.stride;
  return plan;
}

}  // namespace hmis
