#include "hmis/hypergraph/transversal.hpp"

#include "hmis/util/check.hpp"

namespace hmis {

std::vector<VertexId> complement_of(const Hypergraph& h,
                                    std::span<const VertexId> set) {
  util::DynamicBitset in(h.num_vertices());
  for (const VertexId v : set) {
    HMIS_CHECK(v < h.num_vertices(), "vertex out of range");
    in.set(v);
  }
  std::vector<VertexId> out;
  out.reserve(h.num_vertices() - set.size());
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    if (!in.test(v)) out.push_back(v);
  }
  return out;
}

bool is_transversal(const Hypergraph& h, const util::DynamicBitset& cover) {
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    bool hit = false;
    for (const VertexId v : h.edge(e)) {
      if (cover.test(v)) {
        hit = true;
        break;
      }
    }
    if (!hit) return false;
  }
  return true;
}

bool is_minimal_transversal(const Hypergraph& h,
                            const util::DynamicBitset& cover) {
  if (!is_transversal(h, cover)) return false;
  // v ∈ cover is essential iff some edge's only covered vertex is v.
  std::vector<std::uint8_t> essential(h.num_vertices(), 0);
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    std::size_t covered = 0;
    VertexId last = kInvalidVertex;
    for (const VertexId v : h.edge(e)) {
      if (cover.test(v)) {
        ++covered;
        last = v;
        if (covered > 1) break;
      }
    }
    if (covered == 1) essential[last] = 1;
  }
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    if (cover.test(v) && !essential[v]) return false;
  }
  return true;
}

std::vector<VertexId> transversal_from_mis(const Hypergraph& h,
                                           std::span<const VertexId> mis) {
  return complement_of(h, mis);
}

}  // namespace hmis
