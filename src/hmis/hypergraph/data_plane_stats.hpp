// Process-wide residual-data-plane counters (DESIGN.md §10).
//
// MutableHypergraph instances come and go (one per solve, plus one per SBL
// round frame), so per-instance debt counters die with their structure.
// These process-lifetime monotonic counters are what `hmis solve --stats`
// and the serve `stats` op report: subtract two snapshots to meter a phase,
// exactly like SchedulerStats.
//
// They describe MAINTENANCE, not results: by the determinism contract the
// MIS output is byte-identical across thread and shard counts, while these
// counters legitimately vary with the shard plan (more shards = more,
// smaller sweeps).  That is why they live here and NOT in algo::Result —
// Result must compare equal across shard counts.
//
// All counters are relaxed atomics bumped once per batch operation (never
// per edge/entry on a hot inner loop, except the O(size) deposit that
// already did O(size) work).
#pragma once

#include <cstdint>

namespace hmis {

struct DataPlaneStats {
  std::uint64_t sweeps = 0;          ///< per-shard compaction sweeps run
  std::uint64_t swept_entries = 0;   ///< stale debt forgiven by those sweeps
  std::uint64_t stale_deposited = 0; ///< incidence entries orphaned by edge
                                     ///< deletions (the debt inflow)
  std::uint64_t sparse_gathers = 0;  ///< batch gathers via per-shard
                                     ///< sort + k-way concat merge
  std::uint64_t dense_gathers = 0;   ///< batch gathers via per-shard
                                     ///< bitset-OR marking
};

[[nodiscard]] constexpr DataPlaneStats operator-(
    DataPlaneStats a, const DataPlaneStats& b) noexcept {
  return {a.sweeps - b.sweeps, a.swept_entries - b.swept_entries,
          a.stale_deposited - b.stale_deposited,
          a.sparse_gathers - b.sparse_gathers,
          a.dense_gathers - b.dense_gathers};
}

/// Snapshot of the process-lifetime counters.
[[nodiscard]] DataPlaneStats data_plane_stats() noexcept;

namespace detail {
/// Producer hooks (MutableHypergraph only).
void note_sweeps(std::uint64_t sweeps, std::uint64_t swept_entries) noexcept;
void note_stale(std::uint64_t entries) noexcept;
void note_gather(bool dense) noexcept;
}  // namespace detail

}  // namespace hmis
