// Shard geometry for the residual data plane (DESIGN.md §10).
//
// MutableHypergraph splits its edge slab and vertex→edge incidence index
// into SHARDS: contiguous edge-id ranges of equal stride.  The plan is a
// pure function of (m, config, pool width) — never of timing — so every
// flavour of every kernel sees the same geometry, and the per-shard debt
// counters it drives evolve identically across thread counts.
//
// The stride is rounded up to a multiple of 64 so each shard owns whole
// 64-bit words of every edge-indexed bitset (edge liveness, dense-gather
// touch masks).  Word ownership is what lets the dense gather's per-shard
// bitset-OR run without atomics: two shards never write the same word.
//
// Shard-count resolution (first match wins):
//   1. ShardConfig::shards        (explicit per-call override)
//   2. HMIS_SHARDS environment    (read once per process, like HMIS_GRAIN)
//   3. pool width                 (1 when no pool is attached)
#pragma once

#include <cstddef>

namespace hmis {

/// Per-structure sharding knobs, threaded through CommonOptions /
/// FindOptions / RoundContext down to every MutableHypergraph build.
struct ShardConfig {
  /// Shard count override; 0 = auto (HMIS_SHARDS env, else pool width).
  /// Results are byte-identical for every value by the determinism
  /// contract — this only moves the parallelism/locality trade-off.
  std::size_t shards = 0;
  /// Rotates the shard→worker placement hints (scheduling only, never
  /// results).  The engine sets this per session so concurrent sessions
  /// spread their hot shards across different workers.
  std::size_t affinity_offset = 0;
};

/// Resolved geometry: `count` shards of `stride` edges each (the last one
/// ragged).  stride is a multiple of 64 and >= 64; m == 0 keeps one empty
/// shard so shard_of() is never called on it.
struct ShardPlan {
  std::size_t count = 1;
  std::size_t stride = 64;
  std::size_t affinity_offset = 0;

  [[nodiscard]] std::size_t shard_of(std::size_t e) const noexcept {
    return e / stride;
  }
  [[nodiscard]] std::size_t shard_begin(std::size_t s) const noexcept {
    return s * stride;
  }
};

/// The HMIS_SHARDS environment override, or 0 when unset/invalid.  Read
/// once and cached (determinism: one run, one geometry per (m, width)).
[[nodiscard]] std::size_t env_shards();

/// Resolve the plan for m edges.  Pure in (m, config, pool_width, env).
[[nodiscard]] ShardPlan plan_shards(std::size_t m, const ShardConfig& config,
                                    std::size_t pool_width);

}  // namespace hmis
