#include "hmis/hypergraph/hypergraph.hpp"

#include <algorithm>
#include <utility>

namespace hmis {

Hypergraph::Hypergraph(const Hypergraph& other)
    : n_(other.n_),
      own_edge_offsets_(other.own_edge_offsets_),
      own_edge_vertices_(other.own_edge_vertices_),
      own_vertex_offsets_(other.own_vertex_offsets_),
      own_vertex_edges_(other.own_vertex_edges_),
      keepalive_(other.keepalive_),
      edge_offsets_(other.edge_offsets_),
      edge_vertices_(other.edge_vertices_),
      vertex_offsets_(other.vertex_offsets_),
      vertex_edges_(other.vertex_edges_),
      dimension_(other.dimension_),
      min_edge_size_(other.min_edge_size_) {
  // Borrowed spans stay valid (they point into the shared buffer); owned
  // spans must follow the freshly copied vectors.
  if (keepalive_ == nullptr) rebind_owned_();
}

Hypergraph& Hypergraph::operator=(const Hypergraph& other) {
  if (this != &other) {
    Hypergraph copy(other);
    *this = std::move(copy);
  }
  return *this;
}

Hypergraph::Hypergraph(Hypergraph&& other) noexcept
    : n_(std::exchange(other.n_, 0)),
      own_edge_offsets_(std::move(other.own_edge_offsets_)),
      own_edge_vertices_(std::move(other.own_edge_vertices_)),
      own_vertex_offsets_(std::move(other.own_vertex_offsets_)),
      own_vertex_edges_(std::move(other.own_vertex_edges_)),
      keepalive_(std::move(other.keepalive_)),
      edge_offsets_(other.edge_offsets_),
      edge_vertices_(other.edge_vertices_),
      vertex_offsets_(other.vertex_offsets_),
      vertex_edges_(other.vertex_edges_),
      dimension_(std::exchange(other.dimension_, 0)),
      min_edge_size_(std::exchange(other.min_edge_size_, 0)) {
  // Vector move preserves heap buffers, so owned spans copied above still
  // point at storage now owned by *this.  The moved-from object re-binds to
  // its own (now empty) vectors: valid, empty, allocation-free.
  other.rebind_owned_();
}

Hypergraph& Hypergraph::operator=(Hypergraph&& other) noexcept {
  if (this != &other) {
    n_ = std::exchange(other.n_, 0);
    own_edge_offsets_ = std::move(other.own_edge_offsets_);
    own_edge_vertices_ = std::move(other.own_edge_vertices_);
    own_vertex_offsets_ = std::move(other.own_vertex_offsets_);
    own_vertex_edges_ = std::move(other.own_vertex_edges_);
    keepalive_ = std::move(other.keepalive_);
    edge_offsets_ = other.edge_offsets_;
    edge_vertices_ = other.edge_vertices_;
    vertex_offsets_ = other.vertex_offsets_;
    vertex_edges_ = other.vertex_edges_;
    dimension_ = std::exchange(other.dimension_, 0);
    min_edge_size_ = std::exchange(other.min_edge_size_, 0);
    other.rebind_owned_();
  }
  return *this;
}

bool Hypergraph::edge_contains(EdgeId e, VertexId v) const noexcept {
  const auto verts = edge(e);
  return std::binary_search(verts.begin(), verts.end(), v);
}

std::vector<VertexList> Hypergraph::edges_as_lists() const {
  std::vector<VertexList> out;
  out.reserve(num_edges());
  for (EdgeId e = 0; e < num_edges(); ++e) {
    const auto verts = edge(e);
    out.emplace_back(verts.begin(), verts.end());
  }
  return out;
}

}  // namespace hmis
