#include "hmis/hypergraph/hypergraph.hpp"

#include <algorithm>

namespace hmis {

bool Hypergraph::edge_contains(EdgeId e, VertexId v) const noexcept {
  const auto verts = edge(e);
  return std::binary_search(verts.begin(), verts.end(), v);
}

std::vector<VertexList> Hypergraph::edges_as_lists() const {
  std::vector<VertexList> out;
  out.reserve(num_edges());
  for (EdgeId e = 0; e < num_edges(); ++e) {
    const auto verts = edge(e);
    out.emplace_back(verts.begin(), verts.end());
  }
  return out;
}

}  // namespace hmis
