// MutableHypergraph: the evolving residual hypergraph the MIS algorithms
// operate on.
//
// The algorithms in this library (BL, SBL, KUW, ...) permanently color
// vertices BLUE (in the independent set) or RED (excluded) and maintain the
// residual constraint system:
//   * coloring v BLUE shrinks every live edge containing v by removing v
//     ("the edge needs one fewer blue vertex to be violated");
//   * coloring v RED deletes every live edge containing v ("an edge with a
//     red vertex can never become fully blue" — Algorithm 1, line 14);
//   * an edge shrinking to a single vertex {v} forces v RED (singleton rule,
//     Algorithm 2 lines 21–24), which cascades deletions;
//   * an edge shrinking to EMPTY means some edge became fully blue — an
//     independence violation, reported via HMIS_CHECK (this must be
//     unreachable for correct algorithms; the tests inject it deliberately).
//
// Vertex ids are stable: they always refer to the original hypergraph, so
// the final blue set can be validated directly against the input.
//
// ---- Parallel execution & the determinism contract -------------------------
//
// Every query and mutation runs as a deterministic parallel kernel when a
// `par::ThreadPool` is attached (set_pool / constructor), and as the plain
// serial loop when none is (pool == nullptr).  The two paths are REQUIRED to
// produce bit-identical state — same colors, counts, degrees, edge contents,
// snapshots, and removal counts — for any thread count; the kernels achieve
// this with fixed chunk decompositions, index-order combination (scan /
// reduce / pack), and idempotent or commutative atomics (bitset bits, degree
// counters whose final values are order-independent sums).
// tests/test_mutable_hypergraph_parallel.cpp enforces the contract.
//
// Thread-safety rules: a MutableHypergraph is NOT itself thread-safe — all
// public methods must be called from one thread; the parallelism is internal
// (fork-join on the attached pool, fully joined before each method returns).
// Concurrent const queries without an intervening mutation are safe, and —
// because the pool is a work-stealing scheduler with nested fork-join
// (DESIGN.md §4) — every kernel here is callable from *inside* a task
// already running on the same pool (e.g. a par::TaskGroup closure that
// scans one MutableHypergraph while the spawning thread queries another).
#pragma once

#include <span>
#include <vector>

#include "hmis/hypergraph/hypergraph.hpp"
#include "hmis/util/bitset.hpp"

namespace hmis::par {
class ThreadPool;
}

namespace hmis {

enum class Color : std::uint8_t { None = 0, Blue = 1, Red = 2 };

class MutableHypergraph {
 public:
  /// `pool` powers the internal parallel kernels; nullptr means every
  /// operation runs its serial fallback (bit-identical results either way).
  explicit MutableHypergraph(const Hypergraph& h,
                             par::ThreadPool* pool = nullptr);

  /// Attach/detach the pool after construction (algorithms thread their
  /// CommonOptions::pool through here so every maintenance step inherits it).
  void set_pool(par::ThreadPool* pool) noexcept { pool_ = pool; }
  [[nodiscard]] par::ThreadPool* pool() const noexcept { return pool_; }

  // ---- Inspection ---------------------------------------------------------

  [[nodiscard]] std::size_t num_original_vertices() const noexcept {
    return n_;
  }
  [[nodiscard]] std::size_t num_live_vertices() const noexcept {
    return live_vertex_count_;
  }
  [[nodiscard]] std::size_t num_live_edges() const noexcept {
    return live_edge_count_;
  }
  [[nodiscard]] bool vertex_live(VertexId v) const noexcept {
    return color_[v] == Color::None;
  }
  [[nodiscard]] Color color(VertexId v) const noexcept { return color_[v]; }
  [[nodiscard]] bool edge_live(EdgeId e) const noexcept {
    return edge_live_[e];
  }
  /// Current (shrunken) vertex list of a live edge; sorted.
  [[nodiscard]] std::span<const VertexId> edge(EdgeId e) const noexcept {
    return {edges_[e].data(), edges_[e].size()};
  }
  /// Original incident edge ids of v (superset of live incident edges).
  [[nodiscard]] std::span<const EdgeId> original_edges_of(
      VertexId v) const noexcept {
    return original_->edges_of(v);
  }
  /// Number of live edges currently containing live vertex v.
  [[nodiscard]] std::size_t live_degree(VertexId v) const noexcept {
    return live_degree_[v];
  }

  [[nodiscard]] std::vector<VertexId> live_vertices() const;
  [[nodiscard]] std::vector<EdgeId> live_edges() const;
  /// Max size over live edges (0 if none).  O(live edges).
  [[nodiscard]] std::size_t max_live_edge_size() const;
  /// Sum of sizes over live edges.
  [[nodiscard]] std::size_t total_live_edge_size() const;
  /// Blue vertices so far, ascending.
  [[nodiscard]] std::vector<VertexId> blue_vertices() const;

  [[nodiscard]] const Hypergraph& original() const noexcept {
    return *original_;
  }

  // ---- Coloring operations ------------------------------------------------

  /// Color every vertex in `vs` blue; shrinks live incident edges.
  /// `vs` must be duplicate-free live vertices.
  /// HMIS_CHECK-fails if any edge would become empty (independence broken).
  void color_blue(std::span<const VertexId> vs);

  /// Color every vertex in `vs` red; deletes live incident edges.
  /// `vs` must be duplicate-free live vertices.
  void color_red(std::span<const VertexId> vs);

  /// Apply the singleton rule until exhaustion: every live edge of size 1
  /// forces its vertex red (deleting that edge and all other edges containing
  /// the vertex).  Returns the vertices turned red, ascending.
  std::vector<VertexId> singleton_cascade();

  /// Live vertices with no live incident edge — they are unconstrained and
  /// may always join the independent set.  (Used by the practical
  /// isolated-vertex shortcut; see DESIGN.md fidelity note 3.)
  [[nodiscard]] std::vector<VertexId> isolated_live_vertices() const;

  /// Remove duplicate live edges and live edges that strictly contain
  /// another live edge (minimal-edge retention; fidelity note 1).
  /// Returns the number of edges removed.
  std::size_t dedupe_and_minimalize();

  // ---- Subhypergraph extraction -------------------------------------------

  struct Induced {
    Hypergraph graph;                  ///< local ids 0..k-1
    std::vector<VertexId> to_original; ///< local id -> original id
  };

  /// Reusable scratch for the induced-CSR builds.  Every buffer is fully
  /// re-initialized by each build (values never leak between calls — only
  /// capacity is reused), so one scratch can serve any sequence of
  /// induced_subgraph_into / live_snapshot_into calls, even against
  /// different MutableHypergraphs.  engine::FrameArena pairs one of these
  /// with an Induced to form an arena-backed residual frame.
  struct InducedScratch {
    std::vector<VertexId> to_local;
    std::vector<std::uint32_t> voffset;
    std::vector<std::uint8_t> inside;
    std::vector<std::uint8_t> emit;
    std::vector<std::uint32_t> cand;
    std::vector<std::uint32_t> local_edge;
    std::vector<std::size_t> estart;
    std::vector<std::uint32_t> deg;
  };

  /// The subhypergraph induced by the live vertices in `keep`: its vertices
  /// are all kept live vertices, its edges are the live edges entirely
  /// contained in `keep` (Algorithm 1, line 7: E' = {e in E : e ⊆ V'}),
  /// duplicates collapsed (first original id wins), in original edge order.
  [[nodiscard]] Induced induced_subgraph(
      const util::DynamicBitset& keep) const;

  /// Compact snapshot of the current live structure (for stats modules).
  [[nodiscard]] Induced live_snapshot() const;

  /// Allocation-lean flavours: build into `out`, reusing its CSR capacity
  /// and `scratch`'s buffers.  Identical output to the value-returning
  /// flavours (which are now thin wrappers); after a warm-up build at peak
  /// size, subsequent builds perform no heap allocation.
  void induced_subgraph_into(const util::DynamicBitset& keep, Induced& out,
                             InducedScratch& scratch) const;
  void live_snapshot_into(Induced& out, InducedScratch& scratch) const;

 private:
  void delete_edge(EdgeId e);
  /// Parallel kernels behind the public mutations (pool_ != nullptr path).
  void parallel_shrink_blue(std::span<const VertexId> vs);
  void parallel_delete_red(std::span<const VertexId> vs);
  /// One implementation behind both extraction flavours; `keep == nullptr`
  /// means "every live vertex" (the live_snapshot case, which then needs no
  /// all-ones bitset).
  void build_induced(const util::DynamicBitset* keep, Induced& out,
                     InducedScratch& scratch) const;
  void build_induced_serial(const util::DynamicBitset* keep, Induced& out,
                            InducedScratch& scratch) const;
  void build_induced_parallel(const util::DynamicBitset* keep, Induced& out,
                              InducedScratch& scratch) const;
  /// Sum of original degrees over `vs` — the upper bound on incident work
  /// that decides whether a mutation is worth the parallel path.
  [[nodiscard]] std::size_t incident_work(std::span<const VertexId> vs) const;
  /// True when the parallel flavour should run: a pool with real workers is
  /// attached and the operation is above the grain.  A 1-thread pool runs
  /// the serial flavour — the parallel kernels trade extra passes for
  /// parallelism, which only pays with >= 2 threads.  (Never a determinism
  /// concern: both flavours are bit-identical by contract.)
  [[nodiscard]] bool use_parallel(std::size_t work) const;

  const Hypergraph* original_;
  std::size_t n_;
  par::ThreadPool* pool_ = nullptr;
  std::vector<Color> color_;
  std::vector<VertexList> edges_;      // current vertex list per edge
  util::DynamicBitset edge_live_;
  std::vector<std::uint32_t> live_degree_;  // live incident edges per vertex
  std::size_t live_vertex_count_ = 0;
  std::size_t live_edge_count_ = 0;
};

}  // namespace hmis
