// MutableHypergraph: the evolving residual hypergraph the MIS algorithms
// operate on.
//
// The algorithms in this library (BL, SBL, KUW, ...) permanently color
// vertices BLUE (in the independent set) or RED (excluded) and maintain the
// residual constraint system:
//   * coloring v BLUE shrinks every live edge containing v by removing v
//     ("the edge needs one fewer blue vertex to be violated");
//   * coloring v RED deletes every live edge containing v ("an edge with a
//     red vertex can never become fully blue" — Algorithm 1, line 14);
//   * an edge shrinking to a single vertex {v} forces v RED (singleton rule,
//     Algorithm 2 lines 21–24), which cascades deletions;
//   * an edge shrinking to EMPTY means some edge became fully blue — an
//     independence violation, reported via HMIS_CHECK (this must be
//     unreachable for correct algorithms; the tests inject it deliberately).
//
// Vertex ids are stable: they always refer to the original hypergraph, so
// the final blue set can be validated directly against the input.
//
// ---- The sharded residual data plane (DESIGN.md §7, §10) -------------------
//
// The edge slab and the vertex → live-edge incidence index are SHARDED by
// contiguous edge range (shard_plan.hpp; count defaults to the pool width,
// stride a multiple of 64 so each shard owns whole words of every
// edge-indexed bitset):
//
//  * SLAB — per-shard contiguous vertex pools with a constant per-edge
//    {offset, live_size} span (offsets are the original CSR's; edges only
//    ever shrink in place, order-preserving, so a span never moves and the
//    pools never reallocate).
//  * INCIDENCE INDEX — per-shard edge-id pools holding, for every vertex v,
//    one SEGMENT per shard: the (v, s) segment's live entries are exactly
//    v's live edges within shard s, ascending.  Walking v's segments in
//    shard order yields v's live incident edges ascending overall — the
//    same sequence the unsharded index produced, which is why observable
//    results are invariant in the shard count.
//  * DEBT — per-shard {live, stale} entry counters plus a per-shard dirty
//    vertex mask.  An edge deletion banks its size in ITS shard's stale
//    counter and marks its members dirty there; once a shard's debt passes
//    half its live entries (with the same absolute/word floors as before,
//    per shard) that shard alone sweeps its dirty segments — a hot shard
//    compacts without touching cold ones.
//
// Batch mutations (color_blue / color_red / singleton_cascade) remain
// OUTPUT-SENSITIVE: they visit only the edges incident to the colored batch
// — never all m edges — so a round's cost tracks the edges it touches,
// which is what the paper's work bounds assume.
//
// ---- Parallel execution & the determinism contract -------------------------
//
// Every query and mutation runs as a deterministic parallel kernel when a
// `par::ThreadPool` is attached (set_pool / constructor), and as the plain
// serial loop when none is (pool == nullptr).  The two paths are REQUIRED
// to produce bit-identical state — same colors, counts, degrees, edge
// contents, snapshots, and removal counts — for any thread count AND any
// shard count; the kernels achieve this with fixed chunk decompositions,
// index-order combination (scan / reduce / pack / sort+unique), idempotent
// or commutative atomics, and the cross-shard merge layer
// (par/shard_merge.hpp): per-shard gathers produce disjoint ascending runs
// whose deterministic concatenation equals the unsharded gather, and dense
// gathers mark word-owned regions of one touch mask.  For a FIXED shard
// count the index internals (segment contents, debt counters, sweep times)
// are additionally bit-identical across thread counts; across shard counts
// only the observable state is — sweeps fire per shard, but walks filter
// on edge liveness, so sweep timing is unobservable by construction.
// tests/test_mutable_hypergraph_parallel.cpp enforces both contracts, and
// the reference-model suites check the slab against vector-of-vectors
// semantics element for element at shard counts {1, 2, 7}.
//
// Thread-safety rules: a MutableHypergraph is NOT itself thread-safe — all
// public methods must be called from one thread; the parallelism is internal
// (fork-join on the attached pool, fully joined before each method returns).
// Concurrent const queries without an intervening mutation are safe (const
// paths never compact the incidence index), and — because the pool is a
// work-stealing scheduler with nested fork-join (DESIGN.md §4) — every
// kernel here is callable from *inside* a task already running on the same
// pool (e.g. a par::TaskGroup closure that scans one MutableHypergraph
// while the spawning thread queries another).
#pragma once

#include <span>
#include <vector>

#include "hmis/hypergraph/hypergraph.hpp"
#include "hmis/hypergraph/shard_plan.hpp"
#include "hmis/util/bitset.hpp"

namespace hmis::par {
class ThreadPool;
}

namespace hmis {

enum class Color : std::uint8_t { None = 0, Blue = 1, Red = 2 };

class MutableHypergraph {
 public:
  /// `pool` powers the internal parallel kernels; nullptr means every
  /// operation runs its serial fallback (bit-identical results either way).
  /// `config` picks the shard plan (shard_plan.hpp); the default derives
  /// the count from HMIS_SHARDS or the pool width — results are identical
  /// for every choice, only locality/parallelism of the maintenance moves.
  explicit MutableHypergraph(const Hypergraph& h,
                             par::ThreadPool* pool = nullptr,
                             const ShardConfig& config = {});

  /// Attach/detach the pool after construction (algorithms thread their
  /// CommonOptions::pool through here so every maintenance step inherits
  /// it).  The shard plan is fixed at construction — swapping pools never
  /// re-shards.
  void set_pool(par::ThreadPool* pool) noexcept { pool_ = pool; }
  [[nodiscard]] par::ThreadPool* pool() const noexcept { return pool_; }

  // ---- Inspection ---------------------------------------------------------

  [[nodiscard]] std::size_t num_original_vertices() const noexcept {
    return n_;
  }
  [[nodiscard]] std::size_t num_live_vertices() const noexcept {
    return live_vertex_count_;
  }
  [[nodiscard]] std::size_t num_live_edges() const noexcept {
    return live_edge_count_;
  }
  [[nodiscard]] bool vertex_live(VertexId v) const noexcept {
    return color_[v] == Color::None;
  }
  [[nodiscard]] Color color(VertexId v) const noexcept { return color_[v]; }
  [[nodiscard]] bool edge_live(EdgeId e) const noexcept {
    return edge_live_[e];
  }
  /// Current (shrunken) vertex list of a live edge; sorted.  A view into
  /// the edge's shard pool — stable across mutations of OTHER edges,
  /// invalidated for this edge only in the sense that its contents shrink
  /// in place.
  [[nodiscard]] std::span<const VertexId> edge(EdgeId e) const noexcept {
    const std::size_t s = plan_.shard_of(e);
    return {edge_pools_[s].data() + (edge_offset(e) - shard_payload_base_[s]),
            edge_size_[e]};
  }
  /// Current size of edge e (cheaper than edge(e).size() on hot paths).
  [[nodiscard]] std::size_t edge_size(EdgeId e) const noexcept {
    return edge_size_[e];
  }
  /// Original incident edge ids of v (superset of live incident edges).
  [[nodiscard]] std::span<const EdgeId> original_edges_of(
      VertexId v) const noexcept {
    return original_->edges_of(v);
  }
  /// Number of live edges currently containing live vertex v.
  [[nodiscard]] std::size_t live_degree(VertexId v) const noexcept {
    return live_degree_[v];
  }
  /// Live vertices as a bitset (bit v set iff color(v) == None).
  [[nodiscard]] const util::DynamicBitset& live_vertex_mask() const noexcept {
    return live_mask_;
  }

  [[nodiscard]] std::vector<VertexId> live_vertices() const;
  [[nodiscard]] std::vector<EdgeId> live_edges() const;
  /// Max size over live edges (0 if none).  O(live edges).
  [[nodiscard]] std::size_t max_live_edge_size() const;
  /// Sum of sizes over live edges.
  [[nodiscard]] std::size_t total_live_edge_size() const;
  /// Blue vertices so far, ascending.
  [[nodiscard]] std::vector<VertexId> blue_vertices() const;

  [[nodiscard]] const Hypergraph& original() const noexcept {
    return *original_;
  }

  // ---- Shard introspection (benches / tests / stats) ----------------------

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return plan_.count;
  }
  /// One shard's debt ledger.  live/stale are the current counters; sweeps
  /// and swept_entries accumulate over the object's lifetime — the bench
  /// asserts cold shards keep sweeps == 0 while hot shards pay.
  struct ShardDebt {
    std::size_t live_entries = 0;
    std::size_t stale_entries = 0;
    std::uint64_t sweeps = 0;
    std::uint64_t swept_entries = 0;
  };
  [[nodiscard]] ShardDebt shard_debt(std::size_t s) const noexcept;

  // ---- Coloring operations ------------------------------------------------

  /// Color every vertex in `vs` blue; shrinks live incident edges.
  /// `vs` must be duplicate-free live vertices.
  /// HMIS_CHECK-fails if any edge would become empty (independence broken).
  /// Output-sensitive: O(batch incident edges), never O(m).
  void color_blue(std::span<const VertexId> vs);

  /// Color every vertex in `vs` red; deletes live incident edges.
  /// `vs` must be duplicate-free live vertices.
  /// Output-sensitive: O(batch incident edges + deleted edge sizes).
  void color_red(std::span<const VertexId> vs);

  /// Apply the singleton rule until exhaustion: every live edge of size 1
  /// forces its vertex red (deleting that edge and all other edges containing
  /// the vertex).  Returns the vertices turned red, ascending.
  /// Output-sensitive: consumes the pending-singleton queue fed by
  /// color_blue (edges are only ever shrunk there), so a cascade costs
  /// O(new singletons + their incident work), never an O(m) rescan.
  std::vector<VertexId> singleton_cascade();

  /// Live vertices with no live incident edge — they are unconstrained and
  /// may always join the independent set.  (Used by the practical
  /// isolated-vertex shortcut; see DESIGN.md fidelity note 3.)
  [[nodiscard]] std::vector<VertexId> isolated_live_vertices() const;

  /// Remove duplicate live edges and live edges that strictly contain
  /// another live edge (minimal-edge retention; fidelity note 1).
  /// Returns the number of edges removed.
  std::size_t dedupe_and_minimalize();

  // ---- Subhypergraph extraction -------------------------------------------

  struct Induced {
    Hypergraph graph;                  ///< local ids 0..k-1
    std::vector<VertexId> to_original; ///< local id -> original id
  };

  /// Reusable scratch for the induced-CSR builds.  Every buffer is fully
  /// re-initialized by each build (values never leak between calls — only
  /// capacity is reused), so one scratch can serve any sequence of
  /// induced_subgraph_into / live_snapshot_into calls, even against
  /// different MutableHypergraphs.  engine::FrameArena pairs one of these
  /// with an Induced to form an arena-backed residual frame.
  struct InducedScratch {
    std::vector<VertexId> to_local;
    // Parallel flavour: word-level relabel offsets (one per 64-vertex
    // word); serial flavour: per-vertex incidence fill cursors.
    std::vector<std::uint32_t> voffset;
    std::vector<std::uint8_t> inside;
    std::vector<std::uint8_t> emit;
    std::vector<std::uint32_t> cand;
    std::vector<std::uint32_t> local_edge;
    std::vector<std::size_t> estart;
    std::vector<std::uint32_t> deg;
  };

  /// The subhypergraph induced by the live vertices in `keep`: its vertices
  /// are all kept live vertices, its edges are the live edges entirely
  /// contained in `keep` (Algorithm 1, line 7: E' = {e in E : e ⊆ V'}),
  /// duplicates collapsed (first original id wins), in original edge order.
  [[nodiscard]] Induced induced_subgraph(
      const util::DynamicBitset& keep) const;

  /// Compact snapshot of the current live structure (for stats modules).
  [[nodiscard]] Induced live_snapshot() const;

  /// Allocation-lean flavours: build into `out`, reusing its CSR capacity
  /// and `scratch`'s buffers.  Identical output to the value-returning
  /// flavours (which are now thin wrappers); after a warm-up build at peak
  /// size, subsequent builds perform no heap allocation.
  void induced_subgraph_into(const util::DynamicBitset& keep, Induced& out,
                             InducedScratch& scratch) const;
  void live_snapshot_into(Induced& out, InducedScratch& scratch) const;

 private:
  /// Constant span offsets come straight from the original CSR: edges only
  /// shrink in place, and an incidence segment only loses entries, so no
  /// pool ever relocates.  edge_offset is global; a shard pool's local
  /// offset is edge_offset(e) - shard_payload_base_[shard].
  [[nodiscard]] std::size_t edge_offset(EdgeId e) const noexcept {
    return original_->edge_offsets_[e];
  }
  [[nodiscard]] VertexId* edge_begin(EdgeId e) noexcept {
    const std::size_t s = plan_.shard_of(e);
    return edge_pools_[s].data() + (edge_offset(e) - shard_payload_base_[s]);
  }
  /// Index of vertex v's segment metadata for shard s (vertex-major: the
  /// hot walks iterate one vertex's S segments contiguously).
  [[nodiscard]] std::size_t seg(VertexId v, std::size_t s) const noexcept {
    return static_cast<std::size_t>(v) * plan_.count + s;
  }
  /// Walk the live incidence entries of v — all shards in order, so edge
  /// ids ascend overall — calling f(EdgeId) per live entry.
  template <typename F>
  void for_each_live_incident(VertexId v, F&& f) const {
    for (std::size_t s = 0; s < plan_.count; ++s) {
      const EdgeId* p = inc_pools_[s].data() + inc_seg_off_[seg(v, s)];
      const std::uint32_t len = inc_seg_len_[seg(v, s)];
      for (std::uint32_t j = 0; j < len; ++j) {
        if (edge_live_[p[j]]) f(p[j]);
      }
    }
  }
  /// Edge-content equality for canonical-survivor dedupe.
  [[nodiscard]] bool edge_equal(EdgeId a, EdgeId b) const noexcept;
  /// The (size, lex, id) total order shared by every dedupe flavour.
  [[nodiscard]] bool edge_size_lex_id_less(EdgeId a, EdgeId b) const noexcept;

  void delete_edge(EdgeId e);
  /// Per-shard {live -= , stale += } accounting for a sorted ascending list
  /// of deleted edges (the parallel red/dedupe flavours — sorted means each
  /// shard's edges form one contiguous run).  Serial; also feeds the
  /// process-wide data-plane counters.
  void account_deleted_sorted(std::span<const EdgeId> deleted);
  /// Parallel kernels behind the public mutations (pool_ != nullptr path).
  /// `work` is the batch's incident work (the use_parallel argument),
  /// reused to pick the gather flavour.
  void parallel_shrink_blue(std::span<const VertexId> vs, std::size_t work);
  void parallel_delete_red(std::span<const VertexId> vs, std::size_t work);
  /// Gather the distinct LIVE edges incident to the batch `vs` into
  /// touched_edges_ (ascending).  Returns the distinct count.  Fans out
  /// per shard and combines through the deterministic merge layer
  /// (par/shard_merge.hpp): sparse batches sort+unique one run per shard
  /// and concat the disjoint runs; batches touching a constant fraction of
  /// the edge set mark each shard's word-owned region of a full-width
  /// bitset (per-shard bitset-OR) and pack it.  The flavour choice is a
  /// pure function of (work, m), so every thread AND shard count takes the
  /// same one, and both produce the shard-count-independent ascending list.
  [[nodiscard]] std::size_t gather_batch_incidence(std::span<const VertexId> vs,
                                                   std::size_t work);
  /// Drop stale entries from v's shard-s segment (keeps live entries in
  /// ascending edge-id order).
  void compact_segment(VertexId v, std::size_t s);
  /// Sweep one shard: compact every dirty live vertex's segment, clear the
  /// dirty mask, forgive the shard's stale debt.
  void sweep_shard(std::size_t s);
  /// Debt-triggered per-shard index maintenance: each shard sweeps when ITS
  /// stale counter reaches half of ITS live entries (with the same 64-entry
  /// and word-count floors as the old global sweep, per shard) — a pure
  /// function of per-shard counters every flavour maintains identically, so
  /// for a fixed shard plan the sweeps fire at the same operations on every
  /// thread count.  Across shard plans sweep timing differs, but walks
  /// filter on edge liveness, so it is unobservable.  A sweep costs
  /// O(n/64 + shard live entries + shard debt) — amortized O(1) per deleted
  /// entry — and shards without debt cost one counter compare.
  void maybe_compact_shards();
  /// One implementation behind both extraction flavours; `keep == nullptr`
  /// means "every live vertex" (the live_snapshot case, which then needs no
  /// all-ones bitset).
  void build_induced(const util::DynamicBitset* keep, Induced& out,
                     InducedScratch& scratch) const;
  void build_induced_serial(const util::DynamicBitset* keep, Induced& out,
                            InducedScratch& scratch) const;
  void build_induced_parallel(const util::DynamicBitset* keep, Induced& out,
                              InducedScratch& scratch) const;
  /// Sum of live degrees over `vs` — the work a batch mutation touches,
  /// used to decide whether the parallel flavour pays.  A pure function of
  /// observable state, so every variant gates identically.
  [[nodiscard]] std::size_t incident_work(std::span<const VertexId> vs) const;
  /// True when the parallel flavour should run: a pool with real workers is
  /// attached and the operation is above the grain.  A 1-thread pool runs
  /// the serial flavour — the parallel kernels trade extra passes for
  /// parallelism, which only pays with >= 2 threads.  (Never a determinism
  /// concern: both flavours are bit-identical by contract.)
  [[nodiscard]] bool use_parallel(std::size_t work) const;

  const Hypergraph* original_;
  std::size_t n_;
  par::ThreadPool* pool_ = nullptr;
  ShardPlan plan_;
  std::vector<Color> color_;

  // ---- Sharded slab data plane --------------------------------------------
  std::vector<std::vector<VertexId>> edge_pools_;  // one vertex pool per shard
  std::vector<std::size_t> shard_payload_base_;    // CSR offset of pool start
  std::vector<std::uint32_t> edge_size_;           // live size per edge span
  util::DynamicBitset edge_live_;
  util::DynamicBitset live_mask_;                  // bit v set iff v live

  // ---- Sharded live-incidence index ---------------------------------------
  std::vector<std::vector<EdgeId>> inc_pools_;  // one edge-id pool per shard
  std::vector<std::size_t> inc_seg_off_;   // (v, s) -> offset into pool s
  std::vector<std::uint32_t> inc_seg_len_; // (v, s) -> current segment length
  std::vector<std::uint32_t> live_degree_; // live incident edges per vertex
  std::vector<EdgeId> singleton_pending_;  // edges shrunk to size 1

  // ---- Per-shard debt accounting ------------------------------------------
  struct ShardState {
    std::size_t live_entries = 0;   // Σ over v of v's live entries in shard
    std::size_t stale_entries = 0;  // entries orphaned since the last sweep
    std::uint64_t sweeps = 0;
    std::uint64_t swept_entries = 0;
  };
  std::vector<ShardState> shard_state_;
  std::vector<util::DynamicBitset> dirty_;  // per shard: vertices with stale
                                            // entries in that shard's pool

  // ---- Mutation scratch (capacity reused; values never leak) --------------
  // Entry counts are size_t end to end (like the hypergraph CSR offsets):
  // a batch's summed live degrees may exceed 2^32 even though vertex/edge
  // IDS stay 32-bit.
  std::vector<std::vector<EdgeId>> shard_runs_;  // sparse: per-shard gathers
  std::vector<std::size_t> run_offsets_;         // sparse: concat offsets
  std::vector<EdgeId> touched_edges_;
  std::vector<std::uint32_t> shrink_removed_;    // blue: per-edge removals
  std::vector<std::uint32_t> pack_offsets_;   // dense: pack over m (< 2^32)
  util::DynamicBitset touched_mask_;  // m bits; dense-gather marking

  std::size_t live_vertex_count_ = 0;
  std::size_t live_edge_count_ = 0;
};

}  // namespace hmis
