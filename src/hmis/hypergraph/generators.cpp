#include "hmis/hypergraph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "hmis/hypergraph/builder.hpp"
#include "hmis/util/check.hpp"
#include "hmis/util/math.hpp"
#include "hmis/util/rng.hpp"

namespace hmis::gen {

namespace {

std::uint64_t edge_key(const VertexList& e) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ e.size();
  for (const VertexId v : e) {
    h = util::mix64(h ^ util::splitmix64(v + 0x2545f4914f6cdd1dULL));
  }
  return h;
}

/// Sample a sorted arity-subset of [0, n) without replacement.
VertexList sample_subset(std::size_t n, std::size_t arity,
                         util::Xoshiro256ss& rng) {
  VertexList e;
  e.reserve(arity);
  // Floyd's algorithm for distinct samples.
  for (std::size_t j = n - arity; j < n; ++j) {
    const auto t = static_cast<VertexId>(rng.below(j + 1));
    if (std::find(e.begin(), e.end(), t) == e.end()) {
      e.push_back(t);
    } else {
      e.push_back(static_cast<VertexId>(j));
    }
  }
  std::sort(e.begin(), e.end());
  return e;
}

}  // namespace

Hypergraph uniform_random(std::size_t n, std::size_t m, std::size_t arity,
                          std::uint64_t seed) {
  HMIS_CHECK(arity >= 1 && arity <= n, "uniform_random: bad arity");
  const double space = util::binomial(static_cast<unsigned>(std::min<std::size_t>(n, 4096)),
                                      static_cast<unsigned>(std::min(arity, std::size_t{4096})));
  HMIS_CHECK(n > 4096 || static_cast<double>(m) <= space,
             "uniform_random: more edges requested than distinct subsets");
  util::Xoshiro256ss rng(seed);
  HypergraphBuilder b(n);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  std::size_t made = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 50 * m + 1000;
  while (made < m && attempts < max_attempts) {
    ++attempts;
    VertexList e = sample_subset(n, arity, rng);
    if (seen.insert(edge_key(e)).second) {
      b.add_edge(std::span<const VertexId>(e.data(), e.size()));
      ++made;
    }
  }
  HMIS_CHECK(made == m, "uniform_random: rejection sampling saturated");
  return b.build();
}

Hypergraph mixed_arity(std::size_t n, std::size_t m, std::size_t min_arity,
                       std::size_t max_arity, std::uint64_t seed) {
  HMIS_CHECK(min_arity >= 1 && min_arity <= max_arity && max_arity <= n,
             "mixed_arity: bad arity range");
  util::Xoshiro256ss rng(seed);
  HypergraphBuilder b(n);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  std::size_t made = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 50 * m + 1000;
  while (made < m && attempts < max_attempts) {
    ++attempts;
    const std::size_t arity =
        min_arity + rng.below(max_arity - min_arity + 1);
    VertexList e = sample_subset(n, arity, rng);
    if (seen.insert(edge_key(e)).second) {
      b.add_edge(std::span<const VertexId>(e.data(), e.size()));
      ++made;
    }
  }
  HMIS_CHECK(made == m, "mixed_arity: rejection sampling saturated");
  return b.build();
}

Hypergraph linear_random(std::size_t n, std::size_t m, std::size_t arity,
                         std::uint64_t seed) {
  HMIS_CHECK(arity >= 2 && arity <= n, "linear_random: bad arity");
  util::Xoshiro256ss rng(seed);
  HypergraphBuilder b(n);
  // A hypergraph is linear iff no vertex *pair* appears in two edges.
  std::unordered_set<std::uint64_t> used_pairs;
  used_pairs.reserve(m * arity * arity);
  std::size_t made = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 200 * m + 1000;
  std::vector<std::uint64_t> pair_keys;
  while (made < m && attempts < max_attempts) {
    ++attempts;
    VertexList e = sample_subset(n, arity, rng);
    pair_keys.clear();
    bool ok = true;
    for (std::size_t i = 0; i < e.size() && ok; ++i) {
      for (std::size_t j = i + 1; j < e.size(); ++j) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(e[i]) << 32) | e[j];
        if (used_pairs.contains(key)) {
          ok = false;
          break;
        }
        pair_keys.push_back(key);
      }
    }
    if (!ok) continue;
    for (const auto key : pair_keys) used_pairs.insert(key);
    b.add_edge(std::span<const VertexId>(e.data(), e.size()));
    ++made;
  }
  // Target m is best-effort for linear hypergraphs; emit what we got.
  return b.build();
}

Hypergraph planted_mis(std::size_t n, std::size_t m, std::size_t arity,
                       double fraction, std::uint64_t seed) {
  HMIS_CHECK(arity >= 2 && arity <= n, "planted_mis: bad arity");
  HMIS_CHECK(fraction > 0.0 && fraction < 1.0, "planted_mis: bad fraction");
  const auto planted = static_cast<std::size_t>(fraction * static_cast<double>(n));
  HMIS_CHECK(planted < n, "planted_mis: planted set too large");
  // Vertices [0, planted) form the planted independent set; every edge gets
  // at least one vertex from [planted, n).
  util::Xoshiro256ss rng(seed);
  HypergraphBuilder b(n);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  std::size_t made = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 50 * m + 1000;
  while (made < m && attempts < max_attempts) {
    ++attempts;
    VertexList e = sample_subset(n, arity, rng);
    const bool touches_outside = std::any_of(
        e.begin(), e.end(), [&](VertexId v) { return v >= planted; });
    if (!touches_outside) {
      // Redirect one member outside the planted set.
      e[rng.below(e.size())] = static_cast<VertexId>(
          planted + rng.below(n - planted));
      std::sort(e.begin(), e.end());
      e.erase(std::unique(e.begin(), e.end()), e.end());
      if (e.size() < 2) continue;
    }
    if (seen.insert(edge_key(e)).second) {
      b.add_edge(std::span<const VertexId>(e.data(), e.size()));
      ++made;
    }
  }
  HMIS_CHECK(made == m, "planted_mis: rejection sampling saturated");
  return b.build();
}

Hypergraph random_graph(std::size_t n, std::size_t m, std::uint64_t seed) {
  return uniform_random(n, m, 2, seed);
}

Hypergraph interval(std::size_t n, std::size_t window, std::size_t stride) {
  HMIS_CHECK(window >= 1 && window <= n, "interval: bad window");
  HMIS_CHECK(stride >= 1, "interval: bad stride");
  HypergraphBuilder b(n);
  for (std::size_t start = 0; start + window <= n; start += stride) {
    VertexList e(window);
    for (std::size_t i = 0; i < window; ++i) {
      e[i] = static_cast<VertexId>(start + i);
    }
    b.add_edge(std::span<const VertexId>(e.data(), e.size()));
  }
  return b.build();
}

Hypergraph sunflower(std::size_t core_size, std::size_t petal_size,
                     std::size_t petals) {
  HMIS_CHECK(petal_size >= 1, "sunflower: petal_size must be >= 1");
  const std::size_t n = core_size + petals * petal_size;
  HypergraphBuilder b(n);
  for (std::size_t p = 0; p < petals; ++p) {
    VertexList e;
    e.reserve(core_size + petal_size);
    for (std::size_t c = 0; c < core_size; ++c) {
      e.push_back(static_cast<VertexId>(c));
    }
    for (std::size_t i = 0; i < petal_size; ++i) {
      e.push_back(static_cast<VertexId>(core_size + p * petal_size + i));
    }
    b.add_edge(std::span<const VertexId>(e.data(), e.size()));
  }
  return b.build();
}

Hypergraph path_graph(std::size_t n) {
  HypergraphBuilder b(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    b.add_edge({static_cast<VertexId>(i), static_cast<VertexId>(i + 1)});
  }
  return b.build();
}

Hypergraph bounded_degree(std::size_t n, std::size_t m, std::size_t arity,
                          std::size_t max_degree, std::uint64_t seed) {
  HMIS_CHECK(arity >= 2 && arity <= n, "bounded_degree: bad arity");
  HMIS_CHECK(max_degree >= 1, "bounded_degree: bad max_degree");
  util::Xoshiro256ss rng(seed);
  HypergraphBuilder b(n);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  std::vector<std::uint32_t> degree(n, 0);
  std::size_t made = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 100 * m + 1000;
  while (made < m && attempts < max_attempts) {
    ++attempts;
    VertexList e = sample_subset(n, arity, rng);
    const bool fits = std::all_of(e.begin(), e.end(), [&](VertexId v) {
      return degree[v] < max_degree;
    });
    if (!fits) continue;
    if (!seen.insert(edge_key(e)).second) continue;
    for (const VertexId v : e) ++degree[v];
    b.add_edge(std::span<const VertexId>(e.data(), e.size()));
    ++made;
  }
  return b.build();
}

Hypergraph sbl_regime(std::size_t n, double beta, std::size_t max_arity,
                      std::uint64_t seed) {
  const double nm = std::pow(static_cast<double>(n), beta);
  const auto m = static_cast<std::size_t>(std::max(1.0, nm));
  if (max_arity == 0) {
    // Default: arity up to ~log2(n), the "unbounded dimension" flavour the
    // SBL regime allows.
    max_arity = std::max<std::size_t>(3, util::floor_log2(n));
  }
  max_arity = std::min(max_arity, n);
  return mixed_arity(n, m, 2, max_arity, seed);
}

}  // namespace hmis::gen
