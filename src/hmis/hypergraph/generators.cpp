#include "hmis/hypergraph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "hmis/hypergraph/builder.hpp"
#include "hmis/par/parallel_for.hpp"
#include "hmis/par/sort.hpp"
#include "hmis/util/check.hpp"
#include "hmis/util/math.hpp"
#include "hmis/util/rng.hpp"

namespace hmis::gen {

namespace {

std::uint64_t edge_key(const VertexList& e) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ e.size();
  for (const VertexId v : e) {
    h = util::mix64(h ^ util::splitmix64(v + 0x2545f4914f6cdd1dULL));
  }
  return h;
}

/// Uniform integer in [0, bound) from a counter draw (scaled multiply; the
/// 2^-64-scale bias is irrelevant for instance generation and keeps the
/// draw a pure function of its coordinates).
std::uint64_t counter_below(const util::CounterRng& rng, std::uint64_t stream,
                            std::uint64_t counter,
                            std::uint64_t bound) noexcept {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(rng.bits(stream, counter)) * bound) >>
      64);
}

// Counter-RNG draw streams used by the samplers below.  Floyd's loop
// indexes stream 0 by j, so the other draws live on their own streams.
constexpr std::uint64_t kStreamFloyd = 0;
constexpr std::uint64_t kStreamArity = 1;
constexpr std::uint64_t kStreamRedirect = 2;

/// Floyd's distinct-subset sample of [0, n), sorted, driven entirely by
/// counter draws: the subset is a pure function of (rng seed, n, arity).
void counter_sample_subset(std::size_t n, std::size_t arity,
                           const util::CounterRng& rng, VertexList& e) {
  e.clear();
  e.reserve(arity);
  for (std::size_t j = n - arity; j < n; ++j) {
    const auto t =
        static_cast<VertexId>(counter_below(rng, kStreamFloyd, j, j + 1));
    if (std::find(e.begin(), e.end(), t) == e.end()) {
      e.push_back(t);
    } else {
      e.push_back(static_cast<VertexId>(j));
    }
  }
  std::sort(e.begin(), e.end());
}

/// Parallel distinct-edge engine shared by the sampling families.
///
/// Candidate slots are numbered globally; slot s samples from the
/// independent counter-RNG stream root.child(s), so every candidate is a
/// pure function of (seed, s).  Each round draws a batch of slots with
/// parallel_for, sorts (key, slot) to find batch-internal duplicates
/// (lowest slot wins, matching serial first-insertion-wins), drops keys
/// already accepted in earlier rounds, then accepts survivors in slot
/// order until m edges exist.  Nothing depends on thread count or
/// evaluation order, so the generated graph is bit-identical for any pool.
///
/// `sample(rng, out)` fills one candidate; returning false discards the
/// slot (e.g. planted_mis redirects that collapse below arity 2).
template <typename SampleFn>
Hypergraph sample_distinct_edges(std::size_t n, std::size_t m,
                                 std::uint64_t seed, par::ThreadPool* pool,
                                 const char* saturated_msg,
                                 SampleFn&& sample) {
  const util::CounterRng root(seed);
  HypergraphBuilder b(n);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  std::vector<VertexList> cand;
  std::vector<std::uint64_t> keys;
  std::vector<std::uint32_t> order;
  std::vector<std::uint8_t> valid;
  std::vector<std::uint8_t> take;
  std::size_t made = 0;
  std::uint64_t next_slot = 0;
  // Same attempt budget as the serial rejection samplers had.
  const std::uint64_t max_slots = 50 * static_cast<std::uint64_t>(m) + 1000;
  while (made < m && next_slot < max_slots) {
    const std::size_t want = m - made;
    const auto batch = static_cast<std::size_t>(std::min<std::uint64_t>(
        want + want / 4 + 32, max_slots - next_slot));
    if (cand.size() < batch) cand.resize(batch);
    keys.resize(batch);
    valid.assign(batch, 0);
    take.assign(batch, 0);
    par::parallel_for(
        0, batch,
        [&](std::size_t i) {
          const util::CounterRng rng = root.child(next_slot + i);
          valid[i] = sample(rng, cand[i]) ? 1 : 0;
          keys[i] = valid[i] ? edge_key(cand[i]) : 0;
        },
        nullptr, pool);
    order.resize(batch);
    par::parallel_for(
        0, batch,
        [&](std::size_t i) { order[i] = static_cast<std::uint32_t>(i); },
        nullptr, pool);
    par::parallel_sort(
        order,
        [&](std::uint32_t a, std::uint32_t c) {
          return keys[a] != keys[c] ? keys[a] < keys[c] : a < c;
        },
        nullptr, pool);
    // `seen` is only read this pass (inserts happen in the serial accept
    // loop below), so concurrent lookups are safe.
    par::parallel_for(
        0, batch,
        [&](std::size_t i) {
          const std::uint32_t s = order[i];
          if (!valid[s]) return;
          if (i > 0 && valid[order[i - 1]] && keys[order[i - 1]] == keys[s]) {
            return;  // batch-internal duplicate; the lowest slot survives
          }
          if (seen.contains(keys[s])) return;
          take[s] = 1;
        },
        nullptr, pool);
    for (std::size_t i = 0; i < batch && made < m; ++i) {
      if (!take[i]) continue;
      seen.insert(keys[i]);
      b.add_edge(std::span<const VertexId>(cand[i].data(), cand[i].size()));
      ++made;
    }
    next_slot += batch;
  }
  HMIS_CHECK(made == m, saturated_msg);
  return b.build();
}

/// Sample a sorted arity-subset of [0, n) without replacement.
VertexList sample_subset(std::size_t n, std::size_t arity,
                         util::Xoshiro256ss& rng) {
  VertexList e;
  e.reserve(arity);
  // Floyd's algorithm for distinct samples.
  for (std::size_t j = n - arity; j < n; ++j) {
    const auto t = static_cast<VertexId>(rng.below(j + 1));
    if (std::find(e.begin(), e.end(), t) == e.end()) {
      e.push_back(t);
    } else {
      e.push_back(static_cast<VertexId>(j));
    }
  }
  std::sort(e.begin(), e.end());
  return e;
}

}  // namespace

Hypergraph uniform_random(std::size_t n, std::size_t m, std::size_t arity,
                          std::uint64_t seed, par::ThreadPool* pool) {
  HMIS_CHECK(arity >= 1 && arity <= n, "uniform_random: bad arity");
  const double space = util::binomial(static_cast<unsigned>(std::min<std::size_t>(n, 4096)),
                                      static_cast<unsigned>(std::min(arity, std::size_t{4096})));
  HMIS_CHECK(n > 4096 || static_cast<double>(m) <= space,
             "uniform_random: more edges requested than distinct subsets");
  return sample_distinct_edges(
      n, m, seed, pool, "uniform_random: rejection sampling saturated",
      [n, arity](const util::CounterRng& rng, VertexList& e) {
        counter_sample_subset(n, arity, rng, e);
        return true;
      });
}

Hypergraph mixed_arity(std::size_t n, std::size_t m, std::size_t min_arity,
                       std::size_t max_arity, std::uint64_t seed,
                       par::ThreadPool* pool) {
  HMIS_CHECK(min_arity >= 1 && min_arity <= max_arity && max_arity <= n,
             "mixed_arity: bad arity range");
  return sample_distinct_edges(
      n, m, seed, pool, "mixed_arity: rejection sampling saturated",
      [n, min_arity, max_arity](const util::CounterRng& rng, VertexList& e) {
        const std::size_t arity =
            min_arity +
            counter_below(rng, kStreamArity, 0, max_arity - min_arity + 1);
        counter_sample_subset(n, arity, rng, e);
        return true;
      });
}

Hypergraph linear_random(std::size_t n, std::size_t m, std::size_t arity,
                         std::uint64_t seed) {
  HMIS_CHECK(arity >= 2 && arity <= n, "linear_random: bad arity");
  util::Xoshiro256ss rng(seed);
  HypergraphBuilder b(n);
  // A hypergraph is linear iff no vertex *pair* appears in two edges.
  std::unordered_set<std::uint64_t> used_pairs;
  used_pairs.reserve(m * arity * arity);
  std::size_t made = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 200 * m + 1000;
  std::vector<std::uint64_t> pair_keys;
  while (made < m && attempts < max_attempts) {
    ++attempts;
    VertexList e = sample_subset(n, arity, rng);
    pair_keys.clear();
    bool ok = true;
    for (std::size_t i = 0; i < e.size() && ok; ++i) {
      for (std::size_t j = i + 1; j < e.size(); ++j) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(e[i]) << 32) | e[j];
        if (used_pairs.contains(key)) {
          ok = false;
          break;
        }
        pair_keys.push_back(key);
      }
    }
    if (!ok) continue;
    for (const auto key : pair_keys) used_pairs.insert(key);
    b.add_edge(std::span<const VertexId>(e.data(), e.size()));
    ++made;
  }
  // Target m is best-effort for linear hypergraphs; emit what we got.
  return b.build();
}

Hypergraph planted_mis(std::size_t n, std::size_t m, std::size_t arity,
                       double fraction, std::uint64_t seed,
                       par::ThreadPool* pool) {
  HMIS_CHECK(arity >= 2 && arity <= n, "planted_mis: bad arity");
  HMIS_CHECK(fraction > 0.0 && fraction < 1.0, "planted_mis: bad fraction");
  const auto planted = static_cast<std::size_t>(fraction * static_cast<double>(n));
  HMIS_CHECK(planted < n, "planted_mis: planted set too large");
  // Vertices [0, planted) form the planted independent set; every edge gets
  // at least one vertex from [planted, n).
  return sample_distinct_edges(
      n, m, seed, pool, "planted_mis: rejection sampling saturated",
      [n, arity, planted](const util::CounterRng& rng, VertexList& e) {
        counter_sample_subset(n, arity, rng, e);
        const bool touches_outside = std::any_of(
            e.begin(), e.end(), [&](VertexId v) { return v >= planted; });
        if (!touches_outside) {
          // Redirect one member outside the planted set.
          e[counter_below(rng, kStreamRedirect, 0, e.size())] =
              static_cast<VertexId>(
                  planted + counter_below(rng, kStreamRedirect, 1,
                                          n - planted));
          std::sort(e.begin(), e.end());
          e.erase(std::unique(e.begin(), e.end()), e.end());
          if (e.size() < 2) return false;
        }
        return true;
      });
}

Hypergraph random_graph(std::size_t n, std::size_t m, std::uint64_t seed,
                        par::ThreadPool* pool) {
  return uniform_random(n, m, 2, seed, pool);
}

Hypergraph interval(std::size_t n, std::size_t window, std::size_t stride) {
  HMIS_CHECK(window >= 1 && window <= n, "interval: bad window");
  HMIS_CHECK(stride >= 1, "interval: bad stride");
  HypergraphBuilder b(n);
  for (std::size_t start = 0; start + window <= n; start += stride) {
    VertexList e(window);
    for (std::size_t i = 0; i < window; ++i) {
      e[i] = static_cast<VertexId>(start + i);
    }
    b.add_edge(std::span<const VertexId>(e.data(), e.size()));
  }
  return b.build();
}

Hypergraph sunflower(std::size_t core_size, std::size_t petal_size,
                     std::size_t petals) {
  HMIS_CHECK(petal_size >= 1, "sunflower: petal_size must be >= 1");
  const std::size_t n = core_size + petals * petal_size;
  HypergraphBuilder b(n);
  for (std::size_t p = 0; p < petals; ++p) {
    VertexList e;
    e.reserve(core_size + petal_size);
    for (std::size_t c = 0; c < core_size; ++c) {
      e.push_back(static_cast<VertexId>(c));
    }
    for (std::size_t i = 0; i < petal_size; ++i) {
      e.push_back(static_cast<VertexId>(core_size + p * petal_size + i));
    }
    b.add_edge(std::span<const VertexId>(e.data(), e.size()));
  }
  return b.build();
}

Hypergraph path_graph(std::size_t n) {
  HypergraphBuilder b(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    b.add_edge({static_cast<VertexId>(i), static_cast<VertexId>(i + 1)});
  }
  return b.build();
}

Hypergraph bounded_degree(std::size_t n, std::size_t m, std::size_t arity,
                          std::size_t max_degree, std::uint64_t seed) {
  HMIS_CHECK(arity >= 2 && arity <= n, "bounded_degree: bad arity");
  HMIS_CHECK(max_degree >= 1, "bounded_degree: bad max_degree");
  util::Xoshiro256ss rng(seed);
  HypergraphBuilder b(n);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  std::vector<std::uint32_t> degree(n, 0);
  std::size_t made = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 100 * m + 1000;
  while (made < m && attempts < max_attempts) {
    ++attempts;
    VertexList e = sample_subset(n, arity, rng);
    const bool fits = std::all_of(e.begin(), e.end(), [&](VertexId v) {
      return degree[v] < max_degree;
    });
    if (!fits) continue;
    if (!seen.insert(edge_key(e)).second) continue;
    for (const VertexId v : e) ++degree[v];
    b.add_edge(std::span<const VertexId>(e.data(), e.size()));
    ++made;
  }
  return b.build();
}

Hypergraph sbl_regime(std::size_t n, double beta, std::size_t max_arity,
                      std::uint64_t seed, par::ThreadPool* pool) {
  const double nm = std::pow(static_cast<double>(n), beta);
  const auto m = static_cast<std::size_t>(std::max(1.0, nm));
  if (max_arity == 0) {
    // Default: arity up to ~log2(n), the "unbounded dimension" flavour the
    // SBL regime allows.
    max_arity = std::max<std::size_t>(3, util::floor_log2(n));
  }
  max_arity = std::min(max_arity, n);
  return mixed_arity(n, m, 2, max_arity, seed, pool);
}

}  // namespace hmis::gen
