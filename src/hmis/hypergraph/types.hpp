// Fundamental identifier types shared across the hypergraph subsystem.
#pragma once

#include <cstdint>
#include <vector>

namespace hmis {

/// Vertex identifier: dense, 0-based.
using VertexId = std::uint32_t;
/// Edge identifier: dense, 0-based.
using EdgeId = std::uint32_t;

/// A set of vertices represented as a sorted, duplicate-free vector.
using VertexList = std::vector<VertexId>;

inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

}  // namespace hmis
