#include "hmis/hypergraph/degree_stats.hpp"

#include <algorithm>
#include <cmath>

#include "hmis/par/sort.hpp"
#include "hmis/util/check.hpp"
#include "hmis/util/math.hpp"
#include "hmis/util/rng.hpp"

namespace hmis {

namespace {

/// Order-independent-free hash of a sorted vertex subset (order is fixed by
/// sortedness, so a sequential mix is fine).
std::uint64_t hash_subset(const VertexId* verts, const std::uint32_t* idx,
                          std::size_t k) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ k;
  for (std::size_t i = 0; i < k; ++i) {
    h = util::mix64(h ^ util::splitmix64(verts[idx[i]] + 0x9e3779b9ULL));
  }
  return h;
}

std::uint64_t hash_subset_direct(std::span<const VertexId> verts) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ verts.size();
  for (const VertexId v : verts) {
    h = util::mix64(h ^ util::splitmix64(v + 0x9e3779b9ULL));
  }
  return h;
}

// Packed emission: [hash-high-48 | |x| (8 bits) | edge size s (8 bits)].
// Sorting groups identical (x, s) pairs; run lengths give |N_{s-|x|}(x)|.
std::uint64_t pack(std::uint64_t h, std::size_t xs, std::size_t s) {
  return (h & ~0xFFFFULL) | (static_cast<std::uint64_t>(xs & 0xFF) << 8) |
         static_cast<std::uint64_t>(s & 0xFF);
}

}  // namespace

double normalized_degree(std::uint64_t count, std::size_t j) {
  if (count == 0) return 0.0;
  if (j == 0) return static_cast<double>(count);
  return std::pow(static_cast<double>(count), 1.0 / static_cast<double>(j));
}

DegreeStats compute_degree_stats(std::span<const VertexList> edges,
                                 const DegreeStatsOptions& opt) {
  DegreeStats stats;
  for (const auto& e : edges) {
    stats.dimension = std::max(stats.dimension, e.size());
  }
  stats.delta_i.assign(stats.dimension + 1, 0.0);
  if (edges.empty()) return stats;

  // Decide enumeration mode.
  std::uint64_t emissions = 0;
  bool exact = true;
  for (const auto& e : edges) {
    if (e.size() > opt.max_enum_edge_size) {
      exact = false;
      emissions += e.size();
    } else {
      emissions += (1ULL << e.size()) - 2;
    }
    if (emissions > opt.enum_budget) {
      exact = false;
      break;
    }
  }
  if (!exact) {
    emissions = 0;
    for (const auto& e : edges) emissions += e.size();
  }
  stats.exact = exact;

  std::vector<std::uint64_t> keys;
  keys.reserve(emissions);
  std::uint32_t idx[32];
  for (const auto& e : edges) {
    const std::size_t s = e.size();
    if (s < 2) continue;  // singleton edges contribute no (x, j>=1) pairs
    if (exact && s <= opt.max_enum_edge_size) {
      // Enumerate non-empty proper subsets via bitmasks.
      const std::uint32_t full = (1u << s) - 1;
      for (std::uint32_t mask = 1; mask < full; ++mask) {
        std::size_t k = 0;
        std::uint32_t mm = mask;
        while (mm != 0) {
          const int b = __builtin_ctz(mm);
          idx[k++] = static_cast<std::uint32_t>(b);
          mm &= mm - 1;
        }
        keys.push_back(pack(hash_subset(e.data(), idx, k), k, s));
      }
    } else {
      for (std::size_t i = 0; i < s; ++i) {
        keys.push_back(pack(
            hash_subset_direct(std::span<const VertexId>(&e[i], 1)), 1, s));
      }
    }
  }

  par::parallel_sort(keys);

  // Run-length pass: identical keys = same (x, |e|) pair.
  std::size_t i = 0;
  while (i < keys.size()) {
    std::size_t run = i + 1;
    while (run < keys.size() && keys[run] == keys[i]) ++run;
    const std::uint64_t count = run - i;
    const std::size_t xs = (keys[i] >> 8) & 0xFF;
    const std::size_t s = keys[i] & 0xFF;
    const std::size_t j = s - xs;
    HMIS_CHECK(j >= 1 && s <= stats.dimension, "corrupt degree-stats key");
    const double dj = normalized_degree(count, j);
    stats.delta_i[s] = std::max(stats.delta_i[s], dj);
    stats.max_count = std::max(stats.max_count, count);
    i = run;
  }
  for (std::size_t s = 2; s <= stats.dimension; ++s) {
    stats.delta = std::max(stats.delta, stats.delta_i[s]);
  }
  return stats;
}

DegreeStats compute_degree_stats(const Hypergraph& h,
                                 const DegreeStatsOptions& opt) {
  const auto lists = h.edges_as_lists();
  return compute_degree_stats(
      std::span<const VertexList>(lists.data(), lists.size()), opt);
}

std::vector<std::uint64_t> neighborhood_counts(
    std::span<const VertexList> edges, const VertexList& x) {
  HMIS_CHECK(!x.empty(), "neighborhood_counts needs non-empty x");
  HMIS_CHECK(std::is_sorted(x.begin(), x.end()), "x must be sorted");
  std::size_t dim = 0;
  for (const auto& e : edges) dim = std::max(dim, e.size());
  std::vector<std::uint64_t> counts(
      dim >= x.size() ? dim - x.size() + 1 : 1, 0);
  for (const auto& e : edges) {
    if (e.size() < x.size()) continue;
    if (std::includes(e.begin(), e.end(), x.begin(), x.end())) {
      ++counts[e.size() - x.size()];
    }
  }
  return counts;
}

std::vector<double> kelsen_potentials_log2(const DegreeStats& stats, double n,
                                           std::vector<double>* log2_thresholds) {
  const std::size_t d = stats.dimension;
  std::vector<double> v(d + 1, 0.0);
  if (d < 2) {
    if (log2_thresholds) log2_thresholds->assign(d + 1, 0.0);
    return v;
  }
  const double log2_logn = std::log2(util::clog2(n));
  const auto f = util::kelsen_f(static_cast<int>(d), static_cast<double>(d));
  v[d] = std::log2(stats.delta_i[d]);  // -inf when the level is empty
  for (std::size_t i = d - 1; i >= 2; --i) {
    // log2 of: max(Δ_i, (log n)^{f(i)} · v_{i+1})
    v[i] = std::max(std::log2(stats.delta_i[i]),
                    f[i] * log2_logn + v[i + 1]);
    if (i == 2) break;
  }
  if (log2_thresholds) {
    const auto F = util::kelsen_F(static_cast<int>(d), static_cast<double>(d));
    log2_thresholds->assign(d + 1, 0.0);
    for (std::size_t j = 2; j <= d; ++j) {
      (*log2_thresholds)[j] = v[2] - F[j - 1] * log2_logn;
    }
  }
  return v;
}

}  // namespace hmis
