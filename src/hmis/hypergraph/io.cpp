#include "hmis/hypergraph/io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "hmis/hypergraph/builder.hpp"
#include "hmis/util/check.hpp"

namespace hmis {

void write_hypergraph(std::ostream& os, const Hypergraph& h) {
  os << "hg1 " << h.num_vertices() << ' ' << h.num_edges() << '\n';
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const auto verts = h.edge(e);
    os << verts.size();
    for (const VertexId v : verts) os << ' ' << v;
    os << '\n';
  }
}

namespace {

/// Vertex ids are VertexId (u32) on the wire and in memory, and
/// kInvalidVertex is reserved — a header declaring more vertices than that
/// is either garbage or a file this build cannot represent.
constexpr std::uint64_t kMaxVertices = kInvalidVertex;

/// True iff the stream has nothing left on this line but whitespace.
/// Corrupt files must fail loudly: an edge line with extra tokens would
/// otherwise round-trip to a silently different hypergraph.
bool line_exhausted(std::istringstream& ls) {
  std::string extra;
  return !(ls >> extra);
}

}  // namespace

Hypergraph read_hypergraph(std::istream& is) {
  std::string line;
  std::string magic;
  std::uint64_t n = 0, m = 0;
  // Header (skipping comments).
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream hs(line);
    hs >> magic >> n >> m;
    HMIS_CHECK(!hs.fail() && magic == "hg1", "bad hypergraph header");
    std::string extra;
    HMIS_CHECK(!(hs >> extra), "trailing tokens after hypergraph header");
    break;
  }
  HMIS_CHECK(magic == "hg1", "missing hypergraph header");
  HMIS_CHECK(n <= kMaxVertices, "header vertex count exceeds VertexId range");
  HypergraphBuilder b(n);
  b.dedupe_edges(false);  // round-trip exactly what was written
  std::uint64_t read_edges = 0;
  VertexList e;
  while (read_edges < m && std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::size_t k = 0;
    ls >> k;
    HMIS_CHECK(!ls.fail(), "bad edge line");
    e.clear();
    for (std::size_t i = 0; i < k; ++i) {
      VertexId v;
      ls >> v;
      HMIS_CHECK(!ls.fail(), "truncated edge line");
      HMIS_CHECK(v < n, "edge references vertex out of range");
      e.push_back(v);
    }
    HMIS_CHECK(line_exhausted(ls), "trailing tokens on edge line");
    b.add_edge(std::span<const VertexId>(e.data(), e.size()));
    ++read_edges;
  }
  HMIS_CHECK(read_edges == m, "fewer edges than header declared");
  return b.build();
}

void save_hypergraph(const std::string& path, const Hypergraph& h) {
  std::ofstream os(path);
  HMIS_CHECK(os.good(), "cannot open file for writing: " + path);
  write_hypergraph(os, h);
  HMIS_CHECK(os.good(), "write failed: " + path);
}

Hypergraph load_hypergraph(const std::string& path) {
  std::ifstream is(path);
  HMIS_CHECK(is.good(), "cannot open file for reading: " + path);
  return read_hypergraph(is);
}

namespace {

constexpr char kBinaryMagic[4] = {'H', 'G', 'B', '1'};

void put_u64(std::ostream& os, std::uint64_t x) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((x >> (8 * i)) & 0xFF);
  os.write(buf, 8);
}

void put_u32(std::ostream& os, std::uint32_t x) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((x >> (8 * i)) & 0xFF);
  os.write(buf, 4);
}

std::uint64_t get_u64(std::istream& is) {
  unsigned char buf[8];
  is.read(reinterpret_cast<char*>(buf), 8);
  HMIS_CHECK(is.good(), "binary hypergraph truncated (u64)");
  std::uint64_t x = 0;
  for (int i = 7; i >= 0; --i) x = (x << 8) | buf[i];
  return x;
}

std::uint32_t get_u32(std::istream& is) {
  unsigned char buf[4];
  is.read(reinterpret_cast<char*>(buf), 4);
  HMIS_CHECK(is.good(), "binary hypergraph truncated (u32)");
  std::uint32_t x = 0;
  for (int i = 3; i >= 0; --i) x = (x << 8) | buf[i];
  return x;
}

}  // namespace

void write_hypergraph_binary(std::ostream& os, const Hypergraph& h) {
  os.write(kBinaryMagic, 4);
  put_u64(os, h.num_vertices());
  put_u64(os, h.num_edges());
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const auto verts = h.edge(e);
    HMIS_CHECK(verts.size() <= 0xFFFFFFFFull,
               "edge arity does not fit the u32 wire field");
    put_u32(os, static_cast<std::uint32_t>(verts.size()));
    for (const VertexId v : verts) put_u32(os, v);
  }
  HMIS_CHECK(os.good(), "binary write failed");
}

Hypergraph read_hypergraph_binary(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  HMIS_CHECK(is.good() && std::equal(magic, magic + 4, kBinaryMagic),
             "bad binary hypergraph magic");

  // The stream is untrusted (`hmis serve` feeds uploaded graphs through
  // here): every size the header declares is capped against the bytes that
  // actually exist before anything is allocated or looped over.  On a
  // seekable stream the remaining length is exact; otherwise (pipes) the
  // declared sizes are only bounded by the per-value EOF checks and
  // reserve() is capped to a constant.
  std::uint64_t bytes_left = 0;
  bool bounded = false;
  const std::istream::pos_type cur = is.tellg();
  if (cur != std::istream::pos_type(-1)) {
    is.seekg(0, std::ios::end);
    const std::istream::pos_type end = is.tellg();
    is.seekg(cur);
    if (end != std::istream::pos_type(-1) && is.good() && end >= cur) {
      bytes_left = static_cast<std::uint64_t>(end - cur);
      bounded = true;
    } else {
      is.clear();
      is.seekg(cur);
    }
  } else {
    is.clear();
  }

  const std::uint64_t n = get_u64(is);
  const std::uint64_t m = get_u64(is);
  HMIS_CHECK(n <= kMaxVertices, "header vertex count exceeds VertexId range");
  if (bounded) {
    bytes_left -= 16;  // n + m just consumed; magic preceded tellg()
    // Every edge costs at least 8 bytes (u32 arity + at least one vertex —
    // empty edges are rejected below), so a header declaring more edges
    // than the stream could hold is garbage, not a long read.
    HMIS_CHECK(m <= bytes_left / 8,
               "declared edge count exceeds remaining stream length");
  }
  HypergraphBuilder b(n);
  b.dedupe_edges(false);
  VertexList e;
  for (std::uint64_t i = 0; i < m; ++i) {
    const std::uint32_t k = get_u32(is);
    HMIS_CHECK(k >= 1, "binary edge with zero vertices");
    if (bounded) {
      bytes_left -= 4;
      HMIS_CHECK(k <= bytes_left / 4,
                 "declared edge arity exceeds remaining stream length");
      bytes_left -= std::uint64_t{4} * k;
    }
    e.clear();
    e.reserve(bounded ? k : std::min<std::uint32_t>(k, 4096));
    for (std::uint32_t j = 0; j < k; ++j) {
      const std::uint32_t v = get_u32(is);
      HMIS_CHECK(v < n, "edge references vertex out of range");
      e.push_back(v);
    }
    b.add_edge(std::span<const VertexId>(e.data(), e.size()));
  }
  return b.build();
}

void save_hypergraph_binary(const std::string& path, const Hypergraph& h) {
  std::ofstream os(path, std::ios::binary);
  HMIS_CHECK(os.good(), "cannot open file for writing: " + path);
  write_hypergraph_binary(os, h);
  HMIS_CHECK(os.good(), "write failed: " + path);
}

Hypergraph load_hypergraph_binary(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  HMIS_CHECK(is.good(), "cannot open file for reading: " + path);
  return read_hypergraph_binary(is);
}

}  // namespace hmis
