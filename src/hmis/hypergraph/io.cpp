#include "hmis/hypergraph/io.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "hmis/hypergraph/builder.hpp"
#include "hmis/util/check.hpp"
#include "hmis/util/mmap_file.hpp"
#include "hmis/util/rng.hpp"

namespace hmis {

void write_hypergraph(std::ostream& os, const Hypergraph& h) {
  os << "hg1 " << h.num_vertices() << ' ' << h.num_edges() << '\n';
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const auto verts = h.edge(e);
    os << verts.size();
    for (const VertexId v : verts) os << ' ' << v;
    os << '\n';
  }
}

namespace {

/// Vertex ids are VertexId (u32) on the wire and in memory, and
/// kInvalidVertex is reserved — a header declaring more vertices than that
/// is either garbage or a file this build cannot represent.
constexpr std::uint64_t kMaxVertices = kInvalidVertex;

/// True iff the stream has nothing left on this line but whitespace.
/// Corrupt files must fail loudly: an edge line with extra tokens would
/// otherwise round-trip to a silently different hypergraph.
bool line_exhausted(std::istringstream& ls) {
  std::string extra;
  return !(ls >> extra);
}

}  // namespace

Hypergraph read_hypergraph(std::istream& is) {
  std::string line;
  std::string magic;
  std::uint64_t n = 0, m = 0;
  // Header (skipping comments).
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream hs(line);
    hs >> magic >> n >> m;
    HMIS_CHECK(!hs.fail() && magic == "hg1", "bad hypergraph header");
    std::string extra;
    HMIS_CHECK(!(hs >> extra), "trailing tokens after hypergraph header");
    break;
  }
  HMIS_CHECK(magic == "hg1", "missing hypergraph header");
  HMIS_CHECK(n <= kMaxVertices, "header vertex count exceeds VertexId range");
  HypergraphBuilder b(n);
  b.dedupe_edges(false);  // round-trip exactly what was written
  std::uint64_t read_edges = 0;
  VertexList e;
  while (read_edges < m && std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::size_t k = 0;
    ls >> k;
    HMIS_CHECK(!ls.fail(), "bad edge line");
    e.clear();
    for (std::size_t i = 0; i < k; ++i) {
      VertexId v;
      ls >> v;
      HMIS_CHECK(!ls.fail(), "truncated edge line");
      HMIS_CHECK(v < n, "edge references vertex out of range");
      e.push_back(v);
    }
    HMIS_CHECK(line_exhausted(ls), "trailing tokens on edge line");
    b.add_edge(std::span<const VertexId>(e.data(), e.size()));
    ++read_edges;
  }
  HMIS_CHECK(read_edges == m, "fewer edges than header declared");
  return b.build();
}

void save_hypergraph(const std::string& path, const Hypergraph& h) {
  std::ofstream os(path);
  HMIS_CHECK(os.good(), "cannot open file for writing: " + path);
  write_hypergraph(os, h);
  HMIS_CHECK(os.good(), "write failed: " + path);
}

Hypergraph load_hypergraph_text(const std::string& path) {
  std::ifstream is(path);
  HMIS_CHECK(is.good(), "cannot open file for reading: " + path);
  return read_hypergraph(is);
}

namespace {

constexpr char kBinaryMagic[4] = {'H', 'G', 'B', '1'};

void put_u64(std::ostream& os, std::uint64_t x) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((x >> (8 * i)) & 0xFF);
  os.write(buf, 8);
}

void put_u32(std::ostream& os, std::uint32_t x) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((x >> (8 * i)) & 0xFF);
  os.write(buf, 4);
}

std::uint64_t get_u64(std::istream& is) {
  unsigned char buf[8];
  is.read(reinterpret_cast<char*>(buf), 8);
  HMIS_CHECK(is.good(), "binary hypergraph truncated (u64)");
  std::uint64_t x = 0;
  for (int i = 7; i >= 0; --i) x = (x << 8) | buf[i];
  return x;
}

std::uint32_t get_u32(std::istream& is) {
  unsigned char buf[4];
  is.read(reinterpret_cast<char*>(buf), 4);
  HMIS_CHECK(is.good(), "binary hypergraph truncated (u32)");
  std::uint32_t x = 0;
  for (int i = 3; i >= 0; --i) x = (x << 8) | buf[i];
  return x;
}

}  // namespace

void write_hypergraph_binary(std::ostream& os, const Hypergraph& h) {
  os.write(kBinaryMagic, 4);
  put_u64(os, h.num_vertices());
  put_u64(os, h.num_edges());
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const auto verts = h.edge(e);
    HMIS_CHECK(verts.size() <= 0xFFFFFFFFull,
               "edge arity does not fit the u32 wire field");
    put_u32(os, static_cast<std::uint32_t>(verts.size()));
    for (const VertexId v : verts) put_u32(os, v);
  }
  HMIS_CHECK(os.good(), "binary write failed");
}

Hypergraph read_hypergraph_binary(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  HMIS_CHECK(is.good() && std::equal(magic, magic + 4, kBinaryMagic),
             "bad binary hypergraph magic");

  // The stream is untrusted (`hmis serve` feeds uploaded graphs through
  // here): every size the header declares is capped against the bytes that
  // actually exist before anything is allocated or looped over.  On a
  // seekable stream the remaining length is exact; otherwise (pipes) the
  // declared sizes are only bounded by the per-value EOF checks and
  // reserve() is capped to a constant.
  std::uint64_t bytes_left = 0;
  bool bounded = false;
  const std::istream::pos_type cur = is.tellg();
  if (cur != std::istream::pos_type(-1)) {
    is.seekg(0, std::ios::end);
    const std::istream::pos_type end = is.tellg();
    is.seekg(cur);
    if (end != std::istream::pos_type(-1) && is.good() && end >= cur) {
      bytes_left = static_cast<std::uint64_t>(end - cur);
      bounded = true;
    } else {
      is.clear();
      is.seekg(cur);
    }
  } else {
    is.clear();
  }

  const std::uint64_t n = get_u64(is);
  const std::uint64_t m = get_u64(is);
  HMIS_CHECK(n <= kMaxVertices, "header vertex count exceeds VertexId range");
  if (bounded) {
    bytes_left -= 16;  // n + m just consumed; magic preceded tellg()
    // Every edge costs at least 8 bytes (u32 arity + at least one vertex —
    // empty edges are rejected below), so a header declaring more edges
    // than the stream could hold is garbage, not a long read.
    HMIS_CHECK(m <= bytes_left / 8,
               "declared edge count exceeds remaining stream length");
  }
  HypergraphBuilder b(n);
  b.dedupe_edges(false);
  VertexList e;
  for (std::uint64_t i = 0; i < m; ++i) {
    const std::uint32_t k = get_u32(is);
    HMIS_CHECK(k >= 1, "binary edge with zero vertices");
    if (bounded) {
      bytes_left -= 4;
      HMIS_CHECK(k <= bytes_left / 4,
                 "declared edge arity exceeds remaining stream length");
      bytes_left -= std::uint64_t{4} * k;
    }
    e.clear();
    e.reserve(bounded ? k : std::min<std::uint32_t>(k, 4096));
    for (std::uint32_t j = 0; j < k; ++j) {
      const std::uint32_t v = get_u32(is);
      HMIS_CHECK(v < n, "edge references vertex out of range");
      e.push_back(v);
    }
    b.add_edge(std::span<const VertexId>(e.data(), e.size()));
  }
  return b.build();
}

void save_hypergraph_binary(const std::string& path, const Hypergraph& h) {
  std::ofstream os(path, std::ios::binary);
  HMIS_CHECK(os.good(), "cannot open file for writing: " + path);
  write_hypergraph_binary(os, h);
  HMIS_CHECK(os.good(), "write failed: " + path);
}

Hypergraph load_hypergraph_binary(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  HMIS_CHECK(is.good(), "cannot open file for reading: " + path);
  return read_hypergraph_binary(is);
}

// ---------------------------------------------------------------------------
// HGB2: mmap-able CSR snapshot (layout in io.hpp, argument in DESIGN.md §11).

namespace detail {

// The loaders' construction hook: build a Hypergraph directly from
// validated CSR arrays, bypassing the builder.  Only io.cpp constructs
// these, and only after hgb2_check_csr has accepted the arrays.
struct CsrAccess {
  static Hypergraph adopt(std::shared_ptr<const void> keepalive,
                          std::span<const std::size_t> eo,
                          std::span<const VertexId> ev,
                          std::span<const std::size_t> vo,
                          std::span<const EdgeId> ve, std::size_t n,
                          std::size_t dim, std::size_t min_sz) {
    Hypergraph h;
    h.n_ = n;
    h.keepalive_ = std::move(keepalive);
    h.edge_offsets_ = eo;
    h.edge_vertices_ = ev;
    h.vertex_offsets_ = vo;
    h.vertex_edges_ = ve;
    h.dimension_ = dim;
    h.min_edge_size_ = min_sz;
    return h;
  }

  static Hypergraph own(std::vector<std::size_t> eo, std::vector<VertexId> ev,
                        std::vector<std::size_t> vo, std::vector<EdgeId> ve,
                        std::size_t n, std::size_t dim, std::size_t min_sz) {
    Hypergraph h;
    h.n_ = n;
    h.own_edge_offsets_ = std::move(eo);
    h.own_edge_vertices_ = std::move(ev);
    h.own_vertex_offsets_ = std::move(vo);
    h.own_vertex_edges_ = std::move(ve);
    h.dimension_ = dim;
    h.min_edge_size_ = min_sz;
    h.rebind_owned_();
    return h;
  }
};

}  // namespace detail

namespace {

constexpr char kHgb2Magic[4] = {'H', 'G', 'B', '2'};
constexpr std::uint32_t kHgb2Version = 1;
constexpr std::uint64_t kHgb2HeaderBytes = 144;
constexpr std::uint64_t kHgb2SectionAlign = 64;
constexpr std::uint64_t kHgb2FirstSection = 192;  // header rounded up to 64

/// True when the section bytes can be reinterpreted as the in-memory
/// arrays: on-disk values are u64/u32 little-endian, exactly the native
/// layout of std::size_t / VertexId on a 64-bit little-endian build.
constexpr bool kHgb2NativeLayout =
    std::endian::native == std::endian::little && sizeof(std::size_t) == 8;

/// Little-endian scalar loads.  memcpy compiles to one unaligned load on
/// little-endian targets (the byteswap is only emitted on big-endian
/// hardware); a byte-by-byte shift-or loop would make the checksum scan —
/// the mapped loader's hottest loop — byte-bound instead of word-bound.
std::uint64_t load_le64(const unsigned char* p) {
  std::uint64_t x;
  std::memcpy(&x, p, 8);
  if constexpr (std::endian::native == std::endian::big) {
    x = __builtin_bswap64(x);
  }
  return x;
}

std::uint32_t load_le32(const unsigned char* p) {
  std::uint32_t x;
  std::memcpy(&x, p, 4);
  if constexpr (std::endian::native == std::endian::big) {
    x = __builtin_bswap32(x);
  }
  return x;
}

/// Section checksum over the little-endian byte image in 4-byte words
/// (zero-padded tail).  Sixteen interleaved xor-multiply u32 lanes (word i
/// feeds lane i % 16) folded through mix64 at the end, seeded with the
/// section length so a truncation can't collide with its own prefix.  The
/// lane structure is deliberate: the mapped loader checksums the whole
/// file, and a serial mix64 chain is latency-bound while 16 independent
/// u32 xor-multiply lanes autovectorize (u32 multiplies exist in SSE/AVX;
/// u64 multiplies don't), making verification memory-bound instead.
std::uint64_t hgb2_checksum(const unsigned char* p, std::uint64_t len) {
  constexpr std::uint32_t kMul = 0x9e3779b1u;  // golden-ratio prime (odd)
  std::uint32_t lane[16];
  for (int k = 0; k < 16; ++k) {
    lane[k] = static_cast<std::uint32_t>(
        util::mix64(len ^ (0x4847423243534d31ULL + std::uint64_t(k))));
  }
  std::uint64_t i = 0;
  for (; i + 64 <= len; i += 64) {
    for (int k = 0; k < 16; ++k) {
      lane[k] = (lane[k] ^ load_le32(p + i + 4 * std::uint64_t(k))) * kMul;
    }
  }
  for (int k = 0; i < len; i += 4, ++k) {
    std::uint32_t w = 0;
    const std::uint64_t take = std::min<std::uint64_t>(4, len - i);
    for (std::uint64_t j = 0; j < take; ++j) {
      w |= std::uint32_t{p[i + j]} << (8 * j);
    }
    lane[k] = (lane[k] ^ w) * kMul;
  }
  std::uint64_t h = util::mix64(len ^ 0x4847423243534d31ULL);
  for (int k = 0; k < 16; k += 2) {
    h = util::mix64(h ^ (std::uint64_t{lane[k]} << 32 | lane[k + 1]));
  }
  return h;
}

struct Hgb2Section {
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t checksum = 0;
};

struct Hgb2View {
  const unsigned char* base = nullptr;
  std::uint64_t n = 0, m = 0, dimension = 0, min_edge_size = 0, total = 0;
  Hgb2Section sec[4];  // edge_offsets, edge_vertices, vertex_offsets,
                       // vertex_edges
  [[nodiscard]] const unsigned char* data(int i) const {
    return base + sec[i].offset;
  }
};

/// Structural validation of an untrusted HGB2 image: magic/version, header
/// counts within id ranges, section table consistent with the counts,
/// sections 64-byte aligned, monotone, non-overlapping and inside the
/// file, checksums intact.  Pure reads — nothing is allocated, so hostile
/// input is rejected before the loader commits any resources.
Hgb2View hgb2_validate(const unsigned char* data, std::size_t size) {
  HMIS_CHECK(size >= kHgb2HeaderBytes, "HGB2 image shorter than its header");
  HMIS_CHECK(std::equal(data, data + 4,
                        reinterpret_cast<const unsigned char*>(kHgb2Magic)),
             "bad HGB2 magic");
  HMIS_CHECK(load_le32(data + 4) == kHgb2Version, "unsupported HGB2 version");
  Hgb2View v;
  v.base = data;
  v.n = load_le64(data + 8);
  v.m = load_le64(data + 16);
  v.dimension = load_le64(data + 24);
  v.min_edge_size = load_le64(data + 32);
  v.total = load_le64(data + 40);
  HMIS_CHECK(v.n <= kMaxVertices, "header vertex count exceeds VertexId range");
  HMIS_CHECK(v.m <= 0xFFFFFFFFull, "header edge count exceeds EdgeId range");
  // Every edge-vertex entry costs 4 bytes on disk, so a total the file
  // cannot hold is garbage; capping it here also makes the section-size
  // arithmetic below overflow-free (n and m are already capped at 2^32).
  HMIS_CHECK(v.total <= size / 4,
             "declared total edge size exceeds file size");
  const std::uint64_t want[4] = {(v.m + 1) * 8, v.total * 4, (v.n + 1) * 8,
                                 v.total * 4};
  std::uint64_t prev_end = kHgb2HeaderBytes;
  for (int i = 0; i < 4; ++i) {
    const unsigned char* row = data + 48 + 24 * i;
    v.sec[i].offset = load_le64(row);
    v.sec[i].bytes = load_le64(row + 8);
    v.sec[i].checksum = load_le64(row + 16);
    HMIS_CHECK(v.sec[i].offset % kHgb2SectionAlign == 0,
               "HGB2 section offset not 64-byte aligned");
    HMIS_CHECK(v.sec[i].bytes == want[i],
               "HGB2 section size disagrees with header counts");
    HMIS_CHECK(v.sec[i].offset >= prev_end,
               "HGB2 sections overlap or are out of order");
    HMIS_CHECK(v.sec[i].offset <= size &&
                   size - v.sec[i].offset >= v.sec[i].bytes,
               "HGB2 section extends past end of file");
    prev_end = v.sec[i].offset + v.sec[i].bytes;
  }
  for (int i = 0; i < 4; ++i) {
    HMIS_CHECK(hgb2_checksum(v.data(i), v.sec[i].bytes) == v.sec[i].checksum,
               "HGB2 section checksum mismatch");
  }
  return v;
}

/// Precise (per-element, branchy) form of the semantic CSR validation —
/// the slow path that names the exact violation.  Only entered after the
/// accumulating fast pass below already found the data bad.
void hgb2_check_csr_slow(std::span<const std::size_t> eo,
                         std::span<const VertexId> ev,
                         std::span<const std::size_t> vo,
                         std::span<const EdgeId> ve, const Hgb2View& v) {
  const std::size_t m = v.m;
  const std::size_t n = v.n;
  const std::size_t total = v.total;
  HMIS_CHECK(eo[0] == 0, "HGB2 edge_offsets must start at 0");
  std::size_t dim = 0;
  std::size_t min_sz = m == 0 ? 0 : SIZE_MAX;
  for (std::size_t e = 0; e < m; ++e) {
    HMIS_CHECK(eo[e] < eo[e + 1],
               "HGB2 edge_offsets not strictly increasing (empty edge?)");
    const std::size_t sz = eo[e + 1] - eo[e];
    dim = std::max(dim, sz);
    min_sz = std::min(min_sz, sz);
  }
  HMIS_CHECK(eo[m] == total,
             "HGB2 edge_offsets end disagrees with total edge size");
  HMIS_CHECK(dim == v.dimension && min_sz == v.min_edge_size,
             "HGB2 header dimension/min edge size disagree with edge data");
  for (std::size_t e = 0; e < m; ++e) {
    for (std::size_t i = eo[e]; i < eo[e + 1]; ++i) {
      HMIS_CHECK(ev[i] < n, "HGB2 edge references vertex out of range");
      HMIS_CHECK(i == eo[e] || ev[i - 1] < ev[i],
                 "HGB2 edge vertices not strictly ascending");
    }
  }
  HMIS_CHECK(vo[0] == 0 && vo[n] == total,
             "HGB2 vertex_offsets must close over the incidence array");
  for (std::size_t u = 0; u < n; ++u) {
    HMIS_CHECK(vo[u] <= vo[u + 1], "HGB2 vertex_offsets not monotone");
    for (std::size_t i = vo[u]; i < vo[u + 1]; ++i) {
      HMIS_CHECK(ve[i] < m, "HGB2 incidence references edge out of range");
      HMIS_CHECK(i == vo[u] || ve[i - 1] < ve[i],
                 "HGB2 incidence list not strictly ascending");
    }
  }
  HMIS_CHECK(false, "HGB2 CSR validation failed");  // fast/slow disagreement
}

/// Semantic validation of the CSR arrays (native form, owned or borrowed):
/// offsets monotone and closed over the id arrays, per-edge vertex lists
/// strictly ascending and in range, per-vertex incidence lists strictly
/// ascending and in range, header dimension/min consistent.  Everything an
/// algorithm indexes with is checked before the graph escapes the loader.
///
/// Structured as branch-free accumulating passes (the compiler vectorizes
/// the compares) so the mapped zero-copy load isn't dominated by its own
/// safety scan; a bad image falls through to the per-element slow path for
/// an exact message.
void hgb2_check_csr(std::span<const std::size_t> eo,
                    std::span<const VertexId> ev,
                    std::span<const std::size_t> vo,
                    std::span<const EdgeId> ve, const Hgb2View& v) {
  const std::size_t m = v.m;
  const std::size_t n = v.n;
  const std::size_t total = v.total;
  std::size_t bad = eo[0] != 0 || eo[m] != total || vo[0] != 0;
  bad |= static_cast<std::size_t>(vo[n] != total);
  std::size_t dim = 0;
  std::size_t min_sz = m == 0 ? 0 : SIZE_MAX;
  const std::size_t* eop = eo.data();
  for (std::size_t e = 0; e < m; ++e) {
    bad |= static_cast<std::size_t>(eop[e] >= eop[e + 1]);
    const std::size_t sz = eop[e + 1] - eop[e];
    dim = std::max(dim, sz);
    min_sz = std::min(min_sz, sz);
  }
  bad |= static_cast<std::size_t>(dim != v.dimension);
  bad |= static_cast<std::size_t>(min_sz != v.min_edge_size);
  if (bad == 0) {
    // "Strictly ascending within every list" via descent counting: every
    // adjacent pair (i-1, i) of the id array is either interior to a list
    // or sits on a list boundary (i == offset of the next list), so all
    // interiors are ascending iff the total number of descents equals the
    // number of descents at boundary positions.  The total is one flat
    // vectorizable compare-sum; the boundary count is one load pair per
    // list.  (Offsets are already known monotone and closed, so every
    // index below is in range.)
    const VertexId* evp = ev.data();
    for (std::size_t i = 0; i < total; ++i) {
      bad |= static_cast<std::size_t>(evp[i] >= n);
    }
    std::size_t desc_all = 0;
    for (std::size_t i = 1; i < total; ++i) {
      desc_all += static_cast<std::size_t>(evp[i - 1] >= evp[i]);
    }
    std::size_t desc_bound = 0;
    for (std::size_t e = 1; e < m; ++e) {
      const std::size_t b = eop[e];
      desc_bound += static_cast<std::size_t>(evp[b - 1] >= evp[b]);
    }
    bad |= static_cast<std::size_t>(desc_all != desc_bound);

    const std::size_t* vop = vo.data();
    for (std::size_t u = 0; u < n; ++u) {
      bad |= static_cast<std::size_t>(vop[u] > vop[u + 1]);
    }
    const EdgeId* vep = ve.data();
    for (std::size_t i = 0; i < total; ++i) {
      bad |= static_cast<std::size_t>(vep[i] >= m);
    }
    if (bad == 0) {
      desc_all = 0;
      for (std::size_t i = 1; i < total; ++i) {
        desc_all += static_cast<std::size_t>(vep[i - 1] >= vep[i]);
      }
      desc_bound = 0;
      for (std::size_t u = 1; u < n; ++u) {
        const std::size_t b = vop[u];
        // Empty incidence lists repeat a boundary offset — count each
        // distinct boundary once (first occurrence), and only when it is
        // interior to the array (an adjacent pair actually exists there).
        if (b == 0 || b >= total || b == vop[u - 1]) continue;
        desc_bound += static_cast<std::size_t>(vep[b - 1] >= vep[b]);
      }
      bad |= static_cast<std::size_t>(desc_all != desc_bound);
    }
  }
  if (bad != 0) hgb2_check_csr_slow(eo, ev, vo, ve, v);
}

/// Decode the sections into owned vectors (any platform; per-value LE
/// reads).  Used when the image can't be adopted in place.
Hypergraph hgb2_owned_copy(const Hgb2View& v) {
  std::vector<std::size_t> eo(v.m + 1);
  std::vector<VertexId> ev(v.total);
  std::vector<std::size_t> vo(v.n + 1);
  std::vector<EdgeId> ve(v.total);
  const unsigned char* p = v.data(0);
  for (std::size_t i = 0; i < eo.size(); ++i) eo[i] = load_le64(p + 8 * i);
  p = v.data(1);
  for (std::size_t i = 0; i < ev.size(); ++i) ev[i] = load_le32(p + 4 * i);
  p = v.data(2);
  for (std::size_t i = 0; i < vo.size(); ++i) vo[i] = load_le64(p + 8 * i);
  p = v.data(3);
  for (std::size_t i = 0; i < ve.size(); ++i) ve[i] = load_le32(p + 4 * i);
  hgb2_check_csr(eo, ev, vo, ve, v);
  return detail::CsrAccess::own(std::move(eo), std::move(ev), std::move(vo),
                                std::move(ve), v.n, v.dimension,
                                v.min_edge_size);
}

/// Zero-copy adoption when the native layout matches the wire layout and
/// the base pointer is 8-byte aligned (sections are 64-byte aligned
/// relative to it); otherwise fall back to the owned copy.
Hypergraph hgb2_adopt_or_copy(const Hgb2View& v,
                              std::shared_ptr<const void> keepalive) {
  // HMIS_LINT_ALLOW(hmis-banned-nondeterminism: alignment probe only — the address never feeds ordering or hashing, just the copy-vs-adopt branch, and both branches yield the same graph)
  const bool aligned = reinterpret_cast<std::uintptr_t>(v.base) % 8 == 0;
  if (kHgb2NativeLayout && aligned) {
    const std::span<const std::size_t> eo{
        reinterpret_cast<const std::size_t*>(v.data(0)),
        static_cast<std::size_t>(v.m + 1)};
    const std::span<const VertexId> ev{
        reinterpret_cast<const VertexId*>(v.data(1)),
        static_cast<std::size_t>(v.total)};
    const std::span<const std::size_t> vo{
        reinterpret_cast<const std::size_t*>(v.data(2)),
        static_cast<std::size_t>(v.n + 1)};
    const std::span<const EdgeId> ve{
        reinterpret_cast<const EdgeId*>(v.data(3)),
        static_cast<std::size_t>(v.total)};
    hgb2_check_csr(eo, ev, vo, ve, v);
    return detail::CsrAccess::adopt(std::move(keepalive), eo, ev, vo, ve,
                                    v.n, v.dimension, v.min_edge_size);
  }
  return hgb2_owned_copy(v);
}

void append_u64(std::vector<unsigned char>& b, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    b.push_back(static_cast<unsigned char>((x >> (8 * i)) & 0xFF));
  }
}

void append_u32(std::vector<unsigned char>& b, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) {
    b.push_back(static_cast<unsigned char>((x >> (8 * i)) & 0xFF));
  }
}

void write_padded(std::ostream& os, std::uint64_t from, std::uint64_t to) {
  static constexpr char kPad[kHgb2SectionAlign] = {};
  while (from < to) {
    const std::uint64_t chunk = std::min<std::uint64_t>(to - from,
                                                        sizeof(kPad));
    os.write(kPad, static_cast<std::streamsize>(chunk));
    from += chunk;
  }
}

}  // namespace

void write_hypergraph_hgb2(std::ostream& os, const Hypergraph& h) {
  const auto eo = h.edge_offsets();
  const auto ev = h.edge_vertices();
  auto vo = h.vertex_offsets();
  const auto ve = h.vertex_edges();
  const std::uint64_t n = h.num_vertices();
  const std::uint64_t m = h.num_edges();
  const std::uint64_t total = h.total_edge_size();
  // A default-constructed graph holds an empty vertex_offsets; on disk the
  // array always has n+1 entries.
  static constexpr std::size_t kZeroOffset = 0;
  if (vo.empty()) vo = std::span<const std::size_t>(&kZeroOffset, 1);
  HMIS_CHECK(eo.size() == m + 1 && vo.size() == n + 1 &&
                 ev.size() == total && ve.size() == total,
             "CSR arrays inconsistent with graph counts");

  // Build the little-endian section images up front: their checksums go in
  // the header, which is written first.
  std::vector<unsigned char> img[4];
  img[0].reserve(eo.size() * 8);
  for (const std::size_t x : eo) append_u64(img[0], x);
  img[1].reserve(ev.size() * 4);
  for (const VertexId x : ev) append_u32(img[1], x);
  img[2].reserve(vo.size() * 8);
  for (const std::size_t x : vo) append_u64(img[2], x);
  img[3].reserve(ve.size() * 4);
  for (const EdgeId x : ve) append_u32(img[3], x);

  std::uint64_t off[4];
  std::uint64_t cursor = kHgb2FirstSection;
  for (int i = 0; i < 4; ++i) {
    off[i] = cursor;
    cursor += img[i].size();
    cursor = (cursor + kHgb2SectionAlign - 1) / kHgb2SectionAlign *
             kHgb2SectionAlign;
  }

  std::vector<unsigned char> header;
  header.reserve(kHgb2HeaderBytes);
  header.insert(header.end(), kHgb2Magic, kHgb2Magic + 4);
  append_u32(header, kHgb2Version);
  append_u64(header, n);
  append_u64(header, m);
  append_u64(header, h.dimension());
  append_u64(header, h.min_edge_size());
  append_u64(header, total);
  for (int i = 0; i < 4; ++i) {
    append_u64(header, off[i]);
    append_u64(header, img[i].size());
    append_u64(header, hgb2_checksum(img[i].data(), img[i].size()));
  }
  os.write(reinterpret_cast<const char*>(header.data()),
           static_cast<std::streamsize>(header.size()));
  std::uint64_t pos = header.size();
  for (int i = 0; i < 4; ++i) {
    write_padded(os, pos, off[i]);
    os.write(reinterpret_cast<const char*>(img[i].data()),
             static_cast<std::streamsize>(img[i].size()));
    pos = off[i] + img[i].size();
  }
  HMIS_CHECK(os.good(), "HGB2 write failed");
}

void save_hypergraph_hgb2(const std::string& path, const Hypergraph& h) {
  std::ofstream os(path, std::ios::binary);
  HMIS_CHECK(os.good(), "cannot open file for writing: " + path);
  write_hypergraph_hgb2(os, h);
  HMIS_CHECK(os.good(), "write failed: " + path);
}

Hypergraph load_hypergraph_hgb2(const std::string& path) {
  const util::MmapFile f(path);
  const Hgb2View v = hgb2_validate(f.data(), f.size());
  return hgb2_owned_copy(v);
}

Hypergraph load_hypergraph_mapped(const std::string& path) {
  auto f = std::make_shared<const util::MmapFile>(path);
  const Hgb2View v = hgb2_validate(f->data(), f->size());
  return hgb2_adopt_or_copy(v, f);
}

Hypergraph hypergraph_from_hgb2_buffer(
    std::shared_ptr<const std::string> bytes) {
  HMIS_CHECK(bytes != nullptr, "null HGB2 buffer");
  const auto* data = reinterpret_cast<const unsigned char*>(bytes->data());
  const Hgb2View v = hgb2_validate(data, bytes->size());
  return hgb2_adopt_or_copy(v, std::move(bytes));
}

std::uint64_t detail::hgb2_section_checksum(const unsigned char* data,
                                            std::uint64_t len) {
  return hgb2_checksum(data, len);
}

Hypergraph load_hypergraph(const std::string& path) {
  unsigned char magic[4] = {0, 0, 0, 0};
  {
    std::ifstream is(path, std::ios::binary);
    HMIS_CHECK(is.good(), "cannot open file for reading: " + path);
    is.read(reinterpret_cast<char*>(magic), 4);
    // A file shorter than 4 bytes matches no binary magic and falls
    // through to the text parser, which reports it properly.
  }
  if (std::equal(magic, magic + 4,
                 reinterpret_cast<const unsigned char*>(kHgb2Magic))) {
    return load_hypergraph_mapped(path);
  }
  if (std::equal(magic, magic + 4,
                 reinterpret_cast<const unsigned char*>(kBinaryMagic))) {
    return load_hypergraph_binary(path);
  }
  return load_hypergraph_text(path);
}

}  // namespace hmis
