// Cooperative cancellation (DESIGN.md §12).
//
// A `CancelToken` is a one-way latch: once `cancel()` is called it stays
// cancelled forever.  Long-running work polls `cancelled()` at natural
// checkpoints (round boundaries in the MIS algorithms — see
// engine::RoundContext::poll_cancel) and unwinds by throwing
// `CancelledError`.  Tokens chain: a token constructed over a parent is
// cancelled whenever the parent is, which lets a serve session merge two
// independent cancellation sources (an explicit `cancel` op and
// peer-disconnect detection) into the single pointer the engine sees.
//
// The token is intentionally minimal — no callbacks, no registration.
// `cancelled()` is one (or two, when chained) relaxed atomic loads, cheap
// enough for a per-round poll, and `cancel()` is safe from any thread,
// including concurrently with polls.  Lifetime is the caller's problem, as
// with every other options-struct pointer in this codebase: whoever passes
// a token into a solve must keep it alive until the solve's future is
// resolved.
#pragma once

#include <atomic>
#include <stdexcept>

namespace hmis::util {

/// Thrown by `CancelToken::throw_if_cancelled` (and by code observing a
/// cancelled token) to unwind a cooperatively-cancelled computation.
/// Distinct from CheckError on purpose: cancellation is an expected
/// outcome, not a contract violation, and callers dispatch on the type.
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("cancelled") {}
};

class CancelToken {
 public:
  CancelToken() = default;
  /// A child token: cancelled when either it or `parent` is cancelled.
  /// `parent` may be null (equivalent to the default constructor) and must
  /// outlive this token when non-null.
  explicit CancelToken(const CancelToken* parent) noexcept
      : parent_(parent) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool cancelled() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return parent_ != nullptr && parent_->cancelled();
  }

  void throw_if_cancelled() const {
    if (cancelled()) throw CancelledError();
  }

 private:
  std::atomic<bool> cancelled_{false};
  const CancelToken* parent_ = nullptr;
};

}  // namespace hmis::util
