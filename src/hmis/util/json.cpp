#include "hmis/util/json.hpp"

#include <cstdio>

#include "hmis/util/parse.hpp"

namespace hmis::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Exact JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
bool is_json_number(std::string_view s) noexcept {
  std::size_t i = 0;
  const auto digits = [&]() noexcept {
    const std::size_t begin = i;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
    return i > begin;
  };
  if (i < s.size() && s[i] == '-') ++i;
  if (i < s.size() && s[i] == '0') {
    ++i;  // a leading zero must stand alone
  } else if (!digits()) {
    return false;
  }
  if (i < s.size() && s[i] == '.') {
    ++i;
    if (!digits()) return false;
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    if (!digits()) return false;
  }
  return i == s.size();
}

}  // namespace

JsonObjectScanner::JsonObjectScanner(std::string_view text) : text_(text) {}

void JsonObjectScanner::skip_ws() noexcept {
  while (pos_ < text_.size()) {
    const char c = text_[pos_];
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
    ++pos_;
  }
}

bool JsonObjectScanner::scan_string(std::string_view* out) noexcept {
  // pos_ sits on the opening quote.
  const std::size_t begin = ++pos_;
  while (pos_ < text_.size()) {
    const char c = text_[pos_];
    if (c == '\\') {
      pos_ += 2;  // skip the escaped character (validity checked on decode)
      continue;
    }
    if (c == '"') {
      *out = text_.substr(begin, pos_ - begin);
      ++pos_;
      return true;
    }
    ++pos_;
  }
  return false;  // unterminated
}

bool JsonObjectScanner::scan_value(JsonValue* out) noexcept {
  skip_ws();
  if (pos_ >= text_.size()) return false;
  const char c = text_[pos_];
  if (c == '"') {
    out->kind = JsonValue::Kind::String;
    return scan_string(&out->raw);
  }
  if (c == '{' || c == '[') {
    // Slice the whole nested structure, tracking depth and string state.
    const std::size_t begin = pos_;
    int depth = 0;
    bool in_string = false;
    while (pos_ < text_.size()) {
      const char d = text_[pos_];
      if (in_string) {
        if (d == '\\') {
          ++pos_;
        } else if (d == '"') {
          in_string = false;
        }
      } else if (d == '"') {
        in_string = true;
      } else if (d == '{' || d == '[') {
        ++depth;
      } else if (d == '}' || d == ']') {
        --depth;
        if (depth == 0) {
          ++pos_;
          out->kind = c == '{' ? JsonValue::Kind::Object
                               : JsonValue::Kind::Array;
          out->raw = text_.substr(begin, pos_ - begin);
          return true;
        }
        if (depth < 0) return false;
      }
      ++pos_;
    }
    return false;  // unterminated
  }
  // Bare literal: number / true / false / null.
  const std::size_t begin = pos_;
  while (pos_ < text_.size()) {
    const char d = text_[pos_];
    const bool literal_char = (d >= '0' && d <= '9') || (d >= 'a' && d <= 'z') ||
                              d == '-' || d == '+' || d == '.' || d == 'E';
    if (!literal_char) break;
    ++pos_;
  }
  if (pos_ == begin) return false;
  out->raw = text_.substr(begin, pos_ - begin);
  if (out->raw == "true" || out->raw == "false") {
    out->kind = JsonValue::Kind::Bool;
  } else if (out->raw == "null") {
    out->kind = JsonValue::Kind::Null;
  } else {
    // Anything else must be a real JSON number: `tru`, `nul`, `1.2.3` and
    // friends are malformed input, not Numbers for downstream code to trip
    // over.
    if (!is_json_number(out->raw)) return false;
    out->kind = JsonValue::Kind::Number;
  }
  return true;
}

bool JsonObjectScanner::next(std::string_view* key, JsonValue* value) {
  if (error_ || closed_) return false;
  skip_ws();
  if (!started_) {
    if (pos_ >= text_.size() || text_[pos_] != '{') {
      fail();
      return false;
    }
    ++pos_;
    started_ = true;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      closed_ = true;
      skip_ws();
      if (pos_ != text_.size()) fail();  // trailing garbage
      return false;
    }
  } else {
    if (pos_ >= text_.size()) {
      fail();
      return false;
    }
    if (text_[pos_] == '}') {
      ++pos_;
      closed_ = true;
      skip_ws();
      if (pos_ != text_.size()) fail();
      return false;
    }
    if (text_[pos_] != ',') {
      fail();
      return false;
    }
    ++pos_;
    skip_ws();
  }
  if (pos_ >= text_.size() || text_[pos_] != '"' || !scan_string(key)) {
    fail();
    return false;
  }
  skip_ws();
  if (pos_ >= text_.size() || text_[pos_] != ':') {
    fail();
    return false;
  }
  ++pos_;
  if (!scan_value(value)) {
    fail();
    return false;
  }
  skip_ws();
  return true;
}

std::optional<std::uint64_t> json_u64(const JsonValue& v) {
  if (v.kind != JsonValue::Kind::Number) return std::nullopt;
  return parse_u64(v.raw);
}

std::optional<double> json_f64(const JsonValue& v) {
  if (v.kind != JsonValue::Kind::Number) return std::nullopt;
  return parse_f64(v.raw);
}

std::optional<bool> json_bool(const JsonValue& v) {
  if (v.kind != JsonValue::Kind::Bool) return std::nullopt;
  return v.raw == "true";
}

std::optional<std::string> json_string(const JsonValue& v) {
  if (v.kind != JsonValue::Kind::String) return std::nullopt;
  std::string out;
  out.reserve(v.raw.size());
  for (std::size_t i = 0; i < v.raw.size(); ++i) {
    const char c = v.raw[i];
    if (c != '\\') {
      out += c;
      continue;
    }
    if (++i >= v.raw.size()) return std::nullopt;
    switch (v.raw[i]) {
      case '"':
        out += '"';
        break;
      case '\\':
        out += '\\';
        break;
      case '/':
        out += '/';
        break;
      case 'b':
        out += '\b';
        break;
      case 'f':
        out += '\f';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case 't':
        out += '\t';
        break;
      case 'u': {
        if (i + 4 >= v.raw.size()) return std::nullopt;
        std::uint32_t cp = 0;
        for (int j = 0; j < 4; ++j) {
          const char h = v.raw[++i];
          cp <<= 4;
          if (h >= '0' && h <= '9') {
            cp |= static_cast<std::uint32_t>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            cp |= static_cast<std::uint32_t>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            cp |= static_cast<std::uint32_t>(h - 'A' + 10);
          } else {
            return std::nullopt;
          }
        }
        // UTF-8 encode (BMP only; surrogate pairs rejected — our own
        // escaper never emits them).
        if (cp >= 0xD800 && cp <= 0xDFFF) return std::nullopt;
        if (cp < 0x80) {
          out += static_cast<char>(cp);
        } else if (cp < 0x800) {
          out += static_cast<char>(0xC0 | (cp >> 6));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
          out += static_cast<char>(0xE0 | (cp >> 12));
          out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        }
        break;
      }
      default:
        return std::nullopt;
    }
  }
  return out;
}

std::optional<JsonValue> json_find(std::string_view object_text,
                                   std::string_view key) {
  JsonObjectScanner sc(object_text);
  std::string_view k;
  JsonValue v;
  std::optional<JsonValue> found;
  while (sc.next(&k, &v)) {
    if (k == key) found = v;
  }
  if (!sc.ok()) return std::nullopt;
  return found;
}

}  // namespace hmis::util
