// Strict numeric parsing for untrusted text (CLI flags, batch manifests,
// wire requests).
//
// Bare strtoull/strtod swallow garbage: they skip leading whitespace,
// accept signs and trailing junk, and yield 0 when nothing parses at all —
// so `--threads foo` used to silently serialize a run.  These helpers
// accept exactly one complete numeric token and report failure instead of
// guessing.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace hmis::util {

/// The entire string must be a base-10 unsigned integer fitting u64 (no
/// sign, no whitespace, no trailing characters).  nullopt otherwise.
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view s);

/// The entire string must be a finite floating-point literal (strtod
/// grammar, endptr + errno checked; leading whitespace rejected, inf/nan
/// rejected).  nullopt otherwise.
[[nodiscard]] std::optional<double> parse_f64(std::string_view s);

}  // namespace hmis::util
