// A dynamic bitset tuned for the access patterns of the MIS algorithms:
// bulk clear, word-level population count, and (optionally) thread-safe
// idempotent setting via std::atomic_ref.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hmis::util {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t n, bool value = false) { resize(n, value); }

  void resize(std::size_t n, bool value = false);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  [[nodiscard]] bool operator[](std::size_t i) const noexcept {
    return test(i);
  }

  void set(std::size_t i) noexcept { words_[i >> 6] |= (1ULL << (i & 63)); }
  void reset(std::size_t i) noexcept { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  void assign(std::size_t i, bool v) noexcept { v ? set(i) : reset(i); }

  /// Thread-safe idempotent set: multiple threads may set (possibly the same)
  /// bits concurrently.  Uses relaxed ordering — callers synchronize via the
  /// surrounding parallel_for barrier.
  void set_atomic(std::size_t i) noexcept {
    std::atomic_ref<std::uint64_t> w(words_[i >> 6]);
    w.fetch_or(1ULL << (i & 63), std::memory_order_relaxed);
  }

  /// Thread-safe idempotent reset, the clearing counterpart of set_atomic.
  void reset_atomic(std::size_t i) noexcept {
    std::atomic_ref<std::uint64_t> w(words_[i >> 6]);
    w.fetch_and(~(1ULL << (i & 63)), std::memory_order_relaxed);
  }

  /// Set all bits to zero, keeping the size.
  void clear_all() noexcept;
  /// Set all bits to one, keeping the size (tail bits stay zero).
  void set_all() noexcept;

  [[nodiscard]] std::size_t count() const noexcept;

  [[nodiscard]] bool any() const noexcept;
  [[nodiscard]] bool none() const noexcept { return !any(); }

  /// Indices of set bits, ascending.
  [[nodiscard]] std::vector<std::uint32_t> to_indices() const;

  /// Number of 64-bit words backing the bitset.
  [[nodiscard]] std::size_t num_words() const noexcept {
    return words_.size();
  }
  /// Raw word at index wi (bits [wi*64, wi*64+64)).  Tail bits beyond
  /// size() are always zero.
  [[nodiscard]] std::uint64_t word(std::size_t wi) const noexcept {
    return words_[wi];
  }

  /// Word-level visit of every NONZERO word, ascending: f(base, word) where
  /// `base` is the bit index of the word's bit 0.  The backbone of the
  /// output-sensitive kernels: skipping zero words costs one load each, so a
  /// sparse bitset is traversed in O(words) instead of O(size) bit tests,
  /// and callers can popcount/ctz the word themselves.
  template <typename F>
  void for_each_set_word(F&& f) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      const std::uint64_t w = words_[wi];
      if (w != 0) f(wi * 64, w);
    }
  }

  /// Set-bit visit, ascending: f(i) for every set bit i.  Implemented on
  /// for_each_set_word with a countr_zero peel, so the cost is
  /// O(words + set bits), never O(size).
  template <typename F>
  void for_each_set_bit(F&& f) const {
    for_each_set_word([&](std::size_t base, std::uint64_t w) {
      while (w != 0) {
        f(base + static_cast<std::size_t>(std::countr_zero(w)));
        w &= w - 1;
      }
    });
  }

  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

  /// Mutable raw word access, for kernels with exclusive word-range
  /// ownership (the sharded dense gather: the shard stride is a multiple
  /// of 64, so each shard owns whole words and writes them without
  /// atomics).  Callers must keep bits beyond size() zero.
  [[nodiscard]] std::uint64_t* word_data() noexcept { return words_.data(); }

  friend bool operator==(const DynamicBitset& a,
                         const DynamicBitset& b) noexcept {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  void zero_tail() noexcept;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace hmis::util
