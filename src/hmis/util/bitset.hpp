// A dynamic bitset tuned for the access patterns of the MIS algorithms:
// bulk clear, word-level population count, and (optionally) thread-safe
// idempotent setting via std::atomic_ref.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hmis::util {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t n, bool value = false) { resize(n, value); }

  void resize(std::size_t n, bool value = false);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  [[nodiscard]] bool operator[](std::size_t i) const noexcept {
    return test(i);
  }

  void set(std::size_t i) noexcept { words_[i >> 6] |= (1ULL << (i & 63)); }
  void reset(std::size_t i) noexcept { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  void assign(std::size_t i, bool v) noexcept { v ? set(i) : reset(i); }

  /// Thread-safe idempotent set: multiple threads may set (possibly the same)
  /// bits concurrently.  Uses relaxed ordering — callers synchronize via the
  /// surrounding parallel_for barrier.
  void set_atomic(std::size_t i) noexcept {
    std::atomic_ref<std::uint64_t> w(words_[i >> 6]);
    w.fetch_or(1ULL << (i & 63), std::memory_order_relaxed);
  }

  /// Thread-safe idempotent reset, the clearing counterpart of set_atomic.
  void reset_atomic(std::size_t i) noexcept {
    std::atomic_ref<std::uint64_t> w(words_[i >> 6]);
    w.fetch_and(~(1ULL << (i & 63)), std::memory_order_relaxed);
  }

  /// Set all bits to zero, keeping the size.
  void clear_all() noexcept;
  /// Set all bits to one, keeping the size (tail bits stay zero).
  void set_all() noexcept;

  [[nodiscard]] std::size_t count() const noexcept;

  [[nodiscard]] bool any() const noexcept;
  [[nodiscard]] bool none() const noexcept { return !any(); }

  /// Indices of set bits, ascending.
  [[nodiscard]] std::vector<std::uint32_t> to_indices() const;

  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

  friend bool operator==(const DynamicBitset& a,
                         const DynamicBitset& b) noexcept {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  void zero_tail() noexcept;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace hmis::util
