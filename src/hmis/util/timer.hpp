// Monotonic wall-clock timer.
#pragma once

#include <chrono>

namespace hmis::util {

class Timer {
 public:
  // HMIS_LINT_ALLOW(hmis-banned-nondeterminism: Timer is the sanctioned metering wrapper; readings feed metrics, never results)
  Timer() noexcept : start_(clock::now()) {}

  // HMIS_LINT_ALLOW(hmis-banned-nondeterminism: metering only, never feeds results)
  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    // HMIS_LINT_ALLOW(hmis-banned-nondeterminism: metering only, never feeds results)
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace hmis::util
