#include "hmis/util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace hmis::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_io_mutex;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug:
      return "debug";
    case LogLevel::Info:
      return "info";
    case LogLevel::Warn:
      return "warn";
    case LogLevel::Error:
      return "error";
    case LogLevel::Off:
      return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const std::string& message) {
  const std::lock_guard<std::mutex> lock(g_io_mutex);
  std::fprintf(stderr, "[hmis %s] %s\n", level_name(level), message.c_str());
}

}  // namespace hmis::util
