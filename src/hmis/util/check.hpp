// Lightweight invariant checking.
//
// HMIS_CHECK(cond, msg)        — always-on check; throws hmis::util::CheckError.
// HMIS_DCHECK(cond, msg)       — debug-only (compiled out under NDEBUG).
//
// The MIS algorithms use HMIS_CHECK for contract violations that indicate a
// bug (e.g. "an edge became fully blue"), since silently returning a
// non-independent set would poison every downstream experiment.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hmis::util {

class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "HMIS_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace hmis::util

#define HMIS_CHECK(cond, msg)                                             \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::hmis::util::check_failed(#cond, __FILE__, __LINE__, (msg));       \
    }                                                                     \
  } while (false)

#ifdef NDEBUG
#define HMIS_DCHECK(cond, msg) \
  do {                         \
  } while (false)
#else
#define HMIS_DCHECK(cond, msg) HMIS_CHECK(cond, msg)
#endif
