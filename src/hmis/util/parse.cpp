#include "hmis/util/parse.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

namespace hmis::util {

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t out = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (out > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return std::nullopt;  // overflow
    }
    out = out * 10 + digit;
  }
  return out;
}

std::optional<double> parse_f64(std::string_view s) {
  if (s.empty() || std::isspace(static_cast<unsigned char>(s.front()))) {
    return std::nullopt;  // strtod would silently skip leading whitespace
  }
  const std::string buf(s);  // strtod needs a NUL terminator
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;  // trailing junk
  if (errno == ERANGE) return std::nullopt;                  // over/underflow
  if (!std::isfinite(v)) return std::nullopt;                // "inf", "nan"
  return v;
}

}  // namespace hmis::util
