// Minimal leveled logging to stderr.  Default level is Warn so library code
// stays quiet in tests/benches; examples raise it to Info.
#pragma once

#include <sstream>
#include <string>

namespace hmis::util {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit one line ("[level] message\n") to stderr if `level` is enabled.
void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::Debug) {
    log_message(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
  }
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::Info) {
    log_message(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
  }
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::Warn) {
    log_message(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
  }
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::Error) {
    log_message(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
  }
}

}  // namespace hmis::util
