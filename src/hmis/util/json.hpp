// Minimal JSON utilities: the escaper behind every --format json emitter
// and a zero-allocation scanner for the net/ wire protocol's flat request
// objects (DESIGN.md §9).
//
// This is deliberately not a general JSON library.  The scanner walks ONE
// object and yields raw value slices; nested objects/arrays come back as
// unparsed spans (callers that need to descend run another scanner on the
// slice).  Strings are returned as their quoted interior — unescape with
// json_string when the bytes matter.  Duplicate keys are the caller's
// problem (last one wins under the usual "iterate and switch" idiom).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace hmis::util {

/// Escape for embedding inside a JSON string literal (quotes not added).
[[nodiscard]] std::string json_escape(std::string_view s);

/// One value slice inside a JSON document.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Object, Array };
  Kind kind = Kind::Null;
  /// Exact character span: for String the interior (no quotes, still
  /// escaped); for Object/Array the full bracketed slice; otherwise the
  /// literal token.
  std::string_view raw;
};

/// Scanner over one flat JSON object.  Allocation-free: every yielded view
/// aliases the input buffer, which must outlive the scan.
///
///   JsonObjectScanner sc(payload);
///   std::string_view key; JsonValue val;
///   while (sc.next(&key, &val)) { ... }
///   if (!sc.ok()) { /* malformed */ }
class JsonObjectScanner {
 public:
  explicit JsonObjectScanner(std::string_view text);

  /// Advance to the next key/value pair; false at the end of the object or
  /// on malformed input (check ok() to distinguish).
  bool next(std::string_view* key, JsonValue* value);

  /// True iff the input was one well-formed object followed by only
  /// whitespace.  Meaningful once next() has returned false.
  [[nodiscard]] bool ok() const noexcept { return !error_ && closed_; }

 private:
  void fail() noexcept { error_ = true; }
  void skip_ws() noexcept;
  bool scan_string(std::string_view* out) noexcept;
  bool scan_value(JsonValue* out) noexcept;

  std::string_view text_;
  std::size_t pos_ = 0;
  bool started_ = false;
  bool closed_ = false;
  bool error_ = false;
};

/// Typed accessors for scanner values.  nullopt on kind mismatch or
/// unparsable content.
[[nodiscard]] std::optional<std::uint64_t> json_u64(const JsonValue& v);
[[nodiscard]] std::optional<double> json_f64(const JsonValue& v);
[[nodiscard]] std::optional<bool> json_bool(const JsonValue& v);
/// Unescapes a String value (\" \\ \/ \b \f \n \r \t \uXXXX → UTF-8).
[[nodiscard]] std::optional<std::string> json_string(const JsonValue& v);

/// Convenience for tests and the client: locate a top-level key inside an
/// object document.  nullopt if absent or the document is malformed.
[[nodiscard]] std::optional<JsonValue> json_find(std::string_view object_text,
                                                 std::string_view key);

}  // namespace hmis::util
