#include "hmis/util/fault.hpp"

#include <cstdlib>

#include "hmis/util/check.hpp"
#include "hmis/util/parse.hpp"
#include "hmis/util/rng.hpp"

namespace hmis::util {

namespace {

// The armed plan plus a generation stamp.  Sites compare their cached
// generation against `generation` and re-snapshot (resetting their ordinal)
// when it moves — so fault_arm never has to enumerate sites, and sites in
// TUs that were never rolled cost nothing.
struct GlobalFault {
  Mutex mutex;
  FaultPlan plan HMIS_GUARDED_BY(mutex);
  std::atomic<std::uint64_t> generation{0};
  std::atomic<std::uint64_t> fires{0};
};

GlobalFault& global_fault() {
  static GlobalFault g;
  return g;
}

// FNV-1a over the site name: a stable per-site stream id so distinct sites
// draw decorrelated schedules from the same (seed, rate).
std::uint64_t site_stream(std::string_view name) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Iterative '*' glob match (the classic two-pointer backtracking form; no
// recursion, no allocation).
bool glob_match(std::string_view pattern, std::string_view name) noexcept {
  std::size_t p = 0;
  std::size_t n = 0;
  std::size_t star = std::string_view::npos;
  std::size_t mark = 0;
  while (n < name.size()) {
    if (p < pattern.size() &&
        (pattern[p] == name[n] || pattern[p] == '?')) {
      ++p;
      ++n;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = n;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      n = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace

bool fault_sites_match(std::string_view globs,
                       std::string_view name) noexcept {
  while (!globs.empty()) {
    const std::size_t semi = globs.find(';');
    const std::string_view one =
        semi == std::string_view::npos ? globs : globs.substr(0, semi);
    if (!one.empty() && glob_match(one, name)) return true;
    if (semi == std::string_view::npos) break;
    globs.remove_prefix(semi + 1);
  }
  return false;
}

FaultPlan parse_fault_plan(std::string_view spec) {
  FaultPlan plan;
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    const std::string_view field =
        comma == std::string_view::npos ? spec : spec.substr(0, comma);
    const std::size_t eq = field.find('=');
    HMIS_CHECK(eq != std::string_view::npos,
               "fault plan field is not key=value: " + std::string(field));
    const std::string_view key = field.substr(0, eq);
    const std::string_view value = field.substr(eq + 1);
    if (key == "seed") {
      const auto seed = parse_u64(value);
      HMIS_CHECK(seed.has_value(),
                 "fault plan seed is not a u64: " + std::string(value));
      plan.seed = *seed;
    } else if (key == "rate") {
      const auto rate = parse_f64(value);
      HMIS_CHECK(rate.has_value() && *rate >= 0.0 && *rate <= 1.0,
                 "fault plan rate is not in [0,1]: " + std::string(value));
      plan.rate = *rate;
    } else if (key == "sites") {
      HMIS_CHECK(!value.empty(), "fault plan sites glob is empty");
      plan.sites.assign(value);
    } else {
      HMIS_CHECK(false, "unknown fault plan key: " + std::string(key));
    }
    if (comma == std::string_view::npos) break;
    spec.remove_prefix(comma + 1);
  }
  return plan;
}

void fault_arm(const FaultPlan& plan) {
  HMIS_CHECK(plan.rate >= 0.0 && plan.rate <= 1.0,
             "fault plan rate must be in [0,1]");
  GlobalFault& g = global_fault();
  {
    MutexLock lock(g.mutex);
    g.plan = plan;
    // Bump *after* the plan is in place (release pairs with the acquire in
    // FaultSite::roll): a site observing the new generation re-snapshots
    // under g.mutex and necessarily sees the new plan.
    g.generation.fetch_add(1, std::memory_order_release);
    g.fires.store(0, std::memory_order_relaxed);
  }
  detail::g_fault_armed.store(true, std::memory_order_relaxed);
}

void fault_disarm() {
  detail::g_fault_armed.store(false, std::memory_order_relaxed);
}

bool fault_armed() noexcept {
  return detail::g_fault_armed.load(std::memory_order_relaxed);
}

bool fault_arm_from_env() {
  const char* spec = std::getenv("HMIS_FAULT");
  if (spec == nullptr || spec[0] == '\0') return false;
  fault_arm(parse_fault_plan(spec));
  return true;
}

std::uint64_t fault_fires() noexcept {
  return global_fault().fires.load(std::memory_order_relaxed);
}

namespace detail {

std::atomic<bool> g_fault_armed{false};

bool FaultSite::roll() {
  GlobalFault& g = global_fault();
  const std::uint64_t current =
      g.generation.load(std::memory_order_acquire);
  MutexLock lock(mutex_);
  if (generation_ != current) {
    // New plan since our last roll: re-snapshot and restart the ordinal
    // sequence (re-arming the same seed replays the same schedule).
    MutexLock plan_lock(g.mutex);
    generation_ = g.generation.load(std::memory_order_relaxed);
    ordinal_ = 0;
    enabled_ = fault_sites_match(g.plan.sites, name_);
    rate_ = g.plan.rate;
    seed_ = g.plan.seed;
    stream_ = site_stream(name_);
  }
  if (!enabled_ || rate_ <= 0.0) return false;
  const std::uint64_t n = ordinal_++;
  if (!CounterRng(seed_).bernoulli(rate_, stream_, n)) return false;
  g.fires.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace detail

}  // namespace hmis::util
