#include "hmis/util/math.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hmis::util {

double clog2(double x) noexcept {
  if (!(x > 0.0)) return kMinLogValue;
  return std::max(std::log2(x), kMinLogValue);
}

double ilog2(double x, int k) noexcept {
  double v = x;
  for (int i = 0; i < k; ++i) v = clog2(v);
  return v;
}

std::uint32_t floor_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return static_cast<std::uint32_t>(63 - __builtin_clzll(x));
}

std::uint32_t ceil_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  const std::uint32_t f = floor_log2(x);
  return ((x & (x - 1)) == 0) ? f : f + 1;
}

double factorial(unsigned n) noexcept {
  double r = 1.0;
  for (unsigned i = 2; i <= n; ++i) {
    r *= static_cast<double>(i);
    if (!std::isfinite(r)) return std::numeric_limits<double>::infinity();
  }
  return r;
}

double binomial(unsigned n, unsigned k) noexcept {
  if (k > n) return 0.0;
  k = std::min(k, n - k);
  double r = 1.0;
  for (unsigned i = 1; i <= k; ++i) {
    r *= static_cast<double>(n - k + i);
    r /= static_cast<double>(i);
  }
  return r;
}

double dpow(double base, double exp) noexcept { return std::pow(base, exp); }

std::vector<double> kelsen_F(int i_max, double d) noexcept {
  std::vector<double> F(static_cast<std::size_t>(std::max(i_max, 1)) + 1, 0.0);
  // F(0) = F(1) = 0; F(i) = i*F(i-1) + d^2.
  for (int i = 2; i <= i_max; ++i) {
    F[static_cast<std::size_t>(i)] =
        static_cast<double>(i) * F[static_cast<std::size_t>(i - 1)] + d * d;
  }
  return F;
}

std::vector<double> kelsen_F_original(int i_max) noexcept {
  std::vector<double> F(static_cast<std::size_t>(std::max(i_max, 1)) + 1, 0.0);
  for (int i = 2; i <= i_max; ++i) {
    F[static_cast<std::size_t>(i)] =
        static_cast<double>(i) * F[static_cast<std::size_t>(i - 1)] + 7.0;
  }
  return F;
}

std::vector<double> kelsen_f(int i_max, double d) noexcept {
  // f(2) = d^2; f(i) = (i-1) * sum_{j=2..i-1} f(j) + d^2.
  std::vector<double> f(static_cast<std::size_t>(std::max(i_max, 1)) + 1, 0.0);
  double prefix = 0.0;  // sum_{j=2..i-1} f(j)
  for (int i = 2; i <= i_max; ++i) {
    f[static_cast<std::size_t>(i)] =
        static_cast<double>(i - 1) * prefix + d * d;
    prefix += f[static_cast<std::size_t>(i)];
  }
  return f;
}

double kelsen_qj(double n, double d, int j) noexcept {
  const auto F = kelsen_F(std::max(j, 1), d);
  const double logn = clog2(n);
  const double Fjm1 = (j >= 1) ? F[static_cast<std::size_t>(j - 1)] : 0.0;
  const double exponent = Fjm1 * static_cast<double>(j - 1) + 2.0;
  return std::exp2(d * (d + 1.0)) * loglog2(n) * std::pow(logn, exponent);
}

double bl_stage_bound_exponent(double d) noexcept {
  // (d+4)! evaluated via lgamma for non-integer d.
  return std::exp(std::lgamma(d + 5.0));
}

double chernoff_lower_tail(double n, double p, double a) noexcept {
  if (n <= 0.0 || p <= 0.0 || a <= 0.0) return 1.0;
  return std::exp(-(a * a) / (2.0 * p * n));
}

std::uint64_t saturating_round(double x) noexcept {
  if (!(x > 0.0)) return 0;
  if (x >= 1.8446744073709552e19) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return static_cast<std::uint64_t>(std::llround(x));
}

}  // namespace hmis::util
