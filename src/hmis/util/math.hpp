// Mathematical helpers used throughout the library, in particular the
// iterated logarithms and recurrences from Bercea et al. (SPAA 2014) and
// Kelsen (STOC 1992).
//
// Conventions (documented in DESIGN.md §1 "Fidelity notes"):
//  * all logarithms are base 2 (`std::log2`);
//  * iterated logs are clamped from below so the formulas are total for
//    every n ≥ 1 (log2k(n) ≥ kMinLogValue); the paper only needs them for
//    "sufficiently large n".
#pragma once

#include <cstdint>
#include <vector>

namespace hmis::util {

/// Lower clamp applied to every (iterated) logarithm so that downstream
/// divisions are well defined for small n.
inline constexpr double kMinLogValue = 1.0 + 1.0 / 1024.0;

/// Clamped log2:  max(log2(x), kMinLogValue).
[[nodiscard]] double clog2(double x) noexcept;

/// Clamped iterated logarithm: log^(k) n = log2 applied k times, clamped.
/// k = 1 is plain log2.
[[nodiscard]] double ilog2(double x, int k) noexcept;

/// log2 log2 n (the paper's "log^(2) n"), clamped.
[[nodiscard]] inline double loglog2(double x) noexcept { return ilog2(x, 2); }

/// log2 log2 log2 n (the paper's "log^(3) n"), clamped.
[[nodiscard]] inline double logloglog2(double x) noexcept {
  return ilog2(x, 3);
}

/// Integer ceil(log2(x)) for x >= 1 (returns 0 for x in {0, 1}).
[[nodiscard]] std::uint32_t ceil_log2(std::uint64_t x) noexcept;

/// Integer floor(log2(x)) for x >= 1 (returns 0 for x in {0, 1}).
[[nodiscard]] std::uint32_t floor_log2(std::uint64_t x) noexcept;

/// n! as double (exact up to n = 170, +inf beyond).
[[nodiscard]] double factorial(unsigned n) noexcept;

/// Binomial coefficient C(n, k) as double.
[[nodiscard]] double binomial(unsigned n, unsigned k) noexcept;

/// Exact integer power for small exponents.
[[nodiscard]] double dpow(double base, double exp) noexcept;

/// Kelsen's offset-function recurrence as corrected by Bercea et al. §3.1:
///   F(1) = 0,  F(i) = i * F(i-1) + d^2   for i >= 2.
/// Returns F(0..i_max) (F(0) defined as 0 for convenience).
[[nodiscard]] std::vector<double> kelsen_F(int i_max, double d) noexcept;

/// The original Kelsen recurrence (constant-d version):
///   F(1) = 0,  F(i) = i * F(i-1) + 7.
[[nodiscard]] std::vector<double> kelsen_F_original(int i_max) noexcept;

/// The per-level offsets f(i) implied by F: f(i) = F(i) - i*F(i-1) ... kept
/// explicit for tests: f(2) = d^2 and f(i) = (i-1) * sum_{j=2..i-1} f(j) + d^2.
[[nodiscard]] std::vector<double> kelsen_f(int i_max, double d) noexcept;

/// Kelsen stage-count bound ingredient: q_j = 2^{d(d+1)} * loglog(n)
///   * (log n)^{F(j-1)*(j-1) + 2}   (paper §3.1).
[[nodiscard]] double kelsen_qj(double n, double d, int j) noexcept;

/// The paper's headline BL stage bound O((log n)^{(d+4)!}); we expose the
/// exponent (d+4)! and the bound value (capped at +inf-safe doubles).
[[nodiscard]] double bl_stage_bound_exponent(double d) noexcept;

/// Chernoff lower-tail bound from the paper's Lemma 1:
///   Pr[Bin(n, p) <= pn - a] <= exp(-a^2 / (2 p n)).
[[nodiscard]] double chernoff_lower_tail(double n, double p,
                                         double a) noexcept;

/// Round a double to the nearest uint64 with saturation.
[[nodiscard]] std::uint64_t saturating_round(double x) noexcept;

}  // namespace hmis::util
