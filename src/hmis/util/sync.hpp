// Annotated synchronization primitives (DESIGN.md §8).
//
// Thin zero-cost veneers over the std types that carry the clang
// thread-safety capability annotations from `thread_annotations.hpp` —
// libstdc++'s own std::mutex / std::lock_guard are not annotated, so code
// that wants its lock discipline statically checked uses these instead.
// Semantics are exactly the wrapped std primitive's:
//
//   Mutex      ~ std::mutex                 (a "mutex" capability)
//   MutexLock  ~ std::lock_guard<std::mutex> (scoped capability)
//   UniqueLock ~ std::unique_lock<std::mutex> (scoped capability, condvar-able)
//   CondVar    ~ std::condition_variable     (waits on a UniqueLock)
//
// The condition-variable wait predicate runs with the lock held, but the
// analysis cannot see through std::condition_variable's unlock/relock — the
// standard convention (Abseil, LLVM) applies: the scoped guard object is the
// unit of analysis, and the wait is semantically lock-preserving.
#pragma once

#include <condition_variable>
#include <mutex>

#include "hmis/util/thread_annotations.hpp"

namespace hmis::util {

class CondVar;

/// std::mutex with the clang "mutex" capability attached.
class HMIS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HMIS_ACQUIRE() { m_.lock(); }
  void unlock() HMIS_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() HMIS_TRY_ACQUIRE(true) {
    return m_.try_lock();
  }

 private:
  friend class UniqueLock;
  std::mutex m_;
};

/// Scoped lock, the std::lock_guard shape: acquires in the constructor,
/// releases in the destructor, no unlock/relock in between.
class HMIS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) HMIS_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() HMIS_RELEASE() { m_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

/// Scoped lock that a CondVar can wait on (the std::unique_lock shape).
/// Always holds the lock for the analysis' purposes; the transient release
/// inside CondVar::wait is invisible to it by design (see header comment).
class HMIS_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) HMIS_ACQUIRE(m) : lock_(m.m_) {}
  // Explicit body: the release annotation must sit on a declarator, and the
  // actual unlock happens in the member unique_lock's destructor right after.
  ~UniqueLock() HMIS_RELEASE() {}  // NOLINT(modernize-use-equals-default)

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable over Mutex/UniqueLock.  The predicate overloads
/// mirror the std ones: the predicate is evaluated with the lock held.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  template <typename Pred>
  void wait(UniqueLock& lock, Pred&& pred) {
    cv_.wait(lock.lock_, std::forward<Pred>(pred));
  }

  template <typename Rep, typename Period, typename Pred>
  bool wait_for(UniqueLock& lock,
                const std::chrono::duration<Rep, Period>& timeout,
                Pred&& pred) {
    return cv_.wait_for(lock.lock_, timeout, std::forward<Pred>(pred));
  }

 private:
  std::condition_variable cv_;
};

}  // namespace hmis::util
