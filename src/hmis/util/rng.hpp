// Random number generation for hypermis.
//
// Two kinds of RNG are provided:
//
//  * `Xoshiro256ss` — a fast sequential generator (xoshiro256**), used where
//    a stateful stream is natural (shuffles, generator construction).
//
//  * `CounterRng` — a stateless, counter-based generator: each draw is a pure
//    hash of (seed, stream, counter).  All per-vertex / per-round random
//    choices in the parallel algorithms use this so that results are
//    *bit-identical for any thread count or scheduling* — the random bit for
//    vertex v in round r never depends on evaluation order.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace hmis::util {

/// SplitMix64 step: the canonical 64-bit finalizer-based generator.
/// Used for seeding and as the mixing core of `CounterRng`.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Strong 64-bit mixer (xxhash3-style avalanche) for combining counters.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 32;
  x *= 0xd6e8feb86659fd93ULL;
  x ^= x >> 32;
  x *= 0xd6e8feb86659fd93ULL;
  x ^= x >> 32;
  return x;
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality sequential PRNG.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    // Seed all four words through splitmix64 per the authors' advice.
    std::uint64_t s = seed;
    for (auto& w : state_) {
      s = splitmix64(s);
      w = s;
    }
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire reduction).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x,
                                                    int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Stateless counter-based RNG.  Draws are pure functions of
/// (seed, stream, counter); no mutable state, so it can be evaluated for any
/// (round, item) pair from any thread with identical results.
class CounterRng {
 public:
  explicit constexpr CounterRng(std::uint64_t seed) noexcept : seed_(seed) {}

  /// 64 uniform bits for logical coordinates (stream, counter).
  /// `stream` is typically a round/stage number; `counter` an item id.
  [[nodiscard]] constexpr std::uint64_t bits(std::uint64_t stream,
                                             std::uint64_t counter)
      const noexcept {
    // Feistel-free mixing: fold each input through an avalanche before
    // combining so that low-entropy counters (0,1,2,...) decorrelate.
    std::uint64_t h = splitmix64(seed_ ^ 0x9e3779b97f4a7c15ULL);
    h = mix64(h ^ splitmix64(stream + 0x632be59bd9b4e019ULL));
    h = mix64(h ^ splitmix64(counter + 0xd1b54a32d192ed03ULL));
    return h;
  }

  /// Uniform double in [0,1) for (stream, counter).
  [[nodiscard]] constexpr double uniform01(std::uint64_t stream,
                                           std::uint64_t counter)
      const noexcept {
    return static_cast<double>(bits(stream, counter) >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p) trial for (stream, counter).
  [[nodiscard]] constexpr bool bernoulli(double p, std::uint64_t stream,
                                         std::uint64_t counter)
      const noexcept {
    return uniform01(stream, counter) < p;
  }

  /// A total priority order on items for a given stream: random permutation
  /// by sorting on these keys (ties broken by item id by the caller).
  [[nodiscard]] constexpr std::uint64_t priority(std::uint64_t stream,
                                                 std::uint64_t item)
      const noexcept {
    return bits(stream ^ 0xa0761d6478bd642fULL, item);
  }

  [[nodiscard]] constexpr std::uint64_t seed() const noexcept { return seed_; }

  /// Derive an independent child RNG (e.g. for a sub-algorithm invocation).
  [[nodiscard]] constexpr CounterRng child(std::uint64_t tag) const noexcept {
    return CounterRng(mix64(seed_ ^ splitmix64(tag + 0x2545f4914f6cdd1dULL)));
  }

 private:
  std::uint64_t seed_;
};

}  // namespace hmis::util
