#include "hmis/util/bitset.hpp"

#include <algorithm>
#include <bit>

namespace hmis::util {

void DynamicBitset::resize(std::size_t n, bool value) {
  size_ = n;
  words_.assign((n + 63) / 64, value ? ~0ULL : 0ULL);
  zero_tail();
}

void DynamicBitset::zero_tail() noexcept {
  const std::size_t tail = size_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1;
  }
}

void DynamicBitset::clear_all() noexcept {
  std::fill(words_.begin(), words_.end(), 0ULL);
}

void DynamicBitset::set_all() noexcept {
  std::fill(words_.begin(), words_.end(), ~0ULL);
  zero_tail();
}

std::size_t DynamicBitset::count() const noexcept {
  std::size_t c = 0;
  for (const auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

bool DynamicBitset::any() const noexcept {
  for (const auto w : words_) {
    if (w != 0) return true;
  }
  return false;
}

std::vector<std::uint32_t> DynamicBitset::to_indices() const {
  std::vector<std::uint32_t> out;
  out.reserve(count());
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t w = words_[wi];
    while (w != 0) {
      const int b = std::countr_zero(w);
      out.push_back(static_cast<std::uint32_t>(wi * 64 + static_cast<std::size_t>(b)));
      w &= w - 1;
    }
  }
  return out;
}

}  // namespace hmis::util
