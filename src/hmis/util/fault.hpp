// Deterministic fault injection (DESIGN.md §12).
//
// Failure-prone surfaces declare *named injection sites*:
//
//   if (HMIS_FAULT_POINT("net.read.reset")) { /* behave as ECONNRESET */ }
//
// and a test (or the HMIS_FAULT environment variable) arms a seeded
// `FaultPlan` that decides, per site and per invocation, whether the site
// fires.  The decision for the N-th invocation of site S is a pure function
// of (plan.seed, plan.rate, S, N) through the same counter-RNG the solvers
// use — so a fault schedule replays bit-identically from its seed, with no
// dependence on wall-clock time or address-space layout.  (Under
// concurrency the *assignment* of ordinals to racing invocations follows
// the thread interleaving, like every other order-observing counter; serial
// replays are exactly reproducible, which is what the chaos harness pins.)
//
// Disarmed cost is one relaxed atomic load and a predictable branch — no
// allocation, no lock, no site registration (the per-site static is only
// constructed on the first *armed* roll).  Building with
// -DHMIS_FAULT_INJECTION=OFF compiles every site to a constant false.
//
// Site catalog (kept in sync with DESIGN.md §12):
//   net.read.short / net.read.eintr / net.read.reset    socket recv loop
//   net.write.short / net.write.eintr / net.write.reset socket send loop
//   net.accept                                          listener accept
//   alloc.protocol                                      frame payload alloc
//   alloc.registry                                      registry graph put
//   alloc.engine.submit                                 engine session alloc
//   mmap.load                                           HGB2 file mapping
//   sched.spawn                                         scheduler task spawn
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "hmis/util/sync.hpp"

// CMake defines HMIS_FAULT_INJECTION=0/1; default ON for direct inclusion.
#ifndef HMIS_FAULT_INJECTION
#define HMIS_FAULT_INJECTION 1
#endif

namespace hmis::util {

/// A seeded fault schedule.  `sites` selects which injection sites
/// participate: a ';'-separated list of globs where '*' matches any run of
/// characters ("net.*;alloc.registry").  Sites not matched never fire.
struct FaultPlan {
  std::uint64_t seed = 0;
  double rate = 0.0;        ///< per-invocation fire probability in [0, 1]
  std::string sites = "*";  ///< ';'-separated globs over site names
};

/// Parses "seed=N,rate=R,sites=GLOBS" (keys in any order, all optional).
/// Throws CheckError on malformed keys or values — a mistyped fault spec
/// must not silently degrade to "no faults".
[[nodiscard]] FaultPlan parse_fault_plan(std::string_view spec);

/// Installs `plan` and arms every injection site.  Per-site invocation
/// ordinals and the global fire counter reset, so arming the same plan
/// twice replays the same schedule.  Thread-safe; in-flight rolls settle on
/// either the old or the new plan.
void fault_arm(const FaultPlan& plan);

/// Disarms all sites (every HMIS_FAULT_POINT returns false again).
void fault_disarm();

[[nodiscard]] bool fault_armed() noexcept;

/// Arms from the HMIS_FAULT environment variable when it is set and
/// non-empty ("seed=N,rate=R,sites=GLOBS").  Returns true when armed.
bool fault_arm_from_env();

/// Total fires across all sites since the last fault_arm().
[[nodiscard]] std::uint64_t fault_fires() noexcept;

/// '*'-wildcard glob match over a ';'-separated pattern list (exposed for
/// tests; this is exactly the matcher `sites` uses).
[[nodiscard]] bool fault_sites_match(std::string_view globs,
                                     std::string_view name) noexcept;

namespace detail {

// Fast gate shared by every expansion of HMIS_FAULT_POINT.  Relaxed is
// sufficient: arming strictly precedes the workload in every use, and a
// stale read during the transition just means one more/fewer roll against
// the old plan.
extern std::atomic<bool> g_fault_armed;

/// Per-expansion state behind HMIS_FAULT_POINT.  Constructed lazily on the
/// first armed roll; re-syncs its config snapshot whenever the global plan
/// generation moves (arm resets ordinals by bumping the generation).
class FaultSite {
 public:
  explicit FaultSite(const char* name) noexcept : name_(name) {}

  FaultSite(const FaultSite&) = delete;
  FaultSite& operator=(const FaultSite&) = delete;

  /// Slow path: only reached while armed.  Returns true when this
  /// invocation of the site fires under the current plan.
  [[nodiscard]] bool roll();

 private:
  const char* name_;
  Mutex mutex_;
  std::uint64_t generation_ HMIS_GUARDED_BY(mutex_) = 0;
  std::uint64_t ordinal_ HMIS_GUARDED_BY(mutex_) = 0;
  bool enabled_ HMIS_GUARDED_BY(mutex_) = false;
  double rate_ HMIS_GUARDED_BY(mutex_) = 0.0;
  std::uint64_t seed_ HMIS_GUARDED_BY(mutex_) = 0;
  std::uint64_t stream_ HMIS_GUARDED_BY(mutex_) = 0;
};

}  // namespace detail

}  // namespace hmis::util

#if HMIS_FAULT_INJECTION
// A lambda so each textual expansion owns its FaultSite; the static lives
// *after* the disarmed early-return, so a never-armed process never even
// constructs it (and pays exactly one relaxed load + branch per pass).
#define HMIS_FAULT_POINT(site_name)                                        \
  ([]() -> bool {                                                          \
    if (!::hmis::util::detail::g_fault_armed.load(                         \
            std::memory_order_relaxed)) {                                  \
      return false;                                                        \
    }                                                                      \
    static ::hmis::util::detail::FaultSite hmis_fault_site{site_name};     \
    return hmis_fault_site.roll();                                         \
  }())
#else
#define HMIS_FAULT_POINT(site_name) (false)
#endif
