#include "hmis/util/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "hmis/util/check.hpp"
#include "hmis/util/fault.hpp"

namespace hmis::util {

namespace {

std::string with_errno(const char* what, const std::string& path) {
  return std::string(what) + " failed for " + path + ": " +
         std::strerror(errno);
}

}  // namespace

MmapFile::MmapFile(const std::string& path) {
  // Injected map failure (the ENOMEM/EMFILE shape) before any fd is opened:
  // callers treat it exactly like a real mmap error — the HGB2 loader
  // reports the file as unloadable and the serve `load` op answers with a
  // clean error frame.
  if (HMIS_FAULT_POINT("mmap.load")) {
    HMIS_CHECK(false, "injected mmap failure for " + path);
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  HMIS_CHECK(fd >= 0, with_errno("open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string msg = with_errno("fstat", path);
    ::close(fd);
    HMIS_CHECK(false, msg);
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    HMIS_CHECK(false, "mmap target is not a regular file: " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return;  // empty file: {nullptr, 0}
  }
  // MAP_POPULATE pre-faults the whole range in one pass; the loader
  // validates every byte immediately after mapping, and taking ~size/4096
  // minor faults one at a time during that scan costs more than the scan.
#ifdef MAP_POPULATE
  constexpr int kFlags = MAP_PRIVATE | MAP_POPULATE;
#else
  constexpr int kFlags = MAP_PRIVATE;
#endif
  void* p = ::mmap(nullptr, size, PROT_READ, kFlags, fd, 0);
  const std::string msg = with_errno("mmap", path);
  ::close(fd);  // the mapping holds its own reference to the file
  HMIS_CHECK(p != MAP_FAILED, msg);
  data_ = static_cast<const unsigned char*>(p);
  size_ = size;
}

MmapFile::~MmapFile() { unmap_(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    unmap_();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void MmapFile::unmap_() noexcept {
  if (data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace hmis::util
