// Read-only RAII file mapping.
//
// The storage backend of the zero-copy HGB2 loader (DESIGN.md §11): the
// whole file is mapped PROT_READ/MAP_PRIVATE in one syscall and the
// Hypergraph's CSR spans point straight into it — the mapping must
// therefore outlive every view, which callers arrange by holding the
// MmapFile in a shared_ptr alongside the spans.  Move-only; the fd is
// closed immediately after mmap (the mapping keeps the file alive).
#pragma once

#include <cstddef>
#include <string>

namespace hmis::util {

class MmapFile {
 public:
  MmapFile() = default;
  /// Map `path` read-only.  Throws CheckError on open/stat/mmap failure.
  /// An empty file maps to {nullptr, 0} (valid, nothing to read).
  explicit MmapFile(const std::string& path);
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  [[nodiscard]] const unsigned char* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  void unmap_() noexcept;

  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace hmis::util
