// Clang thread-safety annotation macros (DESIGN.md §8).
//
// Under clang the HMIS_* macros expand to the capability-analysis attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), so lock discipline
// — which mutex guards which state, which functions require or exclude which
// locks — is checked at compile time by `-Wthread-safety` (the clang CI job
// builds with it under `-Werror`).  Under every other compiler they expand to
// nothing: the annotations are pure metadata and never change behavior.
//
// libstdc++'s std::mutex is not an annotated capability, so annotating code
// uses the thin wrappers in `hmis/util/sync.hpp` (Mutex, MutexLock,
// UniqueLock, CondVar) instead of the std types directly.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define HMIS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HMIS_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Declares a type to be a capability (lockable).
#define HMIS_CAPABILITY(x) HMIS_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability for its lifetime.
#define HMIS_SCOPED_CAPABILITY HMIS_THREAD_ANNOTATION(scoped_lockable)

/// Data member `x` may only be read/written while holding the capability.
#define HMIS_GUARDED_BY(x) HMIS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the pointee is guarded (the pointer itself is not).
#define HMIS_PT_GUARDED_BY(x) HMIS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability/ies to be held by the caller.
#define HMIS_REQUIRES(...) \
  HMIS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability/ies and does not release them.
#define HMIS_ACQUIRE(...) \
  HMIS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability/ies held by the caller.
#define HMIS_RELEASE(...) \
  HMIS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `ret`.
#define HMIS_TRY_ACQUIRE(ret, ...) \
  HMIS_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Caller must NOT hold the capability/ies (deadlock prevention).
#define HMIS_EXCLUDES(...) HMIS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Returns a reference to the capability guarding the returned object.
#define HMIS_RETURN_CAPABILITY(x) HMIS_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function (document why).
#define HMIS_NO_THREAD_SAFETY_ANALYSIS \
  HMIS_THREAD_ANNOTATION(no_thread_safety_analysis)
