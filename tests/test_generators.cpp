#include "hmis/hypergraph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "hmis/algo/linear_bl.hpp"
#include "hmis/core/theory.hpp"
#include "hmis/hypergraph/degree_stats.hpp"
#include "hmis/hypergraph/validate.hpp"
#include "hmis/par/thread_pool.hpp"

namespace {

using namespace hmis;

TEST(UniformRandom, ProducesRequestedShape) {
  const auto h = gen::uniform_random(100, 200, 3, 1);
  EXPECT_EQ(h.num_vertices(), 100u);
  EXPECT_EQ(h.num_edges(), 200u);
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    EXPECT_EQ(h.edge_size(e), 3u);
  }
}

TEST(UniformRandom, EdgesAreDistinct) {
  const auto h = gen::uniform_random(50, 300, 3, 7);
  std::set<VertexList> seen;
  for (const auto& e : h.edges_as_lists()) {
    EXPECT_TRUE(seen.insert(e).second) << "duplicate edge";
  }
}

TEST(UniformRandom, DeterministicInSeed) {
  const auto a = gen::uniform_random(60, 100, 4, 5);
  const auto b = gen::uniform_random(60, 100, 4, 5);
  const auto c = gen::uniform_random(60, 100, 4, 6);
  EXPECT_EQ(a.edges_as_lists(), b.edges_as_lists());
  EXPECT_NE(a.edges_as_lists(), c.edges_as_lists());
}

TEST(UniformRandom, ArityOneAndFullArity) {
  const auto h1 = gen::uniform_random(10, 5, 1, 3);
  EXPECT_EQ(h1.dimension(), 1u);
  const auto hf = gen::uniform_random(6, 1, 6, 3);
  EXPECT_EQ(hf.edge_size(0), 6u);
}

TEST(MixedArity, SizesWithinRange) {
  const auto h = gen::mixed_arity(100, 150, 2, 6, 11);
  EXPECT_EQ(h.num_edges(), 150u);
  bool saw_small = false, saw_large = false;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const auto s = h.edge_size(e);
    EXPECT_GE(s, 2u);
    EXPECT_LE(s, 6u);
    saw_small |= (s <= 3);
    saw_large |= (s >= 5);
  }
  EXPECT_TRUE(saw_small);
  EXPECT_TRUE(saw_large);
}

TEST(LinearRandom, OutputIsLinear) {
  const auto h = gen::linear_random(200, 150, 3, 13);
  EXPECT_GT(h.num_edges(), 50u);  // best-effort, but should get most
  EXPECT_TRUE(algo::is_linear(h));
}

TEST(LinearRandom, SaturatesGracefully) {
  // Tiny vertex set: the pair space saturates well before 1000 edges.
  const auto h = gen::linear_random(10, 1000, 3, 3);
  EXPECT_LT(h.num_edges(), 1000u);
  EXPECT_TRUE(algo::is_linear(h));
}

TEST(PlantedMis, PlantedSetIsIndependent) {
  const double fraction = 0.3;
  const auto h = gen::planted_mis(100, 400, 3, fraction, 21);
  EXPECT_EQ(h.num_edges(), 400u);
  util::DynamicBitset planted(h.num_vertices());
  for (VertexId v = 0; v < 30; ++v) planted.set(v);
  EXPECT_FALSE(find_violated_edge(h, planted).has_value());
}

TEST(RandomGraph, IsDimensionTwo) {
  const auto h = gen::random_graph(50, 100, 3);
  EXPECT_EQ(h.dimension(), 2u);
  EXPECT_EQ(h.num_edges(), 100u);
}

TEST(Interval, WindowsAndStride) {
  const auto h = gen::interval(10, 3, 2);
  // starts: 0,2,4,6 (start+3<=10) => 0,2,4,6 and 7? 7+3=10 ok => 0,2,4,6
  ASSERT_EQ(h.num_edges(), 4u);
  EXPECT_EQ(h.edges_as_lists()[0], (VertexList{0, 1, 2}));
  EXPECT_EQ(h.edges_as_lists()[3], (VertexList{6, 7, 8}));
}

TEST(Sunflower, CoreSharedPetalsPrivate) {
  const auto h = gen::sunflower(2, 3, 4);
  EXPECT_EQ(h.num_vertices(), 2u + 12u);
  EXPECT_EQ(h.num_edges(), 4u);
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const auto verts = h.edge(e);
    ASSERT_EQ(verts.size(), 5u);
    EXPECT_EQ(verts[0], 0u);
    EXPECT_EQ(verts[1], 1u);
  }
  // Pairwise intersections are exactly the core.
  const auto lists = h.edges_as_lists();
  for (std::size_t i = 0; i < lists.size(); ++i) {
    for (std::size_t j = i + 1; j < lists.size(); ++j) {
      VertexList inter;
      std::set_intersection(lists[i].begin(), lists[i].end(),
                            lists[j].begin(), lists[j].end(),
                            std::back_inserter(inter));
      EXPECT_EQ(inter, (VertexList{0, 1}));
    }
  }
}

TEST(SunflowerWithEmptyCore, IsAMatching) {
  const auto h = gen::sunflower(0, 2, 5);
  EXPECT_EQ(h.num_vertices(), 10u);
  EXPECT_EQ(h.num_edges(), 5u);
  EXPECT_TRUE(algo::is_linear(h));
}

TEST(PathGraph, ChainOfEdges) {
  const auto h = gen::path_graph(5);
  EXPECT_EQ(h.num_edges(), 4u);
  EXPECT_EQ(h.dimension(), 2u);
}

TEST(BoundedDegree, RespectsDegreeCap) {
  const auto h = gen::bounded_degree(200, 300, 3, 5, 7);
  EXPECT_GT(h.num_edges(), 100u);  // best effort, should get most
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    EXPECT_LE(h.degree(v), 5u) << v;
  }
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    EXPECT_EQ(h.edge_size(e), 3u);
  }
}

TEST(BoundedDegree, SaturatesGracefully) {
  // Cap 1 with arity 2: a matching — at most n/2 edges.
  const auto h = gen::bounded_degree(20, 100, 2, 1, 3);
  EXPECT_LE(h.num_edges(), 10u);
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    EXPECT_LE(h.degree(v), 1u);
  }
}

TEST(BoundedDegree, DegreeCapControlsDelta) {
  // Δ of a sparse 3-uniform instance is driven by the singleton degree
  // term deg^{1/2}: doubling the cap four-fold should roughly double Δ.
  const auto low = compute_degree_stats(gen::bounded_degree(400, 250, 3, 4, 9));
  const auto high =
      compute_degree_stats(gen::bounded_degree(400, 1000, 3, 16, 9));
  EXPECT_LT(low.delta, high.delta);
  EXPECT_GE(high.delta, 1.4 * low.delta);
}

TEST(SblRegime, RespectsEdgeBudget) {
  const std::size_t n = 2000;
  const double beta = 0.5;
  const auto h = gen::sbl_regime(n, beta, 0, 31);
  EXPECT_EQ(h.num_vertices(), n);
  const auto expected_m = static_cast<std::size_t>(std::pow(n, beta));
  EXPECT_NEAR(static_cast<double>(h.num_edges()),
              static_cast<double>(expected_m), 1.0);
  EXPECT_GE(h.dimension(), 3u);  // mixed arities up to ~log2 n
}

TEST(GeneratorsParallel, BitIdenticalAcrossThreadCounts) {
  // The sampling families run on the scheduler with per-slot counter-RNG
  // streams; the determinism contract says the output is bit-identical for
  // any thread count (serial pool == nullptr included).
  par::ThreadPool one(1);
  par::ThreadPool three(3);
  const auto check = [&](const char* name, auto&& make) {
    SCOPED_TRACE(name);
    const auto serial = make(static_cast<par::ThreadPool*>(nullptr));
    EXPECT_EQ(serial.edges_as_lists(), make(&one).edges_as_lists());
    EXPECT_EQ(serial.edges_as_lists(), make(&three).edges_as_lists());
  };
  check("uniform", [](par::ThreadPool* p) {
    return gen::uniform_random(300, 900, 3, 41, p);
  });
  check("mixed", [](par::ThreadPool* p) {
    return gen::mixed_arity(300, 700, 2, 6, 43, p);
  });
  check("planted", [](par::ThreadPool* p) {
    return gen::planted_mis(300, 800, 3, 0.5, 47, p);
  });
  check("graph", [](par::ThreadPool* p) {
    return gen::random_graph(250, 900, 53, p);
  });
  check("sbl", [](par::ThreadPool* p) {
    return gen::sbl_regime(2500, 0.55, 10, 59, p);
  });
}

}  // namespace
