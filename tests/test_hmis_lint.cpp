// Tests for the hmis_lint checker: lexer/suppression unit tests plus the
// fixture corpus under tools/hmis_lint/test/fixtures/.  Every fixture line
// marked `HMIS-FLAG: <check>` must produce exactly that diagnostic and
// nothing else — asserted as set equality, so false positives in clean
// fixtures fail just as loudly as false negatives in flagged ones.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "checks.hpp"
#include "lint_source.hpp"

namespace {

using hmis::lint::Diagnostic;
using hmis::lint::SourceFile;

std::string fixture_path(const std::string& name) {
  return std::string(HMIS_LINT_FIXTURE_DIR) + "/" + name;
}

/// (line, check) pairs expected from `HMIS-FLAG: a, b` markers.
std::set<std::pair<std::size_t, std::string>> expected_flags(
    const std::string& content) {
  std::set<std::pair<std::size_t, std::string>> expected;
  std::istringstream ss(content);
  std::string line_text;
  std::size_t line = 0;
  while (std::getline(ss, line_text)) {
    ++line;
    const std::string tag = "HMIS-FLAG:";
    const std::size_t pos = line_text.find(tag);
    if (pos == std::string::npos) continue;
    std::istringstream checks(line_text.substr(pos + tag.size()));
    std::string check;
    while (std::getline(checks, check, ',')) {
      check.erase(std::remove_if(check.begin(), check.end(), ::isspace),
                  check.end());
      if (!check.empty()) expected.emplace(line, check);
    }
  }
  return expected;
}

void expect_fixture_matches(const std::string& name) {
  std::string content;
  ASSERT_TRUE(hmis::lint::read_file(fixture_path(name), content))
      << "missing fixture " << fixture_path(name);
  const SourceFile file(fixture_path(name), content);
  std::vector<Diagnostic> diags;
  hmis::lint::run_checks_on_file(file, {}, diags);
  std::set<std::pair<std::size_t, std::string>> actual;
  for (const Diagnostic& d : diags) actual.emplace(d.line, d.check);
  EXPECT_EQ(actual, expected_flags(content)) << "fixture " << name;
}

TEST(HmisLintFixtures, NonatomicSharedWriteFlagged) {
  expect_fixture_matches("nonatomic_shared_write_flagged.cpp");
}
TEST(HmisLintFixtures, NonatomicSharedWriteClean) {
  expect_fixture_matches("nonatomic_shared_write_clean.cpp");
}
TEST(HmisLintFixtures, ShardCounterFlagged) {
  expect_fixture_matches("shard_counter_flagged.cpp");
}
TEST(HmisLintFixtures, ShardCounterClean) {
  expect_fixture_matches("shard_counter_clean.cpp");
}
TEST(HmisLintFixtures, BannedNondeterminismFlagged) {
  expect_fixture_matches("banned_nondeterminism_flagged.cpp");
}
TEST(HmisLintFixtures, BannedNondeterminismClean) {
  expect_fixture_matches("banned_nondeterminism_clean.cpp");
}
TEST(HmisLintFixtures, GrainSentinelFlagged) {
  expect_fixture_matches("grain_sentinel_flagged.cpp");
}
TEST(HmisLintFixtures, GrainSentinelClean) {
  expect_fixture_matches("grain_sentinel_clean.cpp");
}
TEST(HmisLintFixtures, PoolPlumbingFlagged) {
  expect_fixture_matches("pool_plumbing_flagged.cpp");
}
TEST(HmisLintFixtures, PoolPlumbingClean) {
  expect_fixture_matches("pool_plumbing_clean.cpp");
}

TEST(HmisLintRegistry, FourChecksRegistered) {
  std::vector<std::string> names;
  for (const auto& c : hmis::lint::all_checks()) {
    names.emplace_back(c->name());
  }
  const std::vector<std::string> expected = {
      "hmis-nonatomic-shared-write", "hmis-banned-nondeterminism",
      "hmis-grain-sentinel", "hmis-pool-plumbing"};
  EXPECT_EQ(names, expected);
}

TEST(HmisLintRegistry, CheckFilterSelects) {
  const std::string src = R"cpp(
void f(const MisOptions& opt) {
  ThreadPool& tp = par::global_pool();
  par::parallel_for(0, 8, [](std::size_t) {}, nullptr, &tp, 64);
}
)cpp";
  const SourceFile file("algo/fake.cpp", src);
  std::vector<Diagnostic> all;
  hmis::lint::run_checks_on_file(file, {}, all);
  ASSERT_EQ(all.size(), 2u);
  std::vector<Diagnostic> only_pool;
  hmis::lint::run_checks_on_file(file, {"hmis-pool-plumbing"}, only_pool);
  ASSERT_EQ(only_pool.size(), 1u);
  EXPECT_EQ(only_pool[0].check, "hmis-pool-plumbing");
}

TEST(HmisLintLexer, TokensCarryLineAndColumn) {
  const SourceFile file("x.cpp", "int a = 1;\n  a += 2;\n");
  const auto& toks = file.tokens();
  ASSERT_EQ(toks.size(), 9u);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[0].line, 1u);
  EXPECT_EQ(toks[0].col, 1u);
  EXPECT_EQ(toks[5].text, "a");
  EXPECT_EQ(toks[5].line, 2u);
  EXPECT_EQ(toks[5].col, 3u);
  EXPECT_EQ(toks[6].text, "+=");  // longest-match punctuator
}

TEST(HmisLintLexer, CommentsAndStringsAreOpaque) {
  const SourceFile file("x.cpp",
                        "// rand() in a comment\n"
                        "const char* s = \"rand()\";\n"
                        "auto r = R\"(rand())\";\n");
  for (const auto& t : file.tokens()) {
    if (t.kind == hmis::lint::TokenKind::Identifier) {
      EXPECT_NE(t.text, "rand");
    }
  }
}

TEST(HmisLintSuppressions, NolintVariants) {
  const SourceFile file("x.cpp",
                        "int a; // NOLINT\n"
                        "int b; // NOLINT(hmis-grain-sentinel)\n"
                        "// NOLINTNEXTLINE(hmis-pool-plumbing)\n"
                        "int c;\n"
                        "int d;\n");
  EXPECT_TRUE(file.suppressed(1, "hmis-grain-sentinel"));  // blanket
  EXPECT_TRUE(file.suppressed(2, "hmis-grain-sentinel"));
  EXPECT_FALSE(file.suppressed(2, "hmis-pool-plumbing"));
  EXPECT_TRUE(file.suppressed(4, "hmis-pool-plumbing"));
  EXPECT_FALSE(file.suppressed(5, "hmis-pool-plumbing"));
}

TEST(HmisLintSuppressions, AllowRequiresReason) {
  const SourceFile with_reason(
      "x.cpp", "// HMIS_LINT_ALLOW(hmis-banned-nondeterminism: metering)\n"
               "auto t = clock::now();\n");
  EXPECT_TRUE(with_reason.suppressed(2, "hmis-banned-nondeterminism"));
  const SourceFile reasonless(
      "x.cpp", "// HMIS_LINT_ALLOW(hmis-banned-nondeterminism)\n"
               "auto t = clock::now();\n");
  EXPECT_FALSE(reasonless.suppressed(2, "hmis-banned-nondeterminism"));
  const SourceFile empty_reason(
      "x.cpp", "// HMIS_LINT_ALLOW(hmis-banned-nondeterminism:   )\n"
               "auto t = clock::now();\n");
  EXPECT_FALSE(empty_reason.suppressed(2, "hmis-banned-nondeterminism"));
}

TEST(HmisLintSource, MatchForwardAndSplitArgs) {
  const SourceFile file("x.cpp", "f(a, g(b, c), std::pair<int, int>{d, e});");
  const auto& toks = file.tokens();
  ASSERT_GT(toks.size(), 2u);
  ASSERT_EQ(toks[1].text, "(");
  const std::size_t close = hmis::lint::match_forward(toks, 1);
  ASSERT_LT(close, toks.size());
  EXPECT_EQ(toks[close].text, ")");
  const auto args = hmis::lint::split_args(toks, 1, close);
  ASSERT_EQ(args.size(), 3u);  // commas inside () {} and <> stay inside
  EXPECT_EQ(toks[args[0].first].text, "a");
  EXPECT_EQ(toks[args[1].first].text, "g");
  EXPECT_EQ(toks[args[2].first].text, "std");
}

TEST(HmisLintSource, CompileCommandsFiles) {
  const std::string json = R"([
    {"directory": "/b", "command": "c++ ...", "file": "/src/z.cpp"},
    {"directory": "/b", "command": "c++ ...", "file": "/src/a.cpp"},
    {"directory": "/b", "command": "c++ ...", "file": "/src/a.cpp"}
  ])";
  const auto files = hmis::lint::compile_commands_files(json);
  const std::vector<std::string> expected = {"/src/a.cpp", "/src/z.cpp"};
  EXPECT_EQ(files, expected);  // sorted, deduplicated
}

TEST(HmisLintFormat, ClangStyleRendering) {
  const Diagnostic d{"src/x.cpp", 12, 7, "hmis-grain-sentinel", "msg"};
  EXPECT_EQ(hmis::lint::format_diagnostic(d),
            "src/x.cpp:12:7: warning: msg [hmis-grain-sentinel]");
}

}  // namespace
