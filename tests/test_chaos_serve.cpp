// The chaos harness (ISSUE 10, DESIGN.md §12): sweep seeded fault
// schedules against a real loopback Server and hold four invariants on
// every schedule:
//
//   1. Liveness   — every request a client manages to deliver ends in
//                   exactly one response or a clean connection close;
//                   after disarming, the server answers a fault-free ping
//                   (the process never crashed or wedged).
//   2. Reconcile  — after stop() drains: engine submitted == completed,
//                   engine inflight == 0, admission tickets all returned.
//   3. Bytes      — every solve response that DID arrive with ok:true is
//                   byte-identical to the fault-free baseline for its seed
//                   (faults may delay or kill a response, never corrupt it).
//   4. Replay     — a failing schedule is reproducible from its seed: the
//                   failure message embeds the full HMIS_FAULT spec.
//
// Schedule count: HMIS_CHAOS_SCHEDULES (default 24 for the tier-1 suite;
// tools/run_chaos.sh raises it to 200+ for the CI chaos job).  The sweep
// varies seed AND rate so low-rate "one unlucky fault" and high-rate
// "everything is on fire" regimes are both covered.
//
// The fault plan is process-global, so injected socket faults hit the
// in-process client's loops too — that is intentional: the client's retry
// path (reconnect + capped backoff) is part of the surface under test.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "hmis/core/mis.hpp"
#include "hmis/hypergraph/generators.hpp"
#include "hmis/hypergraph/io.hpp"
#include "hmis/net/client.hpp"
#include "hmis/net/protocol.hpp"
#include "hmis/net/server.hpp"
#include "hmis/util/fault.hpp"
#include "hmis/util/json.hpp"
#include "hmis/util/parse.hpp"

namespace {

using namespace hmis;

struct ArmedScope {
  explicit ArmedScope(const util::FaultPlan& plan) { util::fault_arm(plan); }
  ~ArmedScope() { util::fault_disarm(); }
};

std::size_t schedule_count() {
  const char* env = std::getenv("HMIS_CHAOS_SCHEDULES");
  if (env == nullptr || *env == '\0') return 24;
  const auto parsed = util::parse_u64(env);
  EXPECT_TRUE(parsed.has_value()) << "bad HMIS_CHAOS_SCHEDULES: " << env;
  return parsed ? static_cast<std::size_t>(*parsed) : 24;
}

bool is_ok(const std::string& payload) {
  const auto ok = util::json_find(payload, "ok");
  return ok && ok->raw == "true";
}

/// Error codes a faulted request may legitimately answer with.  Anything
/// else (or an unparseable frame) is a harness failure.
bool is_known_error(const std::string& payload) {
  const auto ok = util::json_find(payload, "ok");
  if (!ok || ok->raw != "false") return false;
  const auto code = util::json_find(payload, "code");
  if (!code) return false;
  static const char* kCodes[] = {
      "BAD_REQUEST",      "NOT_FOUND",         "DEADLINE_EXCEEDED",
      "RESOURCE_EXHAUSTED", "SHUTTING_DOWN",   "CANCELLED",
      "FRAME_TOO_LARGE",  "INTERNAL",
  };
  for (const char* c : kCodes) {
    if (code->raw == c) return true;
  }
  return false;
}

struct Baseline {
  std::string graph_bytes;
  std::map<std::uint64_t, std::string> solve_by_seed;  // fault-free payloads
};

const Baseline& baseline() {
  static const Baseline kBaseline = [] {
    Baseline b;
    const Hypergraph h = gen::uniform_random(300, 450, 3, 41);
    std::ostringstream os(std::ios::binary);
    write_hypergraph_binary(os, h);
    b.graph_bytes = os.str();
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      core::FindOptions opt;
      opt.seed = seed;
      b.solve_by_seed[seed] =
          net::solve_payload(core::find_mis(h, core::Algorithm::SBL, opt));
    }
    return b;
  }();
  return kBaseline;
}

net::ServeOptions chaos_server_options() {
  net::ServeOptions opt;
  opt.port = 0;
  opt.threads = 2;
  opt.max_inflight = 2;
  opt.max_connections = 8;
  opt.enable_test_ops = true;
  return opt;
}

net::RetryPolicy chaos_retry() {
  net::RetryPolicy r;
  r.max_attempts = 4;
  r.initial_backoff_ms = 1.0;
  r.max_backoff_ms = 8.0;
  return r;
}

/// One schedule end to end.  Returns a failure description, empty on pass.
std::string run_schedule(std::uint64_t seed, double rate) {
  const Baseline& base = baseline();
  std::ostringstream why;
  {
    net::Server server(chaos_server_options());
    server.start();
    const std::uint16_t port = server.port();

    util::FaultPlan plan;
    plan.seed = seed;
    plan.rate = rate;
    // Everything except mmap.load (no file-backed graphs in this
    // workload; it gets its own unit coverage in test_failure_injection).
    plan.sites = "net.*;alloc.*;sched.spawn";
    {
      ArmedScope armed(plan);
      net::Client client;
      client.set_retry(chaos_retry());
      // A connect may be eaten by net.accept faults; the retry layer only
      // redials on request, so dial a few times here.
      bool connected = false;
      for (int attempt = 0; attempt < 4 && !connected; ++attempt) {
        connected = client.connect("127.0.0.1", port);
      }
      if (connected) {
        const auto loaded = client.load("g", base.graph_bytes, "hgb1");
        if (loaded.transport_ok && !is_ok(loaded.payload) &&
            !is_known_error(loaded.payload)) {
          why << "load answered an unknown frame: " << loaded.payload;
        }
        for (const auto& [seed_n, expected] : base.solve_by_seed) {
          std::ostringstream req;
          req << R"({"op":"solve","graph":"g","algo":"sbl","seed":)"
              << seed_n << "}";
          const auto reply = client.request(req.str());
          if (!reply.transport_ok) continue;  // killed by faults: legal
          if (is_ok(reply.payload)) {
            // Invariant 3: a delivered success is byte-perfect.
            if (reply.payload != expected) {
              why << "schedule corrupted solve seed=" << seed_n
                  << ": got " << reply.payload;
              break;
            }
          } else if (!is_known_error(reply.payload)) {
            why << "solve answered an unknown frame: " << reply.payload;
            break;
          }
        }
        // Exercise the cancel surface under faults too; either outcome
        // (NOT_FOUND, transport kill) is legal — crash/corruption is not.
        const auto cancelled = client.request(R"({"op":"cancel","id":"no"})");
        if (cancelled.transport_ok && !is_ok(cancelled.payload) &&
            !is_known_error(cancelled.payload)) {
          why << "cancel answered an unknown frame: " << cancelled.payload;
        }
      }
    }  // disarm

    // Invariant 1: the server survived the schedule — a fresh fault-free
    // client gets a real answer.
    if (why.str().empty()) {
      net::Client prober;
      if (!prober.connect("127.0.0.1", port)) {
        why << "server unreachable after disarm";
      } else {
        const auto pong = prober.request(R"({"op":"ping"})");
        if (!pong.transport_ok || !is_ok(pong.payload)) {
          why << "fault-free ping failed after disarm: " << pong.payload;
        }
      }
    }

    server.stop();

    // Invariant 2: counters reconcile after the drain.
    const net::ServeStats stats = server.core().stats();
    if (stats.engine.submitted != stats.engine.completed) {
      why << " engine submitted=" << stats.engine.submitted
          << " != completed=" << stats.engine.completed;
    }
    if (stats.engine.inflight != 0) {
      why << " engine inflight=" << stats.engine.inflight << " after drain";
    }
    if (stats.admission_inflight != 0) {
      why << " admission tickets leaked: " << stats.admission_inflight;
    }
  }  // ~Server: ASan closes the leak half of invariant 1
  return why.str();
}

TEST(ChaosServe, SeededFaultSweepHoldsInvariants) {
  (void)baseline();  // build the fault-free reference before arming anything
  const std::size_t schedules = schedule_count();
  // Rate ladder: mostly-clean through heavily-faulted.
  const double rates[] = {0.002, 0.01, 0.05, 0.15, 0.35};
  const bool verbose = std::getenv("HMIS_CHAOS_VERBOSE") != nullptr;
  for (std::size_t i = 0; i < schedules; ++i) {
    const std::uint64_t seed = 1000 + i;
    const double rate = rates[i % (sizeof(rates) / sizeof(rates[0]))];
    if (verbose) {
      std::fprintf(stderr, "chaos: schedule %zu seed=%llu rate=%g\n", i,
                   static_cast<unsigned long long>(seed), rate);
    }
    const std::string failure = run_schedule(seed, rate);
    // The replay spec IS the artifact: arm HMIS_FAULT with exactly this
    // string to reproduce the schedule deterministically.
    ASSERT_TRUE(failure.empty())
        << "chaos schedule failed; replay with HMIS_FAULT=\"seed=" << seed
        << ",rate=" << rate << ",sites=net.*;alloc.*;sched.spawn\" — "
        << failure;
    if ((i + 1) % 50 == 0) {
      std::printf("chaos: %zu/%zu schedules passed\n", i + 1, schedules);
    }
  }
}

TEST(ChaosServe, SerialScheduleReplaysIdentically) {
  // Determinism of the schedule itself (invariant 4's foundation): the
  // same seed against the socket-free ServeCore fires the same number of
  // faults.  (The TCP sweep above can't pin fire counts — thread
  // interleaving assigns ordinals — so replay is pinned serially here.)
  const Baseline& base = baseline();
  util::FaultPlan plan;
  plan.seed = 77;
  plan.rate = 0.2;
  plan.sites = "alloc.*;sched.spawn";
  std::vector<std::uint64_t> fire_counts;
  for (int round = 0; round < 2; ++round) {
    net::ServeOptions opt;
    opt.threads = 1;  // zero-worker pool: fully serial
    opt.enable_test_ops = true;
    net::ServeCore core(opt);
    ArmedScope armed(plan);
    class NullSink final : public net::FrameSink {
     public:
      bool frame(std::string_view) override { return true; }
    } sink;
    class OneShot final : public net::FrameSource {
     public:
      explicit OneShot(const std::string& bytes) : bytes_(bytes) {}
      bool next_frame(std::string* out) override {
        if (used_) return false;
        used_ = true;
        *out = bytes_;
        return true;
      }

     private:
      const std::string& bytes_;
      bool used_ = false;
    } source(base.graph_bytes);
    (void)core.handle(R"({"op":"load","name":"g","format":"hgb1"})", &source,
                      &sink);
    for (int s = 1; s <= 3; ++s) {
      std::ostringstream req;
      req << R"({"op":"solve","graph":"g","algo":"sbl","seed":)" << s << "}";
      (void)core.handle(req.str(), nullptr, &sink);
    }
    fire_counts.push_back(util::fault_fires());
  }
  EXPECT_EQ(fire_counts[0], fire_counts[1]);
}

}  // namespace
