#include "hmis/conc/polynomial.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "hmis/hypergraph/builder.hpp"
#include "hmis/hypergraph/generators.hpp"

namespace {

using namespace hmis;
using namespace hmis::conc;

TEST(Polynomial, UnitWeightsMirrorHypergraph) {
  const auto h = make_hypergraph(4, {{0, 1}, {1, 2, 3}});
  const auto wh = unit_weights(h);
  EXPECT_EQ(wh.num_vertices, 4u);
  ASSERT_EQ(wh.edges.size(), 2u);
  EXPECT_EQ(wh.weights, (std::vector<double>{1.0, 1.0}));
  EXPECT_EQ(wh.dimension(), 3u);
}

TEST(Polynomial, ExpectationClosedForm) {
  // E[S] = sum w(e) p^{|e|}.
  WeightedHypergraph wh;
  wh.num_vertices = 5;
  wh.edges = {{0, 1}, {2, 3, 4}};
  wh.weights = {2.0, 3.0};
  const double p = 0.25;
  EXPECT_NEAR(expectation_S(wh, p), 2.0 * 0.0625 + 3.0 * std::pow(0.25, 3),
              1e-12);
}

TEST(Polynomial, SampleMeanApproachesExpectation) {
  const auto h = gen::uniform_random(30, 60, 3, 3);
  const auto wh = unit_weights(h);
  const double p = 0.4;
  const std::uint64_t trials = 20000;
  double sum = 0.0;
  for (std::uint64_t t = 0; t < trials; ++t) sum += sample_S(wh, p, 7, t);
  const double mean = sum / static_cast<double>(trials);
  const double expect = expectation_S(wh, p);
  EXPECT_NEAR(mean, expect, 0.05 * expect + 0.05);
}

TEST(Polynomial, PartialExpectationConditionsOnX) {
  // Edges {0,1},{0,2}: P({0}) = 2p; P({1}) = p; P({0,1}) = 1 (+ nothing).
  WeightedHypergraph wh;
  wh.num_vertices = 3;
  wh.edges = {{0, 1}, {0, 2}};
  wh.weights = {1.0, 1.0};
  const double p = 0.3;
  EXPECT_NEAR(partial_expectation(wh, p, {0}), 2 * p, 1e-12);
  EXPECT_NEAR(partial_expectation(wh, p, {1}), p, 1e-12);
  EXPECT_NEAR(partial_expectation(wh, p, {0, 1}), 1.0, 1e-12);
  EXPECT_NEAR(partial_expectation(wh, p, {2}), p, 1e-12);
}

TEST(Polynomial, DIsMaxOverSubsetsAndAtLeastExpectation) {
  const auto h = gen::mixed_arity(40, 80, 2, 4, 5);
  const auto wh = unit_weights(h);
  const double p = 0.2;
  const auto d = max_partial_expectation(wh, p);
  EXPECT_TRUE(d.exact);
  EXPECT_GE(d.value + 1e-12, expectation_S(wh, p));
  // D >= P(x) for a few explicit subsets.
  for (const VertexId v : {0u, 1u, 2u}) {
    EXPECT_GE(d.value + 1e-12, partial_expectation(wh, p, {v}));
  }
  // A full edge always has P >= its weight.
  EXPECT_GE(d.value + 1e-12, 1.0);
}

TEST(Polynomial, DExactMatchesBruteForceOnTinyInstance) {
  WeightedHypergraph wh;
  wh.num_vertices = 4;
  wh.edges = {{0, 1}, {1, 2}, {0, 1, 3}};
  wh.weights = {1.0, 2.0, 4.0};
  const double p = 0.5;
  // Brute force over all 15 non-empty subsets of {0..3} plus empty.
  double best = expectation_S(wh, p);
  for (unsigned mask = 1; mask < 16; ++mask) {
    VertexList x;
    for (unsigned b = 0; b < 4; ++b) {
      if (mask & (1u << b)) x.push_back(b);
    }
    best = std::max(best, partial_expectation(wh, p, x));
  }
  const auto d = max_partial_expectation(wh, p);
  EXPECT_NEAR(d.value, best, 1e-12);
}

TEST(Polynomial, VarianceDisjointEdgesIsSumOfBernoulliVariances) {
  // Disjoint edges: S is a sum of independent weighted Bernoullis.
  WeightedHypergraph wh;
  wh.num_vertices = 6;
  wh.edges = {{0, 1}, {2, 3}, {4, 5}};
  wh.weights = {1.0, 2.0, 3.0};
  const double p = 0.3;
  const double q = p * p;
  const double expected = (1 + 4 + 9) * q * (1 - q);
  EXPECT_NEAR(variance_S(wh, p), expected, 1e-12);
}

TEST(Polynomial, VarianceWithOverlapAddsPositiveCovariance) {
  // Shared vertex: Cov = p^{|e∪f|} - p^{|e|+|f|} > 0.
  WeightedHypergraph wh;
  wh.num_vertices = 3;
  wh.edges = {{0, 1}, {0, 2}};
  wh.weights = {1.0, 1.0};
  const double p = 0.5;
  const double q = 0.25;
  const double cov = std::pow(p, 3) - std::pow(p, 4);
  EXPECT_NEAR(variance_S(wh, p), 2 * q * (1 - q) + 2 * cov, 1e-12);
}

TEST(Polynomial, VarianceMatchesMonteCarlo) {
  const auto h = gen::uniform_random(25, 50, 3, 7);
  const auto wh = unit_weights(h);
  const double p = 0.4;
  const std::uint64_t trials = 40000;
  double sum = 0.0, sum2 = 0.0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    const double s = sample_S(wh, p, 3, t);
    sum += s;
    sum2 += s * s;
  }
  const double mean = sum / static_cast<double>(trials);
  const double var_mc = sum2 / static_cast<double>(trials) - mean * mean;
  const double var = variance_S(wh, p);
  EXPECT_NEAR(var_mc, var, 0.08 * var + 0.05);
}

TEST(Polynomial, ChebyshevThresholdShrinksWithLooserConfidence) {
  const auto h = gen::uniform_random(30, 60, 3, 9);
  const auto wh = unit_weights(h);
  const double tight = chebyshev_threshold(wh, 0.3, 1e-6);
  const double loose = chebyshev_threshold(wh, 0.3, 1e-2);
  EXPECT_GT(tight, loose);
  EXPECT_GE(loose, expectation_S(wh, 0.3));
}

TEST(MigrationSystem, BuildsLemma4Weights) {
  // X = {0}; k = 2, j = 1.  Edges of size |X|+2 = 3 through 0:
  //   {0,1,2}, {0,1,3}  => N_2({0}) = {{1,2},{1,3}}.
  // (k-j)=1-subsets Y: {1},{2},{3}.
  // w'({1}) = |N_1({0,1})| = #edges of size 3 containing {0,1} = 2.
  // w'({2}) = |N_1({0,2})| = 1 ({0,1,2}), w'({3}) = 1.
  const auto h = make_hypergraph(5, {{0, 1, 2}, {0, 1, 3}, {0, 4}});
  const auto lists = h.edges_as_lists();
  const auto wh = migration_system(
      std::span<const VertexList>(lists.data(), lists.size()), 5, {0}, 1, 2);
  ASSERT_EQ(wh.edges.size(), 3u);
  double total_weight = 0.0;
  double max_weight = 0.0;
  for (std::size_t i = 0; i < wh.edges.size(); ++i) {
    EXPECT_EQ(wh.edges[i].size(), 1u);
    total_weight += wh.weights[i];
    max_weight = std::max(max_weight, wh.weights[i]);
  }
  EXPECT_DOUBLE_EQ(total_weight, 4.0);  // 2 + 1 + 1
  EXPECT_DOUBLE_EQ(max_weight, 2.0);
}

TEST(MigrationSystem, EmptyWhenNoBigEdges) {
  const auto h = make_hypergraph(4, {{0, 1}});
  const auto lists = h.edges_as_lists();
  const auto wh = migration_system(
      std::span<const VertexList>(lists.data(), lists.size()), 4, {0}, 1, 2);
  EXPECT_TRUE(wh.edges.empty());
}

TEST(MigrationSystem, EdgesAreSortedDistinctAndInputOrderInvariant) {
  // Regression: the subset pool used to be keyed by a 64-bit hash and
  // iterated in unordered_map order, so the emitted edge order depended on
  // hash-table internals (and a hash collision could silently drop a
  // distinct subset).  The system's edges must come out value-deduplicated,
  // lexicographically sorted, and identical for any permutation of the
  // input edge list.
  const auto h = make_hypergraph(
      8, {{0, 1, 2, 4}, {0, 2, 3, 5}, {0, 1, 3, 6}, {0, 2, 3, 7}});
  const auto lists = h.edges_as_lists();
  const auto wh = migration_system(
      std::span<const VertexList>(lists.data(), lists.size()), 8, {0}, 1, 3);
  ASSERT_FALSE(wh.edges.empty());
  EXPECT_TRUE(std::is_sorted(wh.edges.begin(), wh.edges.end()));
  EXPECT_EQ(std::adjacent_find(wh.edges.begin(), wh.edges.end()),
            wh.edges.end());

  std::vector<VertexList> shuffled(lists.rbegin(), lists.rend());
  const auto wh2 = migration_system(
      std::span<const VertexList>(shuffled.data(), shuffled.size()), 8, {0},
      1, 3);
  EXPECT_EQ(wh.edges, wh2.edges);
  EXPECT_EQ(wh.weights, wh2.weights);
}

TEST(MigrationSystem, KMinusJTwoSubsets) {
  // X = {0}, k = 3, j = 1: one edge {0,1,2,3} of size 4, N_3 = {{1,2,3}},
  // 2-subsets: {1,2},{1,3},{2,3}; weights = |N_1(X∪Y)| = #size-4 edges... 0
  // unless a size-3 edge {0,a,b} ... wait w'(Y) counts edges of size
  // |X∪Y|+1 = 4 containing X∪Y: that's the edge itself? |X∪Y| = 3, edges of
  // size 4 ⊇ X∪Y: yes {0,1,2,3}.  So each weight = 1.
  const auto h = make_hypergraph(5, {{0, 1, 2, 3}});
  const auto lists = h.edges_as_lists();
  const auto wh = migration_system(
      std::span<const VertexList>(lists.data(), lists.size()), 5, {0}, 1, 3);
  ASSERT_EQ(wh.edges.size(), 3u);
  for (const double w : wh.weights) EXPECT_DOUBLE_EQ(w, 1.0);
}

}  // namespace
