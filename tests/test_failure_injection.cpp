// Failure-injection suite: drive the guard rails on purpose and check they
// fire.  A reproduction whose invariants cannot be tripped is not testing
// its invariants.
#include <gtest/gtest.h>

#include "hmis/algo/bl.hpp"
#include "hmis/core/sbl.hpp"
#include "hmis/hypergraph/builder.hpp"
#include "hmis/hypergraph/generators.hpp"
#include "hmis/hypergraph/mutable_hypergraph.hpp"
#include "hmis/pram/machine.hpp"
#include "hmis/util/check.hpp"

namespace {

using namespace hmis;

TEST(FailureInjection, FullyBlueEdgeIsCaught) {
  // Manually violate independence through the residual structure: the
  // CHECK in color_blue must fire rather than silently producing a bogus
  // MIS.
  const auto h = make_hypergraph(4, {{0, 1, 2}});
  MutableHypergraph mh(h);
  const std::vector<VertexId> all = {0, 1, 2};
  EXPECT_THROW(mh.color_blue(all), util::CheckError);
}

TEST(FailureInjection, BlMaxRoundsTripsGracefully) {
  // probability_override ~ 0 means essentially nothing is ever marked; BL
  // must hit max_rounds and report failure instead of spinning forever.
  const auto h = gen::uniform_random(50, 100, 3, 3);
  algo::BlOptions opt;
  opt.probability_override = 1e-12;
  opt.isolated_shortcut = false;
  opt.max_rounds = 20;
  const auto r = algo::bl(h, opt);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.failure_reason.find("max_rounds"), std::string::npos);
}

TEST(FailureInjection, SblResampleBudgetExhaustionReported) {
  // d_override=2 with p=0.9: nearly every vertex is sampled every round, so
  // some size->=3 edge is always fully sampled and every redraw fails.
  const auto h = gen::uniform_random(60, 180, 3, 5);
  core::SblOptions opt;
  opt.d_override = 2;
  opt.p_override = 0.9;
  opt.max_resamples_per_round = 5;
  const auto r = core::sbl(h, opt);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.failure_reason.find("max_resamples"), std::string::npos);
}

TEST(FailureInjection, SblRestartBudgetExhaustionReported) {
  const auto h = gen::uniform_random(60, 180, 3, 5);
  core::SblOptions opt;
  opt.d_override = 2;
  opt.p_override = 0.9;
  opt.fail_policy = core::SblFailPolicy::RestartAll;
  opt.max_restarts = 3;
  const auto r = core::sbl(h, opt);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.failure_reason.find("max_restarts"), std::string::npos);
}

TEST(FailureInjection, PramStrictModeAbortsOnViolation) {
  pram::Machine m(8, pram::Mode::EREW, /*strict=*/true);
  EXPECT_THROW(m.step(2, [&](std::size_t p) { (void)m.read(p, 3); }),
               util::CheckError);
}

TEST(FailureInjection, PramOutOfRangeAccess) {
  pram::Machine m(4);
  EXPECT_THROW(m.poke(10, 1), util::CheckError);
  EXPECT_THROW((void)m.peek(10), util::CheckError);
  EXPECT_THROW(m.step(1, [&](std::size_t p) { (void)m.read(p, 99); }),
               util::CheckError);
}

TEST(FailureInjection, BuilderEmptyEdgeMeansNoMisExists) {
  HypergraphBuilder b(3);
  EXPECT_THROW(b.add_edge(std::initializer_list<VertexId>{}),
               util::CheckError);
}

TEST(FailureInjection, CheckMacroCarriesContext) {
  try {
    HMIS_CHECK(false, "context message 42");
    FAIL() << "HMIS_CHECK did not throw";
  } catch (const util::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("context message 42"), std::string::npos);
    EXPECT_NE(what.find("test_failure_injection"), std::string::npos);
  }
}

TEST(FailureInjection, DcheckCompiledPerBuildType) {
#ifdef NDEBUG
  EXPECT_NO_THROW(HMIS_DCHECK(false, "stripped in release"));
#else
  EXPECT_THROW(HMIS_DCHECK(false, "active in debug"), util::CheckError);
#endif
}

}  // namespace
