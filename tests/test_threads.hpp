// Shared test helper: width of the largest thread pool the parallel suites
// construct.  HMIS_TEST_THREADS overrides the default of 8 so sanitizer CI
// can crank the concurrency without editing the tests.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <vector>

namespace hmis_test {

inline std::size_t max_test_threads() {
  if (const char* env = std::getenv("HMIS_TEST_THREADS")) {
    const long v = std::atol(env);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  return 8;
}

/// Thread counts the engine determinism suites sweep: 1 (a zero-worker
/// pool — sessions run on the waiting caller), 2, and the sanitizer-widened
/// maximum.  Results must be byte-identical across the whole sweep.
inline std::vector<std::size_t> engine_thread_sweep() {
  return {1, 2, max_test_threads()};
}

}  // namespace hmis_test
