#include "hmis/algo/permutation_mis.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "hmis/hypergraph/builder.hpp"
#include "hmis/hypergraph/generators.hpp"
#include "hmis/hypergraph/validate.hpp"

namespace {

using namespace hmis;
using algo::permutation_mis;
using algo::PermutationOptions;

TEST(PermutationMis, NoEdgesTakesAll) {
  const auto h = make_hypergraph(6, {});
  const auto r = permutation_mis(h);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.independent_set.size(), 6u);
  EXPECT_EQ(r.rounds, 1u);
}

TEST(PermutationMis, SingleEdgeLeavesOneOut) {
  const auto h = make_hypergraph(4, {{0, 1, 2, 3}});
  const auto r = permutation_mis(h);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.independent_set.size(), 3u);
  EXPECT_TRUE(verify_mis(h, r.independent_set).ok());
}

TEST(PermutationMis, SingletonsExcludedUpFront) {
  const auto h = make_hypergraph(4, {{0}, {1, 2}});
  const auto r = permutation_mis(h);
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(verify_mis(h, r.independent_set).ok());
  EXPECT_FALSE(std::binary_search(r.independent_set.begin(),
                                  r.independent_set.end(), 0u));
}

TEST(PermutationMis, VerifiedAcrossFamiliesAndSeeds) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto h1 = gen::uniform_random(300, 900, 3, seed);
    const auto h2 = gen::mixed_arity(300, 600, 2, 6, seed);
    PermutationOptions opt;
    opt.seed = seed;
    for (const auto* h : {&h1, &h2}) {
      const auto r = permutation_mis(*h, opt);
      ASSERT_TRUE(r.success) << r.failure_reason;
      EXPECT_TRUE(verify_mis(*h, r.independent_set).ok());
    }
  }
}

TEST(PermutationMis, RoundCountModest) {
  const std::size_t n = 3000;
  const auto h = gen::uniform_random(n, 3 * n, 3, 7);
  PermutationOptions opt;
  opt.record_trace = true;
  const auto r = permutation_mis(h, opt);
  ASSERT_TRUE(r.success);
  EXPECT_LE(static_cast<double>(r.rounds),
            15.0 * std::log2(static_cast<double>(n)))
      << r.rounds;
  // Every round adds something.
  for (const auto& s : r.trace) EXPECT_GE(s.added_blue, 1u);
}

TEST(PermutationMis, HighDimensionEdges) {
  const auto h = gen::mixed_arity(200, 300, 3, 30, 5);
  const auto r = permutation_mis(h);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(verify_mis(h, r.independent_set).ok());
}

TEST(PermutationMis, DeterministicForSeed) {
  const auto h = gen::mixed_arity(250, 500, 2, 5, 23);
  PermutationOptions opt;
  opt.seed = 99;
  const auto ra = permutation_mis(h, opt);
  const auto rb = permutation_mis(h, opt);
  EXPECT_EQ(ra.independent_set, rb.independent_set);
}

TEST(PermutationMis, IntervalHypergraph) {
  const auto h = gen::interval(200, 5, 1);
  const auto r = permutation_mis(h);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(verify_mis(h, r.independent_set).ok());
  // Each window of 5 misses at least one vertex, so |I| < n; maximality
  // keeps red runs short (<= 2), so |I| >= 2n/3 - O(1).
  EXPECT_LT(r.independent_set.size(), 200u);
  EXPECT_GE(r.independent_set.size(), 130u);
}

}  // namespace
