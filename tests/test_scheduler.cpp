// Scheduler-layer tests: the Chase–Lev deque, the Scheduler/GroupState task
// API underneath ThreadPool/TaskGroup, and the chunk-identity guarantee that
// carries the determinism contract (DESIGN.md §4).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "hmis/par/parallel_for.hpp"
#include "hmis/par/scheduler.hpp"
#include "hmis/par/task_group.hpp"
#include "hmis/par/thread_pool.hpp"
#include "hmis/par/work_steal_deque.hpp"
#include "test_threads.hpp"

namespace {

using namespace hmis::par;

/// Width of the "wide" pools below.  HMIS_TEST_THREADS scales it up in CI;
/// the floor of 4 keeps the fan-out assertions (chunk counts, steal
/// opportunities) meaningful even if the override asks for fewer.
std::size_t wide_threads() {
  return std::max<std::size_t>(hmis_test::max_test_threads(), 4);
}

// ---- WorkStealDeque --------------------------------------------------------

TEST(WorkStealDeque, OwnerPopsLifo) {
  WorkStealDeque<int> deque;
  int items[3] = {10, 20, 30};
  for (int& x : items) deque.push(&x);
  EXPECT_EQ(deque.pop(), &items[2]);
  EXPECT_EQ(deque.pop(), &items[1]);
  EXPECT_EQ(deque.pop(), &items[0]);
  EXPECT_EQ(deque.pop(), nullptr);
}

TEST(WorkStealDeque, ThievesStealFifo) {
  WorkStealDeque<int> deque;
  int items[3] = {10, 20, 30};
  for (int& x : items) deque.push(&x);
  EXPECT_EQ(deque.steal(), &items[0]);
  EXPECT_EQ(deque.steal(), &items[1]);
  EXPECT_EQ(deque.steal(), &items[2]);
  EXPECT_EQ(deque.steal(), nullptr);
}

TEST(WorkStealDeque, GrowsPastInitialCapacity) {
  WorkStealDeque<std::size_t> deque(4);
  std::vector<std::size_t> items(10000);
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i] = i;
    deque.push(&items[i]);
  }
  // Steal half from the top (oldest first), pop half from the bottom.
  for (std::size_t i = 0; i < items.size() / 2; ++i) {
    ASSERT_EQ(deque.steal(), &items[i]);
  }
  for (std::size_t i = items.size(); i > items.size() / 2; --i) {
    ASSERT_EQ(deque.pop(), &items[i - 1]);
  }
  EXPECT_TRUE(deque.empty());
}

TEST(WorkStealDeque, ConcurrentStealersGetEveryItemExactlyOnce) {
  const std::size_t thieves = wide_threads();
  constexpr std::size_t kItems = 20000;
  WorkStealDeque<std::size_t> deque;
  std::vector<std::size_t> items(kItems);
  std::vector<std::atomic<int>> taken(kItems);
  for (auto& t : taken) t.store(0);
  std::atomic<bool> done_pushing{false};
  std::atomic<std::size_t> stolen{0};

  std::vector<std::thread> stealers;
  stealers.reserve(thieves);
  for (std::size_t s = 0; s < thieves; ++s) {
    stealers.emplace_back([&] {
      for (;;) {
        if (std::size_t* item = deque.steal()) {
          taken[*item].fetch_add(1);
          stolen.fetch_add(1);
        } else if (done_pushing.load() && deque.empty()) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  // Owner interleaves pushes with occasional pops.
  std::size_t popped = 0;
  for (std::size_t i = 0; i < kItems; ++i) {
    items[i] = i;
    deque.push(&items[i]);
    if (i % 64 == 63) {
      if (std::size_t* item = deque.pop()) {
        taken[*item].fetch_add(1);
        ++popped;
      }
    }
  }
  done_pushing.store(true);
  for (auto& t : stealers) t.join();
  // Drain anything the thieves left behind.
  while (std::size_t* item = deque.pop()) {
    taken[*item].fetch_add(1);
    ++popped;
  }
  EXPECT_EQ(stolen.load() + popped, kItems);
  for (std::size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(taken[i].load(), 1) << "item " << i;
  }
}

// ---- Scheduler / GroupState ------------------------------------------------

TEST(Scheduler, SpawnAndWaitRunsEveryTask) {
  Scheduler sched(3);
  constexpr std::size_t kTasks = 100;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  struct HitTask : Task {
    std::atomic<int>* cell = nullptr;
  };
  std::vector<HitTask> tasks(kTasks);
  GroupState group;
  for (std::size_t i = 0; i < kTasks; ++i) {
    tasks[i].cell = &hits[i];
    tasks[i].group = &group;
    tasks[i].invoke = [](Task* t) {
      static_cast<HitTask*>(t)->cell->fetch_add(1);
    };
  }
  group.add(kTasks);
  for (auto& t : tasks) sched.spawn(&t);
  sched.wait(group);
  group.rethrow_if_error();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Scheduler, ZeroWorkerSchedulerRunsTasksAtWait) {
  Scheduler sched(0);
  EXPECT_EQ(sched.num_workers(), 0u);
  std::atomic<int> ran{0};
  struct Noop : Task {
    std::atomic<int>* counter = nullptr;
  };
  Noop task;
  GroupState group;
  task.counter = &ran;
  task.group = &group;
  task.invoke = [](Task* t) { static_cast<Noop*>(t)->counter->fetch_add(1); };
  group.add(1);
  sched.spawn(&task);
  EXPECT_EQ(ran.load(), 0);  // deferred: no workers, nobody waited yet
  sched.wait(group);
  EXPECT_EQ(ran.load(), 1);
}

TEST(Scheduler, RunChunksChunkIdentityIndependentOfScheduling) {
  // The chunk *set* handed to the body must be exactly [0, chunks) no
  // matter how stealing interleaves — repeat under load to shake schedules.
  Scheduler sched(wide_threads() - 1);
  for (int round = 0; round < 50; ++round) {
    constexpr std::size_t kChunks = 64;
    std::vector<std::atomic<int>> seen(kChunks);
    for (auto& s : seen) s.store(0);
    sched.run_chunks(kChunks,
                     [&](std::size_t c) { seen[c].fetch_add(1); });
    for (std::size_t c = 0; c < kChunks; ++c) {
      ASSERT_EQ(seen[c].load(), 1) << "chunk " << c << " round " << round;
    }
  }
}

TEST(Scheduler, RunChunksZeroAndOne) {
  Scheduler sched(2);
  int calls = 0;
  sched.run_chunks(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  sched.run_chunks(1, [&](std::size_t c) {
    EXPECT_EQ(c, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(Scheduler, StatsCountStealsUnderContention) {
  // With more chunks than workers and a body that sleeps, some chunk must
  // be executed via a steal or injection hand-off; the counters move.
  Scheduler sched(wide_threads() - 1);
  const SchedulerStats before = sched.stats();
  for (int round = 0; round < 10; ++round) {
    sched.run_chunks(32, [](std::size_t) {
      std::this_thread::yield();
    });
  }
  const SchedulerStats delta = sched.stats() - before;
  EXPECT_GE(delta.spawns, 10u);
  EXPECT_GE(delta.joins, 10u);
}

// ---- ThreadPool shim edge cases -------------------------------------------

TEST(SchedulerEdge, ChunksGreaterThanItems) {
  // parallel_for with grain 1 on a range smaller than the pool width: the
  // plan caps chunks at n, and every index runs once.
  ThreadPool pool(wide_threads());
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h.store(0);
  parallel_for(
      0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, nullptr,
      &pool, /*grain=*/1);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  const ChunkPlan plan = plan_chunks(3, pool.num_threads(), 1);
  EXPECT_EQ(plan.chunks, 3u);
}

TEST(SchedulerEdge, ZeroLengthRangeNeverTouchesScheduler) {
  ThreadPool pool(4);
  const SchedulerStats before = pool.stats();
  int calls = 0;
  parallel_for(7, 7, [&](std::size_t) { ++calls; }, nullptr, &pool);
  parallel_for_chunks(
      9, 9, [&](std::size_t, std::size_t, std::size_t) { ++calls; }, nullptr,
      &pool);
  pool.run_chunks(0, [&](std::size_t) { ++calls; });
  const SchedulerStats delta = pool.stats() - before;
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(delta.spawns, 0u);
  EXPECT_EQ(delta.joins, 0u);
}

TEST(SchedulerEdge, ExceptionFromStolenTaskPropagates) {
  // Force the throwing closure onto a worker (the spawning thread busies
  // itself first), so the error crosses a steal boundary before rethrow.
  ThreadPool pool(wide_threads());
  for (int round = 0; round < 20; ++round) {
    TaskGroup group(pool);
    std::atomic<int> side{0};
    group.run([&] {
      side.fetch_add(1);
      throw std::runtime_error("stolen boom");
    });
    for (int i = 0; i < 100; ++i) side.fetch_add(1);
    EXPECT_THROW(group.wait(), std::runtime_error);
    ASSERT_GE(side.load(), 101);
  }
  // Pool unharmed.
  std::atomic<int> ok{0};
  pool.run_chunks(8, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

TEST(SchedulerEdge, WorkerOfOnePoolCanDriveAnotherPool) {
  // A task on pool A issuing fork-join on pool B takes B's external
  // submitter path; both joins complete.
  ThreadPool a(3), b(3);
  std::atomic<int> total{0};
  a.run_chunks(4, [&](std::size_t) {
    b.run_chunks(4, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(SchedulerEdge, ManyConcurrentGroupsOnSharedPool) {
  ThreadPool pool(wide_threads());
  constexpr int kThreads = 4;
  constexpr int kGroupsPerThread = 25;
  std::atomic<int> total{0};
  std::vector<std::thread> drivers;
  drivers.reserve(kThreads);
  for (int d = 0; d < kThreads; ++d) {
    drivers.emplace_back([&] {
      for (int g = 0; g < kGroupsPerThread; ++g) {
        TaskGroup group(pool);
        for (int t = 0; t < 4; ++t) {
          group.run([&total] { total.fetch_add(1); });
        }
        group.wait();
      }
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(total.load(), kThreads * kGroupsPerThread * 4);
}

}  // namespace

// ---- Thread-safety annotation fixture ---------------------------------------
//
// Deliberate lock-discipline misuse, compiled only by the CMake-driven
// compile-fail test (hmis_thread_safety_fixture): under clang with
// -Wthread-safety -Werror these two functions must REFUSE to compile,
// proving the annotations in util/sync.hpp and the retrofitted headers
// actually reject the bug class (a PR 3-style unsynchronized write to
// guarded state).  Never enabled in a normal build.
#ifdef HMIS_LINT_FIXTURE
namespace hmis_lint_fixture {

struct GuardedCounter {
  hmis::util::Mutex mutex;
  int value HMIS_GUARDED_BY(mutex) = 0;

  void locked_bump() HMIS_REQUIRES(mutex) { ++value; }
};

// expected-error: writing variable 'value' requires holding mutex
int write_without_lock(GuardedCounter& c) {
  c.value = 7;
  return c.value;
}

// expected-error: calling function 'locked_bump' requires holding mutex
void call_requires_without_lock(GuardedCounter& c) { c.locked_bump(); }

}  // namespace hmis_lint_fixture
#endif  // HMIS_LINT_FIXTURE
