#include "hmis/core/coloring.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "hmis/hypergraph/builder.hpp"
#include "hmis/hypergraph/generators.hpp"

namespace {

using namespace hmis;
using core::ColoringOptions;
using core::is_strong_coloring;
using core::strong_coloring;

TEST(Coloring, NoEdgesOneColor) {
  const auto h = make_hypergraph(10, {});
  const auto c = strong_coloring(h);
  ASSERT_TRUE(c.success);
  EXPECT_EQ(c.num_colors, 1);
  EXPECT_TRUE(is_strong_coloring(h, c.color));
}

TEST(Coloring, SingleEdgeNeedsTwoColorsAtMost) {
  const auto h = make_hypergraph(3, {{0, 1, 2}});
  const auto c = strong_coloring(h);
  ASSERT_TRUE(c.success);
  EXPECT_LE(c.num_colors, 2);
  EXPECT_TRUE(is_strong_coloring(h, c.color));
}

TEST(Coloring, SingletonEdgesAreVacuous) {
  // Size-1 edges cannot be "monochromatic" meaningfully; one color works.
  const auto h = make_hypergraph(4, {{0}, {2}});
  const auto c = strong_coloring(h);
  ASSERT_TRUE(c.success);
  EXPECT_EQ(c.num_colors, 1);
  EXPECT_TRUE(is_strong_coloring(h, c.color));
}

TEST(Coloring, GraphCaseMatchesProperColoringBound) {
  // On a path graph, iterated MIS needs at most ~O(log) colors; property
  // coloring of a path needs 2.  Any valid strong coloring is accepted,
  // but it must use few colors.
  const auto h = gen::path_graph(100);
  const auto c = strong_coloring(h);
  ASSERT_TRUE(c.success);
  EXPECT_TRUE(is_strong_coloring(h, c.color));
  EXPECT_LE(c.num_colors, 6);
}

TEST(Coloring, RandomHypergraphsAcrossAlgorithms) {
  const auto h = gen::uniform_random(400, 1200, 3, 5);
  for (const auto a : {core::Algorithm::PermutationMIS, core::Algorithm::BL,
                       core::Algorithm::Greedy}) {
    ColoringOptions opt;
    opt.algorithm = a;
    opt.seed = 5;
    const auto c = strong_coloring(h, opt);
    ASSERT_TRUE(c.success) << core::algorithm_name(a);
    EXPECT_TRUE(is_strong_coloring(h, c.color)) << core::algorithm_name(a);
    EXPECT_GE(c.num_colors, 2);
    EXPECT_LE(c.num_colors, 12);
  }
}

TEST(Coloring, EveryVertexColored) {
  const auto h = gen::mixed_arity(300, 600, 2, 5, 7);
  const auto c = strong_coloring(h);
  ASSERT_TRUE(c.success);
  for (const int col : c.color) {
    EXPECT_GE(col, 0);
    EXPECT_LT(col, c.num_colors);
  }
}

TEST(Coloring, ValidatorRejectsBadColorings) {
  const auto h = make_hypergraph(3, {{0, 1, 2}});
  EXPECT_FALSE(is_strong_coloring(h, {0, 0, 0}));  // monochromatic
  EXPECT_FALSE(is_strong_coloring(h, {0, 1}));     // wrong size
  EXPECT_FALSE(is_strong_coloring(h, {0, -1, 1})); // uncolored vertex
  EXPECT_TRUE(is_strong_coloring(h, {0, 0, 1}));
}

TEST(Coloring, DeterministicForSeed) {
  const auto h = gen::uniform_random(200, 500, 3, 11);
  ColoringOptions opt;
  opt.seed = 99;
  const auto a = strong_coloring(h, opt);
  const auto b = strong_coloring(h, opt);
  ASSERT_TRUE(a.success);
  EXPECT_EQ(a.color, b.color);
  EXPECT_EQ(a.num_colors, b.num_colors);
}

TEST(Coloring, InstancesRequiringManyColors) {
  // Interval windows force ~window colors in the worst case for strong
  // coloring... actually an edge of size w only forbids all-equal, so 2
  // colors always suffice combinatorially — but iterated MIS may use more.
  const auto h = gen::interval(120, 4, 1);
  const auto c = strong_coloring(h);
  ASSERT_TRUE(c.success);
  EXPECT_TRUE(is_strong_coloring(h, c.color));
  EXPECT_LE(c.num_colors, 10);
}

}  // namespace
