// Parallel determinism contract: SBL (and the BL core it drives) must return
// the *bit-identical* independent set for the same seed regardless of the
// thread count.  All per-vertex randomness is counter-based (keyed by
// (stream, vertex)) and every reduction combines partials in chunk index
// order, so 1, 2, and 8 threads are required to agree exactly.
//
// Also covers the chunk planner's edge cases (n = 0, n < grain,
// n >> threads * grain) — the decomposition is the other half of the
// determinism argument.
#include <gtest/gtest.h>

#include "hmis/algo/bl.hpp"
#include "hmis/core/mis.hpp"
#include "hmis/core/sbl.hpp"
#include "hmis/hypergraph/generators.hpp"
#include "hmis/hypergraph/validate.hpp"
#include "hmis/par/parallel_for.hpp"
#include "hmis/par/thread_pool.hpp"

namespace {

using namespace hmis;

std::vector<VertexId> run_sbl_with_pool(const Hypergraph& h,
                                        std::uint64_t seed,
                                        par::ThreadPool* pool) {
  core::SblOptions opt;
  opt.seed = seed;
  opt.pool = pool;
  const auto r = core::sbl(h, opt);
  EXPECT_TRUE(r.success) << r.failure_reason;
  return r.independent_set;
}

std::vector<VertexId> run_bl_with_pool(const Hypergraph& h,
                                       std::uint64_t seed,
                                       par::ThreadPool* pool) {
  algo::BlOptions opt;
  opt.seed = seed;
  opt.pool = pool;
  const auto r = algo::bl(h, opt);
  EXPECT_TRUE(r.success) << r.failure_reason;
  return r.independent_set;
}

TEST(SblParallel, BitIdenticalAcross1_2_8Threads) {
  par::ThreadPool p1(1), p2(2), p8(8);
  for (const std::uint64_t seed : {1u, 7u, 42u}) {
    // High-dimension SBL-regime instance: exercises the sampled rounds, the
    // inner BL, and the base case.
    const Hypergraph h = gen::sbl_regime(1200, 0.6, 12, seed);
    const auto set1 = run_sbl_with_pool(h, seed, &p1);
    const auto set2 = run_sbl_with_pool(h, seed, &p2);
    const auto set8 = run_sbl_with_pool(h, seed, &p8);
    EXPECT_EQ(set1, set2) << "seed " << seed;
    EXPECT_EQ(set1, set8) << "seed " << seed;
    EXPECT_TRUE(
        verify_mis(h, std::span<const VertexId>(set1.data(), set1.size()))
            .ok());
  }
}

TEST(SblParallel, BitIdenticalOnLowDimensionDispatch) {
  // Dimension <= d: Algorithm 1 line 3 dispatches straight to BL; the
  // parallel path must still be thread-count independent.
  par::ThreadPool p1(1), p2(2), p8(8);
  const Hypergraph h = gen::mixed_arity(900, 1800, 2, 5, 23);
  const auto set1 = run_sbl_with_pool(h, 23, &p1);
  const auto set2 = run_sbl_with_pool(h, 23, &p2);
  const auto set8 = run_sbl_with_pool(h, 23, &p8);
  EXPECT_EQ(set1, set2);
  EXPECT_EQ(set1, set8);
}

TEST(BlParallel, BitIdenticalAcross1_2_8Threads) {
  par::ThreadPool p1(1), p2(2), p8(8);
  for (const std::uint64_t seed : {3u, 19u}) {
    const Hypergraph h = gen::uniform_random(1500, 4500, 3, seed);
    const auto set1 = run_bl_with_pool(h, seed, &p1);
    const auto set2 = run_bl_with_pool(h, seed, &p2);
    const auto set8 = run_bl_with_pool(h, seed, &p8);
    EXPECT_EQ(set1, set2) << "seed " << seed;
    EXPECT_EQ(set1, set8) << "seed " << seed;
    EXPECT_TRUE(
        verify_mis(h, std::span<const VertexId>(set1.data(), set1.size()))
            .ok());
  }
}

TEST(SblParallel, FacadePoolPassThrough) {
  // find_mis's FindOptions::pool reaches the algorithm layer.
  par::ThreadPool p1(1), p8(8);
  const Hypergraph h = gen::sbl_regime(1000, 0.6, 12, 5);
  core::FindOptions o1;
  o1.seed = 5;
  o1.pool = &p1;
  core::FindOptions o8;
  o8.seed = 5;
  o8.pool = &p8;
  const auto r1 = core::find_mis(h, core::Algorithm::SBL, o1);
  const auto r8 = core::find_mis(h, core::Algorithm::SBL, o8);
  ASSERT_TRUE(r1.result.success && r8.result.success);
  EXPECT_EQ(r1.result.independent_set, r8.result.independent_set);
  EXPECT_TRUE(r1.verdict.ok());
}

// ---- Shard-count invariance of the full Result -----------------------------
// The shard plan (DESIGN.md §10) moves only locality: the ENTIRE Result —
// set, round counts, traces, modeled metrics — must compare equal at shard
// counts {1, 2, 7} and at auto resolution, through both SBL (which rebuilds
// a sharded residual per sampled round) and the BL core.  seconds is the
// one wall-clock field and is excluded.

void expect_same_stage(const algo::StageStats& a, const algo::StageStats& b,
                       const char* what) {
  EXPECT_EQ(a.stage, b.stage) << what;
  EXPECT_EQ(a.live_vertices, b.live_vertices) << what;
  EXPECT_EQ(a.live_edges, b.live_edges) << what;
  EXPECT_EQ(a.dimension, b.dimension) << what;
  EXPECT_EQ(a.delta, b.delta) << what;
  EXPECT_EQ(a.p, b.p) << what;
  EXPECT_EQ(a.marked, b.marked) << what;
  EXPECT_EQ(a.unmarked, b.unmarked) << what;
  EXPECT_EQ(a.added_blue, b.added_blue) << what;
  EXPECT_EQ(a.forced_red, b.forced_red) << what;
  EXPECT_EQ(a.edges_deleted, b.edges_deleted) << what;
  EXPECT_EQ(a.sampled, b.sampled) << what;
  EXPECT_EQ(a.sample_dimension, b.sample_dimension) << what;
  EXPECT_EQ(a.resamples, b.resamples) << what;
  EXPECT_EQ(a.inner_stages, b.inner_stages) << what;
}

void expect_same_result(const algo::Result& a, const algo::Result& b,
                        const char* what) {
  EXPECT_EQ(a.independent_set, b.independent_set) << what;
  EXPECT_EQ(a.success, b.success) << what;
  EXPECT_EQ(a.failure_reason, b.failure_reason) << what;
  EXPECT_EQ(a.rounds, b.rounds) << what;
  EXPECT_EQ(a.inner_stages, b.inner_stages) << what;
  EXPECT_EQ(a.resamples, b.resamples) << what;
  EXPECT_EQ(a.metrics.work, b.metrics.work) << what;
  EXPECT_EQ(a.metrics.depth, b.metrics.depth) << what;
  EXPECT_EQ(a.metrics.calls, b.metrics.calls) << what;
  ASSERT_EQ(a.trace.size(), b.trace.size()) << what;
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    expect_same_stage(a.trace[i], b.trace[i], what);
  }
}

TEST(SblParallel, FullResultEqualAcrossShardCounts) {
  par::ThreadPool p2(2), p8(8);
  const Hypergraph h = gen::sbl_regime(1000, 0.6, 12, 9);
  const auto run = [&](std::size_t shards, par::ThreadPool* pool) {
    core::SblOptions opt;
    opt.seed = 9;
    opt.pool = pool;
    opt.record_trace = true;
    opt.shards.shards = shards;
    return core::sbl(h, opt);
  };
  const algo::Result base = run(1, nullptr);  // serial, one shard
  ASSERT_TRUE(base.success) << base.failure_reason;
  expect_same_result(base, run(0, &p8), "auto shards, 8 threads");
  expect_same_result(base, run(2, &p2), "2 shards, 2 threads");
  expect_same_result(base, run(7, &p8), "7 shards, 8 threads");
  expect_same_result(base, run(7, nullptr), "7 shards, serial");
}

TEST(BlParallel, FullResultEqualAcrossShardCounts) {
  par::ThreadPool p2(2), p8(8);
  const Hypergraph h = gen::uniform_random(1400, 4200, 3, 11);
  const auto run = [&](std::size_t shards, par::ThreadPool* pool) {
    algo::BlOptions opt;
    opt.seed = 11;
    opt.pool = pool;
    opt.record_trace = true;
    opt.shards.shards = shards;
    return algo::bl(h, opt);
  };
  const algo::Result base = run(1, nullptr);
  ASSERT_TRUE(base.success) << base.failure_reason;
  expect_same_result(base, run(0, &p8), "auto shards, 8 threads");
  expect_same_result(base, run(2, &p2), "2 shards, 2 threads");
  expect_same_result(base, run(7, &p8), "7 shards, 8 threads");
  expect_same_result(base, run(7, nullptr), "7 shards, serial");
}

// ---- plan_chunks edge cases ------------------------------------------------

TEST(PlanChunks, EmptyRangeYieldsZeroChunks) {
  const auto plan = par::plan_chunks(0, 8);
  EXPECT_EQ(plan.chunks, 0u);
}

TEST(PlanChunks, BelowGrainStaysSerial) {
  // n < grain: a single chunk regardless of thread count.
  const auto plan = par::plan_chunks(par::kMinGrain - 1, 8);
  EXPECT_EQ(plan.chunks, 1u);
  EXPECT_EQ(plan.chunk_size, par::kMinGrain - 1);
}

TEST(PlanChunks, SingleElement) {
  const auto plan = par::plan_chunks(1, 16);
  EXPECT_EQ(plan.chunks, 1u);
  EXPECT_EQ(plan.chunk_size, 1u);
}

TEST(PlanChunks, HugeRangeCapsAtThreadCount) {
  // n >> threads * grain: exactly `threads` chunks covering the range.
  const std::size_t threads = 8;
  const std::size_t n = threads * par::kMinGrain * 100 + 37;
  const auto plan = par::plan_chunks(n, threads);
  EXPECT_EQ(plan.chunks, threads);
  EXPECT_GE(plan.chunks * plan.chunk_size, n);           // covers the range
  EXPECT_LT((plan.chunks - 1) * plan.chunk_size, n);     // no empty chunk
}

TEST(PlanChunks, GrainBoundedChunkCount) {
  // grain < n < threads * grain: chunk count is limited by the grain, not
  // the thread count, so tiny inputs don't shatter into tiny chunks.
  const std::size_t n = 3 * par::kMinGrain;
  const auto plan = par::plan_chunks(n, 16);
  EXPECT_EQ(plan.chunks, 3u);
  EXPECT_EQ(plan.chunk_size, par::kMinGrain);
}

TEST(PlanChunks, DecompositionIsPureFunctionOfInputs) {
  // Same (n, threads) => same plan, every time (no timing dependence).
  for (int i = 0; i < 3; ++i) {
    const auto a = par::plan_chunks(123456, 7);
    const auto b = par::plan_chunks(123456, 7);
    EXPECT_EQ(a.chunks, b.chunks);
    EXPECT_EQ(a.chunk_size, b.chunk_size);
  }
}

}  // namespace
