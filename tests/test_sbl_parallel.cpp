// Parallel determinism contract: SBL (and the BL core it drives) must return
// the *bit-identical* independent set for the same seed regardless of the
// thread count.  All per-vertex randomness is counter-based (keyed by
// (stream, vertex)) and every reduction combines partials in chunk index
// order, so 1, 2, and 8 threads are required to agree exactly.
//
// Also covers the chunk planner's edge cases (n = 0, n < grain,
// n >> threads * grain) — the decomposition is the other half of the
// determinism argument.
#include <gtest/gtest.h>

#include "hmis/algo/bl.hpp"
#include "hmis/core/mis.hpp"
#include "hmis/core/sbl.hpp"
#include "hmis/hypergraph/generators.hpp"
#include "hmis/hypergraph/validate.hpp"
#include "hmis/par/parallel_for.hpp"
#include "hmis/par/thread_pool.hpp"

namespace {

using namespace hmis;

std::vector<VertexId> run_sbl_with_pool(const Hypergraph& h,
                                        std::uint64_t seed,
                                        par::ThreadPool* pool) {
  core::SblOptions opt;
  opt.seed = seed;
  opt.pool = pool;
  const auto r = core::sbl(h, opt);
  EXPECT_TRUE(r.success) << r.failure_reason;
  return r.independent_set;
}

std::vector<VertexId> run_bl_with_pool(const Hypergraph& h,
                                       std::uint64_t seed,
                                       par::ThreadPool* pool) {
  algo::BlOptions opt;
  opt.seed = seed;
  opt.pool = pool;
  const auto r = algo::bl(h, opt);
  EXPECT_TRUE(r.success) << r.failure_reason;
  return r.independent_set;
}

TEST(SblParallel, BitIdenticalAcross1_2_8Threads) {
  par::ThreadPool p1(1), p2(2), p8(8);
  for (const std::uint64_t seed : {1u, 7u, 42u}) {
    // High-dimension SBL-regime instance: exercises the sampled rounds, the
    // inner BL, and the base case.
    const Hypergraph h = gen::sbl_regime(1200, 0.6, 12, seed);
    const auto set1 = run_sbl_with_pool(h, seed, &p1);
    const auto set2 = run_sbl_with_pool(h, seed, &p2);
    const auto set8 = run_sbl_with_pool(h, seed, &p8);
    EXPECT_EQ(set1, set2) << "seed " << seed;
    EXPECT_EQ(set1, set8) << "seed " << seed;
    EXPECT_TRUE(
        verify_mis(h, std::span<const VertexId>(set1.data(), set1.size()))
            .ok());
  }
}

TEST(SblParallel, BitIdenticalOnLowDimensionDispatch) {
  // Dimension <= d: Algorithm 1 line 3 dispatches straight to BL; the
  // parallel path must still be thread-count independent.
  par::ThreadPool p1(1), p2(2), p8(8);
  const Hypergraph h = gen::mixed_arity(900, 1800, 2, 5, 23);
  const auto set1 = run_sbl_with_pool(h, 23, &p1);
  const auto set2 = run_sbl_with_pool(h, 23, &p2);
  const auto set8 = run_sbl_with_pool(h, 23, &p8);
  EXPECT_EQ(set1, set2);
  EXPECT_EQ(set1, set8);
}

TEST(BlParallel, BitIdenticalAcross1_2_8Threads) {
  par::ThreadPool p1(1), p2(2), p8(8);
  for (const std::uint64_t seed : {3u, 19u}) {
    const Hypergraph h = gen::uniform_random(1500, 4500, 3, seed);
    const auto set1 = run_bl_with_pool(h, seed, &p1);
    const auto set2 = run_bl_with_pool(h, seed, &p2);
    const auto set8 = run_bl_with_pool(h, seed, &p8);
    EXPECT_EQ(set1, set2) << "seed " << seed;
    EXPECT_EQ(set1, set8) << "seed " << seed;
    EXPECT_TRUE(
        verify_mis(h, std::span<const VertexId>(set1.data(), set1.size()))
            .ok());
  }
}

TEST(SblParallel, FacadePoolPassThrough) {
  // find_mis's FindOptions::pool reaches the algorithm layer.
  par::ThreadPool p1(1), p8(8);
  const Hypergraph h = gen::sbl_regime(1000, 0.6, 12, 5);
  core::FindOptions o1;
  o1.seed = 5;
  o1.pool = &p1;
  core::FindOptions o8;
  o8.seed = 5;
  o8.pool = &p8;
  const auto r1 = core::find_mis(h, core::Algorithm::SBL, o1);
  const auto r8 = core::find_mis(h, core::Algorithm::SBL, o8);
  ASSERT_TRUE(r1.result.success && r8.result.success);
  EXPECT_EQ(r1.result.independent_set, r8.result.independent_set);
  EXPECT_TRUE(r1.verdict.ok());
}

// ---- plan_chunks edge cases ------------------------------------------------

TEST(PlanChunks, EmptyRangeYieldsZeroChunks) {
  const auto plan = par::plan_chunks(0, 8);
  EXPECT_EQ(plan.chunks, 0u);
}

TEST(PlanChunks, BelowGrainStaysSerial) {
  // n < grain: a single chunk regardless of thread count.
  const auto plan = par::plan_chunks(par::kMinGrain - 1, 8);
  EXPECT_EQ(plan.chunks, 1u);
  EXPECT_EQ(plan.chunk_size, par::kMinGrain - 1);
}

TEST(PlanChunks, SingleElement) {
  const auto plan = par::plan_chunks(1, 16);
  EXPECT_EQ(plan.chunks, 1u);
  EXPECT_EQ(plan.chunk_size, 1u);
}

TEST(PlanChunks, HugeRangeCapsAtThreadCount) {
  // n >> threads * grain: exactly `threads` chunks covering the range.
  const std::size_t threads = 8;
  const std::size_t n = threads * par::kMinGrain * 100 + 37;
  const auto plan = par::plan_chunks(n, threads);
  EXPECT_EQ(plan.chunks, threads);
  EXPECT_GE(plan.chunks * plan.chunk_size, n);           // covers the range
  EXPECT_LT((plan.chunks - 1) * plan.chunk_size, n);     // no empty chunk
}

TEST(PlanChunks, GrainBoundedChunkCount) {
  // grain < n < threads * grain: chunk count is limited by the grain, not
  // the thread count, so tiny inputs don't shatter into tiny chunks.
  const std::size_t n = 3 * par::kMinGrain;
  const auto plan = par::plan_chunks(n, 16);
  EXPECT_EQ(plan.chunks, 3u);
  EXPECT_EQ(plan.chunk_size, par::kMinGrain);
}

TEST(PlanChunks, DecompositionIsPureFunctionOfInputs) {
  // Same (n, threads) => same plan, every time (no timing dependence).
  for (int i = 0; i < 3; ++i) {
    const auto a = par::plan_chunks(123456, 7);
    const auto b = par::plan_chunks(123456, 7);
    EXPECT_EQ(a.chunks, b.chunks);
    EXPECT_EQ(a.chunk_size, b.chunk_size);
  }
}

}  // namespace
