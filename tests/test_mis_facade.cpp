#include "hmis/core/mis.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string_view>

#include "hmis/hypergraph/builder.hpp"
#include "hmis/hypergraph/generators.hpp"

namespace {

using namespace hmis;
using core::Algorithm;
using core::algorithm_name;
using core::choose_algorithm;
using core::find_mis;
using core::FindOptions;

TEST(Facade, NamesAreUniqueAndStable) {
  EXPECT_EQ(algorithm_name(Algorithm::SBL), "sbl");
  EXPECT_EQ(algorithm_name(Algorithm::BL), "bl");
  EXPECT_EQ(algorithm_name(Algorithm::KUW), "kuw");
  std::set<std::string_view> names;
  for (const Algorithm a : core::all_algorithms()) {
    EXPECT_TRUE(names.insert(algorithm_name(a)).second);
  }
  EXPECT_EQ(names.size(), 8u);
}

TEST(Facade, EveryAlgorithmProducesVerifiedMis) {
  // A linear, dimension-3 instance every algorithm (incl. LinearBL) accepts.
  const auto h = gen::linear_random(250, 200, 3, 5);
  for (const Algorithm a : core::all_algorithms()) {
    if (a == Algorithm::Luby) continue;  // needs dimension <= 2
    FindOptions opt;
    opt.seed = 11;
    const auto run = find_mis(h, a, opt);
    ASSERT_TRUE(run.result.success) << algorithm_name(a);
    EXPECT_TRUE(run.verdict.ok()) << algorithm_name(a);
  }
}

TEST(Facade, LubyViaFacadeOnGraphs) {
  const auto h = gen::random_graph(200, 500, 3);
  const auto run = find_mis(h, Algorithm::Luby);
  ASSERT_TRUE(run.result.success);
  EXPECT_TRUE(run.verdict.ok());
}

TEST(Facade, AutoPicksLubyForGraphs) {
  const auto h = gen::random_graph(100, 200, 1);
  EXPECT_EQ(choose_algorithm(h), Algorithm::Luby);
  const auto run = find_mis(h, Algorithm::Auto);
  EXPECT_EQ(run.algorithm, Algorithm::Luby);
  EXPECT_TRUE(run.verdict.ok());
}

TEST(Facade, AutoPicksBlForSmallDimension) {
  const auto h = gen::uniform_random(1000, 2000, 3, 1);
  EXPECT_EQ(choose_algorithm(h), Algorithm::BL);
}

TEST(Facade, AutoPicksSblForLargeDimension) {
  const auto h = gen::mixed_arity(2000, 300, 2, 24, 1);
  EXPECT_EQ(choose_algorithm(h), Algorithm::SBL);
  const auto run = find_mis(h, Algorithm::Auto);
  EXPECT_EQ(run.algorithm, Algorithm::SBL);
  EXPECT_TRUE(run.verdict.ok());
}

TEST(Facade, VerifyCanBeDisabled) {
  const auto h = gen::uniform_random(100, 200, 3, 9);
  FindOptions opt;
  opt.verify = false;
  const auto run = find_mis(h, Algorithm::Greedy, opt);
  EXPECT_TRUE(run.result.success);
  // Verdict left default-initialized.
  EXPECT_FALSE(run.verdict.independent);
  EXPECT_FALSE(run.verdict.maximal);
}

TEST(Facade, SeedsPropagate) {
  const auto h = gen::mixed_arity(400, 800, 2, 4, 13);
  FindOptions a, b;
  a.seed = 1;
  b.seed = 2;
  const auto ra = find_mis(h, Algorithm::BL, a);
  const auto rb = find_mis(h, Algorithm::BL, b);
  EXPECT_NE(ra.result.independent_set, rb.result.independent_set);
  const auto ra2 = find_mis(h, Algorithm::BL, a);
  EXPECT_EQ(ra.result.independent_set, ra2.result.independent_set);
}

TEST(Facade, SblOptionsPassThrough) {
  const auto h = gen::mixed_arity(1200, 250, 2, 16, 15);
  FindOptions opt;
  opt.sbl.base_case = core::SblBaseCase::Greedy;
  opt.sbl.record_trace = false;
  const auto run = find_mis(h, Algorithm::SBL, opt);
  ASSERT_TRUE(run.result.success);
  EXPECT_TRUE(run.verdict.ok());
}

}  // namespace
