// Parallel-equivalence harness for the MutableHypergraph mutation core.
//
// PR-1 established the determinism contract for the algorithms (counter RNG,
// fixed chunk decomposition, index-order combination); this suite locks the
// same contract onto the residual-graph maintenance itself: every mutated or
// queried quantity — colors, live counts, degrees, edge contents, induced
// snapshots, dedupe removal counts, cascade exclusions — must be
// bit-identical between the serial fallback (no pool) and pools of 1, 2 and
// 8 threads (HMIS_TEST_THREADS overrides the widest pool, so sanitizer CI
// can crank it).
//
// Mutation scripts are recorded once against a serial reference instance and
// replayed verbatim on every variant, so a divergence is attributable to the
// kernel under test, never to the script generator.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "test_reference_model.hpp"
#include "test_threads.hpp"

#include "hmis/hypergraph/builder.hpp"
#include "hmis/hypergraph/generators.hpp"
#include "hmis/hypergraph/hypergraph.hpp"
#include "hmis/hypergraph/mutable_hypergraph.hpp"
#include "hmis/par/parallel_for.hpp"
#include "hmis/par/thread_pool.hpp"
#include "hmis/util/rng.hpp"

namespace {

using namespace hmis;

// ---- Deep observable state -------------------------------------------------

struct Observed {
  std::vector<Color> colors;
  std::size_t live_vertex_count = 0;
  std::size_t live_edge_count = 0;
  std::vector<VertexId> live_vertices;
  std::vector<EdgeId> live_edges;
  std::vector<VertexId> blue;
  std::vector<VertexId> isolated;
  std::vector<std::uint32_t> degrees;
  std::vector<VertexList> live_edge_contents;
  std::size_t max_size = 0;
  std::size_t total_size = 0;

  friend bool operator==(const Observed&, const Observed&) = default;
};

Observed observe(const MutableHypergraph& mh) {
  Observed o;
  const std::size_t n = mh.num_original_vertices();
  o.colors.reserve(n);
  o.degrees.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    o.colors.push_back(mh.color(v));
    o.degrees.push_back(
        static_cast<std::uint32_t>(mh.vertex_live(v) ? mh.live_degree(v) : 0));
  }
  o.live_vertex_count = mh.num_live_vertices();
  o.live_edge_count = mh.num_live_edges();
  o.live_vertices = mh.live_vertices();
  o.live_edges = mh.live_edges();
  o.blue = mh.blue_vertices();
  o.isolated = mh.isolated_live_vertices();
  for (const EdgeId e : o.live_edges) {
    const auto verts = mh.edge(e);
    o.live_edge_contents.emplace_back(verts.begin(), verts.end());
  }
  o.max_size = mh.max_live_edge_size();
  o.total_size = mh.total_live_edge_size();
  return o;
}

void expect_same_graph(const Hypergraph& a, const Hypergraph& b,
                       const char* what) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices()) << what;
  ASSERT_EQ(a.num_edges(), b.num_edges()) << what;
  EXPECT_EQ(a.dimension(), b.dimension()) << what;
  EXPECT_EQ(a.min_edge_size(), b.min_edge_size()) << what;
  EXPECT_EQ(a.edges_as_lists(), b.edges_as_lists()) << what;
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    const auto ea = a.edges_of(v);
    const auto eb = b.edges_of(v);
    ASSERT_TRUE(std::equal(ea.begin(), ea.end(), eb.begin(), eb.end()))
        << what << ": incidence list of vertex " << v;
  }
}

void expect_same_induced(const MutableHypergraph::Induced& a,
                         const MutableHypergraph::Induced& b,
                         const char* what) {
  EXPECT_EQ(a.to_original, b.to_original) << what;
  expect_same_graph(a.graph, b.graph, what);
}

// ---- Recorded mutation scripts ---------------------------------------------

enum class OpKind { Blue, Red, Cascade, Dedupe };

struct Op {
  OpKind kind;
  std::vector<VertexId> vs;  // Blue/Red payload
};

struct OpResult {
  std::size_t removed = 0;        // Dedupe
  std::vector<VertexId> reds;     // Cascade

  friend bool operator==(const OpResult&, const OpResult&) = default;
};

OpResult apply(MutableHypergraph& mh, const Op& op) {
  OpResult r;
  switch (op.kind) {
    case OpKind::Blue:
      mh.color_blue(std::span<const VertexId>(op.vs.data(), op.vs.size()));
      break;
    case OpKind::Red:
      mh.color_red(std::span<const VertexId>(op.vs.data(), op.vs.size()));
      break;
    case OpKind::Cascade:
      r.reds = mh.singleton_cascade();
      break;
    case OpKind::Dedupe:
      r.removed = mh.dedupe_and_minimalize();
      break;
  }
  return r;
}

/// True if coloring `v` blue on top of the already-picked blues `in_s` would
/// turn some live edge fully blue (i.e. empty it).
bool completes_edge(const MutableHypergraph& mh,
                    const std::vector<std::uint8_t>& in_s, VertexId v) {
  for (const EdgeId e : mh.live_edges()) {
    bool all = true;
    for (const VertexId u : mh.edge(e)) {
      if (u != v && !in_s[u]) {
        all = false;
        break;
      }
    }
    if (all) return true;  // every member is v or already picked
  }
  return false;
}

/// Record a random-but-valid mutation script by driving a serial reference
/// copy.  Batches are sized to push the mutation kernels over the parallel
/// grain on the larger instances.
std::vector<Op> make_script(const Hypergraph& h, std::uint64_t seed,
                            int steps) {
  MutableHypergraph ref(h);
  util::Xoshiro256ss rng(seed);
  std::vector<Op> ops;
  for (int s = 0; s < steps && ref.num_live_vertices() > 0; ++s) {
    Op op;
    const auto kind = rng.below(5);
    if (kind <= 1) {  // weight batched coloring higher than cleanup
      const auto live = ref.live_vertices();
      const std::size_t batch =
          1 + rng.below(std::max<std::size_t>(live.size() / 4, 1));
      if (kind == 0) {
        op.kind = OpKind::Blue;
        std::vector<std::uint8_t> in_s(ref.num_original_vertices(), 0);
        for (std::size_t t = 0; t < batch; ++t) {
          const VertexId v = live[rng.below(live.size())];
          if (in_s[v] || completes_edge(ref, in_s, v)) continue;
          in_s[v] = 1;
          op.vs.push_back(v);
        }
      } else {
        op.kind = OpKind::Red;
        std::vector<std::uint8_t> in_s(ref.num_original_vertices(), 0);
        for (std::size_t t = 0; t < batch; ++t) {
          const VertexId v = live[rng.below(live.size())];
          if (in_s[v]) continue;
          in_s[v] = 1;
          op.vs.push_back(v);
        }
      }
      if (op.vs.empty()) continue;
    } else if (kind == 2) {
      op.kind = OpKind::Cascade;
    } else if (kind == 3) {
      op.kind = OpKind::Dedupe;
    } else {
      // Cascade-then-dedupe is the BL cleanup pattern; exercise the
      // shrink-then-delete interleaving explicitly.
      op.kind = OpKind::Cascade;
      apply(ref, op);
      ops.push_back(op);
      op = Op{OpKind::Dedupe, {}};
    }
    apply(ref, op);
    ops.push_back(op);
  }
  return ops;
}

// ---- The equivalence suite -------------------------------------------------

class MutableHypergraphParallel : public ::testing::Test {
 protected:
  void run_script_equivalence(const Hypergraph& h, std::uint64_t seed,
                              int steps) {
    par::ThreadPool p1(1), p2(2), pn(hmis_test::max_test_threads());
    const std::vector<Op> ops = make_script(h, seed, steps);

    std::vector<MutableHypergraph> variants;
    variants.reserve(4);
    variants.emplace_back(h);  // serial fallback
    variants.emplace_back(h, &p1);
    variants.emplace_back(h, &p2);
    variants.emplace_back(h, &pn);

    const char* names[] = {"serial", "pool(1)", "pool(2)", "pool(max)"};
    for (std::size_t step = 0; step < ops.size(); ++step) {
      const OpResult want = apply(variants[0], ops[step]);
      const Observed base = observe(variants[0]);
      const auto snap = variants[0].live_snapshot();
      for (std::size_t i = 1; i < variants.size(); ++i) {
        const OpResult got = apply(variants[i], ops[step]);
        EXPECT_EQ(want, got)
            << names[i] << " diverged on op " << step << " (seed " << seed
            << ")";
        ASSERT_EQ(base, observe(variants[i]))
            << names[i] << " state diverged after op " << step << " (seed "
            << seed << ")";
        expect_same_induced(snap, variants[i].live_snapshot(), names[i]);
      }
    }
  }
};

TEST_F(MutableHypergraphParallel, SmallMixedArityScripts) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    run_script_equivalence(gen::mixed_arity(80, 160, 2, 5, seed), seed * 7919,
                           30);
  }
}

TEST_F(MutableHypergraphParallel, LargeInstanceHitsParallelKernels) {
  // n and m above par::kMinGrain so every scan/mutation takes the parallel
  // path on the pooled variants (the serial variant stays the reference).
  for (const std::uint64_t seed : {5u, 11u}) {
    run_script_equivalence(gen::mixed_arity(1500, 3000, 2, 6, seed),
                           seed * 104729, 12);
  }
}

TEST_F(MutableHypergraphParallel, UniformInstanceScripts) {
  run_script_equivalence(gen::uniform_random(2000, 6000, 3, 23), 23 * 31, 10);
}

TEST_F(MutableHypergraphParallel, InducedSubgraphEquivalenceOnRandomKeeps) {
  par::ThreadPool p1(1), p2(2), pn(hmis_test::max_test_threads());
  const Hypergraph h = gen::mixed_arity(1400, 2800, 2, 7, 41);
  MutableHypergraph serial(h);
  MutableHypergraph m1(h, &p1), m2(h, &p2), mn(h, &pn);

  // Shared mutations first, so snapshots see shrunken/deleted edges.
  const auto ops = make_script(h, 97, 6);
  for (const auto& op : ops) {
    apply(serial, op);
    apply(m1, op);
    apply(m2, op);
    apply(mn, op);
  }

  util::Xoshiro256ss rng(4242);
  for (int trial = 0; trial < 6; ++trial) {
    util::DynamicBitset keep(h.num_vertices());
    // Keep ~1/2, ~1/4, ... of the vertices in different trials.
    const std::uint64_t density = 1 + rng.below(4);
    for (VertexId v = 0; v < h.num_vertices(); ++v) {
      if (rng.below(density + 1) == 0) keep.set(v);
    }
    const auto want = serial.induced_subgraph(keep);
    expect_same_induced(want, m1.induced_subgraph(keep), "pool(1)");
    expect_same_induced(want, m2.induced_subgraph(keep), "pool(2)");
    expect_same_induced(want, mn.induced_subgraph(keep), "pool(max)");
  }
}

TEST_F(MutableHypergraphParallel, DedupeEquivalenceOnCraftedDuplicates) {
  // Duplicates and strict supersets planted at scale (above the parallel
  // grain): the removal count and the surviving edge-id set must match the
  // serial answer at every pool width.
  util::Xoshiro256ss rng(777);
  HypergraphBuilder b(600);
  b.dedupe_edges(false);
  std::vector<VertexList> base;
  for (int i = 0; i < 700; ++i) {
    VertexList e;
    const std::size_t arity = 2 + rng.below(4);
    while (e.size() < arity) {
      const VertexId v = static_cast<VertexId>(rng.below(600));
      if (std::find(e.begin(), e.end(), v) == e.end()) e.push_back(v);
    }
    std::sort(e.begin(), e.end());
    base.push_back(e);
    b.add_edge(std::span<const VertexId>(e.data(), e.size()));
  }
  for (int i = 0; i < 400; ++i) {
    // Half exact duplicates, half strict supersets of an existing edge.
    VertexList e = base[rng.below(base.size())];
    if (i % 2 == 0) {
      VertexId v = static_cast<VertexId>(rng.below(600));
      while (std::find(e.begin(), e.end(), v) != e.end()) {
        v = static_cast<VertexId>(rng.below(600));
      }
      e.push_back(v);
      std::sort(e.begin(), e.end());
    }
    b.add_edge(std::span<const VertexId>(e.data(), e.size()));
  }
  const Hypergraph h = b.build();
  ASSERT_GE(h.num_edges(), par::kMinGrain);  // parallel flavour engages

  par::ThreadPool p1(1), p2(2), pn(hmis_test::max_test_threads());
  MutableHypergraph serial(h);
  MutableHypergraph m1(h, &p1), m2(h, &p2), mn(h, &pn);
  const std::size_t want = serial.dedupe_and_minimalize();
  EXPECT_EQ(want, m1.dedupe_and_minimalize());
  EXPECT_EQ(want, m2.dedupe_and_minimalize());
  EXPECT_EQ(want, mn.dedupe_and_minimalize());
  const Observed base_state = observe(serial);
  EXPECT_EQ(base_state, observe(m1));
  EXPECT_EQ(base_state, observe(m2));
  EXPECT_EQ(base_state, observe(mn));
}

TEST_F(MutableHypergraphParallel, ConstructionStateIdentical) {
  par::ThreadPool pn(hmis_test::max_test_threads());
  const Hypergraph h = gen::mixed_arity(1300, 2600, 2, 8, 3);
  MutableHypergraph serial(h);
  MutableHypergraph pooled(h, &pn);
  EXPECT_EQ(observe(serial), observe(pooled));
}

// ---- Reference model vs the slab at every pool width -----------------------
// The vector-of-vectors model (test_reference_model.hpp) is the seed's
// semantics; the slab must match it element for element not just serially
// but through the parallel kernels at 1/2/max threads, under long
// interleaved mutation sequences — this pins the whole rewrite (slab
// compaction, incidence gather, singleton queue, debt-triggered sweeps)
// against first-principles behavior rather than against itself.

TEST_F(MutableHypergraphParallel, ReferenceModelLongInterleavedSmall) {
  for (const std::uint64_t seed : {7u, 23u}) {
    const Hypergraph h = gen::mixed_arity(150, 320, 2, 6, seed);
    par::ThreadPool p1(1), p2(2), pn(hmis_test::max_test_threads());
    MutableHypergraph serial(h);
    MutableHypergraph m1(h, &p1), m2(h, &p2), mn(h, &pn);
    hmis_test::run_model_property_script(
        h, {&serial, &m1, &m2, &mn},
        {"serial", "pool(1)", "pool(2)", "pool(max)"}, seed * 131, 50);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_F(MutableHypergraphParallel, ReferenceModelLongInterleavedLarge) {
  // Above the parallel grain, so the pooled variants exercise the hybrid
  // gather (sparse and dense regimes), the parallel compaction sweep, and
  // the parallel dedupe against the model.
  const Hypergraph h = gen::mixed_arity(1600, 3400, 2, 6, 29);
  par::ThreadPool p2(2), pn(hmis_test::max_test_threads());
  MutableHypergraph serial(h);
  MutableHypergraph m2(h, &p2), mn(h, &pn);
  hmis_test::run_model_property_script(
      h, {&serial, &m2, &mn}, {"serial", "pool(2)", "pool(max)"}, 4242, 14);
}

// ---- Shard matrix: counts {1, 2, 7} x threads {1, 2, max} ------------------
// The shard plan is the one internal degree of freedom the determinism
// contract does NOT fix bit-identically (sweep timing differs per plan), so
// this matrix pins the OBSERVABLE state of every (shards, threads) cell to
// the unsharded vector-of-vectors model after every op of an interleaved
// script — the full cross product, not just the pool-width diagonal the
// suites above cover implicitly.

TEST_F(MutableHypergraphParallel, ShardMatrixMatchesModelSmall) {
  const Hypergraph h = gen::mixed_arity(160, 340, 2, 6, 31);
  par::ThreadPool p1(1), p2(2), pn(hmis_test::max_test_threads());
  par::ThreadPool* pools[] = {&p1, &p2, &pn};
  const char* pool_names[] = {"1", "2", "max"};
  const std::size_t shard_counts[] = {1, 2, 7};

  std::vector<MutableHypergraph> variants;
  variants.reserve(10);
  std::vector<std::string> labels;
  labels.reserve(10);
  variants.emplace_back(h);  // unsharded serial reference
  labels.emplace_back("serial/unsharded");
  for (std::size_t p = 0; p < 3; ++p) {
    for (const std::size_t s : shard_counts) {
      variants.emplace_back(h, pools[p], ShardConfig{.shards = s});
      labels.emplace_back(std::string("pool(") + pool_names[p] + ")/shards(" +
                          std::to_string(s) + ")");
    }
  }
  std::vector<MutableHypergraph*> ptrs;
  std::vector<const char*> names;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    ptrs.push_back(&variants[i]);
    names.push_back(labels[i].c_str());
  }
  hmis_test::run_model_property_script(h, ptrs, names, 8675309, 40);
}

TEST_F(MutableHypergraphParallel, ShardMatrixMatchesModelLarge) {
  // Above the grain so the per-shard parallel kernels (fan-out gathers,
  // dense word-owned marking, per-shard sweeps) actually engage; the worst
  // mismatches (requested 7 shards vs re-derived count, ragged last shard)
  // are exercised by m = 3400 (stride 512, 7 shards).
  const Hypergraph h = gen::mixed_arity(1600, 3400, 2, 6, 53);
  par::ThreadPool p2(2), pn(hmis_test::max_test_threads());
  MutableHypergraph serial(h);
  MutableHypergraph a(h, &p2, ShardConfig{.shards = 2});
  MutableHypergraph b(h, &p2, ShardConfig{.shards = 7});
  MutableHypergraph c(h, &pn, ShardConfig{.shards = 1});
  MutableHypergraph d(h, &pn, ShardConfig{.shards = 7});
  EXPECT_EQ(b.shard_count(), 7u);
  hmis_test::run_model_property_script(
      h, {&serial, &a, &b, &c, &d},
      {"serial", "pool(2)/shards(2)", "pool(2)/shards(7)", "pool(max)/shards(1)",
       "pool(max)/shards(7)"},
      999331, 12);
}

TEST_F(MutableHypergraphParallel, ShardCountDefaultsToPoolWidth) {
  // Auto resolution (shards == 0, HMIS_SHARDS unset in the test env): the
  // plan takes the pool width; serial construction keeps one shard.
  // (plan_shards sees the same cached env, so the expectations stay valid
  // even under a CI rerun that exports HMIS_SHARDS.)
  const Hypergraph h = gen::mixed_arity(900, 2000, 2, 5, 61);
  MutableHypergraph serial(h);
  EXPECT_EQ(serial.shard_count(),
            plan_shards(h.num_edges(), ShardConfig{}, 1).count);
  if (env_shards() == 0) {
    EXPECT_EQ(serial.shard_count(), 1u);
  }
  par::ThreadPool p4(4);
  MutableHypergraph pooled(h, &p4);
  EXPECT_EQ(pooled.shard_count(),
            plan_shards(h.num_edges(), ShardConfig{}, 4).count);
  EXPECT_EQ(observe(serial), observe(pooled));
}

}  // namespace
