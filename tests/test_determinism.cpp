// Determinism contract (DESIGN.md §4): for a fixed seed, every algorithm's
// output is bit-identical regardless of thread count, because all random
// choices are counter-hashed on (seed, round, item) and reductions combine
// fixed chunk decompositions in index order.
#include <gtest/gtest.h>

#include "hmis/core/mis.hpp"
#include "hmis/hypergraph/generators.hpp"
#include "hmis/par/thread_pool.hpp"

namespace {

using namespace hmis;
using core::Algorithm;
using core::algorithm_name;

class DeterminismAcrossThreads : public ::testing::TestWithParam<Algorithm> {
 protected:
  void TearDown() override { par::set_global_threads(1); }
};

TEST_P(DeterminismAcrossThreads, SameResultFor1And4Threads) {
  const Algorithm a = GetParam();
  const auto h = gen::mixed_arity(600, 1200, 2, 5, 77);
  core::FindOptions opt;
  opt.seed = 42;

  par::set_global_threads(1);
  const auto r1 = core::find_mis(h, a, opt);
  par::set_global_threads(4);
  const auto r4 = core::find_mis(h, a, opt);

  ASSERT_TRUE(r1.result.success);
  ASSERT_TRUE(r4.result.success);
  EXPECT_EQ(r1.result.independent_set, r4.result.independent_set)
      << algorithm_name(a) << " differs across thread counts";
  EXPECT_EQ(r1.result.rounds, r4.result.rounds);
}

std::string name_of(const ::testing::TestParamInfo<Algorithm>& info) {
  std::string s(algorithm_name(info.param));
  for (auto& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(AllParallelAlgorithms, DeterminismAcrossThreads,
                         ::testing::Values(Algorithm::BL, Algorithm::KUW,
                                           Algorithm::SBL,
                                           Algorithm::PermutationMIS),
                         name_of);

TEST(Determinism, RepeatedRunsIdentical) {
  const auto h = gen::sbl_regime(1500, 0.6, 14, 5);
  core::FindOptions opt;
  opt.seed = 123;
  const auto a = core::find_mis(h, Algorithm::SBL, opt);
  const auto b = core::find_mis(h, Algorithm::SBL, opt);
  const auto c = core::find_mis(h, Algorithm::SBL, opt);
  EXPECT_EQ(a.result.independent_set, b.result.independent_set);
  EXPECT_EQ(b.result.independent_set, c.result.independent_set);
}

TEST(Determinism, GeneratorsAreSeedDeterministic) {
  for (int i = 0; i < 3; ++i) {
    const auto a = gen::mixed_arity(200, 400, 2, 6, 99);
    const auto b = gen::mixed_arity(200, 400, 2, 6, 99);
    EXPECT_EQ(a.edges_as_lists(), b.edges_as_lists());
  }
}

TEST(Determinism, DifferentSeedsDifferentResults) {
  const auto h = gen::mixed_arity(500, 1000, 2, 5, 7);
  core::FindOptions a, b;
  a.seed = 1;
  b.seed = 2;
  const auto ra = core::find_mis(h, Algorithm::BL, a);
  const auto rb = core::find_mis(h, Algorithm::BL, b);
  EXPECT_NE(ra.result.independent_set, rb.result.independent_set);
}

}  // namespace
