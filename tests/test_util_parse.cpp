#include "hmis/util/parse.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace {

using hmis::util::parse_f64;
using hmis::util::parse_u64;

TEST(ParseU64, AcceptsCleanDecimals) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("7"), 7u);
  EXPECT_EQ(parse_u64("42"), 42u);
  EXPECT_EQ(parse_u64("18446744073709551615"),
            std::uint64_t(18446744073709551615ull));
}

TEST(ParseU64, RejectsEmptyAndWhitespace) {
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64(" "));
  EXPECT_FALSE(parse_u64(" 1"));
  EXPECT_FALSE(parse_u64("1 "));
  EXPECT_FALSE(parse_u64("\t3"));
}

TEST(ParseU64, RejectsSignsAndJunk) {
  // These are exactly the inputs bare strtoull silently swallowed:
  // `--threads foo` became threads=0 and serialized the run.
  EXPECT_FALSE(parse_u64("foo"));
  EXPECT_FALSE(parse_u64("-1"));
  EXPECT_FALSE(parse_u64("+1"));
  EXPECT_FALSE(parse_u64("12abc"));
  EXPECT_FALSE(parse_u64("0x10"));
  EXPECT_FALSE(parse_u64("1.5"));
  EXPECT_FALSE(parse_u64("1e3"));
}

TEST(ParseU64, RejectsOverflow) {
  EXPECT_FALSE(parse_u64("18446744073709551616"));  // 2^64
  EXPECT_FALSE(parse_u64("99999999999999999999999999"));
  // Leading zeros are fine — still the same base-10 value.
  EXPECT_EQ(parse_u64("007"), 7u);
}

TEST(ParseF64, AcceptsFloatLiterals) {
  EXPECT_EQ(parse_f64("0"), 0.0);
  EXPECT_EQ(parse_f64("2.5"), 2.5);
  EXPECT_EQ(parse_f64("-0.125"), -0.125);
  EXPECT_EQ(parse_f64("1e-3"), 1e-3);
  EXPECT_EQ(parse_f64(".5"), 0.5);
}

TEST(ParseF64, RejectsJunk) {
  EXPECT_FALSE(parse_f64(""));
  EXPECT_FALSE(parse_f64(" 1"));
  EXPECT_FALSE(parse_f64("1 "));
  EXPECT_FALSE(parse_f64("abc"));
  EXPECT_FALSE(parse_f64("1.2.3"));
  EXPECT_FALSE(parse_f64("--1"));
  EXPECT_FALSE(parse_f64("1f"));
}

TEST(ParseF64, RejectsNonFinite) {
  EXPECT_FALSE(parse_f64("inf"));
  EXPECT_FALSE(parse_f64("-inf"));
  EXPECT_FALSE(parse_f64("nan"));
  EXPECT_FALSE(parse_f64("INF"));
}

}  // namespace
