#include "hmis/hypergraph/degree_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hmis/hypergraph/builder.hpp"
#include "hmis/hypergraph/generators.hpp"

namespace {

using namespace hmis;

TEST(DegreeStats, EmptyHypergraph) {
  const auto stats = compute_degree_stats(HypergraphBuilder(5).build());
  EXPECT_EQ(stats.dimension, 0u);
  EXPECT_DOUBLE_EQ(stats.delta, 0.0);
  EXPECT_TRUE(stats.exact);
}

TEST(DegreeStats, SingleEdge) {
  // One edge {0,1,2}: every proper subset x has exactly one superedge.
  // d_j(x) = 1^{1/j} = 1 for all x, so Δ_3 = 1, Δ = 1.
  const auto h = make_hypergraph(3, {{0, 1, 2}});
  const auto stats = compute_degree_stats(h);
  EXPECT_EQ(stats.dimension, 3u);
  EXPECT_DOUBLE_EQ(stats.delta_i[3], 1.0);
  EXPECT_DOUBLE_EQ(stats.delta, 1.0);
  EXPECT_EQ(stats.max_count, 1u);
}

TEST(DegreeStats, StarOfTriangles) {
  // k edges of size 3 all containing vertex 0 (otherwise disjoint):
  // N_2({0}) = k, so d_2({0}) = sqrt(k) and Δ_3 = sqrt(k) (pairs have
  // count 1).
  const std::size_t k = 9;
  HypergraphBuilder b(1 + 2 * k);
  for (std::size_t i = 0; i < k; ++i) {
    b.add_edge({0, static_cast<VertexId>(1 + 2 * i),
                static_cast<VertexId>(2 + 2 * i)});
  }
  const auto stats = compute_degree_stats(b.build());
  EXPECT_EQ(stats.dimension, 3u);
  EXPECT_NEAR(stats.delta_i[3], 3.0, 1e-9);  // sqrt(9)
  EXPECT_NEAR(stats.delta, 3.0, 1e-9);
  EXPECT_EQ(stats.max_count, 9u);
}

TEST(DegreeStats, PairDegreeDominates) {
  // Edges {0,1,x} for x in 2..11: the PAIR {0,1} has N_1 = 10, d_1 = 10,
  // while singletons have d_2 = sqrt(10) ≈ 3.16.  Δ must see the pair.
  HypergraphBuilder b(12);
  for (VertexId x = 2; x < 12; ++x) b.add_edge({0, 1, x});
  const auto stats = compute_degree_stats(b.build());
  EXPECT_NEAR(stats.delta, 10.0, 1e-9);
  EXPECT_EQ(stats.max_count, 10u);
}

TEST(DegreeStats, MixedDimensionsTrackPerSizeDeltas) {
  // Size-2 edges around 0: N_1({0}) among size-2 edges = 3 -> Δ_2 = 3.
  // One size-4 edge -> Δ_4 = 1.
  const auto h =
      make_hypergraph(8, {{0, 1}, {0, 2}, {0, 3}, {4, 5, 6, 7}});
  const auto stats = compute_degree_stats(h);
  EXPECT_EQ(stats.dimension, 4u);
  EXPECT_NEAR(stats.delta_i[2], 3.0, 1e-9);
  EXPECT_NEAR(stats.delta_i[4], 1.0, 1e-9);
  EXPECT_NEAR(stats.delta, 3.0, 1e-9);
}

TEST(DegreeStats, SingletonEdgesDontCrash) {
  const auto h = make_hypergraph(3, {{0}, {1, 2}});
  const auto stats = compute_degree_stats(h);
  EXPECT_EQ(stats.dimension, 2u);
  EXPECT_NEAR(stats.delta, 1.0, 1e-9);
}

TEST(DegreeStats, FallbackModeLowerBounds) {
  // Force the singleton fallback via a tiny budget and compare: fallback
  // delta <= exact delta.
  const auto h = gen::uniform_random(40, 120, 4, 5);
  DegreeStatsOptions exact_opt;
  const auto exact = compute_degree_stats(h, exact_opt);
  DegreeStatsOptions approx_opt;
  approx_opt.enum_budget = 10;  // forces fallback
  const auto approx = compute_degree_stats(h, approx_opt);
  EXPECT_TRUE(exact.exact);
  EXPECT_FALSE(approx.exact);
  EXPECT_LE(approx.delta, exact.delta + 1e-9);
  EXPECT_GT(approx.delta, 0.0);
}

TEST(DegreeStats, LargeEdgeTriggersFallback) {
  HypergraphBuilder b(40);
  VertexList big;
  for (VertexId v = 0; v < 24; ++v) big.push_back(v);
  b.add_edge(std::span<const VertexId>(big.data(), big.size()));
  DegreeStatsOptions opt;
  opt.max_enum_edge_size = 16;
  const auto stats = compute_degree_stats(b.build(), opt);
  EXPECT_FALSE(stats.exact);
  EXPECT_EQ(stats.dimension, 24u);
}

TEST(NeighborhoodCounts, MatchesManualCount) {
  const auto h = make_hypergraph(
      6, {{0, 1}, {0, 1, 2}, {0, 1, 3}, {0, 1, 2, 3}, {2, 3}});
  const auto lists = h.edges_as_lists();
  const auto counts = neighborhood_counts(
      std::span<const VertexList>(lists.data(), lists.size()), {0, 1});
  // j=0: edge {0,1} itself; j=1: {0,1,2},{0,1,3}; j=2: {0,1,2,3}.
  ASSERT_GE(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(NormalizedDegree, Definition) {
  EXPECT_DOUBLE_EQ(normalized_degree(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(normalized_degree(8, 1), 8.0);
  EXPECT_NEAR(normalized_degree(8, 3), 2.0, 1e-12);  // 8^{1/3}
}

TEST(KelsenPotentials, MonotoneStructureInLogSpace) {
  // log2(v_i) >= log2(Δ_i) and log2(v_i) >= f(i)·log2(log n) + log2(v_{i+1})
  // by construction.
  const auto h = gen::mixed_arity(200, 300, 2, 5, 3);
  const auto stats = compute_degree_stats(h);
  std::vector<double> log_t;
  const auto v = kelsen_potentials_log2(stats, 200.0, &log_t);
  ASSERT_EQ(v.size(), stats.dimension + 1);
  for (std::size_t i = 2; i <= stats.dimension; ++i) {
    if (stats.delta_i[i] > 0.0) {
      EXPECT_GE(v[i] + 1e-9, std::log2(stats.delta_i[i])) << i;
    }
  }
  for (std::size_t i = 2; i < stats.dimension; ++i) {
    EXPECT_GE(v[i] + 1e-9, v[i + 1]) << i;  // log-scale offsets are >= 0
  }
  // Thresholds log2(T_j) decrease in j, starting at log2(v_2).
  ASSERT_EQ(log_t.size(), stats.dimension + 1);
  EXPECT_NEAR(log_t[2], v[2], 1e-9);
  for (std::size_t j = 3; j <= stats.dimension; ++j) {
    EXPECT_LE(log_t[j], log_t[j - 1] + 1e-9);
  }
  // Everything is finite (this was the motivation for log space).
  for (std::size_t i = 2; i <= stats.dimension; ++i) {
    EXPECT_TRUE(std::isfinite(v[i])) << i;
  }
}

TEST(KelsenPotentials, DimensionBelowTwo) {
  const auto h = make_hypergraph(3, {{0}});
  const auto stats = compute_degree_stats(h);
  std::vector<double> log_t;
  const auto v = kelsen_potentials_log2(stats, 3.0, &log_t);
  for (const double x : v) EXPECT_DOUBLE_EQ(x, 0.0);
}

}  // namespace
