// A vector-of-vectors reference model of the residual hypergraph — the
// seed's original MutableHypergraph data plane, reimplemented in the most
// obvious serial way.  The slab + incidence-index rewrite (DESIGN.md §7)
// must stay ELEMENT-FOR-ELEMENT equivalent to this: same colors, same live
// edge set, same per-edge contents in the same order, same degrees, same
// cascade outputs, same dedupe removal counts.  The property suites drive
// long interleaved mutation sequences through both and compare after every
// operation.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hmis/hypergraph/hypergraph.hpp"
#include "hmis/hypergraph/mutable_hypergraph.hpp"
#include "hmis/util/rng.hpp"

namespace hmis_test {

using namespace hmis;

class ReferenceResidual {
 public:
  explicit ReferenceResidual(const Hypergraph& h) : original_(&h) {
    const std::size_t n = h.num_vertices();
    const std::size_t m = h.num_edges();
    color_.assign(n, Color::None);
    live_vertex_count_ = n;
    edges_.resize(m);
    for (EdgeId e = 0; e < m; ++e) {
      const auto verts = h.edge(e);
      edges_[e].assign(verts.begin(), verts.end());
    }
    edge_live_.assign(m, 1);
    live_edge_count_ = m;
    degree_.resize(n);
    for (VertexId v = 0; v < n; ++v) {
      degree_[v] = static_cast<std::uint32_t>(h.degree(v));
    }
  }

  [[nodiscard]] std::size_t num_live_vertices() const {
    return live_vertex_count_;
  }
  [[nodiscard]] std::size_t num_live_edges() const { return live_edge_count_; }
  [[nodiscard]] Color color(VertexId v) const { return color_[v]; }
  [[nodiscard]] bool edge_live(EdgeId e) const { return edge_live_[e] != 0; }
  [[nodiscard]] const VertexList& edge(EdgeId e) const { return edges_[e]; }
  [[nodiscard]] std::size_t degree(VertexId v) const { return degree_[v]; }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

  [[nodiscard]] std::vector<VertexId> live_vertices() const {
    std::vector<VertexId> out;
    for (VertexId v = 0; v < color_.size(); ++v) {
      if (color_[v] == Color::None) out.push_back(v);
    }
    return out;
  }

  void color_blue(const std::vector<VertexId>& vs) {
    for (const VertexId v : vs) {
      color_[v] = Color::Blue;
      --live_vertex_count_;
    }
    for (const VertexId v : vs) {
      for (const EdgeId e : original_->edges_of(v)) {
        if (!edge_live_[e]) continue;
        auto& verts = edges_[e];
        const auto it = std::lower_bound(verts.begin(), verts.end(), v);
        if (it != verts.end() && *it == v) {
          verts.erase(it);
          --degree_[v];
        }
      }
    }
  }

  void color_red(const std::vector<VertexId>& vs) {
    for (const VertexId v : vs) {
      color_[v] = Color::Red;
      --live_vertex_count_;
    }
    for (const VertexId v : vs) {
      for (const EdgeId e : original_->edges_of(v)) {
        if (!edge_live_[e]) continue;
        if (std::binary_search(edges_[e].begin(), edges_[e].end(), v)) {
          delete_edge(e);
        }
      }
    }
  }

  std::vector<VertexId> singleton_cascade() {
    std::vector<VertexId> reds;
    for (EdgeId e = 0; e < edges_.size(); ++e) {
      if (edge_live_[e] && edges_[e].size() == 1) reds.push_back(edges_[e][0]);
    }
    std::sort(reds.begin(), reds.end());
    reds.erase(std::unique(reds.begin(), reds.end()), reds.end());
    if (!reds.empty()) color_red(reds);
    return reds;
  }

  std::size_t dedupe_and_minimalize() {
    std::vector<EdgeId> order;
    for (EdgeId e = 0; e < edges_.size(); ++e) {
      if (edge_live_[e]) order.push_back(e);
    }
    std::sort(order.begin(), order.end(), [this](EdgeId a, EdgeId b) {
      if (edges_[a].size() != edges_[b].size()) {
        return edges_[a].size() < edges_[b].size();
      }
      if (edges_[a] != edges_[b]) return edges_[a] < edges_[b];
      return a < b;
    });
    std::size_t removed = 0;
    std::vector<std::vector<EdgeId>> kept_incident(color_.size());
    EdgeId prev = kInvalidEdge;
    for (const EdgeId e : order) {
      const auto& verts = edges_[e];
      if (prev != kInvalidEdge && edges_[prev] == verts) {
        delete_edge(e);
        ++removed;
        continue;
      }
      bool dominated = false;
      for (const VertexId v : verts) {
        for (const EdgeId k : kept_incident[v]) {
          const auto& f = edges_[k];
          if (f.size() < verts.size() &&
              std::includes(verts.begin(), verts.end(), f.begin(), f.end())) {
            dominated = true;
            break;
          }
        }
        if (dominated) break;
      }
      if (dominated) {
        delete_edge(e);
        ++removed;
        continue;
      }
      for (const VertexId v : verts) kept_incident[v].push_back(e);
      prev = e;
    }
    return removed;
  }

  /// True if coloring v blue on top of the picks in `in_s` would empty a
  /// live edge (used by the script generators to keep blue batches valid).
  [[nodiscard]] bool completes_edge(const std::vector<std::uint8_t>& in_s,
                                    VertexId v) const {
    for (EdgeId e = 0; e < edges_.size(); ++e) {
      if (!edge_live_[e]) continue;
      bool all = true;
      for (const VertexId u : edges_[e]) {
        if (u != v && !in_s[u]) {
          all = false;
          break;
        }
      }
      if (all) return true;
    }
    return false;
  }

 private:
  void delete_edge(EdgeId e) {
    edge_live_[e] = 0;
    --live_edge_count_;
    for (const VertexId v : edges_[e]) --degree_[v];
  }

  const Hypergraph* original_;
  std::vector<Color> color_;
  std::vector<VertexList> edges_;
  std::vector<std::uint8_t> edge_live_;
  std::vector<std::uint32_t> degree_;
  std::size_t live_vertex_count_ = 0;
  std::size_t live_edge_count_ = 0;
};

/// Element-for-element comparison of the slab-backed MutableHypergraph
/// against the reference model: colors, liveness, edge contents and order,
/// degrees, counts, and the derived queries.
inline void expect_matches_model(const ReferenceResidual& model,
                                 const MutableHypergraph& mh,
                                 const char* what) {
  ASSERT_EQ(model.num_live_vertices(), mh.num_live_vertices()) << what;
  ASSERT_EQ(model.num_live_edges(), mh.num_live_edges()) << what;
  const std::size_t n = mh.num_original_vertices();
  for (VertexId v = 0; v < n; ++v) {
    ASSERT_EQ(model.color(v), mh.color(v)) << what << ": color of " << v;
    if (model.color(v) == Color::None) {
      ASSERT_EQ(model.degree(v), mh.live_degree(v))
          << what << ": degree of " << v;
    }
  }
  std::size_t max_size = 0;
  std::size_t total_size = 0;
  for (EdgeId e = 0; e < model.num_edges(); ++e) {
    ASSERT_EQ(model.edge_live(e), mh.edge_live(e))
        << what << ": liveness of edge " << e;
    if (!model.edge_live(e)) continue;
    const auto got = mh.edge(e);
    const auto& want = model.edge(e);
    ASSERT_TRUE(std::equal(want.begin(), want.end(), got.begin(), got.end()))
        << what << ": contents of edge " << e;
    ASSERT_EQ(want.size(), mh.edge_size(e)) << what << ": size of edge " << e;
    max_size = std::max(max_size, want.size());
    total_size += want.size();
  }
  EXPECT_EQ(max_size, mh.max_live_edge_size()) << what;
  EXPECT_EQ(total_size, mh.total_live_edge_size()) << what;
  EXPECT_EQ(model.live_vertices(), mh.live_vertices()) << what;
}

/// Drive `steps` random interleaved mutations through the model and every
/// hypergraph in `variants`, comparing all observable state after each op.
/// Batches are sized to push the kernels over the parallel grain on large
/// instances; all four op kinds interleave (the BL/KUW cleanup patterns).
inline void run_model_property_script(
    const Hypergraph& h, std::vector<MutableHypergraph*> variants,
    const std::vector<const char*>& names, std::uint64_t seed, int steps) {
  ReferenceResidual model(h);
  util::Xoshiro256ss rng(seed);
  for (int s = 0; s < steps && model.num_live_vertices() > 0; ++s) {
    const auto kind = rng.below(5);
    if (kind <= 1) {
      const auto live = model.live_vertices();
      const std::size_t batch =
          1 + rng.below(std::max<std::size_t>(live.size() / 3, 1));
      std::vector<VertexId> vs;
      std::vector<std::uint8_t> in_s(h.num_vertices(), 0);
      for (std::size_t t = 0; t < batch; ++t) {
        const VertexId v = live[rng.below(live.size())];
        if (in_s[v]) continue;
        if (kind == 0 && model.completes_edge(in_s, v)) continue;
        in_s[v] = 1;
        vs.push_back(v);
      }
      if (vs.empty()) continue;
      if (kind == 0) {
        model.color_blue(vs);
        for (auto* mh : variants) mh->color_blue(vs);
      } else {
        model.color_red(vs);
        for (auto* mh : variants) mh->color_red(vs);
      }
    } else if (kind == 2) {
      const auto want = model.singleton_cascade();
      for (std::size_t i = 0; i < variants.size(); ++i) {
        EXPECT_EQ(want, variants[i]->singleton_cascade())
            << names[i] << " cascade diverged at step " << s;
      }
    } else if (kind == 3) {
      const auto want = model.dedupe_and_minimalize();
      for (std::size_t i = 0; i < variants.size(); ++i) {
        EXPECT_EQ(want, variants[i]->dedupe_and_minimalize())
            << names[i] << " dedupe diverged at step " << s;
      }
    } else {
      // The BL cleanup pattern: cascade immediately followed by dedupe.
      const auto want_reds = model.singleton_cascade();
      const auto want_removed = model.dedupe_and_minimalize();
      for (std::size_t i = 0; i < variants.size(); ++i) {
        EXPECT_EQ(want_reds, variants[i]->singleton_cascade()) << names[i];
        EXPECT_EQ(want_removed, variants[i]->dedupe_and_minimalize())
            << names[i];
      }
    }
    for (std::size_t i = 0; i < variants.size(); ++i) {
      expect_matches_model(model, *variants[i], names[i]);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

}  // namespace hmis_test
