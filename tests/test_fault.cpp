// The deterministic fault-injection layer (DESIGN.md §12): plan parsing,
// the site-glob matcher, schedule determinism/replay, and the disarm
// contract.  Tests that arm a plan always disarm on exit (RAII) so the
// suite's other tests never see stray faults.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "hmis/util/check.hpp"
#include "hmis/util/fault.hpp"

namespace {

using namespace hmis;

/// RAII disarm: every armed test restores the disarmed state even on an
/// assertion failure unwinding the test body.
struct ArmedScope {
  explicit ArmedScope(const util::FaultPlan& plan) { util::fault_arm(plan); }
  ~ArmedScope() { util::fault_disarm(); }
};

/// A probe site exercised directly — this expansion owns its own FaultSite
/// static, so its ordinal stream is independent of the product sites.
bool probe_a() { return HMIS_FAULT_POINT("test.probe.a"); }
bool probe_b() { return HMIS_FAULT_POINT("test.probe.b"); }

std::vector<bool> roll_probe_a(std::size_t n) {
  std::vector<bool> fires;
  fires.reserve(n);
  for (std::size_t i = 0; i < n; ++i) fires.push_back(probe_a());
  return fires;
}

// ---- plan parsing -----------------------------------------------------------

TEST(FaultPlan, ParsesAllKeysAnyOrder) {
  const util::FaultPlan p =
      util::parse_fault_plan("rate=0.25,sites=net.*;alloc.registry,seed=42");
  EXPECT_EQ(p.seed, 42u);
  EXPECT_DOUBLE_EQ(p.rate, 0.25);
  EXPECT_EQ(p.sites, "net.*;alloc.registry");
}

TEST(FaultPlan, DefaultsWhenKeysOmitted) {
  const util::FaultPlan p = util::parse_fault_plan("rate=0.5");
  EXPECT_EQ(p.seed, 0u);
  EXPECT_DOUBLE_EQ(p.rate, 0.5);
  EXPECT_EQ(p.sites, "*");
  const util::FaultPlan empty = util::parse_fault_plan("");
  EXPECT_DOUBLE_EQ(empty.rate, 0.0);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  // A mistyped fault spec must fail loudly, not degrade to "no faults".
  const char* bad[] = {
      "rtae=0.5",        // typoed key
      "rate",            // missing value
      "rate=half",       // non-numeric
      "rate=1.5",        // out of [0, 1]
      "rate=-0.1",       // negative
      "seed=abc",        // non-integer seed
      "seed=-1",         // negative seed
      "sites=",          // empty site list
      "rate=0.5,,",      // empty clause
  };
  for (const char* spec : bad) {
    EXPECT_THROW((void)util::parse_fault_plan(spec), util::CheckError)
        << "accepted: " << spec;
  }
}

// ---- glob matching ----------------------------------------------------------

TEST(FaultGlob, StarAndQuestionMark) {
  EXPECT_TRUE(util::fault_sites_match("*", "net.read.short"));
  EXPECT_TRUE(util::fault_sites_match("net.*", "net.read.short"));
  EXPECT_FALSE(util::fault_sites_match("net.*", "alloc.registry"));
  EXPECT_TRUE(util::fault_sites_match("net.*.eintr", "net.write.eintr"));
  EXPECT_FALSE(util::fault_sites_match("net.*.eintr", "net.write.reset"));
  EXPECT_TRUE(util::fault_sites_match("net.rea?", "net.read"));
  EXPECT_FALSE(util::fault_sites_match("net.rea?", "net.read.short"));
  EXPECT_TRUE(util::fault_sites_match("*reset", "net.read.reset"));
  // Adjacent and redundant stars collapse.
  EXPECT_TRUE(util::fault_sites_match("**net**", "net.accept"));
}

TEST(FaultGlob, SemicolonListMatchesAnyClause) {
  EXPECT_TRUE(util::fault_sites_match("alloc.*;mmap.load", "mmap.load"));
  EXPECT_TRUE(util::fault_sites_match("alloc.*;mmap.load", "alloc.protocol"));
  EXPECT_FALSE(util::fault_sites_match("alloc.*;mmap.load", "net.accept"));
  EXPECT_FALSE(util::fault_sites_match("", "net.accept"));
}

TEST(FaultGlob, ExactNamesNeedExactMatch) {
  EXPECT_TRUE(util::fault_sites_match("net.accept", "net.accept"));
  EXPECT_FALSE(util::fault_sites_match("net.accept", "net.accept2"));
  EXPECT_FALSE(util::fault_sites_match("net.accept2", "net.accept"));
}

// ---- determinism & replay ---------------------------------------------------

TEST(FaultSchedule, ReplaysBitIdenticallyFromTheSeed) {
  util::FaultPlan plan;
  plan.seed = 7;
  plan.rate = 0.3;
  std::vector<bool> first, second;
  {
    ArmedScope armed(plan);
    first = roll_probe_a(500);
  }
  {
    ArmedScope armed(plan);  // re-arm resets the site ordinal
    second = roll_probe_a(500);
  }
  EXPECT_EQ(first, second);
  // A 0.3 schedule over 500 rolls fires *somewhere* (P(miss) ~ 1e-78).
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
}

TEST(FaultSchedule, SeedChangesTheSchedule) {
  util::FaultPlan plan;
  plan.rate = 0.3;
  plan.seed = 1;
  std::vector<bool> a, b;
  {
    ArmedScope armed(plan);
    a = roll_probe_a(500);
  }
  plan.seed = 2;
  {
    ArmedScope armed(plan);
    b = roll_probe_a(500);
  }
  EXPECT_NE(a, b);
}

TEST(FaultSchedule, SitesAreIndependentStreams) {
  // Same plan, two sites: the schedules must differ (the site name feeds
  // the RNG stream), yet each replays identically.
  util::FaultPlan plan;
  plan.seed = 11;
  plan.rate = 0.5;
  std::vector<bool> a, b;
  {
    ArmedScope armed(plan);
    for (int i = 0; i < 200; ++i) {
      a.push_back(probe_a());
      b.push_back(probe_b());
    }
  }
  EXPECT_NE(a, b);
}

TEST(FaultSchedule, RateZeroNeverFiresRateOneAlwaysFires) {
  util::FaultPlan plan;
  plan.seed = 3;
  plan.rate = 0.0;
  {
    ArmedScope armed(plan);
    for (int i = 0; i < 100; ++i) EXPECT_FALSE(probe_a());
  }
  plan.rate = 1.0;
  {
    ArmedScope armed(plan);
    for (int i = 0; i < 100; ++i) EXPECT_TRUE(probe_a());
  }
}

TEST(FaultSchedule, SiteFilterGates) {
  util::FaultPlan plan;
  plan.seed = 5;
  plan.rate = 1.0;
  plan.sites = "test.probe.b";
  ArmedScope armed(plan);
  EXPECT_FALSE(probe_a());  // filtered out
  EXPECT_TRUE(probe_b());
}

TEST(FaultSchedule, FireCounterTallies) {
  util::FaultPlan plan;
  plan.seed = 9;
  plan.rate = 1.0;
  plan.sites = "test.probe.*";
  ArmedScope armed(plan);
  EXPECT_EQ(util::fault_fires(), 0u);
  (void)probe_a();
  (void)probe_a();
  (void)probe_b();
  EXPECT_EQ(util::fault_fires(), 3u);
}

// ---- disarm -----------------------------------------------------------------

TEST(FaultDisarm, DisarmedSitesNeverFire) {
  {
    util::FaultPlan plan;
    plan.rate = 1.0;
    ArmedScope armed(plan);
    EXPECT_TRUE(probe_a());
    EXPECT_TRUE(util::fault_armed());
  }
  EXPECT_FALSE(util::fault_armed());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(probe_a());
}

TEST(FaultDisarm, EnvArmingParsesAndArms) {
  ASSERT_EQ(::setenv("HMIS_FAULT", "seed=4,rate=1.0,sites=test.probe.a", 1),
            0);
  EXPECT_TRUE(util::fault_arm_from_env());
  EXPECT_TRUE(util::fault_armed());
  EXPECT_TRUE(probe_a());
  util::fault_disarm();
  ASSERT_EQ(::unsetenv("HMIS_FAULT"), 0);
  EXPECT_FALSE(util::fault_arm_from_env());
  EXPECT_FALSE(util::fault_armed());
}

}  // namespace
