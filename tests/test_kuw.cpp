#include "hmis/algo/kuw.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hmis/hypergraph/builder.hpp"
#include "hmis/hypergraph/generators.hpp"
#include "hmis/hypergraph/validate.hpp"

namespace {

using namespace hmis;
using algo::kuw_mis;
using algo::KuwOptions;

TEST(Kuw, NoEdgesOneRound) {
  const auto h = make_hypergraph(8, {});
  const auto r = kuw_mis(h);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.rounds, 1u);
  EXPECT_EQ(r.independent_set.size(), 8u);
}

TEST(Kuw, SingleEdge) {
  const auto h = make_hypergraph(3, {{0, 1, 2}});
  const auto r = kuw_mis(h);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.independent_set.size(), 2u);
  EXPECT_TRUE(verify_mis(h, r.independent_set).ok());
}

TEST(Kuw, SingletonEdges) {
  const auto h = make_hypergraph(4, {{1}, {3}});
  const auto r = kuw_mis(h);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.independent_set, (std::vector<VertexId>{0, 2}));
}

TEST(Kuw, VerifiedOnRandomInstances) {
  for (const std::uint64_t seed : {1u, 5u, 9u}) {
    const auto h = gen::mixed_arity(300, 800, 2, 5, seed);
    KuwOptions opt;
    opt.seed = seed;
    const auto r = kuw_mis(h, opt);
    ASSERT_TRUE(r.success) << r.failure_reason;
    EXPECT_TRUE(verify_mis(h, r.independent_set).ok()) << seed;
  }
}

TEST(Kuw, VerifiedOnHighDimensionInstances) {
  // KUW is oblivious to dimension — exactly why the paper uses it as the
  // general-case baseline.
  const auto h = gen::mixed_arity(300, 500, 2, 20, 3);
  const auto r = kuw_mis(h);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(verify_mis(h, r.independent_set).ok());
}

TEST(Kuw, EveryRoundMakesProgress) {
  const auto h = gen::uniform_random(500, 1500, 3, 7);
  KuwOptions opt;
  opt.record_trace = true;
  const auto r = kuw_mis(h, opt);
  ASSERT_TRUE(r.success);
  for (const auto& s : r.trace) {
    EXPECT_GE(s.added_blue + s.forced_red, 1u) << "stalled at " << s.stage;
  }
  EXPECT_LE(r.rounds, 500u);
}

TEST(Kuw, RoundsScaleBelowLinear) {
  // The KUW guarantee is O(sqrt(n)) rounds; random instances are much
  // easier, but rounds must stay well below n.
  const std::size_t n = 2000;
  const auto h = gen::uniform_random(n, 4 * n, 3, 11);
  const auto r = kuw_mis(h);
  ASSERT_TRUE(r.success);
  EXPECT_LT(static_cast<double>(r.rounds),
            10.0 * std::sqrt(static_cast<double>(n)))
      << r.rounds;
}

TEST(Kuw, PathGraphVerified) {
  const auto h = gen::path_graph(100);
  const auto r = kuw_mis(h);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(verify_mis(h, r.independent_set).ok());
}

TEST(Kuw, DeterministicForSeed) {
  const auto h = gen::mixed_arity(200, 500, 2, 4, 13);
  KuwOptions a;
  a.seed = 42;
  const auto ra = kuw_mis(h, a);
  const auto rb = kuw_mis(h, a);
  EXPECT_EQ(ra.independent_set, rb.independent_set);
  EXPECT_EQ(ra.rounds, rb.rounds);
}

TEST(Kuw, SunflowerExcludesAtMostOnePetalVertexPerEdge) {
  const auto h = gen::sunflower(2, 2, 15);
  const auto r = kuw_mis(h);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(verify_mis(h, r.independent_set).ok());
  // Any MIS here keeps at least all-but-one vertex of every petal.
  EXPECT_GE(r.independent_set.size(), 15u);
}

}  // namespace
