// Engine determinism contract: a session's Result is a pure function of its
// SolveRequest — independent of batch composition (solved alone vs inside
// any mix of other sessions) and of the engine's thread count (1 = zero-
// worker pool, 2, HMIS_TEST_THREADS).  Byte-identical means the whole
// Result payload: the independent set, round/stage/resample counters, and
// the modeled EREW metrics.
//
// Also covers the engine's async mechanics (futures helping on zero-worker
// pools, exception propagation, backpressure, drain, dropped futures) and
// the arena-backed residual frames underneath it (a dirty recycled frame
// must rebuild to exactly what a fresh extraction returns).
#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <thread>
#include <utility>

#include "hmis/util/cancel.hpp"

#include "hmis/core/mis.hpp"
#include "hmis/engine/engine.hpp"
#include "hmis/engine/round_context.hpp"
#include "hmis/hypergraph/generators.hpp"
#include "hmis/hypergraph/validate.hpp"
#include "hmis/util/check.hpp"
#include "hmis/util/rng.hpp"
#include "test_threads.hpp"

namespace {

using namespace hmis;

/// The byte-comparable payload of a Result (seconds excluded — wall clock is
/// the one legitimately nondeterministic field).
struct Canon {
  std::vector<VertexId> independent_set;
  bool success = false;
  std::size_t rounds = 0;
  std::uint64_t inner_stages = 0;
  std::size_t resamples = 0;
  std::uint64_t work = 0;
  std::uint64_t depth = 0;
  std::uint64_t calls = 0;

  friend bool operator==(const Canon&, const Canon&) = default;
};

Canon canon(const algo::Result& r) {
  return {r.independent_set, r.success,      r.rounds,
          r.inner_stages,    r.resamples,    r.metrics.work,
          r.metrics.depth,   r.metrics.calls};
}

/// A target request solved via a dedicated ThreadPool through the blocking
/// facade — the engine-free reference.
Canon blocking_reference(const std::shared_ptr<const Hypergraph>& g,
                         core::Algorithm a, std::uint64_t seed) {
  par::ThreadPool pool(2);
  core::FindOptions opt;
  opt.seed = seed;
  opt.pool = &pool;
  const auto run = core::find_mis(*g, a, opt);
  EXPECT_TRUE(run.result.success) << run.result.failure_reason;
  EXPECT_TRUE(run.verdict.ok());
  return canon(run.result);
}

engine::SolveRequest make_request(std::shared_ptr<const Hypergraph> g,
                                  core::Algorithm a, std::uint64_t seed) {
  engine::SolveRequest req;
  req.graph = std::move(g);
  req.algorithm = a;
  req.seed = seed;
  return req;
}

/// Shared fixtures: one SBL-regime target, one BL target, plus decoys of
/// varied shape to build mixed batches around the targets.
struct Instances {
  std::shared_ptr<const Hypergraph> sbl_target =
      engine::share(gen::sbl_regime(1200, 0.6, 12, 5));
  std::shared_ptr<const Hypergraph> bl_target =
      engine::share(gen::uniform_random(1500, 4500, 3, 19));
  std::shared_ptr<const Hypergraph> decoy_a =
      engine::share(gen::mixed_arity(900, 1800, 2, 5, 23));
  std::shared_ptr<const Hypergraph> decoy_b =
      engine::share(gen::sbl_regime(800, 0.6, 10, 7));
};

const Instances& instances() {
  static const Instances kInstances;
  return kInstances;
}

// ---- Determinism: batch composition ----------------------------------------

TEST(EngineDeterminism, SoloVsMixedBatchBitIdentical) {
  const auto& inst = instances();
  const auto sbl_ref =
      blocking_reference(inst.sbl_target, core::Algorithm::SBL, 5);
  const auto bl_ref =
      blocking_reference(inst.bl_target, core::Algorithm::BL, 19);

  // Solo: each target alone on its own engine.
  engine::Engine solo({.threads = 2});
  const auto solo_sbl =
      solo.submit(make_request(inst.sbl_target, core::Algorithm::SBL, 5))
          .get();
  const auto solo_bl =
      solo.submit(make_request(inst.bl_target, core::Algorithm::BL, 19))
          .get();
  EXPECT_EQ(canon(solo_sbl.run.result), sbl_ref);
  EXPECT_EQ(canon(solo_bl.run.result), bl_ref);

  // Mixed batch: the same requests surrounded by decoys — including a decoy
  // sharing the SBL target's graph under a different seed — all in flight
  // at once.
  engine::Engine mixed({.threads = 2});
  std::vector<engine::SolveRequest> batch;
  batch.push_back(make_request(inst.decoy_a, core::Algorithm::Auto, 1));
  batch.push_back(make_request(inst.sbl_target, core::Algorithm::SBL, 5));
  batch.push_back(make_request(inst.sbl_target, core::Algorithm::SBL, 99));
  batch.push_back(make_request(inst.bl_target, core::Algorithm::BL, 19));
  batch.push_back(make_request(inst.decoy_b, core::Algorithm::SBL, 3));
  auto futures = mixed.submit_all(std::move(batch));
  const auto mixed_sbl = futures[1].get();
  const auto mixed_bl = futures[3].get();
  EXPECT_EQ(canon(mixed_sbl.run.result), sbl_ref);
  EXPECT_EQ(canon(mixed_bl.run.result), bl_ref);
  // The different-seed twin must run independently, not inherit state.
  const auto twin = futures[2].get();
  EXPECT_TRUE(twin.run.result.success);
  EXPECT_NE(canon(twin.run.result).independent_set, sbl_ref.independent_set);
  mixed.drain();
}

// ---- Determinism: engine thread count ---------------------------------------

TEST(EngineDeterminism, ThreadCountIndependence) {
  const auto& inst = instances();
  std::vector<std::vector<Canon>> per_thread_results;
  for (const std::size_t threads : hmis_test::engine_thread_sweep()) {
    engine::Engine eng({.threads = threads});
    std::vector<engine::SolveRequest> batch;
    batch.push_back(make_request(inst.sbl_target, core::Algorithm::SBL, 5));
    batch.push_back(make_request(inst.bl_target, core::Algorithm::BL, 19));
    batch.push_back(make_request(inst.decoy_b, core::Algorithm::SBL, 7));
    batch.push_back(make_request(inst.decoy_a, core::Algorithm::KUW, 11));
    auto futures = eng.submit_all(std::move(batch));
    std::vector<Canon> results;
    for (auto& f : futures) {
      const auto resp = f.get();
      ASSERT_TRUE(resp.run.result.success)
          << "threads=" << threads << ": " << resp.run.result.failure_reason;
      EXPECT_TRUE(resp.run.verdict.ok()) << "threads=" << threads;
      results.push_back(canon(resp.run.result));
    }
    per_thread_results.push_back(std::move(results));
  }
  for (std::size_t t = 1; t < per_thread_results.size(); ++t) {
    EXPECT_EQ(per_thread_results[0], per_thread_results[t])
        << "engine thread sweep diverged at sweep index " << t;
  }
}

// ---- Async mechanics --------------------------------------------------------

TEST(EngineFuture, GetHelpsOnZeroWorkerEngine) {
  // threads = 1 means the pool has no worker threads at all: sessions run
  // only because get() helps execute queued tasks on the calling thread.
  const auto& inst = instances();
  engine::Engine eng({.threads = 1});
  auto f1 = eng.submit(make_request(inst.decoy_a, core::Algorithm::Auto, 1));
  auto f2 = eng.submit(make_request(inst.decoy_b, core::Algorithm::SBL, 3));
  const auto r2 = f2.get();  // out of submission order, on purpose
  const auto r1 = f1.get();
  EXPECT_TRUE(r1.run.result.success);
  EXPECT_TRUE(r2.run.result.success);
  EXPECT_TRUE(r1.run.verdict.ok());
  EXPECT_TRUE(r2.run.verdict.ok());
}

TEST(EngineFuture, SessionExceptionRethrownByGet) {
  // Luby on a dimension-3 instance violates its HMIS_CHECK envelope inside
  // the session; the error must surface at get(), not kill the engine.
  const auto& inst = instances();
  engine::Engine eng({.threads = 2});
  auto bad = eng.submit(make_request(inst.bl_target, core::Algorithm::Luby, 1));
  EXPECT_THROW((void)bad.get(), util::CheckError);
  // The engine survives and solves the next session normally.
  auto good =
      eng.submit(make_request(inst.decoy_a, core::Algorithm::Auto, 1));
  EXPECT_TRUE(good.get().run.result.success);
  EXPECT_EQ(eng.stats().failed, 1u);
}

TEST(EngineSubmit, RejectsRequestWithoutGraph) {
  engine::Engine eng({.threads = 1});
  engine::SolveRequest empty;
  EXPECT_THROW((void)eng.submit(std::move(empty)), util::CheckError);
}

TEST(EngineBackpressure, MaxInflightBoundsAndCompletes) {
  // A single submitter with max_inflight = 2: submit() must help-run
  // sessions to get below the cap (this also exercises backpressure on a
  // zero-worker engine), and the in-flight high-water mark stays bounded.
  const auto& inst = instances();
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    engine::Engine eng({.threads = threads, .max_inflight = 2});
    std::vector<engine::SolveFuture> futures;
    for (std::uint64_t s = 1; s <= 8; ++s) {
      futures.push_back(
          eng.submit(make_request(inst.decoy_a, core::Algorithm::Auto, s)));
    }
    for (auto& f : futures) {
      EXPECT_TRUE(f.get().run.result.success);
    }
    const auto stats = eng.stats();
    EXPECT_EQ(stats.completed, 8u);
    EXPECT_LE(stats.peak_inflight, 2u) << "threads=" << threads;
  }
}

TEST(EngineBackpressure, ConcurrentSubmittersRespectTheCap) {
  // The in-flight slot is reserved with a CAS before the session spawns, so
  // racing submitters cannot overshoot max_inflight (a check-then-act
  // version could reach cap + submitters - 1).
  const auto& inst = instances();
  engine::Engine eng({.threads = 2, .max_inflight = 2});
  std::mutex futures_mutex;
  std::vector<engine::SolveFuture> futures;
  std::vector<std::thread> submitters;
  for (std::uint64_t t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      for (std::uint64_t s = 0; s < 4; ++s) {
        auto f = eng.submit(
            make_request(inst.decoy_a, core::Algorithm::Auto, 100 * t + s));
        const std::lock_guard<std::mutex> lock(futures_mutex);
        futures.push_back(std::move(f));
      }
    });
  }
  for (auto& th : submitters) th.join();
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().run.result.success);
  }
  const auto stats = eng.stats();
  EXPECT_EQ(stats.completed, 16u);
  EXPECT_LE(stats.peak_inflight, 2u);
}

TEST(EngineDrain, DrainsEverySubmittedSession) {
  const auto& inst = instances();
  engine::Engine eng({.threads = 2});
  std::vector<engine::SolveFuture> futures;
  for (std::uint64_t s = 1; s <= 6; ++s) {
    futures.push_back(
        eng.submit(make_request(inst.decoy_a, core::Algorithm::Auto, s)));
  }
  eng.drain();
  const auto stats = eng.stats();
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.failed, 0u);
  for (auto& f : futures) {
    EXPECT_TRUE(f.ready());
    EXPECT_TRUE(f.get().run.result.success);  // get() after drain is fine
  }
}

TEST(EngineDrain, DroppedFutureSessionStillCompletes) {
  const auto& inst = instances();
  engine::Engine eng({.threads = 2});
  {
    auto f = eng.submit(make_request(inst.decoy_b, core::Algorithm::SBL, 3));
    // f dropped here without get(): the result is abandoned, the session
    // is not.
  }
  eng.drain();
  EXPECT_EQ(eng.stats().completed, 1u);
  EXPECT_EQ(eng.stats().inflight, 0u);
}

// ---- Cancellation (ISSUE 10) ------------------------------------------------

TEST(EngineCancel, CancelBeforeRunThrowsCancelledError) {
  // threads = 1 is a zero-worker pool: the session cannot start until get()
  // helps, so cancel() is guaranteed to precede the first round poll.
  const auto& inst = instances();
  engine::Engine eng({.threads = 1});
  auto f = eng.submit(make_request(inst.sbl_target, core::Algorithm::SBL, 5));
  f.cancel();
  EXPECT_THROW((void)f.get(), util::CancelledError);
  const auto stats = eng.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.failed, 0u);  // cancellation is not failure
  EXPECT_EQ(stats.inflight, 0u);
  // The engine is untouched: the same request solves normally afterwards.
  auto again =
      eng.submit(make_request(inst.sbl_target, core::Algorithm::SBL, 5));
  EXPECT_TRUE(again.get().run.result.success);
}

TEST(EngineCancel, ParentTokenPropagatesIntoTheSession) {
  const auto& inst = instances();
  util::CancelToken parent(nullptr);
  parent.cancel();
  engine::Engine eng({.threads = 2});
  auto req = make_request(inst.decoy_b, core::Algorithm::SBL, 3);
  req.cancel = &parent;
  auto f = eng.submit(std::move(req));
  EXPECT_THROW((void)f.get(), util::CancelledError);
  EXPECT_EQ(eng.stats().cancelled, 1u);
}

TEST(EngineCancel, DrainRacingCancelAlwaysReconciles) {
  // drain() must count EVERY submitted session exactly once — completed
  // successfully or unwound as cancelled — no matter how cancel() calls
  // interleave with the drain.  Each future then reports one coherent
  // outcome.
  const auto& inst = instances();
  engine::Engine eng({.threads = 2});
  std::vector<engine::SolveFuture> futures;
  constexpr std::uint64_t kSessions = 8;
  for (std::uint64_t s = 1; s <= kSessions; ++s) {
    futures.push_back(
        eng.submit(make_request(inst.decoy_b, core::Algorithm::SBL, s)));
  }
  std::thread canceller([&futures] {
    for (std::size_t i = 0; i < futures.size(); i += 2) {
      futures[i].cancel();
    }
  });
  eng.drain();
  canceller.join();
  const auto stats = eng.stats();
  EXPECT_EQ(stats.submitted, kSessions);
  EXPECT_EQ(stats.completed, kSessions);  // ended, whichever way
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.failed, 0u);
  std::size_t ok = 0, cancelled = 0;
  for (auto& f : futures) {
    ASSERT_TRUE(f.ready());
    try {
      EXPECT_TRUE(f.get().run.result.success);
      ++ok;
    } catch (const util::CancelledError&) {
      ++cancelled;
    }
  }
  EXPECT_EQ(ok + cancelled, kSessions);
  EXPECT_EQ(cancelled, stats.cancelled);
}

TEST(EngineCancel, DroppedFutureAfterCancelStillDrains) {
  // cancel() then drop the future without get(): the session must still be
  // swept by drain() and the stats must reconcile (the abandoned result is
  // discarded, not leaked — ASan closes the loop).
  const auto& inst = instances();
  engine::Engine eng({.threads = 2});
  {
    auto f = eng.submit(make_request(inst.sbl_target, core::Algorithm::SBL, 9));
    f.cancel();
  }
  {
    auto f = eng.submit(make_request(inst.decoy_a, core::Algorithm::Auto, 2));
    // Dropped un-cancelled: must complete normally.
  }
  eng.drain();
  const auto stats = eng.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(EngineCancel, MidRunCancelUnwindsPromptly) {
  // Cancel while the session is actually inside the solver: the round-
  // boundary polls must notice and unwind well before the solve finishes
  // naturally.  The instance is big enough to span many rounds.
  const auto big = engine::share(gen::uniform_random(20000, 60000, 3, 77));
  engine::Engine eng({.threads = 2});
  auto f = eng.submit(make_request(big, core::Algorithm::BL, 1));
  // Nudge the race toward "mid-run" without depending on it: either the
  // cancel lands before the first poll (pre-run unwind) or mid-solve (round
  // poll) — both must produce exactly one CancelledError.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  f.cancel();
  try {
    const auto resp = f.get();
    // Rare but legal: the solve beat the cancel.  Then it must be a full,
    // valid result.
    EXPECT_TRUE(resp.run.result.success);
  } catch (const util::CancelledError&) {
    EXPECT_EQ(eng.stats().cancelled, 1u);
  }
  eng.drain();
  EXPECT_EQ(eng.stats().inflight, 0u);
}

// ---- Arena-backed frames underneath the engine ------------------------------

TEST(RoundContextFrames, DirtyRecycledFrameEqualsFreshExtraction) {
  // Build frames from one hypergraph, then reuse the same (dirty) context
  // against another with interleaved mutations: every rebuild must equal a
  // fresh extraction bit for bit.
  const Hypergraph a = gen::sbl_regime(600, 0.6, 8, 21);
  const Hypergraph b = gen::uniform_random(900, 1800, 4, 22);
  engine::RoundContext ctx;

  MutableHypergraph ma(a);
  (void)ctx.snapshot_frame(ma);  // dirty the buffers with a's shape

  MutableHypergraph mb(b);
  const util::CounterRng rng(77);
  for (int round = 0; round < 4; ++round) {
    // A deterministic mutation step: exclude a pseudo-random live vertex,
    // then take both extraction paths and compare.
    const auto live = mb.live_vertices();
    if (live.empty()) break;
    const VertexId victim = live[rng.bits(round, 0) % live.size()];
    mb.color_red(std::span<const VertexId>(&victim, 1));
    mb.singleton_cascade();

    util::DynamicBitset keep(b.num_vertices());
    for (VertexId v = 0; v < b.num_vertices(); ++v) {
      if (rng.bernoulli(0.5, 1000 + round, v)) keep.set(v);
    }

    const auto fresh_snap = mb.live_snapshot();
    const auto& arena_snap = ctx.snapshot_frame(mb);
    EXPECT_EQ(fresh_snap.to_original, arena_snap.to_original);
    EXPECT_EQ(fresh_snap.graph.edges_as_lists(),
              arena_snap.graph.edges_as_lists());
    EXPECT_EQ(fresh_snap.graph.num_vertices(),
              arena_snap.graph.num_vertices());
    EXPECT_EQ(fresh_snap.graph.dimension(), arena_snap.graph.dimension());
    EXPECT_EQ(fresh_snap.graph.min_edge_size(),
              arena_snap.graph.min_edge_size());

    const auto fresh_ind = mb.induced_subgraph(keep);
    const auto& arena_ind = ctx.induced_frame(mb, keep);
    EXPECT_EQ(fresh_ind.to_original, arena_ind.to_original);
    EXPECT_EQ(fresh_ind.graph.edges_as_lists(),
              arena_ind.graph.edges_as_lists());
    // Incidence CSR equality, via degrees of every local vertex.
    ASSERT_EQ(fresh_ind.graph.num_vertices(), arena_ind.graph.num_vertices());
    for (VertexId lv = 0; lv < fresh_ind.graph.num_vertices(); ++lv) {
      EXPECT_EQ(fresh_ind.graph.degree(lv), arena_ind.graph.degree(lv));
    }
  }
  EXPECT_GT(ctx.frames_built(), 0u);
  EXPECT_GT(ctx.arena().capacity_bytes(), 0u);
}

TEST(RoundContextFrames, DoubleBufferKeepsPreviousFrameIntact) {
  const Hypergraph h = gen::mixed_arity(700, 1400, 2, 4, 31);
  MutableHypergraph mh(h);
  engine::RoundContext ctx;

  const auto& first = ctx.snapshot_frame(mh);
  const auto first_edges = first.graph.edges_as_lists();
  const auto first_map = first.to_original;

  // Mutate and build the next frame: the first frame must not move.
  const VertexId victim = mh.live_vertices().front();
  mh.color_red(std::span<const VertexId>(&victim, 1));
  const auto& second = ctx.snapshot_frame(mh);

  EXPECT_EQ(first.graph.edges_as_lists(), first_edges);
  EXPECT_EQ(first.to_original, first_map);
  EXPECT_NE(&first, &second);
  EXPECT_LT(second.to_original.size(), first_map.size());
}

}  // namespace
