#include "hmis/util/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace hmis::util;

TEST(ClampedLog, MatchesLog2AboveClamp) {
  EXPECT_DOUBLE_EQ(clog2(1024.0), 10.0);
  EXPECT_DOUBLE_EQ(clog2(65536.0), 16.0);
}

TEST(ClampedLog, ClampsSmallAndInvalidArguments) {
  EXPECT_EQ(clog2(1.0), kMinLogValue);
  EXPECT_EQ(clog2(0.5), kMinLogValue);
  EXPECT_EQ(clog2(0.0), kMinLogValue);
  EXPECT_EQ(clog2(-3.0), kMinLogValue);
}

TEST(IteratedLog, ComposesCorrectly) {
  // log^(2)(2^16) = log2(16) = 4;  log^(3)(2^16) = 2.
  EXPECT_DOUBLE_EQ(ilog2(65536.0, 2), 4.0);
  EXPECT_DOUBLE_EQ(ilog2(65536.0, 3), 2.0);
  EXPECT_DOUBLE_EQ(loglog2(65536.0), 4.0);
  EXPECT_DOUBLE_EQ(logloglog2(65536.0), 2.0);
}

TEST(IntegerLogs, FloorAndCeil) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Factorial, SmallValues) {
  EXPECT_DOUBLE_EQ(factorial(0), 1.0);
  EXPECT_DOUBLE_EQ(factorial(1), 1.0);
  EXPECT_DOUBLE_EQ(factorial(5), 120.0);
  EXPECT_DOUBLE_EQ(factorial(10), 3628800.0);
}

TEST(Factorial, OverflowsToInfinity) {
  EXPECT_TRUE(std::isinf(factorial(200)));
}

TEST(Binomial, KnownValues) {
  EXPECT_DOUBLE_EQ(binomial(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(binomial(10, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(binomial(10, 11), 0.0);
  EXPECT_DOUBLE_EQ(binomial(52, 5), 2598960.0);
}

TEST(KelsenF, CorrectedRecurrence) {
  // F(1) = 0, F(i) = i*F(i-1) + d^2.
  const double d = 3.0;
  const auto F = kelsen_F(5, d);
  EXPECT_DOUBLE_EQ(F[1], 0.0);
  EXPECT_DOUBLE_EQ(F[2], 9.0);            // 2*0 + 9
  EXPECT_DOUBLE_EQ(F[3], 3 * 9.0 + 9.0);  // 36
  EXPECT_DOUBLE_EQ(F[4], 4 * 36.0 + 9.0); // 153
  EXPECT_DOUBLE_EQ(F[5], 5 * 153.0 + 9.0);
}

TEST(KelsenF, OriginalRecurrenceUsesSeven) {
  const auto F = kelsen_F_original(4);
  EXPECT_DOUBLE_EQ(F[2], 7.0);
  EXPECT_DOUBLE_EQ(F[3], 3 * 7.0 + 7.0);
  EXPECT_DOUBLE_EQ(F[4], 4 * 28.0 + 7.0);
}

TEST(KelsenSmallF, ConsistentWithF) {
  // F(i) - i*F(i-1) should equal d^2 for i >= 2, and f should satisfy
  // f(i) = (i-1) * sum_{j=2..i-1} f(j) + d^2.
  const double d = 4.0;
  const auto F = kelsen_F(6, d);
  const auto f = kelsen_f(6, d);
  for (int i = 2; i <= 6; ++i) {
    EXPECT_NEAR(F[i] - i * F[i - 1], d * d, 1e-9) << i;
  }
  EXPECT_DOUBLE_EQ(f[2], 16.0);
  EXPECT_DOUBLE_EQ(f[3], 2 * 16.0 + 16.0);
  // f(4) = 3*(f(2)+f(3)) + 16
  EXPECT_DOUBLE_EQ(f[4], 3 * (16.0 + 48.0) + 16.0);
}

TEST(KelsenSmallF, PartialSumsReconstructF) {
  // F(i) = sum_{j=2..i} f(j) holds for the f/F pair as defined in Kelsen:
  // F(i) = i*F(i-1) + d^2 and f(i) = (i-1)*sum_{j<i} f(j) + d^2 imply both
  // track the same "total offset" sequence.
  const double d = 2.0;
  const auto F = kelsen_F(5, d);
  const auto f = kelsen_f(5, d);
  double sum = 0.0;
  for (int i = 2; i <= 5; ++i) {
    sum += f[i];
    EXPECT_NEAR(F[i], sum, 1e-9) << "i=" << i;
  }
}

TEST(BlStageBound, ExponentIsFactorial) {
  EXPECT_NEAR(bl_stage_bound_exponent(3.0), 5040.0, 1e-6);  // (3+4)! = 7!
  EXPECT_NEAR(bl_stage_bound_exponent(0.0), 24.0, 1e-9);    // 4!
}

TEST(Chernoff, MatchesClosedForm) {
  // Pr[X <= pn - a] <= exp(-a^2/(2pn))
  EXPECT_NEAR(chernoff_lower_tail(100, 0.5, 10), std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(chernoff_lower_tail(0, 0.5, 10), 1.0);
  EXPECT_DOUBLE_EQ(chernoff_lower_tail(100, 0.5, 0), 1.0);
}

TEST(KelsenQj, GrowsWithJ) {
  const double n = 1 << 20;
  const double d = 4.0;
  EXPECT_GT(kelsen_qj(n, d, 3), kelsen_qj(n, d, 2));
  EXPECT_GT(kelsen_qj(n, d, 4), kelsen_qj(n, d, 3));
}

TEST(SaturatingRound, Saturates) {
  EXPECT_EQ(saturating_round(-1.0), 0u);
  EXPECT_EQ(saturating_round(2.4), 2u);
  EXPECT_EQ(saturating_round(2.6), 3u);
  EXPECT_EQ(saturating_round(1e30), UINT64_MAX);
}

}  // namespace
