// Randomized stress tests against brute-force reference models.  These
// catch bookkeeping drift (live counts, degrees, shrunken edges) that
// example-based tests miss.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "hmis/core/mis.hpp"
#include "hmis/hypergraph/builder.hpp"
#include "hmis/hypergraph/degree_stats.hpp"
#include "hmis/hypergraph/generators.hpp"
#include "hmis/hypergraph/mutable_hypergraph.hpp"
#include "hmis/par/scan.hpp"
#include "hmis/par/sort.hpp"
#include "hmis/util/check.hpp"
#include "hmis/util/rng.hpp"

namespace {

using namespace hmis;

// ---- Reference model for the residual hypergraph ---------------------------

struct ReferenceModel {
  std::vector<std::set<VertexId>> edges;  // live edges (empty set = dead)
  std::vector<int> color;                 // 0 none, 1 blue, 2 red

  explicit ReferenceModel(const Hypergraph& h)
      : color(h.num_vertices(), 0) {
    for (EdgeId e = 0; e < h.num_edges(); ++e) {
      const auto verts = h.edge(e);
      edges.emplace_back(verts.begin(), verts.end());
    }
    alive.assign(edges.size(), true);
  }

  std::vector<bool> alive;

  void blue(VertexId v) {
    color[v] = 1;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (alive[e]) edges[e].erase(v);
    }
  }
  void red(VertexId v) {
    color[v] = 2;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (alive[e] && edges[e].contains(v)) alive[e] = false;
    }
  }
  [[nodiscard]] std::size_t live_edges() const {
    std::size_t c = 0;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (alive[e]) ++c;
    }
    return c;
  }
  [[nodiscard]] std::size_t live_vertices() const {
    std::size_t c = 0;
    for (const int col : color) {
      if (col == 0) ++c;
    }
    return c;
  }
  [[nodiscard]] std::size_t degree(VertexId v) const {
    std::size_t c = 0;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (alive[e] && edges[e].contains(v)) ++c;
    }
    return c;
  }
};

TEST(Stress, MutableHypergraphMatchesReferenceModel) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const auto h = gen::mixed_arity(60, 140, 2, 5, seed);
    MutableHypergraph mh(h);
    ReferenceModel ref(h);
    util::Xoshiro256ss rng(seed * 7919);

    for (int step = 0; step < 40 && mh.num_live_vertices() > 0; ++step) {
      // Pick a random live vertex.
      const auto live = mh.live_vertices();
      const VertexId v = live[rng.below(live.size())];
      // Blue only if no live edge would become empty ({v} singleton).
      bool would_violate = false;
      for (const EdgeId e : mh.live_edges()) {
        const auto verts = mh.edge(e);
        if (verts.size() == 1 && verts[0] == v) {
          would_violate = true;
          break;
        }
      }
      if (!would_violate && rng.below(2) == 0) {
        mh.color_blue(std::span<const VertexId>(&v, 1));
        ref.blue(v);
      } else {
        mh.color_red(std::span<const VertexId>(&v, 1));
        ref.red(v);
      }

      // Cross-check every invariant the algorithms rely on.
      ASSERT_EQ(mh.num_live_vertices(), ref.live_vertices());
      ASSERT_EQ(mh.num_live_edges(), ref.live_edges());
      for (const EdgeId e : mh.live_edges()) {
        const auto verts = mh.edge(e);
        const std::set<VertexId> got(verts.begin(), verts.end());
        ASSERT_TRUE(ref.alive[e]);
        ASSERT_EQ(got, ref.edges[e]) << "edge " << e;
      }
      for (const VertexId u : mh.live_vertices()) {
        ASSERT_EQ(mh.live_degree(u), ref.degree(u)) << "vertex " << u;
      }
    }
  }
}

// ---- Degree statistics vs naive enumeration --------------------------------

/// Naive Δ(H): enumerate every subset of every edge via sets (slow, obvious).
double naive_delta(const std::vector<VertexList>& edges) {
  std::map<std::pair<std::vector<VertexId>, std::size_t>, std::uint64_t>
      counts;
  for (const auto& e : edges) {
    const std::size_t s = e.size();
    if (s < 2) continue;
    for (std::uint32_t mask = 1; mask < (1u << s) - 1; ++mask) {
      std::vector<VertexId> x;
      for (std::size_t b = 0; b < s; ++b) {
        if (mask & (1u << b)) x.push_back(e[b]);
      }
      ++counts[{x, s}];
    }
  }
  double delta = 0.0;
  for (const auto& [key, count] : counts) {
    const std::size_t j = key.second - key.first.size();
    if (j >= 1) {
      delta = std::max(delta, std::pow(static_cast<double>(count),
                                       1.0 / static_cast<double>(j)));
    }
  }
  return delta;
}

TEST(Stress, DegreeStatsMatchNaiveEnumeration) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const auto h = gen::mixed_arity(30, 60, 2, 5, seed);
    const auto lists = h.edges_as_lists();
    const auto stats = compute_degree_stats(
        std::span<const VertexList>(lists.data(), lists.size()));
    ASSERT_TRUE(stats.exact);
    EXPECT_NEAR(stats.delta, naive_delta(lists), 1e-9) << "seed " << seed;
  }
}

// ---- Parallel primitive fuzz sweeps ----------------------------------------

class ScanFuzz : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanFuzz, MatchesSerialAtAwkwardSizes) {
  const std::size_t n = GetParam();
  par::ThreadPool pool(3);
  std::vector<std::uint64_t> out(n);
  const auto value = [](std::size_t i) {
    return util::splitmix64(i) % 11;
  };
  const auto total =
      par::exclusive_scan<std::uint64_t>(n, value, out.data(), nullptr, &pool);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], acc) << "n=" << n << " i=" << i;
    acc += value(i);
  }
  EXPECT_EQ(total, acc);
}

INSTANTIATE_TEST_SUITE_P(AwkwardSizes, ScanFuzz,
                         ::testing::Values(1, 2, 3, 63, 64, 65, 1023, 1024,
                                           1025, 4097, 12289));

class SortFuzz : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SortFuzz, MatchesStdSortAtAwkwardSizes) {
  const std::size_t n = GetParam();
  par::ThreadPool pool(5);
  std::vector<std::uint32_t> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::uint32_t>(util::splitmix64(i ^ n) % 997);
  }
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  par::parallel_sort(data, std::less<std::uint32_t>{}, nullptr, &pool);
  EXPECT_EQ(data, expected) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(AwkwardSizes, SortFuzz,
                         ::testing::Values(0, 1, 2, 5, 4095, 4096, 4097,
                                           8191, 12288, 20000));

// ---- Generator + algorithm fuzz: tiny instances, many seeds ---------------

TEST(Stress, TinyInstancesManySeeds) {
  // Tiny hypergraphs exercise boundary paths (single vertex, all-red,
  // immediate termination) that big sweeps rarely hit.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const std::size_t n = 2 + seed % 7;
    const std::size_t arity = 2 + seed % 3;
    if (arity > n) continue;
    const std::size_t m = 1 + seed % 5;
    Hypergraph h;
    try {
      h = gen::uniform_random(n, m, arity, seed);
    } catch (const util::CheckError&) {
      continue;  // requested more distinct edges than exist — fine
    }
    for (const auto a : {core::Algorithm::BL, core::Algorithm::KUW,
                         core::Algorithm::SBL,
                         core::Algorithm::PermutationMIS}) {
      core::FindOptions opt;
      opt.seed = seed;
      const auto run = core::find_mis(h, a, opt);
      ASSERT_TRUE(run.result.success)
          << core::algorithm_name(a) << " seed=" << seed;
      ASSERT_TRUE(run.verdict.ok())
          << core::algorithm_name(a) << " seed=" << seed << " n=" << n
          << " m=" << m << " arity=" << arity;
    }
  }
}

}  // namespace
