// Randomized stress tests against brute-force reference models.  These
// catch bookkeeping drift (live counts, degrees, shrunken edges) that
// example-based tests miss.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "test_threads.hpp"

#include "hmis/algo/bl.hpp"
#include "hmis/core/mis.hpp"
#include "hmis/core/sbl.hpp"
#include "hmis/hypergraph/builder.hpp"
#include "hmis/hypergraph/degree_stats.hpp"
#include "hmis/hypergraph/generators.hpp"
#include "hmis/hypergraph/mutable_hypergraph.hpp"
#include "hmis/par/scan.hpp"
#include "hmis/par/sort.hpp"
#include "hmis/par/thread_pool.hpp"
#include "hmis/util/check.hpp"
#include "hmis/util/rng.hpp"

namespace {

using namespace hmis;

// ---- Reference model for the residual hypergraph ---------------------------

struct ReferenceModel {
  std::vector<std::set<VertexId>> edges;  // live edges (empty set = dead)
  std::vector<int> color;                 // 0 none, 1 blue, 2 red

  explicit ReferenceModel(const Hypergraph& h)
      : color(h.num_vertices(), 0) {
    for (EdgeId e = 0; e < h.num_edges(); ++e) {
      const auto verts = h.edge(e);
      edges.emplace_back(verts.begin(), verts.end());
    }
    alive.assign(edges.size(), true);
  }

  std::vector<bool> alive;

  void blue(VertexId v) {
    color[v] = 1;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (alive[e]) edges[e].erase(v);
    }
  }
  void red(VertexId v) {
    color[v] = 2;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (alive[e] && edges[e].contains(v)) alive[e] = false;
    }
  }
  [[nodiscard]] std::size_t live_edges() const {
    std::size_t c = 0;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (alive[e]) ++c;
    }
    return c;
  }
  [[nodiscard]] std::size_t live_vertices() const {
    std::size_t c = 0;
    for (const int col : color) {
      if (col == 0) ++c;
    }
    return c;
  }
  [[nodiscard]] std::size_t degree(VertexId v) const {
    std::size_t c = 0;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (alive[e] && edges[e].contains(v)) ++c;
    }
    return c;
  }

  /// Singleton rule: every alive edge of size 1 excludes its vertex.
  /// Returns the excluded vertices, ascending and distinct.
  std::vector<VertexId> cascade() {
    std::set<VertexId> forced;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (alive[e] && edges[e].size() == 1) forced.insert(*edges[e].begin());
    }
    for (const VertexId v : forced) red(v);
    return {forced.begin(), forced.end()};
  }

  /// Duplicate + strict-superset removal over the alive edges, computed
  /// against the pre-call state the slow obvious way.  Returns the number of
  /// edges removed.
  std::size_t dedupe_and_minimalize() {
    const std::size_t m = edges.size();
    std::vector<char> dup(m, 0);
    for (std::size_t e = 0; e < m; ++e) {
      if (!alive[e]) continue;
      for (std::size_t f = 0; f < e; ++f) {
        if (alive[f] && edges[f] == edges[e]) {
          dup[e] = 1;  // smallest id stays canonical
          break;
        }
      }
    }
    std::size_t removed = 0;
    std::vector<char> gone(m, 0);
    for (std::size_t e = 0; e < m; ++e) {
      if (!alive[e]) continue;
      if (dup[e]) {
        gone[e] = 1;
        continue;
      }
      for (std::size_t f = 0; f < m; ++f) {
        if (f == e || !alive[f] || dup[f]) continue;
        if (edges[f].size() < edges[e].size() &&
            std::includes(edges[e].begin(), edges[e].end(), edges[f].begin(),
                          edges[f].end())) {
          gone[e] = 1;
          break;
        }
      }
    }
    for (std::size_t e = 0; e < m; ++e) {
      if (gone[e]) {
        alive[e] = false;
        ++removed;
      }
    }
    return removed;
  }
};

TEST(Stress, MutableHypergraphMatchesReferenceModel) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const auto h = gen::mixed_arity(60, 140, 2, 5, seed);
    MutableHypergraph mh(h);
    ReferenceModel ref(h);
    util::Xoshiro256ss rng(seed * 7919);

    for (int step = 0; step < 40 && mh.num_live_vertices() > 0; ++step) {
      // Pick a random live vertex.
      const auto live = mh.live_vertices();
      const VertexId v = live[rng.below(live.size())];
      // Blue only if no live edge would become empty ({v} singleton).
      bool would_violate = false;
      for (const EdgeId e : mh.live_edges()) {
        const auto verts = mh.edge(e);
        if (verts.size() == 1 && verts[0] == v) {
          would_violate = true;
          break;
        }
      }
      if (!would_violate && rng.below(2) == 0) {
        mh.color_blue(std::span<const VertexId>(&v, 1));
        ref.blue(v);
      } else {
        mh.color_red(std::span<const VertexId>(&v, 1));
        ref.red(v);
      }

      // Cross-check every invariant the algorithms rely on.
      ASSERT_EQ(mh.num_live_vertices(), ref.live_vertices());
      ASSERT_EQ(mh.num_live_edges(), ref.live_edges());
      for (const EdgeId e : mh.live_edges()) {
        const auto verts = mh.edge(e);
        const std::set<VertexId> got(verts.begin(), verts.end());
        ASSERT_TRUE(ref.alive[e]);
        ASSERT_EQ(got, ref.edges[e]) << "edge " << e;
      }
      for (const VertexId u : mh.live_vertices()) {
        ASSERT_EQ(mh.live_degree(u), ref.degree(u)) << "vertex " << u;
      }
    }
  }
}

// ---- Interleaved mutations under the parallel paths ------------------------

TEST(Stress, InterleavedMutationsMatchReferenceUnderParallelPaths) {
  // Instance sized above par::kMinGrain so color_blue / color_red /
  // singleton_cascade / dedupe_and_minimalize all take their parallel
  // kernels; the reference model plays the same interleaved script and
  // checks the shrink-then-delete invariants after every operation.
  par::ThreadPool pool(hmis_test::max_test_threads());
  for (const std::uint64_t seed : {3u, 9u}) {
    const auto h = gen::mixed_arity(1400, 2000, 2, 5, seed);
    MutableHypergraph mh(h, &pool);
    ReferenceModel ref(h);
    util::Xoshiro256ss rng(seed * 6007);

    for (int step = 0; step < 12 && mh.num_live_vertices() > 0; ++step) {
      const auto live = mh.live_vertices();
      const auto choice = rng.below(4);
      if (choice == 0) {
        // Safe blue batch: never complete a live edge.
        std::vector<std::uint8_t> picked(h.num_vertices(), 0);
        std::vector<VertexId> batch;
        const std::size_t want = 1 + rng.below(live.size() / 6 + 1);
        for (std::size_t t = 0; t < want; ++t) {
          const VertexId v = live[rng.below(live.size())];
          if (picked[v]) continue;
          bool completes = false;
          for (const EdgeId e : mh.live_edges()) {
            bool all = true;
            for (const VertexId u : mh.edge(e)) {
              if (u != v && !picked[u]) {
                all = false;
                break;
              }
            }
            if (all) {
              completes = true;
              break;
            }
          }
          if (completes) continue;
          picked[v] = 1;
          batch.push_back(v);
        }
        if (batch.empty()) continue;
        mh.color_blue(batch);
        for (const VertexId v : batch) ref.blue(v);
      } else if (choice == 1) {
        std::vector<std::uint8_t> picked(h.num_vertices(), 0);
        std::vector<VertexId> batch;
        const std::size_t want = 1 + rng.below(live.size() / 6 + 1);
        for (std::size_t t = 0; t < want; ++t) {
          const VertexId v = live[rng.below(live.size())];
          if (picked[v]) continue;
          picked[v] = 1;
          batch.push_back(v);
        }
        mh.color_red(batch);
        for (const VertexId v : batch) ref.red(v);
      } else if (choice == 2) {
        const auto got = mh.singleton_cascade();
        const auto want = ref.cascade();
        ASSERT_EQ(got, want) << "cascade diverged at step " << step;
      } else {
        const std::size_t got = mh.dedupe_and_minimalize();
        const std::size_t want = ref.dedupe_and_minimalize();
        ASSERT_EQ(got, want) << "dedupe count diverged at step " << step;
      }

      ASSERT_EQ(mh.num_live_vertices(), ref.live_vertices());
      ASSERT_EQ(mh.num_live_edges(), ref.live_edges());
      for (const EdgeId e : mh.live_edges()) {
        const auto verts = mh.edge(e);
        ASSERT_TRUE(ref.alive[e]) << "edge " << e << " step " << step;
        const std::set<VertexId> got_set(verts.begin(), verts.end());
        ASSERT_EQ(got_set, ref.edges[e]) << "edge " << e << " step " << step;
      }
      for (const VertexId u : mh.live_vertices()) {
        ASSERT_EQ(mh.live_degree(u), ref.degree(u))
            << "vertex " << u << " step " << step;
      }
    }
  }
}

// ---- End-to-end thread-count equivalence on full Results -------------------

void expect_same_result(const algo::Result& a, const algo::Result& b,
                        const char* what) {
  ASSERT_EQ(a.success, b.success) << what;
  EXPECT_EQ(a.independent_set, b.independent_set) << what;
  EXPECT_EQ(a.rounds, b.rounds) << what;
  EXPECT_EQ(a.inner_stages, b.inner_stages) << what;
  EXPECT_EQ(a.resamples, b.resamples) << what;
  // The modeled EREW cost is a pure function of the instance and the seed,
  // never of the pool width.
  EXPECT_EQ(a.metrics.work, b.metrics.work) << what;
  EXPECT_EQ(a.metrics.depth, b.metrics.depth) << what;
  EXPECT_EQ(a.metrics.calls, b.metrics.calls) << what;
}

TEST(Stress, SblFullResultIdenticalAcrossThreadCounts) {
  par::ThreadPool p1(1), p2(2), pn(hmis_test::max_test_threads());
  for (const std::uint64_t seed : {2u, 13u}) {
    const Hypergraph h = gen::sbl_regime(2500, 0.6, 12, seed);
    core::SblOptions o1, o2, on;
    o1.seed = o2.seed = on.seed = seed;
    o1.pool = &p1;
    o2.pool = &p2;
    on.pool = &pn;
    const auto r1 = core::sbl(h, o1);
    const auto r2 = core::sbl(h, o2);
    const auto rn = core::sbl(h, on);
    ASSERT_TRUE(r1.success) << r1.failure_reason;
    expect_same_result(r1, r2, "sbl pool(2)");
    expect_same_result(r1, rn, "sbl pool(max)");
  }
}

TEST(Stress, BlFullResultIdenticalAcrossThreadCounts) {
  par::ThreadPool p1(1), p2(2), pn(hmis_test::max_test_threads());
  for (const std::uint64_t seed : {4u, 29u}) {
    const Hypergraph h = gen::uniform_random(2500, 7500, 3, seed);
    algo::BlOptions o1, o2, on;
    o1.seed = o2.seed = on.seed = seed;
    o1.pool = &p1;
    o2.pool = &p2;
    on.pool = &pn;
    const auto r1 = algo::bl(h, o1);
    const auto r2 = algo::bl(h, o2);
    const auto rn = algo::bl(h, on);
    ASSERT_TRUE(r1.success) << r1.failure_reason;
    expect_same_result(r1, r2, "bl pool(2)");
    expect_same_result(r1, rn, "bl pool(max)");
  }
}

// ---- Degree statistics vs naive enumeration --------------------------------

/// Naive Δ(H): enumerate every subset of every edge via sets (slow, obvious).
double naive_delta(const std::vector<VertexList>& edges) {
  std::map<std::pair<std::vector<VertexId>, std::size_t>, std::uint64_t>
      counts;
  for (const auto& e : edges) {
    const std::size_t s = e.size();
    if (s < 2) continue;
    for (std::uint32_t mask = 1; mask < (1u << s) - 1; ++mask) {
      std::vector<VertexId> x;
      for (std::size_t b = 0; b < s; ++b) {
        if (mask & (1u << b)) x.push_back(e[b]);
      }
      ++counts[{x, s}];
    }
  }
  double delta = 0.0;
  for (const auto& [key, count] : counts) {
    const std::size_t j = key.second - key.first.size();
    if (j >= 1) {
      delta = std::max(delta, std::pow(static_cast<double>(count),
                                       1.0 / static_cast<double>(j)));
    }
  }
  return delta;
}

TEST(Stress, DegreeStatsMatchNaiveEnumeration) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const auto h = gen::mixed_arity(30, 60, 2, 5, seed);
    const auto lists = h.edges_as_lists();
    const auto stats = compute_degree_stats(
        std::span<const VertexList>(lists.data(), lists.size()));
    ASSERT_TRUE(stats.exact);
    EXPECT_NEAR(stats.delta, naive_delta(lists), 1e-9) << "seed " << seed;
  }
}

// ---- Parallel primitive fuzz sweeps ----------------------------------------

class ScanFuzz : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanFuzz, MatchesSerialAtAwkwardSizes) {
  const std::size_t n = GetParam();
  par::ThreadPool pool(3);
  std::vector<std::uint64_t> out(n);
  const auto value = [](std::size_t i) {
    return util::splitmix64(i) % 11;
  };
  const auto total =
      par::exclusive_scan<std::uint64_t>(n, value, out.data(), nullptr, &pool);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], acc) << "n=" << n << " i=" << i;
    acc += value(i);
  }
  EXPECT_EQ(total, acc);
}

INSTANTIATE_TEST_SUITE_P(AwkwardSizes, ScanFuzz,
                         ::testing::Values(1, 2, 3, 63, 64, 65, 1023, 1024,
                                           1025, 4097, 12289));

class SortFuzz : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SortFuzz, MatchesStdSortAtAwkwardSizes) {
  const std::size_t n = GetParam();
  par::ThreadPool pool(5);
  std::vector<std::uint32_t> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::uint32_t>(util::splitmix64(i ^ n) % 997);
  }
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  par::parallel_sort(data, std::less<std::uint32_t>{}, nullptr, &pool);
  EXPECT_EQ(data, expected) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(AwkwardSizes, SortFuzz,
                         ::testing::Values(0, 1, 2, 5, 4095, 4096, 4097,
                                           8191, 12288, 20000));

// ---- Generator + algorithm fuzz: tiny instances, many seeds ---------------

TEST(Stress, TinyInstancesManySeeds) {
  // Tiny hypergraphs exercise boundary paths (single vertex, all-red,
  // immediate termination) that big sweeps rarely hit.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const std::size_t n = 2 + seed % 7;
    const std::size_t arity = 2 + seed % 3;
    if (arity > n) continue;
    const std::size_t m = 1 + seed % 5;
    Hypergraph h;
    try {
      h = gen::uniform_random(n, m, arity, seed);
    } catch (const util::CheckError&) {
      continue;  // requested more distinct edges than exist — fine
    }
    for (const auto a : {core::Algorithm::BL, core::Algorithm::KUW,
                         core::Algorithm::SBL,
                         core::Algorithm::PermutationMIS}) {
      core::FindOptions opt;
      opt.seed = seed;
      const auto run = core::find_mis(h, a, opt);
      ASSERT_TRUE(run.result.success)
          << core::algorithm_name(a) << " seed=" << seed;
      ASSERT_TRUE(run.verdict.ok())
          << core::algorithm_name(a) << " seed=" << seed << " n=" << n
          << " m=" << m << " arity=" << arity;
    }
  }
}

}  // namespace
