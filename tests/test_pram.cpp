#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "hmis/pram/kernels.hpp"
#include "hmis/pram/machine.hpp"
#include "hmis/util/check.hpp"

namespace {

using namespace hmis::pram;

TEST(Machine, PokePeekRoundTrip) {
  Machine m(16);
  m.poke(3, 42);
  EXPECT_EQ(m.peek(3), 42);
  EXPECT_EQ(m.peek(0), 0);
}

TEST(Machine, SynchronousWrites) {
  // Reads see the memory state from BEFORE the step even when another
  // processor writes the cell in the same step.  (Cross-processor
  // read+write of one cell needs CRCW; the EREW swap below does it in two
  // exclusive steps.)
  Machine m(2, Mode::CRCW);
  m.poke(0, 1);
  m.step(2, [&](std::size_t p) {
    if (p == 0) {
      m.write(p, 0, 42);
    } else {
      // Must observe the pre-step value 1, not 42.
      m.write(p, 1, m.read(p, 0));
    }
  });
  EXPECT_EQ(m.peek(0), 42);
  EXPECT_EQ(m.peek(1), 1);
  EXPECT_TRUE(m.clean());
}

TEST(Machine, ErewSwapInTwoSteps) {
  // The EREW-legal swap: copy through disjoint temporaries, then write back
  // crosswise — every cell is touched by exactly one processor per step.
  Machine m(4, Mode::EREW);
  m.poke(0, 1);
  m.poke(1, 2);
  m.step(2, [&](std::size_t p) { m.write(p, 2 + p, m.read(p, p)); });
  m.step(2, [&](std::size_t p) { m.write(p, 1 - p, m.read(p, 2 + p)); });
  EXPECT_EQ(m.peek(0), 2);
  EXPECT_EQ(m.peek(1), 1);
  EXPECT_TRUE(m.clean());
}

TEST(Machine, FlagsConcurrentReadInErewMode) {
  Machine m(4, Mode::EREW);
  m.step(2, [&](std::size_t p) { (void)m.read(p, 0); });
  ASSERT_FALSE(m.clean());
  EXPECT_EQ(m.violations()[0].kind, "concurrent-read");
}

TEST(Machine, AllowsConcurrentReadInCrewMode) {
  Machine m(4, Mode::CREW);
  m.step(4, [&](std::size_t p) { (void)m.read(p, 0); });
  EXPECT_TRUE(m.clean());
}

TEST(Machine, FlagsConcurrentWriteInCrewMode) {
  Machine m(4, Mode::CREW);
  m.step(2, [&](std::size_t p) { m.write(p, 1, static_cast<int>(p)); });
  ASSERT_FALSE(m.clean());
  EXPECT_EQ(m.violations()[0].kind, "concurrent-write");
}

TEST(Machine, FlagsReadWriteConflict) {
  Machine m(4, Mode::CREW);
  m.step(2, [&](std::size_t p) {
    if (p == 0) {
      (void)m.read(p, 2);
    } else {
      m.write(p, 2, 9);
    }
  });
  EXPECT_FALSE(m.clean());
}

TEST(Machine, CrcwFlagsOnlyValueConflicts) {
  Machine common(4, Mode::CRCW);
  common.step(3, [&](std::size_t p) { common.write(p, 0, 7); });
  EXPECT_TRUE(common.clean());  // common-CRCW: same value is fine

  Machine conflict(4, Mode::CRCW);
  conflict.step(2, [&](std::size_t p) {
    conflict.write(p, 0, static_cast<int>(p));
  });
  EXPECT_FALSE(conflict.clean());
}

TEST(Machine, StrictModeThrows) {
  Machine m(4, Mode::EREW, /*strict=*/true);
  EXPECT_THROW(
      m.step(2, [&](std::size_t p) { (void)m.read(p, 0); }),
      hmis::util::CheckError);
}

TEST(Machine, SameProcessorMayReadAndWriteSameCell) {
  Machine m(4, Mode::EREW);
  m.poke(1, 5);
  m.step(1, [&](std::size_t p) { m.write(p, 1, m.read(p, 1) + 1); });
  EXPECT_EQ(m.peek(1), 6);
  EXPECT_TRUE(m.clean());
}

TEST(Machine, CountsStepsAndAccesses) {
  Machine m(8);
  m.step(4, [&](std::size_t p) { m.write(p, p, 1); });
  m.step(2, [&](std::size_t p) { (void)m.read(p, p); });
  EXPECT_EQ(m.steps_executed(), 2u);
  EXPECT_EQ(m.total_writes(), 4u);
  EXPECT_EQ(m.total_reads(), 2u);
  EXPECT_EQ(m.max_procs_used(), 4u);
}

// ---- Kernels under the EREW checker ----------------------------------------

TEST(Kernels, BroadcastIsErewClean) {
  for (const std::size_t n : {1u, 2u, 7u, 16u, 33u}) {
    Machine m(1 + n);
    m.poke(0, 99);
    broadcast(m, 0, 1, n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(m.peek(1 + i), 99) << "n=" << n << " i=" << i;
    }
    EXPECT_TRUE(m.clean()) << "n=" << n;
    // Depth: 1 + ceil(log2 n) doubling steps.
    const auto log_n = static_cast<std::uint64_t>(
        std::ceil(std::log2(static_cast<double>(std::max<std::size_t>(n, 2)))));
    EXPECT_LE(m.steps_executed(), log_n + 2) << "n=" << n;
  }
}

TEST(Kernels, ReduceSumMatchesSerialAndIsClean) {
  for (const std::size_t n : {1u, 2u, 5u, 8u, 31u, 64u}) {
    Machine m(2 * n + 2);
    std::int64_t expected = 0;
    for (std::size_t i = 0; i < n; ++i) {
      m.poke(i, static_cast<std::int64_t>(i * i + 1));
      expected += static_cast<std::int64_t>(i * i + 1);
    }
    reduce_sum(m, 0, n, /*out=*/2 * n + 1, /*scratch=*/n);
    EXPECT_EQ(m.peek(2 * n + 1), expected) << "n=" << n;
    EXPECT_TRUE(m.clean()) << "n=" << n;
  }
}

TEST(Kernels, ReduceMaxMatchesSerial) {
  const std::size_t n = 23;
  Machine m(2 * n + 2);
  std::int64_t expected = INT64_MIN;
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = static_cast<std::int64_t>((i * 7919) % 101);
    m.poke(i, v);
    expected = std::max(expected, v);
  }
  reduce_max(m, 0, n, 2 * n + 1, n);
  EXPECT_EQ(m.peek(2 * n + 1), expected);
  EXPECT_TRUE(m.clean());
}

TEST(Kernels, ExclusiveScanMatchesSerialAndIsClean) {
  for (const std::size_t n : {1u, 2u, 3u, 8u, 20u, 64u}) {
    const std::size_t scratch = 2 * n;
    Machine m(scratch + scan_scratch_size(n) + 4);
    std::vector<std::int64_t> input(n);
    for (std::size_t i = 0; i < n; ++i) {
      input[i] = static_cast<std::int64_t>((i * 31) % 17);
      m.poke(i, input[i]);
    }
    exclusive_scan(m, 0, n, n, scratch);
    std::int64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(m.peek(n + i), acc) << "n=" << n << " i=" << i;
      acc += input[i];
    }
    EXPECT_TRUE(m.clean()) << "n=" << n;
  }
}

TEST(Kernels, CompactKeepsFlaggedInOrder) {
  const std::size_t n = 16;
  // Layout: src[0..n) flags[n..2n) dst[2n..3n) count[3n] scratch[3n+1 ...]
  Machine m(3 * n + 2 + n + scan_scratch_size(n) + 4);
  std::vector<std::int64_t> expected;
  for (std::size_t i = 0; i < n; ++i) {
    m.poke(i, static_cast<std::int64_t>(100 + i));
    const bool keep = (i % 3 == 1);
    m.poke(n + i, keep ? 1 : 0);
    if (keep) expected.push_back(static_cast<std::int64_t>(100 + i));
  }
  compact(m, 0, n, n, 2 * n, 3 * n, 3 * n + 1);
  EXPECT_EQ(m.peek(3 * n), static_cast<std::int64_t>(expected.size()));
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(m.peek(2 * n + i), expected[i]);
  }
  EXPECT_TRUE(m.clean());
}

TEST(Kernels, Pow2Helpers) {
  EXPECT_EQ(pow2_at_least(1), 1u);
  EXPECT_EQ(pow2_at_least(2), 2u);
  EXPECT_EQ(pow2_at_least(3), 4u);
  EXPECT_EQ(pow2_at_least(64), 64u);
  EXPECT_EQ(pow2_at_least(65), 128u);
}

}  // namespace
