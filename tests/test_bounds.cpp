#include <gtest/gtest.h>

#include <cmath>

#include "hmis/conc/kelsen_bound.hpp"
#include "hmis/conc/kimvu_bound.hpp"
#include "hmis/util/math.hpp"

namespace {

using namespace hmis::conc;

TEST(KelsenBound, MultiplierClosedForm) {
  KelsenBoundParams p;
  p.n = 1 << 16;  // log2 = 16
  p.d = 2;
  p.delta = 2.0;
  // k(H) = (16+2)^{2^2-1} * 2^{2^2-1} = 18^3 * 8
  EXPECT_NEAR(kelsen_multiplier(p), 18.0 * 18.0 * 18.0 * 8.0, 1e-6);
}

TEST(KelsenBound, FailureProbabilityDecaysInDelta) {
  KelsenBoundParams p;
  p.n = 1 << 16;
  p.m = 1000;
  p.d = 3;
  p.delta = 64.0;
  const double p64 = kelsen_failure_probability(p);
  p.delta = 1024.0;
  const double p1024 = kelsen_failure_probability(p);
  EXPECT_LT(p1024, p64);
  EXPECT_GT(p64, 0.0);
}

TEST(KelsenBound, Corollary1Multiplier) {
  // (log n)^{2^{d+1}} with log2(65536) = 16, d = 2: 16^8.
  EXPECT_NEAR(kelsen_corollary1_multiplier(65536.0, 2.0),
              std::pow(16.0, 8.0), 1e-3);
}

TEST(KimVu, ACoefficients) {
  EXPECT_NEAR(kimvu_a(1), 8.0, 1e-12);                    // 8^1 * sqrt(1)
  EXPECT_NEAR(kimvu_a(2), 64.0 * std::sqrt(2.0), 1e-9);   // 8^2 * sqrt(2!)
  EXPECT_NEAR(kimvu_a(3), 512.0 * std::sqrt(6.0), 1e-9);  // 8^3 * sqrt(3!)
}

TEST(KimVu, MultiplierGrowsWithGap) {
  const double lambda = 10.0;
  EXPECT_LT(kimvu_multiplier(2, 3, lambda), kimvu_multiplier(2, 4, lambda));
  EXPECT_LT(kimvu_multiplier(2, 4, lambda), kimvu_multiplier(2, 5, lambda));
}

TEST(KimVu, FailureProbabilityClosedForm) {
  // 2e^2 e^{-λ} n^{k-j-1}; with k-j = 1 the n factor vanishes.
  const double v = kimvu_failure_probability(1e6, 2, 3, 20.0);
  EXPECT_NEAR(v, 2.0 * std::exp(2.0) * std::exp(-20.0), 1e-15);
}

TEST(MigrationMultipliers, KimVuBeatsKelsenForAllGaps) {
  // Corollary 4's (log n)^{2(k-j)} must be far below Corollary 2's
  // (log n)^{2^{k-j+1}} for every gap >= 1 (equal exponent only at gap 1:
  // 2 vs 4 — still smaller).
  const double n = 1 << 20;
  for (unsigned j = 2; j <= 4; ++j) {
    for (unsigned k = j + 1; k <= j + 4; ++k) {
      const double kv = kimvu_corollary4_multiplier(n, j, k);
      const double ke = kelsen_corollary2_multiplier(n, j, k);
      EXPECT_LT(kv, ke) << "j=" << j << " k=" << k;
    }
  }
}

TEST(MigrationMultipliers, ExponentsMatchDefinitions) {
  const double n = 1 << 16;  // log2 n = 16
  EXPECT_NEAR(kimvu_corollary4_multiplier(n, 2, 4), std::pow(16.0, 4.0),
              1e-6);
  EXPECT_NEAR(kelsen_corollary2_multiplier(n, 2, 4), std::pow(16.0, 8.0),
              1e-3);
}

TEST(Bounds, KelsenMultiplierExplodesWithDimension) {
  // The 2^d exponent makes Kelsen's multiplier astronomically loose even at
  // d = 5 — the observation motivating §4 of the paper.
  KelsenBoundParams p;
  p.n = 1 << 20;
  p.delta = std::pow(hmis::util::clog2(p.n), 2.0);
  p.d = 3;
  const double k3 = kelsen_multiplier(p);
  p.d = 5;
  const double k5 = kelsen_multiplier(p);
  EXPECT_GT(k5 / k3, 1e6);
}

}  // namespace
