#include "hmis/core/sbl.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hmis/core/theory.hpp"
#include "hmis/hypergraph/builder.hpp"
#include "hmis/hypergraph/generators.hpp"
#include "hmis/hypergraph/validate.hpp"

namespace {

using namespace hmis;
using core::resolve_sbl_params;
using core::sbl;
using core::SblBaseCase;
using core::SblFailPolicy;
using core::SblOptions;
using core::SblParamPolicy;

TEST(SblParams, PracticalPolicyDefaults) {
  SblOptions opt;
  const auto params = resolve_sbl_params(100000, 50000, opt);
  EXPECT_NEAR(params.alpha, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(params.p, std::pow(100000.0, -1.0 / 3.0), 1e-9);
  EXPECT_GE(params.d, 2u);
  EXPECT_EQ(params.loop_threshold,
            core::sbl_loop_threshold(params.p));
  EXPECT_GT(params.predicted_round_bound, 0.0);
  // Claim (2) guarantee at the derived d.
  EXPECT_LE(params.predicted_violation_bound, 1.0 / 100000.0 * 1.01);
}

TEST(SblParams, OverridesWin) {
  SblOptions opt;
  opt.alpha_override = 0.25;
  opt.d_override = 9;
  const auto params = resolve_sbl_params(10000, 10000, opt);
  EXPECT_NEAR(params.alpha, 0.25, 1e-12);
  EXPECT_EQ(params.d, 9u);
  opt.p_override = 0.125;
  const auto params2 = resolve_sbl_params(10000, 10000, opt);
  EXPECT_NEAR(params2.p, 0.125, 1e-12);
}

TEST(SblParams, PaperAsymptoticPolicy) {
  SblOptions opt;
  opt.param_policy = SblParamPolicy::PaperAsymptotic;
  const auto params = resolve_sbl_params(65536, 1000, opt);
  EXPECT_NEAR(params.alpha, 0.5, 1e-9);  // 1/log^(3)(2^16) = 1/2
  EXPECT_GE(params.d, 2u);               // limit clamped up to 2
}

TEST(Sbl, NoEdgesReturnsEverything) {
  const auto h = make_hypergraph(50, {});
  const auto r = sbl(h);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_EQ(r.independent_set.size(), 50u);
}

TEST(Sbl, SmallDimensionRunsDirectBl) {
  // dimension 3 <= derived d => Algorithm 1 line 26 path (single round).
  const auto h = gen::uniform_random(500, 800, 3, 3);
  SblOptions opt;
  opt.record_trace = true;
  const auto r = sbl(h, opt);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.rounds, 1u);
  EXPECT_TRUE(verify_mis(h, r.independent_set).ok());
}

TEST(Sbl, SamplingLoopEngagesOnHighDimension) {
  // Edges up to size 24 force the sampling path with practical params.
  const auto h = gen::mixed_arity(3000, 300, 2, 24, 5);
  SblOptions opt;
  opt.record_trace = true;
  opt.check_invariants = true;
  const auto r = sbl(h, opt);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_GT(r.rounds, 1u);
  EXPECT_TRUE(verify_mis(h, r.independent_set).ok());
}

TEST(Sbl, VerifiedAcrossSeedsOnSblRegime) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto h = gen::sbl_regime(2000, 0.6, 16, seed);
    SblOptions opt;
    opt.seed = seed;
    const auto r = sbl(h, opt);
    ASSERT_TRUE(r.success) << r.failure_reason;
    EXPECT_TRUE(verify_mis(h, r.independent_set).ok()) << seed;
  }
}

TEST(Sbl, GreedyBaseCase) {
  const auto h = gen::mixed_arity(1500, 200, 2, 20, 7);
  SblOptions opt;
  opt.base_case = SblBaseCase::Greedy;
  const auto r = sbl(h, opt);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(verify_mis(h, r.independent_set).ok());
}

TEST(Sbl, RestartAllPolicyStillSucceeds) {
  const auto h = gen::mixed_arity(1500, 200, 2, 20, 9);
  SblOptions opt;
  opt.fail_policy = SblFailPolicy::RestartAll;
  const auto r = sbl(h, opt);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(verify_mis(h, r.independent_set).ok());
}

TEST(Sbl, TightDimensionForcesResamples) {
  // d_override = 2 on an instance with many size-2..4 edges: samples will
  // regularly contain a size-3 edge, exercising the resample path.
  const auto h = gen::mixed_arity(800, 2400, 2, 4, 11);
  SblOptions opt;
  opt.d_override = 2;
  // p chosen so ~75% of draws contain a fully-sampled size-3 edge: the
  // resample path triggers reliably but each round still succeeds fast.
  opt.p_override = 0.12;
  opt.max_resamples_per_round = 500;
  opt.record_trace = true;
  const auto r = sbl(h, opt);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(verify_mis(h, r.independent_set).ok());
  EXPECT_GT(r.resamples, 0u);
}

TEST(Sbl, RoundTraceIsConsistent) {
  const auto h = gen::mixed_arity(2000, 400, 2, 18, 13);
  SblOptions opt;
  opt.record_trace = true;
  const auto r = sbl(h, opt);
  ASSERT_TRUE(r.success);
  ASSERT_FALSE(r.trace.empty());
  // Live vertices decrease monotonically across rounds.
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_LE(r.trace[i].live_vertices, r.trace[i - 1].live_vertices);
  }
  // Sampled vertices all got colored: blue + red == sampled.
  for (const auto& s : r.trace) {
    if (s.sampled > 0) {
      EXPECT_EQ(s.added_blue + s.forced_red, s.sampled);
    }
  }
}

TEST(Sbl, OnRoundCallbackFires) {
  const auto h = gen::mixed_arity(1500, 300, 2, 16, 15);
  SblOptions opt;
  std::size_t calls = 0;
  opt.on_round = [&](const algo::StageStats&) { ++calls; };
  const auto r = sbl(h, opt);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(calls, r.rounds);
}

TEST(Sbl, DeterministicForSeed) {
  const auto h = gen::mixed_arity(1200, 250, 2, 14, 17);
  SblOptions opt;
  opt.seed = 7;
  const auto ra = sbl(h, opt);
  const auto rb = sbl(h, opt);
  ASSERT_TRUE(ra.success);
  EXPECT_EQ(ra.independent_set, rb.independent_set);
  EXPECT_EQ(ra.rounds, rb.rounds);
}

TEST(Sbl, PaperAsymptoticPolicyEndToEnd) {
  // The verbatim asymptotic parameters are degenerate at practical n
  // (threshold 1/p² ≈ n), but the algorithm must still terminate and be
  // correct — it just falls through to the base case almost immediately.
  const auto h = gen::mixed_arity(800, 200, 2, 12, 19);
  SblOptions opt;
  opt.param_policy = SblParamPolicy::PaperAsymptotic;
  opt.seed = 19;
  const auto r = sbl(h, opt);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(verify_mis(h, r.independent_set).ok());
}

TEST(Sbl, POverrideControlsLoopThreshold) {
  SblOptions opt;
  opt.p_override = 0.25;
  const auto params = resolve_sbl_params(10000, 1000, opt);
  EXPECT_NEAR(params.p, 0.25, 1e-12);
  EXPECT_EQ(params.loop_threshold, 16u);  // 1/p²
}

TEST(Sbl, MaxRoundsFailureIsReported) {
  // d below the instance dimension forces the sampling loop (not the
  // direct-BL dispatch); p = 0.1 colors ~10% per round, so one round
  // cannot reach the loop threshold of 100 from n = 500 — a cap of 1 must
  // trip cleanly.
  const auto h = gen::mixed_arity(500, 100, 2, 16, 21);
  SblOptions opt;
  opt.p_override = 0.1;
  opt.d_override = 8;  // dimension 16 > 8 => sampling path
  opt.max_rounds = 1;
  const auto r = sbl(h, opt);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.failure_reason.find("max_rounds"), std::string::npos);
}

TEST(Sbl, SingleVertex) {
  const auto h = make_hypergraph(1, {});
  const auto r = sbl(h);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.independent_set, (std::vector<VertexId>{0}));
}

TEST(Sbl, InnerBlOptionsPropagate) {
  // Force the inner BL onto the static-probability path; the run must stay
  // correct (the options plumb through to every sampled subproblem).
  const auto h = gen::mixed_arity(1500, 300, 2, 16, 23);
  SblOptions opt;
  opt.bl.recompute_probability = false;
  opt.bl.max_rounds = 500000;
  const auto r = sbl(h, opt);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(verify_mis(h, r.independent_set).ok());
}

TEST(Sbl, SunflowerWithGiantCore) {
  // A large shared core with big petals: high dimension, heavy overlap.
  const auto h = gen::sunflower(10, 8, 60);
  const auto r = sbl(h);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(verify_mis(h, r.independent_set).ok());
}

}  // namespace
