#include "hmis/util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace {

using hmis::util::CounterRng;
using hmis::util::mix64;
using hmis::util::splitmix64;
using hmis::util::Xoshiro256ss;

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_NE(splitmix64(0), splitmix64(1));
  EXPECT_NE(splitmix64(1), splitmix64(2));
}

TEST(Mix64, AvalanchesLowEntropyInputs) {
  // Consecutive integers should differ in roughly half their output bits.
  int total_bits = 0;
  const int samples = 256;
  for (int i = 0; i < samples; ++i) {
    const std::uint64_t a = mix64(static_cast<std::uint64_t>(i));
    const std::uint64_t b = mix64(static_cast<std::uint64_t>(i + 1));
    total_bits += __builtin_popcountll(a ^ b);
  }
  const double avg = static_cast<double>(total_bits) / samples;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(Xoshiro, ReproducibleForSameSeed) {
  Xoshiro256ss a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256ss a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Xoshiro, Uniform01InRange) {
  Xoshiro256ss rng(7);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Xoshiro, BelowIsUnbiasedAcrossSmallRange) {
  Xoshiro256ss rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(10)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, 0.08 * n / 10.0);
  }
}

TEST(Xoshiro, BelowZeroAndOne) {
  Xoshiro256ss rng(3);
  EXPECT_EQ(rng.below(0), 0u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(CounterRng, PureFunctionOfCoordinates) {
  const CounterRng rng(123);
  EXPECT_EQ(rng.bits(5, 17), rng.bits(5, 17));
  EXPECT_NE(rng.bits(5, 17), rng.bits(5, 18));
  EXPECT_NE(rng.bits(5, 17), rng.bits(6, 17));
}

TEST(CounterRng, SeedChangesEverything) {
  const CounterRng a(1), b(2);
  int same = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    if (a.bits(0, i) == b.bits(0, i)) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(CounterRng, BernoulliFrequencyMatchesP) {
  const CounterRng rng(99);
  for (const double p : {0.01, 0.25, 0.5, 0.9}) {
    int hits = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
      if (rng.bernoulli(p, 0, static_cast<std::uint64_t>(i))) ++hits;
    }
    const double freq = static_cast<double>(hits) / n;
    EXPECT_NEAR(freq, p, 3.0 * std::sqrt(p * (1 - p) / n) + 1e-3)
        << "p=" << p;
  }
}

TEST(CounterRng, StreamsAreIndependent) {
  // Correlation between the same counters on two streams should be tiny.
  const CounterRng rng(5);
  int agree = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const bool a = rng.bernoulli(0.5, 1, static_cast<std::uint64_t>(i));
    const bool b = rng.bernoulli(0.5, 2, static_cast<std::uint64_t>(i));
    if (a == b) ++agree;
  }
  EXPECT_NEAR(agree, n / 2, 4 * std::sqrt(n / 4.0));
}

TEST(CounterRng, ChildRngDiffersFromParent) {
  const CounterRng parent(77);
  const CounterRng child = parent.child(1);
  EXPECT_NE(parent.seed(), child.seed());
  EXPECT_NE(parent.bits(0, 0), child.bits(0, 0));
  // Distinct tags give distinct children.
  EXPECT_NE(parent.child(1).seed(), parent.child(2).seed());
}

TEST(CounterRng, PrioritiesFormDistinctKeys) {
  const CounterRng rng(31337);
  std::set<std::uint64_t> keys;
  for (std::uint64_t v = 0; v < 4096; ++v) keys.insert(rng.priority(0, v));
  EXPECT_EQ(keys.size(), 4096u);  // collisions astronomically unlikely
}

}  // namespace
