// The EREW PRAM realization of a BL marking round must (a) produce exactly
// the reference survivors and (b) execute with zero exclusivity violations
// and logarithmic step count — this is the constructive content of
// Theorem 2's "can be implemented on EREW PRAM".
#include "hmis/pram/bl_round.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hmis/hypergraph/builder.hpp"
#include "hmis/hypergraph/generators.hpp"
#include "hmis/util/rng.hpp"

namespace {

using namespace hmis;
using pram::bl_round_erew;
using pram::bl_round_reference;

std::vector<std::uint8_t> random_marks(std::size_t n, double p,
                                       std::uint64_t seed) {
  const util::CounterRng rng(seed);
  std::vector<std::uint8_t> marks(n);
  for (std::size_t v = 0; v < n; ++v) {
    marks[v] = rng.bernoulli(p, 0, v) ? 1 : 0;
  }
  return marks;
}

TEST(PramBlRound, TinyHandComputedCase) {
  // Edge {0,1} fully marked -> both unmarked; 2 marked alone -> survives.
  const auto h = make_hypergraph(4, {{0, 1}, {1, 2, 3}});
  const std::vector<std::uint8_t> marks = {1, 1, 1, 0};
  const auto result = bl_round_erew(h, marks);
  EXPECT_EQ(result.violations, 0u);
  EXPECT_EQ(result.survivor, (std::vector<std::uint8_t>{0, 0, 1, 0}));
}

TEST(PramBlRound, AllMarkedEverythingCollides) {
  const auto h = make_hypergraph(4, {{0, 1}, {2, 3}});
  const std::vector<std::uint8_t> marks = {1, 1, 1, 1};
  const auto result = bl_round_erew(h, marks);
  EXPECT_EQ(result.violations, 0u);
  EXPECT_EQ(result.survivor, (std::vector<std::uint8_t>{0, 0, 0, 0}));
}

TEST(PramBlRound, NoneMarked) {
  const auto h = make_hypergraph(3, {{0, 1, 2}});
  const std::vector<std::uint8_t> marks = {0, 0, 0};
  const auto result = bl_round_erew(h, marks);
  EXPECT_EQ(result.violations, 0u);
  EXPECT_EQ(result.survivor, (std::vector<std::uint8_t>{0, 0, 0}));
}

TEST(PramBlRound, IsolatedVerticesAlwaysSurviveWhenMarked) {
  const auto h = make_hypergraph(5, {{0, 1}});
  const std::vector<std::uint8_t> marks = {0, 0, 1, 1, 0};
  const auto result = bl_round_erew(h, marks);
  EXPECT_EQ(result.violations, 0u);
  EXPECT_EQ(result.survivor, (std::vector<std::uint8_t>{0, 0, 1, 1, 0}));
}

TEST(PramBlRound, MatchesReferenceOnRandomInstances) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const auto h = gen::mixed_arity(120, 300, 2, 5, seed);
    const auto marks = random_marks(h.num_vertices(), 0.4, seed);
    const auto erew = bl_round_erew(h, marks);
    const auto ref = bl_round_reference(h, marks);
    EXPECT_EQ(erew.violations, 0u) << "seed " << seed;
    EXPECT_EQ(erew.survivor, ref) << "seed " << seed;
  }
}

TEST(PramBlRound, MatchesReferenceOnOverlappingStructure) {
  // Sunflower: the shared core creates the widest read fan-in — the exact
  // pattern that would be a CREW violation without the doubling strips.
  const auto h = gen::sunflower(3, 2, 30);
  const auto marks = random_marks(h.num_vertices(), 0.6, 9);
  const auto erew = bl_round_erew(h, marks);
  EXPECT_EQ(erew.violations, 0u);
  EXPECT_EQ(erew.survivor, bl_round_reference(h, marks));
}

TEST(PramBlRound, StepCountIsLogarithmic) {
  // Depth O(log(max degree) + log(dimension)) + O(1) scatter steps.
  const auto h = gen::uniform_random(500, 1500, 4, 7);
  const auto marks = random_marks(h.num_vertices(), 0.3, 7);
  const auto result = bl_round_erew(h, marks);
  EXPECT_EQ(result.violations, 0u);
  std::size_t max_deg = 1;
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    max_deg = std::max(max_deg, h.degree(v));
  }
  const double bound = 4.0 * (std::log2(static_cast<double>(max_deg)) +
                              std::log2(4.0)) +
                       10.0;
  EXPECT_LE(static_cast<double>(result.steps), bound)
      << "steps=" << result.steps << " max_deg=" << max_deg;
}

TEST(PramBlRound, ProcessorCountIsLinearInSize) {
  const auto h = gen::uniform_random(200, 600, 3, 11);
  const auto marks = random_marks(h.num_vertices(), 0.5, 11);
  const auto result = bl_round_erew(h, marks);
  // Widest step uses one processor per (edge, member) incidence at most.
  EXPECT_LE(result.max_processors,
            std::max(h.total_edge_size(), h.num_vertices()));
}

TEST(PramBlRound, SurvivorsOfErewRoundAreIndependentInMarkedSubgraph) {
  // The survivors never contain a full edge (they were unmarked otherwise).
  const auto h = gen::uniform_random(150, 450, 3, 13);
  const auto marks = random_marks(h.num_vertices(), 0.7, 13);
  const auto result = bl_round_erew(h, marks);
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    bool all = true;
    for (const VertexId v : h.edge(e)) {
      if (!result.survivor[v]) {
        all = false;
        break;
      }
    }
    EXPECT_FALSE(all) << "edge " << e << " fully survived";
  }
}

}  // namespace
