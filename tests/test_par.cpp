#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "hmis/par/parallel_for.hpp"
#include "hmis/par/reduce.hpp"
#include "hmis/par/scan.hpp"
#include "hmis/par/sort.hpp"
#include "hmis/par/task_group.hpp"
#include "hmis/par/thread_pool.hpp"
#include "hmis/pram/cost_model.hpp"

namespace {

using namespace hmis::par;

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.run_chunks(64, [&](std::size_t c) { hits[c].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  int sum = 0;
  pool.run_chunks(10, [&](std::size_t c) { sum += static_cast<int>(c); });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.run_chunks(8,
                      [&](std::size_t c) {
                        if (c == 5) throw std::runtime_error("boom");
                      }),
      std::runtime_error);
  // Pool is still usable afterwards.
  std::atomic<int> ok{0};
  pool.run_chunks(4, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.run_chunks(16, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 16);
  }
}

// Acceptance criterion of the scheduler rewrite: a parallel_for issued from
// inside a worker task completes instead of deadlocking the pool.
TEST(ThreadPool, NestedParallelForInsideRunChunksCompletes) {
  ThreadPool pool(4);
  const std::size_t outer = 8;
  const std::size_t inner = 4 * kMinGrain;  // big enough to go parallel
  std::vector<std::vector<int>> hits(outer);
  for (auto& h : hits) h.assign(inner, 0);
  pool.run_chunks(outer, [&](std::size_t c) {
    parallel_for(
        0, inner, [&](std::size_t i) { hits[c][i] += 1; }, nullptr, &pool);
  });
  for (const auto& row : hits) {
    EXPECT_TRUE(std::all_of(row.begin(), row.end(),
                            [](int h) { return h == 1; }));
  }
}

TEST(ThreadPool, DeeplyNestedRunChunks) {
  ThreadPool pool(3);
  std::atomic<int> leaves{0};
  pool.run_chunks(3, [&](std::size_t) {
    pool.run_chunks(3, [&](std::size_t) {
      pool.run_chunks(3, [&](std::size_t) { leaves.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaves.load(), 27);
}

TEST(ThreadPool, ConcurrentSubmissionsFromManyExternalThreads) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 6;
  constexpr int kJobs = 20;
  std::atomic<int> total{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (int j = 0; j < kJobs; ++j) {
        pool.run_chunks(8, [&](std::size_t) { total.fetch_add(1); });
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(total.load(), kSubmitters * kJobs * 8);
}

TEST(ThreadPool, ExceptionInNestedLoopPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run_chunks(4,
                               [&](std::size_t c) {
                                 pool.run_chunks(4, [&](std::size_t inner) {
                                   if (c == 2 && inner == 3) {
                                     throw std::runtime_error("nested boom");
                                   }
                                 });
                               }),
               std::runtime_error);
  std::atomic<int> ok{0};
  pool.run_chunks(8, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPool, AllChunksRunEvenWhenSomeThrow) {
  // The shim's exception contract: every chunk still runs exactly once;
  // the first exception is rethrown after the join.  The serial fallback
  // (1-thread pool) must honour the same contract, or exception-path side
  // effects would diverge across thread counts.
  for (const std::size_t threads : {std::size_t{4}, std::size_t{1}}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(32);
    EXPECT_THROW(pool.run_chunks(32,
                                 [&](std::size_t c) {
                                   hits[c].fetch_add(1);
                                   if (c % 7 == 1) {
                                     throw std::runtime_error("chunk failed");
                                   }
                                 }),
                 std::runtime_error)
        << "threads=" << threads;
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "threads=" << threads;
  }
}

TEST(ThreadPool, StatsCountSpawnsAndJoins) {
  ThreadPool pool(4);
  const SchedulerStats before = pool.stats();
  pool.run_chunks(16, [](std::size_t) {});
  const SchedulerStats delta = pool.stats() - before;
  EXPECT_GE(delta.spawns, 1u);  // root task at minimum
  EXPECT_GE(delta.joins, 1u);
  // Serial fast path (single chunk) must not touch the scheduler.
  const SchedulerStats before_serial = pool.stats();
  pool.run_chunks(1, [](std::size_t) {});
  const SchedulerStats serial = pool.stats() - before_serial;
  EXPECT_EQ(serial.spawns, 0u);
  EXPECT_EQ(serial.joins, 0u);
}

TEST(TaskGroup, RunsClosuresOnWorkersAndInline) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(threads);
    TaskGroup group(pool);
    std::atomic<int> sum{0};
    for (int i = 1; i <= 10; ++i) {
      group.run([&sum, i] { sum.fetch_add(i); });
    }
    group.wait();
    EXPECT_EQ(sum.load(), 55) << "threads=" << threads;
  }
}

TEST(TaskGroup, NestedParallelForInsideClosure) {
  ThreadPool pool(4);
  TaskGroup group(pool);
  std::vector<int> a(2 * kMinGrain, 0);
  std::vector<int> b(2 * kMinGrain, 0);
  group.run([&] {
    parallel_for(
        0, a.size(), [&](std::size_t i) { a[i] = 1; }, nullptr, &pool);
  });
  // The spawning thread runs its own nested loop concurrently.
  parallel_for(
      0, b.size(), [&](std::size_t i) { b[i] = 1; }, nullptr, &pool);
  group.wait();
  EXPECT_TRUE(std::all_of(a.begin(), a.end(), [](int x) { return x == 1; }));
  EXPECT_TRUE(std::all_of(b.begin(), b.end(), [](int x) { return x == 1; }));
}

TEST(TaskGroup, FirstExceptionWinsAndGroupStaysUsable) {
  ThreadPool pool(4);
  TaskGroup group(pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    group.run([&ran] {
      ran.fetch_add(1);
      throw std::runtime_error("task failed");
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 8);  // later failures don't cancel scheduled tasks
  // The rethrow cleared the error: reusing the group after catching must
  // not replay the stale exception, and new failures are still captured.
  std::atomic<int> reran{0};
  for (int i = 0; i < 4; ++i) group.run([&reran] { reran.fetch_add(1); });
  group.wait();  // throws nothing: all closures succeeded
  EXPECT_EQ(reran.load(), 4);
  group.run([] { throw std::logic_error("fresh failure"); });
  EXPECT_THROW(group.wait(), std::logic_error);
  // The pool survives for unrelated work.
  std::atomic<int> ok{0};
  pool.run_chunks(4, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

TEST(TaskGroup, DestructorJoinsAbandonedGroup) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  {
    TaskGroup group(pool);
    for (int i = 0; i < 16; ++i) group.run([&ran] { ran.fetch_add(1); });
    // No wait(): the destructor must join (and swallow nothing here).
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(ParallelFor, CoversRangeOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(10000, 0);
  parallel_for(
      0, hits.size(), [&](std::size_t i) { hits[i] += 1; }, nullptr, &pool);
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ParallelFor, EmptyAndOffsetRanges) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(5, 5, [&](std::size_t) { ++calls; }, nullptr, &pool);
  EXPECT_EQ(calls, 0);
  std::vector<std::size_t> seen;
  parallel_for(10, 13, [&](std::size_t i) { seen.push_back(i); }, nullptr,
               &pool);  // tiny range runs serially in order
  EXPECT_EQ(seen, (std::vector<std::size_t>{10, 11, 12}));
}

TEST(ParallelFor, MetricsChargeMapDepth) {
  Metrics m;
  parallel_for(0, 5000, [](std::size_t) {}, &m);
  EXPECT_EQ(m.work, 5000u);
  EXPECT_EQ(m.depth, 1u);
  EXPECT_EQ(m.calls, 1u);
}

TEST(Reduce, SumMatchesSerial) {
  ThreadPool pool(4);
  const std::size_t n = 100000;
  const auto value = [](std::size_t i) { return static_cast<long>(i % 97); };
  long serial = 0;
  for (std::size_t i = 0; i < n; ++i) serial += value(i);
  const long parallel = reduce_sum<long>(0, n, value, nullptr, &pool);
  EXPECT_EQ(parallel, serial);
}

TEST(Reduce, MinMaxAndCount) {
  ThreadPool pool(3);
  const std::size_t n = 54321;
  const auto value = [](std::size_t i) {
    return static_cast<int>((i * 2654435761u) % 1000003);
  };
  int mx = INT_MIN, mn = INT_MAX;
  std::size_t cnt = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx = std::max(mx, value(i));
    mn = std::min(mn, value(i));
    if (value(i) % 3 == 0) ++cnt;
  }
  EXPECT_EQ((reduce_max<int>(0, n, INT_MIN, value, nullptr, &pool)), mx);
  EXPECT_EQ((reduce_min<int>(0, n, INT_MAX, value, nullptr, &pool)), mn);
  EXPECT_EQ(count_if(0, n, [&](std::size_t i) { return value(i) % 3 == 0; },
                     nullptr, &pool),
            cnt);
}

TEST(Reduce, EmptyRangeReturnsInit) {
  EXPECT_EQ(reduce_sum<int>(7, 7, [](std::size_t) { return 1; }), 0);
  EXPECT_EQ((reduce_max<int>(7, 7, -5, [](std::size_t) { return 1; })), -5);
}

TEST(Reduce, FloatingPointDeterministicAcrossThreadCounts) {
  // Partials combined in chunk order; identical decomposition => identical
  // result bit-for-bit on the same pool size, and chunk count is capped by
  // data size so small inputs match across pools too.
  const std::size_t n = 200000;
  const auto value = [](std::size_t i) {
    return 1.0 / (1.0 + static_cast<double>(i));
  };
  ThreadPool p2(2), p2b(2);
  const double a = reduce_sum<double>(0, n, value, nullptr, &p2);
  const double b = reduce_sum<double>(0, n, value, nullptr, &p2b);
  EXPECT_EQ(a, b);  // bitwise equal
}

TEST(Scan, ExclusiveMatchesSerial) {
  ThreadPool pool(4);
  const std::size_t n = 65537;
  std::vector<std::uint64_t> out(n);
  const auto value = [](std::size_t i) {
    return static_cast<std::uint64_t>(i % 13);
  };
  const std::uint64_t total =
      exclusive_scan<std::uint64_t>(n, value, out.data(), nullptr, &pool);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], acc) << "at " << i;
    acc += value(i);
  }
  EXPECT_EQ(total, acc);
}

TEST(Scan, InclusiveMatchesSerial) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<int> out(n);
  const auto value = [](std::size_t i) { return static_cast<int>(i & 7); };
  inclusive_scan<int>(n, value, out.data(), nullptr, &pool);
  int acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += value(i);
    ASSERT_EQ(out[i], acc);
  }
}

TEST(Scan, PackIndicesSelectsMatching) {
  ThreadPool pool(4);
  const std::size_t n = 40000;
  const auto pred = [](std::size_t i) { return i % 7 == 3; };
  const auto packed = pack_indices(n, pred, nullptr, &pool);
  std::vector<std::uint32_t> expected;
  for (std::size_t i = 0; i < n; ++i) {
    if (pred(i)) expected.push_back(static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(packed, expected);
}

TEST(Scan, GatherPullsValues) {
  const std::vector<std::uint32_t> packed = {3, 1, 4, 1, 5};
  const auto values = [](std::uint32_t i) { return i * 10; };
  const auto out = gather<std::uint32_t>(packed, values);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{30, 10, 40, 10, 50}));
}

TEST(Sort, MatchesStdSort) {
  ThreadPool pool(4);
  std::mt19937_64 gen(42);
  std::vector<std::uint64_t> data(200000);
  for (auto& x : data) x = gen();
  std::vector<std::uint64_t> expected = data;
  std::sort(expected.begin(), expected.end());
  parallel_sort(data, std::less<std::uint64_t>{}, nullptr, &pool);
  EXPECT_EQ(data, expected);
}

TEST(Sort, CustomComparatorAndSmallInputs) {
  ThreadPool pool(4);
  std::vector<int> data = {5, 3, 9, 1};
  parallel_sort(data, std::greater<int>{}, nullptr, &pool);
  EXPECT_EQ(data, (std::vector<int>{9, 5, 3, 1}));
  std::vector<int> empty;
  parallel_sort(empty, std::less<int>{}, nullptr, &pool);
  EXPECT_TRUE(empty.empty());
}

TEST(Sort, OddChunkCounts) {
  ThreadPool pool(3);
  std::mt19937 gen(7);
  std::vector<int> data(50001);
  for (auto& x : data) x = static_cast<int>(gen() % 1000);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  parallel_sort(data, std::less<int>{}, nullptr, &pool);
  EXPECT_EQ(data, expected);
}

TEST(Metrics, MergeAndBrent) {
  Metrics a, b;
  a.add(100, 4);
  b.add(300, 6);
  a.merge(b);
  EXPECT_EQ(a.work, 400u);
  EXPECT_EQ(a.depth, 10u);
  EXPECT_EQ(a.calls, 2u);
  EXPECT_DOUBLE_EQ(hmis::pram::brent_time(a, 1), 410.0);
  EXPECT_DOUBLE_EQ(hmis::pram::brent_time(a, 40), 20.0);
  EXPECT_DOUBLE_EQ(hmis::pram::parallelism(a), 40.0);
  // P for Brent time <= 2*depth: work/((2-1)*depth) = 40.
  EXPECT_EQ(hmis::pram::processors_for_depth_limited(a, 2.0), 40u);
}

TEST(GlobalPool, SetThreadsTakesEffect) {
  set_global_threads(2);
  EXPECT_EQ(global_pool().num_threads(), 2u);
  set_global_threads(1);
  EXPECT_EQ(global_pool().num_threads(), 1u);
}

// Regression test for the documented "not thread-safe" global pool: hammer
// global_pool() from many threads while the main thread swaps it.  Under
// TSan this validates the atomic publication and the retire-don't-destroy
// swap (references obtained before a swap stay usable).
TEST(GlobalPool, ConcurrentUseAndSwapIsSafe) {
  constexpr int kReaders = 8;
  constexpr int kIterations = 200;
  std::atomic<bool> start{false};
  std::atomic<std::uint64_t> observed{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!start.load()) std::this_thread::yield();
      for (int i = 0; i < kIterations; ++i) {
        ThreadPool& pool = global_pool();
        observed.fetch_add(pool.num_threads());
        if (i % 32 == 0) {
          pool.run_chunks(2, [&](std::size_t) { observed.fetch_add(1); });
        }
      }
    });
  }
  start.store(true);
  for (int swap = 0; swap < 20; ++swap) {
    set_global_threads(1 + swap % 3);
  }
  for (auto& t : readers) t.join();
  EXPECT_GT(observed.load(), 0u);
  set_global_threads(1);  // leave a small pool behind for later tests
}

TEST(GlobalPool, SetThreadsRepublishesRetiredPoolOfSameSize) {
  // Alternating thread counts must not grow the retired set: asking for a
  // size that already exists republishes that pool instead of building a
  // new one (new workers every call would leak parked OS threads).
  set_global_threads(3);
  ThreadPool* const first = &global_pool();
  EXPECT_EQ(first->num_threads(), 3u);
  set_global_threads(1);
  EXPECT_NE(&global_pool(), first);
  set_global_threads(3);
  EXPECT_EQ(&global_pool(), first);
  set_global_threads(1);
}

// ---- Grain tuning ----------------------------------------------------------

TEST(Grain, ParseGrainAcceptsSaneValuesOnly) {
  EXPECT_EQ(detail::parse_grain(nullptr), 0u);
  EXPECT_EQ(detail::parse_grain(""), 0u);
  EXPECT_EQ(detail::parse_grain("abc"), 0u);
  EXPECT_EQ(detail::parse_grain("12abc"), 0u);
  EXPECT_EQ(detail::parse_grain("0"), 0u);
  EXPECT_EQ(detail::parse_grain("1"), 1u);
  EXPECT_EQ(detail::parse_grain("4096"), 4096u);
  EXPECT_EQ(detail::parse_grain("99999999999999999999"), 0u);  // absurd
}

TEST(Grain, PlanChunksHonoursExplicitGrain) {
  // grain = 1: chunk count capped by threads only.
  EXPECT_EQ(plan_chunks(10, 4, 1).chunks, 4u);
  // grain larger than n: single chunk.
  EXPECT_EQ(plan_chunks(10, 4, 64).chunks, 1u);
  // grain = 0 falls back to the default (kMinGrain when HMIS_GRAIN unset).
  EXPECT_EQ(plan_chunks(kMinGrain - 1, 8, 0).chunks,
            plan_chunks(kMinGrain - 1, 8).chunks);
  // exact multiples split evenly.
  const ChunkPlan plan = plan_chunks(8 * 100, 8, 100);
  EXPECT_EQ(plan.chunks, 8u);
  EXPECT_EQ(plan.chunk_size, 100u);
  // zero-length range plans zero chunks for any grain.
  EXPECT_EQ(plan_chunks(0, 8, 7).chunks, 0u);
}

TEST(Grain, ParallelForRespectsGrainParameter) {
  ThreadPool pool(4);
  // With a tiny explicit grain a small range still fans out; every index
  // must run exactly once regardless.
  std::vector<std::atomic<int>> hits(64);
  parallel_for(
      0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, nullptr,
      &pool, /*grain=*/1);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Reductions with a custom grain stay exact.
  const long sum = reduce_sum<long>(
      0, 1000, [](std::size_t i) { return static_cast<long>(i); }, nullptr,
      &pool, /*grain=*/16);
  EXPECT_EQ(sum, 499500L);
}

}  // namespace
