#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <random>
#include <stdexcept>
#include <vector>

#include "hmis/par/parallel_for.hpp"
#include "hmis/par/reduce.hpp"
#include "hmis/par/scan.hpp"
#include "hmis/par/sort.hpp"
#include "hmis/par/thread_pool.hpp"
#include "hmis/pram/cost_model.hpp"

namespace {

using namespace hmis::par;

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.run_chunks(64, [&](std::size_t c) { hits[c].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  int sum = 0;
  pool.run_chunks(10, [&](std::size_t c) { sum += static_cast<int>(c); });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.run_chunks(8,
                      [&](std::size_t c) {
                        if (c == 5) throw std::runtime_error("boom");
                      }),
      std::runtime_error);
  // Pool is still usable afterwards.
  std::atomic<int> ok{0};
  pool.run_chunks(4, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.run_chunks(16, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 16);
  }
}

TEST(ParallelFor, CoversRangeOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(10000, 0);
  parallel_for(
      0, hits.size(), [&](std::size_t i) { hits[i] += 1; }, nullptr, &pool);
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ParallelFor, EmptyAndOffsetRanges) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(5, 5, [&](std::size_t) { ++calls; }, nullptr, &pool);
  EXPECT_EQ(calls, 0);
  std::vector<std::size_t> seen;
  parallel_for(10, 13, [&](std::size_t i) { seen.push_back(i); }, nullptr,
               &pool);  // tiny range runs serially in order
  EXPECT_EQ(seen, (std::vector<std::size_t>{10, 11, 12}));
}

TEST(ParallelFor, MetricsChargeMapDepth) {
  Metrics m;
  parallel_for(0, 5000, [](std::size_t) {}, &m);
  EXPECT_EQ(m.work, 5000u);
  EXPECT_EQ(m.depth, 1u);
  EXPECT_EQ(m.calls, 1u);
}

TEST(Reduce, SumMatchesSerial) {
  ThreadPool pool(4);
  const std::size_t n = 100000;
  const auto value = [](std::size_t i) { return static_cast<long>(i % 97); };
  long serial = 0;
  for (std::size_t i = 0; i < n; ++i) serial += value(i);
  const long parallel = reduce_sum<long>(0, n, value, nullptr, &pool);
  EXPECT_EQ(parallel, serial);
}

TEST(Reduce, MinMaxAndCount) {
  ThreadPool pool(3);
  const std::size_t n = 54321;
  const auto value = [](std::size_t i) {
    return static_cast<int>((i * 2654435761u) % 1000003);
  };
  int mx = INT_MIN, mn = INT_MAX;
  std::size_t cnt = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx = std::max(mx, value(i));
    mn = std::min(mn, value(i));
    if (value(i) % 3 == 0) ++cnt;
  }
  EXPECT_EQ((reduce_max<int>(0, n, INT_MIN, value, nullptr, &pool)), mx);
  EXPECT_EQ((reduce_min<int>(0, n, INT_MAX, value, nullptr, &pool)), mn);
  EXPECT_EQ(count_if(0, n, [&](std::size_t i) { return value(i) % 3 == 0; },
                     nullptr, &pool),
            cnt);
}

TEST(Reduce, EmptyRangeReturnsInit) {
  EXPECT_EQ(reduce_sum<int>(7, 7, [](std::size_t) { return 1; }), 0);
  EXPECT_EQ((reduce_max<int>(7, 7, -5, [](std::size_t) { return 1; })), -5);
}

TEST(Reduce, FloatingPointDeterministicAcrossThreadCounts) {
  // Partials combined in chunk order; identical decomposition => identical
  // result bit-for-bit on the same pool size, and chunk count is capped by
  // data size so small inputs match across pools too.
  const std::size_t n = 200000;
  const auto value = [](std::size_t i) {
    return 1.0 / (1.0 + static_cast<double>(i));
  };
  ThreadPool p2(2), p2b(2);
  const double a = reduce_sum<double>(0, n, value, nullptr, &p2);
  const double b = reduce_sum<double>(0, n, value, nullptr, &p2b);
  EXPECT_EQ(a, b);  // bitwise equal
}

TEST(Scan, ExclusiveMatchesSerial) {
  ThreadPool pool(4);
  const std::size_t n = 65537;
  std::vector<std::uint64_t> out(n);
  const auto value = [](std::size_t i) {
    return static_cast<std::uint64_t>(i % 13);
  };
  const std::uint64_t total =
      exclusive_scan<std::uint64_t>(n, value, out.data(), nullptr, &pool);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], acc) << "at " << i;
    acc += value(i);
  }
  EXPECT_EQ(total, acc);
}

TEST(Scan, InclusiveMatchesSerial) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<int> out(n);
  const auto value = [](std::size_t i) { return static_cast<int>(i & 7); };
  inclusive_scan<int>(n, value, out.data(), nullptr, &pool);
  int acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += value(i);
    ASSERT_EQ(out[i], acc);
  }
}

TEST(Scan, PackIndicesSelectsMatching) {
  ThreadPool pool(4);
  const std::size_t n = 40000;
  const auto pred = [](std::size_t i) { return i % 7 == 3; };
  const auto packed = pack_indices(n, pred, nullptr, &pool);
  std::vector<std::uint32_t> expected;
  for (std::size_t i = 0; i < n; ++i) {
    if (pred(i)) expected.push_back(static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(packed, expected);
}

TEST(Scan, GatherPullsValues) {
  const std::vector<std::uint32_t> packed = {3, 1, 4, 1, 5};
  const auto values = [](std::uint32_t i) { return i * 10; };
  const auto out = gather<std::uint32_t>(packed, values);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{30, 10, 40, 10, 50}));
}

TEST(Sort, MatchesStdSort) {
  ThreadPool pool(4);
  std::mt19937_64 gen(42);
  std::vector<std::uint64_t> data(200000);
  for (auto& x : data) x = gen();
  std::vector<std::uint64_t> expected = data;
  std::sort(expected.begin(), expected.end());
  parallel_sort(data, std::less<std::uint64_t>{}, nullptr, &pool);
  EXPECT_EQ(data, expected);
}

TEST(Sort, CustomComparatorAndSmallInputs) {
  ThreadPool pool(4);
  std::vector<int> data = {5, 3, 9, 1};
  parallel_sort(data, std::greater<int>{}, nullptr, &pool);
  EXPECT_EQ(data, (std::vector<int>{9, 5, 3, 1}));
  std::vector<int> empty;
  parallel_sort(empty, std::less<int>{}, nullptr, &pool);
  EXPECT_TRUE(empty.empty());
}

TEST(Sort, OddChunkCounts) {
  ThreadPool pool(3);
  std::mt19937 gen(7);
  std::vector<int> data(50001);
  for (auto& x : data) x = static_cast<int>(gen() % 1000);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  parallel_sort(data, std::less<int>{}, nullptr, &pool);
  EXPECT_EQ(data, expected);
}

TEST(Metrics, MergeAndBrent) {
  Metrics a, b;
  a.add(100, 4);
  b.add(300, 6);
  a.merge(b);
  EXPECT_EQ(a.work, 400u);
  EXPECT_EQ(a.depth, 10u);
  EXPECT_EQ(a.calls, 2u);
  EXPECT_DOUBLE_EQ(hmis::pram::brent_time(a, 1), 410.0);
  EXPECT_DOUBLE_EQ(hmis::pram::brent_time(a, 40), 20.0);
  EXPECT_DOUBLE_EQ(hmis::pram::parallelism(a), 40.0);
  // P for Brent time <= 2*depth: work/((2-1)*depth) = 40.
  EXPECT_EQ(hmis::pram::processors_for_depth_limited(a, 2.0), 40u);
}

TEST(GlobalPool, SetThreadsTakesEffect) {
  set_global_threads(2);
  EXPECT_EQ(global_pool().num_threads(), 2u);
  set_global_threads(1);
  EXPECT_EQ(global_pool().num_threads(), 1u);
}

}  // namespace
